(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5 Table 1, §6 Figures 2 and 3) plus ablations for the
   design claims of §3.3, §3.5, §4.1, §4.2, and §6.

     dune exec bench/main.exe             -- everything (paper artifacts + ablations)
     dune exec bench/main.exe table1      -- Table 1 only
     dune exec bench/main.exe fig2        -- Figure 2
     dune exec bench/main.exe fig3        -- Figure 3
     dune exec bench/main.exe ablate-lock | ablate-pages | ablate-chain
                                          | ablate-movecpus | ablate-overlap
     dune exec bench/main.exe host        -- wall-clock microbenchmarks of the
                                             simulator itself (Bechamel)

   Numbers are deterministic virtual-time measurements; the paper's
   numbers are printed alongside where the paper states them. *)

module A = Amber
module W = Workloads

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let measure rt n f =
  let t0 = A.Api.now rt in
  for _ = 1 to n do
    f ()
  done;
  (A.Api.now rt -. t0) /. float_of_int n

let table1_measure () =
  let cfg = A.Config.make ~nodes:3 ~cpus:4 () in
  A.Cluster.run_value cfg (fun rt ->
        let create =
          measure rt 100 (fun () ->
              ignore (A.Api.create rt ~size:64 ~name:"o" () : unit A.Aobject.t))
        in
        let local_obj = A.Api.create rt ~size:64 ~name:"local" () in
        let local =
          measure rt 100 (fun () -> A.Api.invoke rt local_obj (fun () -> ()))
        in
        let home = A.Api.create rt ~size:64 ~name:"home" () in
        let target = A.Api.create rt ~size:64 ~name:"target" () in
        A.Api.move_to rt target ~dest:1;
        let remote =
          A.Api.invoke rt home (fun () ->
              measure rt 50 (fun () -> A.Api.invoke rt target (fun () -> ())))
        in
        let ball = A.Api.create rt ~size:1024 ~name:"ball" () in
        A.Api.move_to rt ball ~dest:1;
        let flip = ref 2 in
        let move =
          measure rt 50 (fun () ->
              A.Api.move_to rt ball ~dest:!flip;
              flip := (if !flip = 1 then 2 else 1))
        in
        let start_join =
          measure rt 100 (fun () ->
              let t = A.Api.start rt (fun () -> ()) in
              A.Api.join rt t)
        in
        (create, local, remote, move, start_join))

let table1 () =
  header
    "Table 1: Latency of Amber operations (paper §5; Firefly conditions: \
     light load,\none-packet transfers, one-hop forwarding chains)";
  let create, local, remote, move, start_join = table1_measure () in
  Printf.printf "%-24s %14s %14s %8s\n" "operation" "paper (ms)"
    "measured (ms)" "ratio";
  let row name paper got =
    Printf.printf "%-24s %14.3f %14.3f %8.2f\n" name (paper *. 1e3)
      (got *. 1e3) (got /. paper)
  in
  row "object create" 0.18e-3 create;
  row "local invoke/return" 0.012e-3 local;
  row "remote invoke/return" 8.32e-3 remote;
  row "object move" 12.43e-3 move;
  row "thread start/join" 1.33e-3 start_join

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let sor_run ~nodes ~cpus ~overlap ?sections p iters =
  let cfg = A.Config.make ~nodes ~cpus () in
  A.Cluster.run_value cfg (fun rt ->
      let c = W.Sor_amber.default_cfg rt in
      let c = { c with W.Sor_amber.overlap } in
      let c =
        match sections with
        | Some s ->
          {
            c with
            W.Sor_amber.sections = s;
            workers_per_section = max 1 (nodes * cpus / s);
          }
        | None -> c
      in
      W.Sor_amber.run rt p ~cfg:c ~iters ())

let fig2 ?(iters = 20) () =
  header
    "Figure 2: Measured speedup, Amber Red/Black SOR, 122x842 grid \
     (paper §6)\nbaseline: sequential implementation on one CPU";
  let p = W.Sor_core.default in
  let seq = W.Sor_seq.predicted_elapsed p ~iters in
  Printf.printf "sequential solve: %.2f virtual s (%d iterations)\n\n" seq
    iters;
  Printf.printf "%-18s %6s %10s %9s %9s %9s\n" "config" "cpus" "elapsed(s)"
    "speedup" "paper" "remote";
  let case label nodes cpus overlap paper =
    let r = sor_run ~nodes ~cpus ~overlap p iters in
    Printf.printf "%-18s %6d %10.3f %9.2f %9s %9d\n%!" label (nodes * cpus)
      r.W.Sor_amber.compute_elapsed
      (seq /. r.W.Sor_amber.compute_elapsed)
      paper r.W.Sor_amber.remote_invocations
  in
  case "1Nx1P" 1 1 true "1.0";
  case "1Nx2P" 1 2 true "~2";
  case "1Nx4P" 1 4 true "~4";
  case "2Nx2P" 2 2 true "~4";
  case "2Nx4P" 2 4 true "~7.5";
  case "3Nx4P (6 sect)" 3 4 true "-";
  case "4Nx1P" 4 1 true "~4";
  case "4Nx2P" 4 2 true "~7.5";
  case "4Nx4P" 4 4 true "~13";
  case "6Nx4P (6 sect)" 6 4 true "-";
  case "8Nx2P" 8 2 true "-";
  case "8Nx4P" 8 4 true "25";
  case "8Nx4P no-overlap" 8 4 false "~21"

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let fig3 ?(iters = 20) () =
  header
    "Figure 3: Effect of varying SOR problem size at 4Nx4P (paper §6)\n\
     'X' marks the 122x842 grid used in Figure 2";
  Printf.printf "%-14s %10s %12s %10s %9s\n" "grid" "points" "seq(s)"
    "elapsed(s)" "speedup";
  let sizes =
    [
      (30, 208, "");
      (43, 295, "");
      (61, 421, "");
      (86, 595, "");
      (122, 842, "X");
      (152, 1048, "");
      (172, 1190, "");
      (199, 1375, "");
      (244, 1684, "");
    ]
  in
  List.iter
    (fun (rows, cols, mark) ->
      let p = W.Sor_core.with_size W.Sor_core.default ~rows ~cols in
      let seq = W.Sor_seq.predicted_elapsed p ~iters in
      let r = sor_run ~nodes:4 ~cpus:4 ~overlap:true p iters in
      Printf.printf "%-14s %10d %12.2f %10.3f %8.2f%s\n%!"
        (Printf.sprintf "%dx%d" rows cols)
        (W.Sor_core.interior_points p)
        seq r.W.Sor_amber.compute_elapsed
        (seq /. r.W.Sor_amber.compute_elapsed)
        (if mark = "" then "" else "  <-- " ^ mark))
    sizes

(* ------------------------------------------------------------------ *)
(* Ablation A1: lock traffic (§4.1)                                    *)
(* ------------------------------------------------------------------ *)

let ablate_lock () =
  header
    "Ablation A1 (§4.1): contended lock across 4 nodes — Amber lock object \
     vs\nIvy lock-in-a-page (data shipping) vs Ivy RPC lock";
  let nodes = 4 in
  let rounds = 15 in
  let cs = 2e-3 in
  let think = 1e-3 in
  (* Amber: a lock object on node 0, contenders anchored on nodes 0/1. *)
  let amber_time, amber_msgs =
    A.Cluster.run_value (A.Config.make ~nodes ~cpus:2 ()) (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let anchors =
          List.init nodes (fun n ->
              let a = A.Api.create rt ~name:(Printf.sprintf "a%d" n) () in
              if n <> 0 then A.Api.move_to rt a ~dest:n;
              a)
        in
        let c0 = (A.Runtime.counters rt).A.Runtime.thread_migrations in
        let t0 = A.Api.now rt in
        let ts =
          List.map
            (fun anchor ->
              A.Api.start_invoke rt anchor (fun () ->
                  for _ = 1 to rounds do
                    A.Sync.Lock.with_lock rt lock (fun () ->
                        Sim.Fiber.consume cs);
                    Sim.Fiber.consume think
                  done))
            anchors
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        ( A.Api.now rt -. t0,
          (A.Runtime.counters rt).A.Runtime.thread_migrations - c0 ))
  in
  let ivy_case ~use_rpc =
    A.Cluster.run_value (A.Config.make ~nodes ~cpus:2 ()) (fun rt ->
        let dsm = Ivy.Dsm.create rt ~pages:1 () in
        let rpc_lock = Ivy.Sync_rpc.Lock.create rt ~home:0 in
        let dsm_lock = ref None in
        Ivy.Process.join
          (Ivy.Process.spawn rt ~node:0 ~name:"init" (fun () ->
               dsm_lock := Some (Ivy.Sync_dsm.Lock.create dsm ~addr:0)));
        let dsm_lock = Option.get !dsm_lock in
        let t0 = A.Runtime.now rt in
        let procs =
          List.init nodes (fun node ->
              Ivy.Process.spawn rt ~node ~name:(string_of_int node) (fun () ->
                  for _ = 1 to rounds do
                    (if use_rpc then
                       Ivy.Sync_rpc.Lock.with_lock rpc_lock (fun () ->
                           Sim.Fiber.consume cs)
                     else
                       Ivy.Sync_dsm.Lock.with_lock dsm_lock (fun () ->
                           Sim.Fiber.consume cs));
                    Sim.Fiber.consume think
                  done))
        in
        List.iter (fun p -> Ivy.Process.join p) procs;
        let st = Ivy.Dsm.stats dsm in
        ( A.Runtime.now rt -. t0,
          st.Ivy.Dsm.page_transfers,
          st.Ivy.Dsm.read_faults + st.Ivy.Dsm.write_faults ))
  in
  let dsm_time, dsm_transfers, dsm_faults = ivy_case ~use_rpc:false in
  let rpc_time, _, _ = ivy_case ~use_rpc:true in
  Printf.printf
    "%d critical sections on each of %d nodes, %.0f ms each, %.0f ms think \
     time\n\n"
    rounds nodes (cs *. 1e3) (think *. 1e3);
  Printf.printf "%-28s %12s %30s\n" "system" "elapsed(s)" "coherence traffic";
  Printf.printf "%-28s %12.3f %30s\n" "Amber lock object" amber_time
    (Printf.sprintf "%d thread flights" amber_msgs);
  Printf.printf "%-28s %12.3f %30s\n" "Ivy lock in shared page" dsm_time
    (Printf.sprintf "%d page moves, %d faults" dsm_transfers dsm_faults);
  Printf.printf "%-28s %12.3f %30s\n" "Ivy RPC lock (the fix)" rpc_time "none"

(* ------------------------------------------------------------------ *)
(* Ablation A2: page size vs object transfer (§4.2)                    *)
(* ------------------------------------------------------------------ *)

let ablate_pages () =
  header
    "Ablation A2 (§4.2): SOR edge exchange, Amber single-invocation \
     transfer vs\nIvy page faults at several page sizes (32x64 grid, 4 \
     nodes, 6 iterations)";
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:32 ~cols:64 in
  let iters = 6 in
  let amber =
    A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:2 ()) (fun rt ->
        let c = W.Sor_amber.default_cfg rt in
        W.Sor_amber.run rt p ~cfg:{ c with W.Sor_amber.sections = 4 } ~iters ())
  in
  Printf.printf "%-26s %10s %12s %14s\n" "system" "elapsed(s)" "messages"
    "bytes moved";
  Printf.printf "%-26s %10.3f %12d %14s\n" "Amber (object edges)"
    amber.W.Sor_amber.compute_elapsed amber.W.Sor_amber.remote_invocations
    "(edge payloads)";
  List.iter
    (fun page_size ->
      let cfg = A.Config.make ~nodes:4 ~cpus:2 () in
      let cfg = { cfg with A.Config.vm_page_size = page_size } in
      let r = A.Cluster.run_value cfg (fun rt -> W.Sor_ivy.run rt p ~iters ()) in
      Printf.printf "%-26s %10.3f %12d %14d\n%!"
        (Printf.sprintf "Ivy, %4d B pages" page_size)
        r.W.Sor_ivy.compute_elapsed
        (r.W.Sor_ivy.read_faults + r.W.Sor_ivy.write_faults
       + r.W.Sor_ivy.invalidations)
        r.W.Sor_ivy.transfer_bytes)
    [ 512; 1024; 2048; 4096 ]

(* ------------------------------------------------------------------ *)
(* Ablation A3: forwarding chains (§3.3)                               *)
(* ------------------------------------------------------------------ *)

let ablate_chain () =
  header
    "Ablation A3 (§3.3): invoking an object after k moves, from a node \
     with stale\ndescriptors — first invocation chases the chain, then \
     caching kicks in";
  Printf.printf "%-8s %18s %20s\n" "k moves" "first invoke (ms)"
    "second invoke (ms)";
  List.iter
    (fun k ->
      let first, second =
        A.Cluster.run_value (A.Config.make ~nodes:8 ~cpus:2 ()) (fun rt ->
            let o = A.Api.create rt ~name:"o" () in
            let anchor = A.Api.create rt ~name:"anchor" () in
            A.Api.move_to rt anchor ~dest:7;
            (* Another thread walks the object through k nodes; node 0's
               descriptor goes stale. *)
            let mover =
              A.Api.start_invoke rt anchor (fun () ->
                  for d = 1 to k do
                    A.Api.move_to rt o ~dest:d
                  done)
            in
            A.Api.join rt mover;
            let home = A.Api.create rt ~name:"home" () in
            A.Api.invoke rt home (fun () ->
                let t0 = A.Api.now rt in
                A.Api.invoke rt o (fun () -> ());
                let first = A.Api.now rt -. t0 in
                let t1 = A.Api.now rt in
                A.Api.invoke rt o (fun () -> ());
                (first, A.Api.now rt -. t1)))
      in
      Printf.printf "%-8d %18.2f %20.2f\n%!" k (first *. 1e3) (second *. 1e3))
    [ 1; 2; 3; 4; 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* Ablation A4: move cost vs CPUs per node (§3.5)                      *)
(* ------------------------------------------------------------------ *)

let ablate_movecpus () =
  header
    "Ablation A4 (§3.5): \"the need to preempt all running threads causes \
     the cost\nof mobility to increase as processors are added to a node\" \
     — MoveTo with a\nbusy source node";
  Printf.printf "%-6s %16s %14s %22s\n" "cpus" "move latency(ms)"
    "preemptions" "victim overhead (ms)";
  List.iter
    (fun cpus ->
      let latency, preempts, victim_ms =
        A.Cluster.run_value (A.Config.make ~nodes:2 ~cpus ()) (fun rt ->
            (* Saturate node 0 with compute threads. *)
            let stop = ref false in
            let busy =
              List.init cpus (fun i ->
                  A.Api.start rt ~name:(Printf.sprintf "busy%d" i) (fun () ->
                      while not !stop do
                        Sim.Fiber.consume 1e-3
                      done))
            in
            let ball = A.Api.create rt ~size:1024 ~name:"ball" () in
            let machine = A.Runtime.machine rt 0 in
            let p0 = Hw.Machine.preemption_count machine in
            let moves = 10 in
            let t0 = A.Api.now rt in
            for i = 1 to moves do
              A.Api.move_to rt ball ~dest:(if i land 1 = 1 then 1 else 0)
            done;
            let latency = (A.Api.now rt -. t0) /. float_of_int moves in
            let preempts = Hw.Machine.preemption_count machine - p0 in
            stop := true;
            List.iter (fun t -> A.Api.join rt t) busy;
            let victim =
              float_of_int preempts
              *. (A.Runtime.cost rt).A.Cost_model.preempt_victim_cpu
            in
            (latency, preempts, victim *. 1e3))
      in
      Printf.printf "%-6d %16.2f %14d %22.2f\n%!" cpus (latency *. 1e3)
        preempts victim_ms)
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Ablation A5: overlap of communication and computation (§6)          *)
(* ------------------------------------------------------------------ *)

let ablate_overlap ?(iters = 15) () =
  header
    "Ablation A5 (§6): overlapping edge exchange with computation \
     (122x842 grid)";
  let p = W.Sor_core.default in
  let seq = W.Sor_seq.predicted_elapsed p ~iters in
  Printf.printf "%-10s %16s %16s %10s\n" "config" "overlap on (x)"
    "overlap off (x)" "gain";
  List.iter
    (fun (nodes, cpus) ->
      let speedup overlap =
        let r = sor_run ~nodes ~cpus ~overlap p iters in
        seq /. r.W.Sor_amber.compute_elapsed
      in
      let on = speedup true and off = speedup false in
      Printf.printf "%dNx%dP %4s %16.2f %16.2f %9.1f%%\n%!" nodes cpus "" on
        off
        ((on -. off) /. off *. 100.0))
    [ (2, 4); (4, 4); (8, 4) ]

(* ------------------------------------------------------------------ *)
(* Ablation A9: partitioning granularity (§6)                          *)
(* ------------------------------------------------------------------ *)

let ablate_partitioning () =
  header
    "Ablation A9 (§6): choosing the partitioning — too few sections \
     unbalances the\nload, too many drown in communication (61x421 grid, \
     4Nx4P, 12 iterations)";
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:61 ~cols:421 in
  let iters = 12 in
  let seq = W.Sor_seq.predicted_elapsed p ~iters in
  Printf.printf "%-10s %12s %10s %10s %16s\n" "sections" "elapsed(s)"
    "speedup" "remote" "idle CPU share";
  List.iter
    (fun sections ->
      let r, idle_share =
        A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:4 ()) (fun rt ->
            let c = W.Sor_amber.default_cfg rt in
            let r =
              W.Sor_amber.run rt p
                ~cfg:
                  {
                    c with
                    W.Sor_amber.sections;
                    workers_per_section = max 1 (16 / sections);
                  }
                ~iters ()
            in
            let busy =
              Array.fold_left
                (fun acc node ->
                  acc +. Hw.Machine.total_busy_time (A.Runtime.machine rt node))
                0.0
                (Array.init 4 Fun.id)
            in
            let capacity = 16.0 *. r.W.Sor_amber.compute_elapsed in
            (r, Float.max 0.0 (1.0 -. (busy /. capacity))))
      in
      Printf.printf "%-10d %12.3f %10.2f %10d %15.1f%%\n%!" sections
        r.W.Sor_amber.compute_elapsed
        (seq /. r.W.Sor_amber.compute_elapsed)
        r.W.Sor_amber.remote_invocations (idle_share *. 100.0))
    [ 1; 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Ablation A8: Ivy owner-location strategy [Li 86]                    *)
(* ------------------------------------------------------------------ *)

let ablate_manager () =
  header
    "Ablation A8 (Ivy substrate, [Li 86]): dynamic distributed manager \
     (hint\nchasing) vs fixed per-page managers — migratory pages, 6 nodes, \
     ownership\nrotating round-robin";
  let nodes = 6 in
  let pages = 4 in
  let rounds = 6 in
  Printf.printf "%-22s %10s %12s %12s %14s\n" "strategy" "elapsed(s)"
    "transfers" "hint hops" "mgr lookups";
  List.iter
    (fun (label, manager) ->
      let elapsed, st =
        A.Cluster.run_value (A.Config.make ~nodes ~cpus:2 ()) (fun rt ->
            let dsm = Ivy.Dsm.create rt ~manager ~pages () in
            let t0 = A.Runtime.now rt in
            (* Ownership of every page migrates node to node: each write
               must locate the previous owner.  Under hint chasing, a
               node's hint is as stale as the number of transfers since it
               last touched the page. *)
            for round = 1 to rounds do
              ignore round;
              for node = 0 to nodes - 1 do
                Ivy.Process.join
                  (Ivy.Process.spawn rt ~node ~name:"writer" (fun () ->
                       for page = 0 to pages - 1 do
                         Ivy.Dsm.write_u8 dsm
                           (page * Ivy.Dsm.page_size dsm)
                           ((round + node) land 0xff)
                       done))
              done
            done;
            (A.Runtime.now rt -. t0, Ivy.Dsm.stats dsm))
      in
      Printf.printf "%-22s %10.3f %12d %12d %14d\n%!" label elapsed
        st.Ivy.Dsm.page_transfers st.Ivy.Dsm.forward_hops
        st.Ivy.Dsm.manager_lookups)
    [ ("dynamic (hints)", Ivy.Dsm.Dynamic); ("fixed managers", Ivy.Dsm.Fixed) ]

(* ------------------------------------------------------------------ *)
(* Ablation A7: locality via distributed pools (intro / §2.3)          *)
(* ------------------------------------------------------------------ *)

let ablate_locality () =
  header
    "Ablation A7 (§1.1/§2.3): expressing locality — branch-and-bound TSP \
     with\nper-node work pools + stealing vs one centralized pool";
  let base = { W.Tsp.default_cfg with W.Tsp.cities = 10; workers_per_node = 2 } in
  Printf.printf "%-26s %12s %12s %10s %8s\n" "structure" "elapsed(s)"
    "expansions" "remote" "steals";
  List.iter
    (fun (label, centralize) ->
      let r =
        A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:2 ()) (fun rt ->
            W.Tsp.run rt { base with W.Tsp.centralize })
      in
      Printf.printf "%-26s %12.3f %12d %10d %8d\n%!" label r.W.Tsp.elapsed
        r.W.Tsp.expansions r.W.Tsp.remote_invocations r.W.Tsp.steals)
    [ ("per-node pools + stealing", false); ("one central pool", true) ]

(* ------------------------------------------------------------------ *)
(* Ablation A6: replaceable scheduler (§2.1)                           *)
(* ------------------------------------------------------------------ *)

let ablate_sched () =
  header
    "Ablation A6 (§2.1): installing a custom scheduler at runtime — mean \
     latency of\nshort interactive tasks arriving among long compute \
     threads (1 node, 2 CPUs)";
  (* Long threads have finite work: under LIFO, CPU-bound spinners that
     re-enqueue themselves on preemption would starve everything else
     forever (a real LIFO hazard the numbers below show in miniature). *)
  let run_policy policy =
    A.Cluster.run_value (A.Config.make ~nodes:1 ~cpus:2 ()) (fun rt ->
        A.Scheduler.install rt ~node:0 policy;
        let longs =
          List.init 4 (fun i ->
              A.Api.start rt ~name:(Printf.sprintf "long%d" i) (fun () ->
                  for _ = 1 to 40 do
                    Sim.Fiber.consume 10e-3
                  done))
        in
        let shorts = ref [] in
        for k = 1 to 10 do
          Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 30e-3;
          let born = A.Api.now rt in
          let t =
            A.Athread.start rt
              ~name:(Printf.sprintf "short%d" k)
              ~priority:10
              (fun () ->
                Sim.Fiber.consume 5e-3;
                A.Api.now rt -. born)
          in
          shorts := t :: !shorts
        done;
        let latencies = List.map (fun t -> A.Api.join rt t) !shorts in
        List.iter (fun t -> A.Api.join rt t) longs;
        List.fold_left ( +. ) 0.0 latencies
        /. float_of_int (List.length latencies))
  in
  Printf.printf "%-22s %24s\n" "scheduler" "mean short-task latency";
  List.iter
    (fun (name, policy) ->
      Printf.printf "%-22s %21.2f ms\n%!" name (run_policy policy *. 1e3))
    [
      ("fifo (default)", A.Scheduler.Fifo);
      ("lifo", A.Scheduler.Lifo);
      ("priority (custom)", A.Scheduler.Priority);
    ]

(* ------------------------------------------------------------------ *)
(* Ablation A10: media access — idealized bus vs CSMA/CD               *)
(* ------------------------------------------------------------------ *)

let ablate_mac () =
  header
    "Ablation A10 (substrate): idealized FIFO bus vs real CSMA/CD \
     Ethernet —\ndoes collision backoff change the paper's results?";
  let p = W.Sor_core.default in
  let iters = 10 in
  let seq = W.Sor_seq.predicted_elapsed p ~iters in
  Printf.printf "%-12s %22s %14s\n" "MAC" "SOR 8Nx4P speedup" "collisions";
  List.iter
    (fun (label, mac) ->
      let cfg = A.Config.make ~nodes:8 ~cpus:4 () in
      let cfg = { cfg with A.Config.ether_mac = mac } in
      let speedup, colls =
        A.Cluster.run_value cfg (fun rt ->
            let r = W.Sor_amber.run rt p ~iters () in
            ( seq /. r.W.Sor_amber.compute_elapsed,
              Hw.Ethernet.collisions (A.Runtime.ether rt) ))
      in
      Printf.printf "%-12s %22.2f %14d\n%!" label speedup colls)
    [ ("fifo", Hw.Ethernet.Fifo); ("csma/cd", Hw.Ethernet.Csma_cd) ];
  (* A saturating burst where the MAC matters: every node fires a volley
     of packets at once. *)
  Printf.printf
    "\nsaturating burst: 8 nodes x 30 simultaneous 1 KB packets\n";
  Printf.printf "%-12s %14s %14s %16s\n" "MAC" "makespan(ms)" "collisions"
    "medium busy(ms)";
  List.iter
    (fun (label, mac) ->
      let e = Sim.Engine.create () in
      let n = Hw.Ethernet.create ~engine:e ~mac () in
      let last = ref 0.0 in
      for src = 0 to 7 do
        for _ = 1 to 30 do
          ignore
            (Hw.Ethernet.send n
               (Hw.Packet.make ~src ~dst:(7 - src) ~size:1024 ~kind:"b"
                  (fun () -> last := Sim.Engine.now e)))
        done
      done;
      ignore (Sim.Engine.run e : int);
      Printf.printf "%-12s %14.2f %14d %16.2f\n%!" label (!last *. 1e3)
        (Hw.Ethernet.collisions n)
        (Hw.Ethernet.busy_seconds n *. 1e3))
    [ ("fifo", Hw.Ethernet.Fifo); ("csma/cd", Hw.Ethernet.Csma_cd) ]

(* ------------------------------------------------------------------ *)
(* Host-side microbenchmarks (Bechamel)                                *)
(* ------------------------------------------------------------------ *)

let host () =
  header
    "Host microbenchmarks (wall-clock cost of the simulator itself, \
     Bechamel OLS)";
  let open Bechamel in
  let test_event_queue =
    Test.make ~name:"event-queue add+pop x100"
      (Staged.stage (fun () ->
           let q = Sim.Event_queue.create () in
           for i = 0 to 99 do
             Sim.Event_queue.add q ~time:(float_of_int (i * 7 mod 13)) i
           done;
           while not (Sim.Event_queue.is_empty q) do
             ignore (Sim.Event_queue.pop q)
           done))
  in
  let test_fiber =
    Test.make ~name:"fiber start+consume x10"
      (Staged.stage (fun () ->
           let rec drive = function
             | Sim.Fiber.Done _ -> ()
             | Sim.Fiber.Consumed (_, r) -> drive (r.Sim.Fiber.resume ())
             | Sim.Fiber.Yielded r -> drive (r.Sim.Fiber.resume ())
             | Sim.Fiber.Blocked (_, r) -> drive (r.Sim.Fiber.resume ())
           in
           drive
             (Sim.Fiber.start (fun () ->
                  for _ = 1 to 10 do
                    Sim.Fiber.consume 1e-3
                  done))))
  in
  let test_cluster_boot =
    Test.make ~name:"2Nx2P cluster boot + 100 local invokes"
      (Staged.stage (fun () ->
           ignore
             (A.Cluster.run_value (A.Config.make ~nodes:2 ~cpus:2 ())
                (fun rt ->
                  let o = A.Api.create rt ~name:"o" () in
                  for _ = 1 to 100 do
                    A.Api.invoke rt o (fun () -> ())
                  done))))
  in
  let test_small_sor =
    Test.make ~name:"SOR 16x32, 2Nx2P, 3 iters"
      (Staged.stage (fun () ->
           let p = W.Sor_core.with_size W.Sor_core.default ~rows:16 ~cols:32 in
           ignore
             (A.Cluster.run_value (A.Config.make ~nodes:2 ~cpus:2 ())
                (fun rt -> W.Sor_amber.run rt p ~iters:3 ()))))
  in
  let tests =
    Test.make_grouped ~name:"sim"
      [ test_event_queue; test_fiber; test_cluster_boot; test_small_sor ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "%-45s %16s\n" "benchmark" "time per run";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        Printf.printf "%-45s %16s\n" name pretty
      | Some _ | None -> Printf.printf "%-45s %16s\n" name "(no estimate)")
    results

(* ------------------------------------------------------------------ *)
(* Machine-readable baseline: --json and check-json (the CI guard)     *)
(* ------------------------------------------------------------------ *)

(* A reduced, fast subset of the paper numbers: Table 1 latencies, one
   Fig-2 and one Fig-3 SOR configuration, and the read-mostly workload
   with and without replication.  Everything is a deterministic
   virtual-time measurement, so a committed baseline (BENCH_table1.json)
   only drifts when a protocol or cost-model change drifts it —
   [check_json] fails the build when any metric slows by more than 10%. *)

let readmostly_measure ~replicate () =
  A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:2 ()) (fun rt ->
      W.Read_mostly.run rt
        {
          W.Read_mostly.objects = 4;
          readers_per_node = 2;
          reads_per_reader = 30;
          write_every = 10;
          replicate;
        })

(* Skewed SOR (every section created on node 0) with and without the
   Amber-LB hybrid balancer: the paper's Fig-3 grid, so the recovery the
   balancer delivers is itself a pinned regression metric. *)
let balance_measure ~balance () =
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:61 ~cols:421 in
  A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:4 ()) (fun rt ->
      let c =
        {
          (W.Sor_amber.default_cfg rt) with
          W.Sor_amber.placement = Some (fun _ -> 0);
        }
      in
      let lb =
        if balance then
          Some
            (Balance.Driver.start rt
               {
                 Balance.Driver.default_cfg with
                 Balance.Driver.policy = Balance.Rebalancer.Hybrid;
                 steal = true;
               })
        else None
      in
      let r = W.Sor_amber.run rt p ~cfg:c ~iters:10 () in
      (match lb with Some lb -> Balance.Driver.stop lb | None -> ());
      r.W.Sor_amber.compute_elapsed)

(* Profiled Fig-3 run: remote-invoke latency percentiles and the share of
   the main thread's critical path spent on the wire.  Pinning the
   percentiles catches tail regressions that the elapsed-time metrics
   average away; pinning the network fraction catches protocols that got
   chattier without getting slower (yet). *)
let profiled_sor_measure () =
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:61 ~cols:421 in
  let box = ref None in
  A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:4 ()) (fun rt ->
      let prof = Scope.Profile.attach rt in
      ignore (W.Sor_amber.run rt p ~iters:5 () : W.Sor_amber.result);
      Scope.Profile.seal prof;
      let lat = A.Runtime.remote_invoke_latency rt in
      let pct q = Sim.Stats.Summary.percentile lat q *. 1e6 in
      box :=
        Some
          ( pct 50.0,
            pct 99.0,
            Scope.Critical_path.network_frac (Scope.Profile.critical_path prof)
          ));
  Option.get !box

(* Pipelined (async) Fig-3 SOR with wire-level coalescing on: the elapsed
   time pins the overlap win delivered by Amber-Async, and the coalesced
   fraction pins how much of the small-datagram traffic the batching
   layer actually captures. *)
let async_sor_measure () =
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:61 ~cols:421 in
  A.Cluster.run_value
    (A.Config.make ~nodes:4 ~cpus:4 ~coalesce:Topaz.Rpc.default_coalesce ())
    (fun rt ->
      let r = W.Sor_pipe.run rt p ~iters:5 () in
      let z = Topaz.Rpc.coalescing (A.Runtime.rpc rt) in
      let frac =
        float_of_int z.Topaz.Rpc.coal_batched
        /. float_of_int (max 1 z.Topaz.Rpc.coal_eligible)
      in
      (r.W.Sor_pipe.compute_elapsed, frac))

(* Fig-3 SOR riding out a transient node-3 outage (down at 0.2 s, back
   at 0.6 s): the elapsed time pins what the freeze plus the catch-up
   after restart costs.  The companion fail-stop metric below counts
   replicas promoted to master while recovering a small replicated
   object farm — a protocol-shape number, so the regression gate
   catches recovery getting lazier (fewer promotions than objects) as
   well as slower. *)
let crash_sor_measure () =
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:61 ~cols:421 in
  A.Cluster.run_value
    (A.Config.make ~nodes:4 ~cpus:4
       ~crashes:[ { A.Config.cnode = 3; at = 0.2; restart = Some 0.6 } ]
       ())
    (fun rt ->
      let r = W.Sor_amber.run rt p ~iters:10 () in
      r.W.Sor_amber.compute_elapsed)

let promotion_measure () =
  let cfg =
    { (A.Config.make ~nodes:4 ~cpus:2 ()) with A.Config.rpc_reliable = true }
  in
  A.Cluster.run_value cfg (fun rt ->
      let copy r = ref !r in
      let objs =
        List.init 8 (fun i ->
            A.Api.create rt ~name:(Printf.sprintf "farm%d" i) (ref i))
      in
      List.iter
        (fun o ->
          A.Api.move_to rt o ~dest:3;
          A.Api.replicate rt ~copy o ~dest:1;
          A.Api.replicate rt ~copy o ~dest:2)
        objs;
      A.Runtime.fail_stop rt ~node:3;
      (* Recovery must leave every object readable; a silent loss here
         would make the promotion count meaningless. *)
      List.iteri
        (fun i o ->
          if A.Api.invoke rt o (fun r -> !r) <> i then
            failwith "crash recovery bench: promoted object lost its value")
        objs;
      float_of_int (A.Runtime.counters rt).A.Runtime.recovery_promotions)


(* 2x-overload serving on the Table-1 cluster with admission control on:
   the admitted p99 pins the backpressure guarantee (bounded tail under
   overload), the goodput pins how close shedding keeps the cluster to
   its nominal capacity, and the reject fraction pins the shed rate
   itself.  All three drift only when the serving or admission protocol
   changes, so they are regression-gated like the paper numbers. *)
let serve_measure () =
  A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:4 ()) (fun rt ->
      let cfg =
        {
          Serve.default_cfg with
          Serve.arrival =
            Serve.Trafficgen.Poisson
              (2.0 *. Serve.capacity_rps Serve.default_cfg ~nodes:4);
          duration = 0.3;
          admission = Some Serve.default_admission;
        }
      in
      let r = Serve.run rt cfg in
      ( Sim.Stats.Summary.percentile r.Serve.latency 99.0 *. 1e3,
        r.Serve.goodput_rps,
        r.Serve.reject_frac ))

let json_metrics () =
  let create, local, remote, move, start_join = table1_measure () in
  let sor_elapsed ~nodes ~cpus p iters =
    (sor_run ~nodes ~cpus ~overlap:true p iters).W.Sor_amber.compute_elapsed
  in
  let p2 = W.Sor_core.default in
  let p3 = W.Sor_core.with_size W.Sor_core.default ~rows:61 ~cols:421 in
  let rm_on = readmostly_measure ~replicate:true () in
  let rm_off = readmostly_measure ~replicate:false () in
  let mean_ms s = Sim.Stats.Summary.mean s *. 1e3 in
  [
    ("table1_create_ms", create *. 1e3);
    ("table1_local_invoke_ms", local *. 1e3);
    ("table1_remote_invoke_ms", remote *. 1e3);
    ("table1_object_move_ms", move *. 1e3);
    ("table1_thread_start_join_ms", start_join *. 1e3);
    ("fig2_sor_122x842_1n2p_elapsed_s", sor_elapsed ~nodes:1 ~cpus:2 p2 5);
    ("fig2_sor_122x842_4n4p_elapsed_s", sor_elapsed ~nodes:4 ~cpus:4 p2 5);
    ("fig3_sor_61x421_4n4p_elapsed_s", sor_elapsed ~nodes:4 ~cpus:4 p3 5);
    ( "readmostly_replicated_read_mean_ms",
      mean_ms rm_on.W.Read_mostly.read_latency );
    ( "readmostly_unreplicated_read_mean_ms",
      mean_ms rm_off.W.Read_mostly.read_latency );
    ("readmostly_replicated_elapsed_s", rm_on.W.Read_mostly.elapsed);
    ("balance_skewed_sor_4n4p_elapsed_s", balance_measure ~balance:false ());
    ("balance_hybrid_sor_4n4p_elapsed_s", balance_measure ~balance:true ());
  ]
  @
  let ri_p50, ri_p99, cp_net = profiled_sor_measure () in
  let async_elapsed, coal_frac = async_sor_measure () in
  [
    ("remote_invoke_p50_us", ri_p50);
    ("remote_invoke_p99_us", ri_p99);
    ("critical_path_frac_net", cp_net);
    ("async_sor_4n4p_elapsed_s", async_elapsed);
    ("rpc_coalesced_frac", coal_frac);
    ("crash_recovery_sor_4n4p_elapsed_s", crash_sor_measure ());
    ("recovery_promotions", promotion_measure ());
  ]
  @
  let serve_p99, serve_goodput, serve_rej = serve_measure () in
  [
    ("serve_admitted_p99_ms", serve_p99);
    ("serve_goodput_rps", serve_goodput);
    ("serve_overload_reject_frac", serve_rej);
  ]

let print_json () =
  let ms = json_metrics () in
  let last = List.length ms - 1 in
  print_string "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.printf "  %S: %.9g%s\n" k v (if i = last then "" else ","))
    ms;
  print_string "}\n"

(* The baseline is the flat one-number-per-line object [print_json]
   emits; parsing it back needs no JSON library. *)
let parse_baseline file =
  let ic = open_in file in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match Scanf.sscanf line " %S : %f" (fun k v -> (k, v)) with
       | kv -> entries := kv :: !entries
       | exception Scanf.Scan_failure _ | (exception End_of_file) -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* Throughput-style metrics (named *_rps) regress downward; everything
   else is a latency/cost number and regresses upward. *)
let higher_is_better k =
  let n = String.length k in
  n >= 4 && String.sub k (n - 4) 4 = "_rps"

let check_json file =
  let base = parse_baseline file in
  if base = [] then begin
    Printf.eprintf "check-json: no metrics found in %s\n" file;
    exit 1
  end;
  let cur = json_metrics () in
  (* Collect every failure and report them all at the end — a run with
     three regressions names three metrics, not just the first. *)
  let failures = ref [] in
  let fail k msg = failures := (k, msg) :: !failures in
  Printf.printf "%-40s %14s %14s %9s\n" "metric" "baseline" "current" "delta";
  List.iter
    (fun (k, b) ->
      match List.assoc_opt k cur with
      | None ->
        fail k "missing from this run";
        Printf.printf "%-40s %14.6g %14s %9s\n" k b "missing" "FAIL"
      | Some c ->
        let delta = if b <> 0.0 then (c -. b) /. b *. 100.0 else 0.0 in
        let regressed =
          if higher_is_better k then c < b *. 0.90 else c > b *. 1.10
        in
        if regressed then
          fail k (Printf.sprintf "%.6g -> %.6g (%+.1f%%)" b c delta);
        Printf.printf "%-40s %14.6g %14.6g %+8.1f%%%s\n" k b c delta
          (if regressed then "  REGRESSION" else ""))
    base;
  List.iter
    (fun (k, _) ->
      if not (List.mem_assoc k base) then
        Printf.printf "note: metric %s is not in the baseline yet\n" k)
    cur;
  match List.rev !failures with
  | [] -> print_endline "baseline check passed"
  | fs ->
    Printf.printf "\nFAILED: %d metric(s) regressed or went missing:\n"
      (List.length fs);
    List.iter (fun (k, msg) -> Printf.printf "  %-40s %s\n" k msg) fs;
    exit 1

(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [table1|fig2|fig3|ablate-lock|ablate-pages|ablate-chain|\n\
    \                ablate-movecpus|ablate-overlap|ablate-sched|ablate-locality|ablate-manager|\n\
    \     ablate-partitioning|ablate-mac|host|all|--json|check-json FILE]"

let () =
  let run_all () =
    table1 ();
    fig2 ();
    fig3 ();
    ablate_lock ();
    ablate_pages ();
    ablate_chain ();
    ablate_movecpus ();
    ablate_overlap ();
    ablate_sched ();
    ablate_locality ();
    ablate_manager ();
    ablate_partitioning ();
    ablate_mac ();
    host ()
  in
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | [ _; "table1" ] -> table1 ()
  | [ _; "fig2" ] -> fig2 ()
  | [ _; "fig3" ] -> fig3 ()
  | [ _; "ablate-lock" ] -> ablate_lock ()
  | [ _; "ablate-pages" ] -> ablate_pages ()
  | [ _; "ablate-chain" ] -> ablate_chain ()
  | [ _; "ablate-movecpus" ] -> ablate_movecpus ()
  | [ _; "ablate-overlap" ] -> ablate_overlap ()
  | [ _; "ablate-sched" ] -> ablate_sched ()
  | [ _; "ablate-locality" ] -> ablate_locality ()
  | [ _; "ablate-manager" ] -> ablate_manager ()
  | [ _; "ablate-partitioning" ] -> ablate_partitioning ()
  | [ _; "ablate-mac" ] -> ablate_mac ()
  | [ _; "host" ] -> host ()
  | [ _; "--json" ] -> print_json ()
  | [ _; "check-json"; file ] -> check_json file
  | _ ->
    usage ();
    exit 1
