(** The Amber Red/Black SOR program — the paper's §6 application, with the
    Figure-1 structure:

    - the grid is split column-wise into section objects distributed over
      the nodes;
    - each section has a coordinator thread, a set of interior-compute
      worker threads, and one edge-push thread per neighbor;
    - edge values travel as the payload of an invocation on the neighbor
      section ("the values for an entire edge of a section transferred in
      a single invocation");
    - with [overlap] on, edge exchange runs concurrently with the interior
      computation of the same color phase (the paper's key optimization);
    - after each iteration, all sections synchronize through a master
      object to combine convergence information.

    All intra-section coordination is direct shared-memory signalling —
    the threads are bound to the section object and therefore co-resident
    (§3.6's co-residency guarantee), so only cheap hardware-level
    synchronization is charged. *)

type cfg = {
  sections : int;
  overlap : bool;
  workers_per_section : int;  (** interior-compute threads per section *)
  placement : (int -> int) option;
      (** section index → node; [None] = blocked placement *)
}

(** Paper-style defaults for a given runtime: 8 sections (6 when the node
    count is 3 or 6), blocked placement, overlap on, and enough workers to
    fill every CPU. *)
val default_cfg : Amber.Runtime.t -> cfg

type result = {
  iterations : int;
  checksum : float;
  compute_elapsed : float;
      (** from the post-setup ready barrier to the final barrier *)
  total_elapsed : float;  (** including object creation and distribution *)
  remote_invocations : int;
  thread_migrations : int;
}

(** Run exactly [iters] iterations.  Must be called from the program's
    main Amber thread. *)
val run :
  Amber.Runtime.t -> Sor_core.params -> ?cfg:cfg -> iters:int -> unit -> result

(** Run until the global per-iteration maximum change drops below [eps]
    (combined at the master barrier, as in the paper) or [max_iters] is
    reached.  [result.iterations] reports how many iterations ran. *)
val run_to_convergence :
  Amber.Runtime.t ->
  Sor_core.params ->
  ?cfg:cfg ->
  eps:float ->
  max_iters:int ->
  unit ->
  result
