module A = Amber

type cfg = {
  sections : int;
  overlap : bool;
  workers_per_section : int;
  placement : (int -> int) option;
      (* section -> node; None = blocked placement over the cluster *)
}

let default_cfg rt =
  let nodes = A.Runtime.nodes rt in
  let cpus = (A.Runtime.config rt).A.Config.cpus_per_node in
  (* The paper partitions into 8 sections, except 6 for the 3- and 6-node
     experiments. *)
  let sections = if nodes mod 3 = 0 then 6 else 8 in
  let sections = max sections nodes in
  {
    sections;
    overlap = true;
    workers_per_section = max 1 (nodes * cpus / sections);
    placement = None;
  }

type result = {
  iterations : int;
  checksum : float;
  compute_elapsed : float;
  total_elapsed : float;
  remote_invocations : int;
  thread_migrations : int;
}

(* --- section state ------------------------------------------------------ *)

(* Local cells are (rows+2) × (ncols+2) row-major: a boundary/ghost ring
   around the section's interior columns.  Column 0 and column ncols+1
   hold either the global boundary or ghost copies of neighbor edges. *)
type section = {
  idx : int;
  rows : int;
  ncols : int;
  col0 : int;  (* global 1-based column index of local column 1 *)
  stride : int;
  cells : float array;
  mutable comp_phase : int;  (* latest phase released to workers *)
  mutable push_phase : int;  (* latest phase released to pushers *)
  mutable interior_release : int;  (* latest phase whose interior may run *)
  mutable border_done : int;  (* cumulative border-slice completions *)
  mutable workers_done : int;  (* cumulative phase completions *)
  mutable pushes_done : int;
  mutable recv_left : int;  (* latest phase received from the left *)
  mutable recv_right : int;
  mutable delta : float;
  mutable stop : bool;
  mutable waiters : (unit -> unit) list;
}

(* Intra-section signalling: the participants are bound to (and therefore
   co-resident with) the section object, so this is hardware shared-memory
   synchronization; we charge the fast-lock cost per operation. *)
let sync_cost rt = (A.Runtime.cost rt).A.Cost_model.lock_fast_cpu

let notify rt s =
  Sim.Fiber.consume (sync_cost rt);
  let ws = s.waiters in
  s.waiters <- [];
  List.iter (fun wake -> wake ()) ws

let rec wait_for rt s pred =
  Sim.Fiber.consume (sync_cost rt);
  if not (pred ()) then begin
    Sim.Fiber.block (fun wake -> s.waiters <- wake :: s.waiters);
    wait_for rt s pred
  end

let phase_color phase = if phase land 1 = 1 then Sor_core.Red else Sor_core.Black

(* Update all points of [color] in local columns [c_from..c_to]; returns
   (points updated, max delta). *)
let compute_range s (p : Sor_core.params) color ~c_from ~c_to =
  let pts = ref 0 and delta = ref 0.0 in
  for lc = c_from to c_to do
    let gc = s.col0 + lc - 1 in
    for r = 1 to s.rows do
      match (Sor_core.color_of ~r ~c:gc, color) with
      | Sor_core.Red, Sor_core.Red | Sor_core.Black, Sor_core.Black ->
        let i = (r * s.stride) + lc in
        let old = s.cells.(i) in
        let avg =
          (s.cells.(i - 1) +. s.cells.(i + 1) +. s.cells.(i - s.stride)
          +. s.cells.(i + s.stride))
          /. 4.0
        in
        let next = old +. (p.Sor_core.omega *. (avg -. old)) in
        s.cells.(i) <- next;
        incr pts;
        let d = Float.abs (next -. old) in
        if d > !delta then delta := d
      | Sor_core.Red, Sor_core.Black | Sor_core.Black, Sor_core.Red -> ()
    done
  done;
  (!pts, !delta)

let charge_points _rt (p : Sor_core.params) pts =
  if pts > 0 then Sim.Fiber.consume (p.Sor_core.point_cpu *. float_of_int pts)

(* --- master convergence object (barrier with a combined value) ---------- *)

type master_cell = {
  mutable out : float;
  mutable cell_wake : (unit -> unit) option;
  mutable fired : bool;
}

type master = {
  parties : int;
  mutable arrived : int;
  mutable agg : float;
  mutable waiting : master_cell list;
  mutable rounds : int;
  mutable t_ready : float;  (* completion time of round 1 (setup barrier) *)
  mutable t_last : float;  (* completion time of the latest round *)
}

let report rt master_obj clock delta =
  A.Invoke.invoke rt master_obj (fun m ->
      if delta > m.agg then m.agg <- delta;
      if m.arrived + 1 >= m.parties then begin
        let value = m.agg in
        m.arrived <- 0;
        m.agg <- 0.0;
        m.rounds <- m.rounds + 1;
        let t = clock () in
        if m.rounds = 1 then m.t_ready <- t;
        m.t_last <- t;
        let cells = m.waiting in
        m.waiting <- [];
        List.iter
          (fun c ->
            c.out <- value;
            c.fired <- true;
            match c.cell_wake with Some wake -> wake () | None -> ())
          cells;
        value
      end
      else begin
        m.arrived <- m.arrived + 1;
        let c = { out = 0.0; cell_wake = None; fired = false } in
        m.waiting <- c :: m.waiting;
        Sim.Fiber.block (fun wake ->
            if c.fired then wake () else c.cell_wake <- Some wake);
        c.out
      end)

(* --- worker / pusher / coordinator bodies -------------------------------- *)

(* Update all points of [color] in border column [lc], rows r_from..r_to. *)
let compute_border_rows s (p : Sor_core.params) color ~lc ~r_from ~r_to =
  let pts = ref 0 and delta = ref 0.0 in
  let gc = s.col0 + lc - 1 in
  for r = r_from to r_to do
    match (Sor_core.color_of ~r ~c:gc, color) with
    | Sor_core.Red, Sor_core.Red | Sor_core.Black, Sor_core.Black ->
      let i = (r * s.stride) + lc in
      let old = s.cells.(i) in
      let avg =
        (s.cells.(i - 1) +. s.cells.(i + 1) +. s.cells.(i - s.stride)
        +. s.cells.(i + s.stride))
        /. 4.0
      in
      let next = old +. (p.Sor_core.omega *. (avg -. old)) in
      s.cells.(i) <- next;
      incr pts;
      let d = Float.abs (next -. old) in
      if d > !delta then delta := d
    | Sor_core.Red, Sor_core.Black | Sor_core.Black, Sor_core.Red -> ()
  done;
  (!pts, !delta)

let worker_body rt p cfg sec_obj ~w () =
  A.Invoke.invoke rt sec_obj (fun s ->
      let nworkers = cfg.workers_per_section in
      let rec loop next =
        wait_for rt s (fun () -> s.stop || s.comp_phase >= next);
        if not s.stop then begin
          let color = phase_color next in
          (* Border columns first, rows split across workers, so the edge
             values are ready to travel as early as possible. *)
          let r_from = 1 + (w * s.rows / nworkers) in
          let r_to = (w + 1) * s.rows / nworkers in
          if r_to >= r_from then begin
            let border_cols = if s.ncols = 1 then [ 1 ] else [ 1; s.ncols ] in
            List.iter
              (fun lc ->
                let pts, d =
                  compute_border_rows s p color ~lc ~r_from ~r_to
                in
                charge_points rt p pts;
                if d > s.delta then s.delta <- d)
              border_cols
          end;
          s.border_done <- s.border_done + 1;
          notify rt s;
          (* The interior may be gated behind the edge exchange when
             overlap is disabled. *)
          wait_for rt s (fun () -> s.stop || s.interior_release >= next);
          if not s.stop then begin
            let lo = 2 and hi = s.ncols - 1 in
            let width = hi - lo + 1 in
            if width > 0 then begin
              let c_from = lo + (w * width / nworkers) in
              let c_to = lo + (((w + 1) * width / nworkers) - 1) in
              if c_to >= c_from then begin
                let pts, d = compute_range s p color ~c_from ~c_to in
                charge_points rt p pts;
                if d > s.delta then s.delta <- d
              end
            end;
            s.workers_done <- s.workers_done + 1;
            notify rt s;
            loop (next + 1)
          end
        end
      in
      loop 1)

(* Push this section's border-column values of the current color into the
   neighbor's ghost column: one invocation per phase, edge as payload. *)
let pusher_body rt (p : Sor_core.params) sec_obj neighbor_obj ~side () =
  ignore p;
  A.Invoke.invoke rt sec_obj (fun s ->
      let local_col = match side with `Left -> 1 | `Right -> s.ncols in
      let rec loop next =
        wait_for rt s (fun () -> s.stop || s.push_phase >= next);
        if not s.stop then begin
          let color = phase_color next in
          let gc = s.col0 + local_col - 1 in
          let vals = ref [] in
          for r = s.rows downto 1 do
            match (Sor_core.color_of ~r ~c:gc, color) with
            | Sor_core.Red, Sor_core.Red | Sor_core.Black, Sor_core.Black ->
              vals := (r, s.cells.((r * s.stride) + local_col)) :: !vals
            | Sor_core.Red, Sor_core.Black | Sor_core.Black, Sor_core.Red ->
              ()
          done;
          let vals = !vals in
          let payload = 8 * List.length vals in
          A.Invoke.invoke rt ~payload neighbor_obj (fun ns ->
              let ghost_col =
                match side with `Left -> ns.ncols + 1 | `Right -> 0
              in
              List.iter
                (fun (r, v) -> ns.cells.((r * ns.stride) + ghost_col) <- v)
                vals;
              (match side with
              | `Left -> ns.recv_right <- max ns.recv_right next
              | `Right -> ns.recv_left <- max ns.recv_left next);
              let ws = ns.waiters in
              ns.waiters <- [];
              List.iter (fun wake -> wake ()) ws);
          s.pushes_done <- s.pushes_done + 1;
          notify rt s;
          loop (next + 1)
        end
      in
      loop 1)

type mode = Fixed of int | Converge of { eps : float; max_iters : int }

let coordinator_body rt p cfg master_obj clock sec_objs ~mode i () =
  let nsections = Array.length sec_objs in
  let has_left = i > 0 and has_right = i < nsections - 1 in
  let n_push = (if has_left then 1 else 0) + (if has_right then 1 else 0) in
  A.Invoke.invoke rt sec_objs.(i) (fun s ->
      (* Helper threads are created here, on the section's node, and are
         bound to the section by their own invocations. *)
      let workers =
        List.init cfg.workers_per_section (fun w ->
            A.Athread.start rt
              ~name:(Printf.sprintf "sor%d-w%d" i w)
              (worker_body rt p cfg sec_objs.(i) ~w))
      in
      let pushers =
        (if has_left then
           [
             A.Athread.start rt
               ~name:(Printf.sprintf "sor%d-pl" i)
               (pusher_body rt p sec_objs.(i) sec_objs.(i - 1) ~side:`Left);
           ]
         else [])
        @
        if has_right then
          [
            A.Athread.start rt
              ~name:(Printf.sprintf "sor%d-pr" i)
              (pusher_body rt p sec_objs.(i) sec_objs.(i + 1) ~side:`Right);
          ]
        else []
      in
      (* Setup barrier: timing starts when every section is ready. *)
      ignore (report rt master_obj clock 0.0 : float);
      let do_phase phase =
        (* Ghost values this color reads must be in place. *)
        wait_for rt s (fun () ->
            ((not has_left) || s.recv_left >= phase - 1)
            && ((not has_right) || s.recv_right >= phase - 1));
        (* Release the workers onto the border columns. *)
        s.comp_phase <- phase;
        notify rt s;
        wait_for rt s (fun () ->
            s.border_done >= cfg.workers_per_section * phase);
        (* Edge values are complete: start the exchange. *)
        s.push_phase <- phase;
        notify rt s;
        if not cfg.overlap then
          (* No overlap: the exchange completes before the interior
             computation starts. *)
          wait_for rt s (fun () -> s.pushes_done >= n_push * phase);
        s.interior_release <- phase;
        notify rt s;
        wait_for rt s (fun () ->
            s.workers_done >= cfg.workers_per_section * phase
            && s.pushes_done >= n_push * phase)
      in
      let iterations_done = ref 0 in
      let continue_after it global_delta =
        match mode with
        | Fixed n -> it < n
        | Converge { eps; max_iters } -> global_delta >= eps && it < max_iters
      in
      let rec iteration it =
        do_phase (((it - 1) * 2) + 1);
        do_phase (((it - 1) * 2) + 2);
        let global_delta = report rt master_obj clock s.delta in
        s.delta <- 0.0;
        iterations_done := it;
        (* Every coordinator sees the same combined delta, so they all
           make the same decision. *)
        if continue_after it global_delta then iteration (it + 1)
      in
      iteration 1;
      s.stop <- true;
      notify rt s;
      List.iter (fun t -> A.Athread.join rt t) workers;
      List.iter (fun t -> A.Athread.join rt t) pushers;
      !iterations_done)

(* --- top level ----------------------------------------------------------- *)

let make_section (p : Sor_core.params) ~idx ~ncols ~col0 ~is_first ~is_last =
  let stride = ncols + 2 in
  let cells = Array.make ((p.Sor_core.rows + 2) * stride) 0.0 in
  (* Boundary ring: top/bottom rows, and the global left/right edges for
     the outermost sections.  Interior ghosts start at the initial value
     (0), matching the neighbors' initial interiors. *)
  for c = 0 to ncols + 1 do
    cells.(c) <- p.Sor_core.top;
    cells.(((p.Sor_core.rows + 1) * stride) + c) <- p.Sor_core.bottom
  done;
  if is_first then
    for r = 1 to p.Sor_core.rows do
      cells.(r * stride) <- p.Sor_core.left
    done;
  if is_last then
    for r = 1 to p.Sor_core.rows do
      cells.((r * stride) + ncols + 1) <- p.Sor_core.right
    done;
  {
    idx;
    rows = p.Sor_core.rows;
    ncols;
    col0;
    stride;
    cells;
    comp_phase = 0;
    push_phase = 0;
    interior_release = 0;
    border_done = 0;
    workers_done = 0;
    pushes_done = 0;
    recv_left = 0;
    recv_right = 0;
    delta = 0.0;
    stop = false;
    waiters = [];
  }

let run_mode rt (p : Sor_core.params) ?cfg mode =
  (match mode with
  | Fixed n when n <= 0 -> invalid_arg "Sor_amber: iterations"
  | Converge { eps; max_iters } when eps <= 0.0 || max_iters <= 0 ->
    invalid_arg "Sor_amber: convergence parameters"
  | Fixed _ | Converge _ -> ());
  let cfg = match cfg with Some c -> c | None -> default_cfg rt in
  if cfg.sections <= 0 || cfg.sections > p.Sor_core.cols then
    invalid_arg "Sor_amber.run: bad section count";
  let ctrs = A.Runtime.counters rt in
  let remote0 = ctrs.A.Runtime.remote_invocations in
  let migr0 = ctrs.A.Runtime.thread_migrations in
  let t0 = A.Runtime.now rt in
  let clock () = A.Runtime.now rt in
  let master_state =
    {
      parties = cfg.sections;
      arrived = 0;
      agg = 0.0;
      waiting = [];
      rounds = 0;
      t_ready = 0.0;
      t_last = 0.0;
    }
  in
  let master_obj =
    A.Runtime.create_object rt ~size:128 ~name:"sor-master" master_state
  in
  (* Column partitioning: spread the remainder over the first sections. *)
  let base = p.Sor_core.cols / cfg.sections in
  let rem = p.Sor_core.cols mod cfg.sections in
  let widths =
    Array.init cfg.sections (fun i -> base + (if i < rem then 1 else 0))
  in
  let sec_objs =
    Array.init cfg.sections (fun i ->
        let col0 =
          1
          + Array.fold_left ( + ) 0 (Array.sub widths 0 i)
        in
        let state =
          make_section p ~idx:i ~ncols:widths.(i) ~col0 ~is_first:(i = 0)
            ~is_last:(i = cfg.sections - 1)
        in
        let size = 8 * Array.length state.cells in
        A.Runtime.create_object rt ~size
          ~name:(Printf.sprintf "sor-section%d" i)
          state)
  in
  (* Distribute the sections (explicit placement, §2.3). *)
  let nodes = A.Runtime.nodes rt in
  let place =
    match cfg.placement with
    | Some f -> f
    | None -> fun i -> i * nodes / cfg.sections
  in
  Array.iteri
    (fun i obj ->
      let dest = place i in
      if dest < 0 || dest >= nodes then
        invalid_arg "Sor_amber.run: placement outside the cluster";
      if dest <> 0 then A.Mobility.move_to rt obj ~dest)
    sec_objs;
  (* One coordinator thread per section; Start makes it run an operation
     on the section object, migrating it to the section's node. *)
  let coords =
    Array.mapi
      (fun i _ ->
        A.Athread.start rt
          ~name:(Printf.sprintf "sor%d-coord" i)
          (coordinator_body rt p cfg master_obj clock sec_objs ~mode i))
      sec_objs
  in
  let iteration_counts = Array.map (fun t -> A.Athread.join rt t) coords in
  let iterations = iteration_counts.(0) in
  Array.iter
    (fun n ->
      if n <> iterations then
        failwith "Sor_amber: coordinators disagree on iteration count")
    iteration_counts;
  (* Assemble the global interior in row-major order so the checksum is
     bit-identical to the sequential implementation's. *)
  let checksum = ref 0.0 in
  for r = 1 to p.Sor_core.rows do
    Array.iter
      (fun obj ->
        let s = obj.A.Aobject.state in
        for lc = 1 to s.ncols do
          checksum := !checksum +. s.cells.((r * s.stride) + lc)
        done)
      sec_objs
  done;
  {
    iterations;
    checksum = !checksum;
    compute_elapsed = master_state.t_last -. master_state.t_ready;
    total_elapsed = A.Runtime.now rt -. t0;
    remote_invocations = ctrs.A.Runtime.remote_invocations - remote0;
    thread_migrations = ctrs.A.Runtime.thread_migrations - migr0;
  }

let run rt p ?cfg ~iters () = run_mode rt p ?cfg (Fixed iters)

let run_to_convergence rt p ?cfg ~eps ~max_iters () =
  run_mode rt p ?cfg (Converge { eps; max_iters })
