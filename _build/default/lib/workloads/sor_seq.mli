(** Simulated sequential SOR — the baseline all the paper's speedups are
    measured against ("a sequential C++ implementation used as the
    baseline case", §6).

    Runs on one CPU of one node with no Amber machinery: per sweep it
    performs the real arithmetic and charges
    [points/2 × point_cpu] of virtual CPU. *)

type result = {
  iterations : int;
  checksum : float;
  compute_elapsed : float;  (** virtual seconds spent in the solve loop *)
}

(** Run for exactly [iters] iterations.  Fiber context. *)
val run : Amber.Runtime.t -> Sor_core.params -> iters:int -> result

(** Predicted sequential solve time without simulating (for large sweeps):
    [iters × points × point_cpu]. *)
val predicted_elapsed : Sor_core.params -> iters:int -> float
