(** Blocked matrix multiply C = A × B over the cluster, demonstrating
    immutable-object replication (paper §2.3).

    A and B are filled once, marked {e immutable}, and replicated to every
    node with [MoveTo] (which copies rather than moves an immutable
    object).  The C blocks are distributed; each node's workers compute
    their local blocks reading A and B through {e local} invocations on
    the replicas.

    With [replicate = false] the inputs stay on node 0 and every block
    read becomes a remote invocation that carries the operand block back
    as payload — the ablation quantifying what replication buys. *)

type cfg = {
  n : int;  (** matrix dimension *)
  block : int;  (** block edge; must divide [n] *)
  replicate : bool;
  workers_per_node : int;
  flop_cpu : float;  (** seconds per multiply-add *)
}

val default_cfg : cfg

type result = {
  checksum : float;  (** sum of C's entries *)
  elapsed : float;
  copies : int;  (** immutable replications performed *)
  remote_invocations : int;
}

(** Reference host-side product checksum for validation. *)
val reference_checksum : cfg -> float

(** Must be called from the program's main Amber thread. *)
val run : Amber.Runtime.t -> cfg -> result
