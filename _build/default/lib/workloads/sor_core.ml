type params = {
  rows : int;
  cols : int;
  omega : float;
  top : float;
  bottom : float;
  left : float;
  right : float;
  point_cpu : float;
}

(* point_cpu ≈ 30 µs: a five-point stencil with an over-relaxation blend
   is a handful of floating-point operations, each several µs on a CVAX. *)
let default =
  {
    rows = 122;
    cols = 842;
    omega = 1.5;
    top = 100.0;
    bottom = 0.0;
    left = 0.0;
    right = 0.0;
    point_cpu = 30e-6;
  }

let with_size p ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Sor_core.with_size";
  { p with rows; cols }

let interior_points p = p.rows * p.cols

type color = Red | Black

let color_of ~r ~c = if (r + c) land 1 = 0 then Red else Black

module Full_grid = struct
  type t = { rows : int; cols : int; cells : float array }

  (* Row-major over (rows+2) × (cols+2); interior is 1-based. *)
  let idx t ~r ~c = (r * (t.cols + 2)) + c

  let create (p : params) =
    let t =
      { rows = p.rows; cols = p.cols;
        cells = Array.make ((p.rows + 2) * (p.cols + 2)) 0.0 }
    in
    for c = 0 to p.cols + 1 do
      t.cells.(idx t ~r:0 ~c) <- p.top;
      t.cells.(idx t ~r:(p.rows + 1) ~c) <- p.bottom
    done;
    for r = 1 to p.rows do
      t.cells.(idx t ~r ~c:0) <- p.left;
      t.cells.(idx t ~r ~c:(p.cols + 1)) <- p.right
    done;
    t

  let get t ~r ~c = t.cells.(idx t ~r ~c)
  let set t ~r ~c v = t.cells.(idx t ~r ~c) <- v

  let update_point t (p : params) ~r ~c =
    let i = idx t ~r ~c in
    let old = t.cells.(i) in
    let avg =
      (t.cells.(i - 1) +. t.cells.(i + 1)
      +. t.cells.(i - (t.cols + 2))
      +. t.cells.(i + t.cols + 2))
      /. 4.0
    in
    let next = old +. (p.omega *. (avg -. old)) in
    t.cells.(i) <- next;
    Float.abs (next -. old)

  let sweep t p color =
    let delta = ref 0.0 in
    for r = 1 to t.rows do
      (* First interior column of this color in row r. *)
      let start =
        match (color, color_of ~r ~c:1) with
        | Red, Red | Black, Black -> 1
        | Red, Black | Black, Red -> 2
      in
      let c = ref start in
      while !c <= t.cols do
        let d = update_point t p ~r ~c:!c in
        if d > !delta then delta := d;
        c := !c + 2
      done
    done;
    !delta

  let iterate t p =
    let d1 = sweep t p Red in
    let d2 = sweep t p Black in
    Float.max d1 d2

  let checksum t =
    let acc = ref 0.0 in
    for r = 1 to t.rows do
      for c = 1 to t.cols do
        acc := !acc +. t.cells.(idx t ~r ~c)
      done
    done;
    !acc

  let interior t =
    Array.init (t.rows * t.cols) (fun k ->
        let r = (k / t.cols) + 1 and c = (k mod t.cols) + 1 in
        t.cells.(idx t ~r ~c))
end

let reference p ~iters =
  let g = Full_grid.create p in
  for _ = 1 to iters do
    ignore (Full_grid.iterate g p : float)
  done;
  g

let iterations_to_converge p ~eps ~max_iters =
  let g = Full_grid.create p in
  let rec go i =
    if i >= max_iters then (i, g)
    else begin
      let d = Full_grid.iterate g p in
      if d < eps then (i + 1, g) else go (i + 1)
    end
  in
  go 0
