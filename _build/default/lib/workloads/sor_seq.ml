type result = {
  iterations : int;
  checksum : float;
  compute_elapsed : float;
}

let run rt (p : Sor_core.params) ~iters =
  if iters <= 0 then invalid_arg "Sor_seq.run: iters";
  let g = Sor_core.Full_grid.create p in
  let sweep_cost =
    p.Sor_core.point_cpu *. float_of_int (Sor_core.interior_points p) /. 2.0
  in
  let t0 = Amber.Runtime.now rt in
  for _ = 1 to iters do
    ignore (Sor_core.Full_grid.sweep g p Sor_core.Red : float);
    Sim.Fiber.consume sweep_cost;
    ignore (Sor_core.Full_grid.sweep g p Sor_core.Black : float);
    Sim.Fiber.consume sweep_cost
  done;
  {
    iterations = iters;
    checksum = Sor_core.Full_grid.checksum g;
    compute_elapsed = Amber.Runtime.now rt -. t0;
  }

let predicted_elapsed (p : Sor_core.params) ~iters =
  float_of_int iters
  *. float_of_int (Sor_core.interior_points p)
  *. p.Sor_core.point_cpu
