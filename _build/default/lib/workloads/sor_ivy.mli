(** Red/Black SOR over Ivy-style shared virtual memory — the comparison
    system of paper §4, written the way an Ivy programmer would write it:

    - the grid lives in the shared address space, column-major so that a
      grid column (the unit neighbors exchange) is nearly page-aligned;
    - each node owns a band of columns; worker processes never migrate —
      remote data arrives via page faults;
    - phases are separated by an RPC barrier (the deviation from pure data
      shipping that "recent versions of Ivy" adopted, §4.1).

    Border columns are read by neighbors each phase and re-written by
    their owner each phase, so every iteration pays read faults +
    invalidations per boundary — and when the page size exceeds the column
    size, false sharing adds traffic Amber does not have (§4.2). *)

type cfg = {
  procs_per_node : int;  (** worker processes per node *)
}

val default_cfg : Amber.Runtime.t -> cfg

type result = {
  iterations : int;
  checksum : float;
  compute_elapsed : float;  (** between the ready and final barriers *)
  read_faults : int;
  write_faults : int;
  invalidations : int;
  forward_hops : int;  (** dynamic-manager hint chases *)
  manager_lookups : int;  (** fixed-manager queries *)
  transfer_bytes : int;
}

(** Run [iters] iterations on a DSM created over [rt].  Must be called
    from the program's main thread. *)
val run :
  Amber.Runtime.t ->
  Sor_core.params ->
  ?cfg:cfg ->
  ?dsm_costs:Ivy.Costs.t ->
  ?manager:Ivy.Dsm.manager_mode ->
  iters:int ->
  unit ->
  result
