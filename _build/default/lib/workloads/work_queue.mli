(** Distributed work queue: a master queue object with worker threads
    spread over the cluster.

    The queue is an ordinary Amber object — workers on every node pull
    batches with remote invocations, compute locally, and report results
    back.  It exercises the function-shipping model under contention on a
    single hot object, and demonstrates {!Amber.Mobility.move_to} under
    load: the queue can be re-placed mid-run and the protocol (forwarding
    addresses, bound-thread migration) keeps everything running. *)

type cfg = {
  items : int;
  work_cpu : float;  (** CPU seconds per item *)
  batch : int;  (** items fetched per queue invocation *)
  workers_per_node : int;
  move_queue_at : int option;
      (** after this many items are taken, migrate the queue to the last
          node (a mid-run re-placement) *)
}

val default_cfg : cfg

type result = {
  processed : int;
  elapsed : float;
  per_node : int array;  (** items processed by workers of each node *)
  queue_final_node : int;
}

(** Must be called from the program's main Amber thread. *)
val run : Amber.Runtime.t -> cfg -> result
