module A = Amber

type cfg = { procs_per_node : int }

let default_cfg rt =
  ignore rt;
  { procs_per_node = (A.Runtime.config rt).A.Config.cpus_per_node }

type result = {
  iterations : int;
  checksum : float;
  compute_elapsed : float;
  read_faults : int;
  write_faults : int;
  invalidations : int;
  forward_hops : int;
  manager_lookups : int;
  transfer_bytes : int;
}

(* Interior cell (r, c), both 1-based, stored column-major so a column is
   a contiguous ~rows*8-byte run (the unit neighbors exchange). *)
let addr_of (p : Sor_core.params) ~r ~c =
  (((c - 1) * p.Sor_core.rows) + (r - 1)) * 8

(* Read a neighbor value, folding in the fixed boundary ring. *)
let read_cell dsm (p : Sor_core.params) ~r ~c =
  if r < 1 then p.Sor_core.top
  else if r > p.Sor_core.rows then p.Sor_core.bottom
  else if c < 1 then p.Sor_core.left
  else if c > p.Sor_core.cols then p.Sor_core.right
  else Ivy.Dsm.read_f64 dsm (addr_of p ~r ~c)

let sweep_columns dsm (p : Sor_core.params) color ~c_from ~c_to =
  let pts = ref 0 in
  for c = c_from to c_to do
    for r = 1 to p.Sor_core.rows do
      match (Sor_core.color_of ~r ~c, color) with
      | Sor_core.Red, Sor_core.Red | Sor_core.Black, Sor_core.Black ->
        let old = Ivy.Dsm.read_f64 dsm (addr_of p ~r ~c) in
        let avg =
          (read_cell dsm p ~r ~c:(c - 1)
          +. read_cell dsm p ~r ~c:(c + 1)
          +. read_cell dsm p ~r:(r - 1) ~c
          +. read_cell dsm p ~r:(r + 1) ~c)
          /. 4.0
        in
        let next = old +. (p.Sor_core.omega *. (avg -. old)) in
        Ivy.Dsm.write_f64 dsm (addr_of p ~r ~c) next;
        incr pts
      | Sor_core.Red, Sor_core.Black | Sor_core.Black, Sor_core.Red -> ()
    done;
    (* Charge the column's arithmetic in one slice; the faults above have
       already been charged individually. *)
    if !pts > 0 then begin
      Sim.Fiber.consume (p.Sor_core.point_cpu *. float_of_int !pts);
      pts := 0
    end
  done

let run rt (p : Sor_core.params) ?cfg ?(dsm_costs = Ivy.Costs.default)
    ?(manager = Ivy.Dsm.Dynamic) ~iters () =
  if iters <= 0 then invalid_arg "Sor_ivy.run: iters";
  let cfg = match cfg with Some c -> c | None -> default_cfg rt in
  let nodes = A.Runtime.nodes rt in
  let total_bytes = Sor_core.interior_points p * 8 in
  (* Band partitioning: node n owns columns [band_lo n, band_hi n]. *)
  let band_lo n = 1 + (n * p.Sor_core.cols / nodes) in
  let band_hi n = (n + 1) * p.Sor_core.cols / nodes in
  let page_owner psize page =
    (* Owner of the column holding the first byte of the page. *)
    let c = 1 + (page * psize / (p.Sor_core.rows * 8)) in
    let c = min c p.Sor_core.cols in
    let rec find n = if c <= band_hi n || n = nodes - 1 then n else find (n + 1) in
    find 0
  in
  let vm_psize = Topaz.Vm.page_size (Topaz.Task.vm (A.Runtime.task rt 0)) in
  let npages = (total_bytes + vm_psize - 1) / vm_psize in
  let dsm =
    Ivy.Dsm.create rt ~costs:dsm_costs
      ~initial_owner:(page_owner vm_psize)
      ~manager ~pages:npages ()
  in
  let parties = nodes * cfg.procs_per_node in
  let barrier = Ivy.Sync_rpc.Barrier.create rt ~home:0 ~parties in
  let t_ready = ref 0.0 and t_done = ref 0.0 in
  let worker node k () =
    let lo = band_lo node and hi = band_hi node in
    (* Split the node's band among its processes. *)
    let width = hi - lo + 1 in
    let c_from = lo + (k * width / cfg.procs_per_node) in
    let c_to = lo + (((k + 1) * width / cfg.procs_per_node) - 1) in
    Ivy.Sync_rpc.Barrier.pass barrier;
    if node = 0 && k = 0 then t_ready := A.Runtime.now rt;
    for _ = 1 to iters do
      if c_to >= c_from then
        sweep_columns dsm p Sor_core.Red ~c_from ~c_to;
      Ivy.Sync_rpc.Barrier.pass barrier;
      if c_to >= c_from then
        sweep_columns dsm p Sor_core.Black ~c_from ~c_to;
      Ivy.Sync_rpc.Barrier.pass barrier
    done;
    if node = 0 && k = 0 then t_done := A.Runtime.now rt
  in
  let procs =
    List.concat_map
      (fun node ->
        List.init cfg.procs_per_node (fun k ->
            Ivy.Process.spawn rt ~node
              ~name:(Printf.sprintf "ivy-sor%d.%d" node k)
              (worker node k)))
      (List.init nodes Fun.id)
  in
  List.iter (fun pr -> Ivy.Process.join pr) procs;
  (* Checksum read row-major (same order as the reference), after the
     measurement window. *)
  let checksum = ref 0.0 in
  for r = 1 to p.Sor_core.rows do
    for c = 1 to p.Sor_core.cols do
      checksum := !checksum +. Ivy.Dsm.read_f64 dsm (addr_of p ~r ~c)
    done
  done;
  let st = Ivy.Dsm.stats dsm in
  {
    iterations = iters;
    checksum = !checksum;
    compute_elapsed = !t_done -. !t_ready;
    read_faults = st.Ivy.Dsm.read_faults;
    write_faults = st.Ivy.Dsm.write_faults;
    invalidations = st.Ivy.Dsm.invalidations;
    forward_hops = st.Ivy.Dsm.forward_hops;
    manager_lookups = st.Ivy.Dsm.manager_lookups;
    transfer_bytes = st.Ivy.Dsm.transfer_bytes;
  }
