(** Red/Black Successive Over-Relaxation — the numerical core shared by
    the sequential, Amber, and Ivy implementations (paper §6).

    The problem: steady-state temperature over a rectangular plate with
    fixed boundary temperatures, governed by Laplace's equation.  The grid
    is updated checkerboard-style: all red points (r+c even), then all
    black points.  Updates within one color are independent, so any
    execution order gives bit-identical results — which is what lets the
    tests require exact agreement between the three implementations. *)

type params = {
  rows : int;  (** interior rows (the paper's experiment: 122) *)
  cols : int;  (** interior columns (the paper's experiment: 842) *)
  omega : float;  (** over-relaxation factor *)
  top : float;  (** boundary temperature along the top edge *)
  bottom : float;
  left : float;
  right : float;
  point_cpu : float;
      (** simulated CPU seconds to update one point (CVAX-era flops) *)
}

(** The paper's 122×842 grid with a 100-degree top edge. *)
val default : params

val with_size : params -> rows:int -> cols:int -> params

(** Interior points ([rows * cols]). *)
val interior_points : params -> int

type color = Red | Black

val color_of : r:int -> c:int -> color

(** A full grid including the boundary ring: [(rows+2) × (cols+2)],
    row-major.  Interior coordinates are 1-based. *)
module Full_grid : sig
  type t

  val create : params -> t
  val get : t -> r:int -> c:int -> float
  val set : t -> r:int -> c:int -> float -> unit

  (** Update every interior point of [color]; returns the maximum absolute
      change. *)
  val sweep : t -> params -> color -> float

  (** One red+black iteration; returns the max change over both sweeps. *)
  val iterate : t -> params -> float

  (** Sum of interior values — a cheap fingerprint for comparing
      implementations. *)
  val checksum : t -> float

  (** Copy of the interior as a [rows*cols] row-major array. *)
  val interior : t -> float array
end

(** Pure host-side reference solution (no simulation):
    [reference params ~iters] runs [iters] iterations and returns the
    grid. *)
val reference : params -> iters:int -> Full_grid.t

(** Iterations needed until the max change drops below [eps] (capped at
    [max_iters]). *)
val iterations_to_converge :
  params -> eps:float -> max_iters:int -> int * Full_grid.t
