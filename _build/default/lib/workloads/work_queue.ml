module A = Amber

type cfg = {
  items : int;
  work_cpu : float;
  batch : int;
  workers_per_node : int;
  move_queue_at : int option;
}

let default_cfg =
  {
    items = 200;
    work_cpu = 20e-3;
    batch = 4;
    workers_per_node = 4;
    move_queue_at = None;
  }

type result = {
  processed : int;
  elapsed : float;
  per_node : int array;
  queue_final_node : int;
}

type queue_state = {
  mutable next : int;  (* next item id to hand out *)
  total : int;
  mutable taken : int;
  mutable done_count : int;
}

let run rt cfg =
  if cfg.items <= 0 || cfg.batch <= 0 || cfg.workers_per_node <= 0 then
    invalid_arg "Work_queue.run: bad configuration";
  let nodes = A.Runtime.nodes rt in
  let queue =
    A.Runtime.create_object rt ~size:256 ~name:"work-queue"
      { next = 0; total = cfg.items; taken = 0; done_count = 0 }
  in
  (* One anchor object per node: a worker executes inside an invocation on
     its anchor, so its computation happens on the anchor's node and every
     queue access is a nested (remote) invocation that returns home. *)
  let anchors =
    Array.init nodes (fun node ->
        let anchor =
          A.Runtime.create_object rt ~size:64
            ~name:(Printf.sprintf "wq-anchor%d" node)
            ()
        in
        if node <> 0 then A.Mobility.move_to rt anchor ~dest:node;
        anchor)
  in
  let per_node = Array.make nodes 0 in
  let mover_needed = ref cfg.move_queue_at in
  let t0 = A.Runtime.now rt in
  let worker node () =
    A.Invoke.invoke rt anchors.(node) (fun () ->
        let rec loop () =
          let batch =
            A.Invoke.invoke rt queue (fun q ->
                let n = min cfg.batch (q.total - q.next) in
                let ids = List.init n (fun k -> q.next + k) in
                q.next <- q.next + n;
                q.taken <- q.taken + n;
                ids)
          in
          match batch with
          | [] -> ()
          | ids ->
            (* Mid-run re-placement of the hot object, at most once. *)
            (match !mover_needed with
            | Some threshold
              when queue.A.Aobject.state.taken >= threshold && nodes > 1 ->
              mover_needed := None;
              A.Mobility.move_to rt queue ~dest:(nodes - 1)
            | Some _ | None -> ());
            List.iter
              (fun _id ->
                Sim.Fiber.consume cfg.work_cpu;
                per_node.(node) <- per_node.(node) + 1)
              ids;
            ignore
              (A.Invoke.invoke rt queue (fun q ->
                   q.done_count <- q.done_count + List.length ids;
                   q.done_count)
                : int);
            loop ()
        in
        loop ())
  in
  let threads =
    List.concat_map
      (fun node ->
        List.init cfg.workers_per_node (fun k ->
            A.Athread.start rt
              ~name:(Printf.sprintf "wq-%d.%d" node k)
              (worker node)))
      (List.init nodes Fun.id)
  in
  List.iter (fun t -> A.Athread.join rt t) threads;
  {
    processed = queue.A.Aobject.state.done_count;
    elapsed = A.Runtime.now rt -. t0;
    per_node;
    queue_final_node = queue.A.Aobject.location;
  }
