module A = Amber

type cfg = {
  n : int;
  block : int;
  replicate : bool;
  workers_per_node : int;
  flop_cpu : float;
}

let default_cfg =
  { n = 128; block = 32; replicate = true; workers_per_node = 4;
    flop_cpu = 5e-6 }

type result = {
  checksum : float;
  elapsed : float;
  copies : int;
  remote_invocations : int;
}

(* Deterministic small-valued inputs. *)
let a_at ~n i j =
  ignore n;
  float_of_int (((i * 7) + (j * 3)) mod 11) /. 10.0

let b_at ~n i j =
  ignore n;
  float_of_int (((i * 5) + (j * 2)) mod 13) /. 10.0

let validate cfg =
  if cfg.n <= 0 || cfg.block <= 0 || cfg.n mod cfg.block <> 0 then
    invalid_arg "Matmul: block must divide n";
  if cfg.workers_per_node <= 0 then invalid_arg "Matmul: workers"

let reference_checksum cfg =
  validate cfg;
  let n = cfg.n in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (a_at ~n i k *. b_at ~n k j)
      done;
      sum := !sum +. !acc
    done
  done;
  !sum

let run rt cfg =
  validate cfg;
  let n = cfg.n in
  let nodes = A.Runtime.nodes rt in
  let ctrs = A.Runtime.counters rt in
  let remote0 = ctrs.A.Runtime.remote_invocations in
  let a =
    A.Runtime.create_object rt ~size:(n * n * 8) ~name:"matA"
      (Array.init (n * n) (fun k -> a_at ~n (k / n) (k mod n)))
  in
  let b =
    A.Runtime.create_object rt ~size:(n * n * 8) ~name:"matB"
      (Array.init (n * n) (fun k -> b_at ~n (k / n) (k mod n)))
  in
  A.Mobility.set_immutable rt a;
  A.Mobility.set_immutable rt b;
  if cfg.replicate then
    for node = 1 to nodes - 1 do
      A.Mobility.move_to rt a ~dest:node;
      A.Mobility.move_to rt b ~dest:node
    done;
  let nb = n / cfg.block in
  let owner_of_block bi bj = ((bi * nb) + bj) mod nodes in
  let c_blocks =
    Array.init (nb * nb) (fun k ->
        let bi = k / nb and bj = k mod nb in
        let obj =
          A.Runtime.create_object rt
            ~size:(cfg.block * cfg.block * 8)
            ~name:(Printf.sprintf "matC.%d.%d" bi bj)
            (Array.make (cfg.block * cfg.block) 0.0)
        in
        let dest = owner_of_block bi bj in
        if dest <> 0 then A.Mobility.move_to rt obj ~dest;
        obj)
  in
  let t0 = A.Runtime.now rt in
  let band_bytes = cfg.block * n * 8 in
  let compute_block bi bj =
    let cobj = c_blocks.((bi * nb) + bj) in
    A.Invoke.invoke rt cobj (fun c ->
        (* Fetch the operand bands: local invocations when replicas are
           present, remote invocations carrying the band as payload when
           they are not. *)
        let a_band =
          A.Invoke.invoke rt ~return_payload:band_bytes a (fun am ->
              Array.init (cfg.block * n) (fun k ->
                  am.(((bi * cfg.block) + (k / n)) * n + (k mod n))))
        in
        let b_band =
          A.Invoke.invoke rt ~return_payload:band_bytes b (fun bm ->
              Array.init (n * cfg.block) (fun k ->
                  bm.((k / cfg.block) * n + (bj * cfg.block) + (k mod cfg.block))))
        in
        for i = 0 to cfg.block - 1 do
          for j = 0 to cfg.block - 1 do
            let acc = ref 0.0 in
            for k = 0 to n - 1 do
              acc := !acc +. (a_band.((i * n) + k) *. b_band.((k * cfg.block) + j))
            done;
            c.((i * cfg.block) + j) <- !acc
          done
        done;
        Sim.Fiber.consume
          (cfg.flop_cpu *. float_of_int (cfg.block * cfg.block * n)))
  in
  (* Assign blocks to their owning node's workers. *)
  let threads =
    List.concat_map
      (fun node ->
        let mine =
          List.filter
            (fun k -> owner_of_block (k / nb) (k mod nb) = node)
            (List.init (nb * nb) Fun.id)
        in
        List.init cfg.workers_per_node (fun w ->
            let assigned =
              List.filteri
                (fun idx _ -> idx mod cfg.workers_per_node = w)
                mine
            in
            A.Athread.start rt
              ~name:(Printf.sprintf "mm-%d.%d" node w)
              (fun () ->
                List.iter (fun k -> compute_block (k / nb) (k mod nb)) assigned)))
      (List.init nodes Fun.id)
  in
  List.iter (fun t -> A.Athread.join rt t) threads;
  let checksum =
    Array.fold_left
      (fun acc obj -> acc +. Array.fold_left ( +. ) 0.0 obj.A.Aobject.state)
      0.0 c_blocks
  in
  {
    checksum;
    elapsed = A.Runtime.now rt -. t0;
    copies = ctrs.A.Runtime.object_copies;
    remote_invocations = ctrs.A.Runtime.remote_invocations - remote0;
  }
