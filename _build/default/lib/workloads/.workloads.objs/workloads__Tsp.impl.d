lib/workloads/tsp.ml: Amber Array Fun Int64 List Printf Sim
