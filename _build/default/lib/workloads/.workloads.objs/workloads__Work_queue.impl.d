lib/workloads/work_queue.ml: Amber Array Fun List Printf Sim
