lib/workloads/sor_seq.mli: Amber Sor_core
