lib/workloads/sor_amber.mli: Amber Sor_core
