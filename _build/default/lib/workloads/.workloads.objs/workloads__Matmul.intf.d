lib/workloads/matmul.mli: Amber
