lib/workloads/tsp.mli: Amber
