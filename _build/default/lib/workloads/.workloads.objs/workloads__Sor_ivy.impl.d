lib/workloads/sor_ivy.ml: Amber Fun Ivy List Printf Sim Sor_core Topaz
