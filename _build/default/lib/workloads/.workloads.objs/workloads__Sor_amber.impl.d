lib/workloads/sor_amber.ml: Amber Array Float List Printf Sim Sor_core
