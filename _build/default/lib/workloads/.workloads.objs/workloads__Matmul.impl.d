lib/workloads/matmul.ml: Amber Array Fun List Printf Sim
