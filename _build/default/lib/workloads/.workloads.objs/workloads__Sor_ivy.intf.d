lib/workloads/sor_ivy.mli: Amber Ivy Sor_core
