lib/workloads/sor_core.mli:
