lib/workloads/work_queue.mli: Amber
