lib/workloads/sor_core.ml: Array Float
