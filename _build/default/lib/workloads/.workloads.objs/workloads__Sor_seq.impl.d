lib/workloads/sor_seq.ml: Amber Sim Sor_core
