(** Shared virtual memory with page-level coherence — the Ivy baseline the
    paper compares against in §4 [Li & Hudak 86].

    The protocol is the dynamic distributed manager: every node keeps a
    probable-owner hint per page; requests chase hints to the true owner.
    Read faults replicate the page (requester joins the owner's copyset);
    write faults transfer ownership and invalidate all copies.  Page
    contents are real bytes held in each node's {!Topaz.Vm}, so coherence
    can be checked against a sequential oracle in tests.

    Non-faulting accesses cost nothing in virtual time — they are ordinary
    memory references whose cost belongs to the application's compute
    charge.  Faults pay trap + request routing + page transfer +
    (for writes) invalidation round trips, on the same simulated Ethernet
    and RPC fabric as Amber, which is what makes the comparison fair.

    The Amber {!Amber.Runtime.t} is used purely as the hardware/OS
    substrate (machines, network, RPC servers); none of the object layer
    is involved.  All access operations require fiber context. *)

type t

(** Owner-location strategy [Li 86]: [Dynamic] chases per-node
    probable-owner hints (the default); [Fixed] consults a designated
    per-page manager node that tracks ownership authoritatively (requests
    cost a constant number of messages; transfers pay a manager update). *)
type manager_mode = Dynamic | Fixed

type stats = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable upgrades : int;  (** write faults by an owner holding Read *)
  mutable invalidations : int;
  mutable forward_hops : int;  (** Dynamic-mode hint chases *)
  mutable manager_lookups : int;  (** Fixed-mode manager queries *)
  mutable page_transfers : int;
  mutable transfer_bytes : int;
}

(** [create rt ~pages ()] lays out [pages] coherent pages (of the task VM
    page size, 1 KiB by default) starting at address 0.  [initial_owner]
    defaults to distributing pages round-robin over nodes. *)
val create :
  Amber.Runtime.t ->
  ?costs:Costs.t ->
  ?initial_owner:(int -> int) ->
  ?manager:manager_mode ->
  pages:int ->
  unit ->
  t

val page_size : t -> int
val pages : t -> int
val stats : t -> stats

(** {1 Access operations (fiber context)} *)

(** Ensure the calling node may read/write the page containing [addr]
    without moving any data on a hit. *)

val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit
val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

(** Fault in write access for an address's page without accessing data
    (used to model program-directed prefetching). *)
val ensure_write : t -> int -> unit

val ensure_read : t -> int -> unit

(** {1 Introspection (tests / benches)} *)

val access_of : t -> node:int -> page:int -> Page_table.access

(** Ground-truth owner: the unique node with [is_owner] set.  Raises
    [Failure] if the invariant is broken (no owner / several). *)
val owner_of : t -> int -> int

(** Nodes whose page-table access for [page] is [Read] or [Write]. *)
val holders : t -> int -> int list
