type access = No_access | Read | Write

type entry = {
  mutable access : access;
  mutable prob_owner : int;
  mutable is_owner : bool;
  mutable copyset : int list;
  mutable busy : bool;
  mutable busy_waiters : (unit -> unit) list;
}

type t = { node_id : int; entries : entry array }

let create ~node ~pages ~initial_owner =
  if pages <= 0 then invalid_arg "Page_table.create: pages";
  let entries =
    Array.init pages (fun p ->
        let owner = initial_owner p in
        {
          access = (if owner = node then Write else No_access);
          prob_owner = owner;
          is_owner = owner = node;
          copyset = [];
          busy = false;
          busy_waiters = [];
        })
  in
  { node_id = node; entries }

let node t = t.node_id
let pages t = Array.length t.entries

let entry t p =
  if p < 0 || p >= Array.length t.entries then
    invalid_arg "Page_table.entry: page out of range";
  t.entries.(p)

let rec lock_entry e =
  if e.busy then begin
    Sim.Fiber.block (fun wake -> e.busy_waiters <- wake :: e.busy_waiters);
    lock_entry e
  end
  else e.busy <- true

let unlock_entry e =
  e.busy <- false;
  let ws = e.busy_waiters in
  e.busy_waiters <- [];
  List.iter (fun wake -> wake ()) ws
