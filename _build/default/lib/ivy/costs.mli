(** Cost constants for the Ivy-style shared virtual memory baseline.

    Calibrated to the same era as the Amber constants: page-fault handling
    on a CVAX through a user-level handler, page transfers on the shared
    10 Mbit/s Ethernet.  A remote page fetch lands in the same few-ms range
    as an Amber remote invocation, which is what makes the §4 comparison
    meaningful: the two systems differ in {e when} they communicate, not in
    the price of a message. *)

type t = {
  fault_trap_cpu : float;  (** taking the fault + handler entry *)
  request_bytes : int;  (** ownership/copy request message *)
  reply_ctrl_bytes : int;  (** control part of a reply *)
  page_copy_cpu_per_byte : float;  (** copy in/out of the VM system *)
  install_cpu : float;  (** map the received page, fix protections *)
  invalidate_bytes : int;
  invalidate_cpu : float;  (** handling one invalidation *)
  ack_bytes : int;
}

val default : t
