type t = {
  fault_trap_cpu : float;
  request_bytes : int;
  reply_ctrl_bytes : int;
  page_copy_cpu_per_byte : float;
  install_cpu : float;
  invalidate_bytes : int;
  invalidate_cpu : float;
  ack_bytes : int;
}

let default =
  {
    fault_trap_cpu = 0.9e-3;
    request_bytes = 48;
    reply_ctrl_bytes = 32;
    page_copy_cpu_per_byte = 0.4e-6;
    install_cpu = 0.5e-3;
    invalidate_bytes = 32;
    invalidate_cpu = 0.3e-3;
    ack_bytes = 16;
  }
