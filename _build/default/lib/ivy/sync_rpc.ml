module Runtime = Amber.Runtime

module Lock = struct
  type state = {
    mutable held : bool;
    waiters : (unit -> unit) Queue.t;
  }

  type t = { rt : Runtime.t; home : int; s : state }

  let create rt ~home =
    if home < 0 || home >= Runtime.nodes rt then
      invalid_arg "Sync_rpc.Lock.create: bad home node";
    { rt; home; s = { held = false; waiters = Queue.create () } }

  let acquire t =
    Topaz.Rpc.call (Runtime.rpc t.rt) ~dst:t.home ~kind:"rpc-lock-acq"
      ~req_size:32 ~work:(fun () ->
        if not t.s.held then t.s.held <- true
        else Sim.Fiber.block (fun wake -> Queue.add wake t.s.waiters);
        (16, ()))

  let release t =
    Topaz.Rpc.call (Runtime.rpc t.rt) ~dst:t.home ~kind:"rpc-lock-rel"
      ~req_size:32 ~work:(fun () ->
        if not t.s.held then invalid_arg "Sync_rpc.Lock.release: not held";
        (match Queue.take_opt t.s.waiters with
        | None -> t.s.held <- false
        | Some wake -> wake ());
        (16, ()))

  let with_lock t f =
    acquire t;
    match f () with
    | r ->
      release t;
      r
    | exception e ->
      release t;
      raise e
end

module Barrier = struct
  type state = {
    parties : int;
    mutable arrived : int;
    mutable wakers : (unit -> unit) list;
  }

  type t = { rt : Runtime.t; home : int; s : state }

  let create rt ~home ~parties =
    if parties <= 0 then invalid_arg "Sync_rpc.Barrier.create: parties";
    if home < 0 || home >= Runtime.nodes rt then
      invalid_arg "Sync_rpc.Barrier.create: bad home node";
    { rt; home; s = { parties; arrived = 0; wakers = [] } }

  let pass t =
    Topaz.Rpc.call (Runtime.rpc t.rt) ~dst:t.home ~kind:"rpc-barrier"
      ~req_size:32 ~work:(fun () ->
        if t.s.arrived + 1 >= t.s.parties then begin
          t.s.arrived <- 0;
          let ws = List.rev t.s.wakers in
          t.s.wakers <- [];
          List.iter (fun wake -> wake ()) ws
        end
        else begin
          t.s.arrived <- t.s.arrived + 1;
          Sim.Fiber.block (fun wake -> t.s.wakers <- wake :: t.s.wakers)
        end;
        (16, ()))
end
