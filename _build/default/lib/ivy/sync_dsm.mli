(** Synchronization through the shared memory itself — the naive Ivy
    approach the paper criticizes in §4.1: "references to a shared lock
    variable can cause a data-shipping system to thrash by repeatedly
    shuttling the page containing the lock variable between the nodes".

    The lock is a word in a DSM page; every acquire attempt is a
    write-fault on that page, so contending nodes ping-pong the page.
    This module exists to measure that effect (ablation A1). *)

module Lock : sig
  type t

  (** [create dsm ~addr] claims the byte at [addr] as a lock word (it must
      be 0 initially). *)
  val create : Dsm.t -> addr:int -> t

  (** Spin-acquire with exponential backoff; each probe is a DSM
      write access (potential page fault + transfer). *)
  val acquire : t -> unit

  val release : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a

  (** Failed probes so far (ping-pong indicator). *)
  val contended_probes : t -> int
end

(** Barrier implemented over shared DSM counters (also thrashes; for
    measurement). *)
module Barrier : sig
  type t

  (** Claims 16 bytes at [addr] for its counters. *)
  val create : Dsm.t -> addr:int -> parties:int -> t

  val pass : t -> unit
end
