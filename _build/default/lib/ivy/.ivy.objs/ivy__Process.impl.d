lib/ivy/process.ml: Amber Hw Sim Topaz
