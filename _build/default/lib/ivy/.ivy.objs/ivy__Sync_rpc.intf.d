lib/ivy/sync_rpc.mli: Amber
