lib/ivy/page_table.ml: Array List Sim
