lib/ivy/sync_dsm.mli: Dsm
