lib/ivy/costs.mli:
