lib/ivy/dsm.ml: Amber Array Bytes Costs Hw List Page_table Printf Sim Topaz
