lib/ivy/process.mli: Amber
