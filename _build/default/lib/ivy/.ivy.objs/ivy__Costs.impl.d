lib/ivy/costs.ml:
