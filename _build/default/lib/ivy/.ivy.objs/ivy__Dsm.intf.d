lib/ivy/dsm.mli: Amber Costs Page_table
