lib/ivy/sync_dsm.ml: Dsm Float Sim
