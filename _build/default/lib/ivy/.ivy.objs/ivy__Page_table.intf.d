lib/ivy/page_table.mli:
