lib/ivy/sync_rpc.ml: Amber List Queue Sim Topaz
