(** Per-node page tables for the shared virtual memory (Li & Hudak).

    Each node records, per page: its access rights, the probable owner
    hint used to route requests (the dynamic distributed manager
    algorithm), and — when it is the owner — the copyset of nodes holding
    read copies.  A per-page busy flag serializes concurrent protocol
    transactions touching the same page on the same node. *)

type access = No_access | Read | Write

type entry = {
  mutable access : access;
  mutable prob_owner : int;  (** routing hint; exact when [is_owner] *)
  mutable is_owner : bool;
  mutable copyset : int list;  (** meaningful only at the owner *)
  mutable busy : bool;  (** a protocol transaction is in flight here *)
  mutable busy_waiters : (unit -> unit) list;
}

type t

(** [create ~node ~pages ~initial_owner] sets page [p]'s owner hint to
    [initial_owner p] everywhere, with the owner itself getting [Write]
    access and ownership. *)
val create : node:int -> pages:int -> initial_owner:(int -> int) -> t

val node : t -> int
val pages : t -> int

(** Raises [Invalid_argument] for out-of-range pages. *)
val entry : t -> int -> entry

(** Block the calling fiber until the page's busy flag is clear, then set
    it.  Fiber context. *)
val lock_entry : entry -> unit

(** Clear the busy flag and wake all waiters (they re-contend). *)
val unlock_entry : entry -> unit
