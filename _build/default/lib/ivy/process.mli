(** Ivy processes: conventional threads with {e explicit process
    migration} (paper §4: "distribution and load balancing are achieved by
    explicit process migration").

    Unlike Amber threads, Ivy processes never move implicitly — data comes
    to them through page faults.  [migrate] is the explicit escape hatch
    the paper mentions for function-shipping-like behaviour. *)

type 'r t

(** Spawn a process on [node].  Usable from any context. *)
val spawn : Amber.Runtime.t -> node:int -> ?name:string -> (unit -> 'r) -> 'r t

(** Block until the process finishes; re-raises its failure.  Fiber
    context. *)
val join : 'r t -> 'r

(** Explicitly move the calling process to [dest], paying a process-state
    transfer (larger than an Amber thread flight: a whole process context).
    Fiber context — a process may only migrate itself. *)
val migrate : Amber.Runtime.t -> ?state_bytes:int -> dest:int -> unit -> unit

val node : 'r t -> int
val is_finished : 'r t -> bool
