module Runtime = Amber.Runtime

type manager_mode = Dynamic | Fixed

type stats = {
  mutable read_faults : int;
  mutable write_faults : int;
  mutable upgrades : int;
  mutable invalidations : int;
  mutable forward_hops : int;
  mutable manager_lookups : int;
  mutable page_transfers : int;
  mutable transfer_bytes : int;
}

type t = {
  rt : Runtime.t;
  c : Costs.t;
  tables : Page_table.t array;
  vms : Topaz.Vm.t array;
  psize : int;
  npages : int;
  mode : manager_mode;
  (* Authoritative owner records for Fixed mode; entry [p] conceptually
     lives on [p]'s manager node and is only touched from there. *)
  fixed_owner : int array;
  st : stats;
}

let create rt ?(costs = Costs.default) ?initial_owner ?(manager = Dynamic)
    ~pages () =
  if pages <= 0 then invalid_arg "Dsm.create: pages";
  let nodes = Runtime.nodes rt in
  let initial_owner =
    match initial_owner with Some f -> f | None -> fun p -> p mod nodes
  in
  let vms = Array.init nodes (fun i -> Topaz.Task.vm (Runtime.task rt i)) in
  let psize = Topaz.Vm.page_size vms.(0) in
  let tables =
    Array.init nodes (fun node ->
        Page_table.create ~node ~pages ~initial_owner)
  in
  {
    rt;
    c = costs;
    tables;
    vms;
    psize;
    npages = pages;
    mode = manager;
    fixed_owner = Array.init pages initial_owner;
    st =
      {
        read_faults = 0;
        write_faults = 0;
        upgrades = 0;
        invalidations = 0;
        forward_hops = 0;
        manager_lookups = 0;
        page_transfers = 0;
        transfer_bytes = 0;
      };
  }

let page_size t = t.psize
let pages t = t.npages
let stats t = t.st

let here _t = Hw.Machine.id (Hw.Machine.self_machine ())

let check_page t page =
  if page < 0 || page >= t.npages then
    invalid_arg (Printf.sprintf "Dsm: page %d out of range" page)

(* Copy the owner's bytes for [page] (charging copy-out CPU in the
   caller's fiber). *)
let snapshot_page t ~node page =
  Sim.Fiber.consume (t.c.Costs.page_copy_cpu_per_byte *. float_of_int t.psize);
  Bytes.copy (Topaz.Vm.page_bytes t.vms.(node) page)

let install_page t ~node page data =
  Sim.Fiber.consume t.c.Costs.install_cpu;
  Topaz.Vm.install_page t.vms.(node) page data

(* Invalidate every node in [targets] (sequential control RPCs from the
   new owner).  The handler does not take the entry lock: revoking access
   is safe even mid-transaction, because the victim re-faults. *)
let invalidate_copies t ~new_owner page targets =
  List.iter
    (fun victim ->
      if victim <> new_owner then begin
        t.st.invalidations <- t.st.invalidations + 1;
        Topaz.Rpc.call (Runtime.rpc t.rt) ~dst:victim ~kind:"dsm-inval"
          ~req_size:t.c.Costs.invalidate_bytes ~work:(fun () ->
            Sim.Fiber.consume t.c.Costs.invalidate_cpu;
            let e = Page_table.entry t.tables.(victim) page in
            if not e.Page_table.is_owner then begin
              e.Page_table.access <- Page_table.No_access;
              e.Page_table.prob_owner <- new_owner
            end;
            (t.c.Costs.ack_bytes, ()))
      end)
    targets

(* Ask [node] to run [at_owner] if it is the owner; otherwise report its
   best guess at the owner. *)
let ask_node t ~page ~kind ~at_owner node =
  Topaz.Rpc.call (Runtime.rpc t.rt) ~dst:node ~kind
    ~req_size:t.c.Costs.request_bytes ~work:(fun () ->
      let e = Page_table.entry t.tables.(node) page in
      if e.Page_table.is_owner then begin
        Page_table.lock_entry e;
        (* Ownership can migrate while we waited for the lock. *)
        if e.Page_table.is_owner then begin
          let result = at_owner node e in
          Page_table.unlock_entry e;
          (t.c.Costs.reply_ctrl_bytes + t.psize, `Done result)
        end
        else begin
          Page_table.unlock_entry e;
          (t.c.Costs.reply_ctrl_bytes, `Forward e.Page_table.prob_owner)
        end
      end
      else (t.c.Costs.reply_ctrl_bytes, `Forward e.Page_table.prob_owner))

(* Dynamic distributed manager: chase probable-owner hints. *)
let rec transact_dynamic t ~page ~kind ~at_owner node hops =
  if hops > 64 then failwith "Dsm: owner chain too long";
  match ask_node t ~page ~kind ~at_owner node with
  | `Done result -> result
  | `Forward next ->
    t.st.forward_hops <- t.st.forward_hops + 1;
    transact_dynamic t ~page ~kind ~at_owner next (hops + 1)

let manager_of t page = page mod Array.length t.tables

(* Fixed distributed manager: every page has a designated manager node
   holding the authoritative owner record; requests ask the manager, then
   the owner directly.  Ownership transfers update the manager (see
   [record_fixed_owner]), so at most a short race window needs retries. *)
let rec transact_fixed t ~page ~kind ~at_owner tries =
  if tries > 32 then failwith "Dsm: fixed manager will not settle";
  let mgr = manager_of t page in
  t.st.manager_lookups <- t.st.manager_lookups + 1;
  let owner =
    Topaz.Rpc.call (Runtime.rpc t.rt) ~dst:mgr ~kind:"dsm-mgr"
      ~req_size:t.c.Costs.request_bytes ~work:(fun () ->
        Sim.Fiber.consume t.c.Costs.invalidate_cpu;
        (t.c.Costs.reply_ctrl_bytes, t.fixed_owner.(page)))
  in
  match ask_node t ~page ~kind ~at_owner owner with
  | `Done result -> result
  | `Forward _ ->
    (* The manager record was momentarily stale (transfer in flight). *)
    transact_fixed t ~page ~kind ~at_owner (tries + 1)

let transact t ~page ~kind ~at_owner start_hint =
  match t.mode with
  | Dynamic -> transact_dynamic t ~page ~kind ~at_owner start_hint 0
  | Fixed -> transact_fixed t ~page ~kind ~at_owner 0

(* After taking ownership in Fixed mode, record it at the manager before
   making the page writable. *)
let record_fixed_owner t ~page ~new_owner =
  match t.mode with
  | Dynamic -> ()
  | Fixed ->
    let mgr = manager_of t page in
    Topaz.Rpc.call (Runtime.rpc t.rt) ~dst:mgr ~kind:"dsm-mgr-update"
      ~req_size:t.c.Costs.request_bytes ~work:(fun () ->
        Sim.Fiber.consume t.c.Costs.invalidate_cpu;
        t.fixed_owner.(page) <- new_owner;
        (t.c.Costs.ack_bytes, ()))

let read_fault t node page =
  t.st.read_faults <- t.st.read_faults + 1;
  Sim.Fiber.consume t.c.Costs.fault_trap_cpu;
  let e = Page_table.entry t.tables.(node) page in
  Page_table.lock_entry e;
  (* Another local thread may have faulted the page in meanwhile. *)
  if e.Page_table.access = Page_table.No_access then begin
    let data, owner =
      transact t ~page ~kind:"dsm-read"
        ~at_owner:(fun owner eo ->
          (* Owner grants a read copy and downgrades to Read so a future
             write by the owner itself must re-invalidate. *)
          if not (List.mem node eo.Page_table.copyset) then
            eo.Page_table.copyset <- node :: eo.Page_table.copyset;
          if eo.Page_table.access = Page_table.Write then
            eo.Page_table.access <- Page_table.Read;
          (snapshot_page t ~node:owner page, owner))
        e.Page_table.prob_owner
    in
    t.st.page_transfers <- t.st.page_transfers + 1;
    t.st.transfer_bytes <- t.st.transfer_bytes + t.psize;
    install_page t ~node page data;
    e.Page_table.access <- Page_table.Read;
    e.Page_table.prob_owner <- owner
  end;
  Page_table.unlock_entry e

let write_fault t node page =
  t.st.write_faults <- t.st.write_faults + 1;
  Sim.Fiber.consume t.c.Costs.fault_trap_cpu;
  let e = Page_table.entry t.tables.(node) page in
  Page_table.lock_entry e;
  if e.Page_table.access <> Page_table.Write then begin
    if e.Page_table.is_owner then begin
      (* Upgrade in place: invalidate the readers we granted. *)
      t.st.upgrades <- t.st.upgrades + 1;
      let targets = e.Page_table.copyset in
      e.Page_table.copyset <- [];
      invalidate_copies t ~new_owner:node page targets;
      e.Page_table.access <- Page_table.Write
    end
    else begin
      let data, targets =
        transact t ~page ~kind:"dsm-write"
          ~at_owner:(fun owner eo ->
            let data = snapshot_page t ~node:owner page in
            (* The old owner relinquishes on grant, so only read copies
               need explicit invalidation. *)
            let targets = eo.Page_table.copyset in
            eo.Page_table.copyset <- [];
            eo.Page_table.access <- Page_table.No_access;
            eo.Page_table.is_owner <- false;
            eo.Page_table.prob_owner <- node;
            (data, targets))
          e.Page_table.prob_owner
      in
      t.st.page_transfers <- t.st.page_transfers + 1;
      t.st.transfer_bytes <- t.st.transfer_bytes + t.psize;
      install_page t ~node page data;
      e.Page_table.is_owner <- true;
      e.Page_table.prob_owner <- node;
      record_fixed_owner t ~page ~new_owner:node;
      invalidate_copies t ~new_owner:node page
        (List.filter (fun v -> v <> node) targets);
      e.Page_table.copyset <- [];
      e.Page_table.access <- Page_table.Write
    end
  end;
  Page_table.unlock_entry e

let ensure t ~write addr =
  if addr < 0 then invalid_arg "Dsm: negative address";
  let page = addr / t.psize in
  check_page t page;
  let node = here t in
  let e = Page_table.entry t.tables.(node) page in
  match (e.Page_table.access, write) with
  | Page_table.Write, _ | Page_table.Read, false -> ()
  | Page_table.Read, true | Page_table.No_access, true ->
    write_fault t node page
  | Page_table.No_access, false -> read_fault t node page

let ensure_write t addr = ensure t ~write:true addr
let ensure_read t addr = ensure t ~write:false addr

let read_f64 t addr =
  ensure t ~write:false addr;
  Topaz.Vm.read_f64 t.vms.(here t) addr

let write_f64 t addr v =
  ensure t ~write:true addr;
  Topaz.Vm.write_f64 t.vms.(here t) addr v

let read_u8 t addr =
  ensure t ~write:false addr;
  Topaz.Vm.read_u8 t.vms.(here t) addr

let write_u8 t addr v =
  ensure t ~write:true addr;
  Topaz.Vm.write_u8 t.vms.(here t) addr v

let access_of t ~node ~page =
  check_page t page;
  (Page_table.entry t.tables.(node) page).Page_table.access

let owner_of t page =
  check_page t page;
  let owners = ref [] in
  Array.iter
    (fun table ->
      let e = Page_table.entry table page in
      if e.Page_table.is_owner then owners := Page_table.node table :: !owners)
    t.tables;
  match !owners with
  | [ n ] -> n
  | [] -> failwith "Dsm.owner_of: page has no owner"
  | _ -> failwith "Dsm.owner_of: page has several owners"

let holders t page =
  check_page t page;
  Array.to_list t.tables
  |> List.filter_map (fun table ->
         let e = Page_table.entry table page in
         match e.Page_table.access with
         | Page_table.Read | Page_table.Write -> Some (Page_table.node table)
         | Page_table.No_access -> None)
