(** RPC-based synchronization — the fix adopted by "recent versions of
    Ivy", which "handled this problem by deviating from the data-shipping
    model and accessing shared lock variables with remote procedure calls"
    (paper §4.1).

    State lives at a fixed home node; operations are control RPCs, so no
    page ever moves. *)

module Lock : sig
  type t

  val create : Amber.Runtime.t -> home:int -> t

  (** Blocks (the server parks the request) until granted. *)
  val acquire : t -> unit

  val release : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Barrier : sig
  type t

  val create : Amber.Runtime.t -> home:int -> parties:int -> t
  val pass : t -> unit
end
