module Lock = struct
  type t = { dsm : Dsm.t; addr : int; mutable failed : int }

  let create dsm ~addr =
    if Dsm.read_u8 dsm addr <> 0 then
      invalid_arg "Sync_dsm.Lock.create: word not zero";
    { dsm; addr; failed = 0 }

  let max_backoff = 200e-6

  (* Test-and-set through the DSM.  Each probe needs write access, so a
     contended lock drags its whole page across the network every time. *)
  let acquire t =
    let rec spin backoff =
      Dsm.ensure_write t.dsm t.addr;
      if Dsm.read_u8 t.dsm t.addr = 0 then Dsm.write_u8 t.dsm t.addr 1
      else begin
        t.failed <- t.failed + 1;
        Sim.Fiber.consume backoff;
        spin (Float.min max_backoff (backoff *. 2.0))
      end
    in
    spin 2e-6

  let release t =
    Dsm.ensure_write t.dsm t.addr;
    if Dsm.read_u8 t.dsm t.addr = 0 then
      invalid_arg "Sync_dsm.Lock.release: lock is not held";
    Dsm.write_u8 t.dsm t.addr 0

  let with_lock t f =
    acquire t;
    match f () with
    | r ->
      release t;
      r
    | exception e ->
      release t;
      raise e

  let contended_probes t = t.failed
end

module Barrier = struct
  type t = {
    dsm : Dsm.t;
    count_addr : int;  (** arrivals in the current generation *)
    gen_addr : int;  (** generation counter (mod 256) *)
    parties : int;
  }

  let create dsm ~addr ~parties =
    if parties <= 0 || parties > 255 then
      invalid_arg "Sync_dsm.Barrier.create: parties";
    Dsm.write_u8 dsm addr 0;
    Dsm.write_u8 dsm (addr + 8) 0;
    { dsm; count_addr = addr; gen_addr = addr + 8; parties }

  (* Sense-reversing barrier over two shared bytes.  Waiters poll the
     generation byte: every poll is a read access that may fault the page
     back after the next arrival's write invalidated it. *)
  let pass t =
    let my_gen = Dsm.read_u8 t.dsm t.gen_addr in
    Dsm.ensure_write t.dsm t.count_addr;
    let arrived = Dsm.read_u8 t.dsm t.count_addr + 1 in
    if arrived >= t.parties then begin
      Dsm.write_u8 t.dsm t.count_addr 0;
      Dsm.write_u8 t.dsm t.gen_addr ((my_gen + 1) land 0xff)
    end
    else begin
      Dsm.write_u8 t.dsm t.count_addr arrived;
      let rec poll backoff =
        if Dsm.read_u8 t.dsm t.gen_addr = my_gen then begin
          Sim.Fiber.consume backoff;
          poll (Float.min 500e-6 (backoff *. 2.0))
        end
      in
      poll 10e-6
    end
end
