type outcome = Completed | Failed of exn

type resumption = { resume : unit -> paused; abort : exn -> paused }

and paused =
  | Done of outcome
  | Consumed of float * resumption
  | Blocked of ((unit -> unit) -> unit) * resumption
  | Yielded of resumption

type _ Effect.t +=
  | Consume : float -> unit Effect.t
  | Block : ((unit -> unit) -> unit) -> unit Effect.t
  | Yield : unit Effect.t

let consume dt =
  if Float.is_nan dt || dt < 0.0 then
    invalid_arg "Fiber.consume: negative or NaN duration";
  if dt > 0.0 then Effect.perform (Consume dt)

let block register = Effect.perform (Block register)
let yield () = Effect.perform Yield

let start body =
  let open Effect.Deep in
  let resumption_of k =
    { resume = (fun () -> continue k ()); abort = (fun e -> discontinue k e) }
  in
  match_with body ()
    {
      retc = (fun () -> Done Completed);
      exnc = (fun e -> Done (Failed e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Consume dt ->
            Some
              (fun (k : (a, paused) continuation) ->
                Consumed (dt, resumption_of k))
          | Block register ->
            Some (fun k -> Blocked (register, resumption_of k))
          | Yield -> Some (fun k -> Yielded (resumption_of k))
          | _ -> None);
    }
