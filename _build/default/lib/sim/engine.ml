type event = {
  id : int;
  mutable live : bool;
  thunk : unit -> unit;
}

type event_id = int

type t = {
  queue : event Event_queue.t;
  mutable clock : float;
  mutable next_id : int;
  mutable executed : int;
  (* Pending (not yet fired, not cancelled) events by id.  Entries are
     removed when an event fires or is cancelled. *)
  live_ids : (int, event) Hashtbl.t;
  root_rng : Rng.t;
}

let create ?(seed = 0x5EEDL) () =
  {
    queue = Event_queue.create ();
    clock = 0.0;
    next_id = 0;
    executed = 0;
    live_ids = Hashtbl.create 256;
    root_rng = Rng.make seed;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t ~time thunk =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let id = t.next_id in
  t.next_id <- id + 1;
  let ev = { id; live = true; thunk } in
  Hashtbl.replace t.live_ids id ev;
  Event_queue.add t.queue ~time ev;
  id

let schedule t ~delay thunk =
  if Float.is_nan delay || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or NaN delay";
  schedule_at t ~time:(t.clock +. delay) thunk

let cancel t id =
  match Hashtbl.find_opt t.live_ids id with
  | None -> ()
  | Some ev ->
    ev.live <- false;
    Hashtbl.remove t.live_ids id

let is_pending t id = Hashtbl.mem t.live_ids id

let fire t time ev =
  t.clock <- time;
  Hashtbl.remove t.live_ids ev.id;
  t.executed <- t.executed + 1;
  ev.thunk ()

let step t =
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> false
    | Some (_, ev) when not ev.live -> loop ()
    | Some (time, ev) ->
      fire t time ev;
      true
  in
  loop ()

let run ?until t =
  let start = t.executed in
  let horizon = match until with None -> Float.infinity | Some u -> u in
  let rec loop () =
    match Event_queue.peek t.queue with
    | None -> ()
    | Some (time, _) when time > horizon -> ()
    | Some _ ->
      ignore (step t : bool);
      loop ()
  in
  loop ();
  (match until with
  | Some u when u > t.clock && Float.is_finite u -> t.clock <- u
  | Some _ | None -> ());
  t.executed - start

let events_executed t = t.executed
let pending t = Event_queue.length t.queue
