type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  (* Re-mix with a distinct constant so child streams starting from nearby
     seeds do not overlap the parent's sequence. *)
  { state = mix64 (Int64.logxor seed 0xA0761D6478BD642FL) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let float t =
  (* 53 high-quality bits into the mantissa. *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v /. 9007199254740992.0

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = float t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let gaussian t =
  let u1 = Stdlib.max 1e-300 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
