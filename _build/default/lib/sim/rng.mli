(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator draws from an [Rng.t] so that a
    whole-cluster simulation is reproducible from a single seed.  [split]
    derives an independent stream, used to give each node/component its own
    generator without cross-coupling event orders. *)

type t

val make : int64 -> t

(** Derive an independent child stream.  The parent advances by one draw. *)
val split : t -> t

(** Uniform in [\[0, 2^64)]. *)
val bits64 : t -> int64

(** Uniform integer in [\[0, bound)].  Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Uniform float in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponentially distributed with the given mean. *)
val exponential : t -> mean:float -> float

(** Standard normal via Box–Muller. *)
val gaussian : t -> float

(** Fisher–Yates in-place shuffle. *)
val shuffle_in_place : t -> 'a array -> unit
