(** Structured simulation trace.

    A bounded ring buffer of timestamped records.  Tracing is off by default
    and costs one branch per call when disabled; tests and the CLI enable it
    to inspect protocol-level event sequences (invocations, migrations,
    packets, faults). *)

type record = {
  time : float;
  category : string;  (** e.g. "invoke", "move", "net", "dsm" *)
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** Record an event (no-op when disabled).  [detail] is lazy so that
    disabled traces never build strings. *)
val emit : t -> time:float -> category:string -> detail:string Lazy.t -> unit

(** Records in chronological order (oldest first). *)
val records : t -> record list

(** Records whose category equals [category]. *)
val by_category : t -> string -> record list

val clear : t -> unit
val length : t -> int
val pp_record : Format.formatter -> record -> unit
