type record = { time : float; category : string; detail : string }

type t = {
  mutable enabled : bool;
  capacity : int;
  buf : record option array;
  mutable next : int;  (* next write position *)
  mutable count : int; (* total records written (monotone) *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { enabled = false; capacity; buf = Array.make capacity None; next = 0;
    count = 0 }

let set_enabled t flag = t.enabled <- flag
let enabled t = t.enabled

let emit t ~time ~category ~detail =
  if t.enabled then begin
    t.buf.(t.next) <- Some { time; category; detail = Lazy.force detail };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- t.count + 1
  end

let records t =
  let stored = min t.count t.capacity in
  let start =
    if t.count <= t.capacity then 0 else t.next
  in
  let out = ref [] in
  for i = stored - 1 downto 0 do
    match t.buf.((start + i) mod t.capacity) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let by_category t category =
  List.filter (fun r -> String.equal r.category category) (records t)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let length t = min t.count t.capacity

let pp_record ppf r =
  Format.fprintf ppf "[%.6f] %-8s %s" r.time r.category r.detail
