(** Effect-based coroutines ("fibers") — the execution substrate for every
    simulated thread (Amber threads, Topaz kernel threads, RPC servers).

    A fiber is ordinary OCaml code that periodically performs one of three
    scheduling effects:

    - {!consume}[ dt] — occupy the executing (virtual) CPU for [dt] virtual
      seconds.  The executor decides how to account for it, including
      slicing it across timeslice quanta.
    - {!block}[ register] — suspend until some other party calls the wake
      function handed to [register].
    - {!yield} — relinquish the CPU but remain runnable.

    Fibers are trampolined: {!start} (and each resumption) runs the fiber
    until its next effect and returns a {!paused} value describing it.  The
    executor (see [Hw.Cpu]) owns all policy: when to resume, which CPU to
    charge, how to preempt. *)

type outcome = Completed | Failed of exn

(** How a fiber can be continued after a pause. *)
type resumption = {
  resume : unit -> paused;  (** continue normally *)
  abort : exn -> paused;    (** continue by raising [exn] inside the fiber *)
}

and paused =
  | Done of outcome
  | Consumed of float * resumption
      (** fiber asked to burn CPU for the given virtual duration *)
  | Blocked of ((unit -> unit) -> unit) * resumption
      (** fiber suspended; the function registers a one-shot waker *)
  | Yielded of resumption

(** Run [body] until its first pause (or completion). *)
val start : (unit -> unit) -> paused

(** {2 Effects performed from inside a fiber}

    Calling these outside a fiber raises [Effect.Unhandled]. *)

(** Charge [dt] virtual seconds of CPU time.  [dt] must be >= 0. *)
val consume : float -> unit

(** Suspend; [register] receives the waker that makes this fiber runnable
    again.  The waker must be called at most once. *)
val block : ((unit -> unit) -> unit) -> unit

val yield : unit -> unit
