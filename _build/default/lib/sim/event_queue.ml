type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () = { heap = [||]; size = 0; next_seq = 0 }

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q needed =
  let cap = max initial_capacity (max needed (2 * Array.length q.heap)) in
  if cap > Array.length q.heap then begin
    match q.heap with
    | [||] ->
      (* Delay allocation until we have a witness element. *)
      ()
    | heap ->
      let bigger = Array.make cap heap.(0) in
      Array.blit heap 0 bigger 0 q.size;
      q.heap <- bigger
  end

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier heap.(i) heap.(parent) then begin
      let tmp = heap.(i) in
      heap.(i) <- heap.(parent);
      heap.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < size && earlier heap.(l) heap.(i) then l else i in
  let smallest =
    if r < size && earlier heap.(r) heap.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = heap.(i) in
    heap.(i) <- heap.(smallest);
    heap.(smallest) <- tmp;
    sift_down heap size smallest
  end

let add q ~time value =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size >= Array.length q.heap then begin
    if Array.length q.heap = 0 then q.heap <- Array.make initial_capacity entry
    else grow q (q.size + 1)
  end;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q.heap (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.time, e.value)

let pop q =
  if q.size = 0 then None
  else begin
    let e = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q.heap q.size 0
    end;
    (* Overwrite the vacated slot so it does not pin the entry that was
       moved to the root; the popped entry itself is returned anyway. *)
    q.heap.(q.size) <- e;
    Some (e.time, e.value)
  end

let is_empty q = q.size = 0
let length q = q.size

let clear q =
  q.heap <- [||];
  q.size <- 0

let fold q ~init ~f =
  let acc = ref init in
  for i = 0 to q.size - 1 do
    let e = q.heap.(i) in
    acc := f !acc e.time e.value
  done;
  !acc
