lib/sim/fiber.ml: Effect Float
