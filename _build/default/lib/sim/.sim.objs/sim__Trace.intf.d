lib/sim/trace.mli: Format Lazy
