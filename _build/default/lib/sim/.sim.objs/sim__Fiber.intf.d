lib/sim/fiber.mli:
