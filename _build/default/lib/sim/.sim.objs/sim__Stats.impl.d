lib/sim/stats.ml: Array Float Format Stdlib
