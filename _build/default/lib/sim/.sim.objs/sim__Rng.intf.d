lib/sim/rng.mli:
