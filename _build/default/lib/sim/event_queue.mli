(** Binary-heap priority queue for simulation events.

    Entries are ordered by [(time, seq)]: earliest time first, and for equal
    times, insertion order (FIFO).  This stable tie-break is what makes the
    whole simulator deterministic, so it is part of the contract. *)

type 'a t

val create : unit -> 'a t

(** [add q ~time v] inserts [v] with timestamp [time].  Raises
    [Invalid_argument] if [time] is NaN. *)
val add : 'a t -> time:float -> 'a -> unit

(** Earliest entry, without removing it. *)
val peek : 'a t -> (float * 'a) option

(** Remove and return the earliest entry. *)
val pop : 'a t -> (float * 'a) option

val is_empty : 'a t -> bool
val length : 'a t -> int

(** Remove every entry. *)
val clear : 'a t -> unit

(** Fold over entries in unspecified order (diagnostics only). *)
val fold : 'a t -> init:'b -> f:('b -> float -> 'a -> 'b) -> 'b
