(** Pluggable ready-queue disciplines.

    Amber lets an application replace the node scheduler at runtime
    (§2.1 of the paper); this record is the interface such replacement
    schedulers implement.  The queue holds any runnable value — the machine
    model instantiates it with thread control blocks. *)

type 'a t = {
  name : string;
  enqueue : 'a -> unit;
  dequeue : unit -> 'a option;
  remove : ('a -> bool) -> int;
      (** remove all entries matching the predicate; returns how many *)
  length : unit -> int;
}

(** First-in first-out (the default Amber discipline). *)
val fifo : unit -> 'a t

(** Last-in first-out ("hot" threads first; favors cache affinity). *)
val lifo : unit -> 'a t

(** Highest priority first; FIFO among equals.  [priority_of] is sampled at
    enqueue time. *)
val by_priority : priority_of:('a -> int) -> unit -> 'a t
