type 'a t = {
  name : string;
  enqueue : 'a -> unit;
  dequeue : unit -> 'a option;
  remove : ('a -> bool) -> int;
  length : unit -> int;
}

(* All three disciplines keep a doubly-ended list representation simple
   enough to support mid-queue removal, which the machine model needs when
   a thread is destroyed or explicitly migrated while runnable. *)

let fifo () =
  let q = ref [] (* rear, reversed *) and front = ref [] in
  let normalize () =
    if !front = [] then begin
      front := List.rev !q;
      q := []
    end
  in
  let enqueue x = q := x :: !q in
  let dequeue () =
    normalize ();
    match !front with
    | [] -> None
    | x :: rest ->
      front := rest;
      Some x
  in
  let remove pred =
    let keep l = List.filter (fun x -> not (pred x)) l in
    let before = List.length !front + List.length !q in
    front := keep !front;
    q := keep !q;
    before - (List.length !front + List.length !q)
  in
  let length () = List.length !front + List.length !q in
  { name = "fifo"; enqueue; dequeue; remove; length }

let lifo () =
  let stack = ref [] in
  let enqueue x = stack := x :: !stack in
  let dequeue () =
    match !stack with
    | [] -> None
    | x :: rest ->
      stack := rest;
      Some x
  in
  let remove pred =
    let before = List.length !stack in
    stack := List.filter (fun x -> not (pred x)) !stack;
    before - List.length !stack
  in
  let length () = List.length !stack in
  { name = "lifo"; enqueue; dequeue; remove; length }

let by_priority ~priority_of () =
  (* Sorted association list: highest priority first, FIFO among equals. *)
  let items = ref [] in
  let enqueue x =
    let p = priority_of x in
    let rec insert = function
      | [] -> [ (p, x) ]
      | (p', _) :: _ as rest when p > p' -> (p, x) :: rest
      | entry :: rest -> entry :: insert rest
    in
    items := insert !items
  in
  let dequeue () =
    match !items with
    | [] -> None
    | (_, x) :: rest ->
      items := rest;
      Some x
  in
  let remove pred =
    let before = List.length !items in
    items := List.filter (fun (_, x) -> not (pred x)) !items;
    before - List.length !items
  in
  let length () = List.length !items in
  { name = "priority"; enqueue; dequeue; remove; length }
