type mac = Fifo | Csma_cd

(* A packet deferring for the medium under CSMA/CD. *)
type pending = {
  pkt : Packet.t;
  submitted : float;
  mutable attempts : int;
  mutable backoff_until : float;
}

type t = {
  eng : Sim.Engine.t;
  bandwidth_bps : float;
  propagation : float;
  wire_overhead : float;
  header_bytes : int;
  mac : mac;
  rng : Sim.Rng.t;
  trace : Sim.Trace.t;
  mutable free_at : float;
  (* CSMA/CD state *)
  mutable waiting : pending list;
  (* Earliest contention-round event currently scheduled (infinity when
     none).  Extra stale rounds are harmless: they just recompute. *)
  mutable next_round : float;
  (* statistics *)
  mutable packets : int;
  mutable bytes : int;
  mutable queueing : float;
  mutable busy : float;
  mutable collision_count : int;
  by_kind : (string, int * int) Hashtbl.t;
}

let slot_time = 51.2e-6
let jam_time = 4.8e-6
let max_backoff_exp = 10

let create ~engine ?(bandwidth_bps = 10e6) ?(propagation = 20e-6)
    ?(wire_overhead = 50e-6) ?(header_bytes = 64) ?(mac = Fifo)
    ?(trace = Sim.Trace.create ()) () =
  if bandwidth_bps <= 0.0 then invalid_arg "Ethernet.create: bandwidth";
  {
    eng = engine;
    bandwidth_bps;
    propagation;
    wire_overhead;
    header_bytes;
    mac;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    trace;
    free_at = 0.0;
    waiting = [];
    next_round = Float.infinity;
    packets = 0;
    bytes = 0;
    queueing = 0.0;
    busy = 0.0;
    collision_count = 0;
    by_kind = Hashtbl.create 16;
  }

let tx_time t ~size =
  t.wire_overhead
  +. (8.0 *. float_of_int (size + t.header_bytes) /. t.bandwidth_bps)

let busy_until t = t.free_at

let account t (p : Packet.t) ~waited ~tx =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + p.Packet.size;
  (let n, b =
     Option.value ~default:(0, 0) (Hashtbl.find_opt t.by_kind p.Packet.kind)
   in
   Hashtbl.replace t.by_kind p.Packet.kind (n + 1, b + p.Packet.size));
  t.queueing <- t.queueing +. waited;
  t.busy <- t.busy +. tx

(* Begin transmitting [p] at [start] (medium known free then). *)
let transmit t (p : Packet.t) ~submitted ~start =
  let tx = tx_time t ~size:p.Packet.size in
  let done_at = start +. tx in
  t.free_at <- done_at;
  account t p ~waited:(start -. submitted) ~tx;
  let delivery = done_at +. t.propagation in
  Sim.Trace.emit t.trace ~time:start ~category:"net"
    ~detail:
      (lazy
        (Format.asprintf "%a queued=%.0fus tx=%.0fus" Packet.pp p
           ((start -. submitted) *. 1e6)
           (tx *. 1e6)));
  ignore
    (Sim.Engine.schedule_at t.eng ~time:delivery p.Packet.deliver
      : Sim.Engine.event_id);
  delivery

(* --- CSMA/CD ------------------------------------------------------------ *)

(* Run one contention round at the current time: the stations whose
   backoff has expired attempt together; one succeeds alone, several
   collide and back off. *)
let rec csma_round t =
  t.next_round <- Float.infinity;
  let now = Sim.Engine.now t.eng in
  if now < t.free_at then schedule_round t t.free_at
  else begin
    let ready, deferred =
      List.partition (fun w -> w.backoff_until <= now +. 1e-12) t.waiting
    in
    match ready with
    | [] ->
      (match deferred with
      | [] -> ()
      | _ ->
        let next =
          List.fold_left
            (fun acc w -> Float.min acc w.backoff_until)
            Float.infinity deferred
        in
        schedule_round t next)
    | [ w ] ->
      t.waiting <- deferred;
      ignore (transmit t w.pkt ~submitted:w.submitted ~start:now : float);
      if deferred <> [] then schedule_round t t.free_at
    | several ->
      (* Collision: everyone jams, then picks a fresh backoff slot. *)
      t.collision_count <- t.collision_count + 1;
      t.busy <- t.busy +. jam_time;
      t.free_at <- now +. jam_time;
      List.iter
        (fun w ->
          w.attempts <- w.attempts + 1;
          let exp = min w.attempts max_backoff_exp in
          let slots = Sim.Rng.int t.rng (1 lsl exp) in
          w.backoff_until <-
            now +. jam_time +. (slot_time *. float_of_int slots))
        several;
      t.waiting <- several @ deferred;
      let next =
        List.fold_left
          (fun acc w -> Float.min acc w.backoff_until)
          Float.infinity t.waiting
      in
      schedule_round t (Float.max next t.free_at)
  end

and schedule_round t time =
  let time = Float.max time (Sim.Engine.now t.eng) in
  if time < t.next_round -. 1e-12 then begin
    t.next_round <- time;
    ignore
      (Sim.Engine.schedule_at t.eng ~time (fun () -> csma_round t)
        : Sim.Engine.event_id)
  end

let send t (p : Packet.t) =
  let now = Sim.Engine.now t.eng in
  match t.mac with
  | Fifo ->
    let start = Float.max now t.free_at in
    t.free_at <- start +. tx_time t ~size:p.Packet.size;
    transmit t p ~submitted:now ~start
  | Csma_cd ->
    let w =
      { pkt = p; submitted = now; attempts = 0; backoff_until = now }
    in
    t.waiting <- t.waiting @ [ w ];
    schedule_round t (Float.max now t.free_at);
    (* Earliest possible delivery, ignoring collisions. *)
    Float.max now t.free_at +. tx_time t ~size:p.Packet.size +. t.propagation

let packets_sent t = t.packets
let bytes_sent t = t.bytes
let total_queueing t = t.queueing
let busy_seconds t = t.busy
let collisions t = t.collision_count

let traffic_by_kind t =
  Hashtbl.fold (fun kind (n, b) acc -> (kind, n, b) :: acc) t.by_kind []
  |> List.sort compare

let reset_stats t =
  t.packets <- 0;
  t.bytes <- 0;
  t.queueing <- 0.0;
  t.busy <- 0.0;
  t.collision_count <- 0;
  Hashtbl.reset t.by_kind
