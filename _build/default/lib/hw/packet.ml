type t = {
  src : int;
  dst : int;
  size : int;
  kind : string;
  deliver : unit -> unit;
}

let make ~src ~dst ~size ~kind deliver =
  if size < 0 then invalid_arg "Packet.make: negative size";
  { src; dst; size; kind; deliver }

let pp ppf p =
  Format.fprintf ppf "%s[%d->%d, %dB]" p.kind p.src p.dst p.size
