(** Shared-medium Ethernet model (the paper's 10 Mbit/s segment).

    All nodes share one transmission medium.  A packet's wire time is

    {v  tx = wire_overhead + 8 * (size + header_bytes) / bandwidth_bps  v}

    and delivery happens [propagation] seconds after its transmission
    completes, at which point the packet's [deliver] callback runs.

    Two media-access models are available:

    - {!Fifo} (default): transmissions serialize in submission order —
      an idealized collision-free bus.  All calibration against the
      paper's Table 1 uses this model.
    - {!Csma_cd}: the real 1989 Ethernet.  A station that finds the
      medium busy defers; stations that attempt simultaneously collide,
      jam, and retry under binary exponential backoff (slot time 51.2 µs).
      Under light load it behaves like FIFO; near saturation it loses
      goodput to collisions — measurable with `bench ablate-mac`.

    Both models capture the two effects the paper's evaluation depends
    on: per-message latency and serialization of concurrent senders. *)

type mac = Fifo | Csma_cd

type t

val create :
  engine:Sim.Engine.t ->
  ?bandwidth_bps:float ->
  (* default 10e6, the paper's Ethernet *)
  ?propagation:float ->
  (* default 20 us *)
  ?wire_overhead:float ->
  (* per-packet fixed wire time (preamble, inter-frame gap); default 50 us *)
  ?header_bytes:int ->
  (* default 64: frame header + trailer + minimal protocol headers *)
  ?mac:mac ->
  ?trace:Sim.Trace.t ->
  unit ->
  t

(** Submit a packet for transmission.  Returns the predicted delivery time
    under {!Fifo}; under {!Csma_cd} the return value is the earliest
    possible delivery (collisions may delay it further). *)
val send : t -> Packet.t -> float

(** Wire time for a packet of [size] payload bytes on an idle medium,
    excluding propagation. *)
val tx_time : t -> size:int -> float

(** Instant at which the medium next becomes free. *)
val busy_until : t -> float

(** {1 Statistics} *)

val packets_sent : t -> int
val bytes_sent : t -> int

(** Total time packets spent queued or backing off before transmitting. *)
val total_queueing : t -> float

(** Seconds the medium has spent transmitting (including jam time). *)
val busy_seconds : t -> float

(** Collision events (always 0 under {!Fifo}). *)
val collisions : t -> int

(** Traffic broken down by packet kind: [(kind, packets, bytes)], sorted
    by kind. *)
val traffic_by_kind : t -> (string * int * int) list

val reset_stats : t -> unit
