lib/hw/machine.mli: Format Sched_policy Sim
