lib/hw/sched_policy.mli:
