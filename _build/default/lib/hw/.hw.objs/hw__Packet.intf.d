lib/hw/packet.mli: Format
