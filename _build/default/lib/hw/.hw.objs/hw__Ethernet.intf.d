lib/hw/ethernet.mli: Packet Sim
