lib/hw/ethernet.ml: Float Format Hashtbl List Option Packet Sim
