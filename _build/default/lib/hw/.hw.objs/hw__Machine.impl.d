lib/hw/machine.ml: Array Float Format List Logs Printexc Printf Sched_policy Sim
