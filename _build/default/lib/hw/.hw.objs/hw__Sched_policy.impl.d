lib/hw/sched_policy.ml: List
