lib/hw/packet.ml: Format
