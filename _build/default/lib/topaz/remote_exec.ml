let start_all tasks ?(startup_latency = 5e-3) ~init ~main () =
  match Array.length tasks with
  | 0 -> invalid_arg "Remote_exec.start_all: no tasks"
  | n ->
    let engine = Task.engine tasks.(0) in
    let remaining = ref n in
    let main_tcb = ref None in
    let waiting_wake = ref None in
    let node_ready () =
      decr remaining;
      if !remaining = 0 then
        match !waiting_wake with Some wake -> wake () | None -> ()
    in
    Array.iteri
      (fun i task ->
        ignore
          (Sim.Engine.schedule engine
             ~delay:(startup_latency *. float_of_int (i + 1))
             (fun () ->
               let tcb =
                 Task.spawn task ~name:(Printf.sprintf "task%d-init" i)
                   (fun () -> init task)
               in
               Hw.Machine.on_finish tcb (fun _ -> node_ready ()))
            : Sim.Engine.event_id))
      tasks;
    let tcb =
      Task.spawn tasks.(0) ~name:"main" (fun () ->
          if !remaining > 0 then
            Sim.Fiber.block (fun wake -> waiting_wake := Some wake);
          main ())
    in
    main_tcb := Some tcb;
    (match !main_tcb with Some t -> t | None -> assert false)
