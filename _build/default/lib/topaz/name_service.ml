type t = (string, int) Hashtbl.t

let create () = Hashtbl.create 16
let register t name v = Hashtbl.replace t name v
let lookup t name = Hashtbl.find t name
let lookup_opt t name = Hashtbl.find_opt t name
let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
