(** Topaz-style fast RPC between tasks (Birrell–Nelson / Firefly RPC).

    Amber's kernel uses RPC for object moves, thread migration, locate
    requests and address-space-server traffic.  The model charges:

    - sender CPU: [send_cpu_fixed + send_cpu_per_byte * size] (marshalling
      and the kernel send path), on the caller's node;
    - one packet on the shared Ethernet per direction;
    - receiver CPU: [recv_cpu_fixed + recv_cpu_per_byte * size] plus
      [dispatch_cpu], charged to a server thread on the destination node.

    Server threads are real simulated threads: they contend with
    application threads for the destination node's CPUs, so a busy node
    serves RPCs slowly — the effect behind the paper's "operations are
    more expensive on a heavily loaded system" caveat (§5). *)

type t

type costs = {
  send_cpu_fixed : float;
  send_cpu_per_byte : float;
  recv_cpu_fixed : float;
  recv_cpu_per_byte : float;
  dispatch_cpu : float;
}

val default_costs : costs

val create :
  ether:Hw.Ethernet.t ->
  tasks:Task.t array ->
  ?costs:costs ->
  ?servers_per_node:int ->
  unit ->
  t

val costs : t -> costs

(** [call t ~dst ~kind ~req_size ~work] performs a synchronous RPC from the
    calling fiber's node to node [dst].  [work] executes in a server fiber
    on [dst] and returns [(reply_size, result)].  The caller blocks until
    the reply arrives.  A call whose destination is the caller's own node
    short-circuits the wire but still pays dispatch CPU.

    Must be called from inside a fiber. *)
val call :
  t -> dst:int -> kind:string -> req_size:int -> work:(unit -> int * 'a) -> 'a

(** One-way message: [handler] runs in a server fiber on [dst].  Usable
    from outside a fiber (e.g. an [on_resume] hook), so no send-side CPU is
    charged here — callers in fiber context account for it themselves. *)
val post :
  t -> src:int -> dst:int -> kind:string -> size:int -> (unit -> unit) -> unit

(** {1 Statistics} *)

val calls_made : t -> int
val posts_made : t -> int

(** Currently queued work items on a node (servers all busy). *)
val backlog : t -> int -> int
