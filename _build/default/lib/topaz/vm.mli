(** Per-task virtual memory with demand-zero pages.

    Topaz zero-fills unwritten pages, a property Amber's descriptor scheme
    relies on (§3.2: "an uninitialized descriptor is detected because
    unwritten pages of virtual memory are zero-filled").  This module
    models a sparse byte-addressable space: a page is materialized
    (zero-filled) the first time it is touched.  Ivy's DSM stores real page
    contents here; Amber uses it for zero-fill accounting.

    Addresses are plain [int] byte offsets into the task's virtual space. *)

type t

val create : ?page_size:int -> unit -> t
(** [page_size] defaults to 1024 bytes (the VAX cluster size Ivy used). *)

val page_size : t -> int

(** Page number containing [addr]. *)
val page_of_addr : t -> int -> int

(** Materialize (if needed) and return the backing bytes of page [n]. *)
val page_bytes : t -> int -> Bytes.t

(** Has page [n] been materialized? *)
val is_mapped : t -> int -> bool

(** Replace the contents of page [n] (e.g. with a copy received from
    another node).  Materializes the page.  Raises [Invalid_argument] if
    the buffer length differs from the page size. *)
val install_page : t -> int -> Bytes.t -> unit

(** Byte and 64-bit-float accessors; addresses may not straddle a page for
    [read_f64]/[write_f64] (raises [Invalid_argument]). *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

(** {1 Statistics} *)

val pages_mapped : t -> int

(** Number of demand-zero fills performed. *)
val zero_fills : t -> int
