(** A Topaz task: one activation of the program image on one node.

    Amber programs run as one task per participating node (paper §3).  A
    task bundles the node's machine (CPUs + scheduler), its virtual memory,
    and bookkeeping for the threads it has spawned. *)

type t

val create : machine:Hw.Machine.t -> ?vm:Vm.t -> unit -> t

(** Node id (equals the machine id). *)
val node : t -> int

val machine : t -> Hw.Machine.t
val vm : t -> Vm.t
val engine : t -> Sim.Engine.t

(** Spawn a kernel thread in this task. *)
val spawn :
  t -> name:string -> ?priority:int -> (unit -> unit) -> Hw.Machine.tcb

(** Number of threads ever spawned in this task. *)
val threads_spawned : t -> int

(** Threads spawned and not yet finished. *)
val threads_live : t -> int
