type t = {
  m : Hw.Machine.t;
  mem : Vm.t;
  mutable spawned : int;
  mutable live : int;
}

let create ~machine ?vm () =
  let mem = match vm with Some v -> v | None -> Vm.create () in
  { m = machine; mem; spawned = 0; live = 0 }

let node t = Hw.Machine.id t.m
let machine t = t.m
let vm t = t.mem
let engine t = Hw.Machine.engine t.m

let spawn t ~name ?priority body =
  t.spawned <- t.spawned + 1;
  t.live <- t.live + 1;
  let tcb = Hw.Machine.spawn t.m ~name ?priority body in
  Hw.Machine.on_finish tcb (fun _ -> t.live <- t.live - 1);
  tcb

let threads_spawned t = t.spawned
let threads_live t = t.live
