(** Trivial cluster-wide name registry.

    Topaz provided network name services used at program startup (finding
    peer tasks, the address-space server, …).  Lookups made during the
    simulation charge no cost — the paper's startup costs are outside all
    measured intervals. *)

type t

val create : unit -> t
val register : t -> string -> int -> unit

(** Raises [Not_found]. *)
val lookup : t -> string -> int

val lookup_opt : t -> string -> int option
val names : t -> string list
