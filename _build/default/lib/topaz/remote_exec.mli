(** Remote process creation: start one task per node from the same program
    image (paper §3: "tasks are created at program startup using Topaz
    facilities for creating remote processes").

    Task 0 is the task whose [main] runs the user program; the remaining
    tasks start their kernel loops and wait for work. *)

(** [start_all tasks ~startup_latency ~init ~main] schedules [init task]
    on every task after a per-node staggered [startup_latency], then runs
    [main] in a fresh thread on task 0 once every node has initialized.
    Returns the main thread's TCB. *)
val start_all :
  Task.t array ->
  ?startup_latency:float ->
  init:(Task.t -> unit) ->
  main:(unit -> unit) ->
  unit ->
  Hw.Machine.tcb
