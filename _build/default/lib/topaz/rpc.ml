type costs = {
  send_cpu_fixed : float;
  send_cpu_per_byte : float;
  recv_cpu_fixed : float;
  recv_cpu_per_byte : float;
  dispatch_cpu : float;
}

(* Calibrated (together with packet wire times) against the ~2.6 ms null
   RPC reported for the Firefly [Schroeder & Burrows 89]. *)
let default_costs =
  {
    send_cpu_fixed = 1.0e-3;
    send_cpu_per_byte = 0.4e-6;
    recv_cpu_fixed = 1.0e-3;
    recv_cpu_per_byte = 0.4e-6;
    dispatch_cpu = 0.1e-3;
  }

type endpoint = {
  task : Task.t;
  queue : (unit -> unit) Queue.t;
  mutable idle : (unit -> unit) list;  (* wakers of parked server threads *)
}

type t = {
  ether : Hw.Ethernet.t;
  endpoints : endpoint array;
  c : costs;
  mutable calls : int;
  mutable posts : int;
}

let rec server_loop ep =
  (match Queue.take_opt ep.queue with
  | Some work -> work ()
  | None ->
    Sim.Fiber.block (fun wake -> ep.idle <- wake :: ep.idle));
  server_loop ep

let enqueue_work ep work =
  Queue.add work ep.queue;
  match ep.idle with
  | [] -> ()
  | wake :: rest ->
    ep.idle <- rest;
    wake ()

let create ~ether ~tasks ?(costs = default_costs) ?(servers_per_node = 8) ()
    =
  let endpoints =
    Array.map
      (fun task -> { task; queue = Queue.create (); idle = [] })
      tasks
  in
  Array.iteri
    (fun node ep ->
      for i = 0 to servers_per_node - 1 do
        ignore
          (Task.spawn ep.task
             ~name:(Printf.sprintf "rpc-server-%d.%d" node i)
             (fun () -> server_loop ep)
            : Hw.Machine.tcb)
      done)
    endpoints;
  { ether; endpoints; c = costs; calls = 0; posts = 0 }

let costs t = t.c

let endpoint t node =
  if node < 0 || node >= Array.length t.endpoints then
    invalid_arg "Rpc: bad node id";
  t.endpoints.(node)

let send_side_cpu t size = t.c.send_cpu_fixed +. (t.c.send_cpu_per_byte *. float_of_int size)
let recv_side_cpu t size =
  t.c.recv_cpu_fixed +. (t.c.recv_cpu_per_byte *. float_of_int size)

let call t ~dst ~kind ~req_size ~work =
  t.calls <- t.calls + 1;
  let src = Hw.Machine.id (Hw.Machine.self_machine ()) in
  if src = dst then begin
    (* Local short-circuit: no wire, but the dispatch path still runs. *)
    Sim.Fiber.consume t.c.dispatch_cpu;
    let _size, result = work () in
    result
  end
  else begin
    Sim.Fiber.consume (send_side_cpu t req_size);
    let result = ref None in
    Sim.Fiber.block (fun wake ->
        let deliver_request () =
          enqueue_work (endpoint t dst) (fun () ->
              (* Runs in a server fiber on [dst]. *)
              Sim.Fiber.consume (recv_side_cpu t req_size +. t.c.dispatch_cpu);
              let reply_size, value = work () in
              Sim.Fiber.consume (send_side_cpu t reply_size);
              let deliver_reply () =
                result := Some value;
                wake ()
              in
              ignore
                (Hw.Ethernet.send t.ether
                   (Hw.Packet.make ~src:dst ~dst:src ~size:reply_size
                      ~kind:(kind ^ "-reply") deliver_reply)
                  : float))
        in
        ignore
          (Hw.Ethernet.send t.ether
             (Hw.Packet.make ~src ~dst ~size:req_size ~kind deliver_request)
            : float));
    (* Back on the caller: unmarshal the reply. *)
    Sim.Fiber.consume (recv_side_cpu t 0);
    match !result with
    | Some v -> v
    | None -> assert false
  end

let post t ~src ~dst ~kind ~size handler =
  t.posts <- t.posts + 1;
  if src = dst then
    enqueue_work (endpoint t dst) (fun () ->
        Sim.Fiber.consume t.c.dispatch_cpu;
        handler ())
  else begin
    let deliver () =
      enqueue_work (endpoint t dst) (fun () ->
          Sim.Fiber.consume (recv_side_cpu t size +. t.c.dispatch_cpu);
          handler ())
    in
    ignore
      (Hw.Ethernet.send t.ether
         (Hw.Packet.make ~src ~dst ~size ~kind deliver)
        : float)
  end

let calls_made t = t.calls
let posts_made t = t.posts
let backlog t node = Queue.length (endpoint t node).queue
