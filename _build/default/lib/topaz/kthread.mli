(** Thin helpers over machine threads: blocking join and sleep.

    These are the Topaz thread facilities Amber builds on; Amber's own
    [Start]/[Join] (with result passing and the 1.33 ms cost) live in the
    [amber] library. *)

(** Block the calling fiber until [tcb] terminates.  Returns its outcome.
    Must be called from inside a fiber. *)
val join : Hw.Machine.tcb -> Sim.Fiber.outcome

(** Block the calling fiber for [dt] virtual seconds without occupying a
    CPU. *)
val sleep : engine:Sim.Engine.t -> float -> unit

(** Block until [wake] is called; a bare one-shot parking primitive. *)
val park : register:((unit -> unit) -> unit) -> unit
