lib/topaz/remote_exec.ml: Array Hw Printf Sim Task
