lib/topaz/rpc.mli: Hw Task
