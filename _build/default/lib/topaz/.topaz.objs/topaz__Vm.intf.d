lib/topaz/vm.mli: Bytes
