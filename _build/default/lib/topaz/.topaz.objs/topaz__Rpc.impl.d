lib/topaz/rpc.ml: Array Hw Printf Queue Sim Task
