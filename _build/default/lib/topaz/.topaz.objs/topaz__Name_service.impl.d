lib/topaz/name_service.ml: Hashtbl
