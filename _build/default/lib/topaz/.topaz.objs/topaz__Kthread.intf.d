lib/topaz/kthread.mli: Hw Sim
