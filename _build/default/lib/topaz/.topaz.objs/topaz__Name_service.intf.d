lib/topaz/name_service.mli:
