lib/topaz/remote_exec.mli: Hw Task
