lib/topaz/task.mli: Hw Sim Vm
