lib/topaz/vm.ml: Bytes Char Hashtbl Int64
