lib/topaz/task.ml: Hw Vm
