lib/topaz/kthread.ml: Hw Sim
