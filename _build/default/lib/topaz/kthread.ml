let join tcb =
  let result = ref None in
  (match Hw.Machine.state tcb with
  | Hw.Machine.Finished outcome -> result := Some outcome
  | Hw.Machine.Ready | Hw.Machine.Running _ | Hw.Machine.Blocked ->
    Sim.Fiber.block (fun wake ->
        Hw.Machine.on_finish tcb (fun outcome ->
            result := Some outcome;
            wake ())));
  match !result with
  | Some outcome -> outcome
  | None -> assert false

let sleep ~engine dt =
  if dt < 0.0 then invalid_arg "Kthread.sleep: negative duration";
  Sim.Fiber.block (fun wake ->
      ignore (Sim.Engine.schedule engine ~delay:dt wake : Sim.Engine.event_id))

let park ~register = Sim.Fiber.block register
