type t = {
  psize : int;
  pages : (int, Bytes.t) Hashtbl.t;
  mutable zero_fill_count : int;
}

let create ?(page_size = 1024) () =
  if page_size <= 0 || page_size land 7 <> 0 then
    invalid_arg "Vm.create: page size must be positive and 8-byte aligned";
  { psize = page_size; pages = Hashtbl.create 256; zero_fill_count = 0 }

let page_size t = t.psize

let page_of_addr t addr =
  if addr < 0 then invalid_arg "Vm.page_of_addr: negative address";
  addr / t.psize

let page_bytes t n =
  match Hashtbl.find_opt t.pages n with
  | Some b -> b
  | None ->
    let b = Bytes.make t.psize '\000' in
    Hashtbl.replace t.pages n b;
    t.zero_fill_count <- t.zero_fill_count + 1;
    b

let is_mapped t n = Hashtbl.mem t.pages n

let install_page t n contents =
  if Bytes.length contents <> t.psize then
    invalid_arg "Vm.install_page: wrong page size";
  (match Hashtbl.find_opt t.pages n with
  | Some _ -> ()
  | None -> t.zero_fill_count <- t.zero_fill_count + 1);
  Hashtbl.replace t.pages n (Bytes.copy contents)

let read_u8 t addr =
  let b = page_bytes t (page_of_addr t addr) in
  Char.code (Bytes.get b (addr mod t.psize))

let write_u8 t addr v =
  if v < 0 || v > 255 then invalid_arg "Vm.write_u8: byte range";
  let b = page_bytes t (page_of_addr t addr) in
  Bytes.set b (addr mod t.psize) (Char.chr v)

let check_f64 t addr =
  if addr < 0 then invalid_arg "Vm: negative address";
  if addr mod t.psize > t.psize - 8 then
    invalid_arg "Vm: f64 access straddles a page"

let read_f64 t addr =
  check_f64 t addr;
  let b = page_bytes t (page_of_addr t addr) in
  Int64.float_of_bits (Bytes.get_int64_le b (addr mod t.psize))

let write_f64 t addr v =
  check_f64 t addr;
  let b = page_bytes t (page_of_addr t addr) in
  Bytes.set_int64_le b (addr mod t.psize) (Int64.bits_of_float v)

let pages_mapped t = Hashtbl.length t.pages
let zero_fills t = t.zero_fill_count
