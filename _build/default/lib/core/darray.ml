type 'a chunk = {
  base : int;  (* global index of element 0 of this chunk *)
  data : 'a array;
}

type 'a t = {
  len : int;
  elt_bytes : int;
  chunks : 'a chunk Aobject.t array;
  (* chunk_start.(k) = base of chunk k; length chunks+1 with final = len *)
  bounds : int array;
}

let chunk_of t i =
  if i < 0 || i >= t.len then invalid_arg "Darray: index out of bounds";
  (* Chunks are near-equal slices; locate by division then adjust. *)
  let k = ref (i * Array.length t.chunks / t.len) in
  while i < t.bounds.(!k) do
    decr k
  done;
  while i >= t.bounds.(!k + 1) do
    incr k
  done;
  !k

let create rt ?chunks ?placement ?(elt_bytes = 8) ?(fill_cpu = 0.0) ~name
    ~len f =
  if len <= 0 then invalid_arg "Darray.create: length";
  let nchunks =
    match chunks with
    | Some c ->
      if c <= 0 || c > len then invalid_arg "Darray.create: chunks";
      c
    | None -> min len (Runtime.nodes rt)
  in
  let placement =
    match placement with Some p -> p | None -> Placement.blocked rt
  in
  let bounds = Array.init (nchunks + 1) (fun k -> k * len / nchunks) in
  let chunk_objs =
    Array.init nchunks (fun k ->
        let base = bounds.(k) in
        let size = bounds.(k + 1) - base in
        if fill_cpu > 0.0 then
          Sim.Fiber.consume (fill_cpu *. float_of_int size);
        Runtime.create_object rt
          ~size:(elt_bytes * size)
          ~name:(Printf.sprintf "%s.%d" name k)
          { base; data = Array.init size (fun j -> f (base + j)) })
  in
  Placement.distribute rt placement chunk_objs;
  { len; elt_bytes; chunks = chunk_objs; bounds }

let length t = t.len
let chunk_count t = Array.length t.chunks

let node_of_index t i = t.chunks.(chunk_of t i).Aobject.location

let get rt t i =
  let k = chunk_of t i in
  Invoke.invoke rt ~return_payload:t.elt_bytes t.chunks.(k) (fun c ->
      c.data.(i - c.base))

let set rt t i v =
  let k = chunk_of t i in
  Invoke.invoke rt ~payload:t.elt_bytes t.chunks.(k) (fun c ->
      c.data.(i - c.base) <- v)

let per_chunk_threads rt t body =
  let threads =
    Array.mapi
      (fun k obj ->
        Athread.start_invoke rt
          ~name:(Printf.sprintf "darray-%d" k)
          obj (body k))
      t.chunks
  in
  Array.map (fun th -> Athread.join rt th) threads

let map_in_place rt ?(cost_per_elt = 0.0) t f =
  ignore
    (per_chunk_threads rt t (fun _k c ->
         for j = 0 to Array.length c.data - 1 do
           c.data.(j) <- f (c.base + j) c.data.(j)
         done;
         if cost_per_elt > 0.0 then
           Sim.Fiber.consume
             (cost_per_elt *. float_of_int (Array.length c.data)))
      : unit array)

let fold rt ?(cost_per_elt = 0.0) t ~init ~f ~combine =
  let partials =
    per_chunk_threads rt t (fun _k c ->
        let acc = ref init in
        for j = 0 to Array.length c.data - 1 do
          acc := f !acc c.data.(j)
        done;
        if cost_per_elt > 0.0 then
          Sim.Fiber.consume
            (cost_per_elt *. float_of_int (Array.length c.data));
        !acc)
  in
  Array.fold_left combine init partials

let to_array rt t =
  let out = ref [] in
  Array.iter
    (fun obj ->
      let copy =
        Invoke.invoke rt
          ~return_payload:
            (t.elt_bytes * Array.length obj.Aobject.state.data)
          obj
          (fun c -> Array.copy c.data)
      in
      out := copy :: !out)
    t.chunks;
  Array.concat (List.rev !out)

let redistribute rt t placement =
  Placement.distribute rt placement t.chunks
