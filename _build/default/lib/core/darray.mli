(** Distributed arrays: a higher-level data structure built entirely on
    the public Amber primitives — the kind of "higher-level object
    placement software" §2.3 anticipates above the mobility layer.

    The array is split into chunk objects distributed by a
    {!Placement.t}; element access routes to the owning chunk (local
    invocation when co-resident, function shipping otherwise), and the
    bulk operations run one thread per chunk {e at the chunk} so the
    computation happens where the data is.

    All operations require fiber context. *)

type 'a t

(** [create rt ~name ~len f] builds the array with [f i] as element [i].

    [chunks] defaults to one per node; [placement] defaults to
    {!Placement.blocked}; [elt_bytes] (default 8) sets the modeled size of
    an element for move/transfer costs; [fill_cpu] (default 0) charges
    construction CPU per element. *)
val create :
  Runtime.t ->
  ?chunks:int ->
  ?placement:Placement.t ->
  ?elt_bytes:int ->
  ?fill_cpu:float ->
  name:string ->
  len:int ->
  (int -> 'a) ->
  'a t

val length : 'a t -> int
val chunk_count : 'a t -> int

(** Node currently holding element [i]'s chunk. *)
val node_of_index : 'a t -> int -> int

(** {1 Element access (routed to the owning chunk)} *)

val get : Runtime.t -> 'a t -> int -> 'a
val set : Runtime.t -> 'a t -> int -> 'a -> unit

(** {1 Bulk parallel operations (one thread per chunk, at the chunk)} *)

(** Replace every element with [f i x].  [cost_per_elt] charges virtual
    CPU where the element lives. *)
val map_in_place :
  Runtime.t -> ?cost_per_elt:float -> 'a t -> (int -> 'a -> 'a) -> unit

(** [fold rt t ~init ~f ~combine] computes per-chunk partials with [f]
    (sequentially within a chunk, in index order) and [combine]s them in
    chunk order on the caller's node, so the result is deterministic. *)
val fold :
  Runtime.t ->
  ?cost_per_elt:float ->
  'a t ->
  init:'acc ->
  f:('acc -> 'a -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc

(** Gather a copy of the whole array on the calling node (one bulk
    invocation per chunk, contents as payload). *)
val to_array : Runtime.t -> 'a t -> 'a array

(** Re-place the chunks (e.g. after the computation's phase changes). *)
val redistribute : Runtime.t -> 'a t -> Placement.t -> unit
