(** Protocol self-checking: verify that the descriptor space is coherent
    with respect to a set of objects.

    The invocation protocol never consults ground truth, so bugs in
    descriptor maintenance would show up as threads chasing forever or
    landing on the wrong node.  This module audits the invariants the
    §3.2–3.3 machinery must maintain; tests run it after stress workloads,
    and applications can call it from a debugger or at phase boundaries.

    Checked per object:
    - the descriptor at the object's current node is [Resident]
      (for immutables: at the master and at every replica);
    - no other node claims residency of a mutable object;
    - from {e every} node, following forwarding addresses (with the
      home-node fallback for uninitialized descriptors) reaches the
      object's node in a bounded number of hops. *)

type violation = {
  addr : int;
  name : string;
  node : int;  (** node whose descriptor state is wrong *)
  problem : string;
}

(** Audit the given objects; returns all violations ([] = coherent). *)
val check_objects : Runtime.t -> Aobject.any list -> violation list

(** [check_exn rt objs] raises [Failure] with a readable report if any
    invariant is violated. *)
val check_exn : Runtime.t -> Aobject.any list -> unit

val pp_violation : Format.formatter -> violation -> unit

(** Longest forwarding chain any node currently needs to reach the
    object (diagnostic for placement tuning). *)
val max_chain_length : Runtime.t -> 'a Aobject.t -> int
