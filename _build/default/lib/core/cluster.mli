(** Program execution over the simulated cluster.

    [run cfg main] builds the whole stack (machines, Ethernet, Topaz tasks
    and RPC servers, address-space server, descriptor tables), starts
    [main] as the program's first Amber thread on node 0, and drives the
    discrete-event engine until the simulation quiesces.  It returns
    [main]'s result together with a report of virtual-time performance. *)

type report = {
  elapsed : float;  (** virtual seconds from t=0 until [main] returned *)
  quiesced_at : float;  (** when the last simulated event ran *)
  events : int;  (** engine events executed *)
  counters : Runtime.counters;
  cpu_busy : float array;  (** per-node total CPU-seconds consumed *)
  packets : int;
  net_bytes : int;
  net_queueing : float;  (** total seconds packets waited for the medium *)
}

(** Raised when the event queue drains before the main thread finishes —
    i.e. the program deadlocked. *)
exception Deadlock

(** Run to completion.  Re-raises the first thread failure, if any. *)
val run : Config.t -> (Runtime.t -> 'r) -> 'r * report

(** [run] discarding the report. *)
val run_value : Config.t -> (Runtime.t -> 'r) -> 'r

val pp_report : Format.formatter -> report -> unit
