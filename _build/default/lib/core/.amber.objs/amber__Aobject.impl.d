lib/core/aobject.ml: Format Hashtbl List
