lib/core/runtime.ml: Aobject Array Config Cost_model Descriptor Hashtbl Hw List Logs Printf Sim Topaz Vaspace
