lib/core/cluster.mli: Config Format Runtime
