lib/core/audit.ml: Aobject Buffer Descriptor Format List Printf Runtime
