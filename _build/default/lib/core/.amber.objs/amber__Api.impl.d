lib/core/api.ml: Aobject Athread Cluster Config Invoke Mobility Runtime
