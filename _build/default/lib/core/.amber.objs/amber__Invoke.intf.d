lib/core/invoke.mli: Aobject Runtime
