lib/core/config.mli: Cost_model Hw Topaz
