lib/core/audit.mli: Aobject Format Runtime
