lib/core/scheduler.ml: Hw Runtime
