lib/core/sync.ml: Aobject Cost_model Float Invoke List Mobility Queue Runtime Sim
