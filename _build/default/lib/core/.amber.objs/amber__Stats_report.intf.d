lib/core/stats_report.mli: Format Runtime Sim
