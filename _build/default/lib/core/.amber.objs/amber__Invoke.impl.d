lib/core/invoke.ml: Aobject Cost_model List Printf Runtime Sim
