lib/core/darray.mli: Placement Runtime
