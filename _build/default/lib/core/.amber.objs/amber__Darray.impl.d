lib/core/darray.ml: Aobject Array Athread Invoke List Placement Printf Runtime Sim
