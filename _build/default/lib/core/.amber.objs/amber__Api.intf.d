lib/core/api.mli: Aobject Athread Cluster Config Cost_model Runtime
