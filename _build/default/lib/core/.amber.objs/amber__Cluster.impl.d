lib/core/cluster.ml: Array Athread Format Hw Runtime Sim
