lib/core/aobject.mli: Format
