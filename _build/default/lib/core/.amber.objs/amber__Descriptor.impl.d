lib/core/descriptor.ml: Hashtbl
