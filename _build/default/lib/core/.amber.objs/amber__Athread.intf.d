lib/core/athread.mli: Aobject Hw Runtime
