lib/core/placement.ml: Aobject Array Float Hw Mobility Runtime Sim
