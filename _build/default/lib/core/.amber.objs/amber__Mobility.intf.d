lib/core/mobility.mli: Aobject Runtime
