lib/core/sync.mli: Runtime
