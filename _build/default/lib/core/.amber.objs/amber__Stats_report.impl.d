lib/core/stats_report.ml: Array Config Descriptor Format Hw List Runtime Sim Vaspace
