lib/core/descriptor.mli:
