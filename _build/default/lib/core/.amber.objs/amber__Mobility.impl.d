lib/core/mobility.ml: Aobject Cost_model Descriptor Hw List Printf Runtime Sim Topaz
