lib/core/scheduler.mli: Hw Runtime
