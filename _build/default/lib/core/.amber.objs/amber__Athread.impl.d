lib/core/athread.ml: Cost_model Descriptor Hw Invoke List Printf Runtime Sim Topaz Vaspace
