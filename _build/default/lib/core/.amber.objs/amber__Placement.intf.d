lib/core/placement.mli: Aobject Runtime
