lib/core/runtime.mli: Aobject Config Cost_model Descriptor Hw Sim Topaz Vaspace
