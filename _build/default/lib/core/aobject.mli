(** Amber objects: passive entities with private state and public
    operations, named by a global virtual address (paper §2, §3.2).

    The ['a] parameter is the type of the object's representation (the
    "private data").  Location fields on this record are the simulator's
    {e ground truth}; the runtime protocol must reach its decisions through
    {!Descriptor} tables alone, and tests compare the two. *)

type 'a t = {
  addr : int;  (** global virtual address: identity *)
  name : string;
  size : int;  (** representation size in bytes; drives move/copy cost *)
  home : int;  (** creating node (derivable from [addr]'s region) *)
  mutable location : int;  (** current node (for immutables: master copy) *)
  mutable immutable_ : bool;
  mutable replicas : int list;
      (** nodes holding immutable copies (excludes [location]) *)
  mutable attached : any list;  (** objects attached to this one (§2.3) *)
  mutable parent : any option;  (** object this one is attached to *)
  mutable state : 'a;
}

and any = Any : 'a t -> any

val make :
  addr:int -> name:string -> size:int -> node:int -> 'a -> 'a t

val addr_of_any : any -> int
val name_of_any : any -> string
val size_of_any : any -> int
val location_of_any : any -> int

(** The object and, transitively, everything attached to it. *)
val attachment_closure : any -> any list

(** Total representation bytes of the attachment closure. *)
val closure_size : any -> int

(** Is a copy of the object usable on [node]?  True for the master copy's
    node and, for immutables, any replica node. *)
val usable_on : 'a t -> int -> bool

val pp : Format.formatter -> 'a t -> unit
