type report = {
  elapsed : float;
  quiesced_at : float;
  events : int;
  counters : Runtime.counters;
  cpu_busy : float array;
  packets : int;
  net_bytes : int;
  net_queueing : float;
}

exception Deadlock

let run cfg main =
  let rt = Runtime.create cfg in
  let finished_at = ref None in
  let thread = Athread.start_on rt ~node:0 ~name:"main" (fun () -> main rt) in
  Hw.Machine.on_finish (Athread.tcb thread) (fun _ ->
      finished_at := Some (Runtime.now rt));
  let events = Sim.Engine.run (Runtime.engine rt) in
  Runtime.check_failures rt;
  match (Hw.Machine.state (Athread.tcb thread), !finished_at) with
  | Hw.Machine.Finished (Sim.Fiber.Failed e), _ -> raise e
  | Hw.Machine.Finished Sim.Fiber.Completed, Some elapsed ->
    let value = Athread.result_exn thread in
    let machines = Array.init (Runtime.nodes rt) (Runtime.machine rt) in
    let report =
      {
        elapsed;
        quiesced_at = Runtime.now rt;
        events;
        counters = Runtime.counters rt;
        cpu_busy = Array.map Hw.Machine.total_busy_time machines;
        packets = Hw.Ethernet.packets_sent (Runtime.ether rt);
        net_bytes = Hw.Ethernet.bytes_sent (Runtime.ether rt);
        net_queueing = Hw.Ethernet.total_queueing (Runtime.ether rt);
      }
    in
    (value, report)
  | (Hw.Machine.Finished Sim.Fiber.Completed | Hw.Machine.Ready
    | Hw.Machine.Running _ | Hw.Machine.Blocked), _ ->
    raise Deadlock

let run_value cfg main = fst (run cfg main)

let pp_report ppf r =
  Format.fprintf ppf
    "elapsed=%.6fs events=%d local-inv=%d remote-inv=%d migrations=%d \
     moves=%d packets=%d bytes=%d"
    r.elapsed r.events r.counters.Runtime.local_invocations
    r.counters.Runtime.remote_invocations
    r.counters.Runtime.thread_migrations r.counters.Runtime.object_moves
    r.packets r.net_bytes
