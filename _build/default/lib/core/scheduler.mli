(** Runtime-replaceable per-node scheduling (paper §2.1).

    "An application can install a custom scheduling discipline at runtime
    by replacing the system scheduler object with a similar object that
    supports the same interface but behaves differently."  Threads already
    queued are migrated into the new discipline. *)

type builtin =
  | Fifo  (** the default discipline *)
  | Lifo  (** most-recently-ready first *)
  | Priority  (** by {!Athread.set_priority}, FIFO among equals *)

val install : Runtime.t -> node:int -> builtin -> unit

(** Install an arbitrary user-defined discipline. *)
val install_custom :
  Runtime.t -> node:int -> Hw.Machine.tcb Hw.Sched_policy.t -> unit

(** Name of the discipline currently installed on [node]. *)
val current : Runtime.t -> node:int -> string
