type builtin = Fifo | Lifo | Priority

let to_policy = function
  | Fifo -> Hw.Sched_policy.fifo ()
  | Lifo -> Hw.Sched_policy.lifo ()
  | Priority ->
    Hw.Sched_policy.by_priority ~priority_of:Hw.Machine.priority ()

let install rt ~node builtin =
  Hw.Machine.set_policy (Runtime.machine rt node) (to_policy builtin)

let install_custom rt ~node policy =
  Hw.Machine.set_policy (Runtime.machine rt node) policy

let current rt ~node = Hw.Machine.policy_name (Runtime.machine rt node)
