module Lock = struct
  type state = {
    mutable held : bool;
    waiters : (unit -> unit) Queue.t;
  }

  type t = { obj : state Aobject.t }

  let create rt ?(name = "lock") () =
    {
      obj =
        Runtime.create_object rt ~size:32 ~name
          { held = false; waiters = Queue.create () };
    }

  let acquire rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        if not s.held then s.held <- true
        else
          (* Ownership is handed over directly by [release], so when the
             waker fires the lock is already ours. *)
          Sim.Fiber.block (fun wake -> Queue.add wake s.waiters))

  let release rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        if not s.held then invalid_arg "Lock.release: lock is not held";
        match Queue.take_opt s.waiters with
        | None -> s.held <- false
        | Some wake -> wake ())

  let try_acquire rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        if s.held then false
        else begin
          s.held <- true;
          true
        end)

  let with_lock rt t f =
    acquire rt t;
    match f () with
    | r ->
      release rt t;
      r
    | exception e ->
      release rt t;
      raise e

  let is_held t = t.obj.Aobject.state.held
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
  let locate rt t = Mobility.locate rt t.obj
end

module Spinlock = struct
  type state = {
    mutable held : bool;
    mutable failed_probes : int;
  }

  type t = { obj : state Aobject.t }

  let create rt ?(name = "spinlock") () =
    {
      obj =
        Runtime.create_object rt ~size:16 ~name
          { held = false; failed_probes = 0 };
    }

  let max_backoff = 100e-6

  let acquire rt t =
    let c = Runtime.cost rt in
    let probe () =
      Invoke.invoke rt t.obj (fun s ->
          Sim.Fiber.consume c.Cost_model.spin_probe_cpu;
          if s.held then begin
            s.failed_probes <- s.failed_probes + 1;
            false
          end
          else begin
            s.held <- true;
            true
          end)
    in
    let rec spin backoff =
      if not (probe ()) then begin
        (* Busy-wait: the processor is not relinquished (§2.2). *)
        Sim.Fiber.consume backoff;
        spin (Float.min max_backoff (backoff *. 2.0))
      end
    in
    spin c.Cost_model.spin_probe_cpu

  let release rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.spin_probe_cpu;
        if not s.held then invalid_arg "Spinlock.release: lock is not held";
        s.held <- false)

  let with_lock rt t f =
    acquire rt t;
    match f () with
    | r ->
      release rt t;
      r
    | exception e ->
      release rt t;
      raise e

  let is_held t = t.obj.Aobject.state.held
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
  let contended_probes t = t.obj.Aobject.state.failed_probes
end

module Barrier = struct
  type state = {
    parties : int;
    mutable arrived : int;
    mutable wakers : (unit -> unit) list;
    mutable generation : int;
  }

  type t = { obj : state Aobject.t }

  let create rt ?(name = "barrier") ~parties () =
    if parties <= 0 then invalid_arg "Barrier.create: parties";
    {
      obj =
        Runtime.create_object rt ~size:32 ~name
          { parties; arrived = 0; wakers = []; generation = 0 };
    }

  let pass rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        if s.arrived + 1 >= s.parties then begin
          (* Last arrival releases everyone and opens a new generation. *)
          s.arrived <- 0;
          s.generation <- s.generation + 1;
          let sleepers = List.rev s.wakers in
          s.wakers <- [];
          List.iter (fun wake -> wake ()) sleepers
        end
        else begin
          s.arrived <- s.arrived + 1;
          Sim.Fiber.block (fun wake -> s.wakers <- wake :: s.wakers)
        end)

  let generation t = t.obj.Aobject.state.generation
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
end

module Condition = struct
  type cell = {
    mutable wake : (unit -> unit) option;
    mutable signaled : bool;
  }

  type state = { mutable queue : cell list (* FIFO: oldest first *) }
  type t = { obj : state Aobject.t }

  let create rt ?(name = "condition") () =
    { obj = Runtime.create_object rt ~size:24 ~name { queue = [] } }

  let fire cell =
    cell.signaled <- true;
    match cell.wake with
    | Some wake -> wake ()
    | None -> (* waiter has not blocked yet; it will see [signaled] *) ()

  let wait rt t lock =
    if not (Lock.is_held lock) then
      invalid_arg "Condition.wait: lock is not held";
    let c = Runtime.cost rt in
    let cell = { wake = None; signaled = false } in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        s.queue <- s.queue @ [ cell ]);
    Lock.release rt lock;
    Sim.Fiber.block (fun wake ->
        if cell.signaled then wake () else cell.wake <- Some wake);
    Lock.acquire rt lock

  let signal rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        match s.queue with
        | [] -> ()
        | cell :: rest ->
          s.queue <- rest;
          fire cell)

  let broadcast rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        let cells = s.queue in
        s.queue <- [];
        List.iter fire cells)

  let waiters t = List.length t.obj.Aobject.state.queue
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
  let locate rt t = Mobility.locate rt t.obj
end

module Monitor = struct
  type t = { lock : Lock.t }

  let create rt ?(name = "monitor") () =
    { lock = Lock.create rt ~name:(name ^ ".lock") () }

  let enter rt t = Lock.acquire rt t.lock
  let exit rt t = Lock.release rt t.lock

  let with_monitor rt t f =
    enter rt t;
    match f () with
    | r ->
      exit rt t;
      r
    | exception e ->
      exit rt t;
      raise e

  let new_condition rt _t = Condition.create rt ~name:"monitor.cond" ()
  let wait rt t cond = Condition.wait rt cond t.lock
  let signal rt cond = Condition.signal rt cond
  let broadcast rt cond = Condition.broadcast rt cond
  let move rt t ~dest = Lock.move rt t.lock ~dest
  let locate rt t = Lock.locate rt t.lock
end
