(** Global virtual address space layout (paper §3.1).

    Every task arranges its address space identically, so a virtual address
    names the same object on every node.  The static segment (program code
    and statically initialized data) is implicitly replicated; everything
    above it is heap space carved into fixed-size regions handed out by the
    address-space server. *)

(** Bottom of the address space: program image (code + static data),
    identical on every node. *)
val static_base : int

val static_size : int

(** First address available for heap regions. *)
val heap_base : int

(** Size of one heap region ("currently 1M bytes", §3.1). *)
val region_size : int

(** Top of the 32-bit VAX address space. *)
val address_space_top : int

(** Allocation granularity within a region; all heap blocks are multiples
    of this and aligned to it. *)
val block_align : int

(** Number of whole regions that fit in the heap segment. *)
val max_regions : int

val is_heap_addr : int -> bool
val is_static_addr : int -> bool

(** Index of the region containing a heap address.
    Raises [Invalid_argument] for non-heap addresses. *)
val region_index_of_addr : int -> int

(** Base address of region [i]. *)
val region_base : int -> int
