type t = { index : int; base : int; size : int; owner : int }

let make ~index ~owner =
  { index; base = Layout.region_base index; size = Layout.region_size; owner }

let contains t a = a >= t.base && a < t.base + t.size
let last_addr t = t.base + t.size - 1

let pp ppf t =
  Format.fprintf ppf "region#%d[0x%x..0x%x owner=%d]" t.index t.base
    (last_addr t) t.owner
