(** Per-node heap allocator over the global address space (paper §3.1–3.2).

    Each node allocates dynamic objects from regions it owns, so no
    distributed agreement is needed per allocation.  Two constraints from
    the paper shape the design:

    - blocks are {e never divided} once they have been returned to the free
      pool (§3.2) — this guarantees that a dangling reference to a freed
      block still lands on a block boundary, so its descriptor word is
      interpretable (zero ⇒ non-resident);
    - when the node's regions are exhausted, a new region must be obtained
      from the address-space server — the allocator signals this by calling
      the [grow] callback supplied at creation.

    Allocation policy: an exact-fit search of the free pool (free blocks
    are reusable only whole), falling back to bump allocation from the most
    recently added region. *)

type t

(** [create ~node ~grow ()] makes an empty allocator; [grow] is invoked
    (outside any lock) whenever a fresh region is required and must return
    a region owned by [node]. *)
val create : node:int -> grow:(unit -> Region.t) -> unit -> t

val node : t -> int

(** Allocate [size] bytes (rounded up to {!Layout.block_align}); returns
    the block's base address.  Raises [Invalid_argument] for non-positive
    sizes or sizes exceeding a region. *)
val alloc : t -> int -> int

(** Return a block to the free pool.  The address must be one previously
    returned by [alloc] on this heap and not currently free (raises
    [Invalid_argument] otherwise). *)
val free : t -> int -> unit

(** Rounded size of the live or free block at [addr], if [addr] is a block
    base on this heap. *)
val block_size : t -> int -> int option

val is_live : t -> int -> bool

(** Regions currently backing this heap, newest first. *)
val regions : t -> Region.t list

(** {1 Statistics} *)

val live_blocks : t -> int
val free_blocks : t -> int
val bytes_live : t -> int

(** Allocations satisfied by reusing a freed block. *)
val reuse_count : t -> int

(** Times [grow] was invoked. *)
val grow_count : t -> int
