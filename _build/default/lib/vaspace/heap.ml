type block = { base : int; size : int }

type t = {
  owner_node : int;
  grow : unit -> Region.t;
  mutable region_list : Region.t list;  (* newest first *)
  mutable bump : int;  (* next unused byte in the newest region *)
  mutable bump_limit : int;
  (* size -> free blocks of exactly that (rounded) size *)
  free_pool : (int, int list ref) Hashtbl.t;
  (* base -> block, for every block ever carved (live or free) *)
  blocks : (int, block) Hashtbl.t;
  live : (int, unit) Hashtbl.t;
  mutable reuses : int;
  mutable grows : int;
}

let create ~node ~grow () =
  {
    owner_node = node;
    grow;
    region_list = [];
    bump = 0;
    bump_limit = 0;
    free_pool = Hashtbl.create 32;
    blocks = Hashtbl.create 256;
    live = Hashtbl.create 256;
    reuses = 0;
    grows = 0;
  }

let node t = t.owner_node

let round_up size =
  let a = Layout.block_align in
  (size + a - 1) / a * a

let add_region t =
  let r = t.grow () in
  if r.Region.owner <> t.owner_node then
    invalid_arg "Heap: grow returned a region owned by another node";
  t.grows <- t.grows + 1;
  t.region_list <- r :: t.region_list;
  t.bump <- r.Region.base;
  t.bump_limit <- r.Region.base + r.Region.size

let take_free t size =
  match Hashtbl.find_opt t.free_pool size with
  | None | Some { contents = [] } -> None
  | Some lst -> (
    match !lst with
    | [] -> None
    | base :: rest ->
      lst := rest;
      Some base)

let alloc t size =
  if size <= 0 then invalid_arg "Heap.alloc: non-positive size";
  let size = round_up size in
  if size > Layout.region_size then invalid_arg "Heap.alloc: size > region";
  match take_free t size with
  | Some base ->
    t.reuses <- t.reuses + 1;
    Hashtbl.replace t.live base ();
    base
  | None ->
    if t.bump + size > t.bump_limit then add_region t;
    let base = t.bump in
    t.bump <- base + size;
    Hashtbl.replace t.blocks base { base; size };
    Hashtbl.replace t.live base ();
    base

let free t base =
  if not (Hashtbl.mem t.live base) then
    invalid_arg "Heap.free: not a live block";
  let block = Hashtbl.find t.blocks base in
  Hashtbl.remove t.live base;
  let lst =
    match Hashtbl.find_opt t.free_pool block.size with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.free_pool block.size l;
      l
  in
  lst := base :: !lst

let block_size t base =
  match Hashtbl.find_opt t.blocks base with
  | Some b -> Some b.size
  | None -> None

let is_live t base = Hashtbl.mem t.live base
let regions t = t.region_list
let live_blocks t = Hashtbl.length t.live

let free_blocks t =
  Hashtbl.fold (fun _ lst acc -> acc + List.length !lst) t.free_pool 0

let bytes_live t =
  Hashtbl.fold
    (fun base () acc -> acc + (Hashtbl.find t.blocks base).size)
    t.live 0

let reuse_count t = t.reuses
let grow_count t = t.grows
