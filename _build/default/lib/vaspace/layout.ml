let mib = 1024 * 1024
let static_base = 0
let static_size = 16 * mib
let heap_base = static_size
let region_size = mib
let address_space_top = 4096 * mib
let block_align = 16
let max_regions = (address_space_top - heap_base) / region_size
let is_heap_addr a = a >= heap_base && a < address_space_top
let is_static_addr a = a >= static_base && a < static_size

let region_index_of_addr a =
  if not (is_heap_addr a) then
    invalid_arg (Printf.sprintf "Layout.region_index_of_addr: 0x%x" a);
  (a - heap_base) / region_size

let region_base i =
  if i < 0 || i >= max_regions then invalid_arg "Layout.region_base";
  heap_base + (i * region_size)
