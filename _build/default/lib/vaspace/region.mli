(** A contiguous heap region owned by one node.

    The owner is the region's {e home node}: objects allocated from the
    region were created there, and requests about objects with
    uninitialized descriptors are forwarded to it (paper §3.3). *)

type t = { index : int; base : int; size : int; owner : int }

val make : index:int -> owner:int -> t

(** Does the region contain address [a]? *)
val contains : t -> int -> bool

val last_addr : t -> int
val pp : Format.formatter -> t -> unit
