(** The address-space server (paper §3.1).

    At startup each node receives a private pool of regions for its local
    heap; the rest of the heap segment is held back and handed out on
    demand as nodes exhaust their pools.  The server is the ground truth
    for region → home-node ownership; each node keeps a lazily-filled
    local mirror ({!Client}) so that home-node resolution (needed when an
    object's descriptor is uninitialized, §3.3) is usually a local lookup.

    This module is pure bookkeeping; the cost of talking to the server is
    charged by the Amber kernel, which performs the conversation over
    RPC. *)

type t

(** [create ~nodes ~initial_per_node ()] assigns the first
    [nodes * initial_per_node] regions round-robin-free: node [i] gets the
    contiguous run [i*initial_per_node ..< (i+1)*initial_per_node]. *)
val create : nodes:int -> ?initial_per_node:int -> unit -> t

(** Node hosting the server itself (node 0 by convention). *)
val server_node : t -> int

(** Regions assigned to [node] at startup. *)
val initial_regions : t -> int -> Region.t list

(** Grant a fresh region to [node].  Raises [Failure] when the address
    space is exhausted. *)
val grant : t -> node:int -> Region.t

(** Ground-truth owner of the region containing a heap address, or [None]
    if the region is not yet assigned. *)
val owner_of_addr : t -> int -> int option

(** Regions assigned so far. *)
val regions_assigned : t -> int

(** A node's local mirror of the region-ownership map. *)
module Client : sig
  type server = t
  type t

  (** A client pre-populated with every node's initial assignment (all
      tasks know the startup partitioning). *)
  val create : server -> t

  (** Local lookup only; [None] means the mapping must be fetched from the
      server. *)
  val lookup : t -> int -> int option

  (** Record a mapping learned from the server. *)
  val learn : t -> Region.t -> unit

  (** Number of cached region entries. *)
  val entries : t -> int
end
