lib/vaspace/heap.ml: Hashtbl Layout List Region
