lib/vaspace/space_server.mli: Region
