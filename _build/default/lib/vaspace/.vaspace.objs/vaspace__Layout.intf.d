lib/vaspace/layout.mli:
