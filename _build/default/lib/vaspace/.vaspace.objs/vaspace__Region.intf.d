lib/vaspace/region.mli: Format
