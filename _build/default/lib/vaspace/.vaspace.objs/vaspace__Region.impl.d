lib/vaspace/region.ml: Format Layout
