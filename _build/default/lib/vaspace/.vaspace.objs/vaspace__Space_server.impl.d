lib/vaspace/space_server.ml: Hashtbl Layout List Region
