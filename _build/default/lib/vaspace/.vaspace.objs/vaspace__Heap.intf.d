lib/vaspace/heap.mli: Region
