lib/vaspace/layout.ml: Printf
