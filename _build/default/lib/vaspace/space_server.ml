type t = {
  nodes : int;
  initial_per_node : int;
  (* region index -> owning node *)
  owners : (int, int) Hashtbl.t;
  mutable next_region : int;
}

let create ~nodes ?(initial_per_node = 4) () =
  if nodes <= 0 then invalid_arg "Space_server.create: nodes";
  if initial_per_node <= 0 then
    invalid_arg "Space_server.create: initial_per_node";
  let owners = Hashtbl.create 64 in
  for node = 0 to nodes - 1 do
    for k = 0 to initial_per_node - 1 do
      Hashtbl.replace owners ((node * initial_per_node) + k) node
    done
  done;
  { nodes; initial_per_node; owners; next_region = nodes * initial_per_node }

let server_node _t = 0

let initial_regions t node =
  if node < 0 || node >= t.nodes then
    invalid_arg "Space_server.initial_regions: bad node";
  List.init t.initial_per_node (fun k ->
      Region.make ~index:((node * t.initial_per_node) + k) ~owner:node)

let grant t ~node =
  if node < 0 || node >= t.nodes then invalid_arg "Space_server.grant: node";
  if t.next_region >= Layout.max_regions then
    failwith "Space_server.grant: address space exhausted";
  let index = t.next_region in
  t.next_region <- index + 1;
  Hashtbl.replace t.owners index node;
  Region.make ~index ~owner:node

let owner_of_addr t addr =
  if not (Layout.is_heap_addr addr) then None
  else Hashtbl.find_opt t.owners (Layout.region_index_of_addr addr)

let regions_assigned t = Hashtbl.length t.owners

module Client = struct
  type server = t
  type nonrec t = { cache : (int, int) Hashtbl.t }

  let create (server : server) =
    let cache = Hashtbl.create 64 in
    (* The startup partitioning is known to every task. *)
    for node = 0 to server.nodes - 1 do
      for k = 0 to server.initial_per_node - 1 do
        Hashtbl.replace cache ((node * server.initial_per_node) + k) node
      done
    done;
    { cache }

  let lookup t addr =
    if not (Layout.is_heap_addr addr) then None
    else Hashtbl.find_opt t.cache (Layout.region_index_of_addr addr)

  let learn t (r : Region.t) = Hashtbl.replace t.cache r.Region.index r.Region.owner
  let entries t = Hashtbl.length t.cache
end
