(* The invocation protocol: local fast path, remote trap + thread
   migration, forwarding chains, return-time checks, co-residency. *)

module A = Amber

let test_local_invoke_returns_value () =
  let v =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" (ref 10) in
        A.Api.invoke rt o (fun r ->
            incr r;
            !r))
  in
  Alcotest.(check int) "value" 11 v

let test_local_invoke_counted_and_cheap () =
  let elapsed, counters =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        let t0 = A.Api.now rt in
        for _ = 1 to 10 do
          A.Api.invoke rt o (fun () -> ())
        done;
        ((A.Api.now rt -. t0) /. 10.0, A.Runtime.counters rt))
  in
  Alcotest.(check int) "10 local" 10 counters.A.Runtime.local_invocations;
  Alcotest.(check bool) "12 us each" true
    (Float.abs (elapsed -. 12e-6) < 1e-6)

let test_remote_invoke_migrates_and_runs_there () =
  let ran_on, back_home =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:2;
        let home = A.Api.create rt ~name:"home" () in
        A.Api.invoke rt home (fun () ->
            let ran_on = A.Api.invoke rt o (fun () -> A.Api.my_node rt) in
            (ran_on, A.Api.my_node rt)))
  in
  Alcotest.(check int) "operation ran at the object" 2 ran_on;
  Alcotest.(check int) "thread returned to caller frame's node" 0 back_home

let test_remote_invoke_costs_table1 () =
  let per_call =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        let home = A.Api.create rt ~name:"home" () in
        A.Api.invoke rt home (fun () ->
            let t0 = A.Api.now rt in
            for _ = 1 to 5 do
              A.Api.invoke rt o (fun () -> ())
            done;
            (A.Api.now rt -. t0) /. 5.0))
  in
  Alcotest.(check bool) "approx 8.3 ms" true
    (per_call > 7.5e-3 && per_call < 9.2e-3)

let test_thread_floats_without_enclosing_frame () =
  (* No enclosing frame: after a remote invocation the thread stays on the
     object's node (this is what makes repeated invocations cheap). *)
  let final_node =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:3;
        A.Api.invoke rt o (fun () -> ());
        A.Api.my_node rt)
  in
  Alcotest.(check int) "stayed at the object" 3 final_node

let test_forwarding_chain_followed () =
  let v =
    Util.run ~nodes:6 (fun rt ->
        let o = A.Api.create rt ~name:"o" (ref 0) in
        (* Build a chain by moving via a helper anchored on node 1 so the
           main thread's node-0 descriptor goes stale. *)
        let anchor = A.Api.create rt ~name:"anchor" () in
        A.Api.move_to rt anchor ~dest:1;
        let mover =
          A.Api.start_invoke rt anchor (fun () ->
              List.iter (fun d -> A.Api.move_to rt o ~dest:d) [ 2; 3; 4; 5 ])
        in
        A.Api.join rt mover;
        A.Api.invoke rt o (fun r ->
            incr r;
            A.Api.my_node rt))
  in
  Alcotest.(check int) "found through the chain" 5 v

let test_payload_adds_wire_time () =
  let small, large =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        let home = A.Api.create rt ~name:"home" () in
        A.Api.invoke rt home (fun () ->
            let t0 = A.Api.now rt in
            A.Api.invoke rt o (fun () -> ());
            let small = A.Api.now rt -. t0 in
            let t1 = A.Api.now rt in
            A.Api.invoke rt ~payload:20000 o (fun () -> ());
            (small, A.Api.now rt -. t1)))
  in
  (* 20 kB at 10 Mbit/s adds ~16 ms of wire time one way. *)
  Alcotest.(check bool) "payload costs wire time" true (large > small +. 10e-3)

let test_nested_invocations () =
  let result =
    Util.run (fun rt ->
        let a = A.Api.create rt ~name:"a" (ref 0) in
        let b = A.Api.create rt ~name:"b" (ref 0) in
        A.Api.move_to rt b ~dest:2;
        A.Api.invoke rt a (fun ra ->
            ra := 1;
            A.Api.invoke rt b (fun rb ->
                rb := 2;
                !ra + !rb)))
  in
  Alcotest.(check int) "nested" 3 result

let test_exception_propagates_with_return_migration () =
  let caught =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        let home = A.Api.create rt ~name:"home" () in
        A.Api.invoke rt home (fun () ->
            match A.Api.invoke rt o (fun () -> failwith "inside") with
            | () -> "no exception"
            | exception Failure m ->
              (* We must be back at the caller's node even on the
                 exception path. *)
              if A.Api.my_node rt = 0 then m else "wrong node"))
  in
  Alcotest.(check string) "exception after return migration" "inside" caught

let test_executing_within () =
  let inside, outside =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        let inside = A.Invoke.invoke rt o (fun () -> A.Invoke.executing_within rt o) in
        (inside, A.Invoke.executing_within rt o))
  in
  Alcotest.(check bool) "inside" true inside;
  Alcotest.(check bool) "outside" false outside

let test_immutable_replica_invoked_locally () =
  let remote_count =
    Util.run (fun rt ->
        let table = A.Api.create rt ~name:"t" (ref 5) in
        A.Api.set_immutable rt table;
        A.Api.move_to rt table ~dest:2;
        (* A thread anchored on node 2 invokes the replica: no migration. *)
        let anchor = A.Api.create rt ~name:"anchor" () in
        A.Api.move_to rt anchor ~dest:2;
        let before = (A.Runtime.counters rt).A.Runtime.remote_invocations in
        let t =
          A.Api.start_invoke rt anchor (fun () ->
              A.Api.invoke rt table (fun r -> !r))
        in
        let v = A.Api.join rt t in
        Alcotest.(check int) "value readable" 5 v;
        (A.Runtime.counters rt).A.Runtime.remote_invocations - before)
  in
  (* The anchor invocation is remote (thread travels to node 2) but the
     table invocation must be local. *)
  Alcotest.(check int) "only the anchor hop is remote" 1 remote_count

let test_invoke_member_fast_path () =
  let elapsed_member, elapsed_full =
    Util.run (fun rt ->
        let parent = A.Api.create rt ~name:"protected" (ref 0) in
        let lock_like = A.Api.create rt ~name:"member-lock" (ref 0) in
        A.Api.attach rt ~parent ~child:lock_like;
        A.Api.invoke rt parent (fun _ ->
            let t0 = A.Api.now rt in
            for _ = 1 to 100 do
              A.Invoke.invoke_member rt lock_like (fun c -> incr c)
            done;
            let member = A.Api.now rt -. t0 in
            let t1 = A.Api.now rt in
            for _ = 1 to 100 do
              A.Api.invoke rt lock_like (fun c -> incr c)
            done;
            (member, A.Api.now rt -. t1)))
  in
  Alcotest.(check bool) "inline call markedly cheaper" true
    (elapsed_member < elapsed_full /. 2.0)

let test_invoke_member_requires_attachment () =
  Util.run (fun rt ->
      let parent = A.Api.create rt ~name:"p" () in
      let stranger = A.Api.create rt ~name:"s" (ref 0) in
      A.Api.invoke rt parent (fun () ->
          match A.Invoke.invoke_member rt stranger (fun c -> incr c) with
          | () -> Alcotest.fail "expected rejection"
          | exception Invalid_argument _ -> ()))

let test_invoke_member_requires_frame () =
  Util.run (fun rt ->
      let parent = A.Api.create rt ~name:"p" () in
      let child = A.Api.create rt ~name:"c" (ref 0) in
      A.Api.attach rt ~parent ~child;
      (* Not executing within the parent: rejected. *)
      match A.Invoke.invoke_member rt child (fun c -> incr c) with
      | () -> Alcotest.fail "expected rejection"
      | exception Invalid_argument _ -> ())

let test_invoke_member_moves_with_closure () =
  (* The member stays usable while the whole closure (and the bound
     thread) migrates. *)
  let final_node, count =
    Util.run (fun rt ->
        let parent = A.Api.create rt ~name:"p" () in
        let child = A.Api.create rt ~name:"c" (ref 0) in
        A.Api.attach rt ~parent ~child;
        let t =
          A.Api.start_invoke rt parent (fun () ->
              for _ = 1 to 30 do
                Sim.Fiber.consume 1e-3;
                A.Invoke.invoke_member rt child (fun c -> incr c)
              done;
              A.Api.my_node rt)
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 8e-3;
        A.Api.move_to rt parent ~dest:3;
        let final = A.Api.join rt t in
        (final, !(child.A.Aobject.state)))
  in
  Alcotest.(check int) "thread followed the closure" 3 final_node;
  Alcotest.(check int) "no lost member calls" 30 count

let test_invoke_outside_thread_rejected () =
  let cfg = A.Config.make ~nodes:1 ~cpus:1 () in
  let rt = A.Runtime.create cfg in
  Alcotest.check_raises "no fiber"
    (Failure "Runtime.current: caller is not an Amber thread") (fun () ->
      ignore (A.Runtime.current rt))

let suite =
  [
    Alcotest.test_case "local invoke returns value" `Quick
      test_local_invoke_returns_value;
    Alcotest.test_case "local invoke cost and counter" `Quick
      test_local_invoke_counted_and_cheap;
    Alcotest.test_case "remote invoke migrates the thread" `Quick
      test_remote_invoke_migrates_and_runs_there;
    Alcotest.test_case "remote invoke cost (Table 1)" `Quick
      test_remote_invoke_costs_table1;
    Alcotest.test_case "thread floats with empty stack" `Quick
      test_thread_floats_without_enclosing_frame;
    Alcotest.test_case "forwarding chain followed" `Quick
      test_forwarding_chain_followed;
    Alcotest.test_case "payload adds wire time" `Quick
      test_payload_adds_wire_time;
    Alcotest.test_case "nested invocations" `Quick test_nested_invocations;
    Alcotest.test_case "exception path migrates back" `Quick
      test_exception_propagates_with_return_migration;
    Alcotest.test_case "executing_within" `Quick test_executing_within;
    Alcotest.test_case "immutable replicas are local" `Quick
      test_immutable_replica_invoked_locally;
    Alcotest.test_case "invoke_member fast path (§3.6)" `Quick
      test_invoke_member_fast_path;
    Alcotest.test_case "invoke_member requires attachment" `Quick
      test_invoke_member_requires_attachment;
    Alcotest.test_case "invoke_member requires a frame" `Quick
      test_invoke_member_requires_frame;
    Alcotest.test_case "invoke_member under migration" `Quick
      test_invoke_member_moves_with_closure;
    Alcotest.test_case "invoke outside an Amber thread" `Quick
      test_invoke_outside_thread_rejected;
  ]
