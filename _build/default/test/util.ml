(* Shared helpers for Amber-level tests. *)

(* Run [body] as the main thread of a fresh cluster and return its result. *)
let run ?(nodes = 4) ?(cpus = 2) body =
  let cfg = Amber.Config.make ~nodes ~cpus () in
  Amber.Cluster.run_value cfg body

let run_report ?(nodes = 4) ?(cpus = 2) body =
  let cfg = Amber.Config.make ~nodes ~cpus () in
  Amber.Cluster.run cfg body

(* The node where the protocol currently believes the object to be, read
   from ground truth. *)
let location obj = obj.Amber.Aobject.location

let check_float = Alcotest.(check (float 1e-9))
