(* Stats accumulators against closed-form oracles. *)

let feq = Alcotest.(check (float 1e-9))

let test_summary_basic () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Sim.Stats.Summary.count s);
  feq "mean" 2.5 (Sim.Stats.Summary.mean s);
  feq "variance" 1.25 (Sim.Stats.Summary.variance s);
  feq "min" 1.0 (Sim.Stats.Summary.min s);
  feq "max" 4.0 (Sim.Stats.Summary.max s);
  feq "total" 10.0 (Sim.Stats.Summary.total s)

let test_summary_single () =
  let s = Sim.Stats.Summary.create () in
  Sim.Stats.Summary.add s 7.0;
  feq "mean" 7.0 (Sim.Stats.Summary.mean s);
  feq "variance is 0" 0.0 (Sim.Stats.Summary.variance s)

let test_percentiles () =
  let s = Sim.Stats.Summary.create () in
  for i = 1 to 100 do
    Sim.Stats.Summary.add s (float_of_int i)
  done;
  feq "p50" 50.0 (Sim.Stats.Summary.percentile s 50.0);
  feq "p100" 100.0 (Sim.Stats.Summary.percentile s 100.0);
  feq "p1" 1.0 (Sim.Stats.Summary.percentile s 1.0)

let test_percentile_interleaved_with_add () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 5.0; 1.0 ];
  feq "p100 before" 5.0 (Sim.Stats.Summary.percentile s 100.0);
  Sim.Stats.Summary.add s 9.0;
  feq "p100 after" 9.0 (Sim.Stats.Summary.percentile s 100.0)

let test_percentile_empty_raises () =
  let s = Sim.Stats.Summary.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Summary.percentile: empty")
    (fun () -> ignore (Sim.Stats.Summary.percentile s 50.0))

let prop_mean_matches_naive =
  QCheck.Test.make ~name:"streaming mean equals naive mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_inclusive 1e6))
    (fun xs ->
      let s = Sim.Stats.Summary.create () in
      List.iter (Sim.Stats.Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Sim.Stats.Summary.mean s -. naive)
      <= 1e-6 *. (1.0 +. Float.abs naive))

let test_histogram_buckets () =
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Sim.Stats.Histogram.add h) [ 0.5; 1.0; 3.0; 9.9; -1.0; 10.0 ];
  Alcotest.(check int) "count" 6 (Sim.Stats.Histogram.count h);
  Alcotest.(check int) "under" 1 (Sim.Stats.Histogram.underflow h);
  Alcotest.(check int) "over" 1 (Sim.Stats.Histogram.overflow h);
  Alcotest.(check (array int)) "buckets" [| 2; 1; 0; 0; 1 |]
    (Sim.Stats.Histogram.bucket_counts h)

let test_histogram_bounds () =
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  let lo, hi = Sim.Stats.Histogram.bucket_bounds h 2 in
  feq "lo" 4.0 lo;
  feq "hi" 6.0 hi

let test_histogram_bad_args () =
  Alcotest.check_raises "buckets" (Invalid_argument "Histogram.create: buckets")
    (fun () ->
      ignore (Sim.Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:0))

let suite =
  [
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "single sample" `Quick test_summary_single;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile after more adds" `Quick
      test_percentile_interleaved_with_add;
    Alcotest.test_case "empty percentile raises" `Quick
      test_percentile_empty_raises;
    QCheck_alcotest.to_alcotest prop_mean_matches_naive;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram bucket bounds" `Quick test_histogram_bounds;
    Alcotest.test_case "histogram bad args" `Quick test_histogram_bad_args;
  ]
