(* Unit and property tests for the simulation event queue. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty () =
  let q = Sim.Event_queue.create () in
  check "empty" true (Sim.Event_queue.is_empty q);
  check "no peek" true (Sim.Event_queue.peek q = None);
  check "no pop" true (Sim.Event_queue.pop q = None)

let test_ordering () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:3.0 "c";
  Sim.Event_queue.add q ~time:1.0 "a";
  Sim.Event_queue.add q ~time:2.0 "b";
  let order = List.init 3 (fun _ -> Sim.Event_queue.pop q) in
  Alcotest.(check (list (option (pair (float 0.0) string))))
    "sorted"
    [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ]
    order

let test_fifo_ties () =
  let q = Sim.Event_queue.create () in
  for i = 0 to 99 do
    Sim.Event_queue.add q ~time:5.0 i
  done;
  let out = List.init 100 (fun _ ->
      match Sim.Event_queue.pop q with Some (_, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "insertion order on equal times"
    (List.init 100 Fun.id) out

let test_peek_does_not_remove () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:1.0 "x";
  check "peek" true (Sim.Event_queue.peek q = Some (1.0, "x"));
  check_int "still there" 1 (Sim.Event_queue.length q)

let test_nan_rejected () =
  let q = Sim.Event_queue.create () in
  Alcotest.check_raises "NaN" (Invalid_argument "Event_queue.add: NaN time")
    (fun () -> Sim.Event_queue.add q ~time:Float.nan ())

let test_clear () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:1.0 ();
  Sim.Event_queue.clear q;
  check "cleared" true (Sim.Event_queue.is_empty q)

let test_interleaved_add_pop () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~time:10.0 "late";
  Sim.Event_queue.add q ~time:1.0 "early";
  (match Sim.Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "early first" "early" v
  | None -> Alcotest.fail "pop");
  Sim.Event_queue.add q ~time:5.0 "mid";
  (match Sim.Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "mid next" "mid" v
  | None -> Alcotest.fail "pop");
  check_int "one left" 1 (Sim.Event_queue.length q)

let test_fold () =
  let q = Sim.Event_queue.create () in
  List.iter (fun t -> Sim.Event_queue.add q ~time:t t) [ 3.0; 1.0; 2.0 ];
  let sum = Sim.Event_queue.fold q ~init:0.0 ~f:(fun acc t _ -> acc +. t) in
  Alcotest.(check (float 1e-9)) "fold sums all" 6.0 sum

(* Property: popping yields times in nondecreasing order, with seq order on
   ties, for arbitrary insert sequences. *)
let prop_sorted =
  QCheck.Test.make ~name:"pop yields sorted (time, seq)" ~count:300
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iteri (fun i t -> Sim.Event_queue.add q ~time:t i) times;
      let rec drain prev acc =
        match Sim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, seq) ->
          (match prev with
          | Some (pt, pseq) ->
            if t < pt then QCheck.Test.fail_report "time went backwards";
            if t = pt && seq < pseq then
              QCheck.Test.fail_report "tie broke FIFO order"
          | None -> ());
          drain (Some (t, seq)) ((t, seq) :: acc)
      in
      let out = drain None [] in
      List.length out = List.length times)

let prop_length =
  QCheck.Test.make ~name:"length tracks adds and pops" ~count:200
    QCheck.(list (pair bool (float_bound_inclusive 100.0)))
    (fun ops ->
      let q = Sim.Event_queue.create () in
      let model = ref 0 in
      List.iter
        (fun (is_add, t) ->
          if is_add then begin
            Sim.Event_queue.add q ~time:t ();
            incr model
          end
          else begin
            (match Sim.Event_queue.pop q with
            | Some _ -> decr model
            | None -> ())
          end)
        ops;
      Sim.Event_queue.length q = !model)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO on ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek is non-destructive" `Quick test_peek_does_not_remove;
    Alcotest.test_case "NaN time rejected" `Quick test_nan_rejected;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved add/pop" `Quick test_interleaved_add_pop;
    Alcotest.test_case "fold visits everything" `Quick test_fold;
    QCheck_alcotest.to_alcotest prop_sorted;
    QCheck_alcotest.to_alcotest prop_length;
  ]
