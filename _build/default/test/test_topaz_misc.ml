(* Task, Kthread, Name_service, Remote_exec. *)

let build () =
  let e = Sim.Engine.create () in
  let m = Hw.Machine.create ~engine:e ~id:0 ~cpus:2 () in
  let task = Topaz.Task.create ~machine:m () in
  (e, m, task)

let test_task_spawn_counts () =
  let e, _, task = build () in
  for _ = 1 to 3 do
    ignore (Topaz.Task.spawn task ~name:"t" (fun () -> Sim.Fiber.consume 0.1))
  done;
  Alcotest.(check int) "spawned" 3 (Topaz.Task.threads_spawned task);
  Alcotest.(check bool) "live while queued" true
    (Topaz.Task.threads_live task > 0);
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "none live after run" 0 (Topaz.Task.threads_live task)

let test_kthread_join () =
  let e, _, task = build () in
  let order = ref [] in
  let worker =
    Topaz.Task.spawn task ~name:"w" (fun () ->
        Sim.Fiber.consume 0.5;
        order := "worker" :: !order)
  in
  ignore
    (Topaz.Task.spawn task ~name:"joiner" (fun () ->
         (match Topaz.Kthread.join worker with
         | Sim.Fiber.Completed -> ()
         | Sim.Fiber.Failed _ -> Alcotest.fail "worker failed");
         order := "joiner" :: !order));
  ignore (Sim.Engine.run e);
  Alcotest.(check (list string)) "join waited" [ "joiner"; "worker" ] !order

let test_kthread_join_finished () =
  let e, _, task = build () in
  let worker = Topaz.Task.spawn task ~name:"w" (fun () -> ()) in
  ignore (Sim.Engine.run e);
  let joined = ref false in
  ignore
    (Topaz.Task.spawn task ~name:"j" (fun () ->
         (match Topaz.Kthread.join worker with
         | Sim.Fiber.Completed -> joined := true
         | Sim.Fiber.Failed _ -> ())));
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "join of finished thread returns" true !joined

let test_kthread_sleep () =
  let e, _, task = build () in
  let woke = ref 0.0 in
  ignore
    (Topaz.Task.spawn task ~name:"s" (fun () ->
         Topaz.Kthread.sleep ~engine:e 2.5;
         woke := Sim.Engine.now e));
  ignore (Sim.Engine.run e);
  Alcotest.(check (float 1e-9)) "slept" 2.5 !woke

let test_name_service () =
  let ns = Topaz.Name_service.create () in
  Topaz.Name_service.register ns "as-server" 0;
  Topaz.Name_service.register ns "master" 3;
  Alcotest.(check int) "lookup" 3 (Topaz.Name_service.lookup ns "master");
  Alcotest.(check (option int)) "missing" None
    (Topaz.Name_service.lookup_opt ns "nope");
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (Topaz.Name_service.lookup ns "nope"));
  Alcotest.(check int) "names" 2 (List.length (Topaz.Name_service.names ns))

let test_remote_exec () =
  let e = Sim.Engine.create () in
  let machines =
    Array.init 3 (fun id -> Hw.Machine.create ~engine:e ~id ~cpus:1 ())
  in
  let tasks = Array.map (fun m -> Topaz.Task.create ~machine:m ()) machines in
  let inited = ref [] in
  let main_ran_at = ref (-1.0) in
  ignore
    (Topaz.Remote_exec.start_all tasks ~startup_latency:1e-3
       ~init:(fun task -> inited := Topaz.Task.node task :: !inited)
       ~main:(fun () -> main_ran_at := Sim.Engine.now e)
       ());
  ignore (Sim.Engine.run e);
  Alcotest.(check (list int)) "all nodes initialized" [ 0; 1; 2 ]
    (List.sort compare !inited);
  Alcotest.(check bool) "main ran after all inits" true (!main_ran_at >= 3e-3)

let suite =
  [
    Alcotest.test_case "task spawn bookkeeping" `Quick test_task_spawn_counts;
    Alcotest.test_case "kthread join blocks" `Quick test_kthread_join;
    Alcotest.test_case "join of finished thread" `Quick
      test_kthread_join_finished;
    Alcotest.test_case "sleep" `Quick test_kthread_sleep;
    Alcotest.test_case "name service" `Quick test_name_service;
    Alcotest.test_case "remote exec starts all nodes" `Quick test_remote_exec;
  ]
