(* The headline reproduction check: all five Table-1 operations within
   10% of the paper's published latencies, measured under the paper's
   stated conditions (§5: light load, one-packet transfers, one-hop
   forwarding chains). *)

module A = Amber

let within_pct ~pct ~paper measured =
  Float.abs (measured -. paper) <= pct /. 100.0 *. paper

let measure rt n f =
  let t0 = A.Api.now rt in
  for _ = 1 to n do
    f ()
  done;
  (A.Api.now rt -. t0) /. float_of_int n

let run_all () =
  let cfg = A.Config.make ~nodes:3 ~cpus:4 () in
  A.Cluster.run_value cfg (fun rt ->
      let create =
        measure rt 50 (fun () ->
            ignore (A.Api.create rt ~size:64 ~name:"o" () : unit A.Aobject.t))
      in
      let local_obj = A.Api.create rt ~size:64 ~name:"local" () in
      let local =
        measure rt 50 (fun () -> A.Api.invoke rt local_obj (fun () -> ()))
      in
      let home = A.Api.create rt ~size:64 ~name:"home" () in
      let target = A.Api.create rt ~size:64 ~name:"target" () in
      A.Api.move_to rt target ~dest:1;
      let remote =
        A.Api.invoke rt home (fun () ->
            measure rt 25 (fun () -> A.Api.invoke rt target (fun () -> ())))
      in
      let ball = A.Api.create rt ~size:1024 ~name:"ball" () in
      A.Api.move_to rt ball ~dest:1;
      let flip = ref 2 in
      let move =
        measure rt 20 (fun () ->
            A.Api.move_to rt ball ~dest:!flip;
            flip := (if !flip = 1 then 2 else 1))
      in
      let start_join =
        measure rt 50 (fun () ->
            let t = A.Api.start rt (fun () -> ()) in
            A.Api.join rt t)
      in
      (create, local, remote, move, start_join))

let results = lazy (run_all ())

let check name paper measured =
  Alcotest.(check bool)
    (Printf.sprintf "%s: measured %.4f ms vs paper %.4f ms" name
       (measured *. 1e3) (paper *. 1e3))
    true
    (within_pct ~pct:10.0 ~paper measured)

let test_create () =
  let c, _, _, _, _ = Lazy.force results in
  check "object create" 0.18e-3 c

let test_local () =
  let _, l, _, _, _ = Lazy.force results in
  check "local invoke/return" 0.012e-3 l

let test_remote () =
  let _, _, r, _, _ = Lazy.force results in
  check "remote invoke/return" 8.32e-3 r

let test_move () =
  let _, _, _, m, _ = Lazy.force results in
  check "object move" 12.43e-3 m

let test_start_join () =
  let _, _, _, _, s = Lazy.force results in
  check "thread start/join" 1.33e-3 s

let suite =
  [
    Alcotest.test_case "Table 1: object create" `Quick test_create;
    Alcotest.test_case "Table 1: local invoke/return" `Quick test_local;
    Alcotest.test_case "Table 1: remote invoke/return" `Quick test_remote;
    Alcotest.test_case "Table 1: object move" `Quick test_move;
    Alcotest.test_case "Table 1: thread start/join" `Quick test_start_join;
  ]
