(* Shared-medium Ethernet: wire timing, FIFO serialization, contention. *)

let feq = Alcotest.(check (float 1e-9))

let make () =
  let e = Sim.Engine.create () in
  let n =
    Hw.Ethernet.create ~engine:e ~bandwidth_bps:10e6 ~propagation:20e-6
      ~wire_overhead:50e-6 ~header_bytes:64 ()
  in
  (e, n)

let test_tx_time () =
  let _, n = make () in
  (* 1000 B payload + 64 B header = 8512 bits at 10 Mbit = 851.2 us,
     plus 50 us overhead. *)
  feq "tx" (50e-6 +. (8512.0 /. 10e6)) (Hw.Ethernet.tx_time n ~size:1000)

let test_delivery_time () =
  let e, n = make () in
  let at = ref 0.0 in
  let p =
    Hw.Packet.make ~src:0 ~dst:1 ~size:0 ~kind:"t" (fun () ->
        at := Sim.Engine.now e)
  in
  let predicted = Hw.Ethernet.send n p in
  ignore (Sim.Engine.run e);
  feq "delivered at predicted time" predicted !at;
  feq "tx + propagation"
    (50e-6 +. (8.0 *. 64.0 /. 10e6) +. 20e-6)
    !at

let test_serialization () =
  (* Two packets submitted at t=0 share the medium: the second is queued
     behind the first. *)
  let e, n = make () in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  ignore
    (Hw.Ethernet.send n
       (Hw.Packet.make ~src:0 ~dst:1 ~size:936 ~kind:"a" (fun () ->
            t1 := Sim.Engine.now e)));
  ignore
    (Hw.Ethernet.send n
       (Hw.Packet.make ~src:2 ~dst:3 ~size:936 ~kind:"b" (fun () ->
            t2 := Sim.Engine.now e)));
  ignore (Sim.Engine.run e);
  let tx = Hw.Ethernet.tx_time n ~size:936 in
  feq "first" (tx +. 20e-6) !t1;
  feq "second queued behind first" ((2.0 *. tx) +. 20e-6) !t2;
  feq "queueing recorded" tx (Hw.Ethernet.total_queueing n)

let test_idle_gap_no_queueing () =
  let e, n = make () in
  ignore
    (Hw.Ethernet.send n (Hw.Packet.make ~src:0 ~dst:1 ~size:10 ~kind:"a"
         (fun () -> ())));
  ignore (Sim.Engine.run e);
  (* Medium long idle: next send starts immediately. *)
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         ignore
           (Hw.Ethernet.send n
              (Hw.Packet.make ~src:0 ~dst:1 ~size:10 ~kind:"b" (fun () -> ())))));
  ignore (Sim.Engine.run e);
  feq "no extra queueing" 0.0 (Hw.Ethernet.total_queueing n)

let test_stats () =
  let e, n = make () in
  for _ = 1 to 5 do
    ignore
      (Hw.Ethernet.send n
         (Hw.Packet.make ~src:0 ~dst:1 ~size:100 ~kind:"s" (fun () -> ())))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "packets" 5 (Hw.Ethernet.packets_sent n);
  Alcotest.(check int) "bytes" 500 (Hw.Ethernet.bytes_sent n);
  Hw.Ethernet.reset_stats n;
  Alcotest.(check int) "reset" 0 (Hw.Ethernet.packets_sent n)

let test_bandwidth_scaling () =
  let e = Sim.Engine.create () in
  let fast =
    Hw.Ethernet.create ~engine:e ~bandwidth_bps:100e6 ~wire_overhead:0.0
      ~propagation:0.0 ~header_bytes:0 ()
  in
  feq "100 Mbit" (8.0 *. 1000.0 /. 100e6) (Hw.Ethernet.tx_time fast ~size:1000)

let suite =
  [
    Alcotest.test_case "tx time formula" `Quick test_tx_time;
    Alcotest.test_case "delivery time" `Quick test_delivery_time;
    Alcotest.test_case "FIFO serialization under contention" `Quick
      test_serialization;
    Alcotest.test_case "idle medium has no queueing" `Quick
      test_idle_gap_no_queueing;
    Alcotest.test_case "statistics" `Quick test_stats;
    Alcotest.test_case "bandwidth scaling" `Quick test_bandwidth_scaling;
  ]
