(* Config construction/validation and cost-model scaling. *)

module A = Amber

let test_make () =
  let c = A.Config.make ~nodes:5 ~cpus:3 () in
  Alcotest.(check int) "nodes" 5 c.A.Config.nodes;
  Alcotest.(check int) "cpus" 3 c.A.Config.cpus_per_node;
  A.Config.validate c

let test_default_is_valid () = A.Config.validate A.Config.default

let check_invalid c =
  match A.Config.validate c with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_validation_rejects () =
  check_invalid { A.Config.default with A.Config.nodes = 0 };
  check_invalid { A.Config.default with A.Config.cpus_per_node = -1 };
  check_invalid { A.Config.default with A.Config.quantum = 0.0 };
  check_invalid { A.Config.default with A.Config.ether_bandwidth_bps = -5.0 };
  check_invalid { A.Config.default with A.Config.rpc_servers_per_node = 0 };
  check_invalid { A.Config.default with A.Config.initial_regions_per_node = 0 };
  check_invalid { A.Config.default with A.Config.vm_page_size = 10 }

let test_cost_scale () =
  let c = A.Cost_model.default in
  let fast = A.Cost_model.scale_cpu c 0.5 in
  Alcotest.(check (float 1e-12)) "entry halved"
    (c.A.Cost_model.invoke_entry_cpu /. 2.0)
    fast.A.Cost_model.invoke_entry_cpu;
  Alcotest.(check (float 1e-12)) "move halved"
    (c.A.Cost_model.move_fixed_cpu /. 2.0)
    fast.A.Cost_model.move_fixed_cpu;
  (* Network-side constants are untouched: scaling models faster CPUs on
     the same wire (the §5 trend discussion). *)
  Alcotest.(check int) "bytes unchanged" c.A.Cost_model.thread_state_bytes
    fast.A.Cost_model.thread_state_bytes

let test_cost_scale_rejects () =
  Alcotest.check_raises "zero factor"
    (Invalid_argument "Cost_model.scale_cpu: factor") (fun () ->
      ignore (A.Cost_model.scale_cpu A.Cost_model.default 0.0))

let test_faster_cpus_speed_up_remote_ops () =
  (* §5: "as processors get faster the CPU overhead ... becomes less
     significant, and performance is dominated by network latency". *)
  let remote_with cost =
    let cfg = A.Config.make ~nodes:2 ~cpus:2 ~cost () in
    A.Cluster.run_value cfg (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        let home = A.Api.create rt ~name:"home" () in
        A.Api.invoke rt home (fun () ->
            let t0 = A.Api.now rt in
            A.Api.invoke rt o (fun () -> ());
            A.Api.now rt -. t0))
  in
  let normal = remote_with A.Cost_model.default in
  let fast = remote_with (A.Cost_model.scale_cpu A.Cost_model.default 0.1) in
  Alcotest.(check bool) "10x CPU cuts remote invoke a lot" true
    (fast < normal /. 2.0);
  (* But not to zero: wire time remains. *)
  Alcotest.(check bool) "network latency floor remains" true (fast > 1e-3)

let test_determinism_across_runs () =
  let run () =
    let cfg = A.Config.make ~nodes:4 ~cpus:2 () in
    A.Cluster.run cfg (fun rt ->
        let r =
          Workloads.Work_queue.run rt
            { Workloads.Work_queue.default_cfg with Workloads.Work_queue.items = 40 }
        in
        r.Workloads.Work_queue.elapsed)
  in
  let e1, rep1 = run () in
  let e2, rep2 = run () in
  Alcotest.(check (float 0.0)) "bit-identical elapsed" e1 e2;
  Alcotest.(check int) "identical event counts" rep1.A.Cluster.events
    rep2.A.Cluster.events;
  Alcotest.(check int) "identical packet counts" rep1.A.Cluster.packets
    rep2.A.Cluster.packets

let suite =
  [
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "default valid" `Quick test_default_is_valid;
    Alcotest.test_case "validation rejects bad configs" `Quick
      test_validation_rejects;
    Alcotest.test_case "cost scaling" `Quick test_cost_scale;
    Alcotest.test_case "cost scaling rejects bad factor" `Quick
      test_cost_scale_rejects;
    Alcotest.test_case "faster CPUs, same wire (§5)" `Quick
      test_faster_cpus_speed_up_remote_ops;
    Alcotest.test_case "whole-run determinism" `Quick
      test_determinism_across_runs;
  ]
