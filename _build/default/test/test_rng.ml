(* Determinism and distribution sanity for the SplitMix64 RNG. *)

let test_deterministic () =
  let a = Sim.Rng.make 42L and b = Sim.Rng.make 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Sim.Rng.make 1L and b = Sim.Rng.make 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rng.bits64 a = Sim.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_split_independent () =
  let parent = Sim.Rng.make 7L in
  let child = Sim.Rng.split parent in
  let xs = List.init 32 (fun _ -> Sim.Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Sim.Rng.bits64 child) in
  Alcotest.(check bool) "no overlap" true
    (List.for_all (fun y -> not (List.mem y xs)) ys)

let test_int_bounds () =
  let r = Sim.Rng.make 3L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_bad_bound () =
  let r = Sim.Rng.make 3L in
  Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_float_range () =
  let r = Sim.Rng.make 9L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.float r in
    Alcotest.(check bool) "[0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_float_mean () =
  let r = Sim.Rng.make 11L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.float r
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_exponential_mean () =
  let r = Sim.Rng.make 13L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential r ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_uniform_range () =
  let r = Sim.Rng.make 17L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.uniform r ~lo:5.0 ~hi:6.0 in
    Alcotest.(check bool) "[5,6)" true (v >= 5.0 && v < 6.0)
  done

let test_shuffle_permutes () =
  let r = Sim.Rng.make 23L in
  let a = Array.init 50 Fun.id in
  Sim.Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 50 Fun.id)

let suite =
  [
    Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
    Alcotest.test_case "different seeds diverge" `Quick test_seeds_differ;
    Alcotest.test_case "split streams are independent" `Quick
      test_split_independent;
    Alcotest.test_case "int respects bound" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_bad_bound;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "float mean" `Slow test_float_mean;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
  ]
