(* The non-splitting heap allocator (§3.2 constraints). *)

let make_heap ?(node = 0) () =
  let server = Vaspace.Space_server.create ~nodes:1 ~initial_per_node:64 () in
  let pool = ref (Vaspace.Space_server.initial_regions server node) in
  let grow () =
    match !pool with
    | r :: rest ->
      pool := rest;
      r
    | [] -> Vaspace.Space_server.grant server ~node
  in
  Vaspace.Heap.create ~node ~grow ()

let test_alloc_basic () =
  let h = make_heap () in
  let a = Vaspace.Heap.alloc h 100 in
  Alcotest.(check bool) "heap address" true (Vaspace.Layout.is_heap_addr a);
  Alcotest.(check bool) "aligned" true (a mod Vaspace.Layout.block_align = 0);
  Alcotest.(check bool) "live" true (Vaspace.Heap.is_live h a);
  Alcotest.(check (option int)) "size rounded" (Some 112)
    (Vaspace.Heap.block_size h a)

let test_allocations_disjoint () =
  let h = make_heap () in
  let blocks = List.init 100 (fun i -> (Vaspace.Heap.alloc h (16 + i), 16 + i)) in
  let rounded b = (b + 15) / 16 * 16 in
  List.iteri
    (fun i (a1, s1) ->
      List.iteri
        (fun j (a2, _) ->
          if i <> j then
            Alcotest.(check bool) "disjoint" true
              (a2 >= a1 + rounded s1 || a2 < a1 || a2 = a1 && false))
        blocks)
    blocks

let test_free_and_reuse_exact () =
  let h = make_heap () in
  let a = Vaspace.Heap.alloc h 64 in
  Vaspace.Heap.free h a;
  Alcotest.(check bool) "not live" false (Vaspace.Heap.is_live h a);
  let b = Vaspace.Heap.alloc h 64 in
  Alcotest.(check int) "reused whole block" a b;
  Alcotest.(check int) "reuse counted" 1 (Vaspace.Heap.reuse_count h)

let test_freed_blocks_never_split () =
  let h = make_heap () in
  let a = Vaspace.Heap.alloc h 256 in
  Vaspace.Heap.free h a;
  (* A smaller allocation must NOT carve up the freed 256-byte block. *)
  let b = Vaspace.Heap.alloc h 16 in
  Alcotest.(check bool) "fresh block, not a fragment of the freed one" true
    (b <> a);
  (* The freed block is still reusable as a whole for its own size. *)
  let c = Vaspace.Heap.alloc h 256 in
  Alcotest.(check int) "whole-block reuse still possible" a c

let test_double_free_rejected () =
  let h = make_heap () in
  let a = Vaspace.Heap.alloc h 32 in
  Vaspace.Heap.free h a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Heap.free: not a live block") (fun () ->
      Vaspace.Heap.free h a)

let test_free_unknown_rejected () =
  let h = make_heap () in
  Alcotest.check_raises "bogus free"
    (Invalid_argument "Heap.free: not a live block") (fun () ->
      Vaspace.Heap.free h 424242)

let test_grow_on_exhaustion () =
  let h = make_heap () in
  (* Region is 1 MiB; allocate 3 regions' worth in big chunks. *)
  let big = 512 * 1024 in
  for _ = 1 to 6 do
    ignore (Vaspace.Heap.alloc h big)
  done;
  Alcotest.(check bool) "grew several times" true
    (Vaspace.Heap.grow_count h >= 3);
  Alcotest.(check int) "all live" 6 (Vaspace.Heap.live_blocks h)

let test_oversized_rejected () =
  let h = make_heap () in
  Alcotest.check_raises "too big" (Invalid_argument "Heap.alloc: size > region")
    (fun () -> ignore (Vaspace.Heap.alloc h (2 * 1024 * 1024)))

let test_bytes_live () =
  let h = make_heap () in
  let a = Vaspace.Heap.alloc h 16 in
  let _b = Vaspace.Heap.alloc h 32 in
  Alcotest.(check int) "48 live" 48 (Vaspace.Heap.bytes_live h);
  Vaspace.Heap.free h a;
  Alcotest.(check int) "32 live" 32 (Vaspace.Heap.bytes_live h)

(* Property: arbitrary alloc/free interleavings maintain the §3.2
   invariants: live blocks disjoint, all addresses within owned regions,
   blocks only ever reused whole (block base set never gains an address
   inside an existing block). *)
let prop_invariants =
  QCheck.Test.make ~name:"heap invariants under random workloads" ~count:100
    QCheck.(list (pair bool (int_range 1 2048)))
    (fun ops ->
      let h = make_heap () in
      let live = Hashtbl.create 32 in
      let bases = ref [] in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc || Hashtbl.length live = 0 then begin
            let a = Vaspace.Heap.alloc h size in
            let rounded = (size + 15) / 16 * 16 in
            (* Check disjointness against the live set. *)
            Hashtbl.iter
              (fun b s ->
                if a < b + s && b < a + rounded then
                  QCheck.Test.fail_report "overlapping live blocks")
              live;
            (* A block base must never fall strictly inside a previously
               carved block (blocks are never split). *)
            List.iter
              (fun (b, s) ->
                if a > b && a < b + s then
                  QCheck.Test.fail_report "block was split")
              !bases;
            if not (List.mem_assoc a !bases) then bases := (a, rounded) :: !bases;
            Hashtbl.replace live a rounded
          end
          else begin
            (* Free a pseudo-random live block. *)
            let keys = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
            let victim = List.nth keys (size mod List.length keys) in
            Vaspace.Heap.free h victim;
            Hashtbl.remove live victim
          end)
        ops;
      Hashtbl.fold
        (fun a _ ok -> ok && Vaspace.Heap.is_live h a)
        live true)

let suite =
  [
    Alcotest.test_case "basic allocation" `Quick test_alloc_basic;
    Alcotest.test_case "allocations disjoint" `Quick test_allocations_disjoint;
    Alcotest.test_case "exact-fit reuse" `Quick test_free_and_reuse_exact;
    Alcotest.test_case "freed blocks never split (§3.2)" `Quick
      test_freed_blocks_never_split;
    Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
    Alcotest.test_case "unknown free rejected" `Quick test_free_unknown_rejected;
    Alcotest.test_case "grows by whole regions" `Quick test_grow_on_exhaustion;
    Alcotest.test_case "oversized allocation rejected" `Quick
      test_oversized_rejected;
    Alcotest.test_case "live byte accounting" `Quick test_bytes_live;
    QCheck_alcotest.to_alcotest prop_invariants;
  ]
