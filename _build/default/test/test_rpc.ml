(* Topaz RPC fabric: request/reply pairing, local shortcut, server-pool
   queueing, and one-way posts. *)

let build ?(nodes = 3) ?(cpus = 2) ?(servers = 2) () =
  let e = Sim.Engine.create () in
  let machines =
    Array.init nodes (fun id -> Hw.Machine.create ~engine:e ~id ~cpus ())
  in
  let tasks = Array.map (fun m -> Topaz.Task.create ~machine:m ()) machines in
  let ether = Hw.Ethernet.create ~engine:e () in
  let rpc = Topaz.Rpc.create ~ether ~tasks ~servers_per_node:servers () in
  (e, machines, tasks, rpc)

let test_basic_call () =
  let e, _, tasks, rpc = build () in
  let result = ref 0 in
  ignore
    (Topaz.Task.spawn tasks.(0) ~name:"caller" (fun () ->
         result := Topaz.Rpc.call rpc ~dst:1 ~kind:"add" ~req_size:64
             ~work:(fun () -> (8, 21 + 21))));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "reply value" 42 !result;
  Alcotest.(check int) "one call" 1 (Topaz.Rpc.calls_made rpc)

let test_call_takes_time () =
  let e, _, tasks, rpc = build () in
  let elapsed = ref 0.0 in
  ignore
    (Topaz.Task.spawn tasks.(0) ~name:"c" (fun () ->
         let t0 = Sim.Engine.now e in
         ignore (Topaz.Rpc.call rpc ~dst:1 ~kind:"nop" ~req_size:0
             ~work:(fun () -> (0, ())));
         elapsed := Sim.Engine.now e -. t0));
  ignore (Sim.Engine.run e);
  (* Null RPC should land in the Firefly's couple-of-ms range. *)
  Alcotest.(check bool) "nontrivial" true (!elapsed > 1e-3);
  Alcotest.(check bool) "but bounded" true (!elapsed < 10e-3)

let test_work_runs_on_destination () =
  let e, _, tasks, rpc = build () in
  let ran_on = ref (-1) in
  ignore
    (Topaz.Task.spawn tasks.(0) ~name:"c" (fun () ->
         ignore
           (Topaz.Rpc.call rpc ~dst:2 ~kind:"where" ~req_size:0
              ~work:(fun () ->
                ran_on := Hw.Machine.id (Hw.Machine.self_machine ());
                (0, ())))));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "on node 2" 2 !ran_on

let test_local_shortcut () =
  let e = Sim.Engine.create () in
  let machines =
    Array.init 2 (fun id -> Hw.Machine.create ~engine:e ~id ~cpus:2 ())
  in
  let tasks = Array.map (fun m -> Topaz.Task.create ~machine:m ()) machines in
  let ether = Hw.Ethernet.create ~engine:e () in
  let rpc = Topaz.Rpc.create ~ether ~tasks ~servers_per_node:2 () in
  let r = ref 0 in
  ignore
    (Topaz.Task.spawn tasks.(1) ~name:"c" (fun () ->
         r := Topaz.Rpc.call rpc ~dst:1 ~kind:"self" ~req_size:0
             ~work:(fun () -> (0, 7))));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "value" 7 !r;
  Alcotest.(check int) "no packets for local call" 0
    (Hw.Ethernet.packets_sent ether)

let test_concurrent_calls () =
  let e, _, tasks, rpc = build ~servers:4 () in
  let sum = ref 0 in
  for i = 0 to 5 do
    ignore
      (Topaz.Task.spawn tasks.(0) ~name:(Printf.sprintf "c%d" i) (fun () ->
           sum :=
             !sum
             + Topaz.Rpc.call rpc ~dst:1 ~kind:"inc" ~req_size:16
                 ~work:(fun () -> (8, i))))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "all replies" 15 !sum

let test_server_pool_queueing () =
  (* One server, two simultaneous calls with slow work: the second waits
     for the first to release the server. *)
  let e, _, tasks, rpc = build ~servers:1 () in
  let finish = Array.make 2 0.0 in
  for i = 0 to 1 do
    ignore
      (Topaz.Task.spawn tasks.(0) ~name:(string_of_int i) (fun () ->
           ignore
             (Topaz.Rpc.call rpc ~dst:1 ~kind:"slow" ~req_size:0
                ~work:(fun () ->
                  Sim.Fiber.consume 0.1;
                  (0, ())));
           finish.(i) <- Sim.Engine.now e))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "second delayed by at least one work unit" true
    (Float.abs (finish.(1) -. finish.(0)) >= 0.1)

let test_post () =
  let e, _, tasks, rpc = build () in
  let got = ref false in
  Topaz.Rpc.post rpc ~src:0 ~dst:2 ~kind:"oneway" ~size:128 (fun () ->
      got := true);
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "handler ran" true !got;
  Alcotest.(check int) "counted" 1 (Topaz.Rpc.posts_made rpc);
  ignore tasks

let test_nested_call_from_server () =
  (* Work on node 1 itself RPCs node 2: servers must not deadlock. *)
  let e, _, tasks, rpc = build ~servers:2 () in
  let r = ref 0 in
  ignore
    (Topaz.Task.spawn tasks.(0) ~name:"c" (fun () ->
         r := Topaz.Rpc.call rpc ~dst:1 ~kind:"outer" ~req_size:0
             ~work:(fun () ->
               let inner =
                 Topaz.Rpc.call rpc ~dst:2 ~kind:"inner" ~req_size:0
                   ~work:(fun () -> (0, 5))
               in
               (0, inner * 2))));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "nested result" 10 !r

let test_backlog_drains () =
  let e, _, tasks, rpc = build ~servers:1 () in
  for _burst = 0 to 4 do
    Topaz.Rpc.post rpc ~src:0 ~dst:1 ~kind:"burst" ~size:8 (fun () ->
        Sim.Fiber.consume 0.01)
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "backlog empty" 0 (Topaz.Rpc.backlog rpc 1);
  ignore tasks

let suite =
  [
    Alcotest.test_case "basic call" `Quick test_basic_call;
    Alcotest.test_case "call has Firefly-range latency" `Quick
      test_call_takes_time;
    Alcotest.test_case "work runs on destination" `Quick
      test_work_runs_on_destination;
    Alcotest.test_case "local shortcut" `Quick test_local_shortcut;
    Alcotest.test_case "concurrent calls" `Quick test_concurrent_calls;
    Alcotest.test_case "server pool queues excess work" `Quick
      test_server_pool_queueing;
    Alcotest.test_case "one-way post" `Quick test_post;
    Alcotest.test_case "nested call from a server" `Quick
      test_nested_call_from_server;
    Alcotest.test_case "backlog drains" `Quick test_backlog_drains;
  ]
