(* Descriptor tables: the uninitialized-reads-as-non-resident contract. *)

let test_uninitialized_is_none () =
  let t = Amber.Descriptor.create_table ~node:0 in
  Alcotest.(check bool) "absent" true (Amber.Descriptor.get t 0x1000 = None);
  Alcotest.(check bool) "not resident" false
    (Amber.Descriptor.is_resident t 0x1000);
  Alcotest.(check int) "uninit read counted" 1
    (Amber.Descriptor.uninitialized_reads t)

let test_resident () =
  let t = Amber.Descriptor.create_table ~node:2 in
  Amber.Descriptor.set_resident t 0x2000;
  Alcotest.(check bool) "resident" true (Amber.Descriptor.is_resident t 0x2000);
  Alcotest.(check bool) "get" true
    (Amber.Descriptor.get t 0x2000 = Some Amber.Descriptor.Resident)

let test_forwarded () =
  let t = Amber.Descriptor.create_table ~node:0 in
  Amber.Descriptor.set_forwarded t 0x3000 5;
  Alcotest.(check bool) "forwarded" true
    (Amber.Descriptor.get t 0x3000 = Some (Amber.Descriptor.Forwarded 5));
  Alcotest.(check bool) "not resident" false
    (Amber.Descriptor.is_resident t 0x3000)

let test_transitions () =
  let t = Amber.Descriptor.create_table ~node:0 in
  Amber.Descriptor.set_resident t 0x10;
  Amber.Descriptor.set_forwarded t 0x10 3;
  Alcotest.(check bool) "now forwarded" true
    (Amber.Descriptor.get t 0x10 = Some (Amber.Descriptor.Forwarded 3));
  Amber.Descriptor.set_resident t 0x10;
  Alcotest.(check bool) "back resident" true (Amber.Descriptor.is_resident t 0x10)

let test_clear () =
  let t = Amber.Descriptor.create_table ~node:0 in
  Amber.Descriptor.set_resident t 0x10;
  Amber.Descriptor.clear t 0x10;
  Alcotest.(check bool) "cleared reads uninitialized" true
    (Amber.Descriptor.get t 0x10 = None)

let test_entries_count () =
  let t = Amber.Descriptor.create_table ~node:0 in
  Amber.Descriptor.set_resident t 1;
  Amber.Descriptor.set_forwarded t 2 1;
  Amber.Descriptor.set_resident t 1;
  Alcotest.(check int) "distinct entries" 2 (Amber.Descriptor.entries t)

let suite =
  [
    Alcotest.test_case "uninitialized descriptor" `Quick
      test_uninitialized_is_none;
    Alcotest.test_case "resident" `Quick test_resident;
    Alcotest.test_case "forwarded" `Quick test_forwarded;
    Alcotest.test_case "state transitions" `Quick test_transitions;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "entry counting" `Quick test_entries_count;
  ]
