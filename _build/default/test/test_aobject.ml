(* Object record invariants: attachment closures, replica usability. *)

let mk ?(addr = 0x100) ?(size = 64) ?(node = 0) name state =
  Amber.Aobject.make ~addr ~name ~size ~node state

let test_make_defaults () =
  let o = mk "x" () in
  Alcotest.(check int) "home" 0 o.Amber.Aobject.home;
  Alcotest.(check int) "location" 0 o.Amber.Aobject.location;
  Alcotest.(check bool) "mutable" false o.Amber.Aobject.immutable_;
  Alcotest.(check bool) "no attachments" true (o.Amber.Aobject.attached = [])

let test_usable_on () =
  let o = mk "x" () in
  Alcotest.(check bool) "usable at location" true
    (Amber.Aobject.usable_on o 0);
  Alcotest.(check bool) "not elsewhere" false (Amber.Aobject.usable_on o 1);
  o.Amber.Aobject.immutable_ <- true;
  o.Amber.Aobject.replicas <- [ 2 ];
  Alcotest.(check bool) "replica usable" true (Amber.Aobject.usable_on o 2);
  Alcotest.(check bool) "non-replica not usable" false
    (Amber.Aobject.usable_on o 3)

let test_closure_single () =
  let o = mk "solo" () in
  Alcotest.(check int) "just itself" 1
    (List.length (Amber.Aobject.attachment_closure (Amber.Aobject.Any o)))

let test_closure_tree () =
  let root = mk ~addr:1 ~size:10 "root" () in
  let a = mk ~addr:2 ~size:20 "a" () in
  let b = mk ~addr:3 ~size:30 "b" () in
  let leaf = mk ~addr:4 ~size:40 "leaf" () in
  root.Amber.Aobject.attached <- [ Amber.Aobject.Any a; Amber.Aobject.Any b ];
  a.Amber.Aobject.attached <- [ Amber.Aobject.Any leaf ];
  let closure = Amber.Aobject.attachment_closure (Amber.Aobject.Any root) in
  Alcotest.(check int) "four objects" 4 (List.length closure);
  Alcotest.(check int) "total size" 100
    (Amber.Aobject.closure_size (Amber.Aobject.Any root))

let test_closure_dedup () =
  (* Defensive: a diamond (same child attached twice) is counted once. *)
  let root = mk ~addr:1 "root" () in
  let c = mk ~addr:2 "c" () in
  root.Amber.Aobject.attached <- [ Amber.Aobject.Any c; Amber.Aobject.Any c ];
  Alcotest.(check int) "dedup" 2
    (List.length (Amber.Aobject.attachment_closure (Amber.Aobject.Any root)))

let test_any_accessors () =
  let o = mk ~addr:0x42 ~size:77 "thing" () in
  let a = Amber.Aobject.Any o in
  Alcotest.(check int) "addr" 0x42 (Amber.Aobject.addr_of_any a);
  Alcotest.(check string) "name" "thing" (Amber.Aobject.name_of_any a);
  Alcotest.(check int) "size" 77 (Amber.Aobject.size_of_any a);
  Alcotest.(check int) "location" 0 (Amber.Aobject.location_of_any a)

let suite =
  [
    Alcotest.test_case "make defaults" `Quick test_make_defaults;
    Alcotest.test_case "usable_on" `Quick test_usable_on;
    Alcotest.test_case "closure of a lone object" `Quick test_closure_single;
    Alcotest.test_case "closure of a tree" `Quick test_closure_tree;
    Alcotest.test_case "closure dedups" `Quick test_closure_dedup;
    Alcotest.test_case "any accessors" `Quick test_any_accessors;
  ]
