(* Scheduling disciplines. *)

let drain pol =
  let rec go acc =
    match pol.Hw.Sched_policy.dequeue () with
    | None -> List.rev acc
    | Some x -> go (x :: acc)
  in
  go []

let test_fifo () =
  let p = Hw.Sched_policy.fifo () in
  List.iter p.Hw.Sched_policy.enqueue [ 1; 2; 3 ];
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (drain p)

let test_fifo_interleaved () =
  let p = Hw.Sched_policy.fifo () in
  p.Hw.Sched_policy.enqueue 1;
  p.Hw.Sched_policy.enqueue 2;
  Alcotest.(check (option int)) "1" (Some 1) (p.Hw.Sched_policy.dequeue ());
  p.Hw.Sched_policy.enqueue 3;
  Alcotest.(check (option int)) "2" (Some 2) (p.Hw.Sched_policy.dequeue ());
  Alcotest.(check (option int)) "3" (Some 3) (p.Hw.Sched_policy.dequeue ())

let test_lifo () =
  let p = Hw.Sched_policy.lifo () in
  List.iter p.Hw.Sched_policy.enqueue [ 1; 2; 3 ];
  Alcotest.(check (list int)) "lifo" [ 3; 2; 1 ] (drain p)

let test_priority () =
  let p = Hw.Sched_policy.by_priority ~priority_of:fst () in
  List.iter p.Hw.Sched_policy.enqueue
    [ (1, "low"); (5, "high"); (3, "mid"); (5, "high2") ];
  Alcotest.(check (list string)) "priority order with FIFO ties"
    [ "high"; "high2"; "mid"; "low" ]
    (List.map snd (drain p))

let test_remove () =
  let p = Hw.Sched_policy.fifo () in
  List.iter p.Hw.Sched_policy.enqueue [ 1; 2; 3; 4 ];
  let removed = p.Hw.Sched_policy.remove (fun x -> x mod 2 = 0) in
  Alcotest.(check int) "two removed" 2 removed;
  Alcotest.(check (list int)) "odds remain in order" [ 1; 3 ] (drain p)

let test_length () =
  let p = Hw.Sched_policy.lifo () in
  Alcotest.(check int) "empty" 0 (p.Hw.Sched_policy.length ());
  p.Hw.Sched_policy.enqueue 1;
  p.Hw.Sched_policy.enqueue 2;
  Alcotest.(check int) "two" 2 (p.Hw.Sched_policy.length ());
  ignore (p.Hw.Sched_policy.dequeue ());
  Alcotest.(check int) "one" 1 (p.Hw.Sched_policy.length ())

let prop_fifo_order =
  QCheck.Test.make ~name:"fifo preserves order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let p = Hw.Sched_policy.fifo () in
      List.iter p.Hw.Sched_policy.enqueue xs;
      drain p = xs)

let suite =
  [
    Alcotest.test_case "fifo" `Quick test_fifo;
    Alcotest.test_case "fifo interleaved" `Quick test_fifo_interleaved;
    Alcotest.test_case "lifo" `Quick test_lifo;
    Alcotest.test_case "priority with FIFO ties" `Quick test_priority;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "length" `Quick test_length;
    QCheck_alcotest.to_alcotest prop_fifo_order;
  ]
