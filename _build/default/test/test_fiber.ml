(* Fiber semantics: the trampoline contract between coroutines and their
   executor. *)

open Sim.Fiber

let run_to_completion body =
  (* Minimal executor: satisfies every pause immediately. *)
  let rec drive = function
    | Done outcome -> outcome
    | Consumed (_, r) -> drive (r.resume ())
    | Yielded r -> drive (r.resume ())
    | Blocked (register, r) ->
      let woken = ref false in
      register (fun () -> woken := true);
      if not !woken then failwith "fiber blocked with no synchronous wake";
      drive (r.resume ())
  in
  drive (start body)

let test_completion () =
  let x = ref 0 in
  (match run_to_completion (fun () -> x := 41; incr x) with
  | Completed -> ()
  | Failed _ -> Alcotest.fail "failed");
  Alcotest.(check int) "body ran" 42 !x

let test_failure_captured () =
  match run_to_completion (fun () -> failwith "boom") with
  | Failed (Failure m) -> Alcotest.(check string) "message" "boom" m
  | Failed _ | Completed -> Alcotest.fail "expected Failure"

let test_consume_pauses () =
  let paused = start (fun () -> consume 1.5) in
  match paused with
  | Consumed (dt, r) ->
    Alcotest.(check (float 0.0)) "duration" 1.5 dt;
    (match r.resume () with
    | Done Completed -> ()
    | _ -> Alcotest.fail "should complete after consume")
  | _ -> Alcotest.fail "expected Consumed"

let test_zero_consume_does_not_pause () =
  match start (fun () -> consume 0.0) with
  | Done Completed -> ()
  | _ -> Alcotest.fail "zero consume should be free"

let test_negative_consume_rejected () =
  match start (fun () -> consume (-1.0)) with
  | Done (Failed (Invalid_argument _)) -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_yield () =
  match start (fun () -> yield ()) with
  | Yielded r -> (
    match r.resume () with
    | Done Completed -> ()
    | _ -> Alcotest.fail "after yield")
  | _ -> Alcotest.fail "expected Yielded"

let test_block_and_wake () =
  let got_waker = ref None in
  let paused = start (fun () -> block (fun wake -> got_waker := Some wake)) in
  match paused with
  | Blocked (register, r) ->
    register (fun () -> ());
    Alcotest.(check bool) "registered" true (!got_waker <> None);
    (match r.resume () with
    | Done Completed -> ()
    | _ -> Alcotest.fail "after block")
  | _ -> Alcotest.fail "expected Blocked"

let test_abort_raises_inside_fiber () =
  let cleaned = ref false in
  let paused =
    start (fun () ->
        Fun.protect ~finally:(fun () -> cleaned := true) (fun () ->
            consume 1.0))
  in
  match paused with
  | Consumed (_, r) -> (
    match r.abort Exit with
    | Done (Failed Exit) ->
      Alcotest.(check bool) "finally ran" true !cleaned
    | _ -> Alcotest.fail "expected Failed Exit")
  | _ -> Alcotest.fail "expected Consumed"

let test_sequencing () =
  (* A fiber that alternates effects; check the executor sees them in
     program order. *)
  let order = ref [] in
  let rec drive n = function
    | Done _ -> ()
    | Consumed (dt, r) ->
      order := Printf.sprintf "c%.0f" dt :: !order;
      drive (n + 1) (r.resume ())
    | Yielded r ->
      order := "y" :: !order;
      drive (n + 1) (r.resume ())
    | Blocked (register, r) ->
      order := "b" :: !order;
      register (fun () -> ());
      drive (n + 1) (r.resume ())
  in
  drive 0
    (start (fun () ->
         consume 1.0;
         yield ();
         block (fun wake -> wake ());
         consume 2.0));
  Alcotest.(check (list string)) "order" [ "c1"; "y"; "b"; "c2" ]
    (List.rev !order)

let test_effects_outside_fiber_raise () =
  match consume 1.0 with
  | () -> Alcotest.fail "expected Unhandled"
  | exception Effect.Unhandled _ -> ()

let suite =
  [
    Alcotest.test_case "completion" `Quick test_completion;
    Alcotest.test_case "failure captured" `Quick test_failure_captured;
    Alcotest.test_case "consume pauses with duration" `Quick
      test_consume_pauses;
    Alcotest.test_case "zero consume is free" `Quick
      test_zero_consume_does_not_pause;
    Alcotest.test_case "negative consume rejected" `Quick
      test_negative_consume_rejected;
    Alcotest.test_case "yield" `Quick test_yield;
    Alcotest.test_case "block hands out a waker" `Quick test_block_and_wake;
    Alcotest.test_case "abort raises inside the fiber" `Quick
      test_abort_raises_inside_fiber;
    Alcotest.test_case "effects arrive in program order" `Quick
      test_sequencing;
    Alcotest.test_case "effects outside a fiber raise" `Quick
      test_effects_outside_fiber_raise;
  ]
