(* Topaz VM: demand-zero pages and typed accessors. *)

let test_zero_fill () =
  let vm = Topaz.Vm.create () in
  Alcotest.(check int) "unmapped reads as zero" 0 (Topaz.Vm.read_u8 vm 12345);
  Alcotest.(check bool) "page now mapped" true
    (Topaz.Vm.is_mapped vm (Topaz.Vm.page_of_addr vm 12345))

let test_rw_u8 () =
  let vm = Topaz.Vm.create () in
  Topaz.Vm.write_u8 vm 100 42;
  Alcotest.(check int) "read back" 42 (Topaz.Vm.read_u8 vm 100);
  Alcotest.(check int) "neighbor still zero" 0 (Topaz.Vm.read_u8 vm 101)

let test_rw_f64 () =
  let vm = Topaz.Vm.create () in
  Topaz.Vm.write_f64 vm 2048 3.14159;
  Alcotest.(check (float 0.0)) "f64 round trip" 3.14159
    (Topaz.Vm.read_f64 vm 2048)

let test_f64_cross_page_rejected () =
  let vm = Topaz.Vm.create ~page_size:1024 () in
  Alcotest.check_raises "straddle"
    (Invalid_argument "Vm: f64 access straddles a page") (fun () ->
      ignore (Topaz.Vm.read_f64 vm 1020))

let test_install_page () =
  let vm = Topaz.Vm.create ~page_size:16 () in
  let page = Bytes.make 16 'x' in
  Topaz.Vm.install_page vm 3 page;
  Alcotest.(check int) "installed contents" (Char.code 'x')
    (Topaz.Vm.read_u8 vm 50);
  (* Mutating the source afterwards must not alias the stored page. *)
  Bytes.set page 2 'y';
  Alcotest.(check int) "no aliasing" (Char.code 'x') (Topaz.Vm.read_u8 vm 50)

let test_install_wrong_size () =
  let vm = Topaz.Vm.create ~page_size:16 () in
  Alcotest.check_raises "size" (Invalid_argument "Vm.install_page: wrong page size")
    (fun () -> Topaz.Vm.install_page vm 0 (Bytes.create 8))

let test_zero_fill_count () =
  let vm = Topaz.Vm.create ~page_size:64 () in
  ignore (Topaz.Vm.read_u8 vm 0);
  ignore (Topaz.Vm.read_u8 vm 1);
  ignore (Topaz.Vm.read_u8 vm 64);
  Alcotest.(check int) "two zero fills" 2 (Topaz.Vm.zero_fills vm);
  Alcotest.(check int) "two pages" 2 (Topaz.Vm.pages_mapped vm)

let test_bad_page_size () =
  Alcotest.check_raises "alignment"
    (Invalid_argument "Vm.create: page size must be positive and 8-byte aligned")
    (fun () -> ignore (Topaz.Vm.create ~page_size:10 ()))

let prop_u8_roundtrip =
  QCheck.Test.make ~name:"u8 writes read back" ~count:200
    QCheck.(list (pair (int_bound 10000) (int_bound 255)))
    (fun writes ->
      let vm = Topaz.Vm.create ~page_size:256 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (addr, v) ->
          Topaz.Vm.write_u8 vm addr v;
          Hashtbl.replace model addr v)
        writes;
      Hashtbl.fold
        (fun addr v ok -> ok && Topaz.Vm.read_u8 vm addr = v)
        model true)

let suite =
  [
    Alcotest.test_case "demand-zero fill" `Quick test_zero_fill;
    Alcotest.test_case "u8 read/write" `Quick test_rw_u8;
    Alcotest.test_case "f64 read/write" `Quick test_rw_f64;
    Alcotest.test_case "f64 cannot straddle pages" `Quick
      test_f64_cross_page_rejected;
    Alcotest.test_case "install_page copies" `Quick test_install_page;
    Alcotest.test_case "install_page size check" `Quick test_install_wrong_size;
    Alcotest.test_case "zero-fill accounting" `Quick test_zero_fill_count;
    Alcotest.test_case "page size validation" `Quick test_bad_page_size;
    QCheck_alcotest.to_alcotest prop_u8_roundtrip;
  ]
