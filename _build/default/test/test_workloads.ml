(* Workload-level integration: the SOR implementations agree bit-for-bit,
   speedups behave, work queue and matmul are correct. *)

module W = Workloads

let sor_params rows cols =
  W.Sor_core.with_size W.Sor_core.default ~rows ~cols

let test_sor_core_reference_converges () =
  let p = sor_params 16 16 in
  let iters, g = W.Sor_core.iterations_to_converge p ~eps:1e-4 ~max_iters:5000 in
  Alcotest.(check bool) "converged" true (iters < 5000);
  (* Steady state: every interior point equals its neighbor average. *)
  let ok = ref true in
  for r = 1 to 16 do
    for c = 1 to 16 do
      let avg =
        (W.Sor_core.Full_grid.get g ~r ~c:(c - 1)
        +. W.Sor_core.Full_grid.get g ~r ~c:(c + 1)
        +. W.Sor_core.Full_grid.get g ~r:(r - 1) ~c
        +. W.Sor_core.Full_grid.get g ~r:(r + 1) ~c)
        /. 4.0
      in
      if Float.abs (avg -. W.Sor_core.Full_grid.get g ~r ~c) > 1e-3 then
        ok := false
    done
  done;
  Alcotest.(check bool) "Laplace fixed point" true !ok

let test_sor_colors_partition () =
  let reds = ref 0 and blacks = ref 0 in
  for r = 1 to 10 do
    for c = 1 to 10 do
      match W.Sor_core.color_of ~r ~c with
      | W.Sor_core.Red -> incr reds
      | W.Sor_core.Black -> incr blacks
    done
  done;
  Alcotest.(check int) "half red" 50 !reds;
  Alcotest.(check int) "half black" 50 !blacks

let test_seq_matches_reference () =
  let p = sor_params 12 20 in
  let r = Util.run ~nodes:1 ~cpus:1 (fun rt -> W.Sor_seq.run rt p ~iters:5) in
  let g = W.Sor_core.reference p ~iters:5 in
  Alcotest.(check (float 0.0)) "identical" (W.Sor_core.Full_grid.checksum g)
    r.W.Sor_seq.checksum;
  Alcotest.(check (float 1e-9)) "cost charged"
    (W.Sor_seq.predicted_elapsed p ~iters:5)
    r.W.Sor_seq.compute_elapsed

let check_amber_exact ~nodes ~cpus ~sections ~overlap p iters =
  let want = W.Sor_core.Full_grid.checksum (W.Sor_core.reference p ~iters) in
  let r =
    Util.run ~nodes ~cpus (fun rt ->
        let c = W.Sor_amber.default_cfg rt in
        W.Sor_amber.run rt p
          ~cfg:{ c with W.Sor_amber.sections; overlap }
          ~iters ())
  in
  Alcotest.(check (float 0.0)) "bit-identical" want r.W.Sor_amber.checksum

let test_amber_sor_exact_overlap () =
  check_amber_exact ~nodes:4 ~cpus:2 ~sections:6 ~overlap:true
    (sor_params 18 50) 6

let test_amber_sor_exact_no_overlap () =
  check_amber_exact ~nodes:4 ~cpus:2 ~sections:6 ~overlap:false
    (sor_params 18 50) 6

let test_amber_sor_narrow_sections () =
  (* One column per section: every column is a border. *)
  check_amber_exact ~nodes:3 ~cpus:1 ~sections:9 ~overlap:true
    (sor_params 7 9) 4

let test_amber_sor_single_section () =
  check_amber_exact ~nodes:1 ~cpus:4 ~sections:1 ~overlap:true
    (sor_params 10 16) 5

let test_amber_sor_speedup_shape () =
  (* A mid-size grid must show: multi-node beats single-CPU, and the
     4-CPU configurations beat 1 CPU by roughly 4x. *)
  let p = sor_params 60 240 in
  let iters = 6 in
  let seq = W.Sor_seq.predicted_elapsed p ~iters in
  let elapsed nodes cpus =
    let r =
      Util.run ~nodes ~cpus (fun rt -> W.Sor_amber.run rt p ~iters ())
    in
    r.W.Sor_amber.compute_elapsed
  in
  let one_cpu = elapsed 1 1 in
  let four_cpu = elapsed 1 4 in
  let cluster = elapsed 4 4 in
  Alcotest.(check bool) "1Nx1P near sequential" true
    (one_cpu > 0.95 *. seq && one_cpu < 1.15 *. seq);
  Alcotest.(check bool) "1Nx4P speedup ~4" true
    (seq /. four_cpu > 3.3 && seq /. four_cpu < 4.1);
  Alcotest.(check bool) "4Nx4P beats 1Nx4P" true (cluster < four_cpu)

let test_overlap_beats_no_overlap () =
  let p = sor_params 60 240 in
  let iters = 5 in
  let run overlap =
    let r =
      Util.run ~nodes:4 ~cpus:4 (fun rt ->
          let c = W.Sor_amber.default_cfg rt in
          W.Sor_amber.run rt p ~cfg:{ c with W.Sor_amber.overlap } ~iters ())
    in
    r.W.Sor_amber.compute_elapsed
  in
  Alcotest.(check bool) "overlap faster" true (run true < run false)

let test_amber_sor_convergence_mode () =
  let p = sor_params 14 30 in
  let eps = 1e-3 in
  let ref_iters, g =
    W.Sor_core.iterations_to_converge p ~eps ~max_iters:3000
  in
  let r =
    Util.run ~nodes:3 ~cpus:2 (fun rt ->
        W.Sor_amber.run_to_convergence rt p ~eps ~max_iters:3000 ())
  in
  Alcotest.(check int) "same iteration count as the reference" ref_iters
    r.W.Sor_amber.iterations;
  Alcotest.(check (float 0.0)) "bit-identical state"
    (W.Sor_core.Full_grid.checksum g)
    r.W.Sor_amber.checksum

let test_amber_sor_convergence_caps () =
  let p = sor_params 14 30 in
  let r =
    Util.run ~nodes:2 ~cpus:2 (fun rt ->
        W.Sor_amber.run_to_convergence rt p ~eps:1e-12 ~max_iters:5 ())
  in
  Alcotest.(check int) "max_iters cap respected" 5 r.W.Sor_amber.iterations

let test_ivy_sor_exact () =
  let p = sor_params 14 40 in
  let iters = 5 in
  let want = W.Sor_core.Full_grid.checksum (W.Sor_core.reference p ~iters) in
  let r = Util.run ~nodes:4 ~cpus:2 (fun rt -> W.Sor_ivy.run rt p ~iters ()) in
  Alcotest.(check (float 0.0)) "bit-identical" want r.W.Sor_ivy.checksum;
  Alcotest.(check bool) "faults happened" true (r.W.Sor_ivy.read_faults > 0)

let test_ivy_pays_more_messages_than_amber () =
  (* §4.2: per iteration, Ivy pays page faults + invalidations where Amber
     pays one invocation per edge per phase. *)
  let p = sor_params 32 64 in
  let iters = 6 in
  let amber =
    Util.run ~nodes:4 ~cpus:2 (fun rt ->
        let c = W.Sor_amber.default_cfg rt in
        W.Sor_amber.run rt p ~cfg:{ c with W.Sor_amber.sections = 4 } ~iters ())
  in
  let ivy =
    Util.run ~nodes:4 ~cpus:2 (fun rt -> W.Sor_ivy.run rt p ~iters ())
  in
  let ivy_msgs =
    ivy.W.Sor_ivy.read_faults + ivy.W.Sor_ivy.write_faults
    + ivy.W.Sor_ivy.invalidations
  in
  Alcotest.(check bool) "ivy coherence traffic exceeds amber invocations"
    true
    (ivy_msgs > amber.W.Sor_amber.remote_invocations)

let test_ivy_sor_exact_across_page_sizes () =
  (* Correctness must not depend on the coherence unit (§4.2 is about
     performance, never results). *)
  let p = sor_params 12 24 in
  let iters = 4 in
  let want = W.Sor_core.Full_grid.checksum (W.Sor_core.reference p ~iters) in
  List.iter
    (fun page_size ->
      let cfg = Amber.Config.make ~nodes:3 ~cpus:2 () in
      let cfg = { cfg with Amber.Config.vm_page_size = page_size } in
      let r =
        Amber.Cluster.run_value cfg (fun rt -> W.Sor_ivy.run rt p ~iters ())
      in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%dB pages" page_size)
        want r.W.Sor_ivy.checksum)
    [ 256; 512; 1024; 4096 ]

let test_ivy_sor_exact_fixed_manager () =
  let p = sor_params 12 24 in
  let iters = 4 in
  let want = W.Sor_core.Full_grid.checksum (W.Sor_core.reference p ~iters) in
  let r =
    Util.run ~nodes:3 ~cpus:2 (fun rt ->
        W.Sor_ivy.run rt p ~manager:Ivy.Dsm.Fixed ~iters ())
  in
  Alcotest.(check (float 0.0)) "fixed manager exact" want r.W.Sor_ivy.checksum

let test_work_queue_all_processed () =
  let r =
    Util.run ~nodes:3 ~cpus:2 (fun rt ->
        W.Work_queue.run rt
          { W.Work_queue.default_cfg with W.Work_queue.items = 90 })
  in
  Alcotest.(check int) "all items" 90 r.W.Work_queue.processed;
  Alcotest.(check int) "per-node sums match" 90
    (Array.fold_left ( + ) 0 r.W.Work_queue.per_node);
  Alcotest.(check bool) "every node contributed" true
    (Array.for_all (fun n -> n > 0) r.W.Work_queue.per_node)

let test_work_queue_survives_migration () =
  let r =
    Util.run ~nodes:4 ~cpus:2 (fun rt ->
        W.Work_queue.run rt
          {
            W.Work_queue.default_cfg with
            W.Work_queue.items = 80;
            move_queue_at = Some 20;
          })
  in
  Alcotest.(check int) "all items despite move" 80 r.W.Work_queue.processed;
  Alcotest.(check int) "queue ended on last node" 3
    r.W.Work_queue.queue_final_node

let mm_close a b = Float.abs (a -. b) <= 1e-9 *. Float.abs b

let test_matmul_replicated_correct () =
  let cfg = { W.Matmul.default_cfg with W.Matmul.n = 48; block = 12 } in
  let want = W.Matmul.reference_checksum cfg in
  let r = Util.run ~nodes:4 ~cpus:2 (fun rt -> W.Matmul.run rt cfg) in
  Alcotest.(check bool) "correct product" true
    (mm_close r.W.Matmul.checksum want);
  Alcotest.(check bool) "replicas were made" true (r.W.Matmul.copies >= 6)

let test_matmul_replication_pays_off () =
  let cfg = { W.Matmul.default_cfg with W.Matmul.n = 48; block = 12 } in
  let run replicate =
    Util.run ~nodes:4 ~cpus:2 (fun rt ->
        W.Matmul.run rt { cfg with W.Matmul.replicate })
  in
  let fast = run true and slow = run false in
  Alcotest.(check bool) "both correct" true
    (mm_close fast.W.Matmul.checksum slow.W.Matmul.checksum);
  Alcotest.(check bool) "replication is faster" true
    (fast.W.Matmul.elapsed < slow.W.Matmul.elapsed);
  Alcotest.(check bool) "and avoids remote traffic" true
    (fast.W.Matmul.remote_invocations < slow.W.Matmul.remote_invocations)

let prop_sor_amber_matches_reference =
  QCheck.Test.make ~name:"Amber SOR ≡ reference on random configs" ~count:8
    QCheck.(
      quad (int_range 4 16) (int_range 6 30) (int_range 1 6) (int_range 1 4))
    (fun (rows, cols, sections, iters) ->
      let sections = min sections cols in
      let p = sor_params rows cols in
      let want =
        W.Sor_core.Full_grid.checksum (W.Sor_core.reference p ~iters)
      in
      let r =
        Util.run ~nodes:2 ~cpus:2 (fun rt ->
            let c = W.Sor_amber.default_cfg rt in
            W.Sor_amber.run rt p
              ~cfg:{ c with W.Sor_amber.sections }
              ~iters ())
      in
      r.W.Sor_amber.checksum = want)

let suite =
  [
    Alcotest.test_case "reference solver converges to Laplace" `Slow
      test_sor_core_reference_converges;
    Alcotest.test_case "red/black partition" `Quick test_sor_colors_partition;
    Alcotest.test_case "sequential matches reference" `Quick
      test_seq_matches_reference;
    Alcotest.test_case "Amber SOR exact (overlap)" `Quick
      test_amber_sor_exact_overlap;
    Alcotest.test_case "Amber SOR exact (no overlap)" `Quick
      test_amber_sor_exact_no_overlap;
    Alcotest.test_case "Amber SOR with 1-column sections" `Quick
      test_amber_sor_narrow_sections;
    Alcotest.test_case "Amber SOR single section" `Quick
      test_amber_sor_single_section;
    Alcotest.test_case "Amber SOR speedup shape" `Slow
      test_amber_sor_speedup_shape;
    Alcotest.test_case "overlap beats no-overlap" `Slow
      test_overlap_beats_no_overlap;
    Alcotest.test_case "convergence mode matches reference" `Slow
      test_amber_sor_convergence_mode;
    Alcotest.test_case "convergence mode caps iterations" `Quick
      test_amber_sor_convergence_caps;
    Alcotest.test_case "Ivy SOR exact" `Quick test_ivy_sor_exact;
    Alcotest.test_case "Ivy pays more coherence messages (§4.2)" `Quick
      test_ivy_pays_more_messages_than_amber;
    Alcotest.test_case "Ivy SOR exact across page sizes" `Quick
      test_ivy_sor_exact_across_page_sizes;
    Alcotest.test_case "Ivy SOR exact with fixed manager" `Quick
      test_ivy_sor_exact_fixed_manager;
    Alcotest.test_case "work queue processes everything" `Quick
      test_work_queue_all_processed;
    Alcotest.test_case "work queue survives queue migration" `Quick
      test_work_queue_survives_migration;
    Alcotest.test_case "matmul replicated correct" `Quick
      test_matmul_replicated_correct;
    Alcotest.test_case "matmul replication pays off" `Quick
      test_matmul_replication_pays_off;
    QCheck_alcotest.to_alcotest prop_sor_amber_matches_reference;
  ]
