test/test_placement.ml: Alcotest Amber Array List Printf Sim Util
