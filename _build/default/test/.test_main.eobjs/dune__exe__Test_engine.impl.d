test/test_engine.ml: Alcotest Fun List Sim
