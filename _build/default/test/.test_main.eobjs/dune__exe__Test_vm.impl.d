test/test_vm.ml: Alcotest Bytes Char Hashtbl List QCheck QCheck_alcotest Topaz
