test/test_ethernet.ml: Alcotest Hw Sim
