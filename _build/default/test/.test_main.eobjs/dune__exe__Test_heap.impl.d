test/test_heap.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Vaspace
