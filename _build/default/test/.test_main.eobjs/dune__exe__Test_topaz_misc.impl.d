test/test_topaz_misc.ml: Alcotest Array Hw List Sim Topaz
