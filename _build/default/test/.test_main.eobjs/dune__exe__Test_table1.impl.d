test/test_table1.ml: Alcotest Amber Float Lazy Printf
