test/test_vaspace.ml: Alcotest List Vaspace
