test/util.ml: Alcotest Amber
