test/test_runtime.ml: Alcotest Amber Array List Sim Util Vaspace
