test/test_darray.ml: Alcotest Amber Array Fun QCheck QCheck_alcotest Util
