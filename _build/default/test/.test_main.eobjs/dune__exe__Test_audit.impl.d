test/test_audit.ml: Alcotest Amber Array Int64 List Printf QCheck QCheck_alcotest Sim Util
