test/test_config.ml: Alcotest Amber Workloads
