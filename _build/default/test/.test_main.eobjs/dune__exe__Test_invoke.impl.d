test/test_invoke.ml: Alcotest Amber Float List Sim Topaz Util
