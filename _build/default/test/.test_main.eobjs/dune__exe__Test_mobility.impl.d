test/test_mobility.ml: Alcotest Amber List Sim String Topaz Util Vaspace
