test/test_fiber.ml: Alcotest Effect Fun List Printf Sim
