test/test_stress.ml: Alcotest Amber Array Int64 List Printf QCheck QCheck_alcotest Sim Topaz Util
