test/test_sync.ml: Alcotest Amber List Option Printf Queue Sim Topaz Util
