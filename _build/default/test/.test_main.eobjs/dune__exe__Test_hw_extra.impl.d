test/test_hw_extra.ml: Alcotest Amber Float Format Fun Gen Hw List QCheck QCheck_alcotest Sim
