test/test_trace.ml: Alcotest List Sim
