test/test_stats_report.ml: Alcotest Amber Array Format List Sim String Util
