test/test_descriptor.ml: Alcotest Amber
