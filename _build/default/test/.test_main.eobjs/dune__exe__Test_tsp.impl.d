test/test_tsp.ml: Alcotest Array Fun QCheck QCheck_alcotest Util Workloads
