test/test_machine.ml: Alcotest Array Hw List Sim
