test/test_event_queue.ml: Alcotest Float Fun List QCheck QCheck_alcotest Sim
