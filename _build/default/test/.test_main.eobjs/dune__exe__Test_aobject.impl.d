test/test_aobject.ml: Alcotest Amber List
