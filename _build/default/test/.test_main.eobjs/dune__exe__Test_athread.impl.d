test/test_athread.ml: Alcotest Amber List Sim Topaz Util
