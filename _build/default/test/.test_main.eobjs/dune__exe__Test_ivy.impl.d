test/test_ivy.ml: Alcotest Amber Array Gen Hw Ivy List Option QCheck QCheck_alcotest Sim Util
