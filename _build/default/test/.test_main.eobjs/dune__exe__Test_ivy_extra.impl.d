test/test_ivy_extra.ml: Alcotest Array Hw Ivy List Option Sim Topaz Util
