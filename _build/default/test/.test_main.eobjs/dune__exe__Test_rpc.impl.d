test/test_rpc.ml: Alcotest Array Float Hw Printf Sim Topaz
