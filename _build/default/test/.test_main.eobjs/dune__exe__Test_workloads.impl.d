test/test_workloads.ml: Alcotest Amber Array Float Ivy List Printf QCheck QCheck_alcotest Util Workloads
