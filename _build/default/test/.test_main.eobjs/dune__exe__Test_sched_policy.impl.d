test/test_sched_policy.ml: Alcotest Hw List QCheck QCheck_alcotest
