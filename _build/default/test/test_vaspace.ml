(* Layout arithmetic, region assignment, and the address-space server. *)

let test_layout_regions () =
  Alcotest.(check int) "region 0 base" Vaspace.Layout.heap_base
    (Vaspace.Layout.region_base 0);
  Alcotest.(check int) "region 1 base"
    (Vaspace.Layout.heap_base + Vaspace.Layout.region_size)
    (Vaspace.Layout.region_base 1);
  Alcotest.(check int) "index round trip" 5
    (Vaspace.Layout.region_index_of_addr
       (Vaspace.Layout.region_base 5 + 1234))

let test_layout_classification () =
  Alcotest.(check bool) "static" true (Vaspace.Layout.is_static_addr 100);
  Alcotest.(check bool) "static is not heap" false
    (Vaspace.Layout.is_heap_addr 100);
  Alcotest.(check bool) "heap" true
    (Vaspace.Layout.is_heap_addr Vaspace.Layout.heap_base)

let test_layout_bad_addr () =
  Alcotest.check_raises "static addr rejected"
    (Invalid_argument "Layout.region_index_of_addr: 0x10") (fun () ->
      ignore (Vaspace.Layout.region_index_of_addr 16))

let test_region_contains () =
  let r = Vaspace.Region.make ~index:2 ~owner:1 in
  Alcotest.(check bool) "base" true
    (Vaspace.Region.contains r r.Vaspace.Region.base);
  Alcotest.(check bool) "last" true
    (Vaspace.Region.contains r (Vaspace.Region.last_addr r));
  Alcotest.(check bool) "past end" false
    (Vaspace.Region.contains r (Vaspace.Region.last_addr r + 1))

let test_server_initial_assignment () =
  let s = Vaspace.Space_server.create ~nodes:3 ~initial_per_node:2 () in
  let all =
    List.concat_map
      (fun node -> Vaspace.Space_server.initial_regions s node)
      [ 0; 1; 2 ]
  in
  Alcotest.(check int) "six regions" 6 (List.length all);
  (* Disjoint indices. *)
  let idxs = List.map (fun r -> r.Vaspace.Region.index) all in
  Alcotest.(check int) "disjoint" 6
    (List.length (List.sort_uniq compare idxs));
  (* Ownership consistent with owner_of_addr. *)
  List.iter
    (fun r ->
      Alcotest.(check (option int)) "owner" (Some r.Vaspace.Region.owner)
        (Vaspace.Space_server.owner_of_addr s r.Vaspace.Region.base))
    all

let test_server_grant () =
  let s = Vaspace.Space_server.create ~nodes:2 ~initial_per_node:1 () in
  let before = Vaspace.Space_server.regions_assigned s in
  let r = Vaspace.Space_server.grant s ~node:1 in
  Alcotest.(check int) "fresh index" 2 r.Vaspace.Region.index;
  Alcotest.(check int) "owner" 1 r.Vaspace.Region.owner;
  Alcotest.(check int) "assigned count grew" (before + 1)
    (Vaspace.Space_server.regions_assigned s);
  Alcotest.(check (option int)) "queryable" (Some 1)
    (Vaspace.Space_server.owner_of_addr s r.Vaspace.Region.base)

let test_server_grants_disjoint () =
  let s = Vaspace.Space_server.create ~nodes:2 () in
  let r1 = Vaspace.Space_server.grant s ~node:0 in
  let r2 = Vaspace.Space_server.grant s ~node:1 in
  Alcotest.(check bool) "disjoint" true
    (r1.Vaspace.Region.index <> r2.Vaspace.Region.index)

let test_client_cache () =
  let s = Vaspace.Space_server.create ~nodes:2 ~initial_per_node:1 () in
  let c = Vaspace.Space_server.Client.create s in
  (* Pre-populated with the startup partitioning. *)
  Alcotest.(check (option int)) "initial known" (Some 1)
    (Vaspace.Space_server.Client.lookup c (Vaspace.Layout.region_base 1));
  let fresh = Vaspace.Space_server.grant s ~node:0 in
  Alcotest.(check (option int)) "fresh unknown" None
    (Vaspace.Space_server.Client.lookup c fresh.Vaspace.Region.base);
  Vaspace.Space_server.Client.learn c fresh;
  Alcotest.(check (option int)) "learned" (Some 0)
    (Vaspace.Space_server.Client.lookup c fresh.Vaspace.Region.base)

let suite =
  [
    Alcotest.test_case "layout region arithmetic" `Quick test_layout_regions;
    Alcotest.test_case "layout address classification" `Quick
      test_layout_classification;
    Alcotest.test_case "layout rejects non-heap" `Quick test_layout_bad_addr;
    Alcotest.test_case "region containment" `Quick test_region_contains;
    Alcotest.test_case "server initial assignment" `Quick
      test_server_initial_assignment;
    Alcotest.test_case "server grant" `Quick test_server_grant;
    Alcotest.test_case "grants are disjoint" `Quick test_server_grants_disjoint;
    Alcotest.test_case "client cache" `Quick test_client_cache;
  ]
