(* Additional hardware-layer coverage: work-conservation properties,
   Ethernet traffic accounting, packets, machine introspection. *)

let feq = Alcotest.(check (float 1e-9))

(* Work conservation: for any set of compute demands on any CPU count,
   total busy time equals total demand and the makespan is bounded by
   list scheduling: total/P <= makespan <= total/P + max_job. *)
let prop_work_conservation =
  QCheck.Test.make ~name:"machine conserves work; makespan bounded" ~count:80
    QCheck.(
      pair (int_range 1 6)
        (list_of_size (Gen.int_range 1 12) (int_range 1 50)))
    (fun (cpus, jobs_ds) ->
      let e = Sim.Engine.create () in
      let m = Hw.Machine.create ~engine:e ~id:0 ~cpus ~quantum:0.015 () in
      let jobs = List.map (fun d -> float_of_int d /. 100.0) jobs_ds in
      List.iteri
        (fun i d ->
          ignore
            (Hw.Machine.spawn m ~name:(string_of_int i) (fun () ->
                 Sim.Fiber.consume d)))
        jobs;
      ignore (Sim.Engine.run e : int);
      let total = List.fold_left ( +. ) 0.0 jobs in
      let longest = List.fold_left Float.max 0.0 jobs in
      let makespan = Sim.Engine.now e in
      let busy = Hw.Machine.total_busy_time m in
      Float.abs (busy -. total) < 1e-6
      && makespan >= (total /. float_of_int cpus) -. 1e-9
      && makespan <= (total /. float_of_int cpus) +. longest +. 1e-6)

let test_busy_cpus_and_running () =
  let e = Sim.Engine.create () in
  let m = Hw.Machine.create ~engine:e ~id:0 ~cpus:4 () in
  for i = 0 to 2 do
    ignore
      (Hw.Machine.spawn m ~name:(string_of_int i) (fun () ->
           Sim.Fiber.consume 1.0))
  done;
  ignore (Sim.Engine.run ~until:0.5 e);
  Alcotest.(check int) "three busy" 3 (Hw.Machine.busy_cpus m);
  Alcotest.(check int) "three running" 3
    (List.length (Hw.Machine.running_tcbs m));
  Alcotest.(check int) "queue empty" 0 (Hw.Machine.ready_length m);
  ignore (Sim.Engine.run e)

let test_spawn_priority_effective_at_first_dispatch () =
  let e = Sim.Engine.create () in
  let m =
    Hw.Machine.create ~engine:e ~id:0 ~cpus:1
      ~policy:(Hw.Sched_policy.by_priority ~priority_of:Hw.Machine.priority ())
      ()
  in
  let order = ref [] in
  (* Occupy the CPU first so the contenders queue. *)
  ignore (Hw.Machine.spawn m ~name:"hog" (fun () -> Sim.Fiber.consume 0.1));
  ignore (Sim.Engine.run ~until:0.01 e);
  ignore
    (Hw.Machine.spawn m ~name:"low" ~priority:1 (fun () ->
         order := "low" :: !order));
  ignore
    (Hw.Machine.spawn m ~name:"high" ~priority:9 (fun () ->
         order := "high" :: !order));
  ignore (Sim.Engine.run e);
  Alcotest.(check (list string)) "high first" [ "high"; "low" ]
    (List.rev !order)

let test_packet_pp_and_validation () =
  let p = Hw.Packet.make ~src:1 ~dst:2 ~size:128 ~kind:"x" (fun () -> ()) in
  Alcotest.(check string) "pp" "x[1->2, 128B]"
    (Format.asprintf "%a" Hw.Packet.pp p);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Packet.make: negative size") (fun () ->
      ignore (Hw.Packet.make ~src:0 ~dst:0 ~size:(-1) ~kind:"x" (fun () -> ())))

let test_ethernet_traffic_by_kind () =
  let e = Sim.Engine.create () in
  let n = Hw.Ethernet.create ~engine:e () in
  let send kind size =
    ignore
      (Hw.Ethernet.send n (Hw.Packet.make ~src:0 ~dst:1 ~size ~kind (fun () -> ())))
  in
  send "thread" 512;
  send "thread" 512;
  send "obj" 1000;
  ignore (Sim.Engine.run e);
  Alcotest.(check (list (triple string int int))) "breakdown"
    [ ("obj", 1, 1000); ("thread", 2, 1024) ]
    (Hw.Ethernet.traffic_by_kind n);
  Hw.Ethernet.reset_stats n;
  Alcotest.(check (list (triple string int int))) "reset" []
    (Hw.Ethernet.traffic_by_kind n)

(* Ethernet keeps virtual FIFO order even for different-size packets. *)
let prop_ethernet_fifo =
  QCheck.Test.make ~name:"ethernet delivers in submission order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 2000))
    (fun sizes ->
      let e = Sim.Engine.create () in
      let n = Hw.Ethernet.create ~engine:e () in
      let log = ref [] in
      List.iteri
        (fun i size ->
          ignore
            (Hw.Ethernet.send n
               (Hw.Packet.make ~src:0 ~dst:1 ~size ~kind:"f" (fun () ->
                    log := i :: !log))))
        sizes;
      ignore (Sim.Engine.run e : int);
      List.rev !log = List.init (List.length sizes) Fun.id)

let test_csma_idle_send_like_fifo () =
  let e = Sim.Engine.create () in
  let n = Hw.Ethernet.create ~engine:e ~mac:Hw.Ethernet.Csma_cd () in
  let at = ref 0.0 in
  ignore
    (Hw.Ethernet.send n
       (Hw.Packet.make ~src:0 ~dst:1 ~size:100 ~kind:"x" (fun () ->
            at := Sim.Engine.now e)));
  ignore (Sim.Engine.run e);
  Alcotest.(check (float 1e-9)) "idle medium: normal latency"
    (Hw.Ethernet.tx_time n ~size:100 +. 20e-6)
    !at;
  Alcotest.(check int) "no collisions" 0 (Hw.Ethernet.collisions n)

let test_csma_simultaneous_senders_collide () =
  let e = Sim.Engine.create () in
  let n = Hw.Ethernet.create ~engine:e ~mac:Hw.Ethernet.Csma_cd () in
  let delivered = ref 0 in
  for i = 0 to 3 do
    ignore
      (Hw.Ethernet.send n
         (Hw.Packet.make ~src:i ~dst:9 ~size:200 ~kind:"burst" (fun () ->
              incr delivered)))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "all delivered despite collisions" 4 !delivered;
  Alcotest.(check bool) "collisions happened" true
    (Hw.Ethernet.collisions n > 0);
  Alcotest.(check int) "each counted once" 4 (Hw.Ethernet.packets_sent n)

let test_fifo_never_collides () =
  let e = Sim.Engine.create () in
  let n = Hw.Ethernet.create ~engine:e () in
  for i = 0 to 9 do
    ignore
      (Hw.Ethernet.send n
         (Hw.Packet.make ~src:i ~dst:0 ~size:500 ~kind:"x" (fun () -> ())))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "zero collisions under fifo" 0
    (Hw.Ethernet.collisions n)

(* Conservation under random bursty CSMA/CD load: every packet delivered
   exactly once, in bounded virtual time. *)
let prop_csma_conservation =
  QCheck.Test.make ~name:"CSMA/CD delivers every packet exactly once"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 1 25) (pair (int_range 0 400) (int_range 0 1400)))
    (fun pkts ->
      let e = Sim.Engine.create () in
      let n = Hw.Ethernet.create ~engine:e ~mac:Hw.Ethernet.Csma_cd () in
      let delivered = ref 0 in
      List.iter
        (fun (delay_us, size) ->
          ignore
            (Sim.Engine.schedule e
               ~delay:(float_of_int delay_us *. 1e-6)
               (fun () ->
                 ignore
                   (Hw.Ethernet.send n
                      (Hw.Packet.make ~src:0 ~dst:1 ~size ~kind:"p"
                         (fun () -> incr delivered))))))
        pkts;
      ignore (Sim.Engine.run e : int);
      !delivered = List.length pkts
      && Hw.Ethernet.packets_sent n = List.length pkts)

let test_cluster_runs_under_csma () =
  (* The whole Amber stack works over the collision-prone medium. *)
  let cfg = Amber.Config.make ~nodes:4 ~cpus:2 () in
  let cfg = { cfg with Amber.Config.ether_mac = Hw.Ethernet.Csma_cd } in
  let v =
    Amber.Cluster.run_value cfg (fun rt ->
        let o = Amber.Api.create rt ~name:"o" (ref 0) in
        Amber.Api.move_to rt o ~dest:2;
        let ts =
          List.init 6 (fun i ->
              Amber.Api.start rt ~name:(string_of_int i) (fun () ->
                  for _ = 1 to 5 do
                    Amber.Api.invoke rt o (fun c -> incr c)
                  done))
        in
        List.iter (fun t -> Amber.Api.join rt t) ts;
        !(o.Amber.Aobject.state))
  in
  Alcotest.(check int) "all invocations landed" 30 v

let suite =
  [
    QCheck_alcotest.to_alcotest prop_work_conservation;
    Alcotest.test_case "CSMA idle send" `Quick test_csma_idle_send_like_fifo;
    Alcotest.test_case "CSMA simultaneous senders collide" `Quick
      test_csma_simultaneous_senders_collide;
    Alcotest.test_case "FIFO never collides" `Quick test_fifo_never_collides;
    QCheck_alcotest.to_alcotest prop_csma_conservation;
    Alcotest.test_case "Amber stack over CSMA/CD" `Quick
      test_cluster_runs_under_csma;
    Alcotest.test_case "busy cpus introspection" `Quick
      test_busy_cpus_and_running;
    Alcotest.test_case "spawn priority effective immediately" `Quick
      test_spawn_priority_effective_at_first_dispatch;
    Alcotest.test_case "packet pp and validation" `Quick
      test_packet_pp_and_validation;
    Alcotest.test_case "ethernet traffic by kind" `Quick
      test_ethernet_traffic_by_kind;
    QCheck_alcotest.to_alcotest prop_ethernet_fifo;
  ]
