(* Trace ring buffer behaviour. *)

let emit t time cat msg =
  Sim.Trace.emit t ~time ~category:cat ~detail:(lazy msg)

let test_disabled_by_default () =
  let t = Sim.Trace.create () in
  emit t 1.0 "x" "hello";
  Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.length t)

let test_lazy_detail_not_forced_when_disabled () =
  let t = Sim.Trace.create () in
  let forced = ref false in
  Sim.Trace.emit t ~time:1.0 ~category:"x"
    ~detail:
      (lazy
        (forced := true;
         "expensive"));
  Alcotest.(check bool) "not forced" false !forced

let test_records_in_order () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_enabled t true;
  emit t 1.0 "a" "one";
  emit t 2.0 "b" "two";
  let r = Sim.Trace.records t in
  Alcotest.(check (list string)) "order" [ "one"; "two" ]
    (List.map (fun r -> r.Sim.Trace.detail) r)

let test_ring_wraps () =
  let t = Sim.Trace.create ~capacity:3 () in
  Sim.Trace.set_enabled t true;
  List.iter (fun i -> emit t (float_of_int i) "n" (string_of_int i))
    [ 1; 2; 3; 4; 5 ];
  let r = Sim.Trace.records t in
  Alcotest.(check (list string)) "last three" [ "3"; "4"; "5" ]
    (List.map (fun r -> r.Sim.Trace.detail) r)

let test_by_category () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_enabled t true;
  emit t 1.0 "net" "p1";
  emit t 2.0 "invoke" "i1";
  emit t 3.0 "net" "p2";
  Alcotest.(check int) "two net records" 2
    (List.length (Sim.Trace.by_category t "net"))

let test_clear () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_enabled t true;
  emit t 1.0 "x" "a";
  Sim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.length t)

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "lazy detail not forced when disabled" `Quick
      test_lazy_detail_not_forced_when_disabled;
    Alcotest.test_case "records kept in order" `Quick test_records_in_order;
    Alcotest.test_case "ring buffer wraps" `Quick test_ring_wraps;
    Alcotest.test_case "filter by category" `Quick test_by_category;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
