(* Stats-report capture. *)

module A = Amber

let capture_after body =
  Util.run ~nodes:2 ~cpus:2 (fun rt ->
      body rt;
      A.Stats_report.capture rt)

let test_capture_basics () =
  let r =
    capture_after (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        A.Api.invoke rt o (fun () -> Sim.Fiber.consume 10e-3))
  in
  Alcotest.(check int) "two nodes" 2 (Array.length r.A.Stats_report.nodes);
  Alcotest.(check bool) "elapsed positive" true (r.A.Stats_report.elapsed > 0.0);
  Alcotest.(check bool) "node1 did work" true
    (r.A.Stats_report.nodes.(1).A.Stats_report.cpu_busy > 0.0);
  Alcotest.(check bool) "packets counted" true (r.A.Stats_report.packets > 0);
  Alcotest.(check bool) "net utilization sane" true
    (r.A.Stats_report.net_utilization >= 0.0
    && r.A.Stats_report.net_utilization <= 1.0)

let test_utilization_bounds () =
  let r =
    capture_after (fun rt ->
        let ts =
          List.init 4 (fun _ -> A.Api.start rt (fun () -> Sim.Fiber.consume 20e-3))
        in
        List.iter (fun t -> A.Api.join rt t) ts)
  in
  Array.iter
    (fun n ->
      Alcotest.(check bool) "0 <= util <= 1" true
        (n.A.Stats_report.utilization >= 0.0
        && n.A.Stats_report.utilization <= 1.0))
    r.A.Stats_report.nodes

let test_heap_accounting_visible () =
  let r =
    capture_after (fun rt ->
        for i = 1 to 5 do
          ignore (A.Api.create rt ~name:(string_of_int i) () : unit A.Aobject.t)
        done)
  in
  Alcotest.(check bool) "live objects counted" true
    (r.A.Stats_report.nodes.(0).A.Stats_report.heap_live_blocks >= 5)

let test_pp_does_not_raise () =
  let r = capture_after (fun _rt -> ()) in
  let s = Format.asprintf "%a" A.Stats_report.pp r in
  Alcotest.(check bool) "non-empty output" true (String.length s > 50)

let suite =
  [
    Alcotest.test_case "capture basics" `Quick test_capture_basics;
    Alcotest.test_case "utilization bounded" `Quick test_utilization_bounds;
    Alcotest.test_case "heap accounting" `Quick test_heap_accounting_visible;
    Alcotest.test_case "pretty printer" `Quick test_pp_does_not_raise;
  ]
