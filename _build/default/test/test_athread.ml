(* Amber threads: Start/Join semantics, costs, failure propagation,
   parallelism helpers, priorities. *)

module A = Amber

let test_start_join_result () =
  let v =
    Util.run (fun rt ->
        let t = A.Api.start rt (fun () -> 6 * 7) in
        A.Api.join rt t)
  in
  Alcotest.(check int) "result" 42 v

let test_start_join_cost_table1 () =
  let per_pair =
    Util.run (fun rt ->
        let t0 = A.Api.now rt in
        for _ = 1 to 10 do
          let t = A.Api.start rt (fun () -> ()) in
          A.Api.join rt t
        done;
        (A.Api.now rt -. t0) /. 10.0)
  in
  Alcotest.(check bool) "approx 1.33 ms" true
    (per_pair > 1.1e-3 && per_pair < 1.6e-3)

let test_join_after_completion () =
  let v =
    Util.run (fun rt ->
        let t = A.Api.start rt (fun () -> "done") in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 50e-3;
        A.Api.join rt t)
  in
  Alcotest.(check string) "late join" "done" v

let test_join_propagates_failure () =
  Util.run (fun rt ->
      let t = A.Api.start rt (fun () -> failwith "worker died") in
      Alcotest.check_raises "propagated" (Failure "worker died") (fun () ->
          A.Api.join rt t))

let test_threads_run_concurrently () =
  let elapsed =
    Util.run ~nodes:1 ~cpus:4 (fun rt ->
        let t0 = A.Api.now rt in
        let ts =
          List.init 4 (fun _ -> A.Api.start rt (fun () -> Sim.Fiber.consume 0.1))
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        A.Api.now rt -. t0)
  in
  (* 4x 100 ms on 4 CPUs: wall stays near 100 ms, not 400. *)
  Alcotest.(check bool) "parallel" true (elapsed < 0.15)

let test_more_threads_than_cpus () =
  let elapsed =
    Util.run ~nodes:1 ~cpus:2 (fun rt ->
        let t0 = A.Api.now rt in
        let ts =
          List.init 6 (fun _ -> A.Api.start rt (fun () -> Sim.Fiber.consume 0.1))
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        A.Api.now rt -. t0)
  in
  Alcotest.(check bool) "6x0.1s on 2 cpus ~ 0.3s" true
    (elapsed >= 0.3 && elapsed < 0.35)

let test_start_invoke_runs_at_object () =
  let node =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:2;
        let t = A.Api.start_invoke rt o (fun () -> A.Api.my_node rt) in
        A.Api.join rt t)
  in
  Alcotest.(check int) "ran at object" 2 node

let test_parallel_helper () =
  let vs =
    Util.run (fun rt -> A.Api.parallel rt (List.init 5 (fun i () -> i * i)))
  in
  Alcotest.(check (list int)) "ordered results" [ 0; 1; 4; 9; 16 ] vs

let test_migration_counter () =
  let migrations =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        let t =
          A.Athread.start rt (fun () -> A.Api.invoke rt o (fun () -> ()))
        in
        ignore (A.Athread.join rt t : unit);
        A.Athread.migrations t)
  in
  Alcotest.(check int) "one flight (stays at object)" 1 migrations

let test_join_of_travelled_thread_costs_more () =
  (* §3.4: thread migration is optimized for the thread's own invocations
     "at the expense of invocations made on the thread object itself
     (e.g., a Join)" — the thread object leaves a forwarding chain that
     Join must chase. *)
  let local_join, travelled_join =
    Util.run ~nodes:4 (fun rt ->
        let timed f =
          let t0 = A.Api.now rt in
          f ();
          A.Api.now rt -. t0
        in
        let stay = A.Api.start rt (fun () -> Sim.Fiber.consume 1e-3) in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 20e-3;
        let local_join = timed (fun () -> A.Api.join rt stay) in
        let far = A.Api.create rt ~name:"far" () in
        A.Api.move_to rt far ~dest:3;
        let traveller =
          A.Api.start_invoke rt far (fun () -> Sim.Fiber.consume 1e-3)
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 30e-3;
        let travelled_join = timed (fun () -> A.Api.join rt traveller) in
        (local_join, travelled_join))
  in
  Alcotest.(check bool) "remote join pays the chase" true
    (travelled_join > (2.0 *. local_join) +. 1e-3)

let test_thread_object_descriptor_tracks_thread () =
  Util.run ~nodes:3 (fun rt ->
      let far = A.Api.create rt ~name:"far" () in
      A.Api.move_to rt far ~dest:2;
      let t =
        A.Api.start_invoke rt far (fun () ->
            Sim.Fiber.consume 5e-3;
            A.Api.my_node rt)
      in
      let taddr = (A.Athread.tstate t).A.Runtime.taddr in
      ignore (A.Api.join rt t : int);
      (* The thread object's descriptors form a chain from its creation
         node to where it ended. *)
      Alcotest.(check bool) "resident where it finished" true
        (A.Descriptor.is_resident (A.Runtime.descriptors rt 2) taddr);
      match A.Descriptor.get (A.Runtime.descriptors rt 0) taddr with
      | Some (A.Descriptor.Forwarded _) -> ()
      | _ -> Alcotest.fail "creation node should hold a forwarding address")

let test_priority_scheduling () =
  (* On a 1-CPU node with a priority scheduler, the high-priority thread
     runs before the low-priority one. *)
  let order =
    Util.run ~nodes:1 ~cpus:1 (fun rt ->
        A.Scheduler.install rt ~node:0 A.Scheduler.Priority;
        let log = ref [] in
        let wakers = ref [] in
        let mk name =
          A.Athread.start rt ~name (fun () ->
              (* Park until the test releases both at once. *)
              Sim.Fiber.block (fun w -> wakers := w :: !wakers);
              log := name :: !log)
        in
        let low = mk "low" in
        let high = mk "high" in
        A.Athread.set_priority low 1;
        A.Athread.set_priority high 5;
        (* Let both threads reach their block. *)
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 50e-3;
        (* Release both while the main thread still holds the only CPU:
           they re-enter the ready queue with their priorities set. *)
        List.iter (fun w -> w ()) !wakers;
        ignore (A.Athread.join rt high : unit);
        ignore (A.Athread.join rt low : unit);
        List.rev !log)
  in
  Alcotest.(check (list string)) "high first" [ "high"; "low" ] order

let test_scheduler_name () =
  Util.run (fun rt ->
      Alcotest.(check string) "default" "fifo"
        (A.Scheduler.current rt ~node:0);
      A.Scheduler.install rt ~node:0 A.Scheduler.Lifo;
      Alcotest.(check string) "replaced" "lifo"
        (A.Scheduler.current rt ~node:0))

let suite =
  [
    Alcotest.test_case "start/join result" `Quick test_start_join_result;
    Alcotest.test_case "start/join cost (Table 1)" `Quick
      test_start_join_cost_table1;
    Alcotest.test_case "join after completion" `Quick test_join_after_completion;
    Alcotest.test_case "join propagates failure" `Quick
      test_join_propagates_failure;
    Alcotest.test_case "threads run concurrently" `Quick
      test_threads_run_concurrently;
    Alcotest.test_case "more threads than CPUs" `Quick
      test_more_threads_than_cpus;
    Alcotest.test_case "start_invoke runs at the object" `Quick
      test_start_invoke_runs_at_object;
    Alcotest.test_case "parallel helper" `Quick test_parallel_helper;
    Alcotest.test_case "migration counter" `Quick test_migration_counter;
    Alcotest.test_case "join of travelled thread costs more (§3.4)" `Quick
      test_join_of_travelled_thread_costs_more;
    Alcotest.test_case "thread object descriptors track it" `Quick
      test_thread_object_descriptor_tracks_thread;
    Alcotest.test_case "priority scheduler replacement" `Quick
      test_priority_scheduling;
    Alcotest.test_case "scheduler introspection" `Quick test_scheduler_name;
  ]
