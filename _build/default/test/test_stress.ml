(* Protocol stress: randomized mobility + invocation traffic, checked
   against conservation invariants. *)

module A = Amber

(* Heavy concurrent traffic against one object that keeps moving: no
   increment may be lost and the descriptor map must converge. *)
let test_moving_hot_object () =
  let total, final_node =
    Util.run ~nodes:4 ~cpus:2 (fun rt ->
        let hot = A.Api.create rt ~name:"hot" (ref 0) in
        let invokers =
          List.init 8 (fun i ->
              A.Api.start rt ~name:(Printf.sprintf "inv%d" i) (fun () ->
                  for _ = 1 to 20 do
                    A.Api.invoke rt hot (fun c ->
                        Sim.Fiber.consume 0.2e-3;
                        incr c)
                  done))
        in
        let mover =
          A.Api.start rt ~name:"mover" (fun () ->
              for k = 1 to 12 do
                Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 3e-3;
                A.Api.move_to rt hot ~dest:(k mod 4)
              done)
        in
        List.iter (fun t -> A.Api.join rt t) invokers;
        A.Api.join rt mover;
        (!(hot.A.Aobject.state), A.Api.locate rt hot))
  in
  Alcotest.(check int) "no lost increments" 160 total;
  Alcotest.(check bool) "object settled" true (final_node >= 0 && final_node < 4)

(* Randomized ops from a seeded generator: moves, invokes, locates on a
   family of objects, issued by several threads.  Afterwards the ground
   truth and protocol views must agree for every object. *)
let prop_random_traffic =
  QCheck.Test.make ~name:"random mobility traffic keeps views consistent"
    ~count:15
    QCheck.(int_bound 1000)
    (fun salt ->
      Util.run ~nodes:4 ~cpus:2 (fun rt ->
          let rng = Sim.Rng.make (Int64.of_int (salt + 17)) in
          let objs =
            Array.init 5 (fun i ->
                A.Api.create rt ~name:(Printf.sprintf "o%d" i) (ref 0))
          in
          let expected = Array.make 5 0 in
          let ts =
            List.init 3 (fun w ->
                (* Each worker gets an independent pre-drawn op list so the
                   expected counts are known without racing on the rng. *)
                let ops =
                  List.init 15 (fun _ ->
                      let o = Sim.Rng.int rng 5 in
                      let kind = Sim.Rng.int rng 3 in
                      let dest = Sim.Rng.int rng 4 in
                      (o, kind, dest))
                in
                List.iter
                  (fun (o, kind, _) ->
                    if kind = 0 then expected.(o) <- expected.(o) + 1)
                  ops;
                A.Api.start rt ~name:(Printf.sprintf "w%d" w) (fun () ->
                    List.iter
                      (fun (o, kind, dest) ->
                        match kind with
                        | 0 -> A.Api.invoke rt objs.(o) (fun c -> incr c)
                        | 1 -> A.Api.move_to rt objs.(o) ~dest
                        | _ -> ignore (A.Api.locate rt objs.(o) : int))
                      ops))
          in
          List.iter (fun t -> A.Api.join rt t) ts;
          Array.for_all2
            (fun obj want ->
              let counts_ok = !(obj.A.Aobject.state) = want in
              let loc = obj.A.Aobject.location in
              let resident_ok =
                A.Descriptor.is_resident
                  (A.Runtime.descriptors rt loc)
                  obj.A.Aobject.addr
              in
              (* Protocol resolution agrees with ground truth. *)
              let locate_ok = A.Api.locate rt obj = loc in
              counts_ok && resident_ok && locate_ok)
            objs expected))

(* A deep pipeline of nested invocations across nodes unwinds correctly
   even when every frame's object lives somewhere else. *)
let test_deep_nesting_across_nodes () =
  let result =
    Util.run ~nodes:4 ~cpus:2 (fun rt ->
        let objs =
          Array.init 8 (fun i ->
              let o = A.Api.create rt ~name:(Printf.sprintf "n%d" i) i in
              A.Api.move_to rt o ~dest:(i mod 4);
              o)
        in
        let rec descend i =
          if i >= Array.length objs then 0
          else
            A.Api.invoke rt objs.(i) (fun v -> v + descend (i + 1))
        in
        descend 0)
  in
  Alcotest.(check int) "sum through 8 nested remote frames" 28 result

(* Threads blocked on a condition inside an object that then moves must
   resume correctly at the new location. *)
let test_blocked_threads_follow_moved_sync () =
  let released =
    Util.run ~nodes:3 ~cpus:2 (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let cond = A.Sync.Condition.create rt () in
        let go = ref false in
        let waiters =
          List.init 4 (fun i ->
              A.Api.start rt ~name:(Printf.sprintf "wait%d" i) (fun () ->
                  A.Sync.Lock.acquire rt lock;
                  while not !go do
                    A.Sync.Condition.wait rt cond lock
                  done;
                  A.Sync.Lock.release rt lock;
                  A.Api.my_node rt))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 20e-3;
        (* Move both sync objects while the waiters are parked. *)
        A.Sync.Lock.move rt lock ~dest:2;
        A.Sync.Condition.move rt cond ~dest:2;
        A.Sync.Lock.acquire rt lock;
        go := true;
        A.Sync.Condition.broadcast rt cond;
        A.Sync.Lock.release rt lock;
        List.map (fun t -> A.Api.join rt t) waiters)
  in
  Alcotest.(check int) "all four released" 4 (List.length released)

let test_many_threads_many_objects () =
  (* A load test: 32 threads, 16 objects, heavy mixing; checks global
     conservation and that the run terminates. *)
  let total =
    Util.run ~nodes:8 ~cpus:4 (fun rt ->
        let objs =
          Array.init 16 (fun i ->
              let o = A.Api.create rt ~name:(Printf.sprintf "m%d" i) (ref 0) in
              A.Api.move_to rt o ~dest:(i mod 8);
              o)
        in
        let ts =
          List.init 32 (fun w ->
              A.Api.start rt ~name:(Printf.sprintf "t%d" w) (fun () ->
                  for k = 1 to 10 do
                    let o = objs.((w + (3 * k)) mod 16) in
                    A.Api.invoke rt o (fun c -> incr c)
                  done))
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        Array.fold_left (fun acc o -> acc + !(o.A.Aobject.state)) 0 objs)
  in
  Alcotest.(check int) "all 320 increments landed" 320 total

let suite =
  [
    Alcotest.test_case "moving hot object loses nothing" `Quick
      test_moving_hot_object;
    QCheck_alcotest.to_alcotest prop_random_traffic;
    Alcotest.test_case "deep nesting across nodes" `Quick
      test_deep_nesting_across_nodes;
    Alcotest.test_case "blocked threads follow moved sync objects" `Quick
      test_blocked_threads_follow_moved_sync;
    Alcotest.test_case "32 threads x 16 objects conservation" `Slow
      test_many_threads_many_objects;
  ]
