(* Branch-and-bound TSP: optimality against brute force, work stealing,
   termination, and the centralized baseline. *)

module W = Workloads

let run ?(nodes = 4) ?(cpus = 2) cfg =
  Util.run ~nodes ~cpus (fun rt -> W.Tsp.run rt cfg)

let test_finds_optimum () =
  let cfg = { W.Tsp.default_cfg with W.Tsp.cities = 8 } in
  let r = run cfg in
  Alcotest.(check int) "optimal" (W.Tsp.brute_force cfg) r.W.Tsp.best_cost

let test_tour_is_valid () =
  let cfg = { W.Tsp.default_cfg with W.Tsp.cities = 8 } in
  let r = run cfg in
  let tour = r.W.Tsp.best_tour in
  Alcotest.(check int) "visits every city" cfg.W.Tsp.cities
    (Array.length tour);
  let sorted = Array.copy tour in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init cfg.W.Tsp.cities Fun.id)
    sorted;
  (* Tour cost equals the reported cost. *)
  let d = W.Tsp.instance cfg in
  let cost = ref 0 in
  for i = 0 to Array.length tour - 1 do
    cost := !cost + d.(tour.(i)).(tour.((i + 1) mod Array.length tour))
  done;
  Alcotest.(check int) "cost matches tour" r.W.Tsp.best_cost !cost

let test_centralized_agrees () =
  let cfg = { W.Tsp.default_cfg with W.Tsp.cities = 8 } in
  let distributed = run cfg in
  let central = run { cfg with W.Tsp.centralize = true } in
  Alcotest.(check int) "same optimum" distributed.W.Tsp.best_cost
    central.W.Tsp.best_cost;
  Alcotest.(check int) "no stealing with one pool" 0 central.W.Tsp.steals

let test_stealing_happens () =
  (* All work starts on node 0's pool, so other nodes must steal. *)
  let cfg = { W.Tsp.default_cfg with W.Tsp.cities = 9 } in
  let r = run ~nodes:4 cfg in
  Alcotest.(check bool) "steals occurred" true (r.W.Tsp.steals > 0)

let test_expansion_accounting () =
  let cfg = { W.Tsp.default_cfg with W.Tsp.cities = 7 } in
  let r = run cfg in
  Alcotest.(check bool) "expansions counted" true (r.W.Tsp.expansions > 0);
  Alcotest.(check bool) "pruning happened" true (r.W.Tsp.pruned > 0);
  Alcotest.(check bool) "pruned below expansions" true
    (r.W.Tsp.pruned <= r.W.Tsp.expansions)

let test_single_node_works () =
  let cfg = { W.Tsp.default_cfg with W.Tsp.cities = 7 } in
  let r = run ~nodes:1 ~cpus:4 cfg in
  Alcotest.(check int) "optimal" (W.Tsp.brute_force cfg) r.W.Tsp.best_cost

let test_bad_cfg_rejected () =
  Alcotest.check_raises "too many cities"
    (Invalid_argument "Tsp: cities must be in 3..13") (fun () ->
      ignore (W.Tsp.instance { W.Tsp.default_cfg with W.Tsp.cities = 20 }))

let prop_optimal_across_instances =
  QCheck.Test.make ~name:"parallel B&B optimal on random instances" ~count:8
    QCheck.(pair (int_range 4 8) (int_bound 500))
    (fun (cities, seed) ->
      let cfg = { W.Tsp.default_cfg with W.Tsp.cities; seed } in
      let r = run ~nodes:3 cfg in
      r.W.Tsp.best_cost = W.Tsp.brute_force cfg)

let suite =
  [
    Alcotest.test_case "finds the optimum" `Quick test_finds_optimum;
    Alcotest.test_case "best tour is a valid cycle" `Quick test_tour_is_valid;
    Alcotest.test_case "centralized baseline agrees" `Quick
      test_centralized_agrees;
    Alcotest.test_case "work stealing happens" `Quick test_stealing_happens;
    Alcotest.test_case "expansion accounting" `Quick test_expansion_accounting;
    Alcotest.test_case "single node" `Quick test_single_node_works;
    Alcotest.test_case "bad configuration rejected" `Quick test_bad_cfg_rejected;
    QCheck_alcotest.to_alcotest prop_optimal_across_instances;
  ]
