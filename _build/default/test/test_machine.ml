(* The multiprocessor node model: parallelism, timeslicing, preemption,
   blocking, the on_resume hook, and cross-machine transfer. *)

let make ?(cpus = 2) ?(quantum = 0.1) ?(ctx_switch = 0.0) ?(preempt_cost = 0.0)
    () =
  let e = Sim.Engine.create () in
  let m =
    Hw.Machine.create ~engine:e ~id:0 ~cpus ~ctx_switch ~quantum ~preempt_cost
      ()
  in
  (e, m)

let feq = Alcotest.(check (float 1e-9))

let test_single_thread_consumes () =
  let e, m = make () in
  let t = Hw.Machine.spawn m ~name:"t" (fun () -> Sim.Fiber.consume 1.0) in
  ignore (Sim.Engine.run e);
  feq "virtual time" 1.0 (Sim.Engine.now e);
  feq "thread cpu time" 1.0 (Hw.Machine.cpu_time t)

let test_parallelism_on_p_cpus () =
  (* 4 threads x 1s on 2 CPUs => makespan 2s. *)
  let e, m = make ~cpus:2 () in
  for i = 0 to 3 do
    ignore
      (Hw.Machine.spawn m ~name:(string_of_int i) (fun () ->
           Sim.Fiber.consume 1.0))
  done;
  ignore (Sim.Engine.run e);
  feq "makespan" 2.0 (Sim.Engine.now e);
  feq "busy time" 4.0 (Hw.Machine.total_busy_time m)

let test_timeslicing_interleaves () =
  (* 2 threads, 1 CPU, quantum 0.1: each gets slices; both finish at 2.0,
     and neither finishes before 1.0 could possibly allow. *)
  let e, m = make ~cpus:1 ~quantum:0.1 () in
  let done_at = Array.make 2 0.0 in
  for i = 0 to 1 do
    let t =
      Hw.Machine.spawn m ~name:(string_of_int i) (fun () ->
          Sim.Fiber.consume 1.0)
    in
    Hw.Machine.on_finish t (fun _ -> done_at.(i) <- Sim.Engine.now e)
  done;
  ignore (Sim.Engine.run e);
  feq "total" 2.0 (Sim.Engine.now e);
  (* With timeslicing both threads finish near the end, not one at 1.0. *)
  Alcotest.(check bool) "first did not hog the cpu" true (done_at.(0) > 1.5)

let test_no_preemption_when_alone () =
  let e, m = make ~cpus:1 ~quantum:0.1 () in
  ignore (Hw.Machine.spawn m ~name:"solo" (fun () -> Sim.Fiber.consume 1.0));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "no preemptions" 0 (Hw.Machine.preemption_count m)

let test_yield_round_robin () =
  let e, m = make ~cpus:1 () in
  let log = ref [] in
  for i = 0 to 1 do
    ignore
      (Hw.Machine.spawn m ~name:(string_of_int i) (fun () ->
           for _ = 1 to 3 do
             log := i :: !log;
             Sim.Fiber.yield ()
           done))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check (list int)) "alternation" [ 0; 1; 0; 1; 0; 1 ]
    (List.rev !log)

let test_block_and_wake () =
  let e, m = make () in
  let waker = ref None in
  let t =
    Hw.Machine.spawn m ~name:"sleeper" (fun () ->
        Sim.Fiber.block (fun wake -> waker := Some wake);
        Sim.Fiber.consume 0.5)
  in
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "blocked" true (Hw.Machine.state t = Hw.Machine.Blocked);
  (match !waker with Some w -> w () | None -> Alcotest.fail "no waker");
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "finished" true
    (match Hw.Machine.state t with Hw.Machine.Finished _ -> true | _ -> false)

let test_wake_via_machine_api () =
  let e, m = make () in
  let t =
    Hw.Machine.spawn m ~name:"s" (fun () -> Sim.Fiber.block (fun _ -> ()))
  in
  ignore (Sim.Engine.run e);
  Hw.Machine.wake t;
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "done" true
    (match Hw.Machine.state t with Hw.Machine.Finished _ -> true | _ -> false)

let test_ctx_switch_charged () =
  let e, m = make ~cpus:1 ~ctx_switch:0.01 () in
  ignore (Hw.Machine.spawn m ~name:"t" (fun () -> Sim.Fiber.consume 1.0));
  ignore (Sim.Engine.run e);
  feq "dispatch cost added" 1.01 (Sim.Engine.now e)

let test_preempt_all () =
  let e, m = make ~cpus:2 ~quantum:10.0 ~preempt_cost:0.05 () in
  ignore (Hw.Machine.spawn m ~name:"a" (fun () -> Sim.Fiber.consume 1.0));
  ignore (Hw.Machine.spawn m ~name:"b" (fun () -> Sim.Fiber.consume 1.0));
  ignore (Sim.Engine.run ~until:0.5 e);
  let n = Hw.Machine.preempt_all m in
  Alcotest.(check int) "both preempted" 2 n;
  ignore (Sim.Engine.run e);
  (* Each thread: 1.0 of work + 0.05 preempt penalty. *)
  feq "work conserved with penalty" 2.1 (Hw.Machine.total_busy_time m)

let test_preempt_all_except () =
  let e, m = make ~cpus:2 ~quantum:10.0 () in
  let a = Hw.Machine.spawn m ~name:"a" (fun () -> Sim.Fiber.consume 1.0) in
  ignore (Hw.Machine.spawn m ~name:"b" (fun () -> Sim.Fiber.consume 1.0));
  ignore (Sim.Engine.run ~until:0.5 e);
  let n = Hw.Machine.preempt_all ~except:a m in
  Alcotest.(check int) "one preempted" 1 n;
  ignore (Sim.Engine.run e)

let test_on_resume_hook_runs () =
  let e, m = make ~cpus:1 () in
  let hook_calls = ref 0 in
  let t = Hw.Machine.spawn m ~name:"h" (fun () -> Sim.Fiber.consume 0.2) in
  Hw.Machine.set_on_resume t
    (Some
       (fun _ ->
         incr hook_calls;
         true));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "hook ran once (single dispatch)" 1 !hook_calls

let test_on_resume_hook_can_divert () =
  (* Hook parks the thread on its first dispatch; we then wake it and let
     it run. *)
  let e, m = make ~cpus:1 () in
  let diverted = ref false in
  let ran = ref false in
  let t = Hw.Machine.spawn m ~name:"d" (fun () -> ran := true) in
  Hw.Machine.set_on_resume t
    (Some
       (fun tcb ->
         if !diverted then true
         else begin
           diverted := true;
           Hw.Machine.park tcb;
           false
         end));
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "not yet run" false !ran;
  Alcotest.(check bool) "parked" true (Hw.Machine.state t = Hw.Machine.Blocked);
  Hw.Machine.wake t;
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "ran after wake" true !ran

let test_transfer () =
  let e = Sim.Engine.create () in
  let m0 = Hw.Machine.create ~engine:e ~id:0 ~cpus:1 () in
  let m1 = Hw.Machine.create ~engine:e ~id:1 ~cpus:1 () in
  let where = ref (-1) in
  let t =
    Hw.Machine.spawn m0 ~name:"mover" (fun () ->
        Sim.Fiber.block (fun _ -> ());
        Sim.Fiber.consume 0.1)
  in
  Hw.Machine.on_finish t (fun _ -> where := Hw.Machine.id (Hw.Machine.home t));
  ignore (Sim.Engine.run e);
  Hw.Machine.transfer t ~dest:m1;
  Hw.Machine.wake t;
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "finished on node 1" 1 !where;
  Alcotest.(check bool) "work charged to m1" true
    (Hw.Machine.total_busy_time m1 > 0.0)

let test_transfer_running_rejected () =
  let e, m = make () in
  let t = Hw.Machine.spawn m ~name:"r" (fun () -> Sim.Fiber.consume 1.0) in
  ignore (Sim.Engine.run ~until:0.5 e);
  Alcotest.check_raises "running"
    (Invalid_argument "Machine.transfer: thread must be blocked") (fun () ->
      Hw.Machine.transfer t ~dest:m)

let test_failure_recorded () =
  let e, m = make () in
  ignore (Hw.Machine.spawn m ~name:"f" (fun () -> failwith "dead"));
  ignore (Sim.Engine.run e);
  match Hw.Machine.failures m with
  | [ (_, Failure msg) ] when msg = "dead" -> ()
  | _ -> Alcotest.fail "expected one failure"

let test_set_policy_drains () =
  let e, m = make ~cpus:1 () in
  let log = ref [] in
  (* Fill the queue while the cpu is busy. *)
  ignore (Hw.Machine.spawn m ~name:"busy" (fun () -> Sim.Fiber.consume 1.0));
  ignore (Sim.Engine.run ~until:0.1 e);
  for i = 0 to 2 do
    ignore (Hw.Machine.spawn m ~name:(string_of_int i) (fun () -> log := i :: !log))
  done;
  Hw.Machine.set_policy m (Hw.Sched_policy.lifo ());
  Alcotest.(check string) "policy name" "lifo" (Hw.Machine.policy_name m);
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "all ran" 3 (List.length !log)

let test_pending_work () =
  let e, m = make ~cpus:1 () in
  let t = Hw.Machine.spawn m ~name:"p" (fun () -> Sim.Fiber.block (fun _ -> ())) in
  ignore (Sim.Engine.run e);
  Hw.Machine.add_pending_work t 0.3;
  Hw.Machine.wake t;
  ignore (Sim.Engine.run e);
  feq "pending work charged" 0.3 (Hw.Machine.cpu_time t)

let suite =
  [
    Alcotest.test_case "single thread consumes" `Quick
      test_single_thread_consumes;
    Alcotest.test_case "P-way parallelism" `Quick test_parallelism_on_p_cpus;
    Alcotest.test_case "timeslicing interleaves" `Quick
      test_timeslicing_interleaves;
    Alcotest.test_case "no preemption when alone" `Quick
      test_no_preemption_when_alone;
    Alcotest.test_case "yield round-robin" `Quick test_yield_round_robin;
    Alcotest.test_case "block and wake" `Quick test_block_and_wake;
    Alcotest.test_case "machine wake API" `Quick test_wake_via_machine_api;
    Alcotest.test_case "context-switch cost" `Quick test_ctx_switch_charged;
    Alcotest.test_case "preempt_all conserves work" `Quick test_preempt_all;
    Alcotest.test_case "preempt_all except" `Quick test_preempt_all_except;
    Alcotest.test_case "on_resume hook runs" `Quick test_on_resume_hook_runs;
    Alcotest.test_case "on_resume hook can divert" `Quick
      test_on_resume_hook_can_divert;
    Alcotest.test_case "transfer re-homes a thread" `Quick test_transfer;
    Alcotest.test_case "transfer of running thread rejected" `Quick
      test_transfer_running_rejected;
    Alcotest.test_case "failures recorded" `Quick test_failure_recorded;
    Alcotest.test_case "policy replacement drains queue" `Quick
      test_set_policy_drains;
    Alcotest.test_case "pending work charged before resume" `Quick
      test_pending_work;
  ]
