(* Tests for the discrete-event engine: clock advance, ordering,
   cancellation, run horizons. *)

let test_clock_starts_at_zero () =
  let e = Sim.Engine.create () in
  Alcotest.(check (float 0.0)) "t=0" 0.0 (Sim.Engine.now e)

let test_events_run_in_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Sim.Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log));
  let n = Sim.Engine.run e in
  Alcotest.(check int) "three events" 3 n;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 3.0 (Sim.Engine.now e)

let test_same_time_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check (list int)) "fifo" (List.init 10 Fun.id) (List.rev !log)

let test_events_can_schedule_events () =
  let e = Sim.Engine.create () in
  let fired = ref 0.0 in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         ignore
           (Sim.Engine.schedule e ~delay:1.5 (fun () ->
                fired := Sim.Engine.now e))));
  ignore (Sim.Engine.run e);
  Alcotest.(check (float 1e-12)) "nested time" 2.5 !fired

let test_cancel () =
  let e = Sim.Engine.create () in
  let ran = ref false in
  let id = Sim.Engine.schedule e ~delay:1.0 (fun () -> ran := true) in
  Alcotest.(check bool) "pending" true (Sim.Engine.is_pending e id);
  Sim.Engine.cancel e id;
  Alcotest.(check bool) "not pending" false (Sim.Engine.is_pending e id);
  ignore (Sim.Engine.run e);
  Alcotest.(check bool) "cancelled did not run" false !ran

let test_cancel_twice_is_noop () =
  let e = Sim.Engine.create () in
  let id = Sim.Engine.schedule e ~delay:1.0 (fun () -> ()) in
  Sim.Engine.cancel e id;
  Sim.Engine.cancel e id;
  ignore (Sim.Engine.run e)

let test_run_until () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.Engine.schedule e ~delay:5.0 (fun () -> log := 5 :: !log));
  let n = Sim.Engine.run ~until:2.0 e in
  Alcotest.(check int) "only first" 1 n;
  Alcotest.(check (float 0.0)) "clock parked at horizon" 2.0 (Sim.Engine.now e);
  let n2 = Sim.Engine.run e in
  Alcotest.(check int) "rest run" 1 n2;
  Alcotest.(check (list int)) "both" [ 5; 1 ] !log

let test_step () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "one step" true (Sim.Engine.step e);
  Alcotest.(check bool) "empty" false (Sim.Engine.step e)

let test_negative_delay_rejected () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule: negative or NaN delay") (fun () ->
      ignore (Sim.Engine.schedule e ~delay:(-1.0) (fun () -> ())))

let test_schedule_in_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:5.0 (fun () -> ()));
  ignore (Sim.Engine.run e);
  Alcotest.check_raises "past"
    (Invalid_argument "Engine.schedule_at: time 1 is before now 5") (fun () ->
      ignore (Sim.Engine.schedule_at e ~time:1.0 (fun () -> ())))

let test_exception_propagates () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> failwith "boom"));
  Alcotest.check_raises "exn" (Failure "boom") (fun () ->
      ignore (Sim.Engine.run e))

let test_executed_counter () =
  let e = Sim.Engine.create () in
  for _ = 1 to 7 do
    ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> ()))
  done;
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "counter" 7 (Sim.Engine.events_executed e)

let suite =
  [
    Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
    Alcotest.test_case "events run in time order" `Quick test_events_run_in_order;
    Alcotest.test_case "same-time events run FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "events schedule events" `Quick
      test_events_can_schedule_events;
    Alcotest.test_case "cancel prevents execution" `Quick test_cancel;
    Alcotest.test_case "double cancel is no-op" `Quick test_cancel_twice_is_noop;
    Alcotest.test_case "run ~until leaves later events" `Quick test_run_until;
    Alcotest.test_case "single stepping" `Quick test_step;
    Alcotest.test_case "negative delay rejected" `Quick
      test_negative_delay_rejected;
    Alcotest.test_case "scheduling in the past rejected" `Quick
      test_schedule_in_past_rejected;
    Alcotest.test_case "event exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "executed counter" `Quick test_executed_counter;
  ]
