(* Distributed arrays over the Amber primitives. *)

module A = Amber

let mk rt ?chunks ?placement len =
  A.Darray.create rt ?chunks ?placement ~name:"arr" ~len (fun i -> i * 10)

let test_create_and_distribution () =
  Util.run ~nodes:4 (fun rt ->
      let a = mk rt 100 in
      Alcotest.(check int) "length" 100 (A.Darray.length a);
      Alcotest.(check int) "one chunk per node" 4 (A.Darray.chunk_count a);
      (* Blocked placement: quartiles on successive nodes. *)
      Alcotest.(check int) "first quarter" 0 (A.Darray.node_of_index a 10);
      Alcotest.(check int) "last quarter" 3 (A.Darray.node_of_index a 99))

let test_get_set_routing () =
  Util.run ~nodes:3 (fun rt ->
      let a = mk rt 30 in
      Alcotest.(check int) "initial" 250 (A.Darray.get rt a 25);
      A.Darray.set rt a 25 999;
      Alcotest.(check int) "after set" 999 (A.Darray.get rt a 25);
      (* Other elements untouched. *)
      Alcotest.(check int) "neighbor" 240 (A.Darray.get rt a 24))

let test_get_costs_more_remotely () =
  Util.run ~nodes:2 (fun rt ->
      let a = mk rt 20 in
      (* Element 1 is on node 0 (local to main); element 19 on node 1. *)
      let time f =
        let t0 = A.Api.now rt in
        f ();
        A.Api.now rt -. t0
      in
      let local = time (fun () -> ignore (A.Darray.get rt a 1 : int)) in
      let remote = time (fun () -> ignore (A.Darray.get rt a 19 : int)) in
      Alcotest.(check bool) "remote access pays function shipping" true
        (remote > 100.0 *. local))

let test_map_in_place () =
  Util.run ~nodes:4 (fun rt ->
      let a = mk rt 50 in
      A.Darray.map_in_place rt a (fun i x -> x + i);
      Alcotest.(check int) "mapped" (70 + 7) (A.Darray.get rt a 7))

let test_fold_matches_sequential () =
  Util.run ~nodes:4 (fun rt ->
      let a = mk rt 63 in
      let sum =
        A.Darray.fold rt a ~init:0 ~f:(fun acc x -> acc + x)
          ~combine:( + )
      in
      let want = Array.fold_left ( + ) 0 (Array.init 63 (fun i -> i * 10)) in
      Alcotest.(check int) "sum" want sum)

let test_fold_runs_in_parallel () =
  (* With per-element cost c and one chunk per node, the fold should take
     about len/nodes * c, not len * c. *)
  let elapsed =
    Util.run ~nodes:4 ~cpus:2 (fun rt ->
        let a = mk rt 400 in
        let t0 = A.Api.now rt in
        ignore
          (A.Darray.fold rt ~cost_per_elt:1e-3 a ~init:0
             ~f:(fun acc x -> acc + x)
             ~combine:( + )
            : int);
        A.Api.now rt -. t0)
  in
  (* Sequential would be 0.4 s; 4-way parallel ~0.1 s plus messaging. *)
  Alcotest.(check bool) "parallel speedup" true (elapsed < 0.2)

let test_to_array () =
  Util.run ~nodes:3 (fun rt ->
      let a = mk rt 31 in
      A.Darray.map_in_place rt a (fun i _ -> i);
      Alcotest.(check (array int)) "gathered" (Array.init 31 Fun.id)
        (A.Darray.to_array rt a))

let test_redistribute () =
  Util.run ~nodes:4 (fun rt ->
      let a = mk rt 40 in
      A.Darray.redistribute rt a (A.Placement.pinned ~node:2);
      Alcotest.(check int) "all on node 2 (first)" 2
        (A.Darray.node_of_index a 0);
      Alcotest.(check int) "all on node 2 (last)" 2
        (A.Darray.node_of_index a 39);
      (* Values survive the moves. *)
      Alcotest.(check int) "intact" 390 (A.Darray.get rt a 39))

let test_bounds_checked () =
  Util.run ~nodes:2 (fun rt ->
      let a = mk rt 10 in
      Alcotest.check_raises "oob" (Invalid_argument "Darray: index out of bounds")
        (fun () -> ignore (A.Darray.get rt a 10 : int)))

let prop_chunking_covers_indices =
  QCheck.Test.make ~name:"every index maps into exactly one chunk" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 1 16))
    (fun (len, chunks) ->
      let chunks = min chunks len in
      Util.run ~nodes:2 (fun rt ->
          let a =
            A.Darray.create rt ~chunks ~name:"p" ~len (fun i -> i)
          in
          let ok = ref true in
          for i = 0 to len - 1 do
            if A.Darray.get rt a i <> i then ok := false
          done;
          !ok))

let suite =
  [
    Alcotest.test_case "creation and distribution" `Quick
      test_create_and_distribution;
    Alcotest.test_case "get/set routing" `Quick test_get_set_routing;
    Alcotest.test_case "remote access pays shipping" `Quick
      test_get_costs_more_remotely;
    Alcotest.test_case "map_in_place" `Quick test_map_in_place;
    Alcotest.test_case "fold matches sequential" `Quick
      test_fold_matches_sequential;
    Alcotest.test_case "fold parallelizes" `Quick test_fold_runs_in_parallel;
    Alcotest.test_case "to_array gathers" `Quick test_to_array;
    Alcotest.test_case "redistribute" `Quick test_redistribute;
    Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
    QCheck_alcotest.to_alcotest prop_chunking_covers_indices;
  ]
