(* Additional Ivy coverage: page-table mechanics, DSM barrier, process
   interplay with the DSM, costs. *)

let test_page_table_initial_state () =
  let t = Ivy.Page_table.create ~node:1 ~pages:4 ~initial_owner:(fun p -> p) in
  Alcotest.(check int) "node" 1 (Ivy.Page_table.node t);
  Alcotest.(check int) "pages" 4 (Ivy.Page_table.pages t);
  let own = Ivy.Page_table.entry t 1 in
  Alcotest.(check bool) "owns its page" true own.Ivy.Page_table.is_owner;
  Alcotest.(check bool) "write access" true
    (own.Ivy.Page_table.access = Ivy.Page_table.Write);
  let other = Ivy.Page_table.entry t 2 in
  Alcotest.(check bool) "no access elsewhere" true
    (other.Ivy.Page_table.access = Ivy.Page_table.No_access);
  Alcotest.(check int) "hint points at owner" 2
    other.Ivy.Page_table.prob_owner

let test_page_table_range_check () =
  let t = Ivy.Page_table.create ~node:0 ~pages:2 ~initial_owner:(fun _ -> 0) in
  Alcotest.check_raises "range"
    (Invalid_argument "Page_table.entry: page out of range") (fun () ->
      ignore (Ivy.Page_table.entry t 5))

let test_entry_lock_serializes () =
  (* Two fibers contend for the same entry lock; the second waits. *)
  let e = Sim.Engine.create () in
  let m = Hw.Machine.create ~engine:e ~id:0 ~cpus:2 () in
  let task = Topaz.Task.create ~machine:m () in
  let t = Ivy.Page_table.create ~node:0 ~pages:1 ~initial_owner:(fun _ -> 0) in
  let entry = Ivy.Page_table.entry t 0 in
  let log = ref [] in
  let worker name =
    ignore
      (Topaz.Task.spawn task ~name (fun () ->
           Ivy.Page_table.lock_entry entry;
           log := (name ^ "-in") :: !log;
           Sim.Fiber.consume 0.01;
           log := (name ^ "-out") :: !log;
           Ivy.Page_table.unlock_entry entry))
  in
  worker "a";
  worker "b";
  ignore (Sim.Engine.run e);
  Alcotest.(check (list string)) "no interleaving"
    [ "a-in"; "a-out"; "b-in"; "b-out" ]
    (List.rev !log)

let test_dsm_barrier () =
  let generations =
    Util.run ~nodes:2 (fun rt ->
        let dsm = Ivy.Dsm.create rt ~pages:1 () in
        let barrier = ref None in
        Ivy.Process.join
          (Ivy.Process.spawn rt ~node:0 ~name:"init" (fun () ->
               barrier := Some (Ivy.Sync_dsm.Barrier.create dsm ~addr:0 ~parties:2)));
        let barrier = Option.get !barrier in
        let log = ref [] in
        let procs =
          List.init 2 (fun node ->
              Ivy.Process.spawn rt ~node ~name:(string_of_int node) (fun () ->
                  for round = 1 to 3 do
                    Sim.Fiber.consume (float_of_int (node + 1) *. 1e-3);
                    Ivy.Sync_dsm.Barrier.pass barrier;
                    log := (node, round) :: !log
                  done))
        in
        List.iter (fun p -> Ivy.Process.join p) procs;
        (* Rounds must be properly nested: nobody reaches round r+1 before
           everyone finished round r. *)
        let events = List.rev !log in
        let ok = ref true in
        let seen = Array.make 2 0 in
        List.iter
          (fun (node, round) ->
            seen.(node) <- round;
            if abs (seen.(0) - seen.(1)) > 1 then ok := false)
          events;
        if not !ok then Alcotest.fail "barrier rounds interleaved";
        3)
  in
  Alcotest.(check int) "three rounds" 3 generations

let test_migrated_process_accesses_locally () =
  (* A process that migrates to the data's node stops faulting — the
     function-shipping escape hatch of §4.1. *)
  Util.run ~nodes:2 (fun rt ->
      let dsm = Ivy.Dsm.create rt ~pages:1 ~initial_owner:(fun _ -> 1) () in
      let p =
        Ivy.Process.spawn rt ~node:0 ~name:"mover" (fun () ->
            Ivy.Process.migrate rt ~dest:1 ();
            for i = 0 to 9 do
              Ivy.Dsm.write_u8 dsm i (i * 2)
            done)
      in
      Ivy.Process.join p;
      let st = Ivy.Dsm.stats dsm in
      Alcotest.(check int) "no faults after migrating to the data" 0
        (st.Ivy.Dsm.read_faults + st.Ivy.Dsm.write_faults))

let test_costs_default_sane () =
  let c = Ivy.Costs.default in
  Alcotest.(check bool) "fault trap positive" true (c.Ivy.Costs.fault_trap_cpu > 0.0);
  Alcotest.(check bool) "request smaller than a page" true
    (c.Ivy.Costs.request_bytes < 1024)

let test_dsm_rejects_bad_page () =
  Util.run ~nodes:2 (fun rt ->
      let dsm = Ivy.Dsm.create rt ~pages:1 () in
      Ivy.Process.join
        (Ivy.Process.spawn rt ~node:0 ~name:"oops" (fun () ->
             match Ivy.Dsm.read_u8 dsm 99999 with
             | _ -> Alcotest.fail "expected range error"
             | exception Invalid_argument _ -> ())))

let suite =
  [
    Alcotest.test_case "page table initial state" `Quick
      test_page_table_initial_state;
    Alcotest.test_case "page table range check" `Quick
      test_page_table_range_check;
    Alcotest.test_case "entry lock serializes" `Quick test_entry_lock_serializes;
    Alcotest.test_case "DSM sense-reversing barrier" `Quick test_dsm_barrier;
    Alcotest.test_case "migrated process accesses locally" `Quick
      test_migrated_process_accesses_locally;
    Alcotest.test_case "default costs sane" `Quick test_costs_default_sane;
    Alcotest.test_case "out-of-range access rejected" `Quick
      test_dsm_rejects_bad_page;
  ]
