(* Ivy DSM: protocol unit tests plus a coherence oracle property. *)

module A = Amber

let with_dsm ?(nodes = 4) ?(pages = 8) body =
  Util.run ~nodes (fun rt ->
      let dsm = Ivy.Dsm.create rt ~pages () in
      body rt dsm)

(* Run [f] as a process pinned to [node] and wait for it. *)
let on_node rt node f =
  let p = Ivy.Process.spawn rt ~node ~name:"probe" f in
  Ivy.Process.join p

let test_initial_ownership () =
  with_dsm (fun _rt dsm ->
      (* Default distribution is round-robin. *)
      Alcotest.(check int) "page 0" 0 (Ivy.Dsm.owner_of dsm 0);
      Alcotest.(check int) "page 1" 1 (Ivy.Dsm.owner_of dsm 1);
      Alcotest.(check int) "page 5" 1 (Ivy.Dsm.owner_of dsm 5))

let test_owner_write_is_free () =
  with_dsm (fun rt dsm ->
      on_node rt 1 (fun () ->
          (* Page 1 belongs to node 1: no faults. *)
          Ivy.Dsm.write_f64 dsm 1024 3.5;
          Alcotest.(check (float 0.0)) "read back" 3.5
            (Ivy.Dsm.read_f64 dsm 1024));
      let st = Ivy.Dsm.stats dsm in
      Alcotest.(check int) "no faults" 0
        (st.Ivy.Dsm.read_faults + st.Ivy.Dsm.write_faults))

let test_read_fault_copies_page () =
  with_dsm (fun rt dsm ->
      on_node rt 1 (fun () -> Ivy.Dsm.write_f64 dsm 1024 7.25);
      on_node rt 2 (fun () ->
          Alcotest.(check (float 0.0)) "remote read sees the data" 7.25
            (Ivy.Dsm.read_f64 dsm 1024));
      let st = Ivy.Dsm.stats dsm in
      Alcotest.(check int) "one read fault" 1 st.Ivy.Dsm.read_faults;
      Alcotest.(check int) "one transfer" 1 st.Ivy.Dsm.page_transfers;
      (* Both nodes hold the page now. *)
      Alcotest.(check bool) "reader has a copy" true
        (List.mem 2 (Ivy.Dsm.holders dsm 1));
      Alcotest.(check int) "owner unchanged" 1 (Ivy.Dsm.owner_of dsm 1))

let test_write_fault_transfers_ownership () =
  with_dsm (fun rt dsm ->
      on_node rt 1 (fun () -> Ivy.Dsm.write_f64 dsm 1024 1.0);
      on_node rt 3 (fun () -> Ivy.Dsm.write_f64 dsm 1032 2.0);
      Alcotest.(check int) "ownership moved" 3 (Ivy.Dsm.owner_of dsm 1);
      (* Old owner's copy is gone. *)
      Alcotest.(check bool) "old owner invalidated" false
        (List.mem 1 (Ivy.Dsm.holders dsm 1));
      on_node rt 3 (fun () ->
          Alcotest.(check (float 0.0)) "new owner sees old data" 1.0
            (Ivy.Dsm.read_f64 dsm 1024)))

let test_write_invalidates_readers () =
  with_dsm (fun rt dsm ->
      on_node rt 1 (fun () -> Ivy.Dsm.write_f64 dsm 1024 1.0);
      on_node rt 0 (fun () -> ignore (Ivy.Dsm.read_f64 dsm 1024 : float));
      on_node rt 2 (fun () -> ignore (Ivy.Dsm.read_f64 dsm 1024 : float));
      Alcotest.(check int) "three holders" 3
        (List.length (Ivy.Dsm.holders dsm 1));
      on_node rt 3 (fun () -> Ivy.Dsm.write_f64 dsm 1024 9.0);
      Alcotest.(check (list int)) "only the writer remains" [ 3 ]
        (Ivy.Dsm.holders dsm 1);
      let st = Ivy.Dsm.stats dsm in
      Alcotest.(check bool) "invalidations sent" true
        (st.Ivy.Dsm.invalidations >= 2);
      on_node rt 0 (fun () ->
          Alcotest.(check (float 0.0)) "readers refault and see new value" 9.0
            (Ivy.Dsm.read_f64 dsm 1024)))

let test_owner_upgrade () =
  with_dsm (fun rt dsm ->
      on_node rt 1 (fun () -> Ivy.Dsm.write_f64 dsm 1024 1.0);
      on_node rt 2 (fun () -> ignore (Ivy.Dsm.read_f64 dsm 1024 : float));
      (* Owner writes again: upgrade in place, reader invalidated. *)
      on_node rt 1 (fun () -> Ivy.Dsm.write_f64 dsm 1024 2.0);
      let st = Ivy.Dsm.stats dsm in
      Alcotest.(check int) "upgrade counted" 1 st.Ivy.Dsm.upgrades;
      Alcotest.(check int) "owner still 1" 1 (Ivy.Dsm.owner_of dsm 1);
      Alcotest.(check (list int)) "reader gone" [ 1 ] (Ivy.Dsm.holders dsm 1))

let test_owner_chain_chased () =
  with_dsm (fun rt dsm ->
      (* Bounce ownership around, then access from a node with stale
         hints. *)
      on_node rt 1 (fun () -> Ivy.Dsm.write_f64 dsm 0 1.0);
      on_node rt 2 (fun () -> Ivy.Dsm.write_f64 dsm 0 2.0);
      on_node rt 3 (fun () -> Ivy.Dsm.write_f64 dsm 0 3.0);
      on_node rt 1 (fun () ->
          Alcotest.(check (float 0.0)) "found through chain" 3.0
            (Ivy.Dsm.read_f64 dsm 0));
      let st = Ivy.Dsm.stats dsm in
      Alcotest.(check bool) "hints were chased" true
        (st.Ivy.Dsm.forward_hops >= 1))

let test_faults_cost_time () =
  with_dsm (fun rt dsm ->
      let elapsed =
        on_node rt 2 (fun () ->
            let e = A.Runtime.engine rt in
            let t0 = Sim.Engine.now e in
            ignore (Ivy.Dsm.read_f64 dsm 1024 : float);
            Sim.Engine.now e -. t0)
      in
      Alcotest.(check bool) "multi-ms fault" true (elapsed > 1e-3))

(* Coherence oracle: arbitrary interleavings of writes and reads from
   arbitrary nodes, executed sequentially, must behave like one flat
   array. *)
let prop_coherence =
  QCheck.Test.make ~name:"DSM linearizes to a flat memory" ~count:30
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (triple (int_bound 3) (int_bound 31) (option (int_bound 255))))
    (fun ops ->
      let result =
        Util.run ~nodes:4 (fun rt ->
            let dsm = Ivy.Dsm.create rt ~pages:4 () in
            let model = Array.make 32 0 in
            let ok = ref true in
            List.iter
              (fun (node, slot, write) ->
                on_node rt node (fun () ->
                    let addr = slot * 8 in
                    match write with
                    | Some v ->
                      Ivy.Dsm.write_u8 dsm addr v;
                      model.(slot) <- v
                    | None ->
                      if Ivy.Dsm.read_u8 dsm addr <> model.(slot) then
                        ok := false))
              ops;
            !ok)
      in
      result)

(* Exactly one owner per page, always, after arbitrary traffic. *)
let prop_single_owner =
  QCheck.Test.make ~name:"single owner invariant" ~count:20
    QCheck.(
      list_of_size (Gen.int_range 1 30)
        (triple (int_bound 3) (int_bound 3) bool))
    (fun ops ->
      Util.run ~nodes:4 (fun rt ->
          let dsm = Ivy.Dsm.create rt ~pages:4 () in
          List.iter
            (fun (node, page, is_write) ->
              on_node rt node (fun () ->
                  let addr = page * Ivy.Dsm.page_size dsm in
                  if is_write then Ivy.Dsm.write_u8 dsm addr 1
                  else ignore (Ivy.Dsm.read_u8 dsm addr : int)))
            ops;
          List.for_all
            (fun page ->
              match Ivy.Dsm.owner_of dsm page with
              | _ -> true
              | exception Failure _ -> false)
            [ 0; 1; 2; 3 ]))

let test_fixed_manager_basics () =
  Util.run ~nodes:4 (fun rt ->
      let dsm = Ivy.Dsm.create rt ~manager:Ivy.Dsm.Fixed ~pages:8 () in
      on_node rt 1 (fun () -> Ivy.Dsm.write_f64 dsm 0 1.0);
      on_node rt 2 (fun () -> Ivy.Dsm.write_f64 dsm 0 2.0);
      on_node rt 3 (fun () ->
          Alcotest.(check (float 0.0)) "reads latest" 2.0
            (Ivy.Dsm.read_f64 dsm 0));
      let st = Ivy.Dsm.stats dsm in
      Alcotest.(check bool) "manager consulted" true
        (st.Ivy.Dsm.manager_lookups >= 3);
      Alcotest.(check int) "owner settled" 2 (Ivy.Dsm.owner_of dsm 0))

let prop_fixed_manager_coherence =
  QCheck.Test.make ~name:"fixed-manager DSM linearizes too" ~count:15
    QCheck.(
      list_of_size (Gen.int_range 1 30)
        (triple (int_bound 3) (int_bound 15) (option (int_bound 255))))
    (fun ops ->
      Util.run ~nodes:4 (fun rt ->
          let dsm = Ivy.Dsm.create rt ~manager:Ivy.Dsm.Fixed ~pages:2 () in
          let model = Array.make 16 0 in
          let ok = ref true in
          List.iter
            (fun (node, slot, write) ->
              on_node rt node (fun () ->
                  let addr = slot * 8 in
                  match write with
                  | Some v ->
                    Ivy.Dsm.write_u8 dsm addr v;
                    model.(slot) <- v
                  | None ->
                    if Ivy.Dsm.read_u8 dsm addr <> model.(slot) then
                      ok := false))
            ops;
          !ok))

let test_sync_rpc_lock () =
  let peak =
    Util.run ~nodes:3 (fun rt ->
        let lock = Ivy.Sync_rpc.Lock.create rt ~home:0 in
        let inside = ref 0 and peak = ref 0 in
        let procs =
          List.init 3 (fun node ->
              Ivy.Process.spawn rt ~node ~name:(string_of_int node) (fun () ->
                  for _ = 1 to 3 do
                    Ivy.Sync_rpc.Lock.with_lock lock (fun () ->
                        incr inside;
                        if !inside > !peak then peak := !inside;
                        Sim.Fiber.consume 1e-3;
                        decr inside)
                  done))
        in
        List.iter (fun p -> Ivy.Process.join p) procs;
        !peak)
  in
  Alcotest.(check int) "rpc lock excludes" 1 peak

let test_sync_rpc_barrier () =
  let after =
    Util.run ~nodes:3 (fun rt ->
        let b = Ivy.Sync_rpc.Barrier.create rt ~home:0 ~parties:3 in
        let released = ref 0 in
        let procs =
          List.init 3 (fun node ->
              Ivy.Process.spawn rt ~node ~name:(string_of_int node) (fun () ->
                  Sim.Fiber.consume (float_of_int node *. 1e-3);
                  Ivy.Sync_rpc.Barrier.pass b;
                  incr released))
        in
        List.iter (fun p -> Ivy.Process.join p) procs;
        !released)
  in
  Alcotest.(check int) "all released" 3 after

let test_sync_dsm_lock_thrashes () =
  let transfers, peak =
    Util.run ~nodes:2 (fun rt ->
        let dsm = Ivy.Dsm.create rt ~pages:1 () in
        let lock = ref None in
        (* Create the lock from node 0 (owner of page 0). *)
        on_node rt 0 (fun () ->
            lock := Some (Ivy.Sync_dsm.Lock.create dsm ~addr:0));
        let lock = Option.get !lock in
        let inside = ref 0 and peak = ref 0 in
        let procs =
          List.init 2 (fun node ->
              Ivy.Process.spawn rt ~node ~name:(string_of_int node) (fun () ->
                  for _ = 1 to 4 do
                    Ivy.Sync_dsm.Lock.with_lock lock (fun () ->
                        incr inside;
                        if !inside > !peak then peak := !inside;
                        Sim.Fiber.consume 1e-3;
                        decr inside);
                    (* Think time between sections, so both nodes keep
                       contending and the lock page ping-pongs. *)
                    Sim.Fiber.consume 3e-3
                  done))
        in
        List.iter (fun p -> Ivy.Process.join p) procs;
        ((Ivy.Dsm.stats dsm).Ivy.Dsm.page_transfers, !peak))
  in
  Alcotest.(check int) "still a correct lock" 1 peak;
  (* The whole point: the lock page ping-pongs. *)
  Alcotest.(check bool) "page ping-pong" true (transfers >= 6)

let test_process_migrate () =
  let nodes_seen =
    Util.run ~nodes:3 (fun rt ->
        let p =
          Ivy.Process.spawn rt ~node:0 ~name:"nomad" (fun () ->
              let a = Hw.Machine.id (Hw.Machine.self_machine ()) in
              Ivy.Process.migrate rt ~dest:2 ();
              let b = Hw.Machine.id (Hw.Machine.self_machine ()) in
              (a, b))
        in
        Ivy.Process.join p)
  in
  Alcotest.(check (pair int int)) "explicit migration" (0, 2) nodes_seen

let suite =
  [
    Alcotest.test_case "initial ownership" `Quick test_initial_ownership;
    Alcotest.test_case "owner access is free" `Quick test_owner_write_is_free;
    Alcotest.test_case "read fault copies the page" `Quick
      test_read_fault_copies_page;
    Alcotest.test_case "write fault transfers ownership" `Quick
      test_write_fault_transfers_ownership;
    Alcotest.test_case "writes invalidate readers" `Quick
      test_write_invalidates_readers;
    Alcotest.test_case "owner upgrade" `Quick test_owner_upgrade;
    Alcotest.test_case "owner chain chased" `Quick test_owner_chain_chased;
    Alcotest.test_case "faults cost virtual time" `Quick test_faults_cost_time;
    QCheck_alcotest.to_alcotest prop_coherence;
    QCheck_alcotest.to_alcotest prop_single_owner;
    Alcotest.test_case "fixed manager basics" `Quick
      test_fixed_manager_basics;
    QCheck_alcotest.to_alcotest prop_fixed_manager_coherence;
    Alcotest.test_case "RPC lock" `Quick test_sync_rpc_lock;
    Alcotest.test_case "RPC barrier" `Quick test_sync_rpc_barrier;
    Alcotest.test_case "DSM lock thrashes (§4.1)" `Quick
      test_sync_dsm_lock_thrashes;
    Alcotest.test_case "explicit process migration" `Quick test_process_migrate;
  ]
