examples/darray_stats.ml: Amber Api Array Darray Float Printf Runtime Sim
