examples/work_queue_demo.ml: Amber Array Format Printf Workloads
