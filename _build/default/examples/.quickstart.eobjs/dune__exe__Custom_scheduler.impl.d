examples/custom_scheduler.ml: Amber Api Athread Hw List Printf Runtime Scheduler Sim Topaz
