examples/quickstart.mli:
