examples/sor_demo.ml: Amber List Printf Workloads
