examples/pipeline.mli:
