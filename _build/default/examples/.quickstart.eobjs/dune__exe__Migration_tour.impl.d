examples/migration_tour.ml: Amber Aobject Api List Printf Sim String
