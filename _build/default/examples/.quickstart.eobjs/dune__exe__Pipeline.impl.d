examples/pipeline.ml: Amber Api Cluster List Printf Queue Runtime Sim Sync
