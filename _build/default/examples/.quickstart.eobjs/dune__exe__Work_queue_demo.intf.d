examples/work_queue_demo.mli:
