examples/darray_stats.mli:
