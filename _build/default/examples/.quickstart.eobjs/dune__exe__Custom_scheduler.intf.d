examples/custom_scheduler.mli:
