examples/quickstart.ml: Amber Api Cluster Format List Printf Sync
