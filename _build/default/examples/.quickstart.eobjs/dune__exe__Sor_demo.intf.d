examples/sor_demo.mli:
