examples/matmul_demo.ml: Amber Float List Printf Workloads
