examples/migration_tour.mli:
