(* Replacing the system scheduler at runtime (paper §2.1):

   "An application can install a custom scheduling discipline at runtime
   by replacing the system scheduler object with a similar object that
   supports the same interface but behaves differently."

   Here a latency-sensitive "control" thread shares one node with batch
   compute threads; installing a priority discipline mid-run cuts its
   response time by an order of magnitude.  The example also installs a
   fully custom (user-written) shortest-priority-first policy via
   [Scheduler.install_custom].

   Run with:  dune exec examples/custom_scheduler.exe *)

open Amber

let batch_threads = 4
let probes = 8

(* Launch batch load, then measure how long a high-priority probe waits
   for the CPU. *)
let measure rt =
  let batch =
    List.init batch_threads (fun i ->
        Api.start rt ~name:(Printf.sprintf "batch%d" i) (fun () ->
            for _ = 1 to 30 do
              Sim.Fiber.consume 10e-3
            done))
  in
  let total = ref 0.0 in
  for _ = 1 to probes do
    Topaz.Kthread.sleep ~engine:(Runtime.engine rt) 25e-3;
    let born = Api.now rt in
    let probe =
      Athread.start rt ~name:"control" ~priority:10 (fun () ->
          Sim.Fiber.consume 1e-3;
          Api.now rt -. born)
    in
    total := !total +. Api.join rt probe
  done;
  List.iter (fun t -> Api.join rt t) batch;
  !total /. float_of_int probes

let () =
  let run policy label =
    let cfg = Api.config ~nodes:1 ~cpus:2 () in
    let mean, _ =
      Api.run cfg (fun rt ->
          (match policy with
          | `Builtin p -> Scheduler.install rt ~node:0 p
          | `Custom ->
            (* A user-defined discipline: highest priority first, and
               among equals, the thread that has consumed the least CPU so
               far (fair to newcomers). *)
            Scheduler.install_custom rt ~node:0
              (Hw.Sched_policy.by_priority
                 ~priority_of:(fun tcb ->
                   (Hw.Machine.priority tcb * 1000)
                   - int_of_float (Hw.Machine.cpu_time tcb *. 10.0))
                 ()));
          measure rt)
    in
    Printf.printf "%-34s mean control-thread latency %6.2f ms\n" label
      (mean *. 1e3)
  in
  run (`Builtin Scheduler.Fifo) "default FIFO scheduler:";
  run (`Builtin Scheduler.Priority) "priority scheduler installed:";
  run `Custom "custom least-served-first policy:"
