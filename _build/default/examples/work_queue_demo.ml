(* A distributed work queue: one hot shared object, workers on every node
   pulling batches through remote invocations, and a mid-run re-placement
   of the queue object while threads are actively invoking it.

   Run with:  dune exec examples/work_queue_demo.exe *)

let () =
  let cluster = Amber.Config.make ~nodes:4 ~cpus:4 () in
  let cfg =
    {
      Workloads.Work_queue.items = 400;
      work_cpu = 10e-3;
      batch = 8;
      workers_per_node = 3;
      move_queue_at = Some 150;
    }
  in
  let r, report =
    Amber.Cluster.run cluster (fun rt -> Workloads.Work_queue.run rt cfg)
  in
  Printf.printf "processed %d/%d items in %.3f virtual seconds\n"
    r.Workloads.Work_queue.processed cfg.Workloads.Work_queue.items
    r.Workloads.Work_queue.elapsed;
  Array.iteri
    (fun node count -> Printf.printf "  node %d processed %d items\n" node count)
    r.Workloads.Work_queue.per_node;
  Printf.printf
    "queue finished on node %d (moved mid-run from node 0 while %d threads \
     were hammering it)\n"
    r.Workloads.Work_queue.queue_final_node
    (4 * cfg.Workloads.Work_queue.workers_per_node);
  Format.printf "%a@." Amber.Cluster.pp_report report
