(* A tour of the mobility machinery from §2.3 and §3.3–3.5:

   - forwarding chains: an object that hops around the cluster leaves a
     trail of forwarding addresses; a stale caller chases the whole chain
     once, then everyone's descriptors are short-circuited;
   - attachment: objects wired together move as one;
   - immutability: MoveTo on a frozen object replicates instead of moving;
   - bound threads: a thread executing inside a moving object follows it.

   Run with:  dune exec examples/migration_tour.exe *)

open Amber

let () =
  let cfg = Api.config ~nodes:6 ~cpus:2 () in
  let (), _ =
    Api.run cfg (fun rt ->
        (* 1. Forwarding chains.  The moves are performed from node 1 (by
           a thread anchored there), so node 0's descriptor goes stale and
           the first locate has to chase the whole chain. *)
        let ball = Api.create rt ~name:"ball" ~size:256 () in
        let anchor = Api.create rt ~name:"anchor" ~size:64 () in
        Api.move_to rt anchor ~dest:1;
        let mover =
          Api.start_invoke rt ~name:"mover" anchor (fun () ->
              List.iter (fun dest -> Api.move_to rt ball ~dest) [ 1; 2; 3; 4; 5 ])
        in
        Api.join rt mover;
        let t0 = Api.now rt in
        let loc = Api.locate rt ball in
        Printf.printf
          "ball is on node %d; first locate chased the chain in %.2f ms\n" loc
          ((Api.now rt -. t0) *. 1e3);
        let t1 = Api.now rt in
        let _ = Api.locate rt ball in
        Printf.printf "second locate (chain compressed)     took %.2f ms\n"
          ((Api.now rt -. t1) *. 1e3);

        (* 2. Attachment: a record and its index move together. *)
        let record = Api.create rt ~name:"record" ~size:4096 () in
        let index = Api.create rt ~name:"index" ~size:512 () in
        Api.attach rt ~parent:record ~child:index;
        Api.move_to rt record ~dest:3;
        Printf.printf "record on node %d, attached index on node %d\n"
          (Api.locate rt record) (Api.locate rt index);

        (* 3. Immutability: MoveTo replicates. *)
        let table = Api.create rt ~name:"lookup-table" ~size:2048 () in
        Api.set_immutable rt table;
        Api.move_to rt table ~dest:1;
        Api.move_to rt table ~dest:4;
        Printf.printf "lookup-table master on node %d, replicas on [%s]\n"
          table.Aobject.location
          (String.concat "; "
             (List.map string_of_int table.Aobject.replicas));

        (* 4. Bound-thread migration: a thread busy inside an object is
           dragged along when the object moves. *)
        let room = Api.create rt ~name:"room" ~size:128 (ref 0) in
        let busy =
          Api.start rt ~name:"busy" (fun () ->
              Api.invoke rt room (fun n ->
                  for _ = 1 to 40 do
                    Sim.Fiber.consume 2e-3;
                    incr n
                  done;
                  Api.my_node rt))
        in
        Sim.Fiber.consume 20e-3;
        Api.move_to rt room ~dest:5;
        let finished_on = Api.join rt busy in
        Printf.printf
          "busy thread started on node 0, finished its operation on node %d \
           (room moved mid-invocation, count=%d)\n"
          finished_on
          !(room.Aobject.state))
  in
  ()
