(* A three-stage pipeline across the cluster, built from monitors and
   condition variables (§2.2): producers on node 0 parse records, a
   bounded buffer hands them to transformers on node 1, a second buffer
   feeds a writer on node 2.

   The bounded buffer is a single Amber object guarded by a monitor; its
   threads block *at the buffer's node* when it is full/empty, and the
   buffers are explicitly placed to put each stage's data next to its
   consumers.

   Run with:  dune exec examples/pipeline.exe *)

open Amber

type 'a buffer = {
  capacity : int;
  items : 'a Queue.t;
  monitor : Sync.Monitor.t;
  not_full : Sync.Condition.t;
  not_empty : Sync.Condition.t;
}

let make_buffer rt ~capacity ~node =
  let monitor = Sync.Monitor.create rt ~name:"buf.monitor" () in
  let buf =
    {
      capacity;
      items = Queue.create ();
      monitor;
      not_full = Sync.Monitor.new_condition rt monitor;
      not_empty = Sync.Monitor.new_condition rt monitor;
    }
  in
  (* Place the buffer's synchronization next to its consumer: waiting
     threads then block on the consumer's node. *)
  Sync.Monitor.move rt buf.monitor ~dest:node;
  Sync.Condition.move rt buf.not_full ~dest:node;
  Sync.Condition.move rt buf.not_empty ~dest:node;
  buf

let put rt b x =
  Sync.Monitor.with_monitor rt b.monitor (fun () ->
      while Queue.length b.items >= b.capacity do
        Sync.Monitor.wait rt b.monitor b.not_full
      done;
      Queue.add x b.items;
      Sync.Monitor.signal rt b.not_empty)

let take rt b =
  Sync.Monitor.with_monitor rt b.monitor (fun () ->
      while Queue.is_empty b.items do
        Sync.Monitor.wait rt b.monitor b.not_empty
      done;
      let x = Queue.pop b.items in
      Sync.Monitor.signal rt b.not_full;
      x)

let () =
  let records = 40 in
  let cfg = Api.config ~nodes:3 ~cpus:2 () in
  let written, report =
    Api.run cfg (fun rt ->
        let parsed = make_buffer rt ~capacity:4 ~node:1 in
        let transformed = make_buffer rt ~capacity:4 ~node:2 in
        (* Anchors pin each stage's computation to its node. *)
        let anchor node =
          let a = Api.create rt ~name:(Printf.sprintf "stage%d" node) () in
          if node <> 0 then Api.move_to rt a ~dest:node;
          a
        in
        let parser_anchor = anchor 0
        and transform_anchor = anchor 1
        and writer_anchor = anchor 2 in
        let producer =
          Api.start_invoke rt ~name:"parser" parser_anchor (fun () ->
              for i = 1 to records do
                Sim.Fiber.consume 2e-3 (* parse *);
                put rt parsed i
              done;
              put rt parsed (-1) (* end marker *))
        in
        let transformer =
          Api.start_invoke rt ~name:"transformer" transform_anchor (fun () ->
              let rec loop () =
                let x = take rt parsed in
                if x >= 0 then begin
                  Sim.Fiber.consume 3e-3 (* transform *);
                  put rt transformed (x * x);
                  loop ()
                end
                else put rt transformed (-1)
              in
              loop ())
        in
        let writer =
          Api.start_invoke rt ~name:"writer" writer_anchor (fun () ->
              let count = ref 0 and sum = ref 0 in
              let rec loop () =
                let x = take rt transformed in
                if x >= 0 then begin
                  Sim.Fiber.consume 1e-3 (* write *);
                  incr count;
                  sum := !sum + x;
                  loop ()
                end
              in
              loop ();
              (!count, !sum))
        in
        Api.join rt producer;
        Api.join rt transformer;
        Api.join rt writer)
  in
  let count, sum = written in
  Printf.printf "pipeline wrote %d records (checksum %d, expected %d)\n" count
    sum
    (List.fold_left (fun acc i -> acc + (i * i)) 0 (List.init records succ));
  Printf.printf "virtual time: %.3f s; %d remote invocations\n"
    report.Cluster.elapsed
    report.Cluster.counters.Runtime.remote_invocations
