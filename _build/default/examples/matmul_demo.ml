(* Blocked matrix multiply with immutable-object replication: A and B are
   frozen and copied to every node, so operand reads are local; the
   non-replicated variant ships every operand band over the network.

   Run with:  dune exec examples/matmul_demo.exe *)

let () =
  let cluster = Amber.Config.make ~nodes:4 ~cpus:4 () in
  let cfg = { Workloads.Matmul.default_cfg with Workloads.Matmul.n = 96; block = 24 } in
  let want = Workloads.Matmul.reference_checksum cfg in
  let close a b = Float.abs (a -. b) <= 1e-6 *. Float.abs b in
  List.iter
    (fun replicate ->
      let r, _ =
        Amber.Cluster.run cluster (fun rt ->
            Workloads.Matmul.run rt { cfg with Workloads.Matmul.replicate })
      in
      Printf.printf
        "replicate=%-5b elapsed=%.3fs remote-invocations=%-4d copies=%-2d %s\n%!"
        replicate r.Workloads.Matmul.elapsed
        r.Workloads.Matmul.remote_invocations r.Workloads.Matmul.copies
        (if close r.Workloads.Matmul.checksum want then "(correct)"
         else "(WRONG RESULT)"))
    [ true; false ]
