(* The paper's §6 application at demo scale: Red/Black SOR over a grid of
   sections distributed across the cluster, with edge exchange overlapped
   with computation.  Prints a mini version of Figure 2.

   Run with:  dune exec examples/sor_demo.exe *)

let () =
  let p =
    Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:60
      ~cols:400
  in
  let iters = 10 in
  let seq = Workloads.Sor_seq.predicted_elapsed p ~iters in
  Printf.printf "grid %dx%d (%d points), %d iterations\n" p.Workloads.Sor_core.rows
    p.Workloads.Sor_core.cols
    (Workloads.Sor_core.interior_points p)
    iters;
  Printf.printf "sequential (1 CPU): %.2f virtual seconds\n\n" seq;
  Printf.printf "%-8s %-10s %-10s %s\n" "config" "elapsed" "speedup" "remote-invocations";
  List.iter
    (fun (nodes, cpus) ->
      let cfg = Amber.Config.make ~nodes ~cpus () in
      let r, _ =
        Amber.Cluster.run cfg (fun rt ->
            Workloads.Sor_amber.run rt p ~iters ())
      in
      Printf.printf "%dNx%dP   %8.3fs  %8.2fx  %d\n%!" nodes cpus
        r.Workloads.Sor_amber.compute_elapsed
        (seq /. r.Workloads.Sor_amber.compute_elapsed)
        r.Workloads.Sor_amber.remote_invocations)
    [ (1, 1); (1, 4); (2, 2); (2, 4); (4, 4); (8, 4) ];
  (* Correctness: identical to the sequential grid. *)
  let want =
    Workloads.Sor_core.Full_grid.checksum (Workloads.Sor_core.reference p ~iters)
  in
  let cfg = Amber.Config.make ~nodes:4 ~cpus:2 () in
  let r, _ =
    Amber.Cluster.run cfg (fun rt -> Workloads.Sor_amber.run rt p ~iters ())
  in
  Printf.printf "\nchecksum check: %s\n"
    (if r.Workloads.Sor_amber.checksum = want then "bit-identical to sequential"
     else "MISMATCH")
