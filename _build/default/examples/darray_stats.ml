(* Distributed data-parallel statistics with Amber.Darray: a sensor trace
   is spread over the cluster as chunk objects; normalization and the
   statistics run as one thread per chunk, at the chunk — computation goes
   to the data, and only the tiny partial results cross the network.

   Run with:  dune exec examples/darray_stats.exe *)

open Amber

let readings = 100_000
let per_element_cpu = 2e-6 (* a couple of FP ops per reading *)

let () =
  let cfg = Api.config ~nodes:8 ~cpus:4 () in
  let (), _ =
    Api.run cfg (fun rt ->
        (* A synthetic day of sensor data, deterministic from the seed. *)
        let rng = Sim.Rng.split (Sim.Engine.rng (Runtime.engine rt)) in
        let raw = Array.init readings (fun _ -> Sim.Rng.uniform rng ~lo:(-40.0) ~hi:85.0) in
        let arr =
          Darray.create rt ~name:"sensors" ~len:readings (fun i -> raw.(i))
        in
        Printf.printf "distributed %d readings over %d chunks\n" readings
          (Darray.chunk_count arr);

        (* Pass 1: min/max in parallel. *)
        let t0 = Api.now rt in
        let lo, hi =
          Darray.fold rt ~cost_per_elt:per_element_cpu arr
            ~init:(Float.infinity, Float.neg_infinity)
            ~f:(fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
            ~combine:(fun (a, b) (c, d) -> (Float.min a c, Float.max b d))
        in
        Printf.printf "range [%.2f, %.2f] in %.1f virtual ms\n" lo hi
          ((Api.now rt -. t0) *. 1e3);

        (* Pass 2: normalize to [0,1] in place, where the data lives. *)
        let t1 = Api.now rt in
        Darray.map_in_place rt ~cost_per_elt:per_element_cpu arr
          (fun _ x -> (x -. lo) /. (hi -. lo));
        Printf.printf "normalized in %.1f virtual ms\n"
          ((Api.now rt -. t1) *. 1e3);

        (* Pass 3: mean of the normalized data. *)
        let t2 = Api.now rt in
        let sum =
          Darray.fold rt ~cost_per_elt:per_element_cpu arr ~init:0.0
            ~f:( +. ) ~combine:( +. )
        in
        Printf.printf "mean %.4f in %.1f virtual ms\n"
          (sum /. float_of_int readings)
          ((Api.now rt -. t2) *. 1e3);

        (* The sequential cost of one pass would be readings × per-element
           = 200 ms; with 8 nodes the passes above should be ~25 ms plus
           messaging. *)
        ())
  in
  ()
