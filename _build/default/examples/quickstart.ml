(* Quickstart: the Amber programming model in one page.

   A 4-node × 2-CPU cluster; a shared counter object that we place
   explicitly; threads that invoke it from everywhere; a mobile lock.

   Run with:  dune exec examples/quickstart.exe *)

open Amber

let () =
  let cfg = Api.config ~nodes:4 ~cpus:2 () in
  let (), report =
    Api.run cfg (fun rt ->
        (* Objects are created on the calling thread's node (node 0)... *)
        let counter = Api.create rt ~name:"counter" ~size:64 (ref 0) in
        Printf.printf "counter created on node %d\n" (Api.locate rt counter);

        (* ... and placed explicitly: data placement is program-controlled. *)
        Api.move_to rt counter ~dest:2;
        Printf.printf "counter moved to node %d\n" (Api.locate rt counter);

        (* A mobile lock guards it (locks are objects too). *)
        let lock = Sync.Lock.create rt ~name:"counter-lock" () in
        Sync.Lock.move rt lock ~dest:2;

        (* Threads: Start/Join.  Invoking the counter ships the thread to
           node 2 (function shipping); it stays there for the follow-up
           invocations, so only the first one pays the network. *)
        let workers =
          List.init 8 (fun i ->
              Api.start rt ~name:(Printf.sprintf "worker-%d" i) (fun () ->
                  for _ = 1 to 25 do
                    Sync.Lock.with_lock rt lock (fun () ->
                        Api.invoke rt counter (fun c -> incr c))
                  done))
        in
        List.iter (fun t -> Api.join rt t) workers;

        let total = Api.invoke rt counter (fun c -> !c) in
        Printf.printf "final count: %d (expected 200)\n" total;
        Printf.printf "virtual time elapsed: %.3f ms\n" (Api.now rt *. 1e3))
  in
  Format.printf "run report: %a@." Cluster.pp_report report
