#!/usr/bin/env python3
"""Validate an exported Chrome trace-event JSON span trace.

Checks:
  1. the file parses as JSON and has a non-empty traceEvents array;
  2. every synchronous span's interval nests within its parent's interval
     (spans exported with args.async are causally linked wire flights and
     one-way-post handlers that legitimately outlive their origin);
  3. every remote-invoke span has a net-flight descendant (the wire leg
     that carried the invocation).

Exit 0 on success, 1 on any violation.
"""

import json
import sys

# ts/dur are printed with microsecond %.3f precision, so a child's rounded
# endpoint can exceed its parent's by a few nanoseconds.
EPS_US = 0.01


def main(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    spans = {}
    for e in events:
        if e.get("ph") == "X":
            sid = e["args"]["span"]
            spans[sid] = {
                "id": sid,
                "parent": e["args"]["parent"],
                "async": e["args"].get("async", False),
                "t0": e["ts"],
                "t1": e["ts"] + e["dur"],
                "name": e["name"],
                "cat": e.get("cat", ""),
            }
    if not spans:
        print("no spans in trace", file=sys.stderr)
        return 1

    bad = 0
    children = {}
    for s in spans.values():
        children.setdefault(s["parent"], []).append(s["id"])
        p = spans.get(s["parent"])
        if p is None or s["async"]:
            continue
        if s["t0"] < p["t0"] - EPS_US or s["t1"] > p["t1"] + EPS_US:
            print(
                f"span {s['id']} ({s['name']}) [{s['t0']:.3f},{s['t1']:.3f}] "
                f"escapes parent {p['id']} ({p['name']}) "
                f"[{p['t0']:.3f},{p['t1']:.3f}]",
                file=sys.stderr,
            )
            bad += 1

    def has_net_descendant(sid):
        stack = list(children.get(sid, []))
        while stack:
            c = stack.pop()
            if spans[c]["cat"] == "net":
                return True
            stack.extend(children.get(c, []))
        return False

    remotes = [s for s in spans.values() if s["name"].startswith("invoke.remote")]
    for s in remotes:
        if not has_net_descendant(s["id"]):
            print(
                f"remote invoke span {s['id']} has no net-flight descendant",
                file=sys.stderr,
            )
            bad += 1

    print(
        f"checked {len(spans)} spans ({len(remotes)} remote invokes): "
        + ("OK" if bad == 0 else f"{bad} violations")
    )
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "trace.json"))
