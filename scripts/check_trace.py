#!/usr/bin/env python3
"""Validate an exported Chrome trace-event JSON span trace.

Checks:
  1. the file parses as JSON and has a non-empty traceEvents array;
  2. every synchronous span's interval nests within its parent's interval
     (spans exported with args.async are causally linked wire flights and
     one-way-post handlers that legitimately outlive their origin);
  3. every remote-invoke span has a net-flight descendant (the wire leg
     that carried the invocation);
  4. span balance: no span is exported still open (args.open means a
     finish is missing on some code path);
  5. async parentage: an async span naming a parent must name one that
     exists and opened first (it may close first — that is what async
     means; parent 0 is a genuinely top-level operation);
  6. flow arrows pair up: every "s" (flow start) event has exactly one
     matching "f" (flow finish) with the same id, and vice versa;
  7. counter ("C") events, when present, are well formed: numeric
     timestamp, a single numeric args value, and per-(pid, name) track
     timestamps strictly increase (the watch tick samples each series
     at most once per instant).

A second mode validates flight-recorder postmortems:

    check_trace.py --postmortem DUMP.json [VICTIM_NODE]

requires the typed failure header, a non-empty trailing trace window
that ends no later than the failure time, and (when VICTIM_NODE is
given) that every span belongs to the victim or is cluster-scoped.

Exit 0 on success, 1 on any violation.
"""

import json
import sys

# ts/dur are printed with microsecond %.3f precision, so a child's rounded
# endpoint can exceed its parent's by a few nanoseconds.
EPS_US = 0.01


def main(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    spans = {}
    flow_starts = {}
    flow_finishes = {}
    counters = {}
    counter_bad = 0
    for e in events:
        if e.get("ph") == "C":
            track = (e.get("pid"), e.get("name"))
            ts = e.get("ts")
            args = e.get("args", {})
            if not isinstance(ts, (int, float)):
                print(f"counter {track}: non-numeric ts {ts!r}", file=sys.stderr)
                counter_bad += 1
                continue
            if len(args) != 1 or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                print(
                    f"counter {track}: want one numeric args value, got {args!r}",
                    file=sys.stderr,
                )
                counter_bad += 1
                continue
            prev = counters.get(track)
            if prev is not None and ts <= prev:
                print(
                    f"counter {track}: ts {ts:.3f} not after previous "
                    f"{prev:.3f}",
                    file=sys.stderr,
                )
                counter_bad += 1
            counters[track] = ts
        elif e.get("ph") == "X":
            sid = e["args"]["span"]
            spans[sid] = {
                "id": sid,
                "parent": e["args"]["parent"],
                "async": e["args"].get("async", False),
                "open": e["args"].get("open", False),
                "t0": e["ts"],
                "t1": e["ts"] + e["dur"],
                "name": e["name"],
                "cat": e.get("cat", ""),
            }
        elif e.get("ph") == "s":
            flow_starts[e["id"]] = flow_starts.get(e["id"], 0) + 1
        elif e.get("ph") == "f":
            flow_finishes[e["id"]] = flow_finishes.get(e["id"], 0) + 1
    if not spans:
        print("no spans in trace", file=sys.stderr)
        return 1

    bad = 0
    children = {}
    for s in spans.values():
        children.setdefault(s["parent"], []).append(s["id"])
        if s["open"]:
            print(
                f"span {s['id']} ({s['name']}) opened at {s['t0']:.3f} "
                "and never closed",
                file=sys.stderr,
            )
            bad += 1
        if s["async"]:
            if s["parent"] != 0:
                p = spans.get(s["parent"])
                if p is None:
                    print(
                        f"async span {s['id']} ({s['name']}) names missing "
                        f"parent {s['parent']}",
                        file=sys.stderr,
                    )
                    bad += 1
                elif p["t0"] > s["t0"] + EPS_US:
                    print(
                        f"async span {s['id']} ({s['name']}) opened at "
                        f"{s['t0']:.3f} before its parent {p['id']} "
                        f"({p['name']}) opened at {p['t0']:.3f}",
                        file=sys.stderr,
                    )
                    bad += 1
            continue
        p = spans.get(s["parent"])
        if p is None:
            continue
        if s["t0"] < p["t0"] - EPS_US or s["t1"] > p["t1"] + EPS_US:
            print(
                f"span {s['id']} ({s['name']}) [{s['t0']:.3f},{s['t1']:.3f}] "
                f"escapes parent {p['id']} ({p['name']}) "
                f"[{p['t0']:.3f},{p['t1']:.3f}]",
                file=sys.stderr,
            )
            bad += 1

    for fid, n in sorted(flow_starts.items()):
        m = flow_finishes.get(fid, 0)
        if n != 1 or m != 1:
            print(
                f"flow arrow {fid}: {n} start(s), {m} finish(es) "
                "(want exactly one of each)",
                file=sys.stderr,
            )
            bad += 1
    for fid, m in sorted(flow_finishes.items()):
        if fid not in flow_starts:
            print(
                f"flow arrow {fid}: finish without a start", file=sys.stderr
            )
            bad += 1

    def has_net_descendant(sid):
        stack = list(children.get(sid, []))
        while stack:
            c = stack.pop()
            if spans[c]["cat"] == "net":
                return True
            stack.extend(children.get(c, []))
        return False

    remotes = [s for s in spans.values() if s["name"].startswith("invoke.remote")]
    for s in remotes:
        if not has_net_descendant(s["id"]):
            print(
                f"remote invoke span {s['id']} has no net-flight descendant",
                file=sys.stderr,
            )
            bad += 1

    bad += counter_bad
    print(
        f"checked {len(spans)} spans ({len(remotes)} remote invokes, "
        f"{len(flow_starts)} flow arrows, {len(counters)} counter tracks): "
        + ("OK" if bad == 0 else f"{bad} violations")
    )
    return 1 if bad else 0


def check_postmortem(path, victim=None):
    with open(path) as f:
        doc = json.load(f)
    bad = 0
    pm = doc.get("postmortem")
    if not isinstance(pm, dict):
        print("missing postmortem header", file=sys.stderr)
        return 1
    for field, kind in (
        ("kind", str),
        ("node", int),
        ("time", (int, float)),
        ("detail", str),
        ("window_s", (int, float)),
    ):
        if not isinstance(pm.get(field), kind):
            print(f"postmortem header: bad {field}: {pm.get(field)!r}",
                  file=sys.stderr)
            bad += 1
    t_fail = pm.get("time", 0.0)
    window = pm.get("window_s", 0.0)
    trace = doc.get("trace", [])
    if not trace:
        print("postmortem has an empty trailing trace window", file=sys.stderr)
        bad += 1
    for r in trace:
        t = r.get("time", 0.0)
        if t > t_fail + 1e-9 or t < t_fail - window - 1e-9:
            print(
                f"trace record at {t:.6f} outside the trailing window "
                f"[{t_fail - window:.6f}, {t_fail:.6f}]",
                file=sys.stderr,
            )
            bad += 1
    spans = doc.get("spans", [])
    if victim is not None:
        for s in spans:
            if s.get("node") not in (victim, -1):
                print(
                    f"span {s.get('id')} belongs to node {s.get('node')}, "
                    f"not victim {victim}",
                    file=sys.stderr,
                )
                bad += 1
    print(
        f"checked postmortem {pm.get('kind')}@node{pm.get('node')}: "
        f"{len(trace)} trace records, {len(spans)} spans: "
        + ("OK" if bad == 0 else f"{bad} violations")
    )
    return 1 if bad else 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    if argv and argv[0] == "--postmortem":
        victim = int(argv[2]) if len(argv) > 2 else None
        sys.exit(check_postmortem(argv[1], victim))
    sys.exit(main(argv[0] if argv else "trace.json"))
