(* Amber-Scope: span collection, critical-path analysis and exporters. *)

module A = Amber

let sor_params =
  Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16 ~cols:64

(* One profiled SOR run shared by the inspection tests below. *)
let profiled =
  lazy
    (let cfg = A.Config.make ~nodes:3 ~cpus:2 ~seed:11L () in
     let box = ref None in
     A.Cluster.run_value cfg (fun rt ->
         let prof = Scope.Profile.attach rt in
         ignore
           (Workloads.Sor_amber.run rt sor_params ~iters:2 ()
             : Workloads.Sor_amber.result);
         Scope.Profile.seal prof;
         box := Some prof);
     Option.get !box)

let test_disabled_records_nothing () =
  let cfg = A.Config.make ~nodes:3 ~cpus:2 ~seed:11L () in
  let count = ref (-1) in
  A.Cluster.run_value cfg (fun rt ->
      ignore
        (Workloads.Sor_amber.run rt sor_params ~iters:2 ()
          : Workloads.Sor_amber.result);
      count := Sim.Span.count (A.Runtime.spans rt));
  Alcotest.(check int) "no spans without attach" 0 !count

let test_ids_dense_and_ordered () =
  let prof = Lazy.force profiled in
  let spans = Scope.Profile.spans prof in
  Alcotest.(check bool) "collected something" true (List.length spans > 50);
  List.iteri
    (fun i (s : Sim.Span.span) ->
      Alcotest.(check int) "dense 1-based ids" (i + 1) s.id)
    spans;
  ignore
    (List.fold_left
       (fun prev (s : Sim.Span.span) ->
         if s.t0 < prev then Alcotest.fail "spans not in start order";
         s.t0)
       0.0 spans)

(* Every synchronous span must lie inside its parent's interval; async
   spans (wire flights, one-way post handlers) are causal links only. *)
let test_sync_spans_nest () =
  let prof = Lazy.force profiled in
  let total = Scope.Profile.total prof in
  let spans = Scope.Profile.spans prof in
  let by_id = Hashtbl.create 256 in
  List.iter (fun (s : Sim.Span.span) -> Hashtbl.replace by_id s.id s) spans;
  let clip (s : Sim.Span.span) = if s.t1 < 0.0 then total else s.t1 in
  let eps = 1e-9 in
  List.iter
    (fun (s : Sim.Span.span) ->
      if (not s.async) && s.parent > 0 then
        match Hashtbl.find_opt by_id s.parent with
        | None -> Alcotest.failf "span %d has unknown parent %d" s.id s.parent
        | Some p ->
            if s.t0 < p.Sim.Span.t0 -. eps || clip s > clip p +. eps then
              Alcotest.failf
                "span %d (%s) [%.9f, %.9f] escapes parent %d (%s) [%.9f, %.9f]"
                s.id
                (Sim.Span.kind_name s.kind)
                s.t0 (clip s) p.Sim.Span.id
                (Sim.Span.kind_name p.Sim.Span.kind)
                p.Sim.Span.t0 (clip p))
    spans

(* A remote invocation's wire legs appear as net.* descendants (the hop
   that carried the thread lives under a chase.hop child). *)
let test_remote_invokes_carry_flights () =
  let prof = Lazy.force profiled in
  let spans = Scope.Profile.spans prof in
  let children = Hashtbl.create 256 in
  List.iter
    (fun (s : Sim.Span.span) ->
      Hashtbl.replace children s.parent
        (s :: (try Hashtbl.find children s.parent with Not_found -> [])))
    spans;
  let rec has_net (s : Sim.Span.span) =
    match s.kind with
    | Sim.Span.Thread_flight | Sim.Span.Net_flight -> true
    | _ ->
        List.exists has_net
          (try Hashtbl.find children s.id with Not_found -> [])
  in
  let remotes =
    List.filter
      (fun (s : Sim.Span.span) -> s.kind = Sim.Span.Invoke_remote)
      spans
  in
  Alcotest.(check bool) "saw remote invokes" true (remotes <> []);
  List.iter
    (fun (s : Sim.Span.span) ->
      if not (has_net s) then
        Alcotest.failf "remote invoke span %d has no net flight descendant"
          s.id)
    remotes

let test_critical_path_sums_to_total () =
  let prof = Lazy.force profiled in
  let r = Scope.Profile.critical_path prof in
  let sum = r.Scope.Critical_path.compute +. r.Scope.Critical_path.network
            +. r.Scope.Critical_path.queueing
            +. r.Scope.Critical_path.coherence in
  Alcotest.(check bool) "total positive" true (r.Scope.Critical_path.total > 0.0);
  Alcotest.(check bool) "components sum to total within 1%" true
    (Float.abs (sum -. r.Scope.Critical_path.total)
    <= 0.01 *. r.Scope.Critical_path.total);
  (* Contributors are the same time, broken down by span key. *)
  let csum =
    List.fold_left (fun a (_, v) -> a +. v) 0.0 r.Scope.Critical_path.contributors
  in
  Alcotest.(check (float 1e-6)) "contributors cover the path"
    r.Scope.Critical_path.total csum

(* -- a tiny JSON syntax checker (no JSON library in the test deps) -------- *)

exception Bad_json of int

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad_json !pos) in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () <> c then raise (Bad_json !pos);
    advance ()
  in
  let is_num c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | c when is_num c -> while !pos < n && is_num s.[!pos] do advance () done
    | _ -> raise (Bad_json !pos)
  and lit w = String.iter (fun c -> expect c) w
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '\\' ->
          advance ();
          advance ();
          go ()
      | '"' -> advance ()
      | _ ->
          advance ();
          go ()
    in
    go ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> raise (Bad_json !pos)
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec items () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            items ()
        | ']' -> advance ()
        | _ -> raise (Bad_json !pos)
      in
      items ()
  in
  value ();
  skip_ws ();
  if !pos <> n then raise (Bad_json !pos)

let count_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let count = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr count
  done;
  !count

let test_chrome_export_valid () =
  let prof = Lazy.force profiled in
  let json =
    Scope.Export.chrome_json ~clip:(Scope.Profile.total prof)
      (Scope.Profile.spans prof)
  in
  (match validate_json json with
  | () -> ()
  | exception Bad_json at ->
      Alcotest.failf "chrome export is not valid JSON at byte %d: %s" at
        (String.sub json (max 0 (at - 40)) (min 80 (String.length json - max 0 (at - 40)))));
  Alcotest.(check bool) "has traceEvents" true
    (count_substring json "\"traceEvents\"" = 1);
  (* One complete event per span, in addition to metadata and flow pairs. *)
  Alcotest.(check int) "one X event per span"
    (List.length (Scope.Profile.spans prof))
    (count_substring json "\"ph\":\"X\"");
  Alcotest.(check int) "flow starts pair with flow ends"
    (count_substring json "\"ph\":\"s\"")
    (count_substring json "\"ph\":\"f\"")

let test_jsonl_export_valid () =
  let prof = Lazy.force profiled in
  let lines =
    Scope.Export.spans_jsonl ~clip:(Scope.Profile.total prof)
      (Scope.Profile.spans prof)
  in
  Alcotest.(check int) "one line per span"
    (List.length (Scope.Profile.spans prof))
    (List.length lines);
  List.iter
    (fun l ->
      match validate_json l with
      | () -> ()
      | exception Bad_json at ->
          Alcotest.failf "jsonl line invalid at byte %d: %s" at l)
    lines

let test_profile_report_lines () =
  let prof = Lazy.force profiled in
  match Scope.Profile.report_lines prof with
  | [] -> Alcotest.fail "empty profile report"
  | header :: rest ->
      Alcotest.(check bool) "header mentions spans" true
        (count_substring header "spans over" = 1);
      Alcotest.(check bool) "per-kind and per-node lines" true
        (List.exists (fun l -> count_substring l "invoke.remote" = 1) rest
        && List.exists (fun l -> count_substring l "node 0:" = 1) rest)

(* The tag dimension: tagged spans get their own [kind[tag]] percentile
   lines under the per-kind line, all from the same reservoir attach;
   tag-free spans add no bracketed lines at all. *)
let test_profile_tag_breakdown () =
  let cfg = Amber.Config.make ~nodes:2 ~cpus:2 () in
  let lines =
    Amber.Cluster.run_value cfg (fun rt ->
        let prof = Scope.Profile.attach rt in
        let spans = Amber.Runtime.spans rt in
        let o = Amber.Api.create rt ~name:"tagged" (ref 0) in
        List.iter
          (fun tag ->
            Sim.Span.with_span spans Sim.Span.Serve_request ~label:tag ~tag
              (fun () -> ignore (Amber.Api.invoke rt o (fun r -> !r) : int)))
          [ "read"; "read"; "write" ];
        Scope.Profile.seal prof;
        Scope.Profile.report_lines prof)
  in
  Alcotest.(check bool) "per-tag lines appear under the kind" true
    (List.exists (fun l -> count_substring l "serve.request[read]" = 1) lines
    && List.exists (fun l -> count_substring l "serve.request[write]" = 1) lines);
  Alcotest.(check bool) "untagged kinds grow no bracketed lines" true
    (not (List.exists (fun l -> count_substring l "invoke.local[" = 1) lines))

let suite =
  [
    Alcotest.test_case "disabled collector records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "span ids dense and start-ordered" `Quick
      test_ids_dense_and_ordered;
    Alcotest.test_case "sync spans nest inside parents" `Quick
      test_sync_spans_nest;
    Alcotest.test_case "remote invokes carry net flights" `Quick
      test_remote_invokes_carry_flights;
    Alcotest.test_case "critical path sums to total" `Quick
      test_critical_path_sums_to_total;
    Alcotest.test_case "chrome export is valid JSON" `Quick
      test_chrome_export_valid;
    Alcotest.test_case "jsonl export is valid" `Quick test_jsonl_export_valid;
    Alcotest.test_case "profile report lines" `Quick test_profile_report_lines;
    Alcotest.test_case "profile tag breakdown" `Quick
      test_profile_tag_breakdown;
  ]
