(* AmberSan: the happens-before race detector, lock-order analysis,
   continuous coherence audit, and the offline trace lint. *)

module A = Amber
module San = Analysis.Ambersan

(* Run [body] on a fresh cluster with the sanitizer attached; returns the
   body's result and the finalized report. *)
let run_san ?(nodes = 4) ?(cpus = 2) body =
  let cfg = A.Config.make ~nodes ~cpus () in
  let san = ref None in
  let r =
    A.Cluster.run_value cfg (fun rt ->
        san := Some (San.attach rt);
        body rt)
  in
  (r, San.finalize (Option.get !san))

let check_clean what report =
  Alcotest.(check int)
    (what ^ ": no findings")
    0 (San.findings report)

(* --- the seeded fixtures ------------------------------------------------- *)

let test_racy_fixture_flagged () =
  let r, report =
    run_san ~nodes:2 (fun rt ->
        Workloads.Fixtures.racy_counter rt ~threads:4 ~increments:10)
  in
  Alcotest.(check bool) "race reported" true (List.length report.San.races > 0);
  Alcotest.(check bool)
    "race names the counter" true
    (List.exists (fun (x : San.race) -> x.San.name = "counter") report.San.races);
  Alcotest.(check bool) "failed verdict" true (San.failed report);
  (* The race is real: unsynchronized RMW loses updates. *)
  Alcotest.(check bool)
    "updates lost" true
    (r.Workloads.Fixtures.final < r.Workloads.Fixtures.expected)

let test_clean_fixture_silent () =
  let r, report =
    run_san ~nodes:2 (fun rt ->
        Workloads.Fixtures.clean_counter rt ~threads:4 ~increments:10)
  in
  check_clean "clean counter" report;
  Alcotest.(check int)
    "no updates lost" r.Workloads.Fixtures.expected r.Workloads.Fixtures.final

(* --- access modes -------------------------------------------------------- *)

let test_atomic_invocations_never_race () =
  (* The work-queue idiom: many threads hammer one shared object with
     default (Atomic) invocations and no locks.  Each invocation is a
     self-contained action serialized at the object — not a race. *)
  let (), report =
    run_san ~nodes:2 (fun rt ->
        let counter = A.Api.create rt ~name:"hits" (ref 0) in
        let ts =
          List.init 6 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  for _ = 1 to 10 do
                    A.Api.invoke rt counter (fun c -> incr c);
                    Sim.Fiber.consume 50e-6
                  done))
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        Alcotest.(check int) "atomic increments all land" 60
          (A.Api.invoke rt counter (fun c -> !c)))
  in
  check_clean "atomic invocations" report

let test_fork_join_orders_accesses () =
  (* Parent writes, child reads: Start edges order them; then Join edges
     order the child's writes before the parent's final read. *)
  let (), report =
    run_san (fun rt ->
        let cell = A.Api.create rt ~name:"cell" (ref 0) in
        A.Api.invoke rt ~mode:A.San_hooks.Write cell (fun c -> c := 1);
        let t =
          A.Api.start rt (fun () ->
              let v =
                A.Api.invoke rt ~mode:A.San_hooks.Read cell (fun c -> !c)
              in
              A.Api.invoke rt ~mode:A.San_hooks.Write cell (fun c -> c := v + 1))
        in
        A.Api.join rt t;
        Alcotest.(check int) "sequenced" 2
          (A.Api.invoke rt ~mode:A.San_hooks.Read cell (fun c -> !c)))
  in
  check_clean "fork/join" report

(* --- synchronization edges ----------------------------------------------- *)

let test_barrier_orders_phases () =
  (* Phase 1: each thread writes its own slot.  Barrier.  Phase 2: each
     thread reads every slot.  The generation edge makes all phase-1
     writes happen before all phase-2 reads. *)
  let (), report =
    run_san (fun rt ->
        let slots =
          Array.init 3 (fun i ->
              A.Api.create rt ~name:(Printf.sprintf "slot%d" i) (ref 0))
        in
        let b = A.Sync.Barrier.create rt ~parties:3 () in
        let ts =
          List.init 3 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  A.Api.invoke rt ~mode:A.San_hooks.Write slots.(i) (fun c ->
                      c := i + 1);
                  A.Sync.Barrier.pass rt b;
                  let sum = ref 0 in
                  Array.iter
                    (fun s ->
                      sum :=
                        !sum
                        + A.Api.invoke rt ~mode:A.San_hooks.Read s (fun c -> !c))
                    slots;
                  Alcotest.(check int) "phase-1 writes visible" 6 !sum))
        in
        List.iter (fun t -> A.Api.join rt t) ts)
  in
  check_clean "barrier phases" report

let test_unordered_phases_race () =
  (* Same shape with the barrier removed: phase-2 reads race the other
     threads' phase-1 writes. *)
  let (), report =
    run_san (fun rt ->
        let slots =
          Array.init 3 (fun i ->
              A.Api.create rt ~name:(Printf.sprintf "slot%d" i) (ref 0))
        in
        let ts =
          List.init 3 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  A.Api.invoke rt ~mode:A.San_hooks.Write slots.(i) (fun c ->
                      c := i + 1);
                  Sim.Fiber.consume (float_of_int i *. 100e-6);
                  Array.iter
                    (fun s ->
                      ignore
                        (A.Api.invoke rt ~mode:A.San_hooks.Read s (fun c -> !c)
                          : int))
                    slots))
        in
        List.iter (fun t -> A.Api.join rt t) ts)
  in
  Alcotest.(check bool) "missing barrier detected" true (San.failed report)

let test_barrier_generation_reuse_sanitized () =
  (* The same barrier object serves several generations; each generation's
     edges must order that round's writes without leaking into the next. *)
  let (), report =
    run_san (fun rt ->
        let cell = A.Api.create rt ~name:"round-robin" (ref 0) in
        let b = A.Sync.Barrier.create rt ~parties:3 () in
        let ts =
          List.init 3 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  for round = 0 to 2 do
                    (* One designated writer per round, rotating. *)
                    if round mod 3 = i then
                      A.Api.invoke rt ~mode:A.San_hooks.Write cell (fun c ->
                          c := round);
                    A.Sync.Barrier.pass rt b;
                    ignore
                      (A.Api.invoke rt ~mode:A.San_hooks.Read cell (fun c -> !c)
                        : int);
                    A.Sync.Barrier.pass rt b
                  done))
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        Alcotest.(check int) "three generations consumed" 6
          (A.Sync.Barrier.generation b))
  in
  check_clean "barrier reuse" report

let test_condition_broadcast_sanitized () =
  (* Producer writes, broadcasts; every waiter reads after wakeup.  The
     signal→wakeup edge (plus the lock edges) orders the write before
     the reads. *)
  let woken, report =
    run_san (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let cond = A.Sync.Condition.create rt () in
        let data = A.Api.create rt ~name:"payload" (ref 0) in
        let go = ref false in
        let count = ref 0 in
        let ts =
          List.init 4 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  A.Sync.Lock.acquire rt lock;
                  while not !go do
                    A.Sync.Condition.wait rt cond lock
                  done;
                  let v =
                    A.Api.invoke rt ~mode:A.San_hooks.Read data (fun c -> !c)
                  in
                  Alcotest.(check int) "broadcast payload visible" 9 v;
                  incr count;
                  A.Sync.Lock.release rt lock))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 20e-3;
        A.Sync.Lock.acquire rt lock;
        A.Api.invoke rt ~mode:A.San_hooks.Write data (fun c -> c := 9);
        go := true;
        A.Sync.Condition.broadcast rt cond;
        A.Sync.Lock.release rt lock;
        List.iter (fun t -> A.Api.join rt t) ts;
        !count)
  in
  Alcotest.(check int) "all woken" 4 woken;
  check_clean "condition broadcast" report

let test_monitor_broadcast_sanitized () =
  let woken, report =
    run_san (fun rt ->
        let m = A.Sync.Monitor.create rt () in
        let cond = A.Sync.Monitor.new_condition rt m in
        let go = ref false in
        let count = ref 0 in
        let ts =
          List.init 3 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  A.Sync.Monitor.with_monitor rt m (fun () ->
                      while not !go do
                        A.Sync.Monitor.wait rt m cond
                      done;
                      incr count)))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 10e-3;
        A.Sync.Monitor.with_monitor rt m (fun () ->
            go := true;
            A.Sync.Monitor.broadcast rt cond);
        List.iter (fun t -> A.Api.join rt t) ts;
        !count)
  in
  Alcotest.(check int) "all woken" 3 woken;
  check_clean "monitor broadcast" report

(* --- lock-order analysis ------------------------------------------------- *)

let test_lock_order_cycle_detected () =
  (* Take A then B, release, then B then A: both edges exist in the
     lock-order graph even though (run sequentially) no deadlock happens.
     The sanitizer reports the cycle as deadlock potential. *)
  let (), report =
    run_san (fun rt ->
        let a = A.Sync.Lock.create rt ~name:"lock-a" () in
        let b = A.Sync.Lock.create rt ~name:"lock-b" () in
        A.Sync.Lock.with_lock rt a (fun () ->
            A.Sync.Lock.with_lock rt b (fun () -> ()));
        A.Sync.Lock.with_lock rt b (fun () ->
            A.Sync.Lock.with_lock rt a (fun () -> ())))
  in
  Alcotest.(check int) "one cycle" 1 (List.length report.San.cycles);
  let c = List.hd report.San.cycles in
  Alcotest.(check bool) "cycle names both locks" true
    (List.mem "lock-a" c.San.names && List.mem "lock-b" c.San.names)

let test_consistent_lock_order_clean () =
  let (), report =
    run_san (fun rt ->
        let a = A.Sync.Lock.create rt ~name:"lock-a" () in
        let b = A.Sync.Lock.create rt ~name:"lock-b" () in
        let ts =
          List.init 3 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  for _ = 1 to 3 do
                    A.Sync.Lock.with_lock rt a (fun () ->
                        A.Sync.Lock.with_lock rt b (fun () ->
                            Sim.Fiber.consume 100e-6))
                  done))
        in
        List.iter (fun t -> A.Api.join rt t) ts)
  in
  check_clean "consistent order" report

(* --- owner tracking (locks know their holder) ----------------------------- *)

let test_lock_release_by_other_thread_rejected () =
  Util.run (fun rt ->
      let lock = A.Sync.Lock.create rt () in
      A.Sync.Lock.acquire rt lock;
      let thief = A.Api.start rt (fun () -> A.Sync.Lock.release rt lock) in
      Alcotest.check_raises "wrong holder"
        (Invalid_argument "Lock.release: lock is held by another thread")
        (fun () -> A.Api.join rt thief);
      A.Sync.Lock.release rt lock)

let test_spinlock_release_by_other_thread_rejected () =
  Util.run (fun rt ->
      let lock = A.Sync.Spinlock.create rt () in
      A.Sync.Spinlock.acquire rt lock;
      let thief = A.Api.start rt (fun () -> A.Sync.Spinlock.release rt lock) in
      Alcotest.check_raises "wrong holder"
        (Invalid_argument "Spinlock.release: lock is held by another thread")
        (fun () -> A.Api.join rt thief);
      A.Sync.Spinlock.release rt lock)

let test_lock_holder_visible () =
  Util.run (fun rt ->
      let lock = A.Sync.Lock.create rt () in
      Alcotest.(check (option int)) "unheld" None (A.Sync.Lock.holder lock);
      A.Sync.Lock.acquire rt lock;
      Alcotest.(check bool) "holder recorded" true
        (A.Sync.Lock.holder lock <> None);
      A.Sync.Lock.release rt lock;
      Alcotest.(check (option int)) "cleared" None (A.Sync.Lock.holder lock))

(* --- workloads under the sanitizer ---------------------------------------- *)

let test_sor_sanitized_clean () =
  let _, report =
    run_san ~nodes:2 (fun rt ->
        let p =
          Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16
            ~cols:32
        in
        Workloads.Sor_amber.run rt p ~iters:2 ())
  in
  check_clean "sor" report

let test_tsp_sanitized_clean () =
  let _, report =
    run_san ~nodes:2 (fun rt ->
        Workloads.Tsp.run rt
          {
            Workloads.Tsp.cities = 7;
            seed = 7;
            workers_per_node = 2;
            expand_cpu = 50e-6;
            centralize = false;
            skew = false;
          })
  in
  check_clean "tsp" report

let test_balanced_sor_sanitized_clean () =
  (* Skewed SOR with the full balancer on (hybrid + stealing): balancer
     moves, steals and gossip must introduce no races or coherence
     drift. *)
  let _, report =
    run_san (fun rt ->
        let p =
          Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16
            ~cols:32
        in
        let c =
          {
            (Workloads.Sor_amber.default_cfg rt) with
            Workloads.Sor_amber.placement = Some (fun _ -> 0);
          }
        in
        let lb =
          Balance.Driver.start rt
            {
              Balance.Driver.default_cfg with
              Balance.Driver.policy = Balance.Rebalancer.Hybrid;
              steal = true;
            }
        in
        let r = Workloads.Sor_amber.run rt p ~cfg:c ~iters:4 () in
        Balance.Driver.stop lb;
        r)
  in
  check_clean "balanced sor" report

let test_work_queue_with_moves_sanitized_clean () =
  (* The queue migrates mid-run: exercises the continuous coherence audit
     at move quiescence plus migration edges. *)
  let r, report =
    run_san ~nodes:3 (fun rt ->
        Workloads.Work_queue.run rt
          {
            Workloads.Work_queue.items = 40;
            work_cpu = 5e-3;
            batch = 4;
            workers_per_node = 2;
            move_queue_at = Some 12;
          })
  in
  Alcotest.(check int) "all processed" 40 r.Workloads.Work_queue.processed;
  check_clean "work queue" report

let test_matmul_sanitized_clean () =
  let _, report =
    run_san ~nodes:2 (fun rt ->
        Workloads.Matmul.run rt
          {
            Workloads.Matmul.n = 24;
            block = 12;
            replicate = true;
            workers_per_node = 2;
            flop_cpu = 5e-6;
          })
  in
  check_clean "matmul" report

(* --- offline lint ---------------------------------------------------------- *)

let test_offline_lint_matches_online () =
  let cfg = A.Config.make ~nodes:2 ~cpus:2 () in
  let san = ref None in
  let records = ref [] in
  let () =
    A.Cluster.run_value cfg (fun rt ->
        Sim.Trace.set_enabled (A.Runtime.trace rt) true;
        san := Some (San.attach rt);
        ignore
          (Workloads.Fixtures.racy_counter rt ~threads:3 ~increments:8
            : Workloads.Fixtures.result);
        records := Sim.Trace.records (A.Runtime.trace rt))
  in
  let online = San.finalize (Option.get !san) in
  let offline = San.lint_trace !records in
  Alcotest.(check bool) "online flags" true (List.length online.San.races > 0);
  Alcotest.(check int) "same races offline"
    (List.length online.San.races)
    (List.length offline.San.races);
  Alcotest.(check int) "same events" online.San.events offline.San.events

let test_event_codec_round_trip () =
  let module E = San.Event in
  let events =
    [
      E.Thread_start { parent = -1; child = 3 };
      E.Thread_join { parent = 3; child = 5 };
      E.Migrate { tid = 4; src = 0; dst = 2 };
      E.Object_created { addr = 0x48; name = "a name with spaces" };
      E.Object_destroyed { addr = 0x48 };
      E.Sync_created { addr = 0x40; kind = "lock" };
      E.Access { tid = 3; addr = 0x48; mode = A.San_hooks.Write };
      E.Access { tid = 3; addr = 0x48; mode = A.San_hooks.Atomic };
      E.Access_end { tid = 3; addr = 0x48 };
      E.Lock_acquired { tid = 3; addr = 0x40 };
      E.Lock_released { tid = 3; addr = 0x40 };
      E.Barrier { tid = 3; addr = 0x40; gen = 2; phase = E.Arrive };
      E.Barrier { tid = 3; addr = 0x40; gen = 2; phase = E.Release };
      E.Barrier { tid = 3; addr = 0x40; gen = 2; phase = E.Resume };
      E.Cond_signal { tid = 3; token = 7 };
      E.Cond_wake { tid = 4; token = 7 };
      E.Steal { by = 9; tid = 2; victim = 0; thief = 1 };
    ]
  in
  List.iter
    (fun e ->
      match E.of_string (E.to_string e) with
      | Some e' ->
        Alcotest.(check string) "round trip" (E.to_string e) (E.to_string e')
      | None -> Alcotest.failf "unparseable: %s" (E.to_string e))
    events;
  Alcotest.(check bool) "junk rejected" true (E.of_string "garbage 1 2" = None)

let test_engine_on_synthetic_events () =
  (* Drive the analysis engine directly: two unordered writes race; the
     same two writes separated by a lock release→acquire edge do not. *)
  let module E = San.Event in
  let racy =
    San.lint_events
      [
        E.Object_created { addr = 8; name = "x" };
        E.Access { tid = 1; addr = 8; mode = A.San_hooks.Write };
        E.Access_end { tid = 1; addr = 8 };
        E.Access { tid = 2; addr = 8; mode = A.San_hooks.Write };
        E.Access_end { tid = 2; addr = 8 };
      ]
  in
  Alcotest.(check int) "unordered writes race" 1 (List.length racy.San.races);
  let ordered =
    San.lint_events
      [
        E.Object_created { addr = 8; name = "x" };
        E.Sync_created { addr = 16; kind = "lock" };
        E.Lock_acquired { tid = 1; addr = 16 };
        E.Access { tid = 1; addr = 8; mode = A.San_hooks.Write };
        E.Access_end { tid = 1; addr = 8 };
        E.Lock_released { tid = 1; addr = 16 };
        E.Lock_acquired { tid = 2; addr = 16 };
        E.Access { tid = 2; addr = 8; mode = A.San_hooks.Write };
        E.Access_end { tid = 2; addr = 8 };
        E.Lock_released { tid = 2; addr = 16 };
      ]
  in
  Alcotest.(check int) "lock edge orders writes" 0 (San.findings ordered)

let test_steal_edge_orders_accesses () =
  (* A steal is a synchronization point: the stealing agent dequeues the
     thread, so everything the agent has seen happens-before the stolen
     thread's next step.  Here agent 9 observes t1's write (via the lock
     edge) and then steals t2 — so t2's write is ordered after t1's.
     Dropping the Steal event severs that path and the writes race. *)
  let module E = San.Event in
  let prefix =
    [
      E.Object_created { addr = 8; name = "x" };
      E.Sync_created { addr = 16; kind = "lock" };
      E.Lock_acquired { tid = 1; addr = 16 };
      E.Access { tid = 1; addr = 8; mode = A.San_hooks.Write };
      E.Access_end { tid = 1; addr = 8 };
      E.Lock_released { tid = 1; addr = 16 };
      E.Lock_acquired { tid = 9; addr = 16 };
      E.Lock_released { tid = 9; addr = 16 };
    ]
  in
  let suffix =
    [
      E.Access { tid = 2; addr = 8; mode = A.San_hooks.Write };
      E.Access_end { tid = 2; addr = 8 };
    ]
  in
  let steal = [ E.Steal { by = 9; tid = 2; victim = 0; thief = 1 } ] in
  let with_edge = San.lint_events (prefix @ steal @ suffix) in
  Alcotest.(check int) "steal edge orders writes" 0 (San.findings with_edge);
  let without = San.lint_events (prefix @ suffix) in
  Alcotest.(check int) "no steal edge: writes race" 1
    (List.length without.San.races)

(* --- continuous coherence audit ------------------------------------------- *)

let test_sanitizer_reports_coherence_drift () =
  (* Sabotage the descriptor space behind the protocol's back; the final
     audit must surface it as a coherence finding. *)
  let (), report =
    run_san (fun rt ->
        let o = A.Api.create rt ~name:"drift" () in
        A.Api.move_to rt o ~dest:2;
        A.Descriptor.set_forwarded (A.Runtime.descriptors rt 1) o.A.Aobject.addr
          3;
        A.Descriptor.set_forwarded (A.Runtime.descriptors rt 3) o.A.Aobject.addr
          1)
  in
  Alcotest.(check bool) "violations reported" true
    (List.length report.San.violations > 0)

let test_report_section_in_stats () =
  let captured =
    Util.run (fun rt ->
        ignore (San.attach rt : San.t);
        A.Stats_report.capture rt)
  in
  Alcotest.(check bool) "sanitizer section present" true
    (List.mem_assoc "sanitizer" captured.A.Stats_report.extra)

let suite =
  [
    Alcotest.test_case "racy fixture flagged" `Quick test_racy_fixture_flagged;
    Alcotest.test_case "clean fixture silent" `Quick test_clean_fixture_silent;
    Alcotest.test_case "atomic invocations never race" `Quick
      test_atomic_invocations_never_race;
    Alcotest.test_case "fork/join orders accesses" `Quick
      test_fork_join_orders_accesses;
    Alcotest.test_case "barrier orders phases" `Quick test_barrier_orders_phases;
    Alcotest.test_case "missing barrier detected" `Quick
      test_unordered_phases_race;
    Alcotest.test_case "barrier generation reuse sanitized" `Quick
      test_barrier_generation_reuse_sanitized;
    Alcotest.test_case "condition broadcast sanitized" `Quick
      test_condition_broadcast_sanitized;
    Alcotest.test_case "monitor broadcast sanitized" `Quick
      test_monitor_broadcast_sanitized;
    Alcotest.test_case "lock-order cycle detected" `Quick
      test_lock_order_cycle_detected;
    Alcotest.test_case "consistent lock order clean" `Quick
      test_consistent_lock_order_clean;
    Alcotest.test_case "lock release by other thread rejected" `Quick
      test_lock_release_by_other_thread_rejected;
    Alcotest.test_case "spinlock release by other thread rejected" `Quick
      test_spinlock_release_by_other_thread_rejected;
    Alcotest.test_case "lock holder visible" `Quick test_lock_holder_visible;
    Alcotest.test_case "sor sanitized clean" `Quick test_sor_sanitized_clean;
    Alcotest.test_case "balanced sor sanitized clean" `Quick
      test_balanced_sor_sanitized_clean;
    Alcotest.test_case "tsp sanitized clean" `Quick test_tsp_sanitized_clean;
    Alcotest.test_case "work queue with moves sanitized clean" `Quick
      test_work_queue_with_moves_sanitized_clean;
    Alcotest.test_case "matmul sanitized clean" `Quick
      test_matmul_sanitized_clean;
    Alcotest.test_case "offline lint matches online" `Quick
      test_offline_lint_matches_online;
    Alcotest.test_case "event codec round trip" `Quick
      test_event_codec_round_trip;
    Alcotest.test_case "engine on synthetic events" `Quick
      test_engine_on_synthetic_events;
    Alcotest.test_case "steal edge orders accesses" `Quick
      test_steal_edge_orders_accesses;
    Alcotest.test_case "coherence drift reported" `Quick
      test_sanitizer_reports_coherence_drift;
    Alcotest.test_case "sanitizer section in stats report" `Quick
      test_report_section_in_stats;
  ]
