(* MoveTo / Locate / Attach / immutability, including bound-thread
   co-migration (§3.5). *)

module A = Amber

let test_move_updates_descriptors () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      let addr = o.A.Aobject.addr in
      A.Api.move_to rt o ~dest:2;
      Alcotest.(check int) "ground truth" 2 (Util.location o);
      Alcotest.(check bool) "resident at dest" true
        (A.Descriptor.is_resident (A.Runtime.descriptors rt 2) addr);
      (match A.Descriptor.get (A.Runtime.descriptors rt 0) addr with
      | Some (A.Descriptor.Forwarded 2) -> ()
      | _ -> Alcotest.fail "source should forward to 2"))

let test_move_to_same_node_is_noop () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      let before = (A.Runtime.counters rt).A.Runtime.object_moves in
      A.Api.move_to rt o ~dest:0;
      Alcotest.(check int) "still here" 0 (Util.location o);
      Alcotest.(check int) "no move recorded" before
        (A.Runtime.counters rt).A.Runtime.object_moves)

let test_move_cost_table1 () =
  let per_move =
    Util.run (fun rt ->
        let o = A.Api.create rt ~size:1024 ~name:"ball" () in
        A.Api.move_to rt o ~dest:1;
        (* Steady state: mover on node 0 with a 1-hop-accurate hint. *)
        let t0 = A.Api.now rt in
        let flip = ref 2 in
        for _ = 1 to 6 do
          A.Api.move_to rt o ~dest:!flip;
          flip := (if !flip = 1 then 2 else 1)
        done;
        (A.Api.now rt -. t0) /. 6.0)
  in
  Alcotest.(check bool) "approx 12.4 ms" true
    (per_move > 11e-3 && per_move < 14e-3)

let test_locate () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      Alcotest.(check int) "at home" 0 (A.Api.locate rt o);
      A.Api.move_to rt o ~dest:3;
      Alcotest.(check int) "after move" 3 (A.Api.locate rt o))

let test_locate_compresses_chain () =
  Util.run ~nodes:6 (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      let anchor = A.Api.create rt ~name:"anchor" () in
      A.Api.move_to rt anchor ~dest:1;
      let mover =
        A.Api.start_invoke rt anchor (fun () ->
            List.iter (fun d -> A.Api.move_to rt o ~dest:d) [ 2; 3; 4; 5 ])
      in
      A.Api.join rt mover;
      let t0 = A.Api.now rt in
      ignore (A.Api.locate rt o : int);
      let first = A.Api.now rt -. t0 in
      let t1 = A.Api.now rt in
      ignore (A.Api.locate rt o : int);
      let second = A.Api.now rt -. t1 in
      Alcotest.(check bool) "second lookup faster" true (second < first);
      (* And node 0 now has a direct hint. *)
      match A.Descriptor.get (A.Runtime.descriptors rt 0) o.A.Aobject.addr with
      | Some (A.Descriptor.Forwarded 5) -> ()
      | _ -> Alcotest.fail "chain not compressed")

let test_bound_thread_moves_with_object () =
  let finished_on =
    Util.run (fun rt ->
        let room = A.Api.create rt ~name:"room" (ref 0) in
        let t =
          A.Api.start rt (fun () ->
              A.Api.invoke rt room (fun n ->
                  for _ = 1 to 20 do
                    Sim.Fiber.consume 1e-3;
                    incr n
                  done;
                  A.Api.my_node rt))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 5e-3;
        A.Api.move_to rt room ~dest:3;
        let finished_on = A.Api.join rt t in
        Alcotest.(check int) "all increments happened" 20
          !(room.A.Aobject.state);
        finished_on)
  in
  Alcotest.(check int) "thread followed the object" 3 finished_on

let test_mover_bound_to_object_follows () =
  (* A thread moving the object it is executing inside ends up at the
     destination itself. *)
  let where =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.invoke rt o (fun () ->
            A.Api.move_to rt o ~dest:2;
            A.Api.my_node rt))
  in
  Alcotest.(check int) "mover followed" 2 where

let test_attach_co_locates () =
  Util.run (fun rt ->
      let parent = A.Api.create rt ~name:"p" () in
      let child = A.Api.create rt ~name:"c" () in
      A.Api.move_to rt parent ~dest:2;
      A.Api.attach rt ~parent ~child;
      Alcotest.(check int) "child moved to parent" 2 (Util.location child))

let test_attached_move_together () =
  Util.run (fun rt ->
      let parent = A.Api.create rt ~name:"p" () in
      let child = A.Api.create rt ~name:"c" () in
      let grandchild = A.Api.create rt ~name:"g" () in
      A.Api.attach rt ~parent ~child;
      A.Api.attach rt ~parent:child ~child:grandchild;
      A.Api.move_to rt parent ~dest:3;
      Alcotest.(check int) "child" 3 (Util.location child);
      Alcotest.(check int) "grandchild" 3 (Util.location grandchild))

let test_attached_child_cannot_move_alone () =
  Util.run (fun rt ->
      let parent = A.Api.create rt ~name:"p" () in
      let child = A.Api.create rt ~name:"c" () in
      A.Api.attach rt ~parent ~child;
      Alcotest.check_raises "attached"
        (Invalid_argument "Mobility.move_to: object is attached; move its root")
        (fun () -> A.Api.move_to rt child ~dest:1))

let test_unattach_restores_independence () =
  Util.run (fun rt ->
      let parent = A.Api.create rt ~name:"p" () in
      let child = A.Api.create rt ~name:"c" () in
      A.Api.attach rt ~parent ~child;
      A.Api.unattach rt ~child;
      A.Api.move_to rt child ~dest:1;
      A.Api.move_to rt parent ~dest:2;
      Alcotest.(check int) "child independent" 1 (Util.location child);
      Alcotest.(check int) "parent independent" 2 (Util.location parent))

let test_attach_cycle_rejected () =
  Util.run (fun rt ->
      let a = A.Api.create rt ~name:"a" () in
      let b = A.Api.create rt ~name:"b" () in
      A.Api.attach rt ~parent:a ~child:b;
      Alcotest.check_raises "cycle"
        (Invalid_argument "Mobility.attach: attachment would create a cycle")
        (fun () -> A.Api.attach rt ~parent:b ~child:a))

let test_attach_self_rejected () =
  Util.run (fun rt ->
      let a = A.Api.create rt ~name:"a" () in
      Alcotest.check_raises "self"
        (Invalid_argument "Mobility.attach: cannot attach an object to itself")
        (fun () -> A.Api.attach rt ~parent:a ~child:a))

let test_immutable_move_copies () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" (ref 9) in
      A.Api.set_immutable rt o;
      A.Api.move_to rt o ~dest:2;
      A.Api.move_to rt o ~dest:3;
      Alcotest.(check int) "master stays home" 0 (Util.location o);
      Alcotest.(check bool) "replica on 2" true (A.Aobject.usable_on o 2);
      Alcotest.(check bool) "replica on 3" true (A.Aobject.usable_on o 3);
      let c = A.Runtime.counters rt in
      Alcotest.(check int) "two copies, no moves" 2 c.A.Runtime.object_copies;
      Alcotest.(check int) "no moves" 0 c.A.Runtime.object_moves)

let test_immutable_copy_idempotent () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      A.Api.set_immutable rt o;
      A.Api.move_to rt o ~dest:2;
      let before = (A.Runtime.counters rt).A.Runtime.object_copies in
      A.Api.move_to rt o ~dest:2;
      Alcotest.(check int) "no second copy" before
        (A.Runtime.counters rt).A.Runtime.object_copies)

let test_destroy () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      let addr = o.A.Aobject.addr in
      A.Api.destroy rt o;
      Alcotest.(check bool) "descriptor cleared" true
        (A.Descriptor.get (A.Runtime.descriptors rt 0) addr = None);
      Alcotest.(check bool) "heap block freed" false
        (Vaspace.Heap.is_live (A.Runtime.heap rt 0) addr))

let test_dangling_invoke_detected () =
  Util.run (fun rt ->
      (* Distinct sizes everywhere so the freed block is NOT reused (block
         reuse legitimately revives the address, see the §3.2 test). *)
      let o = A.Api.create rt ~size:208 ~name:"doomed" (ref 0) in
      A.Api.destroy rt o;
      (match A.Api.invoke rt o (fun r -> !r) with
      | _ -> Alcotest.fail "expected dangling-reference failure"
      | exception Failure msg ->
        Alcotest.(check bool) "diagnostic names the problem" true
          (String.length msg > 0));
      (* Also from another node (goes through the home-node fallback). *)
      let anchor = A.Api.create rt ~size:96 ~name:"anchor" () in
      A.Api.move_to rt anchor ~dest:2;
      let t =
        A.Api.start_invoke rt anchor (fun () ->
            match A.Api.invoke rt o (fun r -> !r) with
            | _ -> false
            | exception Failure _ -> true)
      in
      Alcotest.(check bool) "detected remotely too" true (A.Api.join rt t))

let test_dangling_locate_detected () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~size:208 ~name:"doomed" () in
      A.Api.destroy rt o;
      match A.Api.locate rt o with
      | _ -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let test_destroyed_block_reuse_is_fresh () =
  (* §3.2: the freed block may be reused whole by a new object; the new
     object works normally at the same address. *)
  Util.run (fun rt ->
      let o1 = A.Api.create rt ~size:48 ~name:"old" () in
      let addr1 = o1.A.Aobject.addr in
      A.Api.destroy rt o1;
      let o2 = A.Api.create rt ~size:48 ~name:"new" (ref 5) in
      Alcotest.(check int) "block reused" addr1 o2.A.Aobject.addr;
      Alcotest.(check int) "new object fully functional" 5
        (A.Api.invoke rt o2 (fun r -> !r)))

let test_destroy_remote_rejected () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      A.Api.move_to rt o ~dest:1;
      Alcotest.check_raises "remote"
        (Invalid_argument "Runtime.destroy_object: object is not resident here")
        (fun () -> A.Api.destroy rt o))

let test_attach_deep_cycle_rejected () =
  (* is_ancestor must walk the whole chain, not just the direct parent. *)
  Util.run (fun rt ->
      let a = A.Api.create rt ~name:"a" () in
      let b = A.Api.create rt ~name:"b" () in
      let c = A.Api.create rt ~name:"c" () in
      A.Api.attach rt ~parent:a ~child:b;
      A.Api.attach rt ~parent:b ~child:c;
      Alcotest.check_raises "a -> b -> c -> a"
        (Invalid_argument "Mobility.attach: attachment would create a cycle")
        (fun () -> A.Api.attach rt ~parent:c ~child:a))

let test_reattach_after_unattach () =
  Util.run (fun rt ->
      let parent = A.Api.create rt ~name:"p" () in
      let child = A.Api.create rt ~name:"c" () in
      A.Api.attach rt ~parent ~child;
      A.Api.move_to rt parent ~dest:2;
      A.Api.unattach rt ~child;
      (* Independent again: the child can wander off... *)
      A.Api.move_to rt child ~dest:1;
      Alcotest.(check int) "child moved alone" 1 (Util.location child);
      Alcotest.(check int) "parent unaffected" 2 (Util.location parent);
      (* ...and a re-attach restores co-residency and joint movement. *)
      A.Api.attach rt ~parent ~child;
      Alcotest.(check int) "re-attach co-locates" 2 (Util.location child);
      A.Api.move_to rt parent ~dest:3;
      Alcotest.(check int) "moves together again" 3 (Util.location child))

let test_attach_immutable_child_replicates () =
  (* Attaching an immutable child to a remote parent must make the child
     usable at the parent's node via a replica; the master stays put. *)
  Util.run (fun rt ->
      let child = A.Api.create rt ~name:"c" (ref 7) in
      A.Api.set_immutable rt child;
      let parent = A.Api.create rt ~name:"p" () in
      A.Api.move_to rt parent ~dest:2;
      let copies_before = (A.Runtime.counters rt).A.Runtime.object_copies in
      A.Api.attach rt ~parent ~child;
      Alcotest.(check bool) "replica at the parent's node" true
        (A.Aobject.usable_on child 2);
      Alcotest.(check int) "master still at home" 0 (Util.location child);
      Alcotest.(check int) "exactly one installed copy" (copies_before + 1)
        (A.Runtime.counters rt).A.Runtime.object_copies;
      Alcotest.(check int) "replica readable in place" 7
        (A.Api.invoke rt parent (fun () ->
             A.Api.invoke rt child (fun r -> !r))))

let test_settle_dangling_through_stale_chain () =
  (* Stale forwarding pointers at bystanders lead a settling thread toward
     a destroyed object: the chase must end in a clean dangling failure,
     not a loop or a crash. *)
  Util.run (fun rt ->
      let o = A.Api.create rt ~size:208 ~name:"doomed" (ref 0) in
      let addr = o.A.Aobject.addr in
      A.Api.destroy rt o;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 2) addr 3;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 3) addr 2;
      let anchor = A.Api.create rt ~size:96 ~name:"anchor" () in
      A.Api.move_to rt anchor ~dest:2;
      let t =
        A.Api.start_invoke rt anchor (fun () ->
            match A.Api.invoke rt o (fun r -> !r) with
            | _ -> false
            | exception Failure _ -> true)
      in
      Alcotest.(check bool) "settle raised a clean failure" true
        (A.Api.join rt t))

let suite =
  [
    Alcotest.test_case "move updates descriptors" `Quick
      test_move_updates_descriptors;
    Alcotest.test_case "move to same node is no-op" `Quick
      test_move_to_same_node_is_noop;
    Alcotest.test_case "move cost (Table 1)" `Quick test_move_cost_table1;
    Alcotest.test_case "locate" `Quick test_locate;
    Alcotest.test_case "locate compresses chains" `Quick
      test_locate_compresses_chain;
    Alcotest.test_case "bound thread moves with object" `Quick
      test_bound_thread_moves_with_object;
    Alcotest.test_case "mover inside object follows it" `Quick
      test_mover_bound_to_object_follows;
    Alcotest.test_case "attach co-locates" `Quick test_attach_co_locates;
    Alcotest.test_case "attachments move together" `Quick
      test_attached_move_together;
    Alcotest.test_case "attached child cannot move alone" `Quick
      test_attached_child_cannot_move_alone;
    Alcotest.test_case "unattach restores independence" `Quick
      test_unattach_restores_independence;
    Alcotest.test_case "attach cycle rejected" `Quick test_attach_cycle_rejected;
    Alcotest.test_case "attach to self rejected" `Quick test_attach_self_rejected;
    Alcotest.test_case "immutable move copies" `Quick test_immutable_move_copies;
    Alcotest.test_case "immutable copy idempotent" `Quick
      test_immutable_copy_idempotent;
    Alcotest.test_case "destroy" `Quick test_destroy;
    Alcotest.test_case "dangling invoke detected" `Quick
      test_dangling_invoke_detected;
    Alcotest.test_case "dangling locate detected" `Quick
      test_dangling_locate_detected;
    Alcotest.test_case "freed block reuse works (§3.2)" `Quick
      test_destroyed_block_reuse_is_fresh;
    Alcotest.test_case "attach deep cycle rejected" `Quick
      test_attach_deep_cycle_rejected;
    Alcotest.test_case "re-attach after unattach" `Quick
      test_reattach_after_unattach;
    Alcotest.test_case "attach immutable child replicates" `Quick
      test_attach_immutable_child_replicates;
    Alcotest.test_case "settle dangling through stale chain" `Quick
      test_settle_dangling_through_stale_chain;
    Alcotest.test_case "destroy of remote object rejected" `Quick
      test_destroy_remote_rejected;
  ]
