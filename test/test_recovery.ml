(* Amber-Phoenix crash-recovery battery.

   Fail-stop a node and check the promises the injector makes: blocked
   protocols surface typed failures ([Node_dead], [Object_lost]) in
   bounded virtual time instead of hanging; objects whose master died
   are re-mastered from the highest-epoch surviving replica; forwarding
   chains routed through the corpse are repaired; transient outages ride
   out with unchanged results; and with no crash configured the injector
   is completely inert.  A pinned-seed QCheck storm replays randomized
   crash programs against a sequential oracle, plain, sanitized and with
   packet faults stacked on top. *)

module A = Amber
module W = Workloads

let no_faults =
  {
    Hw.Ethernet.drop_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    delay_spike = 0.0;
    stalls = [];
  }

(* Manual [Runtime.fail_stop] from a test body needs the failure
   detector armed even though [cfg.crashes] is empty — without
   [rpc_reliable] the runtime picks the plain transport, which has no
   retransmit timers and therefore no peer-death detection.  A short rto
   and small budget keep detection latency tiny in virtual time. *)
let crashy_cfg ?(nodes = 4) ?(cpus = 2) ?(seed = 7) ?(faults = no_faults) () =
  {
    (A.Config.make ~nodes ~cpus ~seed:(Int64.of_int seed) ~faults ()) with
    A.Config.rpc_reliable = true;
    rpc_rto = 1e-3;
    rpc_max_retransmits = 6;
  }

let copy r = ref !r

(* Run [f] from a joined thread anchored on [node]. *)
let on rt anchors node f = A.Api.join rt (A.Api.start_invoke rt anchors.(node) f)

let make_anchors rt ~nodes =
  Array.init nodes (fun node ->
      let a = A.Api.create rt ~name:(Printf.sprintf "anchor%d" node) () in
      if node <> 0 then A.Api.move_to rt a ~dest:node;
      a)

(* --- typed failures ------------------------------------------------------ *)

let test_call_dead_node_typed () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      A.Runtime.fail_stop rt ~node:1;
      Alcotest.(check bool) "node marked down" false (A.Runtime.node_is_up rt 1);
      let died =
        try
          Topaz.Rpc.call (A.Runtime.rpc rt) ~dst:1 ~kind:"probe" ~req_size:64
            ~work:(fun () -> (8, ()));
          None
        with Topaz.Rpc.Node_dead { node } -> Some node
      in
      Alcotest.(check (option int)) "call fails with Node_dead" (Some 1) died;
      (* Retransmit budget 6 with 1 ms rto: even with full exponential
         backoff the detector must have given up well under a second. *)
      Alcotest.(check bool) "declared dead in bounded virtual time" true
        (A.Api.now rt < 0.5);
      let r = A.Stats_report.capture rt in
      Alcotest.(check bool) "dead-dropped packets counted" true
        (r.A.Stats_report.crash.A.Stats_report.packets_dropped_dead > 0);
      Alcotest.(check bool) "peer death counted" true
        (r.A.Stats_report.crash.A.Stats_report.rpc_peer_deaths > 0))

(* The PR-1 liveness hole: a peer that never answers — not crashed, just
   stalled beyond every backoff — used to pin the caller in retransmit
   forever.  The retransmit cap must declare it dead instead. *)
let test_retransmit_cap_vs_stalled_forever () =
  let faults =
    {
      no_faults with
      Hw.Ethernet.stalls =
        [ { Hw.Ethernet.node = 2; from_t = 0.0; until_t = 10.0 } ];
    }
  in
  A.Cluster.run_value (crashy_cfg ~faults ()) (fun rt ->
      let died =
        try
          Topaz.Rpc.call (A.Runtime.rpc rt) ~dst:2 ~kind:"probe" ~req_size:64
            ~work:(fun () -> (8, ()));
          None
        with Topaz.Rpc.Node_dead { node } -> Some node
      in
      Alcotest.(check (option int)) "stalled peer declared dead" (Some 2) died;
      Alcotest.(check bool) "gave up long before the stall lifted" true
        (A.Api.now rt < 1.0);
      let rel = Topaz.Rpc.reliability (A.Runtime.rpc rt) in
      Alcotest.(check bool) "budget actually exhausted" true
        (Sim.Stats.Counter.value rel.Topaz.Rpc.retransmits >= 6))

let test_object_lost_typed () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let obj = A.Api.create rt ~name:"orphan" (ref 5) in
      A.Api.move_to rt obj ~dest:2;
      A.Runtime.fail_stop rt ~node:2;
      let lost =
        try
          ignore (A.Api.invoke rt obj (fun r -> !r) : int);
          false
        with A.Aobject.Object_lost _ -> true
      in
      Alcotest.(check bool) "unreplicated object lost crisply" true lost;
      Alcotest.(check int) "counted as lost" 1
        (A.Runtime.counters rt).A.Runtime.objects_lost;
      Alcotest.(check bool) "registered in the lost table" true
        (A.Runtime.lost_object_count rt >= 1))

let test_join_killed_thread_typed () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let victim =
        A.Athread.start_on rt ~node:3 ~name:"doomed" (fun () ->
            Sim.Fiber.consume 10.0)
      in
      (* Let it start running on node 3 before the crash cuts it down. *)
      Sim.Fiber.consume 1e-3;
      A.Runtime.fail_stop rt ~node:3;
      let died =
        try
          A.Api.join rt victim;
          None
        with Topaz.Rpc.Node_dead { node } -> Some node
      in
      Alcotest.(check (option int)) "join surfaces the crash" (Some 3) died;
      Alcotest.(check bool) "join returned promptly" true (A.Api.now rt < 0.5))

let test_future_await_typed () =
  (* The async helper is mid-invocation on the victim when the crash
     fires: await must re-raise the typed failure, not hang. *)
  A.Cluster.run_value (crashy_cfg ~nodes:3 ()) (fun rt ->
      let obj = A.Api.create rt ~name:"target" (ref 1) in
      A.Api.move_to rt obj ~dest:1;
      let fut =
        A.Api.invoke_async rt obj (fun r ->
            Sim.Fiber.consume 50e-3;
            !r)
      in
      (* Give the helper time to migrate to node 1 and start the op. *)
      Sim.Fiber.consume 15e-3;
      A.Runtime.fail_stop rt ~node:1;
      let typed =
        try
          ignore (A.Api.await rt fut : int);
          false
        with
        | Topaz.Rpc.Node_dead _ | A.Aobject.Object_lost _ -> true
      in
      Alcotest.(check bool) "await raises a typed failure" true typed)

(* --- recovery ------------------------------------------------------------ *)

let test_replica_promotion () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let obj = A.Api.create rt ~name:"survivor" (ref 42) in
      A.Api.move_to rt obj ~dest:1;
      A.Api.replicate rt ~copy obj ~dest:2;
      A.Api.replicate rt ~copy obj ~dest:3;
      A.Runtime.fail_stop rt ~node:1;
      Alcotest.(check int) "one promotion" 1
        (A.Runtime.counters rt).A.Runtime.recovery_promotions;
      (* Same-epoch tie promotes the lowest live replica node. *)
      Alcotest.(check int) "promoted to lowest replica" 2 (A.Api.locate rt obj);
      let v = A.Api.invoke rt obj (fun r -> !r) in
      Alcotest.(check int) "value survived the funeral" 42 v;
      (match A.Audit.check_objects rt [ A.Aobject.Any obj ] with
      | [] -> ()
      | v :: _ -> Alcotest.failf "audit: %a" A.Audit.pp_violation v);
      (* The promoted master must accept writes and serve them back. *)
      let v' = A.Api.invoke rt ~mode:A.San_hooks.Write obj (fun r ->
          incr r; !r)
      in
      Alcotest.(check int) "writable after promotion" 43 v')

let test_promotion_restores_latest_epoch () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let anchors = make_anchors rt ~nodes:4 in
      let obj = A.Api.create rt ~name:"epochs" (ref 0) in
      A.Api.move_to rt obj ~dest:1;
      A.Api.replicate rt ~copy obj ~dest:2;
      (* The write recalls node 2's snapshot and advances the master
         epoch; only node 3's later re-grant carries the new state.  (An
         invoke migrates its caller to the master, so the write runs on
         a joined anchor thread — main must not be standing on the
         victim when it pulls the trigger.) *)
      ignore
        (on rt anchors 0 (fun () ->
             A.Invoke.invoke rt ~mode:A.San_hooks.Write obj (fun r ->
                 r := 7;
                 !r))
          : int);
      A.Api.replicate rt ~copy obj ~dest:3;
      A.Runtime.fail_stop rt ~node:1;
      Alcotest.(check int) "latest-epoch replica wins" 3 (A.Api.locate rt obj);
      Alcotest.(check int) "latest value restored" 7
        (A.Api.invoke rt obj (fun r -> !r)))

let test_home_chain_repair () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let anchors = make_anchors rt ~nodes:4 in
      let obj = A.Api.create rt ~name:"wanderer" (ref 9) in
      (* 0 -> 2 -> 1 leaves node 2 (and the home entry on node 0)
         forwarding into node 1; the replica on node 3 keeps the object
         alive through node 1's funeral.  Recovery must rewrite the
         stale entries to point at the promoted master, so live nodes
         never chase into the corpse. *)
      A.Api.move_to rt obj ~dest:2;
      A.Api.move_to rt obj ~dest:1;
      A.Api.replicate rt ~copy obj ~dest:3;
      A.Runtime.fail_stop rt ~node:1;
      Alcotest.(check bool) "chain entries repaired" true
        ((A.Runtime.counters rt).A.Runtime.crash_chain_repairs >= 1);
      List.iter
        (fun node ->
          Alcotest.(check int)
            (Printf.sprintf "read via repaired chain from node %d" node)
            9
            (on rt anchors node (fun () ->
                 A.Invoke.invoke rt ~mode:A.San_hooks.Read obj (fun r -> !r))))
        [ 0; 2; 3 ])

let test_immutable_promotion () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let obj = A.Api.create rt ~name:"constant" (ref 17) in
      A.Api.move_to rt obj ~dest:1;
      A.Api.set_immutable rt obj;
      A.Api.replicate rt ~copy obj ~dest:2;
      A.Api.replicate rt ~copy obj ~dest:3;
      A.Runtime.fail_stop rt ~node:1;
      Alcotest.(check int) "immutable re-mastered on a live copy" 2
        (A.Api.locate rt obj);
      Alcotest.(check int) "still readable everywhere" 17
        (A.Api.invoke rt obj (fun r -> !r)))

let test_unaffected_objects_untouched () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let bystander = A.Api.create rt ~name:"bystander" (ref 3) in
      A.Api.move_to rt bystander ~dest:2;
      A.Runtime.fail_stop rt ~node:1;
      Alcotest.(check int) "object on a live node unaffected" 3
        (A.Api.invoke rt bystander (fun r -> !r));
      Alcotest.(check int) "nothing lost" 0
        (A.Runtime.counters rt).A.Runtime.objects_lost;
      Alcotest.(check int) "nothing promoted" 0
        (A.Runtime.counters rt).A.Runtime.recovery_promotions)

(* --- transient outage ---------------------------------------------------- *)

let test_transient_outage_rides_out () =
  (* Node 2 goes dark for 30 ms mid-run and comes back: every queue item
     is still processed exactly once, and the outage is counted as a
     restart, not a funeral. *)
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:13L
      ~crashes:[ { A.Config.cnode = 2; at = 10e-3; restart = Some 40e-3 } ]
      ()
  in
  let r = A.Cluster.run_value cfg (fun rt ->
      W.Work_queue.run rt
        {
          W.Work_queue.items = 40;
          work_cpu = 2e-3;
          batch = 4;
          workers_per_node = 2;
          move_queue_at = None;
        })
  in
  Alcotest.(check int) "all items processed" 40 r.W.Work_queue.processed

let test_sor_transient_crash_checksum () =
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:24 ~cols:48 in
  let iters = 4 in
  let want = W.Sor_core.Full_grid.checksum (W.Sor_core.reference p ~iters) in
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:13L
      ~crashes:[ { A.Config.cnode = 3; at = 20e-3; restart = Some 60e-3 } ]
      ()
  in
  let r, ctrs =
    A.Cluster.run_value cfg (fun rt ->
        let c = W.Sor_amber.default_cfg rt in
        let r = W.Sor_amber.run rt p ~cfg:c ~iters () in
        (r, A.Runtime.counters rt))
  in
  Alcotest.(check (float 0.0)) "checksum unchanged by the outage" want
    r.W.Sor_amber.checksum;
  Alcotest.(check int) "one crash, one restart" 1 ctrs.A.Runtime.node_restarts;
  Alcotest.(check int) "counted as a crash too" 1 ctrs.A.Runtime.node_crashes

(* --- inertness and reporting --------------------------------------------- *)

let report_text cfg body =
  let text = ref "" in
  A.Cluster.run_value cfg (fun rt ->
      body rt;
      text :=
        Format.asprintf "%a" A.Stats_report.pp (A.Stats_report.capture rt));
  !text

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let inert_body rt =
  ignore
    (W.Fixtures.racy_counter rt ~threads:4 ~increments:10 : W.Fixtures.result)

let test_inert_without_crash_flags () =
  (* Passing empty crash options explicitly must be byte-identical to
     not mentioning crashes at all: the injector arms nothing, splits no
     RNG, prints no report lines. *)
  let plain = A.Config.make ~nodes:4 ~cpus:2 ~seed:42L () in
  let explicit =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:42L ~crashes:[] ~crash_rate:0.0 ()
  in
  Alcotest.(check bool) "crashes not enabled" false
    (A.Config.crashes_enabled explicit);
  let a = report_text plain inert_body and b = report_text explicit inert_body in
  Alcotest.(check string) "byte-identical reports" a b;
  Alcotest.(check bool) "no crash lines" false (contains ~affix:"crashes:" a)

let test_crashed_report_lines () =
  let text =
    report_text (crashy_cfg ()) (fun rt ->
        let obj = A.Api.create rt ~name:"s" (ref 1) in
        A.Api.move_to rt obj ~dest:1;
        A.Api.replicate rt ~copy obj ~dest:2;
        A.Runtime.fail_stop rt ~node:1;
        ignore (A.Api.invoke rt obj (fun r -> !r) : int))
  in
  Alcotest.(check bool) "crashes line printed" true
    (contains ~affix:"crashes: 1 injected" text);
  Alcotest.(check bool) "recovery line printed" true
    (contains ~affix:"recovery: 1 replicas promoted" text)

let test_crash_config_validation () =
  let rejects label mk =
    Alcotest.check_raises label
      (Invalid_argument
         (match mk with
         | `Node0 ->
           "Config: crash node must be in [1, nodes) (node 0 hosts the root \
            environment and cannot crash)"
         | `OutOfRange ->
           "Config: crash node must be in [1, nodes) (node 0 hosts the root \
            environment and cannot crash)"
         | `NegTime -> "Config: crash time must be non-negative"
         | `BadRestart -> "Config: crash restart must come after the crash"
         | `Dup -> "Config: at most one scheduled crash per node"))
      (fun () ->
        let crashes =
          match mk with
          | `Node0 -> [ { A.Config.cnode = 0; at = 0.1; restart = None } ]
          | `OutOfRange -> [ { A.Config.cnode = 4; at = 0.1; restart = None } ]
          | `NegTime -> [ { A.Config.cnode = 1; at = -0.1; restart = None } ]
          | `BadRestart ->
            [ { A.Config.cnode = 1; at = 0.2; restart = Some 0.2 } ]
          | `Dup ->
            [
              { A.Config.cnode = 1; at = 0.1; restart = None };
              { A.Config.cnode = 1; at = 0.3; restart = None };
            ]
        in
        A.Config.validate
          (A.Config.make ~nodes:4 ~cpus:2 ~seed:1L ~crashes ()))
  in
  rejects "node 0 is never crashable" `Node0;
  rejects "crash node must exist" `OutOfRange;
  rejects "crash time must be non-negative" `NegTime;
  rejects "restart must follow the crash" `BadRestart;
  rejects "one scheduled crash per node" `Dup;
  (* The well-formed shape is accepted and reported as enabled. *)
  let ok =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:1L
      ~crashes:[ { A.Config.cnode = 3; at = 0.1; restart = Some 0.4 } ]
      ()
  in
  A.Config.validate ok;
  Alcotest.(check bool) "valid schedule accepted" true
    (A.Config.crashes_enabled ok)

(* --- transport plumbing -------------------------------------------------- *)

let test_watch_peer_fires_once_and_clears () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let rpc = A.Runtime.rpc rt in
      let hits = ref [] in
      ignore (Topaz.Rpc.watch_peer rpc ~node:1 (fun e -> hits := e :: !hits) : int);
      ignore (Topaz.Rpc.watch_peer rpc ~node:1 (fun e -> hits := e :: !hits) : int);
      A.Runtime.fail_stop rt ~node:1;
      Alcotest.(check int) "both watchers fired" 2 (List.length !hits);
      List.iter
        (fun e ->
          match e with
          | Topaz.Rpc.Node_dead { node } ->
            Alcotest.(check int) "carries the corpse id" 1 node
          | _ -> Alcotest.fail "watcher got a non-Node_dead exception")
        !hits;
      (* Firing cleared the registrations: marking again re-fires nothing. *)
      Topaz.Rpc.mark_node_dead rpc ~node:1;
      Alcotest.(check int) "registrations cleared after firing" 2
        (List.length !hits))

let test_unwatch_removes () =
  A.Cluster.run_value (crashy_cfg ()) (fun rt ->
      let rpc = A.Runtime.rpc rt in
      let fired = ref false in
      let id = Topaz.Rpc.watch_peer rpc ~node:2 (fun _ -> fired := true) in
      Topaz.Rpc.unwatch rpc ~node:2 id;
      Topaz.Rpc.unwatch rpc ~node:2 id;
      A.Runtime.fail_stop rt ~node:2;
      Alcotest.(check bool) "unwatched watcher stays silent" false !fired)

(* --- the storm ----------------------------------------------------------- *)

let audit_or_fail rt objs =
  match
    A.Audit.check_objects rt
      (Array.to_list (Array.map (fun o -> A.Aobject.Any o) objs))
  with
  | [] -> ()
  | vs ->
    QCheck.Test.fail_reportf "audit found %d violations, first: %a"
      (List.length vs) A.Audit.pp_violation (List.hd vs)

(* Can the object outlive [victim]?  Master elsewhere, or a surviving
   snapshot to promote.  Read off the object just before the funeral. *)
let survivable obj ~victim =
  obj.A.Aobject.location <> victim
  || List.exists
       (fun n -> n <> victim && A.Aobject.snapshot obj ~node:n <> None)
       obj.A.Aobject.replicas

let run_storm ~sanitize ~faults salt =
  let nodes = 4 in
  let cfg =
    crashy_cfg ~nodes ~seed:((salt * 7919) + 23) ~faults ()
  in
  A.Cluster.run_value cfg (fun rt ->
      let san = if sanitize then Some (Analysis.Ambersan.attach rt) else None in
      let rng = Sim.Rng.make (Int64.of_int (salt + 313)) in
      let k = 3 in
      let objs =
        Array.init k (fun i ->
            A.Api.create rt ~name:(Printf.sprintf "s%d" i) (ref 0))
      in
      let model = Array.make k 0 in
      let anchors = make_anchors rt ~nodes in
      (* Pre-crash: random sequential reads, writes, installs, moves. *)
      for _ = 1 to 14 do
        let o = Sim.Rng.int rng k and node = Sim.Rng.int rng nodes in
        match Sim.Rng.int rng 8 with
        | 0 | 1 | 2 ->
          let v =
            on rt anchors node (fun () ->
                A.Invoke.invoke rt ~mode:A.San_hooks.Read objs.(o) (fun r -> !r))
          in
          if v <> model.(o) then
            QCheck.Test.fail_reportf "pre-crash stale read: obj %d got %d want %d"
              o v model.(o)
        | 3 | 4 ->
          ignore
            (on rt anchors node (fun () ->
                 A.Invoke.invoke rt ~mode:A.San_hooks.Write objs.(o) (fun r ->
                     incr r;
                     !r))
              : int);
          model.(o) <- model.(o) + 1
        | 5 | 6 ->
          let dest = Sim.Rng.int rng nodes in
          on rt anchors node (fun () -> A.Api.replicate rt ~copy objs.(o) ~dest)
        | _ ->
          let dest = Sim.Rng.int rng nodes in
          on rt anchors node (fun () -> A.Api.move_to rt objs.(o) ~dest)
      done;
      (* The funeral: nodes 1..3 are crashable; record what should
         survive before pulling the trigger. *)
      let victim = 1 + Sim.Rng.int rng (nodes - 1) in
      let expect_alive = Array.map (fun o -> survivable o ~victim) objs in
      A.Runtime.fail_stop rt ~node:victim;
      if (A.Runtime.counters rt).A.Runtime.node_crashes <> 1 then
        QCheck.Test.fail_reportf "crash not counted";
      (* Post-crash: every live node probes every object.  Survivable
         objects must serve the oracle value; doomed ones must fail
         crisply with Object_lost — never hang, never misvalue. *)
      for node = 0 to nodes - 1 do
        if A.Runtime.node_is_up rt node then
          Array.iteri
            (fun i obj ->
              match
                on rt anchors node (fun () ->
                    A.Invoke.invoke rt ~mode:A.San_hooks.Read obj (fun r -> !r))
              with
              | v ->
                if not expect_alive.(i) then
                  QCheck.Test.fail_reportf
                    "obj %d read %d from node %d but had no surviving copy" i v
                    node
                else if v <> model.(i) then
                  QCheck.Test.fail_reportf
                    "post-crash stale read: obj %d got %d want %d (node %d)" i v
                    model.(i) node
              | exception A.Aobject.Object_lost _ ->
                if expect_alive.(i) then
                  QCheck.Test.fail_reportf
                    "obj %d lost though a copy survived node %d's crash" i
                    victim)
            objs
      done;
      (* Survivors keep working: a write from a live node, then reads
         from every live node converge on it. *)
      Array.iteri
        (fun i obj ->
          if expect_alive.(i) then begin
            let node = ref (Sim.Rng.int rng nodes) in
            while not (A.Runtime.node_is_up rt !node) do
              node := (!node + 1) mod nodes
            done;
            ignore
              (on rt anchors !node (fun () ->
                   A.Invoke.invoke rt ~mode:A.San_hooks.Write obj (fun r ->
                       incr r;
                       !r))
                : int);
            model.(i) <- model.(i) + 1;
            for n = 0 to nodes - 1 do
              if A.Runtime.node_is_up rt n then
                let v =
                  on rt anchors n (fun () ->
                      A.Invoke.invoke rt ~mode:A.San_hooks.Read obj (fun r -> !r))
                in
                if v <> model.(i) then
                  QCheck.Test.fail_reportf
                    "post-crash write did not converge: obj %d got %d want %d" i
                    v model.(i)
            done
          end)
        objs;
      audit_or_fail rt objs;
      match san with
      | None -> true
      | Some s ->
        let rep = Analysis.Ambersan.finalize s in
        if not (Analysis.Ambersan.clean rep) then
          QCheck.Test.fail_reportf "sanitizer not clean:@.%a"
            Analysis.Ambersan.pp_report rep;
        true)

let lossy =
  { no_faults with Hw.Ethernet.drop_prob = 0.03; dup_prob = 0.01 }

let salt = QCheck.(int_bound 100_000)

let prop_storm_plain =
  QCheck.Test.make ~name:"crash recovery vs sequential oracle (plain)" ~count:60
    salt (fun s -> run_storm ~sanitize:false ~faults:no_faults s)

let prop_storm_sanitized =
  QCheck.Test.make ~name:"crash recovery under AmberSan" ~count:40 salt (fun s ->
      run_storm ~sanitize:true ~faults:no_faults s)

(* Faults stacked on the funeral: the reliable transport retries losses,
   so the oracle holds unchanged — the default retransmit budget is
   unreachable under these rates, meaning no spurious deaths. *)
let prop_storm_faulted =
  QCheck.Test.make ~name:"crash recovery under packet loss" ~count:40 salt
    (fun s ->
      run_storm ~sanitize:false
        ~faults:{ lossy with Hw.Ethernet.drop_prob = 0.02 }
        s)

(* Pinned generator seed, same convention as the replica suite: every
   `dune runtest` explores the same salts (QCHECK_SEED overrides). *)
let rand () =
  let seed =
    match int_of_string_opt (Sys.getenv "QCHECK_SEED") with
    | Some s -> s
    | None -> 0xF0E19
    | exception Not_found -> 0xF0E19
  in
  Random.State.make [| seed |]

let suite =
  [
    Alcotest.test_case "call to dead node: Node_dead" `Quick
      test_call_dead_node_typed;
    Alcotest.test_case "retransmit cap vs stalled-forever peer" `Quick
      test_retransmit_cap_vs_stalled_forever;
    Alcotest.test_case "unreplicated loss: Object_lost" `Quick
      test_object_lost_typed;
    Alcotest.test_case "join of killed thread: Node_dead" `Quick
      test_join_killed_thread_typed;
    Alcotest.test_case "future await: typed failure" `Quick
      test_future_await_typed;
    Alcotest.test_case "replica promoted to master" `Quick
      test_replica_promotion;
    Alcotest.test_case "promotion restores the latest epoch" `Quick
      test_promotion_restores_latest_epoch;
    Alcotest.test_case "home chain repaired around the corpse" `Quick
      test_home_chain_repair;
    Alcotest.test_case "immutable object re-mastered" `Quick
      test_immutable_promotion;
    Alcotest.test_case "bystander objects untouched" `Quick
      test_unaffected_objects_untouched;
    Alcotest.test_case "transient outage: queue exactly-once" `Quick
      test_transient_outage_rides_out;
    Alcotest.test_case "transient outage: sor checksum parity" `Quick
      test_sor_transient_crash_checksum;
    Alcotest.test_case "no crash flags: injector inert" `Quick
      test_inert_without_crash_flags;
    Alcotest.test_case "crashed run: report lines" `Quick
      test_crashed_report_lines;
    Alcotest.test_case "crash schedule validation" `Quick
      test_crash_config_validation;
    Alcotest.test_case "watch_peer fires once and clears" `Quick
      test_watch_peer_fires_once_and_clears;
    Alcotest.test_case "unwatch removes the watcher" `Quick
      test_unwatch_removes;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_storm_plain;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_storm_sanitized;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_storm_faulted;
  ]
