(* QCheck coherence suite for the read-replica protocol.

   Each case derives a random program — Read/Write invocations from
   random nodes, replica installs, master moves — from an integer salt
   (the same deterministic-salt style as the audit storm property) and
   checks it against a sequential oracle: after a completed write, no
   read, from any node, may return a stale value.  A second phase runs
   genuinely concurrent readers against a writer and checks per-reader
   monotonicity.  The same programs run plain, under AmberSan, and under
   fault injection (packet loss + receive stalls), where the reliable
   transport must retry lost invalidations rather than drop them. *)

module A = Amber

let copy r = ref !r

(* Run [n_ops] random operations strictly sequentially (each on its own
   joined thread so it executes from a chosen node) and compare every
   result against the model.  Returns the objects for later phases. *)
let sequential_phase rt rng ~nodes ~n_ops =
  let k = 2 in
  let objs =
    Array.init k (fun i ->
        A.Api.create rt ~name:(Printf.sprintf "q%d" i) (ref 0))
  in
  let model = Array.make k 0 in
  let anchors =
    Array.init nodes (fun node ->
        let a =
          A.Api.create rt ~name:(Printf.sprintf "anchor%d" node) ()
        in
        if node <> 0 then A.Api.move_to rt a ~dest:node;
        a)
  in
  let on node f = A.Api.join rt (A.Api.start_invoke rt anchors.(node) f) in
  for _ = 1 to n_ops do
    let o = Sim.Rng.int rng k in
    let node = Sim.Rng.int rng nodes in
    match Sim.Rng.int rng 8 with
    | 0 | 1 | 2 | 3 ->
      let v =
        on node (fun () ->
            A.Invoke.invoke rt ~mode:A.San_hooks.Read objs.(o) (fun r -> !r))
      in
      if v <> model.(o) then
        QCheck.Test.fail_reportf
          "stale read: obj %d from node %d returned %d, oracle says %d" o
          node v model.(o)
    | 4 | 5 ->
      let v =
        on node (fun () ->
            A.Invoke.invoke rt ~mode:A.San_hooks.Write objs.(o) (fun r ->
                incr r;
                !r))
      in
      model.(o) <- model.(o) + 1;
      if v <> model.(o) then
        QCheck.Test.fail_reportf
          "write result: obj %d from node %d returned %d, oracle says %d" o
          node v model.(o)
    | 6 ->
      let dest = Sim.Rng.int rng nodes in
      on node (fun () -> A.Api.replicate rt ~copy objs.(o) ~dest)
    | _ ->
      let dest = Sim.Rng.int rng nodes in
      on node (fun () -> A.Api.move_to rt objs.(o) ~dest)
  done;
  (objs, model, anchors)

(* Genuinely concurrent readers against one writer on a single counter:
   each reader's observed sequence must be non-decreasing (a decrease is
   a read served from a recalled or stale snapshot) and bounded by the
   writes issued; afterwards a read from every node must see the final
   value. *)
let concurrent_phase rt rng ~nodes ~anchors obj base ~writes =
  let reads_each = 6 in
  let traces = Array.make nodes [] in
  let readers =
    List.init nodes (fun node ->
        A.Api.start_invoke rt
          ~name:(Printf.sprintf "rd%d" node)
          anchors.(node)
          (fun () ->
            for _ = 1 to reads_each do
              let v =
                A.Invoke.invoke rt ~mode:A.San_hooks.Read obj (fun r -> !r)
              in
              traces.(node) <- v :: traces.(node);
              Sim.Fiber.consume 0.2e-3
            done))
  in
  let writer =
    A.Api.start rt ~name:"writer" (fun () ->
        for _ = 1 to writes do
          A.Invoke.invoke rt ~mode:A.San_hooks.Write obj (fun r -> incr r);
          if Sim.Rng.int rng 2 = 0 then
            A.Api.replicate rt ~copy obj ~dest:(Sim.Rng.int rng nodes);
          Sim.Fiber.consume 0.5e-3
        done)
  in
  List.iter (fun t -> A.Api.join rt t) readers;
  A.Api.join rt writer;
  Array.iteri
    (fun node tr ->
      let tr = List.rev tr in
      let rec mono = function
        | a :: (b :: _ as rest) ->
          if a > b then
            QCheck.Test.fail_reportf
              "node %d read a decreasing sequence: %s" node
              (String.concat " "
                 (List.map string_of_int tr))
          else mono rest
        | _ -> ()
      in
      mono tr;
      List.iter
        (fun v ->
          if v < base || v > base + writes then
            QCheck.Test.fail_reportf
              "node %d read %d, outside [%d, %d]" node v base (base + writes))
        tr)
    traces;
  (* Convergence: with the writer done, every node must see the final
     value regardless of what replicas remain. *)
  for node = 0 to nodes - 1 do
    let v =
      A.Api.join rt
        (A.Api.start_invoke rt anchors.(node) (fun () ->
             A.Invoke.invoke rt ~mode:A.San_hooks.Read obj (fun r -> !r)))
    in
    if v <> base + writes then
      QCheck.Test.fail_reportf "node %d converged to %d, want %d" node v
        (base + writes)
  done

let audit_or_fail rt objs =
  match
    A.Audit.check_objects rt
      (Array.to_list (Array.map (fun o -> A.Aobject.Any o) objs))
  with
  | [] -> ()
  | vs ->
    QCheck.Test.fail_reportf "audit found %d violations, first: %a"
      (List.length vs) A.Audit.pp_violation (List.hd vs)

let run_case ~sanitize ~faults ~concurrent salt =
  let nodes = 3 in
  let cfg =
    A.Config.make ~nodes ~cpus:2
      ~seed:(Int64.of_int ((salt * 7919) + 17))
      ~faults ()
  in
  A.Cluster.run_value cfg (fun rt ->
      let san = if sanitize then Some (Analysis.Ambersan.attach rt) else None in
      let rng = Sim.Rng.make (Int64.of_int (salt + 101)) in
      let objs, model, anchors = sequential_phase rt rng ~nodes ~n_ops:18 in
      if concurrent then
        concurrent_phase rt rng ~nodes ~anchors objs.(0) model.(0) ~writes:4;
      audit_or_fail rt objs;
      match san with
      | None -> true
      | Some s ->
        let rep = Analysis.Ambersan.finalize s in
        if not (Analysis.Ambersan.clean rep) then
          QCheck.Test.fail_reportf "sanitizer not clean:@.%a"
            Analysis.Ambersan.pp_report rep;
        true)

let no_faults =
  {
    Hw.Ethernet.drop_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    delay_spike = 0.0;
    stalls = [];
  }

let lossy_faults salt =
  (* 5% loss plus a short receive stall on a random non-master node —
     the invalidation round must retry through both. *)
  let stall_node = 1 + (salt mod 2) in
  {
    Hw.Ethernet.drop_prob = 0.05;
    dup_prob = 0.01;
    delay_prob = 0.0;
    delay_spike = 0.0;
    stalls =
      [
        {
          Hw.Ethernet.node = stall_node;
          from_t = 5e-3;
          until_t = 5e-3 +. (float_of_int (1 + (salt mod 3)) *. 5e-3);
        };
      ];
  }

let salt = QCheck.(int_bound 100_000)

(* Plain: concurrent readers race the writer (no sanitizer, so the
   deliberate Read/Write overlap is fine); 80 cases. *)
let prop_plain =
  QCheck.Test.make ~name:"replica coherence vs sequential oracle (plain)"
    ~count:80 salt (fun s ->
      run_case ~sanitize:false ~faults:no_faults ~concurrent:true s)

(* Sanitized: sequential programs only (every op joined, so the event
   stream is race-free) — AmberSan must find no races, no coherence
   drift, and no stale replica reads; 60 cases. *)
let prop_sanitized =
  QCheck.Test.make ~name:"replica coherence under AmberSan" ~count:60 salt
    (fun s -> run_case ~sanitize:true ~faults:no_faults ~concurrent:false s)

(* Faulted: 5% packet loss, duplicates and a receive stall.  Lost
   invalidations must be retransmitted, never dropped: the oracle and
   the convergence check hold exactly as in the fault-free runs. *)
let prop_faulted =
  QCheck.Test.make ~name:"replica coherence under packet loss and stalls"
    ~count:60 salt (fun s ->
      run_case ~sanitize:false ~faults:(lossy_faults s) ~concurrent:true s)

(* Unlike the fuzzing suites, the coherence properties run on a pinned
   generator seed so every `dune runtest` explores the same 200 salts
   (QCHECK_SEED still overrides).  Widen coverage by changing the seed,
   not by rerunning. *)
let rand () =
  let seed =
    match int_of_string_opt (Sys.getenv "QCHECK_SEED") with
    | Some s -> s
    | None -> 0xA3BE12
    | exception Not_found -> 0xA3BE12
  in
  Random.State.make [| seed |]

(* Regression: a snapshot capture must refuse while a Write/Atomic is
   executing at the master, and the epoch may only be bumped once the
   operation completes.  A capture racing a suspended write used to ship
   a torn snapshot tagged with the post-write epoch, which every
   freshness check then accepted. *)
let test_no_capture_mid_write () =
  let cfg = A.Config.make ~nodes:2 ~cpus:2 ~seed:7L () in
  A.Cluster.run_value cfg (fun rt ->
      let o = A.Api.create rt ~name:"guarded" (ref 0) in
      let w =
        A.Api.start rt ~name:"writer" (fun () ->
            A.Invoke.invoke rt ~mode:A.San_hooks.Write o (fun r ->
                r := 1;
                (* Suspend mid-mutation: until we resume, the state is
                   torn and must not be captured. *)
                Sim.Fiber.consume 10e-3;
                r := 2))
      in
      (* Let the writer get inside its operation, then try to grant a
         replica while it is suspended mid-write. *)
      Sim.Fiber.consume 2e-3;
      Alcotest.(check int) "writer counted as active" 1 o.A.Aobject.writers;
      A.Api.replicate rt ~copy o ~dest:1;
      Alcotest.(check (list int)) "grant refused mid-write" []
        o.A.Aobject.replicas;
      Alcotest.(check int) "epoch unchanged while the write runs" 0
        o.A.Aobject.epoch;
      A.Api.join rt w;
      Alcotest.(check int) "epoch bumped once the write completed" 1
        o.A.Aobject.epoch;
      Alcotest.(check int) "writer no longer active" 0 o.A.Aobject.writers;
      (* With the write finished the grant goes through and serves the
         fully written value. *)
      A.Api.replicate rt ~copy o ~dest:1;
      let anchor = A.Api.create rt ~name:"anchor1" () in
      A.Api.move_to rt anchor ~dest:1;
      let v =
        A.Api.join rt
          (A.Api.start_invoke rt anchor (fun () ->
               A.Invoke.invoke rt ~mode:A.San_hooks.Read o (fun r -> !r)))
      in
      Alcotest.(check int) "replica read sees the completed write" 2 v;
      A.Audit.check_exn rt [ A.Aobject.Any o ])

(* Regression: every grant is stamped with a fresh generation and a
   recall clears the grant record.  The delivery guard relies on this to
   tell a retransmitted copy of a recalled grant from the node's live
   one — a late stale copy used to unconditionally deregister the node,
   silently orphaning a re-granted live replica from later invalidation
   rounds. *)
let test_grant_generations () =
  let cfg = A.Config.make ~nodes:2 ~cpus:2 ~seed:11L () in
  A.Cluster.run_value cfg (fun rt ->
      let o = A.Api.create rt ~name:"gen" (ref 0) in
      A.Api.replicate rt ~copy o ~dest:1;
      let g1 =
        match o.A.Aobject.grants with
        | [ (1, g) ] -> g
        | _ -> Alcotest.fail "expected exactly one grant, for node 1"
      in
      (* The write's recall must clear the grant record together with the
         replica set. *)
      A.Invoke.invoke rt ~mode:A.San_hooks.Write o (fun r -> incr r);
      Alcotest.(check (list int)) "replicas recalled" [] o.A.Aobject.replicas;
      Alcotest.(check bool) "grant record cleared by the recall" true
        (o.A.Aobject.grants = []);
      (* A re-grant gets a strictly newer generation, so a late copy of
         the first grant can neither install nor deregister it. *)
      A.Api.replicate rt ~copy o ~dest:1;
      (match o.A.Aobject.grants with
      | [ (1, g2) ] ->
        Alcotest.(check bool) "re-grant carries a fresh generation" true
          (g2 > g1)
      | _ -> Alcotest.fail "expected exactly one grant, for node 1");
      Alcotest.(check (list int)) "replica re-granted" [ 1 ]
        o.A.Aobject.replicas;
      (match A.Aobject.snapshot o ~node:1 with
      | Some (ep, v) ->
        Alcotest.(check int) "snapshot at the current epoch"
          o.A.Aobject.epoch ep;
        Alcotest.(check int) "snapshot sees the write" 1 !v
      | None -> Alcotest.fail "re-granted replica has no snapshot");
      A.Audit.check_exn rt [ A.Aobject.Any o ])

let suite =
  [
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_plain;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_sanitized;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_faulted;
    Alcotest.test_case "no snapshot capture during a write" `Quick
      test_no_capture_mid_write;
    Alcotest.test_case "grant generations are fresh per grant" `Quick
      test_grant_generations;
  ]
