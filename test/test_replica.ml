(* QCheck coherence suite for the read-replica protocol.

   Each case derives a random program — Read/Write invocations from
   random nodes, replica installs, master moves — from an integer salt
   (the same deterministic-salt style as the audit storm property) and
   checks it against a sequential oracle: after a completed write, no
   read, from any node, may return a stale value.  A second phase runs
   genuinely concurrent readers against a writer and checks per-reader
   monotonicity.  The same programs run plain, under AmberSan, and under
   fault injection (packet loss + receive stalls), where the reliable
   transport must retry lost invalidations rather than drop them. *)

module A = Amber

let copy r = ref !r

(* Run [n_ops] random operations strictly sequentially (each on its own
   joined thread so it executes from a chosen node) and compare every
   result against the model.  Returns the objects for later phases. *)
let sequential_phase rt rng ~nodes ~n_ops =
  let k = 2 in
  let objs =
    Array.init k (fun i ->
        A.Api.create rt ~name:(Printf.sprintf "q%d" i) (ref 0))
  in
  let model = Array.make k 0 in
  let anchors =
    Array.init nodes (fun node ->
        let a =
          A.Api.create rt ~name:(Printf.sprintf "anchor%d" node) ()
        in
        if node <> 0 then A.Api.move_to rt a ~dest:node;
        a)
  in
  let on node f = A.Api.join rt (A.Api.start_invoke rt anchors.(node) f) in
  for _ = 1 to n_ops do
    let o = Sim.Rng.int rng k in
    let node = Sim.Rng.int rng nodes in
    match Sim.Rng.int rng 8 with
    | 0 | 1 | 2 | 3 ->
      let v =
        on node (fun () ->
            A.Invoke.invoke rt ~mode:A.San_hooks.Read objs.(o) (fun r -> !r))
      in
      if v <> model.(o) then
        QCheck.Test.fail_reportf
          "stale read: obj %d from node %d returned %d, oracle says %d" o
          node v model.(o)
    | 4 | 5 ->
      let v =
        on node (fun () ->
            A.Invoke.invoke rt ~mode:A.San_hooks.Write objs.(o) (fun r ->
                incr r;
                !r))
      in
      model.(o) <- model.(o) + 1;
      if v <> model.(o) then
        QCheck.Test.fail_reportf
          "write result: obj %d from node %d returned %d, oracle says %d" o
          node v model.(o)
    | 6 ->
      let dest = Sim.Rng.int rng nodes in
      on node (fun () -> A.Api.replicate rt ~copy objs.(o) ~dest)
    | _ ->
      let dest = Sim.Rng.int rng nodes in
      on node (fun () -> A.Api.move_to rt objs.(o) ~dest)
  done;
  (objs, model, anchors)

(* Genuinely concurrent readers against one writer on a single counter:
   each reader's observed sequence must be non-decreasing (a decrease is
   a read served from a recalled or stale snapshot) and bounded by the
   writes issued; afterwards a read from every node must see the final
   value. *)
let concurrent_phase rt rng ~nodes ~anchors obj base ~writes =
  let reads_each = 6 in
  let traces = Array.make nodes [] in
  let readers =
    List.init nodes (fun node ->
        A.Api.start_invoke rt
          ~name:(Printf.sprintf "rd%d" node)
          anchors.(node)
          (fun () ->
            for _ = 1 to reads_each do
              let v =
                A.Invoke.invoke rt ~mode:A.San_hooks.Read obj (fun r -> !r)
              in
              traces.(node) <- v :: traces.(node);
              Sim.Fiber.consume 0.2e-3
            done))
  in
  let writer =
    A.Api.start rt ~name:"writer" (fun () ->
        for _ = 1 to writes do
          A.Invoke.invoke rt ~mode:A.San_hooks.Write obj (fun r -> incr r);
          if Sim.Rng.int rng 2 = 0 then
            A.Api.replicate rt ~copy obj ~dest:(Sim.Rng.int rng nodes);
          Sim.Fiber.consume 0.5e-3
        done)
  in
  List.iter (fun t -> A.Api.join rt t) readers;
  A.Api.join rt writer;
  Array.iteri
    (fun node tr ->
      let tr = List.rev tr in
      let rec mono = function
        | a :: (b :: _ as rest) ->
          if a > b then
            QCheck.Test.fail_reportf
              "node %d read a decreasing sequence: %s" node
              (String.concat " "
                 (List.map string_of_int tr))
          else mono rest
        | _ -> ()
      in
      mono tr;
      List.iter
        (fun v ->
          if v < base || v > base + writes then
            QCheck.Test.fail_reportf
              "node %d read %d, outside [%d, %d]" node v base (base + writes))
        tr)
    traces;
  (* Convergence: with the writer done, every node must see the final
     value regardless of what replicas remain. *)
  for node = 0 to nodes - 1 do
    let v =
      A.Api.join rt
        (A.Api.start_invoke rt anchors.(node) (fun () ->
             A.Invoke.invoke rt ~mode:A.San_hooks.Read obj (fun r -> !r)))
    in
    if v <> base + writes then
      QCheck.Test.fail_reportf "node %d converged to %d, want %d" node v
        (base + writes)
  done

let audit_or_fail rt objs =
  match
    A.Audit.check_objects rt
      (Array.to_list (Array.map (fun o -> A.Aobject.Any o) objs))
  with
  | [] -> ()
  | vs ->
    QCheck.Test.fail_reportf "audit found %d violations, first: %a"
      (List.length vs) A.Audit.pp_violation (List.hd vs)

let run_case ~sanitize ~faults ~concurrent salt =
  let nodes = 3 in
  let cfg =
    A.Config.make ~nodes ~cpus:2
      ~seed:(Int64.of_int ((salt * 7919) + 17))
      ~faults ()
  in
  A.Cluster.run_value cfg (fun rt ->
      let san = if sanitize then Some (Analysis.Ambersan.attach rt) else None in
      let rng = Sim.Rng.make (Int64.of_int (salt + 101)) in
      let objs, model, anchors = sequential_phase rt rng ~nodes ~n_ops:18 in
      if concurrent then
        concurrent_phase rt rng ~nodes ~anchors objs.(0) model.(0) ~writes:4;
      audit_or_fail rt objs;
      match san with
      | None -> true
      | Some s ->
        let rep = Analysis.Ambersan.finalize s in
        if not (Analysis.Ambersan.clean rep) then
          QCheck.Test.fail_reportf "sanitizer not clean:@.%a"
            Analysis.Ambersan.pp_report rep;
        true)

let no_faults =
  {
    Hw.Ethernet.drop_prob = 0.0;
    dup_prob = 0.0;
    delay_prob = 0.0;
    delay_spike = 0.0;
    stalls = [];
  }

let lossy_faults salt =
  (* 5% loss plus a short receive stall on a random non-master node —
     the invalidation round must retry through both. *)
  let stall_node = 1 + (salt mod 2) in
  {
    Hw.Ethernet.drop_prob = 0.05;
    dup_prob = 0.01;
    delay_prob = 0.0;
    delay_spike = 0.0;
    stalls =
      [
        {
          Hw.Ethernet.node = stall_node;
          from_t = 5e-3;
          until_t = 5e-3 +. (float_of_int (1 + (salt mod 3)) *. 5e-3);
        };
      ];
  }

let salt = QCheck.(int_bound 100_000)

(* Plain: concurrent readers race the writer (no sanitizer, so the
   deliberate Read/Write overlap is fine); 80 cases. *)
let prop_plain =
  QCheck.Test.make ~name:"replica coherence vs sequential oracle (plain)"
    ~count:80 salt (fun s ->
      run_case ~sanitize:false ~faults:no_faults ~concurrent:true s)

(* Sanitized: sequential programs only (every op joined, so the event
   stream is race-free) — AmberSan must find no races, no coherence
   drift, and no stale replica reads; 60 cases. *)
let prop_sanitized =
  QCheck.Test.make ~name:"replica coherence under AmberSan" ~count:60 salt
    (fun s -> run_case ~sanitize:true ~faults:no_faults ~concurrent:false s)

(* Faulted: 5% packet loss, duplicates and a receive stall.  Lost
   invalidations must be retransmitted, never dropped: the oracle and
   the convergence check hold exactly as in the fault-free runs. *)
let prop_faulted =
  QCheck.Test.make ~name:"replica coherence under packet loss and stalls"
    ~count:60 salt (fun s ->
      run_case ~sanitize:false ~faults:(lossy_faults s) ~concurrent:true s)

(* Unlike the fuzzing suites, the coherence properties run on a pinned
   generator seed so every `dune runtest` explores the same 200 salts
   (QCHECK_SEED still overrides).  Widen coverage by changing the seed,
   not by rerunning. *)
let rand () =
  let seed =
    match int_of_string_opt (Sys.getenv "QCHECK_SEED") with
    | Some s -> s
    | None -> 0xA3BE12
    | exception Not_found -> 0xA3BE12
  in
  Random.State.make [| seed |]

let suite =
  [
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_plain;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_sanitized;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_faulted;
  ]
