(* Amber-Watch: series registry semantics, watch transparency (an
   unwatched run must stay byte-identical), SLO burn-rate verdicts
   under overload vs. moderate load, and the failure flight recorder.

   The registry tests are pure (hand-advanced clock, no cluster); the
   integration tests run real serving sessions with the sampling tick
   armed. *)

module A = Amber

(* --- series registry ----------------------------------------------------- *)

let test_series_disabled_inert () =
  let now = ref 0.0 in
  let m = Sim.Series.create ~clock:(fun () -> !now) () in
  let probed = ref 0 in
  Sim.Series.probe m ~name:"g" (fun () ->
      incr probed;
      1.0);
  let w = Sim.Series.window m ~name:"w" () in
  Sim.Series.observe w 5.0;
  (* Disabled: observe is dropped, sample is a no-op, probes never run. *)
  Sim.Series.sample m;
  Alcotest.(check int) "probe not called" 0 !probed;
  Alcotest.(check int) "no samples" 0 (Sim.Series.samples_taken m);
  List.iter
    (fun s -> Alcotest.(check int) "no points" 0 (Sim.Series.length s))
    (Sim.Series.all m)

let test_series_sampling () =
  let now = ref 0.0 in
  let m = Sim.Series.create ~clock:(fun () -> !now) () in
  let v = ref 2.0 in
  Sim.Series.probe m ~name:"gauge" ~node:1 (fun () -> !v);
  let c = ref 0 in
  Sim.Series.counter m ~name:"count" (fun () -> !c);
  Sim.Series.enable m;
  now := 1.0;
  v := 3.0;
  c := 7;
  Sim.Series.sample m;
  now := 2.0;
  v := 4.0;
  c := 9;
  Sim.Series.sample m;
  let find name =
    match Sim.Series.find m name with
    | Some s -> s
    | None -> Alcotest.failf "series %s missing" name
  in
  let g = find "gauge@1" in
  Alcotest.(check int) "gauge points" 2 (Sim.Series.length g);
  (match Sim.Series.last g with
  | Some p ->
    Alcotest.(check (float 0.0)) "gauge t" 2.0 p.Sim.Series.at;
    Alcotest.(check (float 0.0)) "gauge v" 4.0 p.Sim.Series.v
  | None -> Alcotest.fail "gauge empty");
  let ct = find "count" in
  (match Sim.Series.last ct with
  | Some p -> Alcotest.(check (float 0.0)) "counter v" 9.0 p.Sim.Series.v
  | None -> Alcotest.fail "counter empty")

let test_series_window_derives () =
  let now = ref 0.0 in
  let m = Sim.Series.create ~clock:(fun () -> !now) () in
  let w = Sim.Series.window m ~name:"lat" ~scale:1e3 () in
  Sim.Series.enable m;
  for i = 1 to 100 do
    Sim.Series.observe w (float_of_int i /. 1e3)
  done;
  now := 0.5;
  Sim.Series.sample m;
  let pick suffix =
    match Sim.Series.find m ("lat." ^ suffix) with
    | Some s -> (
      match Sim.Series.last s with
      | Some p -> p.Sim.Series.v
      | None -> Alcotest.failf "lat.%s empty" suffix)
    | None -> Alcotest.failf "lat.%s missing" suffix
  in
  (* 1..100 ms observed: the log-bucketed percentiles land within a
     bucket width (5%) of the exact ranks, and rate = 100 / 0.5 s. *)
  let near name want got =
    if Float.abs (got -. want) > 0.05 *. want then
      Alcotest.failf "%s: wanted ~%g, got %g" name want got
  in
  near "p50" 50.0 (pick "p50");
  near "p99" 99.0 (pick "p99");
  Alcotest.(check (float 1e-9)) "rate" 200.0 (pick "rate");
  (* The window clears between ticks: an empty tick pushes no percentile
     point but keeps the rate series going (at zero). *)
  now := 1.0;
  Sim.Series.sample m;
  (match Sim.Series.find m "lat.p50" with
  | Some s -> Alcotest.(check int) "p50 points" 1 (Sim.Series.length s)
  | None -> ());
  Alcotest.(check (float 1e-9)) "empty-tick rate" 0.0 (pick "rate")

let test_series_ring_drops () =
  let now = ref 0.0 in
  let m = Sim.Series.create ~capacity:4 ~clock:(fun () -> !now) () in
  let v = ref 0.0 in
  Sim.Series.probe m ~name:"g" (fun () -> !v);
  Sim.Series.enable m;
  for i = 1 to 10 do
    now := float_of_int i;
    v := float_of_int i;
    Sim.Series.sample m
  done;
  let s = List.hd (Sim.Series.all m) in
  Alcotest.(check int) "kept" 4 (Sim.Series.length s);
  Alcotest.(check int) "dropped" 6 (Sim.Series.dropped s);
  Alcotest.(check int) "total dropped" 6 (Sim.Series.total_dropped m);
  (* Oldest points were overwritten: the ring holds 7..10. *)
  let first = ref nan in
  Sim.Series.iter_points s (fun p ->
      if Float.is_nan !first then first := p.Sim.Series.v);
  Alcotest.(check (float 0.0)) "oldest kept" 7.0 !first

(* --- SLO rule parsing and burn-rate evaluation ---------------------------- *)

let test_slo_parse () =
  (match Watch.Slo.parse "serve.latency_ms.p99<=60@0.1" with
  | Ok r ->
    Alcotest.(check string) "series" "serve.latency_ms.p99" r.Watch.Slo.series;
    Alcotest.(check bool) "op" true (r.Watch.Slo.op = Watch.Slo.Le);
    Alcotest.(check (float 1e-9)) "threshold" 60.0 r.Watch.Slo.threshold;
    Alcotest.(check (float 1e-9)) "budget" 0.1 r.Watch.Slo.budget
  | Error e -> Alcotest.fail e);
  (match Watch.Slo.parse "x.rate>=800" with
  | Ok r ->
    Alcotest.(check bool) "ge" true (r.Watch.Slo.op = Watch.Slo.Ge);
    Alcotest.(check (float 1e-9)) "default budget" Watch.Slo.default_budget
      r.Watch.Slo.budget
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Watch.Slo.parse bad with
      | Ok _ -> Alcotest.failf "parsed %S" bad
      | Error _ -> ())
    [ ""; "x"; "x<=y"; "x<=1@0"; "x<=1@1.5"; "x==1" ]

let eval_rule rule points =
  let now = ref 0.0 in
  let m = Sim.Series.create ~clock:(fun () -> !now) () in
  let v = ref 0.0 in
  Sim.Series.probe m ~name:"s" (fun () -> !v);
  Sim.Series.enable m;
  List.iteri
    (fun i x ->
      now := float_of_int (i + 1);
      v := x;
      Sim.Series.sample m)
    points;
  Watch.Slo.evaluate m rule

let test_slo_burn_gate () =
  let rule =
    match Watch.Slo.parse "s<=10@0.25" with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* A lone bad tick in 60 never fires (long-window burn stays < 1). *)
  let quiet = List.init 60 (fun i -> if i = 30 then 100.0 else 1.0) in
  let o = eval_rule rule quiet in
  Alcotest.(check bool) "lone breach quiet" false o.Watch.Slo.fired;
  Alcotest.(check int) "bad counted" 1 o.Watch.Slo.bad;
  (* A sustained breach fires once both windows burn >= 1. *)
  let burning = List.init 60 (fun i -> if i >= 20 then 100.0 else 1.0) in
  let o = eval_rule rule burning in
  Alcotest.(check bool) "sustained breach fires" true o.Watch.Slo.fired;
  (match o.Watch.Slo.fire_at with
  | Some t -> Alcotest.(check bool) "fires after onset" true (t > 20.0)
  | None -> Alcotest.fail "no fire time");
  (* Missing series: no data, never fires. *)
  let rule2 =
    match Watch.Slo.parse "nope<=1" with Ok r -> r | Error e -> Alcotest.fail e
  in
  let m = Sim.Series.create ~clock:(fun () -> 0.0) () in
  let o = Watch.Slo.evaluate m rule2 in
  Alcotest.(check int) "no points" 0 o.Watch.Slo.points;
  Alcotest.(check bool) "no fire" false o.Watch.Slo.fired

(* --- watched serving: transparency, overload, determinism ----------------- *)

let serve_cfg ~rps =
  {
    Serve.default_cfg with
    Serve.arrival = Serve.Trafficgen.Poisson rps;
    duration = 0.3;
    keys = 16;
    admission = Some Serve.default_admission;
  }

(* The sampling tick must not perturb the simulation: the base report of
   a watched run (extra sections stripped) is byte-identical to an
   unwatched one. *)
let base_report ~watch seed =
  let cfg = A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed) () in
  let text = ref "" in
  A.Cluster.run_value cfg (fun rt ->
      let w = if watch then Some (Watch.attach rt ()) else None in
      ignore (Serve.run rt (serve_cfg ~rps:300.0) : Serve.result);
      Option.iter Watch.stop w;
      let r = A.Stats_report.capture rt in
      let r = { r with A.Stats_report.extra = [] } in
      text := Format.asprintf "%a" A.Stats_report.pp r);
  !text

let test_watch_transparent () =
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d base report unchanged by watch" seed)
        (base_report ~watch:false seed)
        (base_report ~watch:true seed))
    [ 7; 42; 31337 ]

let watched_serve ~rps ~slo seed =
  let cfg = A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed) () in
  let rules =
    List.map
      (fun s ->
        match Watch.Slo.parse s with
        | Ok r -> r
        | Error e -> Alcotest.fail e)
      slo
  in
  let out = ref None in
  A.Cluster.run_value cfg (fun rt ->
      let w = Watch.attach rt ~slo:rules () in
      let r = Serve.run rt (serve_cfg ~rps) in
      Watch.stop w;
      out := Some (r, Watch.outcomes w, Watch.slo_fired w));
  Option.get !out

let p99_rule = "serve.latency_ms.p99<=60@0.1"

(* 4x the sustainable rate: admission sheds, the admitted tail blows
   through the objective, and the burn-rate monitor trips. *)
let test_slo_fires_under_overload () =
  let r, outcomes, fired = watched_serve ~rps:2000.0 ~slo:[ p99_rule ] 42 in
  Alcotest.(check bool) "sheds load" true (r.Serve.rejected > 0);
  Alcotest.(check bool) "monitor fired" true fired;
  match outcomes with
  | [ o ] ->
    Alcotest.(check bool) "has data" true (o.Watch.Slo.points > 0);
    Alcotest.(check bool) "fast burn >= 1" true (o.Watch.Slo.peak_fast >= 1.0)
  | _ -> Alcotest.fail "one outcome expected"

(* Moderate load: the same rule stays quiet. *)
let test_slo_quiet_at_moderate () =
  let _, _, fired = watched_serve ~rps:200.0 ~slo:[ p99_rule ] 42 in
  Alcotest.(check bool) "monitor quiet" false fired

(* --- flight recorder ------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_flight_dump_on_crash () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "amber-flight-test" in
  (* Stale artifacts from a previous run would mask a regression. *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:42L
      ~crashes:[ { A.Config.cnode = 2; at = 0.1; restart = None } ]
      ()
  in
  let fl = ref None in
  A.Cluster.run_value cfg (fun rt ->
      let f = Watch.Flight.attach rt ~dir () in
      fl := Some f;
      ignore (Serve.run rt (serve_cfg ~rps:300.0) : Serve.result));
  let f = Option.get !fl in
  Alcotest.(check bool) "dumped" true (Watch.Flight.dump_count f > 0);
  let dump = List.hd (Watch.Flight.dumps f) in
  Alcotest.(check bool) "file exists" true (Sys.file_exists dump);
  let doc = read_file dump in
  Alcotest.(check bool) "typed header" true (contains doc "\"node_dead\"");
  Alcotest.(check bool) "victim id" true (contains doc "\"node\":2");
  Alcotest.(check bool) "trailing trace" true (contains doc "\"trace\"");
  Alcotest.(check bool) "victim spans" true (contains doc "\"spans\"");
  (* Dedupe: the same (kind, node) never dumps twice. *)
  let names = List.map Filename.basename (Watch.Flight.dumps f) in
  let uniq = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicate dumps" (List.length uniq)
    (List.length names)

(* A crash-free, failure-free run dumps nothing (and creates no files). *)
let test_flight_silent_without_failures () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "amber-flight-silent"
  in
  let cfg = A.Config.make ~nodes:2 ~cpus:2 ~seed:7L () in
  let fl = ref None in
  A.Cluster.run_value cfg (fun rt ->
      let f = Watch.Flight.attach rt ~dir () in
      fl := Some f;
      ignore
        (Workloads.Fixtures.clean_counter rt ~threads:2 ~increments:5
          : Workloads.Fixtures.result));
  Alcotest.(check int) "no dumps" 0 (Watch.Flight.dump_count (Option.get !fl))

let suite =
  [
    Alcotest.test_case "disabled registry is inert" `Quick
      test_series_disabled_inert;
    Alcotest.test_case "probes and counters sample" `Quick test_series_sampling;
    Alcotest.test_case "window derives percentiles and rate" `Quick
      test_series_window_derives;
    Alcotest.test_case "ring drops oldest and counts" `Quick
      test_series_ring_drops;
    Alcotest.test_case "slo rule parsing" `Quick test_slo_parse;
    Alcotest.test_case "burn-rate multi-window gate" `Quick test_slo_burn_gate;
    Alcotest.test_case "watch leaves the base report byte-identical" `Quick
      test_watch_transparent;
    Alcotest.test_case "slo fires under overload" `Quick
      test_slo_fires_under_overload;
    Alcotest.test_case "slo quiet at moderate load" `Quick
      test_slo_quiet_at_moderate;
    Alcotest.test_case "flight recorder dumps on crash" `Quick
      test_flight_dump_on_crash;
    Alcotest.test_case "flight recorder silent without failures" `Quick
      test_flight_silent_without_failures;
  ]
