(* Placement policies and the distribution driver. *)

module A = Amber

let test_round_robin () =
  Util.run ~nodes:3 (fun rt ->
      let p = A.Placement.round_robin rt in
      Alcotest.(check string) "name" "round-robin" (A.Placement.name p);
      Alcotest.(check (list int)) "cycle" [ 0; 1; 2; 0; 1 ]
        (List.init 5 (fun i -> A.Placement.assign p ~i ~count:5)))

let test_blocked () =
  Util.run ~nodes:2 (fun rt ->
      let p = A.Placement.blocked rt in
      Alcotest.(check (list int)) "halves" [ 0; 0; 1; 1 ]
        (List.init 4 (fun i -> A.Placement.assign p ~i ~count:4)))

let test_pinned () =
  Util.run ~nodes:4 (fun rt ->
      ignore rt;
      let p = A.Placement.pinned ~node:2 in
      Alcotest.(check (list int)) "all pinned" [ 2; 2; 2 ]
        (List.init 3 (fun i -> A.Placement.assign p ~i ~count:3)))

let test_random_in_range_and_deterministic () =
  let draws1 =
    Util.run ~nodes:4 (fun rt ->
        let p = A.Placement.random rt in
        List.init 20 (fun i -> A.Placement.assign p ~i ~count:20))
  in
  let draws2 =
    Util.run ~nodes:4 (fun rt ->
        let p = A.Placement.random rt in
        List.init 20 (fun i -> A.Placement.assign p ~i ~count:20))
  in
  Alcotest.(check bool) "in range" true
    (List.for_all (fun n -> n >= 0 && n < 4) draws1);
  Alcotest.(check (list int)) "same seed, same draws" draws1 draws2

let busy_on rt node dt =
  let a = A.Api.create rt ~name:"a" () in
  A.Api.move_to rt a ~dest:node;
  A.Api.start_invoke rt a (fun () -> Sim.Fiber.consume dt)

let test_least_loaded_prefers_idle () =
  Util.run ~nodes:3 (fun rt ->
      (* Burn CPU on nodes 0 and 1; while the burns run, node 2 is the
         least loaded. *)
      let t0 = busy_on rt 0 50e-3 and t1 = busy_on rt 1 50e-3 in
      Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 5e-3;
      let p = A.Placement.least_loaded rt in
      Alcotest.(check int) "picks node 2" 2
        (A.Placement.assign p ~i:0 ~count:1);
      A.Api.join rt t0;
      A.Api.join rt t1)

let test_least_loaded_sees_freed_node () =
  Util.run ~nodes:3 (fun rt ->
      (* Node 2 does a lot of historical work and then frees up while
         nodes 0 and 1 are still busy.  Instantaneous load must pick the
         freed node; the old cumulative-busy-time metric penalized it
         for its history and sent new work to a busy node instead. *)
      let t2 = busy_on rt 2 30e-3 in
      A.Api.join rt t2;
      let t0 = busy_on rt 0 50e-3 and t1 = busy_on rt 1 50e-3 in
      Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 5e-3;
      let p = A.Placement.least_loaded rt in
      Alcotest.(check int) "freed-up node chosen" 2
        (A.Placement.assign p ~i:0 ~count:1);
      A.Api.join rt t0;
      A.Api.join rt t1)

let test_distribute_moves_objects () =
  Util.run ~nodes:3 (fun rt ->
      let objs =
        Array.init 6 (fun i -> A.Api.create rt ~name:(string_of_int i) ())
      in
      A.Placement.distribute rt (A.Placement.round_robin rt) objs;
      Array.iteri
        (fun i o ->
          Alcotest.(check int)
            (Printf.sprintf "obj %d" i)
            (i mod 3) o.A.Aobject.location)
        objs)

let test_distribute_rejects_bad_policy () =
  Util.run ~nodes:2 (fun rt ->
      let objs = [| A.Api.create rt ~name:"x" () |] in
      let bad = A.Placement.custom ~name:"bad" (fun ~i:_ ~count:_ -> 99) in
      Alcotest.check_raises "out of range"
        (Invalid_argument "Placement.distribute: assignment outside the cluster")
        (fun () -> A.Placement.distribute rt bad objs))

let test_histogram () =
  Util.run ~nodes:4 (fun rt ->
      let h = A.Placement.histogram rt (A.Placement.round_robin rt) ~count:10 in
      Alcotest.(check (array int)) "balanced" [| 3; 3; 2; 2 |] h)

let suite =
  [
    Alcotest.test_case "round robin" `Quick test_round_robin;
    Alcotest.test_case "blocked" `Quick test_blocked;
    Alcotest.test_case "pinned" `Quick test_pinned;
    Alcotest.test_case "random is bounded and deterministic" `Quick
      test_random_in_range_and_deterministic;
    Alcotest.test_case "least-loaded prefers the idle node" `Quick
      test_least_loaded_prefers_idle;
    Alcotest.test_case "least-loaded sees a freed-up node" `Quick
      test_least_loaded_sees_freed_node;
    Alcotest.test_case "distribute moves objects" `Quick
      test_distribute_moves_objects;
    Alcotest.test_case "distribute validates assignments" `Quick
      test_distribute_rejects_bad_policy;
    Alcotest.test_case "histogram" `Quick test_histogram;
  ]
