(* Amber-Async: future semantics (resolve/await orderings, exception
   delivery, multi-shot awaits), the RPC delivered-table boundedness
   regression, wire-level coalescing, and the invoke exception-path
   balance audit. *)

module A = Amber
module San = Analysis.Ambersan

let faults =
  {
    Hw.Ethernet.no_faults with
    Hw.Ethernet.drop_prob = 0.02;
    dup_prob = 0.01;
  }

(* --- resolve/await orderings ---------------------------------------------- *)

(* The helper resolves long before the issuer looks: await must return
   immediately with the memoized value (probe cost only, no parking). *)
let test_resolve_before_await () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"fut-early" (ref 10) in
      A.Api.move_to rt o ~dest:2;
      let f = A.Api.invoke_async rt o (fun c -> incr c; !c) in
      Alcotest.(check bool) "pending at issue" false (A.Future.is_resolved f);
      (* Spin compute until the outcome lands back home; events (the
         future-notify) fire while we burn virtual CPU. *)
      let guard = ref 0 in
      while (not (A.Future.is_resolved f)) && !guard < 10_000 do
        incr guard;
        Sim.Fiber.consume 100e-6
      done;
      Alcotest.(check bool) "resolved without await" true
        (A.Future.is_resolved f);
      (match A.Future.peek f with
      | Some (Ok 11) -> ()
      | _ -> Alcotest.fail "peek should expose Ok 11");
      let t0 = A.Api.now rt in
      Alcotest.(check int) "value" 11 (A.Api.await rt f);
      Alcotest.(check bool) "await of resolved future is cheap" true
        (A.Api.now rt -. t0 < 1e-3))

(* Await first, resolve later: the awaiting fiber parks and wakes with
   the value once the helper's notify lands. *)
let test_await_before_resolve () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"fut-late" (ref 0) in
      A.Api.move_to rt o ~dest:1;
      let f =
        A.Api.invoke_async rt o (fun c ->
            Sim.Fiber.consume 5e-3;
            c := 42;
            !c)
      in
      Alcotest.(check bool) "still pending" false (A.Future.is_resolved f);
      let t0 = A.Api.now rt in
      Alcotest.(check int) "value" 42 (A.Api.await rt f);
      Alcotest.(check bool) "await waited for the 5 ms op" true
        (A.Api.now rt -. t0 >= 5e-3))

(* The point of the exercise: an async op overlapping issuer compute
   costs less wall-clock than the two serialized. *)
let test_overlap_hides_latency () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"fut-ovl" (ref 0) in
      A.Api.move_to rt o ~dest:3;
      let t0 = A.Api.now rt in
      let f = A.Api.invoke_async rt o (fun _ -> Sim.Fiber.consume 10e-3) in
      Sim.Fiber.consume 10e-3 (* issuer compute, concurrent with the op *);
      A.Api.await rt f;
      let elapsed = A.Api.now rt -. t0 in
      Alcotest.(check bool) "overlapped: well under 2x10ms serial" true
        (elapsed < 18e-3);
      Alcotest.(check bool) "but at least one 10ms leg" true
        (elapsed >= 10e-3))

(* Futures are multi-shot: the outcome is memoized, not consumed. *)
let test_double_await () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"fut-twice" (ref 5) in
      A.Api.move_to rt o ~dest:1;
      let c0 = (A.Runtime.counters rt).A.Runtime.async_invocations in
      let f = A.Api.invoke_async rt o (fun c -> c := !c * 2; !c) in
      Alcotest.(check int) "first await" 10 (A.Api.await rt f);
      Alcotest.(check int) "second await (memoized)" 10 (A.Api.await rt f);
      Alcotest.(check int) "one async invocation issued" (c0 + 1)
        (A.Runtime.counters rt).A.Runtime.async_invocations)

(* --- exception delivery ---------------------------------------------------- *)

let test_exception_at_await () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"fut-boom" (ref 0) in
      A.Api.move_to rt o ~dest:2;
      let f = A.Api.invoke_async rt o (fun _ -> failwith "async-boom") in
      Alcotest.check_raises "re-raised at await" (Failure "async-boom")
        (fun () -> ignore (A.Api.await rt f : unit));
      (* Multi-shot for failures too. *)
      Alcotest.check_raises "re-raised on second await" (Failure "async-boom")
        (fun () -> ignore (A.Api.await rt f : unit));
      Alcotest.(check int) "writers released by the failed op" 0
        o.A.Aobject.writers;
      (* The object survives its op's failure. *)
      Alcotest.(check int) "object still invocable" 7
        (A.Api.invoke rt o (fun c -> c := 7; !c)))

(* await_all observes every future (no abandoned helpers), then
   re-raises the first failure by list position. *)
let test_await_all_first_failure () =
  Util.run (fun rt ->
      let mk i dest op =
        let o = A.Api.create rt ~name:(Printf.sprintf "fut-all%d" i) (ref i) in
        A.Api.move_to rt o ~dest;
        A.Api.invoke_async rt o op
      in
      let f0 = mk 0 1 (fun c -> !c) in
      let f1 = mk 1 2 (fun _ -> failwith "middle") in
      let f2 = mk 2 3 (fun _ -> failwith "last") in
      Alcotest.check_raises "first failure by position" (Failure "middle")
        (fun () -> ignore (A.Api.await_all rt [ f0; f1; f2 ] : int list));
      List.iter
        (fun f ->
          Alcotest.(check bool) "every future observed" true
            (A.Future.is_resolved f))
        [ f0; f1; f2 ];
      let ok = mk 3 1 (fun c -> !c) in
      Alcotest.(check (list int)) "all-success list ordered" [ 3 ]
        (A.Api.await_all rt [ ok ]))

(* A helper that finishes away from home must ship the outcome back in a
   future-notify datagram — results do not teleport. *)
let test_remote_resolution_notifies () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"fut-notify" (ref 1) in
      A.Api.move_to rt o ~dest:3;
      let n0 = (A.Runtime.counters rt).A.Runtime.future_notifies in
      let f = A.Api.invoke_async rt o (fun c -> !c + 1) in
      Alcotest.(check int) "value" 2 (A.Api.await rt f);
      Alcotest.(check bool) "notify datagram carried the outcome" true
        ((A.Runtime.counters rt).A.Runtime.future_notifies > n0))

(* --- QCheck: fan-out sums, fault-free and faulted+coalesced ---------------- *)

(* Pin the generator seed so CI failures reproduce (QCHECK_SEED still
   overrides); same convention as test_replica.ml. *)
let rand () =
  let seed =
    match int_of_string_opt (Sys.getenv "QCHECK_SEED") with
    | Some s -> s
    | None -> 0xA3BE12
    | exception Not_found -> 0xA3BE12
  in
  Random.State.make [| seed |]

let fan_out_body salt rt =
  let nodes = A.Api.node_count rt in
  let n = 8 in
  let objs =
    Array.init n (fun i ->
        let o = A.Api.create rt ~name:(Printf.sprintf "qfut%d" i) (ref i) in
        let dest = i mod nodes in
        if dest <> A.Api.my_node rt then A.Api.move_to rt o ~dest;
        o)
  in
  let fs =
    Array.to_list
      (Array.map (fun o -> A.Api.invoke_async rt o (fun c -> !c + salt)) objs)
  in
  let got = A.Api.await_all rt fs in
  let expect = List.init n (fun i -> i + salt) in
  if got <> expect then
    QCheck.Test.fail_reportf "salt=%d: async fan-out returned wrong sums" salt;
  true

let prop_fan_out_plain =
  QCheck.Test.make ~name:"async fan-out sums (fault-free)" ~count:15
    QCheck.(int_bound 100_000)
    (fun salt -> Util.run ~nodes:4 ~cpus:2 (fan_out_body salt))

(* Same program under packet loss/duplication with coalescing on: the
   notify protocol rides send_reliable, so outcomes still land exactly
   once and in full. *)
let prop_fan_out_faulted_coalesced =
  QCheck.Test.make ~name:"async fan-out sums (lossy wire, coalescing)"
    ~count:10
    QCheck.(int_bound 100_000)
    (fun salt ->
      let cfg =
        A.Config.make ~nodes:4 ~cpus:2
          ~seed:(Int64.of_int (1 + (salt mod 997)))
          ~faults ~coalesce:Topaz.Rpc.default_coalesce ()
      in
      A.Cluster.run_value cfg (fan_out_body salt))

(* --- delivered-table boundedness (windowed pruning regression) ------------- *)

(* Before the retirement window, every reliably-delivered datagram left a
   tombstone in the dedup table forever; a long faulted run grew it
   without bound.  3000 datagrams must all arrive exactly once while the
   table stays around the 1024-entry window. *)
let test_delivered_table_bounded () =
  let e = Sim.Engine.create () in
  let nodes = 3 in
  let machines =
    Array.init nodes (fun id -> Hw.Machine.create ~engine:e ~id ~cpus:2 ())
  in
  let tasks = Array.map (fun m -> Topaz.Task.create ~machine:m ()) machines in
  let ether = Hw.Ethernet.create ~engine:e ~faults () in
  let rpc =
    Topaz.Rpc.create ~ether ~tasks ~servers_per_node:2 ~reliable:true ()
  in
  let total = 3000 in
  let delivered = ref 0 in
  let seen = Hashtbl.create 4096 in
  ignore
    (Topaz.Task.spawn tasks.(0) ~name:"flood" (fun () ->
         for i = 0 to total - 1 do
           Topaz.Rpc.send_reliable rpc ~src:0
             ~dst:(1 + (i mod (nodes - 1)))
             ~size:32 ~kind:"flood"
             (fun () ->
               if Hashtbl.mem seen i then
                 Alcotest.failf "datagram %d delivered twice" i;
               Hashtbl.add seen i ();
               incr delivered);
           (* Pace the flood so acks interleave and retirement happens
              while traffic is still flowing, not just at the end. *)
           Sim.Fiber.consume 150e-6
         done));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "exactly-once delivery of all 3000" total !delivered;
  let sz = Topaz.Rpc.delivered_size rpc in
  Alcotest.(check bool)
    (Printf.sprintf "dedup table pruned (size %d <= window + slack)" sz)
    true
    (sz <= 1024 + 128)

(* --- coalescing: batching, ordering, size gate ----------------------------- *)

let test_coalescing_batches_and_orders () =
  let e = Sim.Engine.create () in
  let machines =
    Array.init 2 (fun id -> Hw.Machine.create ~engine:e ~id ~cpus:2 ())
  in
  let tasks = Array.map (fun m -> Topaz.Task.create ~machine:m ()) machines in
  let ether = Hw.Ethernet.create ~engine:e () in
  let rpc =
    Topaz.Rpc.create ~ether ~tasks ~servers_per_node:2
      ~coalesce:Topaz.Rpc.default_coalesce ()
  in
  let order = ref [] in
  ignore
    (Topaz.Task.spawn tasks.(0) ~name:"burst" (fun () ->
         (* Ten small datagrams back-to-back: all park within one flush
            window.  One oversized message must bypass the parking lot. *)
         for i = 0 to 9 do
           Topaz.Rpc.send_reliable rpc ~src:0 ~dst:1 ~size:24 ~kind:"tiny"
             (fun () -> order := i :: !order)
         done;
         Topaz.Rpc.send_reliable rpc ~src:0 ~dst:1 ~size:512 ~kind:"big"
           (fun () -> order := 99 :: !order)));
  ignore (Sim.Engine.run e);
  let z = Topaz.Rpc.coalescing rpc in
  Alcotest.(check int) "only the small ones were eligible" 10
    z.Topaz.Rpc.coal_eligible;
  Alcotest.(check bool) "a multi-message frame went out" true
    (z.Topaz.Rpc.coal_frames >= 1);
  Alcotest.(check bool) "most of the burst was batched" true
    (z.Topaz.Rpc.coal_batched >= 8);
  Alcotest.(check bool) "batching saved packets" true
    (Hw.Ethernet.packets_sent ether < 11);
  (* Per-pair FIFO survives framing: the small ones arrive in issue
     order (the big one flushed ahead of nothing and may land first or
     last depending on the window — only the relative order of the
     coalesced ten is guaranteed). *)
  let smalls = List.filter (fun i -> i < 99) (List.rev !order) in
  Alcotest.(check (list int)) "delivery order preserved"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    smalls

let test_coalescing_off_is_inert () =
  let e = Sim.Engine.create () in
  let machines =
    Array.init 2 (fun id -> Hw.Machine.create ~engine:e ~id ~cpus:2 ())
  in
  let tasks = Array.map (fun m -> Topaz.Task.create ~machine:m ()) machines in
  let ether = Hw.Ethernet.create ~engine:e () in
  let rpc = Topaz.Rpc.create ~ether ~tasks ~servers_per_node:2 () in
  let got = ref 0 in
  ignore
    (Topaz.Task.spawn tasks.(0) ~name:"plain" (fun () ->
         for _ = 1 to 5 do
           Topaz.Rpc.send_reliable rpc ~src:0 ~dst:1 ~size:24 ~kind:"tiny"
             (fun () -> incr got)
         done));
  ignore (Sim.Engine.run e);
  Alcotest.(check int) "all delivered" 5 !got;
  let z = Topaz.Rpc.coalescing rpc in
  Alcotest.(check int) "no eligibility tracked" 0 z.Topaz.Rpc.coal_eligible;
  Alcotest.(check int) "no frames" 0 z.Topaz.Rpc.coal_frames;
  Alcotest.(check int) "one packet per datagram" 5
    (Hw.Ethernet.packets_sent ether)

(* --- invoke exception-path balance (the latent-bug sweep) ------------------ *)

(* A remote op that raises must leave no trace: frame popped, writer
   count released, object still usable, thread back home and able to
   invoke again.  Before the Fun.protect sweep the span and access
   bookkeeping leaked on this path. *)
let test_raising_op_balances () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"bal-op" (ref 0) in
      A.Api.move_to rt o ~dest:1;
      let frames0 = List.length (A.Runtime.current rt).A.Runtime.frames in
      (try ignore (A.Api.invoke rt o (fun _ -> failwith "op-boom") : unit)
       with Failure _ -> ());
      Alcotest.(check int) "frame stack balanced" frames0
        (List.length (A.Runtime.current rt).A.Runtime.frames);
      Alcotest.(check int) "writers released" 0 o.A.Aobject.writers;
      Alcotest.(check int) "thread recovered, object invocable" 7
        (A.Api.invoke rt o (fun c -> c := 7; !c)))

(* Nested invokes with the inner op raising: both frames unwind, both
   objects stay consistent, the outer op can catch and continue. *)
let test_nested_raise_balances () =
  Util.run (fun rt ->
      let a = A.Api.create rt ~name:"bal-outer" (ref 0) in
      let b = A.Api.create rt ~name:"bal-inner" (ref 0) in
      A.Api.move_to rt a ~dest:1;
      A.Api.move_to rt b ~dest:2;
      let caught =
        A.Api.invoke rt a (fun ca ->
            match A.Api.invoke rt b (fun _ -> failwith "inner-boom") with
            | () -> false
            | exception Failure _ ->
              ca := 1;
              true)
      in
      Alcotest.(check bool) "outer caught the inner failure" true caught;
      Alcotest.(check int) "inner writers released" 0 b.A.Aobject.writers;
      Alcotest.(check int) "outer writers released" 0 a.A.Aobject.writers;
      Alcotest.(check int) "outer op's effect survived" 1
        (A.Api.invoke rt a (fun c -> !c));
      Alcotest.(check int) "inner object still invocable" 3
        (A.Api.invoke rt b (fun c -> c := 3; !c)))

(* The settle/chase path: invoking a destroyed object raises a dangling
   failure at the caller, and must unwind the just-pushed frame so the
   thread keeps working. *)
let test_dangling_invoke_unwinds () =
  Util.run (fun rt ->
      let gate = A.Api.create rt ~name:"bal-gate" (ref 0) in
      let doomed = A.Api.create rt ~name:"bal-doomed" (ref 0) in
      A.Api.move_to rt gate ~dest:1;
      A.Api.move_to rt doomed ~dest:1;
      (* Destroy [doomed] while co-resident with it, from inside the
         gate's op; our cached descriptor still points at node 1. *)
      A.Api.invoke rt gate (fun _ -> A.Api.destroy rt doomed);
      let frames0 = List.length (A.Runtime.current rt).A.Runtime.frames in
      (match A.Api.invoke rt doomed (fun c -> !c) with
      | _ -> Alcotest.fail "invoke of a destroyed object succeeded"
      | exception Failure msg ->
        let contains hay needle =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "dangling reference reported" true
          (contains msg "dangling"));
      Alcotest.(check int) "frame stack balanced after settle failure"
        frames0
        (List.length (A.Runtime.current rt).A.Runtime.frames);
      Alcotest.(check int) "thread still works" 9
        (A.Api.invoke rt gate (fun c -> c := 9; !c)))

(* The same exception traffic under AmberSan: no leaked accesses, no
   unbalanced span/coherence state. *)
let test_exception_paths_sanitized_clean () =
  let cfg = A.Config.make ~nodes:4 ~cpus:2 () in
  let san = ref None in
  A.Cluster.run_value cfg (fun rt ->
      san := Some (San.attach rt);
      let o = A.Api.create rt ~name:"san-bal" (ref 0) in
      A.Api.move_to rt o ~dest:1;
      (try ignore (A.Api.invoke rt o (fun _ -> failwith "x") : unit)
       with Failure _ -> ());
      let f = A.Api.invoke_async rt o (fun _ -> failwith "y") in
      (try ignore (A.Api.await rt f : unit) with Failure _ -> ());
      ignore (A.Api.invoke rt o (fun c -> c := 1; !c) : int));
  let report = San.finalize (Option.get !san) in
  Alcotest.(check int) "sanitizer clean across exception paths" 0
    (San.findings report)

(* --- typed join errors (satellite 1) --------------------------------------- *)

let test_join_all_collects_and_types () =
  Util.run (fun rt ->
      let ok i = A.Api.start rt ~name:(Printf.sprintf "ja-ok%d" i)
          (fun () -> Sim.Fiber.consume 1e-3; i)
      in
      let bad = A.Api.start rt ~name:"ja-bad" (fun () -> failwith "ja-boom") in
      let ts = [ ok 1; bad; ok 3 ] in
      (match A.Api.join_all rt ts with
      | _ -> Alcotest.fail "join_all should raise on the failed thread"
      | exception A.Athread.Join_failed { thread; index; error; _ } ->
        Alcotest.(check string) "names the thread" "ja-bad" thread;
        Alcotest.(check int) "positions it" 1 index;
        (match error with
        | Failure m -> Alcotest.(check string) "wraps the cause" "ja-boom" m
        | _ -> Alcotest.fail "wrong wrapped exception"));
      (* The failure did not abort the sweep: the cluster would re-raise
         any unobserved thread failure at shutdown, so reaching a clean
         all-success join_all here proves every sibling was joined. *)
      Alcotest.(check (list int)) "all-success join_all ordered" [ 4; 5 ]
        (A.Api.join_all rt [ ok 4; ok 5 ]))

(* --- pipelined SOR: bit-identical numerics ---------------------------------- *)

let test_sor_pipe_matches_sync () =
  let p =
    Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16 ~cols:64
  in
  let sync = Util.run ~nodes:4 ~cpus:2 (fun rt ->
      Workloads.Sor_amber.run rt p ~iters:4 ())
  in
  let pipe = Util.run ~nodes:4 ~cpus:2 (fun rt ->
      Workloads.Sor_pipe.run rt p ~iters:4 ())
  in
  Util.check_float "checksum bit-identical"
    sync.Workloads.Sor_amber.checksum pipe.Workloads.Sor_pipe.checksum;
  Alcotest.(check int) "same iteration count" 4
    pipe.Workloads.Sor_pipe.iterations;
  Alcotest.(check bool) "futures actually used" true
    (pipe.Workloads.Sor_pipe.async_invocations > 0)

let test_sor_pipe_faulted_checksum_stable () =
  let p =
    Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16 ~cols:64
  in
  let clean = Util.run ~nodes:4 ~cpus:2 (fun rt ->
      Workloads.Sor_pipe.run rt p ~iters:4 ())
  in
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:7L ~faults
      ~coalesce:Topaz.Rpc.default_coalesce ()
  in
  let lossy =
    A.Cluster.run_value cfg (fun rt -> Workloads.Sor_pipe.run rt p ~iters:4 ())
  in
  Util.check_float "checksum invariant under loss + coalescing"
    clean.Workloads.Sor_pipe.checksum lossy.Workloads.Sor_pipe.checksum

let suite =
  [
    Alcotest.test_case "resolve before await" `Quick test_resolve_before_await;
    Alcotest.test_case "await before resolve" `Quick test_await_before_resolve;
    Alcotest.test_case "overlap hides latency" `Quick test_overlap_hides_latency;
    Alcotest.test_case "double await is memoized" `Quick test_double_await;
    Alcotest.test_case "exception delivered at await" `Quick
      test_exception_at_await;
    Alcotest.test_case "await_all raises first failure" `Quick
      test_await_all_first_failure;
    Alcotest.test_case "remote resolution sends notify" `Quick
      test_remote_resolution_notifies;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_fan_out_plain;
    QCheck_alcotest.to_alcotest ~rand:(rand ()) prop_fan_out_faulted_coalesced;
    Alcotest.test_case "delivered table stays bounded" `Quick
      test_delivered_table_bounded;
    Alcotest.test_case "coalescing batches and preserves order" `Quick
      test_coalescing_batches_and_orders;
    Alcotest.test_case "coalescing off is inert" `Quick
      test_coalescing_off_is_inert;
    Alcotest.test_case "raising op balances" `Quick test_raising_op_balances;
    Alcotest.test_case "nested raise balances" `Quick test_nested_raise_balances;
    Alcotest.test_case "dangling invoke unwinds" `Quick
      test_dangling_invoke_unwinds;
    Alcotest.test_case "exception paths sanitizer-clean" `Quick
      test_exception_paths_sanitized_clean;
    Alcotest.test_case "join_all types its failures" `Quick
      test_join_all_collects_and_types;
    Alcotest.test_case "pipelined SOR matches sync checksum" `Quick
      test_sor_pipe_matches_sync;
    Alcotest.test_case "pipelined SOR stable under faults" `Quick
      test_sor_pipe_faulted_checksum_stable;
  ]
