(* The protocol audit facility, and its use as an oracle after stress. *)

module A = Amber

let test_clean_world_passes () =
  Util.run (fun rt ->
      let objs =
        List.init 5 (fun i ->
            let o = A.Api.create rt ~name:(string_of_int i) () in
            A.Api.move_to rt o ~dest:(i mod 4);
            A.Aobject.Any o)
      in
      Alcotest.(check int) "no violations" 0
        (List.length (A.Audit.check_objects rt objs));
      A.Audit.check_exn rt objs)

let test_detects_missing_residency () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"broken" () in
      (* Sabotage the descriptor space directly. *)
      A.Descriptor.clear (A.Runtime.descriptors rt 0) o.A.Aobject.addr;
      let vs = A.Audit.check_objects rt [ A.Aobject.Any o ] in
      Alcotest.(check bool) "violations reported" true (List.length vs > 0);
      match A.Audit.check_exn rt [ A.Aobject.Any o ] with
      | () -> Alcotest.fail "check_exn should raise"
      | exception Failure _ -> ())

let test_detects_spurious_residency () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"dup" () in
      A.Descriptor.set_resident (A.Runtime.descriptors rt 3) o.A.Aobject.addr;
      let vs = A.Audit.check_objects rt [ A.Aobject.Any o ] in
      Alcotest.(check bool) "spurious copy found" true
        (List.exists (fun v -> v.A.Audit.node = 3) vs))

let test_detects_broken_chain () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"loop" () in
      A.Api.move_to rt o ~dest:2;
      (* Create a forwarding cycle between two bystander nodes. *)
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 1) o.A.Aobject.addr 3;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 3) o.A.Aobject.addr 1;
      let vs = A.Audit.check_objects rt [ A.Aobject.Any o ] in
      Alcotest.(check bool) "cycle detected" true
        (List.exists
           (fun v -> v.A.Audit.problem = "forwarding chain does not terminate")
           vs))

let test_detects_mutual_forwarding_through_home () =
  (* The PR-1 livelock shape: two stale descriptors forwarding to each
     other, with the object's home node inside the cycle — a chase
     starting there ping-pongs forever.  The audit must report it as a
     non-terminating chain (the visited-set check catches the repeat on
     the second hop rather than after exhausting a hop budget). *)
  Util.run (fun rt ->
      (* Created on node 0, so node 0 is the home node. *)
      let o = A.Api.create rt ~name:"pingpong" () in
      A.Api.move_to rt o ~dest:2;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 0) o.A.Aobject.addr 1;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 1) o.A.Aobject.addr 0;
      let vs = A.Audit.check_objects rt [ A.Aobject.Any o ] in
      Alcotest.(check bool) "cycle through home detected" true
        (List.exists
           (fun v -> v.A.Audit.problem = "forwarding chain does not terminate")
           vs))

let test_immutable_replicas_audited () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"imm" () in
      A.Api.set_immutable rt o;
      A.Api.move_to rt o ~dest:1;
      A.Api.move_to rt o ~dest:2;
      A.Audit.check_exn rt [ A.Aobject.Any o ])

let test_chain_length_diagnostic () =
  Util.run ~nodes:6 (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      let anchor = A.Api.create rt ~name:"anchor" () in
      A.Api.move_to rt anchor ~dest:1;
      let mover =
        A.Api.start_invoke rt anchor (fun () ->
            List.iter (fun d -> A.Api.move_to rt o ~dest:d) [ 2; 3; 4; 5 ])
      in
      A.Api.join rt mover;
      let before = A.Audit.max_chain_length rt o in
      ignore (A.Api.locate rt o : int);
      let after = A.Audit.max_chain_length rt o in
      Alcotest.(check bool) "chains exist after moves" true (before >= 2);
      Alcotest.(check bool) "locate compressed them" true (after < before))

let test_chain_length_hop_boundary () =
  (* [chain_length] measures chains of up to exactly 64 hops and drops
     longer ones as non-terminating.  Lay out a linear chain
     1→2→…→66 toward the master at 66: node 2's walk takes exactly 64
     hops and must be measured; node 1's takes 65 and must be reported
     as a chain that does not terminate — and the 65-hop walk must not
     inflate [max_chain_length] past the boundary. *)
  Util.run ~nodes:67 ~cpus:1 (fun rt ->
      let o = A.Api.create rt ~name:"long" () in
      A.Api.move_to rt o ~dest:66;
      for i = 1 to 65 do
        A.Descriptor.set_forwarded
          (A.Runtime.descriptors rt i)
          o.A.Aobject.addr (i + 1)
      done;
      Alcotest.(check int) "64-hop chain measured, 65-hop chain dropped" 64
        (A.Audit.max_chain_length rt o);
      let vs = A.Audit.check_objects rt [ A.Aobject.Any o ] in
      let non_terminating n =
        List.exists
          (fun v ->
            v.A.Audit.node = n
            && v.A.Audit.problem = "forwarding chain does not terminate")
          vs
      in
      Alcotest.(check bool) "65-hop walk reported" true (non_terminating 1);
      Alcotest.(check bool) "64-hop walk is legal" false (non_terminating 2))

let test_chain_length_visited_before_budget () =
  (* A chain that re-enters a visited node is dropped the moment the
     repeat is seen — three hops into a 1→2→3→1 loop — not after
     exhausting the 64-hop budget, so a short cycle among bystanders
     cannot masquerade as a long-but-legal chain. *)
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"loopy" () in
      A.Api.move_to rt o ~dest:2;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 1) o.A.Aobject.addr 3;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 3) o.A.Aobject.addr 1;
      (* The cycle walks are dropped from the max, leaving the home
         node's direct hop as the longest measured chain. *)
      Alcotest.(check int) "cycle walks dropped from max" 1
        (A.Audit.max_chain_length rt o))

(* A running chase (not an offline audit) that walks into a forwarding
   cycle: the hop budget trips, the chase restarts at the home node and
   completes.  The recovery must be observable (a home fallback is
   counted) and the invocation's result must be unaffected. *)
let run_cycle_mid_chase ~sanitize =
  Util.run (fun rt ->
      let san = if sanitize then Some (Analysis.Ambersan.attach rt) else None in
      let o = A.Api.create rt ~name:"prey" (ref 7) in
      A.Api.move_to rt o ~dest:2;
      (* Two bystanders forward to each other; a chase starting inside
         the loop ping-pongs until its hop budget trips. *)
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 1) o.A.Aobject.addr 3;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 3) o.A.Aobject.addr 1;
      let got = ref 0 in
      let t =
        A.Athread.start_on rt ~node:1 ~name:"chaser" (fun () ->
            got := A.Api.invoke rt o (fun r -> !r))
      in
      A.Athread.join rt t;
      Alcotest.(check int) "invocation unaffected by the cycle" 7 !got;
      Alcotest.(check bool) "recovered via a home-node restart" true
        ((A.Runtime.counters rt).A.Runtime.home_fallbacks >= 1);
      match san with
      | None -> ()
      | Some san ->
        let rep = Analysis.Ambersan.finalize san in
        Alcotest.(check bool) "sanitizer stays clean through recovery" false
          (Analysis.Ambersan.failed rep))

let test_cycle_mid_chase_plain () = run_cycle_mid_chase ~sanitize:false
let test_cycle_mid_chase_sanitized () = run_cycle_mid_chase ~sanitize:true

let test_replica_lifecycle_audited () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"life" (ref 0) in
      let copy r = ref !r in
      A.Api.replicate rt ~copy o ~dest:1;
      A.Api.replicate rt ~copy o ~dest:2;
      Alcotest.(check int) "two replicas granted" 2
        (List.length o.A.Aobject.replicas);
      A.Audit.check_exn rt [ A.Aobject.Any o ];
      (* A write recalls every replica; the audit stays clean after. *)
      A.Api.invoke rt ~mode:A.San_hooks.Write o (fun r -> incr r);
      Alcotest.(check (list int)) "replicas recalled" [] o.A.Aobject.replicas;
      A.Audit.check_exn rt [ A.Aobject.Any o ])

let test_detects_forwarded_naming_replica () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"repl" (ref 0) in
      A.Api.replicate rt ~copy:(fun r -> ref !r) o ~dest:2;
      A.Audit.check_exn rt [ A.Aobject.Any o ];
      (* Sabotage: point a bystander's chain at the read-only copy — a
         writer following it would try to execute at the replica. *)
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 1) o.A.Aobject.addr 2;
      let vs = A.Audit.check_objects rt [ A.Aobject.Any o ] in
      Alcotest.(check bool) "forwarded-to-replica reported" true
        (List.exists
           (fun v ->
             v.A.Audit.node = 1
             && v.A.Audit.problem = "forwarded descriptor names replica node 2")
           vs))

let test_detects_stale_replica_snapshot () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"stale" (ref 0) in
      A.Api.replicate rt ~copy:(fun r -> ref !r) o ~dest:1;
      (* Sabotage: bump the epoch behind the protocol's back, as if a
         write forgot its invalidation round. *)
      o.A.Aobject.epoch <- o.A.Aobject.epoch + 1;
      let vs = A.Audit.check_objects rt [ A.Aobject.Any o ] in
      Alcotest.(check bool) "stale snapshot reported" true
        (List.exists
           (fun v ->
             v.A.Audit.node = 1
             && v.A.Audit.problem
                = "replica snapshot is stale (epoch 0, object at 1)")
           vs))

let test_detects_replica_surviving_deletion () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"del" (ref 0) in
      A.Api.replicate rt ~copy:(fun r -> ref !r) o ~dest:3;
      let addr = o.A.Aobject.addr in
      (* Deleting out from under live replicas is refused outright. *)
      (match A.Api.destroy rt o with
      | () -> Alcotest.fail "destroy should refuse with live replicas"
      | exception Invalid_argument _ -> ());
      (* Simulate a buggy deletion that freed the master anyway and left
         the replica descriptor behind, still serving freed state. *)
      A.Descriptor.clear (A.Runtime.descriptors rt 0) addr;
      let vs = A.Audit.check_deleted rt ~addr ~name:"del" in
      Alcotest.(check bool) "surviving replica reported" true
        (List.exists
           (fun v ->
             v.A.Audit.node = 3
             && v.A.Audit.problem = "replica survives master deletion")
           vs))

(* Use the audit as the oracle for a randomized mobility storm. *)
let prop_audit_after_storm =
  QCheck.Test.make ~name:"descriptor space coherent after mobility storms"
    ~count:12
    QCheck.(int_bound 1000)
    (fun salt ->
      Util.run ~nodes:5 ~cpus:2 (fun rt ->
          let rng = Sim.Rng.make (Int64.of_int (salt + 99)) in
          let objs =
            Array.init 6 (fun i ->
                A.Api.create rt ~name:(Printf.sprintf "s%d" i) (ref 0))
          in
          let ts =
            List.init 4 (fun w ->
                let ops =
                  List.init 12 (fun _ ->
                      ( Sim.Rng.int rng 6,
                        Sim.Rng.int rng 4,
                        Sim.Rng.int rng 5 ))
                in
                A.Api.start rt ~name:(Printf.sprintf "w%d" w) (fun () ->
                    List.iter
                      (fun (o, kind, dest) ->
                        match kind with
                        | 0 | 1 -> A.Api.move_to rt objs.(o) ~dest
                        | 2 -> A.Api.invoke rt objs.(o) (fun c -> incr c)
                        | _ -> ignore (A.Api.locate rt objs.(o) : int))
                      ops))
          in
          List.iter (fun t -> A.Api.join rt t) ts;
          A.Audit.check_objects rt
            (Array.to_list (Array.map (fun o -> A.Aobject.Any o) objs))
          = []))

let suite =
  [
    Alcotest.test_case "clean world passes" `Quick test_clean_world_passes;
    Alcotest.test_case "detects missing residency" `Quick
      test_detects_missing_residency;
    Alcotest.test_case "detects spurious residency" `Quick
      test_detects_spurious_residency;
    Alcotest.test_case "detects broken chains" `Quick test_detects_broken_chain;
    Alcotest.test_case "detects mutual forwarding through home" `Quick
      test_detects_mutual_forwarding_through_home;
    Alcotest.test_case "immutable replicas audited" `Quick
      test_immutable_replicas_audited;
    Alcotest.test_case "chain-length diagnostic" `Quick
      test_chain_length_diagnostic;
    Alcotest.test_case "chain-length 64-hop boundary" `Quick
      test_chain_length_hop_boundary;
    Alcotest.test_case "chain-length visited set beats budget" `Quick
      test_chain_length_visited_before_budget;
    Alcotest.test_case "forwarding cycle discovered mid-chase" `Quick
      test_cycle_mid_chase_plain;
    Alcotest.test_case "forwarding cycle mid-chase, sanitized" `Quick
      test_cycle_mid_chase_sanitized;
    Alcotest.test_case "replica lifecycle audited" `Quick
      test_replica_lifecycle_audited;
    Alcotest.test_case "detects forwarded naming a replica" `Quick
      test_detects_forwarded_naming_replica;
    Alcotest.test_case "detects stale replica snapshot" `Quick
      test_detects_stale_replica_snapshot;
    Alcotest.test_case "detects replica surviving deletion" `Quick
      test_detects_replica_surviving_deletion;
    QCheck_alcotest.to_alcotest prop_audit_after_storm;
  ]
