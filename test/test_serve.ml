(* Amber-Serve: traffic generation distributions, admission control and
   the overload acceptance story.

   The generator tests are pure (they drive [Serve.Trafficgen] with a
   raw [Sim.Rng.t], no cluster); the admission unit tests exercise the
   token bucket and cutoff against a hand-advanced clock; the
   integration tests run real serving sessions and check the headline
   claim — at 2x capacity, admission control sheds load and keeps the
   admitted tail bounded while the uncontrolled run degrades. *)

module A = Amber
module T = Serve.Trafficgen

let rng_of seed = Sim.Rng.make (Int64.of_int seed)

(* --- traffic generation ------------------------------------------------- *)

let gen ?(arrival = T.Poisson 500.0) ?(duration = 2.0) ?(skew = 1.0) seed =
  T.generate ~rng:(rng_of seed) ~arrival ~mix:T.default_mix ~keys:32 ~skew
    ~duration

let prop_generator_deterministic =
  QCheck.Test.make ~name:"same seed, byte-identical schedule" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      T.to_string (gen seed) = T.to_string (gen seed)
      && T.to_string (gen ~arrival:(T.Bursty
                                      {
                                        rate = 200.0;
                                        factor = 8.0;
                                        on_mean = 0.05;
                                        off_mean = 0.2;
                                      })
                        seed)
         = T.to_string (gen ~arrival:(T.Bursty
                                        {
                                          rate = 200.0;
                                          factor = 8.0;
                                          on_mean = 0.05;
                                          off_mean = 0.2;
                                        })
                          seed))

let test_poisson_mean () =
  (* 500 rps over 20 s: the empirical rate of ~10k arrivals should sit
     within a few percent of the configured mean. *)
  let reqs = gen ~duration:20.0 42 in
  let rate = float_of_int (List.length reqs) /. 20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "empirical rate %.1f within 5%% of 500" rate)
    true
    (abs_float (rate -. 500.0) < 25.0)

let test_zipf_skew () =
  (* Zipf(1) over 32 keys: rank 0 should carry ~1/H_32 = 24.6% of the
     draws, and a long sample should hit it far more than uniform 1/32
     would. *)
  let reqs = gen ~duration:20.0 7 in
  let n = List.length reqs in
  let hits =
    List.length (List.filter (fun (r : T.request) -> r.key = 0) reqs)
  in
  let frac = float_of_int hits /. float_of_int n in
  let h32 = ref 0.0 in
  for k = 1 to 32 do
    h32 := !h32 +. (1.0 /. float_of_int k)
  done;
  let expect = 1.0 /. !h32 in
  Alcotest.(check bool)
    (Printf.sprintf "rank-0 frequency %.3f near Zipf prediction %.3f" frac
       expect)
    true
    (abs_float (frac -. expect) < 0.03);
  let uniform = gen ~duration:20.0 ~skew:0.0 7 in
  let uhits =
    List.length (List.filter (fun (r : T.request) -> r.key = 0) uniform)
  in
  Alcotest.(check bool)
    "skewed sample hits the hot key far more than uniform" true
    (hits > 3 * uhits)

let test_bursty_mean_rate () =
  (* The MMPP's long-run rate is the phase-time-weighted mix of the on
     and off rates; a long sample should land near it, and well above
     the base rate. *)
  let arrival =
    T.Bursty { rate = 100.0; factor = 10.0; on_mean = 0.05; off_mean = 0.15 }
  in
  let expect = T.mean_rate arrival in
  let reqs = gen ~arrival ~duration:50.0 99 in
  let rate = float_of_int (List.length reqs) /. 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "bursty empirical rate %.1f near analytic %.1f" rate expect)
    true
    (abs_float (rate -. expect) /. expect < 0.15);
  Alcotest.(check bool) "burstiness raises the rate above base" true
    (rate > 150.0)

let test_class_mix () =
  let reqs = gen ~duration:20.0 13 in
  let n = float_of_int (List.length reqs) in
  let frac c =
    float_of_int
      (List.length (List.filter (fun (r : T.request) -> r.cls = c) reqs))
    /. n
  in
  Alcotest.(check bool)
    "class mix near 0.7/0.2/0.1" true
    (abs_float (frac T.Read -. 0.7) < 0.03
    && abs_float (frac T.Write -. 0.2) < 0.03
    && abs_float (frac T.Compute -. 0.1) < 0.03)

(* --- admission control -------------------------------------------------- *)

let test_bucket_refill () =
  let b = Serve.Admission.bucket ~rate:10.0 ~burst:4.0 in
  Alcotest.(check (float 1e-9)) "starts full" 4.0
    (Serve.Admission.tokens b ~now:0.0);
  for _ = 1 to 4 do
    Alcotest.(check bool) "take while tokens remain" true
      (Serve.Admission.try_take b ~now:0.0)
  done;
  Alcotest.(check bool) "empty bucket rejects" false
    (Serve.Admission.try_take b ~now:0.0);
  (* 0.25 s at 10 tok/s credits 2.5 tokens. *)
  Alcotest.(check (float 1e-9)) "lazy refill credits rate*dt" 2.5
    (Serve.Admission.tokens b ~now:0.25);
  (* A long gap caps at burst, and time never flows backward. *)
  Alcotest.(check (float 1e-9)) "refill caps at burst" 4.0
    (Serve.Admission.tokens b ~now:10.0);
  Alcotest.(check (float 1e-9)) "earlier now ignored" 4.0
    (Serve.Admission.tokens b ~now:5.0)

let prop_bucket_bounded =
  (* Whatever interleaving of takes and refills, the level stays within
     [0, burst]. *)
  QCheck.Test.make ~name:"bucket level stays within [0, burst]" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1.0) bool))
    (fun steps ->
      let b = Serve.Admission.bucket ~rate:5.0 ~burst:3.0 in
      let now = ref 0.0 in
      List.for_all
        (fun (dt, take) ->
          now := !now +. dt;
          if take then ignore (Serve.Admission.try_take b ~now:!now : bool);
          let level = Serve.Admission.tokens b ~now:!now in
          level >= 0.0 && level <= 3.0)
        steps)

let test_cutoff_before_bucket () =
  let t =
    Serve.Admission.create ~classes:[ ("read", 10.0, 2.0) ] ~cutoff:4
  in
  (* Depth at the cutoff rejects without consuming a token... *)
  Alcotest.(check bool) "queue-full rejects" false
    (Serve.Admission.admit t ~now:0.0 ~cls:"read" ~depth:4);
  (* ...so both tokens are still there for admittable requests. *)
  Alcotest.(check bool) "token survives queue-full rejection" true
    (Serve.Admission.admit t ~now:0.0 ~cls:"read" ~depth:0);
  Alcotest.(check bool) "second token too" true
    (Serve.Admission.admit t ~now:0.0 ~cls:"read" ~depth:0);
  Alcotest.(check bool) "then the bucket is dry" false
    (Serve.Admission.admit t ~now:0.0 ~cls:"read" ~depth:0);
  (* A class with no configured bucket is limited by the cutoff alone. *)
  Alcotest.(check bool) "unbucketed class rides the cutoff" true
    (Serve.Admission.admit t ~now:0.0 ~cls:"compute" ~depth:3)

(* --- serving integration ------------------------------------------------ *)

let run_serve ?(nodes = 4) ?(seed = 11) ?faults ?crashes ?(crash_rate = 0.0)
    cfg =
  let faults = Option.value faults ~default:Hw.Ethernet.no_faults in
  let ccfg =
    A.Config.make ~nodes ~cpus:4 ~seed:(Int64.of_int seed) ~faults
      ?crashes ~crash_rate ()
  in
  A.Cluster.run_value ccfg (fun rt -> Serve.run rt cfg)

let capacity = Serve.capacity_rps Serve.default_cfg ~nodes:4

let serve_cfg ?(rate_mult = 0.5) ?(admission = None) () =
  {
    Serve.default_cfg with
    Serve.arrival = T.Poisson (rate_mult *. capacity);
    duration = 0.3;
    admission;
  }

let p99 (r : Serve.result) =
  Sim.Stats.Summary.percentile r.Serve.latency 99.0

let test_accounting_closes () =
  let r = run_serve (serve_cfg ()) in
  Alcotest.(check int) "issued = completed + rejected + failed" r.Serve.issued
    (r.Serve.completed + r.Serve.rejected + r.Serve.failed);
  Alcotest.(check bool) "moderate load completes everything" true
    (r.Serve.completed = r.Serve.issued && r.Serve.issued > 50)

let test_overload_acceptance () =
  (* The PR's headline acceptance: at 2x nominal capacity, admission
     control sheds load (rejects > 0) and keeps the admitted p99 within
     3x the moderate-load p99, while the uncontrolled run's tail
     degrades well past that bound. *)
  let moderate = run_serve (serve_cfg ~rate_mult:0.5 ()) in
  let controlled =
    run_serve
      (serve_cfg ~rate_mult:2.0 ~admission:(Some Serve.default_admission) ())
  in
  let uncontrolled = run_serve (serve_cfg ~rate_mult:2.0 ()) in
  Alcotest.(check bool) "admission sheds load under overload" true
    (controlled.Serve.rejected > 0);
  Alcotest.(check bool) "uncontrolled run sheds nothing" true
    (uncontrolled.Serve.rejected = 0);
  let m = p99 moderate and c = p99 controlled and u = p99 uncontrolled in
  Alcotest.(check bool)
    (Printf.sprintf "admitted p99 %.1fms within 3x moderate p99 %.1fms"
       (c *. 1e3) (m *. 1e3))
    true
    (c <= 3.0 *. m);
  Alcotest.(check bool)
    (Printf.sprintf "uncontrolled p99 %.1fms degrades past the bound"
       (u *. 1e3))
    true
    (u > 3.0 *. m && u > 2.0 *. c);
  (* Shedding keeps goodput near capacity rather than collapsing. *)
  Alcotest.(check bool) "controlled goodput stays above half capacity" true
    (controlled.Serve.goodput_rps > 0.5 *. capacity)

let test_typed_rejection () =
  (* The first shed request surfaces as a typed [Amber.Overload.Overloaded]
     carrying the shedding node and the request class — under packet
     faults too, since rejection notices ride the reliable channel. *)
  let faults =
    { Hw.Ethernet.no_faults with Hw.Ethernet.drop_prob = 0.02; dup_prob = 0.01 }
  in
  let r =
    run_serve ~faults
      (serve_cfg ~rate_mult:2.0 ~admission:(Some Serve.default_admission) ())
  in
  Alcotest.(check bool) "a rejection was sampled" true
    (r.Serve.sample_rejection <> None);
  (match r.Serve.sample_rejection with
  | Some (A.Overload.Overloaded { node; cls }) ->
    Alcotest.(check bool) "rejecting node is in the cluster" true
      (node >= 0 && node < 4);
    Alcotest.(check bool) "class is one of the mix" true
      (List.mem cls [ "read"; "write"; "compute" ])
  | Some e ->
      Alcotest.failf "unexpected rejection exn: %s" (Printexc.to_string e)
  | None -> ());
  (* The registered printer renders the payload. *)
  match r.Serve.sample_rejection with
  | Some e ->
    let s = Printexc.to_string e in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "printer names the exception" true
      (contains s "Overloaded")
  | None -> ()

let test_crash_resolves_failed () =
  (* A fail-stop crash mid-window strands in-flight requests; the drain
     deadline must convert them to failures so the accounting still
     closes (no hangs). *)
  let r =
    run_serve
      ~crashes:[ { A.Config.cnode = 3; at = 0.05; restart = None } ]
      (serve_cfg ~rate_mult:0.5 ())
  in
  Alcotest.(check int) "accounting closes across a crash" r.Serve.issued
    (r.Serve.completed + r.Serve.rejected + r.Serve.failed)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_generator_deterministic;
    Alcotest.test_case "poisson arrivals hit the configured mean rate" `Quick
      test_poisson_mean;
    Alcotest.test_case "zipf skew concentrates traffic on hot keys" `Quick
      test_zipf_skew;
    Alcotest.test_case "bursty arrivals hit the analytic mean rate" `Quick
      test_bursty_mean_rate;
    Alcotest.test_case "class mix matches the configured weights" `Quick
      test_class_mix;
    Alcotest.test_case "token bucket refills lazily and caps at burst" `Quick
      test_bucket_refill;
    QCheck_alcotest.to_alcotest prop_bucket_bounded;
    Alcotest.test_case "queue cutoff rejects before burning tokens" `Quick
      test_cutoff_before_bucket;
    Alcotest.test_case "moderate load: accounting closes, nothing shed" `Quick
      test_accounting_closes;
    Alcotest.test_case
      "2x overload: admission bounds the tail, no admission degrades" `Quick
      test_overload_acceptance;
    Alcotest.test_case "shed requests surface as typed Overloaded" `Quick
      test_typed_rejection;
    Alcotest.test_case "crash mid-window resolves as failures, not hangs"
      `Quick test_crash_resolves_failed;
  ]
