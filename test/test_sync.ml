(* Synchronization objects: exclusion, fairness, barriers, conditions,
   monitors, and their mobility. *)

module A = Amber

let test_lock_mutual_exclusion () =
  let max_inside =
    Util.run (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let inside = ref 0 and peak = ref 0 in
        let threads =
          List.init 8 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  for _ = 1 to 5 do
                    A.Sync.Lock.with_lock rt lock (fun () ->
                        incr inside;
                        if !inside > !peak then peak := !inside;
                        Sim.Fiber.consume 1e-3;
                        decr inside)
                  done))
        in
        List.iter (fun t -> A.Api.join rt t) threads;
        !peak)
  in
  Alcotest.(check int) "never two inside" 1 max_inside

let test_lock_release_without_hold () =
  Util.run (fun rt ->
      let lock = A.Sync.Lock.create rt () in
      Alcotest.check_raises "release unheld"
        (Invalid_argument "Lock.release: lock is not held") (fun () ->
          A.Sync.Lock.release rt lock))

let test_try_acquire () =
  Util.run (fun rt ->
      let lock = A.Sync.Lock.create rt () in
      Alcotest.(check bool) "first succeeds" true
        (A.Sync.Lock.try_acquire rt lock);
      Alcotest.(check bool) "second fails" false
        (A.Sync.Lock.try_acquire rt lock);
      A.Sync.Lock.release rt lock;
      Alcotest.(check bool) "after release" true
        (A.Sync.Lock.try_acquire rt lock))

let test_lock_fifo_handoff () =
  let order =
    Util.run (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let order = ref [] in
        A.Sync.Lock.acquire rt lock;
        let ts =
          List.init 3 (fun i ->
              let t =
                A.Api.start rt ~name:(string_of_int i) (fun () ->
                    A.Sync.Lock.acquire rt lock;
                    order := i :: !order;
                    A.Sync.Lock.release rt lock)
              in
              (* Stagger arrivals deterministically. *)
              Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 5e-3;
              t)
        in
        A.Sync.Lock.release rt lock;
        List.iter (fun t -> A.Api.join rt t) ts;
        List.rev !order)
  in
  Alcotest.(check (list int)) "granted in arrival order" [ 0; 1; 2 ] order

let test_remote_lock () =
  (* A lock on node 2 synchronizes threads living on nodes 0 and 1. *)
  let peak =
    Util.run ~nodes:3 (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        A.Sync.Lock.move rt lock ~dest:2;
        Alcotest.(check int) "lock placed" 2 (A.Sync.Lock.locate rt lock);
        let inside = ref 0 and peak = ref 0 in
        let anchors =
          List.init 2 (fun n ->
              let a = A.Api.create rt ~name:(Printf.sprintf "a%d" n) () in
              A.Api.move_to rt a ~dest:n;
              a)
        in
        let ts =
          List.map
            (fun anchor ->
              A.Api.start_invoke rt anchor (fun () ->
                  for _ = 1 to 3 do
                    A.Sync.Lock.with_lock rt lock (fun () ->
                        incr inside;
                        if !inside > !peak then peak := !inside;
                        Sim.Fiber.consume 2e-3;
                        decr inside)
                  done))
            anchors
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        !peak)
  in
  Alcotest.(check int) "exclusion across nodes" 1 peak

let test_spinlock () =
  let peak, probes =
    Util.run ~nodes:1 ~cpus:4 (fun rt ->
        let lock = A.Sync.Spinlock.create rt () in
        let inside = ref 0 and peak = ref 0 in
        let ts =
          List.init 4 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  for _ = 1 to 4 do
                    A.Sync.Spinlock.with_lock rt lock (fun () ->
                        incr inside;
                        if !inside > !peak then peak := !inside;
                        Sim.Fiber.consume 0.5e-3;
                        decr inside)
                  done))
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        (!peak, A.Sync.Spinlock.contended_probes lock))
  in
  Alcotest.(check int) "exclusion" 1 peak;
  Alcotest.(check bool) "spinning happened" true (probes > 0)

let test_barrier_generations () =
  let gens =
    Util.run (fun rt ->
        let b = A.Sync.Barrier.create rt ~parties:4 () in
        let ts =
          List.init 4 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  for _ = 1 to 3 do
                    Sim.Fiber.consume (1e-3 *. float_of_int (i + 1));
                    A.Sync.Barrier.pass rt b
                  done))
        in
        List.iter (fun t -> A.Api.join rt t) ts;
        A.Sync.Barrier.generation b)
  in
  Alcotest.(check int) "three generations" 3 gens

let test_barrier_blocks_until_full () =
  let released_early =
    Util.run (fun rt ->
        let b = A.Sync.Barrier.create rt ~parties:2 () in
        let released = ref false in
        let t =
          A.Api.start rt (fun () ->
              A.Sync.Barrier.pass rt b;
              released := true)
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 50e-3;
        let early = !released in
        A.Sync.Barrier.pass rt b;
        A.Api.join rt t;
        early)
  in
  Alcotest.(check bool) "no early release" false released_early

let test_condition_signal () =
  let consumed =
    Util.run (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let cond = A.Sync.Condition.create rt () in
        let items = Queue.create () in
        let consumer =
          A.Api.start rt ~name:"consumer" (fun () ->
              A.Sync.Lock.acquire rt lock;
              while Queue.is_empty items do
                A.Sync.Condition.wait rt cond lock
              done;
              let v = Queue.pop items in
              A.Sync.Lock.release rt lock;
              v)
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 10e-3;
        A.Sync.Lock.acquire rt lock;
        Queue.add 42 items;
        A.Sync.Condition.signal rt cond;
        A.Sync.Lock.release rt lock;
        A.Api.join rt consumer)
  in
  Alcotest.(check int) "value handed over" 42 consumed

let test_condition_signal_before_block_not_lost () =
  (* The waiter's cell mechanism must tolerate a signal landing between
     queue registration and the actual block. *)
  let ok =
    Util.run (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let cond = A.Sync.Condition.create rt () in
        let flag = ref false in
        let waiter =
          A.Api.start rt (fun () ->
              A.Sync.Lock.acquire rt lock;
              while not !flag do
                A.Sync.Condition.wait rt cond lock
              done;
              A.Sync.Lock.release rt lock;
              true)
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 5e-3;
        A.Sync.Lock.acquire rt lock;
        flag := true;
        A.Sync.Condition.signal rt cond;
        A.Sync.Lock.release rt lock;
        A.Api.join rt waiter)
  in
  Alcotest.(check bool) "woken" true ok

let test_condition_broadcast () =
  let woken =
    Util.run (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        let cond = A.Sync.Condition.create rt () in
        let go = ref false in
        let count = ref 0 in
        let ts =
          List.init 5 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  A.Sync.Lock.acquire rt lock;
                  while not !go do
                    A.Sync.Condition.wait rt cond lock
                  done;
                  incr count;
                  A.Sync.Lock.release rt lock))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 20e-3;
        A.Sync.Lock.acquire rt lock;
        go := true;
        A.Sync.Condition.broadcast rt cond;
        A.Sync.Lock.release rt lock;
        List.iter (fun t -> A.Api.join rt t) ts;
        !count)
  in
  Alcotest.(check int) "all woken" 5 woken

let test_monitor_broadcast () =
  let woken =
    Util.run (fun rt ->
        let m = A.Sync.Monitor.create rt () in
        let cond = A.Sync.Monitor.new_condition rt m in
        let go = ref false in
        let count = ref 0 in
        let ts =
          List.init 4 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  A.Sync.Monitor.with_monitor rt m (fun () ->
                      while not !go do
                        A.Sync.Monitor.wait rt m cond
                      done;
                      incr count)))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 20e-3;
        A.Sync.Monitor.with_monitor rt m (fun () ->
            go := true;
            A.Sync.Monitor.broadcast rt cond);
        List.iter (fun t -> A.Api.join rt t) ts;
        !count)
  in
  Alcotest.(check int) "all waiters woken" 4 woken

let test_barrier_generation_reuse () =
  (* The same barrier object is reused across generations with a
     different last arriver each round; a generation's waiters must never
     leak into the next one. *)
  let gens =
    Util.run (fun rt ->
        let b = A.Sync.Barrier.create rt ~parties:2 () in
        let t =
          A.Api.start rt (fun () ->
              (* Last to arrive in round 1, first in round 2. *)
              Sim.Fiber.consume 5e-3;
              A.Sync.Barrier.pass rt b;
              A.Sync.Barrier.pass rt b)
        in
        A.Sync.Barrier.pass rt b;
        Sim.Fiber.consume 10e-3;
        A.Sync.Barrier.pass rt b;
        A.Api.join rt t;
        A.Sync.Barrier.generation b)
  in
  Alcotest.(check int) "two clean generations" 2 gens

let test_condition_wait_requires_lock () =
  Util.run (fun rt ->
      let lock = A.Sync.Lock.create rt () in
      let cond = A.Sync.Condition.create rt () in
      Alcotest.check_raises "no lock"
        (Invalid_argument "Condition.wait: lock is not held") (fun () ->
          A.Sync.Condition.wait rt cond lock))

let test_monitor () =
  let v =
    Util.run (fun rt ->
        let m = A.Sync.Monitor.create rt () in
        let cond = A.Sync.Monitor.new_condition rt m in
        let cell = ref None in
        let reader =
          A.Api.start rt (fun () ->
              A.Sync.Monitor.with_monitor rt m (fun () ->
                  while !cell = None do
                    A.Sync.Monitor.wait rt m cond
                  done;
                  Option.get !cell))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 5e-3;
        A.Sync.Monitor.with_monitor rt m (fun () ->
            cell := Some 7;
            A.Sync.Monitor.signal rt cond);
        A.Api.join rt reader)
  in
  Alcotest.(check int) "monitor handoff" 7 v

let test_barrier_single_party () =
  Util.run (fun rt ->
      let b = A.Sync.Barrier.create rt ~parties:1 () in
      A.Sync.Barrier.pass rt b;
      A.Sync.Barrier.pass rt b;
      Alcotest.(check int) "each pass completes a generation" 2
        (A.Sync.Barrier.generation b))

let test_signal_without_waiters_is_noop () =
  Util.run (fun rt ->
      let cond = A.Sync.Condition.create rt () in
      A.Sync.Condition.signal rt cond;
      A.Sync.Condition.broadcast rt cond;
      Alcotest.(check int) "no waiters" 0 (A.Sync.Condition.waiters cond))

let test_spinlock_is_mobile () =
  Util.run ~nodes:3 (fun rt ->
      let l = A.Sync.Spinlock.create rt () in
      A.Sync.Spinlock.move rt l ~dest:2;
      A.Sync.Spinlock.with_lock rt l (fun () -> Sim.Fiber.consume 1e-3);
      Alcotest.(check bool) "released" false (A.Sync.Spinlock.is_held l))

let test_lock_moves_with_waiters_pending () =
  (* Move a lock while threads are blocked on it; they must still be
     granted the lock afterwards. *)
  let finished =
    Util.run ~nodes:3 (fun rt ->
        let lock = A.Sync.Lock.create rt () in
        A.Sync.Lock.acquire rt lock;
        let ts =
          List.init 3 (fun i ->
              A.Api.start rt ~name:(string_of_int i) (fun () ->
                  A.Sync.Lock.with_lock rt lock (fun () ->
                      Sim.Fiber.consume 1e-3);
                  1))
        in
        Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 10e-3;
        A.Sync.Lock.move rt lock ~dest:2;
        A.Sync.Lock.release rt lock;
        List.fold_left (fun acc t -> acc + A.Api.join rt t) 0 ts)
  in
  Alcotest.(check int) "all granted after move" 3 finished

let suite =
  [
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "release of unheld lock rejected" `Quick
      test_lock_release_without_hold;
    Alcotest.test_case "try_acquire" `Quick test_try_acquire;
    Alcotest.test_case "FIFO handoff" `Quick test_lock_fifo_handoff;
    Alcotest.test_case "remote lock synchronizes nodes" `Quick test_remote_lock;
    Alcotest.test_case "spinlock" `Quick test_spinlock;
    Alcotest.test_case "barrier generations" `Quick test_barrier_generations;
    Alcotest.test_case "barrier blocks until full" `Quick
      test_barrier_blocks_until_full;
    Alcotest.test_case "condition signal" `Quick test_condition_signal;
    Alcotest.test_case "signal-before-block not lost" `Quick
      test_condition_signal_before_block_not_lost;
    Alcotest.test_case "condition broadcast" `Quick test_condition_broadcast;
    Alcotest.test_case "monitor broadcast" `Quick test_monitor_broadcast;
    Alcotest.test_case "barrier generation reuse" `Quick
      test_barrier_generation_reuse;
    Alcotest.test_case "condition wait requires lock" `Quick
      test_condition_wait_requires_lock;
    Alcotest.test_case "monitor" `Quick test_monitor;
    Alcotest.test_case "barrier with one party" `Quick
      test_barrier_single_party;
    Alcotest.test_case "signal without waiters" `Quick
      test_signal_without_waiters_is_noop;
    Alcotest.test_case "spinlock is mobile" `Quick test_spinlock_is_mobile;
    Alcotest.test_case "lock moves with waiters pending" `Quick
      test_lock_moves_with_waiters_pending;
  ]
