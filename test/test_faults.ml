(* Fault injection: workloads survive a lossy network with unchanged
   results (exactly-once semantics), the fault pattern and the recovery
   counters are a pure function of the seed, and the forwarding-chain
   repair (home-node fallback) path works. *)

module A = Amber
module W = Workloads

let faults ?(drop = 0.0) ?(dup = 0.0) ?(delay_prob = 0.0)
    ?(delay_spike = 10e-3) ?(stalls = []) () =
  {
    Hw.Ethernet.drop_prob = drop;
    dup_prob = dup;
    delay_prob;
    delay_spike;
    stalls;
  }

let fault_stats rt = (A.Stats_report.capture rt).A.Stats_report.faults

(* --- workloads under injected loss --------------------------------------- *)

let test_sor_correct_under_drop () =
  let p = W.Sor_core.with_size W.Sor_core.default ~rows:24 ~cols:48 in
  let iters = 4 in
  let want = W.Sor_core.Full_grid.checksum (W.Sor_core.reference p ~iters) in
  let cfg = A.Config.make ~nodes:4 ~cpus:2 ~faults:(faults ~drop:0.05 ()) () in
  let r, f =
    A.Cluster.run_value cfg (fun rt ->
        let c = W.Sor_amber.default_cfg rt in
        let r = W.Sor_amber.run rt p ~cfg:c ~iters () in
        (r, fault_stats rt))
  in
  Alcotest.(check (float 0.0)) "checksum unchanged by faults" want
    r.W.Sor_amber.checksum;
  Alcotest.(check bool) "faults actually fired" true
    (f.A.Stats_report.packets_dropped > 0);
  Alcotest.(check bool) "recovered by retransmission" true
    (f.A.Stats_report.rpc_retransmits > 0)

let wq_cfg items move_at =
  {
    W.Work_queue.items;
    work_cpu = 2e-3;
    batch = 4;
    workers_per_node = 2;
    move_queue_at = move_at;
  }

let test_workqueue_exactly_once_under_faults () =
  (* Drop + duplicate + delay together, with a queue migration mid-run:
     every item must still be processed exactly once. *)
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2
      ~faults:(faults ~drop:0.08 ~dup:0.03 ~delay_prob:0.02 ())
      ()
  in
  let r, f =
    A.Cluster.run_value cfg (fun rt ->
        let r = W.Work_queue.run rt (wq_cfg 60 (Some 25)) in
        (r, fault_stats rt))
  in
  Alcotest.(check int) "all items processed" 60 r.W.Work_queue.processed;
  Alcotest.(check int) "per-node counts sum to items" 60
    (Array.fold_left ( + ) 0 r.W.Work_queue.per_node);
  Alcotest.(check bool) "duplicates were suppressed" true
    (f.A.Stats_report.dup_datagrams + f.A.Stats_report.dup_requests
     + f.A.Stats_report.dup_replies
    > 0
    || f.A.Stats_report.packets_duplicated = 0)

let test_stall_window_rides_out () =
  let cfg =
    A.Config.make ~nodes:3 ~cpus:2
      ~faults:
        (faults
           ~stalls:[ { Hw.Ethernet.node = 1; from_t = 0.01; until_t = 0.15 } ]
           ())
      ()
  in
  let r, f =
    A.Cluster.run_value cfg (fun rt ->
        let r = W.Work_queue.run rt (wq_cfg 40 None) in
        (r, fault_stats rt))
  in
  Alcotest.(check int) "all items processed" 40 r.W.Work_queue.processed;
  Alcotest.(check bool) "stall window held packets" true
    (f.A.Stats_report.packets_stalled > 0)

(* --- determinism ---------------------------------------------------------- *)

let test_fault_pattern_deterministic () =
  let run_once () =
    let cfg =
      A.Config.make ~nodes:4 ~cpus:2 ~seed:0x5EEDL
        ~faults:(faults ~drop:0.06 ~dup:0.02 ())
        ()
    in
    A.Cluster.run_value cfg (fun rt ->
        let r = W.Work_queue.run rt (wq_cfg 50 (Some 20)) in
        (r.W.Work_queue.processed, A.Runtime.now rt, fault_stats rt))
  in
  let p1, t1, f1 = run_once () in
  let p2, t2, f2 = run_once () in
  Alcotest.(check int) "same items" p1 p2;
  Alcotest.(check (float 0.0)) "bit-identical elapsed" t1 t2;
  Alcotest.(check bool) "identical fault + recovery counters" true (f1 = f2);
  Alcotest.(check bool) "retries happened at all" true
    (f1.A.Stats_report.rpc_retransmits > 0)

let test_no_faults_no_overhead () =
  (* With faults disabled the reliability layer must not exist: no drops,
     no timers, no acks, no sequence numbers — counters all zero. *)
  let cfg = A.Config.make ~nodes:4 ~cpus:2 () in
  let f, reliable, kinds =
    A.Cluster.run_value cfg (fun rt ->
        let _r = W.Work_queue.run rt (wq_cfg 30 None) in
        ( fault_stats rt,
          Topaz.Rpc.reliable_mode (A.Runtime.rpc rt),
          List.map
            (fun (k, _, _) -> k)
            (Hw.Ethernet.traffic_by_kind (A.Runtime.ether rt)) ))
  in
  Alcotest.(check bool) "transport in at-most-once mode" false reliable;
  Alcotest.(check bool) "faults reported off" false
    f.A.Stats_report.faults_enabled;
  Alcotest.(check int) "no drops" 0 f.A.Stats_report.packets_dropped;
  Alcotest.(check int) "no retransmits" 0 f.A.Stats_report.rpc_retransmits;
  Alcotest.(check int) "no acks" 0 f.A.Stats_report.acks_sent;
  (* "move-ack"/"copy-ack" are protocol-level posts and legal; transport
     acks like "thread-ack" must not appear. *)
  Alcotest.(check bool) "no transport acks on the wire" true
    (not (List.mem "thread-ack" kinds))

(* --- forwarding-chain repair --------------------------------------------- *)

let test_home_fallback_repairs_stale_chain () =
  (* A cycle of stale descriptors (1 -> 2 -> 4 -> 1) that never reaches
     the object.  With a hop budget of 2 the chase must give up on the
     chain and restart at the home node, whose hint is authoritative. *)
  let cfg =
    { (A.Config.make ~nodes:6 ~cpus:2 ()) with A.Config.max_forward_hops = 2 }
  in
  A.Cluster.run_value cfg (fun rt ->
      let o = A.Api.create rt ~name:"wanderer" (ref 0) in
      A.Api.move_to rt o ~dest:5;
      let anchor = A.Api.create rt ~name:"anchor" () in
      A.Api.move_to rt anchor ~dest:3;
      let fwd n next =
        A.Descriptor.set_forwarded (A.Runtime.descriptors rt n)
          o.A.Aobject.addr next
      in
      fwd 3 1;
      fwd 1 2;
      fwd 2 4;
      fwd 4 1;
      let where =
        A.Api.invoke rt anchor (fun () -> A.Api.locate rt o)
      in
      Alcotest.(check int) "resolved at the true location" 5 where;
      Alcotest.(check bool) "went through the home fallback" true
        ((A.Runtime.counters rt).A.Runtime.home_fallbacks > 0);
      (* The repair rewrote the stale chain: a second locate is direct. *)
      let hops_before = (A.Runtime.counters rt).A.Runtime.forward_hops in
      let where2 = A.Api.invoke rt anchor (fun () -> A.Api.locate rt o) in
      Alcotest.(check int) "still resolves" 5 where2;
      Alcotest.(check bool) "chain was compacted" true
        ((A.Runtime.counters rt).A.Runtime.forward_hops - hops_before <= 1))

let test_wedged_chain_repaired_by_broadcast () =
  (* Sabotage the home node itself so even the home fallback loops — the
     shape concurrent moves can produce naturally.  The chase must detect
     the static cycle, fall back to the Emerald-style exhaustive search,
     find the resident copy and repair the stale descriptors. *)
  let cfg =
    { (A.Config.make ~nodes:4 ~cpus:2 ()) with A.Config.max_forward_hops = 2 }
  in
  A.Cluster.run_value cfg (fun rt ->
      let o = A.Api.create rt ~name:"lost" (ref 0) in
      A.Api.move_to rt o ~dest:3;
      let fwd n next =
        A.Descriptor.set_forwarded (A.Runtime.descriptors rt n)
          o.A.Aobject.addr next
      in
      (* Home (node 0) now points into a cycle that avoids node 3. *)
      fwd 0 1;
      fwd 1 2;
      fwd 2 0;
      Alcotest.(check int) "search finds the resident copy" 3
        (A.Api.locate rt o);
      Alcotest.(check bool) "went through the broadcast" true
        ((A.Runtime.counters rt).A.Runtime.broadcast_locates > 0);
      (* The success-path compression rewrote the cycle: the world is
         coherent again and a second locate needs no repair. *)
      A.Audit.check_exn rt [ A.Aobject.Any o ];
      let b = (A.Runtime.counters rt).A.Runtime.broadcast_locates in
      Alcotest.(check int) "still resolves" 3 (A.Api.locate rt o);
      Alcotest.(check int) "no further broadcasts" b
        (A.Runtime.counters rt).A.Runtime.broadcast_locates)

let test_truly_dangling_reference_fails_cleanly () =
  (* A self-loop descriptor is unrepairable garbage: the chase must
     terminate with a clean diagnostic rather than spin forever. *)
  A.Cluster.run_value (A.Config.make ~nodes:4 ~cpus:2 ()) (fun rt ->
      let o = A.Api.create rt ~name:"gone" (ref 0) in
      A.Api.move_to rt o ~dest:2;
      A.Descriptor.set_forwarded (A.Runtime.descriptors rt 0) o.A.Aobject.addr
        0;
      match A.Api.invoke rt o (fun r -> !r) with
      | _ -> Alcotest.fail "expected the chase to report a dangling reference"
      | exception Failure msg ->
        Alcotest.(check bool) "diagnostic names the reference" true
          (String.length msg > 0))

let test_validation_rejects_bad_faults () =
  let bad f =
    match
      A.Config.validate { A.Config.default with A.Config.faults = f }
    with
    | () -> Alcotest.fail "expected rejection"
    | exception Invalid_argument _ -> ()
  in
  bad (faults ~drop:1.5 ());
  bad (faults ~drop:(-0.1) ());
  bad (faults ~dup:1.0 ());
  bad (faults ~delay_prob:0.5 ~delay_spike:(-1.0) ());
  bad
    (faults ~stalls:[ { Hw.Ethernet.node = 0; from_t = 0.2; until_t = 0.1 } ] ())

let suite =
  [
    Alcotest.test_case "SOR checksum unchanged under 5% drop" `Quick
      test_sor_correct_under_drop;
    Alcotest.test_case "work queue exactly-once under drop+dup+delay" `Quick
      test_workqueue_exactly_once_under_faults;
    Alcotest.test_case "stall window rides out" `Quick
      test_stall_window_rides_out;
    Alcotest.test_case "fault pattern deterministic in the seed" `Quick
      test_fault_pattern_deterministic;
    Alcotest.test_case "no faults, no reliability overhead" `Quick
      test_no_faults_no_overhead;
    Alcotest.test_case "home fallback repairs a stale chain" `Quick
      test_home_fallback_repairs_stale_chain;
    Alcotest.test_case "wedged chain repaired by broadcast" `Quick
      test_wedged_chain_repaired_by_broadcast;
    Alcotest.test_case "truly dangling reference fails cleanly" `Quick
      test_truly_dangling_reference_fails_cleanly;
    Alcotest.test_case "bad fault configs rejected" `Quick
      test_validation_rejects_bad_faults;
  ]
