(* The model checker: schedule serialization, exhaustive exploration,
   random-walk exploration, counterexample replay, and the hidden
   mutation used by CI to prove the checker still catches the
   count-window dedup bug. *)

module M = Analysis.Modelcheck
module S = Analysis.Schedule

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let find_fixture name =
  match M.find_fixture name with
  | Some f -> f
  | None -> Alcotest.failf "fixture %s missing" name

let test_fixture_registry () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (M.find_fixture n <> None))
    [ "replica"; "future"; "rpc"; "steal"; "crash-promo"; "crash-move" ];
  Alcotest.(check bool) "unknown rejected" true (M.find_fixture "nope" = None)

let test_explore_steal_clean () =
  let o = M.explore ~max_schedules:150 (find_fixture "steal") in
  Alcotest.(check bool) "no counterexample" true (o.M.counterexample = None);
  Alcotest.(check bool) "explored many schedules" true
    (o.M.stats.M.schedules >= 100);
  Alcotest.(check bool) "decision points counted" true
    (o.M.stats.M.decisions > o.M.stats.M.schedules)

let test_explore_deterministic () =
  let run () =
    let o = M.explore ~max_schedules:80 (find_fixture "future") in
    (o.M.stats.M.schedules, o.M.stats.M.decisions, o.M.stats.M.max_depth)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "exploration replays identically" true (a = b)

let test_fuzz_clean_and_deterministic () =
  let run () =
    let o = M.fuzz ~seed:11 ~max_schedules:60 (find_fixture "rpc") in
    Alcotest.(check bool) "safe rpc clean under random walks" true
      (o.M.counterexample = None);
    (o.M.stats.M.decisions, o.M.stats.M.max_depth)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same walks" true (a = b)

let mutated_rpc () =
  M.apply_mutation M.Dedup_count_window (find_fixture "rpc")

let counterexample () =
  let o = M.fuzz ~seed:1 ~max_schedules:2000 (mutated_rpc ()) in
  match o.M.counterexample with
  | Some ce -> ce
  | None ->
    Alcotest.fail "random walks did not find the count-window dedup bug"

let test_mutation_found () =
  let _sched, violations = counterexample () in
  Alcotest.(check bool) "an exactly-once violation" true
    (List.exists
       (fun v -> contains ~affix:"exactly-once" v || contains ~affix:"delivered" v)
       violations)

let test_counterexample_replays () =
  let sched, violations = counterexample () in
  (* Replaying the recorded schedule against the mutated fixture must
     reproduce the violation bit-for-bit... *)
  Alcotest.(check (list string)) "replay reproduces the violations"
    violations
    (M.replay (mutated_rpc ()) sched);
  (* ...while the same schedule against the unmutated fixture is clean:
     the horizon-gated retirement is exactly what suppresses the
     duplicate. *)
  Alcotest.(check (list string)) "safe protocol survives the same schedule"
    [] (M.replay (find_fixture "rpc") sched)

let test_schedule_roundtrip () =
  let sched, _ = counterexample () in
  let text = S.to_string ~comments:[ "from test" ] sched in
  match S.of_string text with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok back ->
    Alcotest.(check int) "same length" (List.length sched) (List.length back);
    List.iter2
      (fun (a : S.decision) (b : S.decision) ->
        Alcotest.(check bool) "same decision" true
          (a.S.dom = b.S.dom && a.S.index = b.S.index
          && a.S.ncands = b.S.ncands && a.S.ident = b.S.ident))
      sched back

(* Crash-recovery fixtures: node death races object migration, replica
   installs and home-node repair.  Each must explore clean — every reader
   either sees the written value or a typed failure, and a surviving
   replica always yields a route — across a healthy schedule budget under
   both systematic DFS and seeded random walks. *)

let test_crash_fixtures_explore_clean () =
  List.iter
    (fun name ->
      let o = M.explore ~max_schedules:500 (find_fixture name) in
      Alcotest.(check bool) (name ^ " clean under DFS") true
        (o.M.counterexample = None);
      Alcotest.(check bool) (name ^ " explored full budget") true
        (o.M.stats.M.schedules >= 500))
    [ "crash-promo"; "crash-move" ]

let test_crash_fixtures_fuzz_clean () =
  List.iter
    (fun name ->
      let o = M.fuzz ~seed:1 ~max_schedules:500 (find_fixture name) in
      Alcotest.(check bool) (name ^ " clean under random walks") true
        (o.M.counterexample = None);
      Alcotest.(check bool) (name ^ " walked full budget") true
        (o.M.stats.M.schedules >= 500))
    [ "crash-promo"; "crash-move" ]

let mutated_crash_move () =
  M.apply_mutation M.Skip_home_repair (find_fixture "crash-move")

let crash_counterexample () =
  (* DFS plods through the front of the schedule tree; the interleaving
     that strands the reader needs the crash wedged between the move and
     the home-table repair, which random walks reach within a few
     schedules. *)
  let o = M.fuzz ~seed:1 ~max_schedules:2000 (mutated_crash_move ()) in
  match o.M.counterexample with
  | Some ce -> ce
  | None ->
    Alcotest.fail "random walks did not find the skipped-home-repair bug"

let test_crash_mutation_found () =
  let _sched, violations = crash_counterexample () in
  Alcotest.(check bool) "a stranded-reader violation" true
    (List.exists
       (fun v ->
         contains ~affix:"no surviving route" v
         || contains ~affix:"lost" v || contains ~affix:"read" v)
       violations)

let test_crash_counterexample_replays () =
  let sched, violations = crash_counterexample () in
  (* The recorded schedule must reproduce the violation bit-for-bit
     against the mutated fixture.  (Unlike the dedup regression above we
     do not replay it against the clean fixture: repairing the home
     table changes the decision structure, so the schedule diverges
     rather than passing vacuously — the clean-fixture guarantee is
     carried by the explore/fuzz tests instead.) *)
  Alcotest.(check (list string)) "replay reproduces the violations"
    violations
    (M.replay (mutated_crash_move ()) sched)

let test_schedule_rejects_garbage () =
  (match S.of_string "not a schedule" with
  | Ok _ -> Alcotest.fail "missing header accepted"
  | Error _ -> ());
  match S.of_string "# ambercheck schedule v1\nevent\tnonsense" with
  | Ok _ -> Alcotest.fail "bad line accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "fixture registry" `Quick test_fixture_registry;
    Alcotest.test_case "explore: steal fixture clean" `Quick
      test_explore_steal_clean;
    Alcotest.test_case "explore: deterministic" `Quick
      test_explore_deterministic;
    Alcotest.test_case "fuzz: safe rpc clean, seeded walks repeat" `Quick
      test_fuzz_clean_and_deterministic;
    Alcotest.test_case "mutation: dedup bug found" `Quick test_mutation_found;
    Alcotest.test_case "mutation: counterexample replays" `Quick
      test_counterexample_replays;
    Alcotest.test_case "schedule: text round-trip" `Quick
      test_schedule_roundtrip;
    Alcotest.test_case "schedule: rejects garbage" `Quick
      test_schedule_rejects_garbage;
    Alcotest.test_case "crash fixtures: explore clean" `Quick
      test_crash_fixtures_explore_clean;
    Alcotest.test_case "crash fixtures: fuzz clean" `Quick
      test_crash_fixtures_fuzz_clean;
    Alcotest.test_case "crash mutation: stranded reader found" `Quick
      test_crash_mutation_found;
    Alcotest.test_case "crash mutation: counterexample replays" `Quick
      test_crash_counterexample_replays;
  ]
