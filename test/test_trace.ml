(* Trace ring buffer behaviour. *)

let emit t time cat msg =
  Sim.Trace.emit t ~time ~category:cat ~detail:(lazy msg) ()

let test_disabled_by_default () =
  let t = Sim.Trace.create () in
  emit t 1.0 "x" "hello";
  Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.length t)

let test_lazy_detail_not_forced_when_disabled () =
  let t = Sim.Trace.create () in
  let forced = ref false in
  Sim.Trace.emit t ~time:1.0 ~category:"x"
    ~detail:
      (lazy
        (forced := true;
         "expensive"))
    ();
  Alcotest.(check bool) "not forced" false !forced

let test_records_in_order () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_enabled t true;
  emit t 1.0 "a" "one";
  emit t 2.0 "b" "two";
  let r = Sim.Trace.records t in
  Alcotest.(check (list string)) "order" [ "one"; "two" ]
    (List.map (fun r -> r.Sim.Trace.detail) r)

let test_ring_wraps () =
  let t = Sim.Trace.create ~capacity:3 () in
  Sim.Trace.set_enabled t true;
  List.iter (fun i -> emit t (float_of_int i) "n" (string_of_int i))
    [ 1; 2; 3; 4; 5 ];
  let r = Sim.Trace.records t in
  Alcotest.(check (list string)) "last three" [ "3"; "4"; "5" ]
    (List.map (fun r -> r.Sim.Trace.detail) r)

let test_by_category () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_enabled t true;
  emit t 1.0 "net" "p1";
  emit t 2.0 "invoke" "i1";
  emit t 3.0 "net" "p2";
  Alcotest.(check int) "two net records" 2
    (List.length (Sim.Trace.by_category t "net"))

let test_clear () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_enabled t true;
  emit t 1.0 "x" "a";
  Sim.Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.length t)

(* Wraparound bookkeeping: [dropped] counts evicted records exactly, and
   resets with [clear]. *)
let test_dropped_counter () =
  let t = Sim.Trace.create ~capacity:4 () in
  Sim.Trace.set_enabled t true;
  Alcotest.(check int) "nothing dropped yet" 0 (Sim.Trace.dropped t);
  List.iter (fun i -> emit t (float_of_int i) "n" (string_of_int i))
    [ 1; 2; 3; 4 ];
  Alcotest.(check int) "full but not overflowed" 0 (Sim.Trace.dropped t);
  List.iter (fun i -> emit t (float_of_int i) "n" (string_of_int i))
    [ 5; 6; 7 ];
  Alcotest.(check int) "three evicted" 3 (Sim.Trace.dropped t);
  Sim.Trace.clear t;
  Alcotest.(check int) "clear resets dropped" 0 (Sim.Trace.dropped t)

(* --category filters the *surviving* window: records of a category that
   were evicted by wraparound are gone, and the filter only sees what the
   ring still holds (documented in the mli). *)
let test_filter_after_overflow () =
  let t = Sim.Trace.create ~capacity:4 () in
  Sim.Trace.set_enabled t true;
  (* Alternate categories: a1 b2 a3 b4 a5 b6 a7 b8 a9 b10.  Capacity 4
     keeps only a7 b8 a9 b10. *)
  for i = 1 to 10 do
    let cat = if i mod 2 = 1 then "a" else "b" in
    emit t (float_of_int i) cat (string_of_int i)
  done;
  Alcotest.(check int) "six dropped" 6 (Sim.Trace.dropped t);
  let det c =
    List.map (fun r -> r.Sim.Trace.detail) (Sim.Trace.by_category t c)
  in
  Alcotest.(check (list string)) "surviving a" [ "7"; "9" ] (det "a");
  Alcotest.(check (list string)) "surviving b" [ "8"; "10" ] (det "b");
  Alcotest.(check (list string))
    "window is the newest capacity records" [ "7"; "8"; "9"; "10" ]
    (List.map (fun r -> r.Sim.Trace.detail) (Sim.Trace.records t))

(* Structured fields default to -1 (absent) and round-trip when given. *)
let test_structured_fields () =
  let t = Sim.Trace.create () in
  Sim.Trace.set_enabled t true;
  emit t 1.0 "plain" "p";
  Sim.Trace.emit t ~time:2.0 ~node:3 ~cpu:1 ~tid:7 ~obj:42 ~span:9 ~parent:4
    ~category:"rich" ~detail:(lazy "r") ();
  match Sim.Trace.records t with
  | [ plain; rich ] ->
      Alcotest.(check (list int))
        "plain defaults" [ -1; -1; -1; -1; -1; -1 ]
        [
          plain.Sim.Trace.node; plain.Sim.Trace.cpu; plain.Sim.Trace.tid;
          plain.Sim.Trace.obj; plain.Sim.Trace.span; plain.Sim.Trace.parent;
        ];
      Alcotest.(check (list int))
        "rich round-trips" [ 3; 1; 7; 42; 9; 4 ]
        [
          rich.Sim.Trace.node; rich.Sim.Trace.cpu; rich.Sim.Trace.tid;
          rich.Sim.Trace.obj; rich.Sim.Trace.span; rich.Sim.Trace.parent;
        ]
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "lazy detail not forced when disabled" `Quick
      test_lazy_detail_not_forced_when_disabled;
    Alcotest.test_case "records kept in order" `Quick test_records_in_order;
    Alcotest.test_case "ring buffer wraps" `Quick test_ring_wraps;
    Alcotest.test_case "filter by category" `Quick test_by_category;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "dropped counter" `Quick test_dropped_counter;
    Alcotest.test_case "category filter after overflow" `Quick
      test_filter_after_overflow;
    Alcotest.test_case "structured fields" `Quick test_structured_fields;
  ]
