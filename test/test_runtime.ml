(* Runtime kernel plumbing: object creation, address-space integration,
   probes, the thread registry, failure reporting. *)

module A = Amber

let test_create_object_placement () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~size:100 ~name:"o" () in
      Alcotest.(check int) "on creating node" 0 (Util.location o);
      Alcotest.(check int) "home" 0 o.A.Aobject.home;
      Alcotest.(check bool) "heap address" true
        (Vaspace.Layout.is_heap_addr o.A.Aobject.addr);
      Alcotest.(check bool) "descriptor resident" true
        (A.Descriptor.is_resident (A.Runtime.descriptors rt 0) o.A.Aobject.addr))

let test_create_on_remote_node () =
  (* An object created by a thread running on node 2 lives on node 2 and
     its address comes from node 2's regions. *)
  Util.run (fun rt ->
      let anchor = A.Api.create rt ~name:"anchor" () in
      A.Api.move_to rt anchor ~dest:2;
      let t =
        A.Api.start_invoke rt anchor (fun () ->
            A.Api.create rt ~name:"remote-obj" ())
      in
      let o = A.Api.join rt t in
      Alcotest.(check int) "created on node 2" 2 (Util.location o);
      Alcotest.(check int) "home derivable from address" 2
        (A.Runtime.home_node rt ~addr:o.A.Aobject.addr))

let test_object_addresses_distinct () =
  Util.run (fun rt ->
      let objs = List.init 50 (fun i ->
          A.Api.create rt ~name:(string_of_int i) ())
      in
      let addrs = List.map (fun o -> o.A.Aobject.addr) objs in
      Alcotest.(check int) "all distinct" 50
        (List.length (List.sort_uniq compare addrs)))

let test_create_cost_scales_with_size () =
  Util.run (fun rt ->
      let t0 = A.Api.now rt in
      ignore (A.Api.create rt ~size:64 ~name:"small" ());
      let small = A.Api.now rt -. t0 in
      let t1 = A.Api.now rt in
      ignore (A.Api.create rt ~size:100000 ~name:"big" ());
      let big = A.Api.now rt -. t1 in
      Alcotest.(check bool) "bigger costs more" true (big > 2.0 *. small))

let test_probe_states () =
  Util.run (fun rt ->
      let o = A.Api.create rt ~name:"o" () in
      let addr = o.A.Aobject.addr in
      (match A.Runtime.probe rt ~node:0 ~addr with
      | `Resident -> ()
      | `Hop _ | `Replica _ -> Alcotest.fail "should be resident at home");
      (* Uninitialized elsewhere: falls back to the home node. *)
      (match A.Runtime.probe rt ~node:3 ~addr with
      | `Hop 0 -> ()
      | `Hop _ | `Resident | `Replica _ ->
        Alcotest.fail "uninit should point home");
      A.Api.move_to rt o ~dest:1;
      match A.Runtime.probe rt ~node:0 ~addr with
      | `Hop 1 -> ()
      | `Hop _ | `Resident | `Replica _ ->
        Alcotest.fail "source should forward")

let test_heap_growth_via_server () =
  (* Exhaust node 0's initial pool with large objects; the heap must grow
     through the address-space server without error. *)
  Util.run (fun rt ->
      let initial =
        (A.Runtime.config rt).A.Config.initial_regions_per_node
      in
      let objs =
        List.init ((initial * 2) + 1) (fun i ->
            A.Api.create rt ~size:(900 * 1024) ~name:(string_of_int i) ())
      in
      Alcotest.(check bool) "heap grew" true
        (Vaspace.Heap.grow_count (A.Runtime.heap rt 0) > initial);
      (* All home nodes still resolve to 0. *)
      List.iter
        (fun o ->
          Alcotest.(check int) "home" 0
            (A.Runtime.home_node rt ~addr:o.A.Aobject.addr))
        objs)

let test_counters_accumulate () =
  let c =
    Util.run (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        ignore (A.Api.locate rt o : int);
        A.Api.invoke rt o (fun () -> ());
        A.Runtime.counters rt)
  in
  Alcotest.(check int) "creates (incl. main bookkeeping)" 1
    c.A.Runtime.objects_created;
  Alcotest.(check int) "moves" 1 c.A.Runtime.object_moves;
  Alcotest.(check int) "locates" 1 c.A.Runtime.locates;
  Alcotest.(check bool) "migrations happened" true
    (c.A.Runtime.thread_migrations >= 1)

let test_cluster_failure_propagates () =
  let cfg = A.Config.make ~nodes:2 ~cpus:1 () in
  Alcotest.check_raises "failure surfaces" (Failure "main exploded") (fun () ->
      ignore (A.Cluster.run_value cfg (fun _rt -> failwith "main exploded")))

let test_cluster_deadlock_detected () =
  let cfg = A.Config.make ~nodes:1 ~cpus:1 () in
  Alcotest.check_raises "deadlock" A.Cluster.Deadlock (fun () ->
      ignore
        (A.Cluster.run_value cfg (fun _rt ->
             Sim.Fiber.block (fun _never_woken -> ()))))

let test_cluster_report () =
  let _, report =
    Util.run_report ~nodes:2 ~cpus:2 (fun rt ->
        let o = A.Api.create rt ~name:"o" () in
        A.Api.move_to rt o ~dest:1;
        A.Api.invoke rt o (fun () -> Sim.Fiber.consume 10e-3))
  in
  Alcotest.(check bool) "elapsed positive" true (report.A.Cluster.elapsed > 0.0);
  Alcotest.(check bool) "events counted" true (report.A.Cluster.events > 0);
  Alcotest.(check int) "two nodes of cpu stats" 2
    (Array.length report.A.Cluster.cpu_busy);
  Alcotest.(check bool) "network used" true (report.A.Cluster.packets > 0)

let test_worker_failure_detected_after_run () =
  let cfg = A.Config.make ~nodes:1 ~cpus:2 () in
  Alcotest.check_raises "worker failure surfaces" (Failure "worker boom")
    (fun () ->
      ignore
        (A.Cluster.run_value cfg (fun rt ->
             (* Fire-and-forget thread that dies after main finishes. *)
             ignore
               (A.Api.start rt (fun () ->
                    Sim.Fiber.consume 50e-3;
                    failwith "worker boom")))))

let suite =
  [
    Alcotest.test_case "object creation and placement" `Quick
      test_create_object_placement;
    Alcotest.test_case "creation on a remote node" `Quick
      test_create_on_remote_node;
    Alcotest.test_case "addresses distinct" `Quick test_object_addresses_distinct;
    Alcotest.test_case "creation cost scales with size" `Quick
      test_create_cost_scales_with_size;
    Alcotest.test_case "descriptor probes" `Quick test_probe_states;
    Alcotest.test_case "heap growth via the space server" `Quick
      test_heap_growth_via_server;
    Alcotest.test_case "counters accumulate" `Quick test_counters_accumulate;
    Alcotest.test_case "main failure propagates" `Quick
      test_cluster_failure_propagates;
    Alcotest.test_case "deadlock detected" `Quick test_cluster_deadlock_detected;
    Alcotest.test_case "run report populated" `Quick test_cluster_report;
    Alcotest.test_case "worker failure detected" `Quick
      test_worker_failure_detected_after_run;
  ]
