(* Runtime-replaceable scheduling (paper §2.1): Scheduler.install swaps
   the discipline mid-run and migrates already-queued threads into it. *)

module A = Amber

let spawn rt log name priority =
  A.Athread.start rt ~name ~priority (fun () -> log := name :: !log)

let test_fifo_baseline_order () =
  Util.run ~nodes:1 ~cpus:1 (fun rt ->
      let log = ref [] in
      (* Main holds the single CPU, so the threads queue in start order.
         (let-sequenced: list elements evaluate right-to-left). *)
      let a = spawn rt log "a" 1 in
      let b = spawn rt log "b" 3 in
      let c = spawn rt log "c" 2 in
      let ts = [ a; b; c ] in
      List.iter (fun t -> A.Athread.join rt t) ts;
      Alcotest.(check (list string))
        "fifo ignores priority" [ "a"; "b"; "c" ] (List.rev !log))

let test_install_priority_mid_run () =
  Util.run ~nodes:1 ~cpus:1 (fun rt ->
      let log = ref [] in
      (* Queue four threads under the default FIFO discipline... *)
      let a = spawn rt log "a" 1 in
      let b = spawn rt log "b" 3 in
      let c = spawn rt log "c" 2 in
      let d = spawn rt log "d" 3 in
      let ts = [ a; b; c; d ] in
      Alcotest.(check string) "fifo initially" "fifo"
        (A.Scheduler.current rt ~node:0);
      (* ...then replace the scheduler while they are still queued. *)
      A.Scheduler.install rt ~node:0 A.Scheduler.Priority;
      Alcotest.(check string) "priority installed" "priority"
        (A.Scheduler.current rt ~node:0);
      List.iter (fun t -> A.Athread.join rt t) ts;
      (* The queued threads were migrated into the new discipline: highest
         priority first, FIFO among equals — and none were lost. *)
      Alcotest.(check (list string))
        "priority order, nobody lost" [ "b"; "d"; "c"; "a" ] (List.rev !log))

let suite =
  [
    Alcotest.test_case "fifo baseline order" `Quick test_fifo_baseline_order;
    Alcotest.test_case "install priority mid-run reorders the queue" `Quick
      test_install_priority_mid_run;
  ]
