(* Amber-LB: load telemetry, thread stealing, adaptive placement. *)

module A = Amber
module B = Balance

let hybrid_cfg =
  {
    B.Driver.default_cfg with
    B.Driver.policy = B.Rebalancer.Hybrid;
    steal = true;
  }

(* The paper's Figure-3 grid: big enough that compute dominates, so
   concentrating every section on node 0 really does starve the run
   (at small sizes the sync costs dominate and skew is nearly free). *)
let sor_params = Workloads.Sor_core.with_size Workloads.Sor_core.default
    ~rows:61 ~cols:421

let skewed placement rt =
  let c = Workloads.Sor_amber.default_cfg rt in
  match placement with
  | `Skewed -> { c with Workloads.Sor_amber.placement = Some (fun _ -> 0) }
  | `Blocked -> c

(* One skewed-vs-balanced SOR measurement on a 4-node, 4-CPU cluster. *)
let sor_elapsed ~placement ~balance () =
  let cfg = A.Config.make ~nodes:4 ~cpus:4 () in
  let elapsed = ref 0.0 and log = ref [] and stolen = ref 0 in
  A.Cluster.run_value cfg (fun rt ->
      let lb =
        match balance with
        | Some bcfg -> Some (B.Driver.start rt bcfg)
        | None -> None
      in
      let r =
        Workloads.Sor_amber.run rt sor_params ~cfg:(skewed placement rt)
          ~iters:30 ()
      in
      (match lb with
      | Some lb ->
        log := B.Driver.move_log lb;
        B.Driver.stop lb
      | None -> ());
      stolen := (A.Runtime.counters rt).A.Runtime.threads_stolen;
      elapsed := r.Workloads.Sor_amber.compute_elapsed);
  (!elapsed, !log, !stolen)

(* The acceptance bar: hybrid balancing + stealing on a fully skewed SOR
   (every object created on node 0) must recover at least 70% of the
   virtual-time gap between the skewed run and the hand-balanced blocked
   placement. *)
let test_skewed_sor_recovery () =
  let skew, _, _ = sor_elapsed ~placement:`Skewed ~balance:None () in
  let blocked, _, _ = sor_elapsed ~placement:`Blocked ~balance:None () in
  let balanced, moves, _ =
    sor_elapsed ~placement:`Skewed ~balance:(Some hybrid_cfg) ()
  in
  Alcotest.(check bool) "skew actually hurts" true (skew > blocked *. 1.5);
  Alcotest.(check bool) "balancer moved objects" true (List.length moves > 0);
  let recovery = (skew -. balanced) /. (skew -. blocked) in
  if recovery < 0.7 then
    Alcotest.failf
      "recovered only %.0f%% of the skew penalty (skew %.4fs, balanced \
       %.4fs, blocked %.4fs)"
      (100.0 *. recovery) skew balanced blocked

(* The rebalancer must never act on the same object twice within one
   hysteresis window. *)
let test_hysteresis_respected () =
  let _, moves, _ = sor_elapsed ~placement:`Skewed ~balance:(Some hybrid_cfg) () in
  let hyst = hybrid_cfg.B.Driver.rebalance.B.Rebalancer.hysteresis in
  let last = Hashtbl.create 16 in
  List.iter
    (fun (m : B.Rebalancer.move) ->
      (match Hashtbl.find_opt last m.B.Rebalancer.addr with
      | Some prev ->
        if m.B.Rebalancer.at -. prev < hyst -. 1e-9 then
          Alcotest.failf
            "object 0x%x moved twice within one hysteresis window (%.4fs \
             after %.4fs, window %.4fs)"
            m.B.Rebalancer.addr m.B.Rebalancer.at prev hyst
      | None -> ());
      Hashtbl.replace last m.B.Rebalancer.addr m.B.Rebalancer.at)
    moves

let test_steal_moves_a_queued_thread () =
  Util.run ~nodes:2 ~cpus:1 (fun rt ->
      (* Main occupies node 0's only CPU; the started threads queue there
         unbound while node 1 sits idle. *)
      let ts =
        List.init 3 (fun i ->
            A.Athread.start rt
              ~name:(Printf.sprintf "w%d" i)
              (fun () ->
                Sim.Fiber.consume 1e-3;
                A.Runtime.current_node rt))
      in
      let rng = Sim.Rng.split (Sim.Engine.rng (A.Runtime.engine rt)) in
      let li = B.Loadinfo.create rt ~rng:(Sim.Rng.split rng) ~alpha:0.5 in
      let st = B.Stealer.create rt ~li ~rng ~min_victim_load:1.5 in
      Alcotest.(check bool) "grab takes a thread" true
        (B.Stealer.grab st ~victim:0 ~thief:1);
      let nodes = List.map (fun t -> A.Athread.join rt t) ts in
      Alcotest.(check int) "one thread stolen" 1
        (A.Runtime.counters rt).A.Runtime.threads_stolen;
      Alcotest.(check bool) "stolen thread ran on the thief" true
        (List.mem 1 nodes);
      (* The other two were never taken: they ran at home. *)
      Alcotest.(check int) "the rest ran at home" 2
        (List.length (List.filter (fun n -> n = 0) nodes)))

let test_steal_skips_bound_threads () =
  Util.run ~nodes:2 ~cpus:1 (fun rt ->
      (* A thread bound to an object (non-empty frame stack) must not be
         stolen: the residency check would bounce it straight back. *)
      let obj = A.Api.create rt ~name:"anchor" (ref 0) in
      let t =
        A.Api.start_invoke rt obj (fun c ->
            Sim.Fiber.consume 1e-3;
            incr c;
            A.Runtime.current_node rt)
      in
      (* Let the bound thread enter the invocation, then preempt it into
         the ready queue where the stealer can see it. *)
      Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 0.2e-3;
      (* Spare the main thread: it is executing this very test and must
         not end up (unbound!) in the ready queue the stealer scans. *)
      ignore
        (Hw.Machine.preempt_all
           ~except:(Hw.Machine.self_exn ())
           (A.Runtime.machine rt 0)
          : int);
      let rng = Sim.Rng.split (Sim.Engine.rng (A.Runtime.engine rt)) in
      let li = B.Loadinfo.create rt ~rng:(Sim.Rng.split rng) ~alpha:0.5 in
      let st = B.Stealer.create rt ~li ~rng ~min_victim_load:1.5 in
      Alcotest.(check bool) "bound thread not stealable" false
        (B.Stealer.grab st ~victim:0 ~thief:1);
      Alcotest.(check int) "ran at home" 0 (A.Api.join rt t))

let test_gossip_spreads_load_boards () =
  let cfg = A.Config.make ~nodes:4 ~cpus:2 () in
  A.Cluster.run_value cfg (fun rt ->
      let lb =
        B.Driver.start rt
          { B.Driver.default_cfg with B.Driver.policy = B.Rebalancer.Steal_only }
      in
      (* Keep node 0 loaded while gossip rounds run. *)
      let ts =
        List.init 6 (fun i ->
            A.Athread.start rt ~name:(Printf.sprintf "w%d" i) (fun () ->
                Sim.Fiber.consume 60e-3))
      in
      Topaz.Kthread.sleep ~engine:(A.Runtime.engine rt) 50e-3;
      let li = Option.get (B.Driver.loadinfo lb) in
      (* Some remote node has heard (through gossip alone) that node 0 is
         busy. *)
      let heard = ref false in
      for viewer = 1 to 3 do
        let e = (B.Loadinfo.board li ~viewer).(0) in
        if e.B.Loadinfo.stamp > 0.0 then heard := true
      done;
      Alcotest.(check bool) "peers heard about node 0" true !heard;
      List.iter (fun t -> A.Athread.join rt t) ts;
      B.Driver.stop lb;
      Alcotest.(check bool) "gossip rounds counted" true
        ((A.Runtime.counters rt).A.Runtime.gossip_rounds > 0))

(* With balancing off the subsystem must be invisible: same RNG stream,
   same events, byte-identical report. *)
let test_off_is_byte_identical () =
  let report with_driver =
    let cfg = A.Config.make ~nodes:3 ~cpus:2 () in
    let text = ref "" in
    A.Cluster.run_value cfg (fun rt ->
        let lb =
          if with_driver then Some (B.Driver.start rt B.Driver.default_cfg)
          else None
        in
        ignore
          (Workloads.Sor_amber.run rt
             (Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16
                ~cols:32)
             ~iters:3 ()
            : Workloads.Sor_amber.result);
        (match lb with Some lb -> B.Driver.stop lb | None -> ());
        text :=
          Format.asprintf "%a" A.Stats_report.pp (A.Stats_report.capture rt));
    !text
  in
  Alcotest.(check string)
    "inert driver leaves the report untouched" (report false) (report true)

let suite =
  [
    Alcotest.test_case "skewed sor: hybrid + steal recovers >= 70%" `Quick
      test_skewed_sor_recovery;
    Alcotest.test_case "hysteresis: one action per object per window" `Quick
      test_hysteresis_respected;
    Alcotest.test_case "steal moves a queued unbound thread" `Quick
      test_steal_moves_a_queued_thread;
    Alcotest.test_case "steal skips bound threads" `Quick
      test_steal_skips_bound_threads;
    Alcotest.test_case "gossip spreads load boards" `Quick
      test_gossip_spreads_load_boards;
    Alcotest.test_case "balance off is byte-identical" `Quick
      test_off_is_byte_identical;
  ]
