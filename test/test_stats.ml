(* Stats accumulators against closed-form oracles. *)

let feq = Alcotest.(check (float 1e-9))

let test_summary_basic () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Sim.Stats.Summary.count s);
  feq "mean" 2.5 (Sim.Stats.Summary.mean s);
  feq "variance" 1.25 (Sim.Stats.Summary.variance s);
  feq "min" 1.0 (Sim.Stats.Summary.min s);
  feq "max" 4.0 (Sim.Stats.Summary.max s);
  feq "total" 10.0 (Sim.Stats.Summary.total s)

let test_summary_single () =
  let s = Sim.Stats.Summary.create () in
  Sim.Stats.Summary.add s 7.0;
  feq "mean" 7.0 (Sim.Stats.Summary.mean s);
  feq "variance is 0" 0.0 (Sim.Stats.Summary.variance s)

let test_percentiles () =
  let s = Sim.Stats.Summary.create () in
  for i = 1 to 100 do
    Sim.Stats.Summary.add s (float_of_int i)
  done;
  feq "p50" 50.0 (Sim.Stats.Summary.percentile s 50.0);
  feq "p100" 100.0 (Sim.Stats.Summary.percentile s 100.0);
  feq "p1" 1.0 (Sim.Stats.Summary.percentile s 1.0)

let test_percentile_interleaved_with_add () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 5.0; 1.0 ];
  feq "p100 before" 5.0 (Sim.Stats.Summary.percentile s 100.0);
  Sim.Stats.Summary.add s 9.0;
  feq "p100 after" 9.0 (Sim.Stats.Summary.percentile s 100.0)

let test_percentile_empty_raises () =
  let s = Sim.Stats.Summary.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Summary.percentile: empty")
    (fun () -> ignore (Sim.Stats.Summary.percentile s 50.0))

let prop_mean_matches_naive =
  QCheck.Test.make ~name:"streaming mean equals naive mean" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_inclusive 1e6))
    (fun xs ->
      let s = Sim.Stats.Summary.create () in
      List.iter (Sim.Stats.Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Sim.Stats.Summary.mean s -. naive)
      <= 1e-6 *. (1.0 +. Float.abs naive))

(* Reservoir regression: the percentile sample set must stay bounded no
   matter how many values stream in, while count/mean/min/max remain
   exact. *)
let test_reservoir_bounded () =
  let cap = 128 in
  let s = Sim.Stats.Summary.create ~reservoir:cap () in
  for i = 1 to 100_000 do
    Sim.Stats.Summary.add s (float_of_int i)
  done;
  Alcotest.(check int) "capacity" cap (Sim.Stats.Summary.capacity s);
  Alcotest.(check bool) "retained bounded" true
    (Sim.Stats.Summary.retained s <= cap);
  Alcotest.(check int) "exact count" 100_000 (Sim.Stats.Summary.count s);
  feq "exact mean" 50000.5 (Sim.Stats.Summary.mean s);
  feq "exact min" 1.0 (Sim.Stats.Summary.min s);
  feq "exact max" 100000.0 (Sim.Stats.Summary.max s);
  (* Sampled percentiles stay plausible: the p50 of 1..100k drawn from a
     uniform reservoir of 128 lies well inside the central half. *)
  let p50 = Sim.Stats.Summary.percentile s 50.0 in
  Alcotest.(check bool) "sampled p50 sane" true (p50 > 25_000.0 && p50 < 75_000.0)

let test_reservoir_exact_until_full () =
  let s = Sim.Stats.Summary.create ~reservoir:64 () in
  for i = 64 downto 1 do
    Sim.Stats.Summary.add s (float_of_int i)
  done;
  Alcotest.(check int) "all retained" 64 (Sim.Stats.Summary.retained s);
  feq "exact p50 while not overflowing" 32.0
    (Sim.Stats.Summary.percentile s 50.0);
  feq "exact p100" 64.0 (Sim.Stats.Summary.percentile s 100.0)

(* The eviction stream is a private splitmix64 sequence: identical add
   sequences give identical reservoirs (and draw nothing from any global
   RNG). *)
let test_reservoir_deterministic () =
  let run () =
    let s = Sim.Stats.Summary.create ~reservoir:32 () in
    for i = 1 to 10_000 do
      Sim.Stats.Summary.add s (float_of_int ((i * 7919) mod 10_007))
    done;
    List.map
      (fun q -> Sim.Stats.Summary.percentile s q)
      [ 1.0; 25.0; 50.0; 75.0; 99.0 ]
  in
  let a = run () and b = run () in
  Alcotest.(check (list (float 0.0))) "identical percentiles" a b

let test_reservoir_bad_arg () =
  Alcotest.check_raises "reservoir" (Invalid_argument "Summary.create: reservoir")
    (fun () -> ignore (Sim.Stats.Summary.create ~reservoir:0 ()))

let test_histogram_buckets () =
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Sim.Stats.Histogram.add h) [ 0.5; 1.0; 3.0; 9.9; -1.0; 10.0 ];
  Alcotest.(check int) "count" 6 (Sim.Stats.Histogram.count h);
  Alcotest.(check int) "under" 1 (Sim.Stats.Histogram.underflow h);
  Alcotest.(check int) "over" 1 (Sim.Stats.Histogram.overflow h);
  Alcotest.(check (array int)) "buckets" [| 2; 1; 0; 0; 1 |]
    (Sim.Stats.Histogram.bucket_counts h)

let test_histogram_bounds () =
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  let lo, hi = Sim.Stats.Histogram.bucket_bounds h 2 in
  feq "lo" 4.0 lo;
  feq "hi" 6.0 hi

let test_histogram_bad_args () =
  Alcotest.check_raises "buckets" (Invalid_argument "Histogram.create: buckets")
    (fun () ->
      ignore (Sim.Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:0))

(* --- log-bucketed histogram ---------------------------------------------- *)

module L = Sim.Stats.Log_histogram

let test_log_histogram_basics () =
  let h = L.create () in
  List.iter (L.add h) [ 1e-3; 2e-3; 4e-3; 8e-3 ];
  Alcotest.(check int) "count" 4 (L.count h);
  feq "total" 15e-3 (L.total h);
  feq "mean" 3.75e-3 (L.mean h);
  feq "min" 1e-3 (L.min h);
  feq "max" 8e-3 (L.max h);
  Alcotest.(check int) "no underflow" 0 (L.underflow h);
  Alcotest.(check int) "no overflow" 0 (L.overflow h)

(* Bucket boundaries are authoritative: for any bucket i, values at
   [blo], just below [bhi], and the geometric midpoint all index back
   to i — including exact boundary values, where naive float log/exp
   rounding is most likely to be off by one. *)
let test_log_bucket_boundaries () =
  let h = L.create ~lo:1e-6 ~growth:1.05 ~buckets:400 () in
  List.iter
    (fun i ->
      let blo, bhi = L.bucket_bounds h i in
      Alcotest.(check int)
        (Printf.sprintf "bucket %d lower bound" i)
        i (L.bucket_index h blo);
      Alcotest.(check int)
        (Printf.sprintf "bucket %d upper bound opens %d" i (i + 1))
        (i + 1)
        (L.bucket_index h bhi);
      let mid = Float.sqrt (blo *. bhi) in
      Alcotest.(check int)
        (Printf.sprintf "bucket %d midpoint" i)
        i (L.bucket_index h mid))
    [ 0; 1; 17; 100; 255; 399 ];
  (* Out-of-range values land in the sentinel pseudo-buckets. *)
  Alcotest.(check int) "underflow index" (-1) (L.bucket_index h 0.5e-6);
  let top = snd (L.bucket_bounds h 399) in
  Alcotest.(check int) "overflow index" 400 (L.bucket_index h (top *. 2.0))

let test_log_percentiles () =
  let h = L.create ~lo:1e-6 ~growth:1.05 ~buckets:640 () in
  for i = 1 to 1000 do
    L.add h (float_of_int i *. 1e-3)
  done;
  (* Nearest-rank within a 5%-wide bucket, clamped to observed bounds. *)
  let near name want got =
    if Float.abs (got -. want) > 0.05 *. want then
      Alcotest.failf "%s: wanted ~%g, got %g" name want got
  in
  near "p50" 0.5 (L.percentile h 50.0);
  near "p99" 0.99 (L.percentile h 99.0);
  feq "p0 is exact min" 1e-3 (L.percentile h 0.0);
  feq "p100 is exact max" 1.0 (L.percentile h 100.0);
  (* A single sample reports exactly, any percentile. *)
  let one = L.create () in
  L.add one 42.0;
  feq "single p50" 42.0 (L.percentile one 50.0);
  feq "single p99" 42.0 (L.percentile one 99.0)

let test_log_merge_and_clear () =
  let a = L.create () and b = L.create () in
  List.iter (L.add a) [ 1.0; 2.0 ];
  List.iter (L.add b) [ 3.0; 4.0 ];
  L.merge a b;
  Alcotest.(check int) "merged count" 4 (L.count a);
  feq "merged max" 4.0 (L.max a);
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Log_histogram.merge: geometry mismatch") (fun () ->
      L.merge a (L.create ~lo:1e-3 ()));
  L.clear a;
  Alcotest.(check int) "cleared" 0 (L.count a)

let test_log_bad_args () =
  List.iter
    (fun (msg, f) -> Alcotest.check_raises "create" (Invalid_argument msg) f)
    [
      ("Log_histogram.create: lo", fun () -> ignore (L.create ~lo:0.0 ()));
      ("Log_histogram.create: growth", fun () -> ignore (L.create ~growth:1.0 ()));
      ("Log_histogram.create: buckets", fun () -> ignore (L.create ~buckets:0 ()));
    ]

let suite =
  [
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "single sample" `Quick test_summary_single;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile after more adds" `Quick
      test_percentile_interleaved_with_add;
    Alcotest.test_case "empty percentile raises" `Quick
      test_percentile_empty_raises;
    QCheck_alcotest.to_alcotest prop_mean_matches_naive;
    Alcotest.test_case "reservoir stays bounded" `Quick test_reservoir_bounded;
    Alcotest.test_case "reservoir exact until full" `Quick
      test_reservoir_exact_until_full;
    Alcotest.test_case "reservoir deterministic" `Quick
      test_reservoir_deterministic;
    Alcotest.test_case "reservoir bad arg" `Quick test_reservoir_bad_arg;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram bucket bounds" `Quick test_histogram_bounds;
    Alcotest.test_case "histogram bad args" `Quick test_histogram_bad_args;
    Alcotest.test_case "log histogram basics" `Quick test_log_histogram_basics;
    Alcotest.test_case "log histogram bucket boundaries" `Quick
      test_log_bucket_boundaries;
    Alcotest.test_case "log histogram percentiles" `Quick test_log_percentiles;
    Alcotest.test_case "log histogram merge and clear" `Quick
      test_log_merge_and_clear;
    Alcotest.test_case "log histogram bad args" `Quick test_log_bad_args;
  ]
