let () =
  Alcotest.run "amber"
    [
      ("sim.event_queue", Test_event_queue.suite);
      ("sim.engine", Test_engine.suite);
      ("sim.rng", Test_rng.suite);
      ("sim.stats", Test_stats.suite);
      ("sim.trace", Test_trace.suite);
      ("sim.fiber", Test_fiber.suite);
      ("hw.sched_policy", Test_sched_policy.suite);
      ("hw.machine", Test_machine.suite);
      ("hw.ethernet", Test_ethernet.suite);
      ("hw.extra", Test_hw_extra.suite);
      ("topaz.vm", Test_vm.suite);
      ("topaz.rpc", Test_rpc.suite);
      ("topaz.misc", Test_topaz_misc.suite);
      ("vaspace", Test_vaspace.suite);
      ("vaspace.heap", Test_heap.suite);
      ("amber.descriptor", Test_descriptor.suite);
      ("amber.aobject", Test_aobject.suite);
      ("amber.runtime", Test_runtime.suite);
      ("amber.invoke", Test_invoke.suite);
      ("amber.mobility", Test_mobility.suite);
      ("amber.sync", Test_sync.suite);
      ("amber.athread", Test_athread.suite);
      ("amber.table1", Test_table1.suite);
      ("amber.placement", Test_placement.suite);
      ("amber.darray", Test_darray.suite);
      ("amber.audit", Test_audit.suite);
      ("amber.stats_report", Test_stats_report.suite);
      ("amber.config", Test_config.suite);
      ("amber.stress", Test_stress.suite);
      ("amber.faults", Test_faults.suite);
      ("ivy", Test_ivy.suite);
      ("ivy.extra", Test_ivy_extra.suite);
      ("workloads", Test_workloads.suite);
      ("workloads.tsp", Test_tsp.suite);
    ]
