(* Seed-sweep determinism: the simulation is a pure function of its
   configuration.  Run the same scenario twice per seed and require the
   full stats report — counters, latencies, per-node utilization, fault
   recovery — to hash identically.  Covers the racy counter fixture
   (contended invocations, lost-update interleavings) and the
   read-mostly workload with replication under packet loss (replica
   installs, invalidation rounds, retransmits). *)

module A = Amber

let faults =
  {
    Hw.Ethernet.drop_prob = 0.02;
    dup_prob = 0.01;
    delay_prob = 0.0;
    delay_spike = 0.0;
    stalls = [];
  }

let report_digest cfg body =
  let text = ref "" in
  A.Cluster.run_value cfg (fun rt ->
      body rt;
      text :=
        Format.asprintf "%a" A.Stats_report.pp (A.Stats_report.capture rt));
  Digest.string !text

let racy_fixture_digest seed =
  let cfg = A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed) () in
  report_digest cfg (fun rt ->
      ignore
        (Workloads.Fixtures.racy_counter rt ~threads:4 ~increments:10
          : Workloads.Fixtures.result))

let read_mostly_digest seed =
  let cfg =
    A.Config.make ~nodes:3 ~cpus:2 ~seed:(Int64.of_int seed) ~faults ()
  in
  report_digest cfg (fun rt ->
      ignore
        (Workloads.Read_mostly.run rt
           {
             Workloads.Read_mostly.objects = 3;
             readers_per_node = 2;
             reads_per_reader = 12;
             write_every = 6;
             replicate = true;
           }
          : Workloads.Read_mostly.result))

let balanced_sor_digest seed =
  let cfg = A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed) () in
  report_digest cfg (fun rt ->
      let p =
        Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16
          ~cols:64
      in
      let c =
        {
          (Workloads.Sor_amber.default_cfg rt) with
          Workloads.Sor_amber.placement = Some (fun _ -> 0);
        }
      in
      let lb =
        Balance.Driver.start rt
          {
            Balance.Driver.default_cfg with
            Balance.Driver.policy = Balance.Rebalancer.Hybrid;
            steal = true;
          }
      in
      ignore
        (Workloads.Sor_amber.run rt p ~cfg:c ~iters:4 ()
          : Workloads.Sor_amber.result);
      Balance.Driver.stop lb)

(* Pipelined SOR exercises the whole async stack — helper threads,
   future-notify datagrams, pipelined barriers — under packet loss with
   coalescing framing on top.  Both layers are driven purely by the
   seeded event clock, so the digest must reproduce per seed. *)
let async_sor_digest seed =
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed) ~faults
      ~coalesce:Topaz.Rpc.default_coalesce ()
  in
  report_digest cfg (fun rt ->
      let p =
        Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16
          ~cols:64
      in
      ignore (Workloads.Sor_pipe.run rt p ~iters:4 () : Workloads.Sor_pipe.result))

let sweep name digest_of =
  List.iter
    (fun seed ->
      let a = digest_of seed and b = digest_of seed in
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d reproducible" name seed)
        (Digest.to_hex a) (Digest.to_hex b))
    [ 1; 7; 13; 42; 99; 123; 2026; 31337; 65537; 999983 ]

let test_racy_fixture_sweep () = sweep "racy fixture" racy_fixture_digest
let test_read_mostly_sweep () = sweep "read-mostly" read_mostly_digest

let test_balanced_sor_sweep () =
  sweep "skewed sor + hybrid balancing" balanced_sor_digest

let test_async_sor_sweep () =
  sweep "pipelined sor + faults + coalescing" async_sor_digest

(* A crashed run is still a pure function of its configuration: the
   transient outage, the fail-stop funeral, replica promotion and chain
   repair all ride the seeded event clock, so the full report — crash
   counters included — must hash identically run-to-run.  Probabilistic
   crash mode draws from its own split stream, covered by the same
   sweep. *)
let crashed_sor_digest seed =
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed)
      ~crashes:[ { A.Config.cnode = 3; at = 20e-3; restart = Some 60e-3 } ]
      ~crash_rate:0.3 ()
  in
  report_digest cfg (fun rt ->
      let p =
        Workloads.Sor_core.with_size Workloads.Sor_core.default ~rows:16
          ~cols:64
      in
      let c = Workloads.Sor_amber.default_cfg rt in
      ignore
        (Workloads.Sor_amber.run rt p ~cfg:c ~iters:4 ()
          : Workloads.Sor_amber.result))

let test_crashed_sor_sweep () = sweep "sor + crash injection" crashed_sor_digest

(* Everything at once: replicated serving with admission control under
   hybrid balancing plus a transient crash and probabilistic crash mode.
   The serving layer's only global-stream interaction is one split at
   [Serve.run] entry, and the serve report section rides the same
   deterministic accounting, so the full report (serve lines included)
   must hash identically run-to-run. *)
let served_digest seed =
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed)
      ~crashes:[ { A.Config.cnode = 3; at = 30e-3; restart = Some 80e-3 } ]
      ~crash_rate:0.3 ()
  in
  report_digest cfg (fun rt ->
      let lb =
        Balance.Driver.start rt
          {
            Balance.Driver.default_cfg with
            Balance.Driver.policy = Balance.Rebalancer.Hybrid;
            steal = true;
          }
      in
      ignore
        (Serve.run rt
           {
             Serve.default_cfg with
             Serve.arrival = Serve.Trafficgen.Poisson 250.0;
             duration = 0.15;
             keys = 16;
             replicate = true;
             admission = Some Serve.default_admission;
           }
          : Serve.result);
      Balance.Driver.stop lb)

let test_served_sweep () =
  sweep "serving + admission + balancing + crashes" served_digest

(* With the watch tick armed, the sampled series become part of the
   deterministic surface: every point of every series (the JSONL dump
   renders timestamps and values in full) plus the report — watch
   section included — must hash identically run-to-run, crash
   injection and all. *)
let watched_serve_digest seed =
  let cfg =
    A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed)
      ~crashes:[ { A.Config.cnode = 3; at = 30e-3; restart = Some 80e-3 } ]
      ~crash_rate:0.3 ()
  in
  let buf = Buffer.create 65536 in
  A.Cluster.run_value cfg (fun rt ->
      let w =
        Watch.attach rt
          ~cfg:{ Watch.default_cfg with Watch.interval = 2e-3 }
          ()
      in
      ignore
        (Serve.run rt
           {
             Serve.default_cfg with
             Serve.arrival = Serve.Trafficgen.Poisson 250.0;
             duration = 0.15;
             keys = 16;
             admission = Some Serve.default_admission;
           }
          : Serve.result);
      Watch.stop w;
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        (Scope.Export.series_jsonl (Watch.series w));
      Buffer.add_string buf
        (Format.asprintf "%a" A.Stats_report.pp (A.Stats_report.capture rt)));
  Digest.string (Buffer.contents buf)

let test_watched_serve_sweep () =
  sweep "watched serving + crashes" watched_serve_digest

(* With profiling on, the span forest itself is part of the deterministic
   surface: ids, parents, kinds, attribution and timestamps must all
   reproduce run-to-run. *)
let span_digest seed =
  let cfg = A.Config.make ~nodes:4 ~cpus:2 ~seed:(Int64.of_int seed) () in
  let buf = Buffer.create 4096 in
  A.Cluster.run_value cfg (fun rt ->
      Sim.Span.set_enabled (A.Runtime.spans rt) true;
      ignore
        (Workloads.Fixtures.racy_counter rt ~threads:4 ~increments:10
          : Workloads.Fixtures.result);
      List.iter
        (fun (s : Sim.Span.span) ->
          Buffer.add_string buf
            (Printf.sprintf "%d %d %b %s %s %d %d %d %d %.9f %.9f\n" s.id
               s.parent s.async (Sim.Span.kind_name s.kind) s.label s.node
               s.tid s.obj s.arg s.t0 s.t1))
        (Sim.Span.spans (A.Runtime.spans rt)));
  Digest.string (Buffer.contents buf)

let test_span_sweep () = sweep "span trace" span_digest

(* Profiling must not perturb the simulation: the base report of a
   profiled run is byte-identical to an unprofiled one (the profiler only
   adds its own "profile" section to [extra], stripped here). *)
let base_report ~profile seed =
  let cfg =
    A.Config.make ~nodes:3 ~cpus:2 ~seed:(Int64.of_int seed) ~faults ()
  in
  let text = ref "" in
  A.Cluster.run_value cfg (fun rt ->
      if profile then ignore (Scope.Profile.attach rt : Scope.Profile.t);
      ignore
        (Workloads.Read_mostly.run rt
           {
             Workloads.Read_mostly.objects = 3;
             readers_per_node = 2;
             reads_per_reader = 12;
             write_every = 6;
             replicate = true;
           }
          : Workloads.Read_mostly.result);
      let r = A.Stats_report.capture rt in
      let r = { r with A.Stats_report.extra = [] } in
      text := Format.asprintf "%a" A.Stats_report.pp r);
  !text

let test_profiling_transparent () =
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d base report unchanged by profiling" seed)
        (base_report ~profile:false seed)
        (base_report ~profile:true seed))
    [ 7; 42; 31337 ]

let suite =
  [
    Alcotest.test_case "racy fixture reports reproducible over 10 seeds"
      `Quick test_racy_fixture_sweep;
    Alcotest.test_case
      "read-mostly + faults reports reproducible over 10 seeds" `Quick
      test_read_mostly_sweep;
    Alcotest.test_case
      "skewed sor under hybrid balancing reproducible over 10 seeds" `Quick
      test_balanced_sor_sweep;
    Alcotest.test_case
      "pipelined sor + faults + coalescing reproducible over 10 seeds" `Quick
      test_async_sor_sweep;
    Alcotest.test_case "sor + crash injection reproducible over 10 seeds"
      `Quick test_crashed_sor_sweep;
    Alcotest.test_case
      "serving + admission + balancing + crashes reproducible over 10 seeds"
      `Quick test_served_sweep;
    Alcotest.test_case
      "watched serving + crashes series reproducible over 10 seeds" `Quick
      test_watched_serve_sweep;
    Alcotest.test_case "span traces reproducible over 10 seeds" `Quick
      test_span_sweep;
    Alcotest.test_case "profiling leaves the base report byte-identical"
      `Quick test_profiling_transparent;
  ]
