(* Seeded open-loop traffic generation.

   Everything here is a pure function of the [Sim.Rng.t] it is handed:
   no virtual time, no engine events.  The serving driver materializes
   the whole arrival schedule up front (request counts are bounded by
   rate x duration, small at simulation scale), then replays it against
   the cluster clock — which keeps the generator trivially
   bit-reproducible and lets tests study the distributions without
   running a cluster at all. *)

type cls = Read | Write | Compute

let cls_name = function Read -> "read" | Write -> "write" | Compute -> "compute"
let all_classes = [ Read; Write; Compute ]

type mix = { read : float; write : float; compute : float }

let default_mix = { read = 0.7; write = 0.2; compute = 0.1 }

let weight mix = function
  | Read -> mix.read
  | Write -> mix.write
  | Compute -> mix.compute

let normalize mix =
  let s = mix.read +. mix.write +. mix.compute in
  if s <= 0.0 then invalid_arg "Trafficgen: class mix must have positive mass";
  { read = mix.read /. s; write = mix.write /. s; compute = mix.compute /. s }

type arrival =
  | Poisson of float  (* mean arrival rate, requests per virtual second *)
  | Bursty of {
      rate : float;  (* base (off-phase) rate *)
      factor : float;  (* on-phase multiplier, > 1 *)
      on_mean : float;  (* mean on-phase length, seconds *)
      off_mean : float;  (* mean off-phase length, seconds *)
    }

(* Long-run mean rate of an arrival process (used to derive default
   admission rates and to sanity-check empirical means in tests). *)
let mean_rate = function
  | Poisson r -> r
  | Bursty { rate; factor; on_mean; off_mean } ->
      rate *. ((factor *. on_mean) +. off_mean) /. (on_mean +. off_mean)

type request = { at : float; cls : cls; key : int }

(* Zipf(s) over [0, n): P(k) proportional to 1/(k+1)^s, sampled by binary
   search over the precomputed CDF.  s = 0 degenerates to uniform. *)
type zipf = { cdf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Trafficgen.zipf: n must be positive";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { cdf }

let zipf_sample z rng =
  let u = Sim.Rng.float rng in
  let n = Array.length z.cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let pick_class mix rng =
  let u = Sim.Rng.float rng in
  if u < mix.read then Read
  else if u < mix.read +. mix.write then Write
  else Compute

let validate_arrival = function
  | Poisson r ->
      if r <= 0.0 then invalid_arg "Trafficgen: rate must be positive"
  | Bursty { rate; factor; on_mean; off_mean } ->
      if rate <= 0.0 then invalid_arg "Trafficgen: rate must be positive";
      if factor < 1.0 then invalid_arg "Trafficgen: burst factor must be >= 1";
      if on_mean <= 0.0 || off_mean <= 0.0 then
        invalid_arg "Trafficgen: burst phase means must be positive"

(* Arrivals over [0, duration), in order.  Per request the draw sequence
   is fixed — inter-arrival gap, class, key — so the stream is a pure
   function of the rng.  The bursty process is Markov-modulated Poisson:
   exponential on/off phases starting in the on phase; exponential
   memorylessness makes redrawing the gap at each phase boundary exact,
   not an approximation. *)
let generate ~rng ~arrival ~mix ~keys ~skew ~duration =
  validate_arrival arrival;
  if keys <= 0 then invalid_arg "Trafficgen: keys must be positive";
  if duration <= 0.0 then invalid_arg "Trafficgen: duration must be positive";
  if skew < 0.0 then invalid_arg "Trafficgen: skew must be non-negative";
  let mix = normalize mix in
  let z = zipf ~n:keys ~s:skew in
  let out = ref [] in
  let emit at =
    let cls = pick_class mix rng in
    let key = zipf_sample z rng in
    out := { at; cls; key } :: !out
  in
  (match arrival with
  | Poisson rate ->
      let mean = 1.0 /. rate in
      let t = ref (Sim.Rng.exponential rng ~mean) in
      while !t < duration do
        emit !t;
        t := !t +. Sim.Rng.exponential rng ~mean
      done
  | Bursty { rate; factor; on_mean; off_mean } ->
      let t = ref 0.0 in
      let on = ref true in
      let phase_end = ref (Sim.Rng.exponential rng ~mean:on_mean) in
      while !t < duration do
        let r = if !on then rate *. factor else rate in
        let gap = Sim.Rng.exponential rng ~mean:(1.0 /. r) in
        if !t +. gap >= !phase_end then begin
          t := !phase_end;
          on := not !on;
          phase_end :=
            !t
            +. Sim.Rng.exponential rng
                 ~mean:(if !on then on_mean else off_mean)
        end
        else begin
          t := !t +. gap;
          if !t < duration then emit !t
        end
      done);
  List.rev !out

(* Canonical one-line-per-request rendering, for determinism digests. *)
let to_string reqs =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%.9f %s %d\n" r.at (cls_name r.cls) r.key))
    reqs;
  Buffer.contents b
