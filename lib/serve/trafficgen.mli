(** Seeded open-loop traffic generation: Poisson and bursty (on/off
    Markov-modulated) arrival processes over a Zipf-skewed keyspace with
    a mixed read/write/compute class distribution.

    Pure with respect to the simulation: generation touches only the
    [Sim.Rng.t] it is handed — no virtual time, no events — so arrival
    schedules are bit-reproducible per seed and testable without a
    cluster. *)

type cls = Read | Write | Compute

val cls_name : cls -> string
val all_classes : cls list

(** Relative class weights; {!generate} normalizes them. *)
type mix = { read : float; write : float; compute : float }

val default_mix : mix
(** 70% read / 20% write / 10% compute. *)

val weight : mix -> cls -> float
val normalize : mix -> mix

type arrival =
  | Poisson of float  (** mean arrival rate, requests per virtual second *)
  | Bursty of {
      rate : float;  (** base (off-phase) Poisson rate *)
      factor : float;  (** on-phase rate multiplier, [>= 1] *)
      on_mean : float;  (** mean on-phase length, seconds *)
      off_mean : float;  (** mean off-phase length, seconds *)
    }
      (** Markov-modulated Poisson: alternating exponential on/off phases
          (starting on), arrival rate [rate *. factor] while on and
          [rate] while off. *)

val mean_rate : arrival -> float
(** Long-run mean arrival rate of the process. *)

type request = { at : float; cls : cls; key : int }

(** Zipf(s) distribution over [\[0, n)]: [P(k)] proportional to
    [1/(k+1)^s]; [s = 0] is uniform. *)
type zipf

val zipf : n:int -> s:float -> zipf
val zipf_sample : zipf -> Sim.Rng.t -> int
val pick_class : mix -> Sim.Rng.t -> cls

val generate :
  rng:Sim.Rng.t ->
  arrival:arrival ->
  mix:mix ->
  keys:int ->
  skew:float ->
  duration:float ->
  request list
(** The arrival schedule over [\[0, duration)], in time order.  Per
    request the rng draw order is fixed (gap, class, key), so the result
    is a pure function of the rng state. *)

val to_string : request list -> string
(** Canonical rendering (one request per line), for determinism
    digests. *)
