(* Amber-Serve: the open-loop traffic-serving driver.

   One run wires together
     - a [Trafficgen] arrival schedule drawn from a dedicated
       [Sim.Rng.split] (one draw from the engine stream, exactly like
       [Balance.Driver]; a run without serving draws nothing and stays
       byte-identical);
     - a farm of service objects spread round-robin over the nodes
       (key -> home node = key mod nodes), optionally replicated
       everywhere;
     - per-node worker pools of Amber threads that pull admitted
       requests off a bounded queue and [invoke] the keyed object with
       the class's declared access mode and CPU cost;
     - per-class admission control at the RPC server pools (token bucket
       + queue-depth cutoff, installed through [Topaz.Rpc.set_admission])
       whose rejections flow back to the generator as typed
       [Amber.Overload.Overloaded] shed load, never as hangs;
     - per-class SLO accounting (p50/p95/p99 latency, goodput, reject
       rate) surfaced through a gated "serve" report section.

   The request path: the generator (the calling Amber thread) sleeps to
   each arrival instant and fire-and-forgets a "serve-<class>" datagram
   to the key's home node.  At the destination the admission hook rules;
   admitted requests are queued for the worker pool, which invokes the
   object (chasing it if the balancer moved it, reading a replica when
   one is local) and posts a completion notice home; rejected requests
   post a rejection notice from the delivery callback instead.  The
   generator drains until every request is accounted for or a grace
   deadline passes — crash-killed requests are counted failed, so faulty
   runs shed and degrade but never wedge. *)

(* Re-exported so library clients see [Serve.Trafficgen] and
   [Serve.Admission] alongside the driver below ([serve]'s root module
   is this file). *)
module Trafficgen = Trafficgen
module Admission = Admission

module A = Amber

type admission_cfg = {
  admit_rate : float;
      (* aggregate per-node token rate (req/s), split over the classes by
         mix weight; 0.0 derives it from the node's service capacity *)
  admit_burst : float;  (* per-class bucket capacity, tokens *)
  cutoff : int;  (* per-node admitted-but-unfinished cutoff *)
}

let default_admission = { admit_rate = 0.0; admit_burst = 4.0; cutoff = 8 }

type cfg = {
  arrival : Trafficgen.arrival;
  duration : float;  (* generator window, virtual seconds *)
  keys : int;  (* service objects *)
  skew : float;  (* Zipf exponent over the keyspace *)
  mix : Trafficgen.mix;
  workers_per_node : int;
  read_cost : float;  (* service CPU per class, seconds *)
  write_cost : float;
  compute_cost : float;
  request_bytes : int;
  reply_bytes : int;
  replicate : bool;  (* replicate every service object everywhere *)
  admission : admission_cfg option;
  drain_grace : float;
      (* extra virtual time after [duration] to wait for stragglers;
         whatever is still unaccounted then is counted failed *)
}

let default_cfg =
  {
    arrival = Trafficgen.Poisson 400.0;
    duration = 0.5;
    keys = 64;
    skew = 1.0;
    mix = Trafficgen.default_mix;
    workers_per_node = 2;
    read_cost = 4e-3;
    write_cost = 12e-3;
    compute_cost = 40e-3;
    request_bytes = 128;
    reply_bytes = 64;
    replicate = false;
    admission = None;
    drain_grace = 2.0;
  }

let mean_service_cost cfg =
  let m = Trafficgen.normalize cfg.mix in
  (m.Trafficgen.read *. cfg.read_cost)
  +. (m.Trafficgen.write *. cfg.write_cost)
  +. (m.Trafficgen.compute *. cfg.compute_cost)

(* Nominal service capacity, requests per second: what the worker pools
   sustain if service CPU were the only cost.  The CLI and benches use
   it to dial moderate vs 2x-overload arrival rates. *)
let node_capacity_rps cfg =
  float_of_int cfg.workers_per_node /. mean_service_cost cfg
let capacity_rps cfg ~nodes = float_of_int nodes *. node_capacity_rps cfg

type class_stats = {
  cls : Trafficgen.cls;
  mutable issued : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
  latency : Sim.Stats.Summary.t;  (* completed requests, issue to notice *)
}

type result = {
  per_class : class_stats list;
  issued : int;
  completed : int;
  rejected : int;
  failed : int;
  duration : float;
  elapsed : float;  (* first issue to drain end *)
  goodput_rps : float;  (* completions per second of [duration] *)
  reject_frac : float;  (* rejected / issued *)
  latency : Sim.Stats.Summary.t;  (* all completed requests *)
  sample_rejection : exn option;
      (* the first shed request's typed failure, for tests and logs *)
}

let kind_prefix = "serve-"
let kind_of_cls c = kind_prefix ^ Trafficgen.cls_name c

let cls_of_kind kind =
  let n = String.length kind_prefix in
  if String.length kind > n && String.sub kind 0 n = kind_prefix then
    Some (String.sub kind n (String.length kind - n))
  else None

let service_cost cfg = function
  | Trafficgen.Read -> cfg.read_cost
  | Trafficgen.Write -> cfg.write_cost
  | Trafficgen.Compute -> cfg.compute_cost

let report_lines stats ~goodput ~reject_frac ~failed () =
  let ms v = v *. 1e3 in
  List.map
    (fun (st : class_stats) ->
      (* A class can end a (crashy) run with zero completions; report
         its percentiles as 0 rather than raising on the empty summary. *)
      let p q =
        if Sim.Stats.Summary.count st.latency = 0 then 0.0
        else ms (Sim.Stats.Summary.percentile st.latency q)
      in
      Printf.sprintf
        "%-7s issued=%-5d ok=%-5d rej=%-4d fail=%-3d p50=%7.1fms p95=%7.1fms \
         p99=%7.1fms"
        (Trafficgen.cls_name st.cls)
        st.issued st.completed st.rejected st.failed (p 50.0) (p 95.0)
        (p 99.0))
    stats
  @ [
      Printf.sprintf "goodput %.1f rps, reject %.1f%%, failed %d" goodput
        (reject_frac *. 100.0) failed;
    ]

(* Must be called from the main Amber thread.  One engine-RNG split at
   entry is the only interaction a serving run has with the global
   random stream. *)
let run rt (cfg : cfg) =
  if cfg.duration <= 0.0 then
    invalid_arg "Serve.run: duration must be positive";
  if cfg.keys <= 0 then invalid_arg "Serve.run: keys must be positive";
  if cfg.workers_per_node <= 0 then
    invalid_arg "Serve.run: workers_per_node must be positive";
  if cfg.read_cost <= 0.0 || cfg.write_cost <= 0.0 || cfg.compute_cost <= 0.0
  then invalid_arg "Serve.run: service costs must be positive";
  let eng = A.Runtime.engine rt in
  let rpc = A.Runtime.rpc rt in
  let spans = A.Runtime.spans rt in
  let nodes = A.Runtime.nodes rt in
  let rng = Sim.Rng.split (Sim.Engine.rng eng) in
  let gen_node = A.Api.my_node rt in
  (* Accounting, all mutated from node-0 notice handlers (and the drain
     sweep) only. *)
  let stats =
    List.map
      (fun c ->
        {
          cls = c;
          issued = 0;
          rejected = 0;
          completed = 0;
          failed = 0;
          latency = Sim.Stats.Summary.create ();
        })
      Trafficgen.all_classes
  in
  let stat c = List.find (fun (st : class_stats) -> st.cls = c) stats in
  let overall_latency = Sim.Stats.Summary.create () in
  let sample_rejection = ref None in
  let outstanding = ref 0 in
  (* Telemetry: when a watcher enabled the runtime's series registry
     (Watch.attach, before this run started), publish per-class latency
     windows — whose derived [.rate] is the goodput curve — plus
     cumulative issue/complete/shed/fail counters.  Unwatched runs take
     the [None] branch everywhere and stay byte-identical. *)
  let metrics = A.Runtime.metrics rt in
  let watched = Sim.Series.enabled metrics in
  let lat_all =
    if watched then
      Some (Sim.Series.window metrics ~name:"serve.latency_ms" ~scale:1e3 ())
    else None
  in
  let lat_cls =
    if watched then
      List.map
        (fun (st : class_stats) ->
          ( st.cls,
            Sim.Series.window metrics
              ~name:
                (Printf.sprintf "serve.latency_ms[%s]"
                   (Trafficgen.cls_name st.cls))
              ~scale:1e3 () ))
        stats
    else []
  in
  if watched then begin
    let sum f = List.fold_left (fun n (st : class_stats) -> n + f st) 0 stats in
    Sim.Series.counter metrics ~name:"serve.issued" (fun () ->
        sum (fun st -> st.issued));
    Sim.Series.counter metrics ~name:"serve.completed" (fun () ->
        sum (fun st -> st.completed));
    Sim.Series.counter metrics ~name:"serve.rejected" (fun () ->
        sum (fun st -> st.rejected));
    Sim.Series.counter metrics ~name:"serve.failed" (fun () ->
        sum (fun st -> st.failed))
  end;
  (* Service objects, spread round-robin; [ref int] cells under the
     write-invalidate protocol when replicated.  Placement takes real
     virtual time (one move per remote key), so a crash injected early
     can land mid-setup: a move or replica install aimed at a corpse is
     simply skipped — the object stays where it is, and its requests
     resolve through [on_dead] or the drain deadline like any other
     traffic to a dead node. *)
  let objs =
    Array.init cfg.keys (fun k ->
        let o =
          A.Api.create rt ~size:256 ~name:(Printf.sprintf "svc%d" k) (ref 0)
        in
        let dest = k mod nodes in
        (if dest <> gen_node then
           try A.Api.move_to rt o ~dest
           with Topaz.Rpc.Node_dead _ -> ());
        o)
  in
  if cfg.replicate then
    Array.iter
      (fun o ->
        try A.Placement.replicate_everywhere rt ~copy:(fun r -> ref !r) o
        with Topaz.Rpc.Node_dead _ -> ())
      objs;
  (* Per-node bounded work queues and worker pools.  Workers are Amber
     threads (they must be, to invoke), started bootstrap-style on their
     node; like the RPC server fibers they park when idle and are simply
     left parked at the end of the run. *)
  let queues = Array.init nodes (fun _ -> Queue.create ()) in
  let wakers = Array.make nodes [] in
  let inflight = Array.make nodes 0 in
  if watched then
    for n = 0 to nodes - 1 do
      Sim.Series.probe metrics ~name:"serve.admitted" ~node:n (fun () ->
          float_of_int inflight.(n))
    done;
  let enqueue node job =
    Queue.add job queues.(node);
    match wakers.(node) with
    | [] -> ()
    | wake :: rest ->
      wakers.(node) <- rest;
      wake ()
  in
  for node = 0 to nodes - 1 do
    for i = 0 to cfg.workers_per_node - 1 do
      ignore
        (A.Athread.start_on rt ~node
           ~name:(Printf.sprintf "srv-worker-%d.%d" node i)
           (fun () ->
             let q = queues.(node) in
             let rec loop () =
               (match Queue.take_opt q with
               | Some job -> job ()
               | None ->
                 Sim.Fiber.block (fun wake ->
                     wakers.(node) <- wake :: wakers.(node)));
               loop ()
             in
             loop ())
          : unit A.Athread.t)
    done
  done;
  (* Admission: one controller per node; the Rpc hook is consulted at
     datagram arrival and, on admit, reserves the inflight slot right
     there, so the depth cutoff is exact.  Uninstalled before
     returning. *)
  let mix = Trafficgen.normalize cfg.mix in
  (match cfg.admission with
  | None -> ()
  | Some a ->
    let rate =
      if a.admit_rate > 0.0 then a.admit_rate
      else node_capacity_rps cfg *. 1.05
    in
    let classes =
      List.filter_map
        (fun c ->
          let w = Trafficgen.weight mix c in
          if w <= 0.0 then None
          else Some (Trafficgen.cls_name c, rate *. w, a.admit_burst))
        Trafficgen.all_classes
    in
    let ctrls =
      Array.init nodes (fun _ -> Admission.create ~classes ~cutoff:a.cutoff)
    in
    Topaz.Rpc.set_admission rpc
      (Some
         (fun ~dst ~kind ->
           match cls_of_kind kind with
           | None -> true
           | Some cls ->
             let ok =
               Admission.admit ctrls.(dst) ~now:(A.Runtime.now rt) ~cls
                 ~depth:inflight.(dst)
             in
             if ok then inflight.(dst) <- inflight.(dst) + 1;
             ok)));
  (* The gated report section: registered only when a serving run
     actually happens, so serve-free reports stay byte-identical. *)
  let goodput () =
    float_of_int
      (List.fold_left (fun n (st : class_stats) -> n + st.completed) 0 stats)
    /. cfg.duration
  in
  let reject_frac () =
    let issued =
      List.fold_left (fun n (st : class_stats) -> n + st.issued) 0 stats
    in
    let rejected =
      List.fold_left (fun n (st : class_stats) -> n + st.rejected) 0 stats
    in
    if issued = 0 then 0.0 else float_of_int rejected /. float_of_int issued
  in
  A.Runtime.add_report_section rt ~name:"serve" (fun () ->
      report_lines stats ~goodput:(goodput ()) ~reject_frac:(reject_frac ())
        ~failed:
          (List.fold_left (fun n (st : class_stats) -> n + st.failed) 0 stats)
        ());
  (* Generate the whole schedule up front from a dedicated split, then
     replay it open-loop against the virtual clock. *)
  let reqs =
    Trafficgen.generate ~rng:(Sim.Rng.split rng) ~arrival:cfg.arrival
      ~mix:cfg.mix ~keys:cfg.keys ~skew:cfg.skew ~duration:cfg.duration
  in
  let t0 = A.Runtime.now rt in
  List.iter
    (fun (r : Trafficgen.request) ->
      let gap = t0 +. r.Trafficgen.at -. A.Runtime.now rt in
      if gap > 0.0 then Topaz.Kthread.sleep ~engine:eng gap;
      let st = stat r.Trafficgen.cls in
      st.issued <- st.issued + 1;
      incr outstanding;
      let issued_at = A.Runtime.now rt in
      let key = r.Trafficgen.key in
      let dst = key mod nodes in
      let cls_s = Trafficgen.cls_name r.Trafficgen.cls in
      (* Every request is a self-contained monitor call, so all classes
         invoke in [Atomic] mode: the runtime serializes at the object
         and concurrent requests to a hot key are race-free by
         construction (the sanitized CI run counts on this).  [Read]
         mode's replica fast-path is deliberately not used — it declares
         an externally locked read section, which open-loop traffic does
         not have; replicas still earn their keep under serving as crash
         insurance (master promotion). *)
      let mode = A.San_hooks.Atomic in
      let cost = service_cost cfg r.Trafficgen.cls in
      let parent = Sim.Span.current spans in
      (* Worker-side body: serve the request, then notify home.  An
         invoke that chases an object onto a corpse (the move was skipped
         because the node died during placement, or the master died
         since) surfaces [Node_dead] here in the worker; the request is
         reported home as failed rather than completed. *)
      let job () =
        let ok =
          Sim.Span.with_span spans Sim.Span.Serve_request ~label:cls_s
            ~tag:cls_s ~arg:key (fun () ->
              try
                ignore
                  (A.Api.invoke rt ~payload:cfg.request_bytes ~mode objs.(key)
                     (fun cell ->
                       Sim.Fiber.consume cost;
                       match r.Trafficgen.cls with
                       | Trafficgen.Write ->
                         incr cell;
                         !cell
                       | Trafficgen.Read | Trafficgen.Compute -> !cell)
                    : int);
                true
              with Topaz.Rpc.Node_dead _ -> false)
        in
        inflight.(dst) <- inflight.(dst) - 1;
        Topaz.Rpc.post rpc ~src:dst ~dst:gen_node ~kind:"serve-done"
          ~size:cfg.reply_bytes (fun () ->
            if ok then begin
              let dt = A.Runtime.now rt -. issued_at in
              Sim.Stats.Summary.add st.latency dt;
              Sim.Stats.Summary.add overall_latency dt;
              (match lat_all with
              | Some w -> Sim.Series.observe w dt
              | None -> ());
              (match List.assoc_opt r.Trafficgen.cls lat_cls with
              | Some w -> Sim.Series.observe w dt
              | None -> ());
              st.completed <- st.completed + 1
            end
            else st.failed <- st.failed + 1;
            decr outstanding)
      in
      (* Rejection runs in event context at [dst]: account the shed as a
         typed failure and notify home without touching a fiber. *)
      let on_reject () =
        if !sample_rejection = None then begin
          sample_rejection :=
            Some (A.Overload.Overloaded { node = dst; cls = cls_s });
          (* The first shed is the typed [Overloaded] failure: let the
             flight recorder capture the onset window.  Inert without
             hooks. *)
          A.Runtime.notify_failure rt ~kind:"overloaded" ~node:dst
            ~detail:(Printf.sprintf "first shed: class %s at node%d" cls_s dst)
        end;
        Topaz.Rpc.post rpc ~parent ~src:dst ~dst:gen_node ~kind:"serve-rej"
          ~size:16 (fun () ->
            st.rejected <- st.rejected + 1;
            decr outstanding)
      in
      (* A request aimed at a corpse fails crisply at the generator. *)
      let on_dead (_ : exn) =
        st.failed <- st.failed + 1;
        decr outstanding
      in
      Topaz.Rpc.post ~on_dead ~on_reject rpc ~src:gen_node ~dst
        ~kind:(kind_of_cls r.Trafficgen.cls) ~size:cfg.request_bytes (fun () ->
          enqueue dst job))
    reqs;
  (* Drain: every issued request resolves as completed, rejected or
     failed; a crash can strand some, so the grace deadline converts
     leftovers into failures instead of hanging the run. *)
  let deadline = t0 +. cfg.duration +. cfg.drain_grace in
  let rec drain () =
    if !outstanding > 0 then begin
      let left = deadline -. A.Runtime.now rt in
      if left > 0.0 then begin
        Topaz.Kthread.sleep ~engine:eng (Float.min 5e-3 left);
        drain ()
      end
    end
  in
  drain ();
  (match cfg.admission with
  | None -> ()
  | Some _ -> Topaz.Rpc.set_admission rpc None);
  List.iter
    (fun (st : class_stats) ->
      let unresolved = st.issued - st.rejected - st.completed - st.failed in
      if unresolved > 0 then st.failed <- st.failed + unresolved)
    stats;
  let total f = List.fold_left (fun n (st : class_stats) -> n + f st) 0 stats in
  let issued = total (fun st -> st.issued) in
  {
    per_class = stats;
    issued;
    completed = total (fun st -> st.completed);
    rejected = total (fun st -> st.rejected);
    failed = total (fun st -> st.failed);
    duration = cfg.duration;
    elapsed = A.Runtime.now rt -. t0;
    goodput_rps = goodput ();
    reject_frac = reject_frac ();
    latency = overall_latency;
    sample_rejection = !sample_rejection;
  }
