(** Per-class admission control for a node's server pool: one token
    bucket per request class plus a queue-depth cutoff over the node's
    admitted-but-unfinished requests.

    Deterministic and event-free: buckets refill lazily from the virtual
    clock the caller passes in, so admission draws no RNG and schedules
    nothing. *)

(** A token bucket; starts full. *)
type bucket

val bucket : rate:float -> burst:float -> bucket

val refill : bucket -> now:float -> unit
(** Lazily credit [rate] tokens per second since the last refill, capped
    at [burst].  Time never flows backward: earlier [now]s are
    ignored. *)

val tokens : bucket -> now:float -> float
(** Current level after refilling to [now]. *)

val try_take : bucket -> now:float -> bool
(** Take one token if at least one is available after refilling. *)

(** One node's controller. *)
type t

val create : classes:(string * float * float) list -> cutoff:int -> t
(** [classes] is [(class name, token rate, burst)] per request class;
    [cutoff] bounds the node's admitted-but-unfinished request count. *)

val admit : t -> now:float -> cls:string -> depth:int -> bool
(** Verdict for one request of class [cls] arriving at virtual time [now]
    with [depth] requests already admitted and unfinished on the node.
    The depth cutoff is checked before the bucket, so queue-full
    rejections do not consume tokens; a class with no configured bucket
    is limited by the cutoff alone. *)
