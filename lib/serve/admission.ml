(* Per-class admission control: token buckets plus a queue-depth cutoff.

   Buckets refill lazily from the virtual clock passed in by the caller —
   no engine events, no RNG — so an admission controller that never
   rejects contributes nothing observable to a run.  All state is plain
   and deterministic: the same request sequence at the same virtual
   times yields the same verdicts. *)

type bucket = {
  rate : float;  (* tokens per virtual second *)
  burst : float;  (* bucket capacity *)
  mutable tokens : float;
  mutable last : float;  (* virtual time of the last refill *)
}

let bucket ~rate ~burst =
  if rate <= 0.0 || burst <= 0.0 then
    invalid_arg "Admission.bucket: rate and burst must be positive";
  { rate; burst; tokens = burst; last = 0.0 }

let refill b ~now =
  if now > b.last then begin
    b.tokens <- Float.min b.burst (b.tokens +. ((now -. b.last) *. b.rate));
    b.last <- now
  end

let tokens b ~now =
  refill b ~now;
  b.tokens

let try_take b ~now =
  refill b ~now;
  if b.tokens >= 1.0 then begin
    b.tokens <- b.tokens -. 1.0;
    true
  end
  else false

(* One node's controller: a bucket per request class plus a shared
   admitted-but-unfinished depth cutoff. *)
type t = { buckets : (string * bucket) list; cutoff : int }

let create ~classes ~cutoff =
  if cutoff <= 0 then invalid_arg "Admission.create: cutoff must be positive";
  {
    buckets =
      List.map (fun (c, rate, burst) -> (c, bucket ~rate ~burst)) classes;
    cutoff;
  }

(* The depth cutoff is checked first so a queue-full rejection does not
   burn a token the next request could have used. *)
let admit t ~now ~cls ~depth =
  depth < t.cutoff
  &&
  match List.assoc_opt cls t.buckets with
  | Some b -> try_take b ~now
  | None -> true
