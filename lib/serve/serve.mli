(** Amber-Serve: open-loop traffic serving with per-class SLOs, admission
    control and backpressure.

    A run drives a seeded {!Trafficgen} arrival schedule against a farm
    of service objects spread round-robin over the cluster, through
    per-node worker pools fed by the RPC server pools.  Optional
    admission control (token bucket + queue-depth cutoff, one controller
    per node, installed via [Topaz.Rpc.set_admission]) sheds overload as
    typed [Amber.Overload.Overloaded] rejections that flow back to the
    generator — shed load, not hangs.  Per-class latency percentiles,
    goodput and reject rate are reported through a gated ["serve"]
    report section; admitted requests carry class-tagged
    [Serve_request] spans, so an attached profiler breaks service time
    down per class for free.

    Determinism: one [Sim.Rng.split] off the engine stream at {!run}
    entry is the only global-stream interaction; a run without serving
    draws nothing, registers nothing, and its report stays
    byte-identical.  Composes with replication ([replicate]), the
    balancer, crash injection (stranded requests resolve as failures at
    the drain deadline), fault injection and the sanitizer. *)

module Trafficgen = Trafficgen
module Admission = Admission

type admission_cfg = {
  admit_rate : float;
      (** aggregate per-node token rate (req/s), split across classes by
          mix weight; [0.0] derives ~1.05x the node's nominal service
          capacity *)
  admit_burst : float;  (** per-class bucket capacity, tokens *)
  cutoff : int;  (** per-node admitted-but-unfinished request cutoff *)
}

val default_admission : admission_cfg

type cfg = {
  arrival : Trafficgen.arrival;
  duration : float;  (** generator window, virtual seconds *)
  keys : int;  (** service objects (key [k] homes on node [k mod nodes]) *)
  skew : float;  (** Zipf exponent over the keyspace *)
  mix : Trafficgen.mix;
  workers_per_node : int;
  read_cost : float;  (** service CPU per class, seconds *)
  write_cost : float;
  compute_cost : float;
  request_bytes : int;
  reply_bytes : int;
  replicate : bool;  (** replicate every service object on every node *)
  admission : admission_cfg option;  (** [None]: admit everything *)
  drain_grace : float;
      (** extra virtual time after [duration] to wait for stragglers;
          anything still unresolved then is counted failed *)
}

val default_cfg : cfg

val mean_service_cost : cfg -> float
(** Mix-weighted mean service CPU per request, seconds. *)

val node_capacity_rps : cfg -> float

val capacity_rps : cfg -> nodes:int -> float
(** Nominal service capacity of the cluster, requests/second — the knob
    benches and the CLI use to dial moderate vs 2x-overload rates. *)

type class_stats = {
  cls : Trafficgen.cls;
  mutable issued : int;
  mutable rejected : int;  (** shed by admission control *)
  mutable completed : int;
  mutable failed : int;  (** lost to a crash or the drain deadline *)
  latency : Sim.Stats.Summary.t;  (** completed requests, issue to notice *)
}

type result = {
  per_class : class_stats list;
  issued : int;
  completed : int;
  rejected : int;
  failed : int;
  duration : float;
  elapsed : float;  (** first issue to drain end *)
  goodput_rps : float;  (** completions per second of [duration] *)
  reject_frac : float;  (** rejected / issued *)
  latency : Sim.Stats.Summary.t;  (** all completed requests *)
  sample_rejection : exn option;
      (** first shed request's typed [Overloaded], for tests and logs *)
}

val run : Amber.Runtime.t -> cfg -> result
(** Run one serving session.  Must be called from the main Amber thread;
    returns after the drain deadline with every issued request accounted
    for (completed + rejected + failed = issued). *)

val report_lines :
  class_stats list ->
  goodput:float ->
  reject_frac:float ->
  failed:int ->
  unit ->
  string list
(** The lines of the ["serve"] report section. *)
