(** Thread stealing: idle nodes pull runnable unbound threads from loaded
    peers.

    Each tick, every node with a free CPU and an empty ready queue picks
    the most-loaded peer on its gossip board (seeded tie-break) and sends
    it a small steal request.  The victim — in its RPC server fiber, so
    after a real wire delay — dequeues one runnable thread that holds no
    invocation frames (a bound thread would be bounced straight back by
    the §3.5 residency check) and ships it to the thief over the standard
    thread-migration flight.  Stolen threads therefore pay the ordinary
    thread-packet cost, and the race where the thief finds its own work
    first is re-checked at the victim. *)

type t

val create :
  Amber.Runtime.t ->
  li:Loadinfo.t ->
  rng:Sim.Rng.t ->
  min_victim_load:float ->
  t

(** One steal round over all nodes; called from the driver's tick event
    (event context). *)
val tick : t -> unit

(** Directed steal: make [victim] hand one stealable thread to [thief]
    right now, skipping the load-board victim selection.  Returns whether
    a thread was taken.  Exposed for tests; [tick] goes through the
    request RPC instead.  Event or fiber context. *)
val grab : t -> victim:int -> thief:int -> bool
