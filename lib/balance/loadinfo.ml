module A = Amber

type entry = {
  mutable ready : float;
  mutable running : float;
  mutable stamp : float;
}

type t = {
  rt : A.Runtime.t;
  alpha : float;
  rng : Sim.Rng.t;
  (* boards.(viewer).(node): what [viewer] currently believes about
     [node].  A node's own entry is refreshed locally every tick; entries
     about peers arrive by gossip and may lag. *)
  boards : entry array array;
  msg_bytes : int;
  mutable remote_frac : float;
}

let create rt ~rng ~alpha =
  let nodes = A.Runtime.nodes rt in
  {
    rt;
    alpha;
    rng;
    boards =
      Array.init nodes (fun _ ->
          Array.init nodes (fun _ -> { ready = 0.0; running = 0.0; stamp = 0.0 }));
    msg_bytes = 16 * nodes;
    remote_frac = 0.0;
  }

let board t ~viewer = t.boards.(viewer)
let load e = e.ready +. e.running
let remote_fraction t = t.remote_frac

(* Merge an incoming board snapshot: newer stamp wins per entry.  Runs in
   the gossip datagram's delivery context at the receiver. *)
let merge dst snap =
  Array.iteri
    (fun k (ready, running, stamp) ->
      if stamp > dst.(k).stamp then begin
        dst.(k).ready <- ready;
        dst.(k).running <- running;
        dst.(k).stamp <- stamp
      end)
    snap

let tick t =
  let rt = t.rt in
  let nodes = A.Runtime.nodes rt in
  let now = A.Runtime.now rt in
  let ctrs = A.Runtime.counters rt in
  ctrs.A.Runtime.gossip_rounds <- ctrs.A.Runtime.gossip_rounds + 1;
  let c = A.Runtime.counters rt in
  let total = c.A.Runtime.local_invocations + c.A.Runtime.remote_invocations in
  if total > 0 then
    t.remote_frac <-
      float_of_int c.A.Runtime.remote_invocations /. float_of_int total;
  for n = 0 to nodes - 1 do
    (* Sampling the local machine is free; only the gossip costs wire
       time and receiver CPU. *)
    let m = A.Runtime.machine rt n in
    let e = t.boards.(n).(n) in
    let mix old v = (t.alpha *. v) +. ((1.0 -. t.alpha) *. old) in
    e.ready <- mix e.ready (float_of_int (Hw.Machine.ready_length m));
    e.running <- mix e.running (float_of_int (Hw.Machine.busy_cpus m));
    e.stamp <- now
  done;
  if nodes > 1 then
    for n = 0 to nodes - 1 do
      let peer =
        let p = Sim.Rng.int t.rng (nodes - 1) in
        if p >= n then p + 1 else p
      in
      (* Snapshot at send time: the delivery callback runs later, after
         the board has moved on. *)
      let snap =
        Array.map (fun e -> (e.ready, e.running, e.stamp)) t.boards.(n)
      in
      Topaz.Rpc.send_reliable (A.Runtime.rpc rt) ~src:n ~dst:peer
        ~size:t.msg_bytes ~kind:"gossip" (fun () ->
          merge t.boards.(peer) snap)
    done
