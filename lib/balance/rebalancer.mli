(** Adaptive object placement: a daemon thread that watches per-object
    invocation windows and machine load, and moves (or replicates)
    objects to fix what it sees.

    Two passes per observation cycle:

    - {e affinity}: an object whose window shows one remote node
      dominating its invocations migrates to that node — or, when the
      traffic is read-dominated, from several nodes, and the program
      registered a copier ({!allow_replication}), gains a read replica
      there instead;
    - {e spread} (policy [Hybrid] only): objects are ranked by how many
      threads are {e rooted} in them (outermost invocation frame), and
      the hot node hands its largest movable root to the coldest node
      until the rooted-load gap closes or the budget runs out.

    Every action is rate-limited: at most [move_budget] actions per
    cycle, and never the same object twice within one [hysteresis]
    window. *)

type policy = Off | Steal_only | Affinity | Hybrid

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type cfg = {
  interval : float;  (** observation-cycle period (virtual seconds) *)
  hysteresis : float;
      (** minimum time between two balancer actions on one object *)
  move_budget : int;  (** max actions (moves + replicas) per cycle *)
  min_invocations : int;
      (** dominant-caller count below which the affinity pass ignores an
          object (too little signal) *)
  dominance : float;
      (** the dominant caller must beat everyone else combined by this
          factor before the object follows it *)
  spread_threshold : int;
      (** rooted-load gap (in threads) the spread pass tolerates *)
  read_ratio : float;
      (** window read fraction above which a replica is preferred over a
          move *)
}

val default_cfg : cfg

type move = { at : float; addr : int; src : int; dst : int }

type t

val create : Amber.Runtime.t -> policy:policy -> cfg:cfg -> t

(** Spawn the daemon thread (no-op under [Off]/[Steal_only]).  Fiber
    context; charges the ordinary thread-start cost to the caller. *)
val start : t -> unit

(** Stop the daemon and join it, so the simulation can drain.  Fiber
    context. *)
val stop : t -> unit

(** Register a deep-copy function for [obj], permitting the affinity pass
    to install read replicas of it ({!Amber.Coherence.install}); without
    a registration the pass always moves. *)
val allow_replication : t -> 'a Amber.Aobject.t -> copy:('a -> 'a) -> unit

(** Every move performed so far, oldest first.  Tests use this to check
    the hysteresis rule. *)
val move_log : t -> move list
