module A = Amber

type policy = Off | Steal_only | Affinity | Hybrid

let policy_to_string = function
  | Off -> "off"
  | Steal_only -> "steal_only"
  | Affinity -> "affinity"
  | Hybrid -> "hybrid"

let policy_of_string = function
  | "off" -> Some Off
  | "steal_only" | "steal-only" -> Some Steal_only
  | "affinity" -> Some Affinity
  | "hybrid" -> Some Hybrid
  | _ -> None

type cfg = {
  interval : float;
  hysteresis : float;
  move_budget : int;
  min_invocations : int;
  dominance : float;
  spread_threshold : int;
  read_ratio : float;
}

let default_cfg =
  {
    interval = 25e-3;
    hysteresis = 100e-3;
    move_budget = 8;
    min_invocations = 8;
    dominance = 2.0;
    spread_threshold = 2;
    read_ratio = 0.75;
  }

type move = { at : float; addr : int; src : int; dst : int }

type t = {
  rt : A.Runtime.t;
  cfg : cfg;
  policy : policy;
  (* addr -> virtual time of the last balancer action on the object;
     enforces the hysteresis window. *)
  last_acted : (int, float) Hashtbl.t;
  (* addr -> replica installer registered by the program (the runtime
     cannot deep-copy arbitrary representations itself). *)
  copiers : (int, int -> unit) Hashtbl.t;
  mutable moves : move list; (* newest first *)
  mutable stopped : bool;
  mutable sleeper : (Sim.Engine.event_id * (unit -> unit)) option;
  mutable handle : unit A.Athread.t option;
}

let create rt ~policy ~cfg =
  {
    rt;
    cfg;
    policy;
    last_acted = Hashtbl.create 16;
    copiers = Hashtbl.create 16;
    moves = [];
    stopped = false;
    sleeper = None;
    handle = None;
  }

let move_log t = List.rev t.moves

let allow_replication t obj ~copy =
  Hashtbl.replace t.copiers obj.A.Aobject.addr (fun dest ->
      A.Coherence.install t.rt ~copy obj ~dest)

let cool t addr ~now =
  match Hashtbl.find_opt t.last_acted addr with
  | Some tm -> now -. tm >= t.cfg.hysteresis -. 1e-12
  | None -> true

let do_move t o ~dest =
  let rt = t.rt in
  let now = A.Runtime.now rt in
  Hashtbl.replace t.last_acted o.A.Aobject.addr now;
  t.moves <-
    { at = now; addr = o.A.Aobject.addr; src = o.A.Aobject.location; dst = dest }
    :: t.moves;
  let ctrs = A.Runtime.counters rt in
  ctrs.A.Runtime.balance_moves <- ctrs.A.Runtime.balance_moves + 1;
  Sim.Span.with_span (A.Runtime.spans rt) Sim.Span.Rebalance
    ~label:o.A.Aobject.name ~obj:o.A.Aobject.addr ~arg:dest (fun () ->
      A.Mobility.move_to rt o ~dest)

(* --- affinity pass ------------------------------------------------------- *)

(* An object whose window shows one remote node invoking it far more than
   everyone else (callers at the master included) is better off living
   there; when the traffic is read-dominated and comes from several nodes,
   a read replica at the dominant caller serves it without disturbing the
   master.  The dominance ratio keeps bound-local objects (lots of
   [win_local]) from ping-ponging after a neighbour glances at them. *)
let affinity_pass t ~budget =
  let rt = t.rt in
  let now = A.Runtime.now rt in
  List.iter
    (fun (A.Aobject.Any o) ->
      if
        !budget > 0
        && o.A.Aobject.parent = None
        && (not o.A.Aobject.immutable_)
        && cool t o.A.Aobject.addr ~now
      then begin
        let remote_total =
          List.fold_left (fun a (_, c) -> a + c) 0 o.A.Aobject.win_remote
        in
        if remote_total > 0 then begin
          let dest, cnt =
            List.fold_left
              (fun (bn, bc) (n, c) ->
                if c > bc || (c = bc && n < bn) then (n, c) else (bn, bc))
              (max_int, 0) o.A.Aobject.win_remote
          in
          let rest = o.A.Aobject.win_local + (remote_total - cnt) in
          if
            cnt >= t.cfg.min_invocations
            && float_of_int cnt >= t.cfg.dominance *. float_of_int (max 1 rest)
            && dest <> o.A.Aobject.location
          then begin
            let total = o.A.Aobject.win_local + remote_total in
            let read_dominated =
              float_of_int o.A.Aobject.win_reads
              >= t.cfg.read_ratio *. float_of_int (max 1 total)
            in
            match Hashtbl.find_opt t.copiers o.A.Aobject.addr with
            | Some install
              when read_dominated
                   && List.length o.A.Aobject.win_remote >= 2
                   && not (List.mem dest o.A.Aobject.replicas) ->
              Hashtbl.replace t.last_acted o.A.Aobject.addr now;
              let ctrs = A.Runtime.counters rt in
              ctrs.A.Runtime.balance_replicas <-
                ctrs.A.Runtime.balance_replicas + 1;
              install dest;
              decr budget
            | _ ->
              do_move t o ~dest;
              decr budget
          end
        end
      end)
    (A.Runtime.objects rt)

(* --- spread pass --------------------------------------------------------- *)

(* A thread's OUTERMOST frame is the object it works for: SOR workers are
   rooted in their section even while blocked inside the shared
   convergence master, so ranking by rooted threads spreads the sections
   and leaves the master (rooted count ~0) alone.  Moving an object
   transfers exactly its rooted threads' load — they chase it through the
   §3.5 residency check when they next unwind to their root frame. *)
let rooted_counts t =
  let tbl = Hashtbl.create 32 in
  A.Runtime.iter_threads t.rt (fun ts ->
      match List.rev ts.A.Runtime.frames with
      | [] -> ()
      | root :: _ ->
        let a = A.Aobject.addr_of_any root.A.Runtime.fobj in
        Hashtbl.replace tbl a
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a)));
  tbl

let spread_pass t ~budget =
  let rt = t.rt in
  let nodes = A.Runtime.nodes rt in
  let now = A.Runtime.now rt in
  let rooted = rooted_counts t in
  let objs = A.Runtime.objects rt in
  let load = Array.make nodes 0 in
  List.iter
    (fun (A.Aobject.Any o) ->
      match Hashtbl.find_opt rooted o.A.Aobject.addr with
      | Some b -> load.(o.A.Aobject.location) <- load.(o.A.Aobject.location) + b
      | None -> ())
    objs;
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    let imax = ref 0 and imin = ref 0 in
    for n = 1 to nodes - 1 do
      if load.(n) > load.(!imax) then imax := n;
      if load.(n) < load.(!imin) then imin := n
    done;
    let gap = load.(!imax) - load.(!imin) in
    if gap < t.cfg.spread_threshold then continue_ := false
    else begin
      (* Best eligible object on the hot node: most rooted threads, but
         strictly fewer than the gap (otherwise the move just swaps the
         imbalance to the other side); lowest address on ties. *)
      let pick = ref None in
      List.iter
        (fun any ->
          match any with
          | A.Aobject.Any o ->
            if
              o.A.Aobject.location = !imax
              && o.A.Aobject.parent = None
              && (not o.A.Aobject.immutable_)
              && cool t o.A.Aobject.addr ~now
            then
              (match Hashtbl.find_opt rooted o.A.Aobject.addr with
              | Some b when b > 0 && b < gap -> (
                match !pick with
                | Some (_, bb) when bb >= b -> ()
                | _ -> pick := Some (any, b))
              | _ -> ()))
        objs;
      match !pick with
      | None -> continue_ := false
      | Some (A.Aobject.Any o, b) ->
        let dest = !imin in
        do_move t o ~dest;
        load.(!imax) <- load.(!imax) - b;
        load.(dest) <- load.(dest) + b;
        decr budget
    end
  done

(* --- daemon -------------------------------------------------------------- *)

let sleep t dt =
  Sim.Fiber.block (fun wake ->
      let ev =
        Sim.Engine.schedule (A.Runtime.engine t.rt) ~delay:dt (fun () ->
            t.sleeper <- None;
            wake ())
      in
      t.sleeper <- Some (ev, wake))

let cycle t =
  let budget = ref t.cfg.move_budget in
  (match t.policy with
  | Affinity -> affinity_pass t ~budget
  | Hybrid ->
    affinity_pass t ~budget;
    spread_pass t ~budget
  | Off | Steal_only -> ());
  (* Fresh observation window each cycle. *)
  List.iter A.Aobject.reset_window_any (A.Runtime.objects t.rt)

let start t =
  match t.policy with
  | Off | Steal_only -> ()
  | Affinity | Hybrid ->
    let h =
      A.Athread.start t.rt ~name:"rebalancer" (fun () ->
          while not t.stopped do
            sleep t t.cfg.interval;
            if not t.stopped then cycle t
          done)
    in
    t.handle <- Some h

let stop t =
  t.stopped <- true;
  (match t.sleeper with
  | Some (ev, wake) ->
    t.sleeper <- None;
    Sim.Engine.cancel (A.Runtime.engine t.rt) ev;
    wake ()
  | None -> ());
  match t.handle with
  | Some h ->
    t.handle <- None;
    A.Athread.join t.rt h
  | None -> ()
