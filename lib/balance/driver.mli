(** Amber-LB front door: wires telemetry, stealing and adaptive placement
    into one handle a program brackets its run with.

    {[
      let lb = Balance.Driver.start rt { Balance.Driver.default_cfg with
                                         policy = Balance.Rebalancer.Hybrid;
                                         steal = true } in
      ... workload ...
      Balance.Driver.stop lb
    ]}

    With [policy = Off] and [steal = false] the handle is inert: zero
    events scheduled, zero RNG draws, zero report lines — the run is
    byte-identical to one that never created the handle.  Otherwise all
    randomness comes from a stream split off the engine's root RNG, so
    the balanced run is itself deterministic per seed. *)

type cfg = {
  policy : Rebalancer.policy;
  steal : bool;  (** enable the stealer alongside any policy *)
  gossip_interval : float;  (** telemetry/steal tick period (seconds) *)
  alpha : float;  (** EWMA weight of a fresh load sample *)
  min_victim_load : float;  (** board load below which nobody is robbed *)
  rebalance : Rebalancer.cfg;
}

val default_cfg : cfg

type t

(** Start the subsystem: schedules the gossip/steal tick and spawns the
    rebalancer daemon (policy permitting).  Fiber context. *)
val start : Amber.Runtime.t -> cfg -> t

(** Cancel the tick and stop/join the daemon so [Cluster.run] can drain.
    Must be called before the main thread returns.  Fiber context.
    Idempotent on an inert handle. *)
val stop : t -> unit

(** Permit the rebalancer to replicate [obj] (see
    {!Rebalancer.allow_replication}).  No-op on an inert handle. *)
val allow_replication : t -> 'a Amber.Aobject.t -> copy:('a -> 'a) -> unit

(** Moves performed by the rebalancer, oldest first. *)
val move_log : t -> Rebalancer.move list

(** The telemetry instance, when the subsystem is live. *)
val loadinfo : t -> Loadinfo.t option
