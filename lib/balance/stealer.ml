module A = Amber

type t = {
  rt : A.Runtime.t;
  li : Loadinfo.t;
  rng : Sim.Rng.t;
  min_victim_load : float;
}

let create rt ~li ~rng ~min_victim_load = { rt; li; rng; min_victim_load }

(* Only unbound threads are stealable: a thread holding invocation frames
   is bound to its object (§3.5) and the residency check would bounce it
   straight back.  An unbound thread runs correctly anywhere.  Topaz
   server fibers are not registered Amber threads and are never taken. *)
let stealable rt tcb =
  match A.Runtime.tstate_of_tcb rt tcb with
  | Some ts -> ts.A.Runtime.frames = []
  | None -> false

let grab t ~victim ~thief =
  let rt = t.rt in
  let vm = A.Runtime.machine rt victim in
  let tm = A.Runtime.machine rt thief in
  (* Re-check at the victim: the thief may have found work, or the
     victim drained, while the steal request was in flight. *)
  if Hw.Machine.ready_length tm > 0 then false
  else
    match Hw.Machine.take_ready vm (stealable rt) with
    | None -> false
    | Some tcb ->
      let ts =
        match A.Runtime.tstate_of_tcb rt tcb with
        | Some ts -> ts
        | None -> assert false
      in
      (* The thread came out of the queue Ready; park it so the standard
         migration flight can transfer and wake it at the thief. *)
      Hw.Machine.park tcb;
      A.Runtime.with_san rt (fun h ->
          h.A.San_hooks.on_steal ~tcb ~victim ~thief);
      let ctrs = A.Runtime.counters rt in
      ctrs.A.Runtime.threads_stolen <- ctrs.A.Runtime.threads_stolen + 1;
      Sim.Span.with_span (A.Runtime.spans rt) Sim.Span.Steal
        ~label:(Hw.Machine.tcb_name tcb) ~arg:thief (fun () ->
          A.Runtime.migrate_thread rt ts ~dest:thief);
      true

let tick t =
  let rt = t.rt in
  let nodes = A.Runtime.nodes rt in
  let ctrs = A.Runtime.counters rt in
  for thief = 0 to nodes - 1 do
    let m = A.Runtime.machine rt thief in
    if Hw.Machine.busy_cpus m < Hw.Machine.cpu_count m
       && Hw.Machine.ready_length m = 0
    then begin
      (* Victim = most-loaded peer on this node's board, provided it is
         over the steal threshold; ties broken by the seeded stream. *)
      let board = Loadinfo.board t.li ~viewer:thief in
      let candidates = ref [] and best = ref t.min_victim_load in
      for v = 0 to nodes - 1 do
        if v <> thief then begin
          let l = Loadinfo.load board.(v) in
          if l > !best +. 1e-9 then begin
            candidates := [ v ];
            best := l
          end
          else if !candidates <> [] && Float.abs (l -. !best) <= 1e-9 then
            candidates := v :: !candidates
        end
      done;
      match List.rev !candidates with
      | [] -> ()
      | cs ->
        let victim = List.nth cs (Sim.Rng.int t.rng (List.length cs)) in
        ctrs.A.Runtime.steal_requests <- ctrs.A.Runtime.steal_requests + 1;
        (* The dequeue must happen at the victim, after a wire delay —
           the handler runs in a server fiber there. *)
        Topaz.Rpc.post (A.Runtime.rpc rt) ~src:thief ~dst:victim
          ~kind:"steal-req" ~size:32 (fun () ->
            ignore (grab t ~victim ~thief : bool))
    end
  done
