(** Load telemetry: a per-node load board fed by EWMA samples and spread
    by seeded gossip.

    Every tick (scheduled by {!Driver}) each node samples its own
    machine — ready-queue depth and occupied CPUs — folds the sample into
    its own board entry with an exponentially-weighted moving average,
    and sends its whole board to one seeded-random peer as a small
    reliable datagram ([kind = "gossip"]).  The receiver merges entries
    by stamp recency, so views of remote nodes converge within a few
    ticks without any broadcast.  Local sampling is free; only the
    gossip datagrams cost wire time and receiver CPU.

    Nothing here runs unless {!Driver.start} activated the balancer, so
    balance-off runs schedule no events and draw no random numbers. *)

type entry = {
  mutable ready : float;  (** EWMA of ready-queue length *)
  mutable running : float;  (** EWMA of occupied CPUs *)
  mutable stamp : float;  (** virtual time the entry was sampled at *)
}

type t

val create : Amber.Runtime.t -> rng:Sim.Rng.t -> alpha:float -> t

(** [viewer]'s current board: one entry per node.  The viewer's own entry
    is at most one tick old; peer entries lag by gossip latency. *)
val board : t -> viewer:int -> entry array

(** Scalar load of an entry: ready + running. *)
val load : entry -> float

(** Cluster-wide remote-invocation fraction as of the last tick. *)
val remote_fraction : t -> float

(** One telemetry round: sample every node's own entry, gossip each board
    to one random peer.  Called from the driver's tick event (event
    context). *)
val tick : t -> unit
