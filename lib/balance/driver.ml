module A = Amber

type cfg = {
  policy : Rebalancer.policy;
  steal : bool;
  gossip_interval : float;
  alpha : float;
  min_victim_load : float;
  rebalance : Rebalancer.cfg;
}

let default_cfg =
  {
    policy = Rebalancer.Off;
    steal = false;
    gossip_interval = 10e-3;
    alpha = 0.5;
    min_victim_load = 1.5;
    rebalance = Rebalancer.default_cfg;
  }

type active = {
  li : Loadinfo.t;
  stealer : Stealer.t option;
  reb : Rebalancer.t;
  mutable tick_ev : Sim.Engine.event_id option;
  mutable stopped : bool;
}

type t = { rt : A.Runtime.t; active : active option }

let start rt cfg =
  let stealing = cfg.steal || cfg.policy = Rebalancer.Steal_only in
  let daemon =
    match cfg.policy with
    | Rebalancer.Affinity | Rebalancer.Hybrid -> true
    | Rebalancer.Off | Rebalancer.Steal_only -> false
  in
  if not (stealing || daemon) then
    (* Fully off: no RNG draws, no events, no report lines — runs are
       byte-identical to a driverless build. *)
    { rt; active = None }
  else begin
    let eng = A.Runtime.engine rt in
    let root = Sim.Rng.split (Sim.Engine.rng eng) in
    let li = Loadinfo.create rt ~rng:(Sim.Rng.split root) ~alpha:cfg.alpha in
    let stealer =
      if stealing then
        Some
          (Stealer.create rt ~li ~rng:(Sim.Rng.split root)
             ~min_victim_load:cfg.min_victim_load)
      else None
    in
    let reb =
      Rebalancer.create rt
        ~policy:(if daemon then cfg.policy else Rebalancer.Off)
        ~cfg:cfg.rebalance
    in
    let a = { li; stealer; reb; tick_ev = None; stopped = false } in
    (* Telemetry: publish each node's own EWMA load view as a gauge when
       a watcher enabled the registry — the exact signal the stealer and
       rebalancer act on, so watch plots show what the policy saw. *)
    let metrics = A.Runtime.metrics rt in
    if Sim.Series.enabled metrics then
      for n = 0 to A.Runtime.nodes rt - 1 do
        Sim.Series.probe metrics ~name:"balance.ewma_load" ~node:n (fun () ->
            Loadinfo.load (Loadinfo.board li ~viewer:n).(n))
      done;
    let rec tick () =
      a.tick_ev <- None;
      if not a.stopped then begin
        Loadinfo.tick li;
        (match a.stealer with Some s -> Stealer.tick s | None -> ());
        a.tick_ev <- Some (Sim.Engine.schedule eng ~delay:cfg.gossip_interval tick)
      end
    in
    a.tick_ev <- Some (Sim.Engine.schedule eng ~delay:cfg.gossip_interval tick);
    Rebalancer.start reb;
    { rt; active = Some a }
  end

let stop t =
  match t.active with
  | None -> ()
  | Some a ->
    a.stopped <- true;
    (match a.tick_ev with
    | Some ev ->
      a.tick_ev <- None;
      Sim.Engine.cancel (A.Runtime.engine t.rt) ev
    | None -> ());
    Rebalancer.stop a.reb

let allow_replication t obj ~copy =
  match t.active with
  | None -> ()
  | Some a -> Rebalancer.allow_replication a.reb obj ~copy

let move_log t =
  match t.active with None -> [] | Some a -> Rebalancer.move_log a.reb

let loadinfo t = match t.active with None -> None | Some a -> Some a.li
