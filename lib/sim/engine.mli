(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and a queue of timestamped events
    (thunks).  Running the engine repeatedly pops the earliest event,
    advances the clock to its timestamp, and executes it.  Events scheduled
    for the same instant run in scheduling order, which makes whole-system
    runs reproducible.

    All simulated state lives in a single OS thread; event thunks must not
    block the host.

    When a {!Choice.t} chooser is installed (see {!set_chooser}), "the
    earliest event" becomes a decision point instead: any pending event
    may be selected to fire next, the clock only ever moves forward, and
    [run]'s [until] horizon is ignored.  With no chooser the behaviour is
    bit-identical to an engine without the seam. *)

type t

(** Identifier for a scheduled event, usable for cancellation. *)
type event_id

val create : ?seed:int64 -> unit -> t

(** Current virtual time, in seconds. *)
val now : t -> float

(** Root random state for this simulation (see {!Rng}). *)
val rng : t -> Rng.t

(** Install (or remove) a controlled-nondeterminism chooser.  Normal
    operation never installs one. *)
val set_chooser : t -> Choice.t option -> unit

val chooser : t -> Choice.t option
val chooser_active : t -> bool

(** Report a dynamic conflict key (object address, lock, descriptor,
    future id) touched by the currently-executing decision.  A no-op
    unless a chooser is installed. *)
val note_access : t -> string -> unit

(** [schedule t ~delay f] runs [f ()] at [now t +. delay].
    Raises [Invalid_argument] if [delay] is negative or NaN.
    [key] is the static conflict key and [label] the human-readable
    description used when a chooser is exploring schedules; both default
    to [""] and are dead weight otherwise. *)
val schedule :
  t -> ?key:string -> ?label:string -> delay:float -> (unit -> unit) -> event_id

(** [schedule_at t ~time f] runs [f ()] at absolute virtual time [time],
    which must not be in the past.  (Under a chooser, a past [time] is
    clamped to the current clock instead: replayed schedules may run the
    scheduling event later than its nominal timestamp.) *)
val schedule_at :
  t -> ?key:string -> ?label:string -> time:float -> (unit -> unit) -> event_id

(** Cancel a pending event.  Cancelling an already-fired or already-cancelled
    event is a no-op. *)
val cancel : t -> event_id -> unit

(** Has the event fired or been cancelled? *)
val is_pending : t -> event_id -> bool

(** Run events until the queue is empty, or until [until] (if given) —
    events strictly after [until] remain queued and the clock is left at
    [until].  Returns the number of events executed.  Under a chooser,
    [until] is ignored and the engine runs to quiescence.

    An exception raised by an event thunk aborts the run and propagates;
    the clock stays at the failing event's timestamp. *)
val run : ?until:float -> t -> int

(** Execute exactly one event if one is pending.  Returns [false] when the
    queue is empty. *)
val step : t -> bool

(** Number of events executed so far. *)
val events_executed : t -> int

(** Number of events currently queued (including cancelled ones not yet
    reaped). *)
val pending : t -> int
