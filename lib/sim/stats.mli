(** Streaming statistics accumulators and simple histograms, used by the
    benchmark harness to summarize latencies and by tests as oracles. *)

(** Named monotonic event counter — the unit of protocol accounting used
    by the RPC reliability layer (retries, timeouts, suppressed
    duplicates) and surfaced through [Stats_report]. *)
module Counter : sig
  type t

  val create : ?name:string -> unit -> t
  val incr : t -> unit

  (** Raises [Invalid_argument] on a negative increment. *)
  val add : t -> int -> unit

  val value : t -> int
  val name : t -> string
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

(** Welford-style mean/variance accumulator that also retains a bounded
    sample reservoir for percentile queries.

    Count, mean, variance, min, max and total are always exact.
    Percentiles are exact while at most [reservoir] samples have been
    added (the default keeps 2048); past that, the retained set is a
    uniform reservoir (Vitter's Algorithm R) driven by a private
    splitmix64 stream seeded from a constant — a deterministic function
    of the add sequence, drawing nothing from [Random] or the simulation
    RNG — so memory stays bounded and runs stay seed-reproducible. *)
module Summary : sig
  type t

  val create : ?reservoir:int -> unit -> t
  (** Raises [Invalid_argument] when [reservoir <= 0]. *)

  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Population variance; 0 for fewer than 2 samples. *)
  val variance : t -> float

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float

  (** Number of samples currently retained for percentile queries
      (= [count] until the reservoir fills). *)
  val retained : t -> int

  (** Reservoir capacity this summary was created with. *)
  val capacity : t -> int

  (** [percentile t p] with [p] in [\[0, 100\]], by nearest-rank on the
      sorted retained samples (exact until the reservoir overflows, an
      estimate after).  Raises [Invalid_argument] on an empty summary or
      out-of-range [p]. *)
  val percentile : t -> float -> float

  val pp : Format.formatter -> t -> unit
end

(** Exact log-bucketed histogram: bucket [i] covers
    [\[lo*growth^i, lo*growth^(i+1))], so percentile queries carry a
    bounded {e relative} error (half a bucket, ~2.5% at the default 5%
    growth) at fixed memory, with no sampling and no randomness — unlike
    [Summary]'s reservoir, results are an exact function of the multiset
    of added values, independent of add order.  Count, total, mean, min
    and max are exact.  Non-positive and sub-[lo] values land in an
    underflow counter (reported as [min]); values beyond the last bucket
    in overflow (reported as [max]). *)
module Log_histogram : sig
  type t

  val default_lo : float
  val default_growth : float
  val default_buckets : int

  val create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> t
  (** Defaults span ~1ns to ~3.6e4 s of latency-shaped data in 640
      buckets (5KiB).  Raises [Invalid_argument] on [lo <= 0],
      [growth <= 1] or [buckets <= 0]. *)

  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val underflow : t -> int
  val overflow : t -> int
  val buckets : t -> int

  val bucket_index : t -> float -> int
  (** [-1] for underflow, [buckets t] for overflow; always consistent
      with [bucket_bounds] ([bucket_bounds t i = (blo, bhi)] implies
      values in [\[blo, bhi)] index to [i]). *)

  val bucket_bounds : t -> int -> float * float
  (** [(lo, hi)] bounds of bucket [i]. *)

  val percentile : t -> float -> float
  (** Nearest-rank percentile, [p] in [\[0, 100\]]: the geometric
      midpoint of the bucket holding the rank, clamped into the exact
      observed [\[min, max\]] (so single-sample and single-bucket
      histograms report exactly).  Raises [Invalid_argument] when empty
      or [p] out of range. *)

  val merge : t -> t -> unit
  (** [merge dst src] adds [src]'s counts into [dst].  Raises
      [Invalid_argument] unless both share the same geometry. *)

  val clear : t -> unit
  val pp : Format.formatter -> t -> unit
end

(** Fixed-bucket histogram over [\[lo, hi)] with uniform bucket width;
    samples outside the range land in underflow/overflow counters. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  val underflow : t -> int
  val overflow : t -> int

  (** [(lo, hi)] bounds of bucket [i]. *)
  val bucket_bounds : t -> int -> float * float

  val pp : Format.formatter -> t -> unit
end
