type point = { at : float; v : float }
type kind = Gauge | Cumulative | Derived

type series = {
  s_name : string;
  s_node : int;
  s_kind : kind;
  buf : point array;
  mutable len : int;
  mutable start : int;
  mutable s_dropped : int;
}

type window = {
  w_name : string;
  w_node : int;
  hist : Stats.Log_histogram.t;
  scale : float;
  p50 : series;
  p95 : series;
  p99 : series;
  rate : series;
  w_reg : t;
}

and inst = Probe of series * (unit -> float) | Window of window

and t = {
  clock : unit -> float;
  mutable capacity : int;
  mutable enabled : bool;
  mutable insts : inst list; (* reverse registration order *)
  mutable last_sample : float;
  mutable samples : int;
}

let create ?(capacity = 4096) ~clock () =
  if capacity <= 0 then invalid_arg "Series.create: capacity";
  { clock; capacity; enabled = false; insts = []; last_sample = 0.0; samples = 0 }

let enabled t = t.enabled

let set_capacity t capacity =
  if capacity <= 0 then invalid_arg "Series.set_capacity";
  t.capacity <- capacity

let enable t =
  if not t.enabled then begin
    t.enabled <- true;
    t.last_sample <- t.clock ()
  end

let mk_series t ~name ~node ~kind =
  {
    s_name = name;
    s_node = node;
    s_kind = kind;
    buf = Array.make t.capacity { at = 0.0; v = 0.0 };
    len = 0;
    start = 0;
    s_dropped = 0;
  }

let push s p =
  let cap = Array.length s.buf in
  if s.len < cap then begin
    s.buf.((s.start + s.len) mod cap) <- p;
    s.len <- s.len + 1
  end
  else begin
    (* Full: overwrite the oldest point and account for the loss, so a
       long run keeps the newest window and the report can say how much
       history fell off the front. *)
    s.buf.(s.start) <- p;
    s.start <- (s.start + 1) mod cap;
    s.s_dropped <- s.s_dropped + 1
  end

let probe t ~name ?(node = -1) f =
  let s = mk_series t ~name ~node ~kind:Gauge in
  t.insts <- Probe (s, f) :: t.insts

let counter t ~name ?(node = -1) f =
  let s = mk_series t ~name ~node ~kind:Cumulative in
  t.insts <- Probe (s, fun () -> float_of_int (f ())) :: t.insts

let window t ~name ?(node = -1) ?(scale = 1.0) () =
  let mk suffix =
    mk_series t ~name:(name ^ "." ^ suffix) ~node ~kind:Derived
  in
  let w =
    {
      w_name = name;
      w_node = node;
      hist = Stats.Log_histogram.create ();
      scale;
      p50 = mk "p50";
      p95 = mk "p95";
      p99 = mk "p99";
      rate = mk "rate";
      w_reg = t;
    }
  in
  t.insts <- Window w :: t.insts;
  w

let observe w v = if w.w_reg.enabled then Stats.Log_histogram.add w.hist v

let sample t =
  (* Idempotent per instant: a closing sample that lands exactly on the
     last tick would otherwise duplicate every series' timestamp. *)
  if t.enabled && not (t.samples > 0 && t.clock () = t.last_sample) then begin
    let now = t.clock () in
    let dt = now -. t.last_sample in
    List.iter
      (fun inst ->
        match inst with
        | Probe (s, f) -> push s { at = now; v = f () }
        | Window w ->
            let h = w.hist in
            let n = Stats.Log_histogram.count h in
            if n > 0 then begin
              let pct p = Stats.Log_histogram.percentile h p *. w.scale in
              push w.p50 { at = now; v = pct 50.0 };
              push w.p95 { at = now; v = pct 95.0 };
              push w.p99 { at = now; v = pct 99.0 }
            end;
            let r = if dt > 0.0 then float_of_int n /. dt else 0.0 in
            push w.rate { at = now; v = r };
            Stats.Log_histogram.clear h)
      (List.rev t.insts);
    t.last_sample <- now;
    t.samples <- t.samples + 1
  end

let all t =
  List.rev
    (List.fold_left
       (fun acc inst ->
         match inst with
         | Probe (s, _) -> s :: acc
         | Window w -> w.rate :: w.p99 :: w.p95 :: w.p50 :: acc)
       [] (List.rev t.insts))

let name s = s.s_name
let node s = s.s_node
let kind s = s.s_kind
let length s = s.len
let dropped s = s.s_dropped

let points s =
  let cap = Array.length s.buf in
  List.init s.len (fun i -> s.buf.((s.start + i) mod cap))

let iter_points s f =
  let cap = Array.length s.buf in
  for i = 0 to s.len - 1 do
    f s.buf.((s.start + i) mod cap)
  done

let last s =
  if s.len = 0 then None
  else Some s.buf.((s.start + s.len - 1) mod Array.length s.buf)

let qualified s = if s.s_node < 0 then s.s_name else Printf.sprintf "%s@%d" s.s_name s.s_node

let find t q =
  let rec scan = function
    | [] -> None
    | s :: rest -> if qualified s = q then Some s else scan rest
  in
  scan (all t)

let total_dropped t =
  List.fold_left (fun acc s -> acc + s.s_dropped) 0 (all t)

let samples_taken t = t.samples

let kind_label = function
  | Gauge -> "gauge"
  | Cumulative -> "counter"
  | Derived -> "derived"
