(** Structured simulation trace.

    A bounded ring buffer of timestamped records.  Tracing is off by default
    and costs one branch per call when disabled; tests and the CLI enable it
    to inspect protocol-level event sequences (invocations, migrations,
    packets, faults).

    Overflow semantics: the ring keeps the {e newest} [capacity] records and
    silently drops the oldest ([dropped] counts the casualties).  Category
    filters ({!by_category}) therefore run over the surviving window only —
    after overflow, a category's earliest records are gone even though later
    records of other categories survive. *)

type record = {
  time : float;
  category : string;  (** e.g. "invoke", "move", "net", "dsm" *)
  detail : string;
  node : int;  (** emitting node, -1 if unknown *)
  cpu : int;  (** CPU the emitting thread was running on, -1 if unknown *)
  tid : int;  (** TCB id of the emitting thread, -1 if unknown *)
  obj : int;  (** related object address, -1 if none *)
  span : int;  (** innermost open span id at emit time, -1 if none *)
  parent : int;  (** that span's parent id, -1 if none *)
}

type t

val create : ?capacity:int -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** Record an event (no-op when disabled).  [detail] is lazy so that
    disabled traces never build strings.  The structured fields default
    to [-1] ("unknown") so existing emitters need not supply them. *)
val emit :
  t ->
  time:float ->
  ?node:int ->
  ?cpu:int ->
  ?tid:int ->
  ?obj:int ->
  ?span:int ->
  ?parent:int ->
  category:string ->
  detail:string Lazy.t ->
  unit ->
  unit

(** Records in chronological order (oldest first). *)
val records : t -> record list

(** Records whose category equals [category], over the surviving window. *)
val by_category : t -> string -> record list

val clear : t -> unit

(** Number of records currently stored (≤ capacity). *)
val length : t -> int

(** Number of records lost to ring overflow so far. *)
val dropped : t -> int

val pp_record : Format.formatter -> record -> unit
