module Counter = struct
  type t = { name : string; mutable n : int }

  let create ?(name = "") () = { name; n = 0 }
  let incr t = t.n <- t.n + 1

  let add t k =
    if k < 0 then invalid_arg "Counter.add: negative increment";
    t.n <- t.n + k

  let value t = t.n
  let name t = t.name
  let reset t = t.n <- 0

  let pp ppf t =
    if t.name = "" then Format.fprintf ppf "%d" t.n
    else Format.fprintf ppf "%s=%d" t.name t.n
end

module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
    mutable samples : float array;
    mutable sample_count : int;
    mutable sorted : bool;
    reservoir : int;
    mutable rstate : int64;
  }

  let default_reservoir = 2048

  let create ?(reservoir = default_reservoir) () =
    if reservoir <= 0 then invalid_arg "Summary.create: reservoir";
    {
      n = 0;
      mean = 0.0;
      m2 = 0.0;
      min = Float.infinity;
      max = Float.neg_infinity;
      total = 0.0;
      samples = [||];
      sample_count = 0;
      sorted = true;
      reservoir;
      rstate = 0x1234_5678_9ABC_DEF0L;
    }

  (* Private splitmix64 stream, seeded from a constant and advanced once
     per overflowing [add]: a pure function of the add sequence, so
     percentiles stay seed-reproducible and no engine RNG is drawn. *)
  let rand_below t bound =
    t.rstate <- Int64.add t.rstate 0x9E3779B97F4A7C15L;
    let z = t.rstate in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int bound))

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x;
    if t.sample_count < t.reservoir then begin
      if t.sample_count >= Array.length t.samples then begin
        let cap = min t.reservoir (max 64 (2 * Array.length t.samples)) in
        let bigger = Array.make cap 0.0 in
        Array.blit t.samples 0 bigger 0 t.sample_count;
        t.samples <- bigger
      end;
      t.samples.(t.sample_count) <- x;
      t.sample_count <- t.sample_count + 1;
      t.sorted <- false
    end
    else begin
      (* Algorithm R: the reservoir is full; keep the new sample with
         probability reservoir/n, evicting a uniformly-chosen slot. *)
      let j = rand_below t t.n in
      if j < t.reservoir then begin
        t.samples.(j) <- x;
        t.sorted <- false
      end
    end

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total
  let retained t = t.sample_count
  let capacity t = t.reservoir

  let percentile t p =
    if t.n = 0 then invalid_arg "Summary.percentile: empty";
    if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: range";
    if not t.sorted then begin
      let live = Array.sub t.samples 0 t.sample_count in
      Array.sort compare live;
      Array.blit live 0 t.samples 0 t.sample_count;
      t.sorted <- true
    end;
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.sample_count)) - 1
    in
    let rank = Stdlib.max 0 (Stdlib.min (t.sample_count - 1) rank) in
    t.samples.(rank)

  let pp ppf t =
    if t.n = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.n
        t.mean (stddev t) t.min t.max
end

module Log_histogram = struct
  type t = {
    lo : float;
    growth : float;
    inv_log_growth : float;
    counts : int array;
    mutable underflow : int;
    mutable overflow : int;
    mutable n : int;
    mutable total : float;
    mutable min : float;
    mutable max : float;
  }

  let default_lo = 1e-9
  let default_growth = 1.05
  let default_buckets = 640

  let create ?(lo = default_lo) ?(growth = default_growth)
      ?(buckets = default_buckets) () =
    if not (lo > 0.0) then invalid_arg "Log_histogram.create: lo";
    if not (growth > 1.0) then invalid_arg "Log_histogram.create: growth";
    if buckets <= 0 then invalid_arg "Log_histogram.create: buckets";
    {
      lo;
      growth;
      inv_log_growth = 1.0 /. log growth;
      counts = Array.make buckets 0;
      underflow = 0;
      overflow = 0;
      n = 0;
      total = 0.0;
      min = Float.infinity;
      max = Float.neg_infinity;
    }

  let buckets t = Array.length t.counts

  (* Bucket [i] covers [lo*growth^i, lo*growth^(i+1)).  [-1] is the
     underflow range (everything below [lo], including non-positive
     values) and [buckets] the overflow range. *)
  let bucket_index t x =
    if not (x >= t.lo) then -1
    else begin
      let i = int_of_float (Float.floor (log (x /. t.lo) *. t.inv_log_growth)) in
      (* Float.floor(log ...) can land one bucket off right at a
         boundary; nudge so [bucket_bounds] stays authoritative. *)
      let nb = Array.length t.counts in
      let i = Stdlib.max 0 (Stdlib.min nb i) in
      let lo_i = t.lo *. (t.growth ** float_of_int i) in
      let i = if x < lo_i then i - 1 else i in
      let i =
        if i < nb && x >= t.lo *. (t.growth ** float_of_int (i + 1)) then i + 1
        else i
      in
      Stdlib.min nb i
    end

  let bucket_bounds t i =
    if i < 0 || i >= Array.length t.counts then
      invalid_arg "Log_histogram.bucket_bounds";
    ( t.lo *. (t.growth ** float_of_int i),
      t.lo *. (t.growth ** float_of_int (i + 1)) )

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    let i = bucket_index t x in
    if i < 0 then t.underflow <- t.underflow + 1
    else if i >= Array.length t.counts then t.overflow <- t.overflow + 1
    else t.counts.(i) <- t.counts.(i) + 1

  let count t = t.n
  let total t = t.total
  let min t = t.min
  let max t = t.max
  let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n
  let underflow t = t.underflow
  let overflow t = t.overflow

  let percentile t p =
    if t.n = 0 then invalid_arg "Log_histogram.percentile: empty";
    if p < 0.0 || p > 100.0 then invalid_arg "Log_histogram.percentile: range";
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)))
    in
    let clamp v = Stdlib.max t.min (Stdlib.min t.max v) in
    if rank <= t.underflow then clamp t.lo
    else begin
      let seen = ref t.underflow in
      let result = ref None in
      let nb = Array.length t.counts in
      let i = ref 0 in
      while !result = None && !i < nb do
        seen := !seen + t.counts.(!i);
        if rank <= !seen then begin
          let blo, bhi = bucket_bounds t !i in
          result := Some (clamp (sqrt (blo *. bhi)))
        end;
        incr i
      done;
      match !result with Some v -> v | None -> t.max
    end

  let merge dst src =
    if
      dst.lo <> src.lo || dst.growth <> src.growth
      || Array.length dst.counts <> Array.length src.counts
    then invalid_arg "Log_histogram.merge: geometry mismatch";
    Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.underflow <- dst.underflow + src.underflow;
    dst.overflow <- dst.overflow + src.overflow;
    dst.n <- dst.n + src.n;
    dst.total <- dst.total +. src.total;
    if src.min < dst.min then dst.min <- src.min;
    if src.max > dst.max then dst.max <- src.max

  let clear t =
    Array.fill t.counts 0 (Array.length t.counts) 0;
    t.underflow <- 0;
    t.overflow <- 0;
    t.n <- 0;
    t.total <- 0.0;
    t.min <- Float.infinity;
    t.max <- Float.neg_infinity

  let pp ppf t =
    if t.n = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf "n=%d mean=%.6g min=%.6g max=%.6g p50=%.6g p99=%.6g"
        t.n (mean t) t.min t.max (percentile t 50.0) (percentile t 99.0)
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array;
    mutable underflow : int;
    mutable overflow : int;
    mutable n : int;
  }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets";
    if not (hi > lo) then invalid_arg "Histogram.create: bounds";
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      counts = Array.make buckets 0;
      underflow = 0;
      overflow = 0;
      n = 0;
    }

  let add t x =
    t.n <- t.n + 1;
    if x < t.lo then t.underflow <- t.underflow + 1
    else if x >= t.hi then t.overflow <- t.overflow + 1
    else begin
      let i = int_of_float ((x -. t.lo) /. t.width) in
      let i = Stdlib.min (Array.length t.counts - 1) i in
      t.counts.(i) <- t.counts.(i) + 1
    end

  let count t = t.n
  let bucket_counts t = Array.copy t.counts
  let underflow t = t.underflow
  let overflow t = t.overflow

  let bucket_bounds t i =
    if i < 0 || i >= Array.length t.counts then
      invalid_arg "Histogram.bucket_bounds";
    (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width))

  let pp ppf t =
    Format.fprintf ppf "hist n=%d under=%d over=%d [" t.n t.underflow
      t.overflow;
    Array.iteri
      (fun i c -> if i > 0 then Format.fprintf ppf "; %d" c
        else Format.fprintf ppf "%d" c)
      t.counts;
    Format.fprintf ppf "]"
end
