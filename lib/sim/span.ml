type kind =
  | Invoke_local
  | Invoke_remote
  | Replica_read
  | Chase_hop
  | Thread_flight
  | Net_flight
  | Rpc_call
  | Rpc_server
  | Object_move
  | Replica_install
  | Invalidate
  | Lock_wait
  | Cond_wait
  | Barrier_wait
  | Join_wait
  | Future_wait
  | Async_invoke
  | Steal
  | Rebalance
  | Serve_request

let kind_name = function
  | Invoke_local -> "invoke.local"
  | Invoke_remote -> "invoke.remote"
  | Replica_read -> "invoke.replica"
  | Chase_hop -> "chase.hop"
  | Thread_flight -> "net.thread_flight"
  | Net_flight -> "net.flight"
  | Rpc_call -> "rpc.call"
  | Rpc_server -> "rpc.server"
  | Object_move -> "move.object"
  | Replica_install -> "coherence.install"
  | Invalidate -> "coherence.invalidate"
  | Lock_wait -> "wait.lock"
  | Cond_wait -> "wait.cond"
  | Barrier_wait -> "wait.barrier"
  | Join_wait -> "wait.join"
  | Future_wait -> "wait.future"
  | Async_invoke -> "invoke.async"
  | Steal -> "balance.steal"
  | Rebalance -> "balance.move"
  | Serve_request -> "serve.request"

type span = {
  id : int;
  parent : int;
  async : bool;
      (* detached from the parent's interval: a wire flight or a one-way
         message handler, causally linked but not temporally contained *)
  mutable kind : kind;
  label : string;
  tag : string;
      (* free-form attribute dimension (e.g. a request class); "" for the
         untagged default, so tag-free traces are unchanged *)
  node : int;
  tid : int;
  obj : int;
  mutable arg : int;
  t0 : float;
  mutable t1 : float;
}

type t = {
  clock : unit -> float;
  current_tid : unit -> int;
  current_node : unit -> int;
  mutable enabled : bool;
  mutable buf : span array;  (* spans in start order; ids are 1-based *)
  mutable n : int;
  stacks : (int, int list ref) Hashtbl.t;  (* tid -> open span ids *)
}

let dummy =
  {
    id = 0;
    parent = 0;
    async = false;
    kind = Invoke_local;
    label = "";
    tag = "";
    node = -1;
    tid = -1;
    obj = -1;
    arg = -1;
    t0 = 0.0;
    t1 = 0.0;
  }

let create ~clock ~current_tid ~current_node () =
  {
    clock;
    current_tid;
    current_node;
    enabled = false;
    buf = [||];
    n = 0;
    stacks = Hashtbl.create 64;
  }

let disabled_instance =
  lazy
    (create
       ~clock:(fun () -> 0.0)
       ~current_tid:(fun () -> -1)
       ~current_node:(fun () -> -1)
       ())

let disabled () = Lazy.force disabled_instance
let set_enabled t flag = t.enabled <- flag
let enabled t = t.enabled

let stack t tid =
  match Hashtbl.find_opt t.stacks tid with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace t.stacks tid s;
      s

let find t id = if id >= 1 && id <= t.n then Some t.buf.(id - 1) else None

let append t s =
  if t.n >= Array.length t.buf then begin
    let cap = Stdlib.max 256 (2 * Array.length t.buf) in
    let bigger = Array.make cap dummy in
    Array.blit t.buf 0 bigger 0 t.n;
    t.buf <- bigger
  end;
  t.buf.(t.n) <- s;
  t.n <- t.n + 1

let start t kind ?(label = "") ?(tag = "") ?(obj = -1) ?(arg = -1)
    ?(async = false) ?parent () =
  if not t.enabled then 0
  else begin
    let tid = t.current_tid () in
    let st = stack t tid in
    let parent =
      match parent with
      | Some p -> p
      | None -> ( match !st with [] -> 0 | p :: _ -> p)
    in
    let id = t.n + 1 in
    append t
      {
        id;
        parent;
        async;
        kind;
        label;
        tag;
        node = t.current_node ();
        tid;
        obj;
        arg;
        t0 = t.clock ();
        t1 = -1.0;
      };
    st := id :: !st;
    id
  end

let start_flow t kind ?(label = "") ?(tag = "") ?(obj = -1) ?(arg = -1) ?tid
    ?parent () =
  if not t.enabled then 0
  else begin
    let tid = match tid with Some v -> v | None -> t.current_tid () in
    let parent =
      match parent with
      | Some p -> p
      | None -> ( match !(stack t tid) with [] -> 0 | p :: _ -> p)
    in
    let id = t.n + 1 in
    append t
      {
        id;
        parent;
        async = true;
        kind;
        label;
        tag;
        node = t.current_node ();
        tid;
        obj;
        arg;
        t0 = t.clock ();
        t1 = -1.0;
      };
    id
  end

let finish t id =
  if id > 0 then
    match find t id with
    | None -> ()
    | Some s ->
        if s.t1 < 0.0 then begin
          s.t1 <- t.clock ();
          (* Pop it (and anything opened above it that an exception
             unwound past) off its thread's stack; flow spans are never
             on a stack, so this is a no-op for them. *)
          let st = stack t s.tid in
          if List.mem id !st then begin
            let rec pop = function
              | [] -> []
              | x :: rest -> if x = id then rest else pop rest
            in
            st := pop !st
          end
        end

let set_kind t id kind =
  if id > 0 then match find t id with Some s -> s.kind <- kind | None -> ()

let set_arg t id arg =
  if id > 0 then match find t id with Some s -> s.arg <- arg | None -> ()

let with_span t kind ?label ?tag ?obj ?arg f =
  let id = start t kind ?label ?tag ?obj ?arg () in
  match f () with
  | v ->
      finish t id;
      v
  | exception e ->
      finish t id;
      raise e

(* Close every span still open on [tid]'s stack: a crash-killed thread
   never unwinds its own spans, so the recovery path retires them at the
   kill instant to keep traces balanced. *)
let finish_all_for t ~tid =
  match Hashtbl.find_opt t.stacks tid with
  | None -> ()
  | Some st ->
      List.iter
        (fun id ->
          match find t id with
          | Some s when s.t1 < 0.0 -> s.t1 <- t.clock ()
          | Some _ | None -> ())
        !st;
      st := []

let current t =
  if not t.enabled then 0
  else
    match Hashtbl.find_opt t.stacks (t.current_tid ()) with
    | Some { contents = p :: _ } -> p
    | _ -> 0

let parent_of t id = match find t id with Some s -> s.parent | None -> 0

let spans t =
  let out = ref [] in
  for i = t.n - 1 downto 0 do
    out := t.buf.(i) :: !out
  done;
  !out

let count t = t.n

let clear t =
  t.buf <- [||];
  t.n <- 0;
  Hashtbl.reset t.stacks
