(* Controlled nondeterminism: every scheduling decision the simulator
   makes — which pending event fires next, which ready fiber a machine
   dispatches, whether the medium misbehaves on a given packet — is a
   *choice point*.  In normal operation there is exactly one answer
   (earliest event by [(time, seq)], FIFO fiber order, the seeded fault
   dice), so no chooser is consulted and the seam costs one branch.
   When a chooser is installed (see {!Modelcheck} in the analysis
   library) the same decision points are put to it instead, which turns
   the deterministic simulator into a systematic schedule explorer. *)

type domain = Event | Fiber | Fault

let domain_name = function
  | Event -> "event"
  | Fiber -> "fiber"
  | Fault -> "fault"

let domain_of_name = function
  | "event" -> Some Event
  | "fiber" -> Some Fiber
  | "fault" -> Some Fault
  | _ -> None

type candidate = {
  dom : domain;
  ident : string;
      (* stable identity of the alternative within its decision state:
         event ids, fiber tids and fault verbs replay identically along a
         common prefix, so a chooser can recognise an alternative it has
         deferred (sleep sets) across runs *)
  key : string;
      (* static conflict key — which protocol state the alternative
         touches a priori.  "" means unknown: conservative choosers must
         treat it as conflicting with everything *)
  label : string;  (* human-readable, for schedule files and logs *)
}

type t = {
  pick : domain -> candidate array -> int;
      (* called only with >= 2 candidates; must return a valid index *)
  faults : bool;
      (* offer drop/dup alternatives at fault choice points; when false
         the medium always delivers *)
  note_access : string -> unit;
      (* dynamic conflict vocabulary: the runtime reports which objects,
         locks, descriptors and futures the currently-executing decision
         touched (the AmberSan happens-before vocabulary), so the
         explorer can compute commutativity from observed behaviour
         rather than from static keys alone *)
}

let candidate ?(key = "") ?(label = "") ~dom ~ident () = { dom; ident; key; label }
