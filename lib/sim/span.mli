(** Causal span collector.

    A span is a timed interval of virtual time attributed to one simulated
    thread and one kind of runtime activity (an invocation, a forwarding
    hop, a network flight, a lock wait, ...).  Spans nest: each span records
    the id of the span that was open on the starting thread at the time it
    began, so a whole run forms a forest of causally-linked intervals that
    exporters can render as Perfetto tracks and the critical-path analyzer
    can walk.

    Collection is off by default and costs one branch per call site when
    disabled.  The collector never consumes virtual time and never draws
    from any random stream; span ids are a monotone counter over the
    (deterministic) event sequence, so traces are reproducible per seed. *)

type kind =
  | Invoke_local  (** invocation served on the caller's node *)
  | Invoke_remote  (** invocation that moved the thread to the object *)
  | Replica_read  (** [~mode:Read] invocation served from a local replica *)
  | Chase_hop  (** one hop of a forwarding-address chase *)
  | Thread_flight  (** a thread's wire transfer between nodes *)
  | Net_flight  (** an RPC request/reply or datagram wire leg *)
  | Rpc_call  (** client side of a Topaz RPC, send to reply *)
  | Rpc_server  (** server-side execution of an RPC work function *)
  | Object_move  (** [Mobility.move_to], capture to installed *)
  | Replica_install  (** coherence grant: snapshot capture + shipping *)
  | Invalidate  (** write-invalidate recall of all replicas *)
  | Lock_wait  (** blocked in [Sync.Lock.acquire] *)
  | Cond_wait  (** blocked in [Sync.Condition.wait] *)
  | Barrier_wait  (** blocked in [Sync.Barrier.pass] *)
  | Join_wait  (** [Athread.join], entry to result *)
  | Future_wait  (** blocked in [Future.await] on an unresolved future *)
  | Async_invoke
      (** the detached execution of an [invoke_async]: carried by a helper
          thread, causally parented to the issuer's span but overlapping
          the issuer's continued compute ([arg] = the future id) *)
  | Steal  (** a successful cross-node thread steal *)
  | Rebalance  (** one object move/replicate decided by the rebalancer *)
  | Serve_request
      (** one admitted serving request, admission to completion; [tag]
          carries the request class so the profiler can break the SLO
          percentiles down per class *)

val kind_name : kind -> string
(** Stable dotted name, e.g. ["invoke.remote"] — used by exporters, the
    profiler report and the trace digests. *)

type span = {
  id : int;  (** 1-based, dense, in start order; 0 is "no span" *)
  parent : int;  (** enclosing span id, 0 at the root *)
  async : bool;
      (** causally linked to [parent] but not temporally contained in it: a
          wire flight, or the server span of a one-way [post] whose handler
          runs after the poster moved on.  Synchronous spans (async =
          false) always nest inside their parent's interval. *)
  mutable kind : kind;
  label : string;
  tag : string;
      (** free-form attribute dimension (e.g. a serving request class);
          [""] — the default everywhere — keeps tag-free traces and
          profiles byte-identical to builds predating the field *)
  node : int;  (** node where the span started, -1 if unknown *)
  tid : int;  (** TCB id of the owning thread, -1 if unknown *)
  obj : int;  (** object address, -1 if not object-related *)
  mutable arg : int;  (** kind-specific: hop/destination node, joined tid *)
  t0 : float;
  mutable t1 : float;  (** -1 while the span is open *)
}

type t

val create :
  clock:(unit -> float) ->
  current_tid:(unit -> int) ->
  current_node:(unit -> int) ->
  unit ->
  t
(** The callbacks supply virtual time and the identity of the simulated
    thread executing the caller ([-1] outside any thread, e.g. in a timer
    event). *)

val disabled : unit -> t
(** A shared collector that records nothing; the default wired into
    subsystems whose owner did not pass one. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val start :
  t ->
  kind ->
  ?label:string ->
  ?tag:string ->
  ?obj:int ->
  ?arg:int ->
  ?async:bool ->
  ?parent:int ->
  unit ->
  int
(** Open a synchronous span on the current thread: its parent is the
    thread's innermost open span (or [parent] when given — an RPC server
    fiber parents its span to the remote caller's) and it becomes the new
    innermost one.  Pass [~async:true] when the parent is only a causal
    origin (a one-way post handler).  Returns the span id, or 0 when
    collection is disabled. *)

val start_flow :
  t ->
  kind ->
  ?label:string ->
  ?tag:string ->
  ?obj:int ->
  ?arg:int ->
  ?tid:int ->
  ?parent:int ->
  unit ->
  int
(** Open a detached span (a wire flight, typically): it is parented like
    {!start} (or to [parent] / [tid]'s innermost span when given) but is
    {e not} pushed on any stack, so it may outlive the code region that
    started it and be finished from a delivery callback. *)

val finish : t -> int -> unit
(** Close a span at the current clock.  Idempotent; a no-op for id 0, so
    call sites need no disabled-check of their own.  Retransmit-style
    callbacks may finish the same flight several times — only the first
    delivery timestamps it. *)

val set_kind : t -> int -> kind -> unit
(** Reclassify an open span (e.g. an invocation discovered to be remote
    only after the chase settles). *)

val set_arg : t -> int -> int -> unit

val with_span :
  t ->
  kind ->
  ?label:string ->
  ?tag:string ->
  ?obj:int ->
  ?arg:int ->
  (unit -> 'a) ->
  'a
(** [start]/[finish] around a thunk, exception-safe. *)

(** Close every span still open on [tid]'s stack at the current virtual
    time.  A crash-killed thread never unwinds its own spans; the recovery
    path retires them at the kill instant to keep traces balanced. *)
val finish_all_for : t -> tid:int -> unit

val current : t -> int
(** Innermost open span of the current thread, 0 if none. *)

val parent_of : t -> int -> int
(** Parent id of a span, 0 for roots and unknown ids. *)

val find : t -> int -> span option
val spans : t -> span list
(** All spans (finished and still open) in start order. *)

val count : t -> int
val clear : t -> unit
