(** Controlled-nondeterminism interface.

    The simulator has three kinds of scheduling decision points:

    - {b Event}: which pending engine event fires next.  Normally the
      earliest by [(time, seq)]; a chooser may fire any pending event,
      which models arbitrary relative timing of deliveries and timers.
    - {b Fiber}: which ready fiber a machine dispatches next.  Normally
      FIFO (or the installed policy's order).
    - {b Fault}: whether the medium delivers, drops or duplicates a
      given retransmittable packet.  Normally driven by the seeded
      fault dice; under a chooser, faults become explorable branches.

    With no chooser installed every decision point takes its normal
    single answer and the seam is a dead branch — bit-identical to a
    build without it (verified by the determinism sweeps).  The
    schedule-space model checker ({!Modelcheck} in the analysis
    library) installs a chooser to drive depth-first systematic
    exploration with partial-order reduction. *)

type domain = Event | Fiber | Fault

val domain_name : domain -> string
val domain_of_name : string -> domain option

type candidate = {
  dom : domain;
  ident : string;
      (** stable identity of the alternative along a replayed prefix
          (event id, fiber tid, fault verb) *)
  key : string;
      (** static conflict key; [""] = unknown, conflicts with all *)
  label : string;  (** human-readable description *)
}

type t = {
  pick : domain -> candidate array -> int;
      (** called only when there are at least two candidates; must
          return a valid index into the array *)
  faults : bool;
      (** when false, fault choice points are not offered at all *)
  note_access : string -> unit;
      (** dynamic conflict keys observed while the chosen alternative
          executes (same-object invokes, same-lock acquires,
          same-descriptor coherence ops — the AmberSan happens-before
          vocabulary) *)
}

val candidate :
  ?key:string -> ?label:string -> dom:domain -> ident:string -> unit -> candidate
