(** Windowed time-series registry for continuous virtual-time telemetry.

    A registry holds {e instruments} — polled gauges/counters and
    push-style latency windows — and turns them into bounded per-series
    point rings each time {!sample} runs (the watch layer schedules that
    on a recurring virtual-time tick).  Everything here is deterministic
    and RNG-free: points are a pure function of the instrument values at
    each tick, percentiles come from exact {!Stats.Log_histogram}s, and
    a disabled registry ({!enabled} [= false], the default) does no work
    at all — {!sample} and {!observe} return after one branch, so an
    attached-but-never-enabled registry keeps runs byte-identical.

    Ring overflow drops the {e oldest} points and counts the loss
    ({!dropped} / {!total_dropped}), which the stats report surfaces so
    silent truncation is visible. *)

type t
(** A registry.  Created disabled. *)

type point = { at : float; v : float }
(** One sample: virtual time [at] (seconds), value [v]. *)

(** [Gauge] — instantaneous polled value.  [Cumulative] — monotonic
    polled counter (consumers diff it for rates).  [Derived] — computed
    from a latency window at sample time (percentiles, rate). *)
type kind = Gauge | Cumulative | Derived

type series
(** One named time series; points live in a bounded ring. *)

type window
(** Push-style latency window: {!observe}d values accumulate in a
    log-bucketed histogram that each {!sample} converts into [.p50],
    [.p95], [.p99] (only when the window saw data) and [.rate] (always)
    points, then resets — so the derived series describe the interval
    since the previous tick, not the whole run. *)

val create : ?capacity:int -> clock:(unit -> float) -> unit -> t
(** [capacity] bounds every series ring (default 4096 points).  [clock]
    supplies virtual time for point stamps. *)

val enabled : t -> bool
val enable : t -> unit

val set_capacity : t -> int -> unit
(** Ring capacity for series registered {e after} this call; existing
    rings keep theirs.  Raises [Invalid_argument] on [<= 0]. *)

val probe : t -> name:string -> ?node:int -> (unit -> float) -> unit
(** Register a polled gauge; [f] runs once per {!sample}.  [node] tags
    the series with its home node ([-1], the default, = cluster-wide). *)

val counter : t -> name:string -> ?node:int -> (unit -> int) -> unit
(** Polled monotonic counter ({!Cumulative}). *)

val window : t -> name:string -> ?node:int -> ?scale:float -> unit -> window
(** Register a latency window.  Derived points are multiplied by
    [scale] (e.g. [1e3] to report seconds as milliseconds). *)

val observe : window -> float -> unit
(** Record one value into the window.  No-op while the registry is
    disabled. *)

val sample : t -> unit
(** Take one sample of every instrument, in registration order.
    Idempotent per virtual instant (a second call at the same clock
    reading is a no-op, so tick + closing samples never collide).  No-op
    while disabled. *)

val all : t -> series list
(** Every series, in registration order (a window contributes its four
    derived series in p50/p95/p99/rate order). *)

val find : t -> string -> series option
(** Look up by qualified name: ["name"] for cluster-wide series,
    ["name\@N"] for node-tagged ones. *)

val name : series -> string
val qualified : series -> string
val node : series -> int
val kind : series -> kind
val kind_label : kind -> string
val length : series -> int
val points : series -> point list
val iter_points : series -> (point -> unit) -> unit
val last : series -> point option
val dropped : series -> int

val total_dropped : t -> int
(** Points lost to ring overflow, summed over all series. *)

val samples_taken : t -> int
