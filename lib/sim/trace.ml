type record = {
  time : float;
  category : string;
  detail : string;
  node : int;
  cpu : int;
  tid : int;
  obj : int;
  span : int;
  parent : int;
}

type t = {
  mutable enabled : bool;
  capacity : int;
  buf : record option array;
  mutable next : int;  (* next write position *)
  mutable count : int; (* total records written (monotone) *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  { enabled = false; capacity; buf = Array.make capacity None; next = 0;
    count = 0 }

let set_enabled t flag = t.enabled <- flag
let enabled t = t.enabled

let emit t ~time ?(node = -1) ?(cpu = -1) ?(tid = -1) ?(obj = -1) ?(span = -1)
    ?(parent = -1) ~category ~detail () =
  if t.enabled then begin
    t.buf.(t.next) <-
      Some
        {
          time;
          category;
          detail = Lazy.force detail;
          node;
          cpu;
          tid;
          obj;
          span;
          parent;
        };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- t.count + 1
  end

let records t =
  let stored = min t.count t.capacity in
  let start =
    if t.count <= t.capacity then 0 else t.next
  in
  let out = ref [] in
  for i = stored - 1 downto 0 do
    match t.buf.((start + i) mod t.capacity) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let by_category t category =
  List.filter (fun r -> String.equal r.category category) (records t)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let length t = min t.count t.capacity
let dropped t = max 0 (t.count - t.capacity)

let pp_record ppf r =
  Format.fprintf ppf "[%.6f] %-8s %s" r.time r.category r.detail;
  if r.node >= 0 || r.tid >= 0 || r.span >= 0 then begin
    Format.fprintf ppf "  (";
    let sep = ref "" in
    let field name v =
      if v >= 0 then begin
        Format.fprintf ppf "%s%s%d" !sep name v;
        sep := " "
      end
    in
    field "n" r.node;
    field "c" r.cpu;
    field "t" r.tid;
    field "o" r.obj;
    field "s" r.span;
    field "p" r.parent;
    Format.fprintf ppf ")"
  end
