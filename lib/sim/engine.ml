type event = {
  id : int;
  time : float;
      (* nominal timestamp.  Under a chooser an event may fire "late"
         (after the clock has been advanced past it by another branch of
         the exploration); the clock never moves backwards. *)
  key : string;
  label : string;
  mutable live : bool;
  thunk : unit -> unit;
}

type event_id = int

type t = {
  queue : event Event_queue.t;
  mutable clock : float;
  mutable next_id : int;
  mutable executed : int;
  (* Pending (not yet fired, not cancelled) events by id.  Entries are
     removed when an event fires or is cancelled. *)
  live_ids : (int, event) Hashtbl.t;
  root_rng : Rng.t;
  (* Controlled nondeterminism (see {!Choice}): [None] in normal
     operation — every decision point takes its single normal answer and
     this field costs one dead branch per step. *)
  mutable chooser : Choice.t option;
}

let create ?(seed = 0x5EEDL) () =
  {
    queue = Event_queue.create ();
    clock = 0.0;
    next_id = 0;
    executed = 0;
    live_ids = Hashtbl.create 256;
    root_rng = Rng.make seed;
    chooser = None;
  }

let now t = t.clock
let rng t = t.root_rng
let set_chooser t c = t.chooser <- c
let chooser t = t.chooser
let chooser_active t = t.chooser <> None

let note_access t k =
  match t.chooser with None -> () | Some c -> c.Choice.note_access k

let schedule_at t ?(key = "") ?(label = "") ~time thunk =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  let time =
    if time >= t.clock then time
    else if t.chooser <> None then
      (* A replayed schedule may have run the scheduling event later than
         its nominal timestamp; absolute-time follow-ups land "now". *)
      t.clock
    else
      invalid_arg
        (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
           t.clock)
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  let ev = { id; time; key; label; live = true; thunk } in
  Hashtbl.replace t.live_ids id ev;
  Event_queue.add t.queue ~time ev;
  id

let schedule t ?key ?label ~delay thunk =
  if Float.is_nan delay || delay < 0.0 then
    invalid_arg "Engine.schedule: negative or NaN delay";
  schedule_at t ?key ?label ~time:(t.clock +. delay) thunk

let cancel t id =
  match Hashtbl.find_opt t.live_ids id with
  | None -> ()
  | Some ev ->
    ev.live <- false;
    Hashtbl.remove t.live_ids id

let is_pending t id = Hashtbl.mem t.live_ids id

let fire t time ev =
  if time > t.clock then t.clock <- time;
  ev.live <- false;
  Hashtbl.remove t.live_ids ev.id;
  t.executed <- t.executed + 1;
  ev.thunk ()

(* Chooser-driven step: any pending event may fire next, not just the
   earliest — the chooser explores relative orderings of deliveries and
   timers that the timestamps of one particular run would fix.  Fired
   events are marked dead in place; their heap entries are skipped
   lazily, exactly like cancelled ones. *)
let checked_step (c : Choice.t) t =
  let evs =
    Hashtbl.fold (fun _ ev acc -> ev :: acc) t.live_ids []
    |> List.sort (fun a b ->
           match Float.compare a.time b.time with
           | 0 -> Int.compare a.id b.id
           | n -> n)
  in
  match evs with
  | [] -> false
  | [ ev ] ->
    fire t ev.time ev;
    true
  | evs ->
    let arr = Array.of_list evs in
    let cands =
      Array.map
        (fun ev ->
          Choice.candidate ~key:ev.key
            ~label:
              (if ev.label = "" then Printf.sprintf "ev%d" ev.id else ev.label)
            ~dom:Choice.Event
            ~ident:(Printf.sprintf "e%d" ev.id)
            ())
        arr
    in
    let idx = c.Choice.pick Choice.Event cands in
    let ev = arr.(idx) in
    fire t ev.time ev;
    true

let step t =
  match t.chooser with
  | Some c -> checked_step c t
  | None ->
    let rec loop () =
      match Event_queue.pop t.queue with
      | None -> false
      | Some (_, ev) when not ev.live -> loop ()
      | Some (time, ev) ->
        fire t time ev;
        true
    in
    loop ()

let run ?until t =
  let start = t.executed in
  (match t.chooser with
  | Some _ ->
    (* Under a chooser virtual timestamps no longer bound execution
       order, so a time horizon is meaningless: run to quiescence. *)
    while step t do
      ()
    done
  | None ->
    let horizon = match until with None -> Float.infinity | Some u -> u in
    let rec loop () =
      match Event_queue.peek t.queue with
      | None -> ()
      | Some (time, _) when time > horizon -> ()
      | Some _ ->
        ignore (step t : bool);
        loop ()
    in
    loop ();
    (match until with
    | Some u when u > t.clock && Float.is_finite u -> t.clock <- u
    | Some _ | None -> ()));
  t.executed - start

let events_executed t = t.executed
let pending t = Event_queue.length t.queue
