(** Per-node failure flight recorder.

    Attaching enables the runtime's structured trace ring and span
    collector, then subscribes to {!Amber.Runtime.on_failure}: whenever
    a typed failure fires (["node_dead"], ["node_down"],
    ["object_lost"], serve's ["overloaded"], the sanitizer's ["san"]),
    the recorder dumps a postmortem artifact — a JSON document holding
    the failure header, every trace record in the trailing [window]
    virtual seconds, and the victim node's spans that were open or
    recently closed at failure time (all nodes for cluster-scoped
    failures).  At most one dump per (kind, node) and [max_dumps]
    total; anything beyond that is counted suppressed.

    Dump files are named
    [postmortem-<seq>-<kind>-<n<node>|all>.json] under [dir] (created
    on demand).  Contents are a deterministic function of the seed. *)

type t

val default_window : float
(** 50 virtual milliseconds. *)

val default_max_dumps : int

val attach :
  Amber.Runtime.t -> ?window:float -> ?max_dumps:int -> dir:string -> unit -> t

val dumps : t -> string list
(** Paths written so far, oldest first. *)

val dump_count : t -> int
val suppressed : t -> int

val record : t -> kind:string -> node:int -> detail:string -> unit
(** Manually trigger a dump (the attach hook calls this for runtime
    failures). *)

val report_lines : t -> string list
