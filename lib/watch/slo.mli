(** SLO burn-rate monitors over watch time series.

    A rule declares an objective on one series — e.g.
    ["serve.latency_ms.p99<=60@0.1"]: the p99 latency series must stay
    at or below 60ms, with an error budget of 10% of samples.  After a
    run, {!evaluate} replays the sampled points through a classic
    multi-window burn-rate gate: at each tick the {e burn} is the bad
    fraction over a trailing window divided by the budget, and the rule
    {e fires} at the first tick where both the short (12-tick) and long
    (48-tick) windows burn at >= 1x — sustained breaches trip quickly,
    a lone bad tick never does.  Evaluation is a pure function of the
    series, so verdicts are deterministic per seed. *)

type op = Le | Ge

type rule = {
  text : string;  (** original rule string, for reports *)
  series : string;  (** qualified series name, see {!Sim.Series.find} *)
  op : op;
  threshold : float;
  budget : float;  (** allowed bad-sample fraction, in (0, 1] *)
  short_win : int;  (** fast window, ticks *)
  long_win : int;  (** slow window, ticks *)
}

val default_budget : float
val default_short_win : int
val default_long_win : int

val parse : string -> (rule, string) result
(** Syntax: [SERIES<=THRESHOLD] or [SERIES>=THRESHOLD], optionally
    [@BUDGET] (default 0.1).  Examples:
    ["serve.latency_ms.p99<=60"], ["serve.latency_ms.rate>=800@0.2"]. *)

type outcome = {
  rule : rule;
  points : int;  (** samples evaluated; 0 = series missing/empty *)
  bad : int;  (** samples violating the objective *)
  fired : bool;
  fire_at : float option;  (** virtual time of the first firing tick *)
  peak_fast : float;  (** max short-window burn observed *)
  peak_slow : float;  (** max long-window burn observed *)
}

val evaluate : Sim.Series.t -> rule -> outcome
val any_fired : outcome list -> bool
val outcome_line : outcome -> string
val report_lines : outcome list -> string list
