module A = Amber
module Slo = Slo
module Flight = Flight

type cfg = {
  interval : float; (* virtual seconds between samples *)
  capacity : int; (* ring capacity per series *)
}

let default_cfg = { interval = 5e-3; capacity = 4096 }

type t = {
  rt : A.Runtime.t;
  cfg : cfg;
  slo : Slo.rule list;
  flight : Flight.t option;
  mutable tick_ev : Sim.Engine.event_id option;
  mutable stopped : bool;
}

let registry t = A.Runtime.metrics t.rt
let series t = Sim.Series.all (registry t)

(* The standard instrument set: scheduler and RPC pressure per node,
   protocol/replication/balance/crash counters cluster-wide.  Serve and
   the balance driver add their own series when they find the registry
   enabled. *)
let register_standard rt =
  let m = A.Runtime.metrics rt in
  let nodes = A.Runtime.nodes rt in
  let rpc = A.Runtime.rpc rt in
  for n = 0 to nodes - 1 do
    let mach = A.Runtime.machine rt n in
    Sim.Series.probe m ~name:"sched.ready" ~node:n (fun () ->
        float_of_int (Hw.Machine.ready_length mach));
    Sim.Series.probe m ~name:"sched.running" ~node:n (fun () ->
        float_of_int (Hw.Machine.busy_cpus mach));
    Sim.Series.probe m ~name:"rpc.backlog" ~node:n (fun () ->
        float_of_int (Topaz.Rpc.backlog rpc n))
  done;
  Sim.Series.probe m ~name:"rpc.in_flight" (fun () ->
      float_of_int (Topaz.Rpc.in_flight rpc));
  let rel = Topaz.Rpc.reliability rpc in
  Sim.Series.counter m ~name:"rpc.retransmits" (fun () ->
      Sim.Stats.Counter.value rel.Topaz.Rpc.retransmits);
  Sim.Series.counter m ~name:"rpc.timeouts" (fun () ->
      Sim.Stats.Counter.value rel.Topaz.Rpc.timeouts);
  Sim.Series.counter m ~name:"rpc.posts_rejected" (fun () ->
      Topaz.Rpc.posts_rejected rpc);
  let c = A.Runtime.counters rt in
  Sim.Series.counter m ~name:"invoke.local" (fun () ->
      c.A.Runtime.local_invocations);
  Sim.Series.counter m ~name:"invoke.remote" (fun () ->
      c.A.Runtime.remote_invocations);
  Sim.Series.counter m ~name:"replica.installs" (fun () ->
      c.A.Runtime.replica_installs);
  Sim.Series.counter m ~name:"replica.invalidations" (fun () ->
      c.A.Runtime.replica_invalidations);
  Sim.Series.counter m ~name:"balance.moves" (fun () ->
      c.A.Runtime.balance_moves);
  Sim.Series.counter m ~name:"balance.steals" (fun () ->
      c.A.Runtime.threads_stolen);
  Sim.Series.counter m ~name:"crash.node_crashes" (fun () ->
      c.A.Runtime.node_crashes);
  Sim.Series.counter m ~name:"crash.objects_lost" (fun () ->
      c.A.Runtime.objects_lost);
  Sim.Series.probe m ~name:"cluster.up_nodes" (fun () ->
      let up = ref 0 in
      for n = 0 to nodes - 1 do
        if A.Runtime.node_is_up rt n then incr up
      done;
      float_of_int !up)

let outcomes t = List.map (Slo.evaluate (registry t)) t.slo
let slo_fired t = Slo.any_fired (outcomes t)

let report_lines t =
  let m = registry t in
  let all = series t in
  let npoints = List.fold_left (fun n s -> n + Sim.Series.length s) 0 all in
  let header =
    Printf.sprintf "%d series, %d samples @ %.3gms, %d points (%d dropped)"
      (List.length all)
      (Sim.Series.samples_taken m)
      (t.cfg.interval *. 1e3)
      npoints (Sim.Series.total_dropped m)
  in
  let slo_lines = Slo.report_lines (outcomes t) in
  let flight_lines =
    match t.flight with Some f -> Flight.report_lines f | None -> []
  in
  let series_line s =
    let n = Sim.Series.length s in
    if n = 0 then Printf.sprintf "%-32s (no points)" (Sim.Series.qualified s)
    else begin
      let sum = ref 0.0 and mn = ref infinity and mx = ref neg_infinity in
      Sim.Series.iter_points s (fun p ->
          sum := !sum +. p.Sim.Series.v;
          if p.Sim.Series.v < !mn then mn := p.Sim.Series.v;
          if p.Sim.Series.v > !mx then mx := p.Sim.Series.v);
      let last =
        match Sim.Series.last s with
        | Some p -> p.Sim.Series.v
        | None -> 0.0
      in
      Printf.sprintf "%-32s n=%-5d last=%-10.6g min=%-10.6g max=%-10.6g mean=%.6g"
        (Sim.Series.qualified s) n last !mn !mx
        (!sum /. float_of_int n)
    end
  in
  (header :: slo_lines) @ flight_lines @ List.map series_line all

let attach rt ?(cfg = default_cfg) ?(slo = []) ?flight () =
  if cfg.interval <= 0.0 then invalid_arg "Watch.attach: interval";
  let m = A.Runtime.metrics rt in
  Sim.Series.set_capacity m cfg.capacity;
  register_standard rt;
  Sim.Series.enable m;
  let eng = A.Runtime.engine rt in
  let t = { rt; cfg; slo; flight; tick_ev = None; stopped = false } in
  let rec tick () =
    t.tick_ev <- None;
    if not t.stopped then begin
      Sim.Series.sample m;
      t.tick_ev <-
        Some (Sim.Engine.schedule eng ~label:"watch-tick" ~delay:cfg.interval tick)
    end
  in
  t.tick_ev <-
    Some (Sim.Engine.schedule eng ~label:"watch-tick" ~delay:cfg.interval tick);
  A.Runtime.add_report_section rt ~name:"watch" (fun () -> report_lines t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.tick_ev with
    | Some ev ->
        t.tick_ev <- None;
        Sim.Engine.cancel (A.Runtime.engine t.rt) ev
    | None -> ());
    (* One closing sample so the series reach the stop instant. *)
    Sim.Series.sample (A.Runtime.metrics t.rt)
  end
