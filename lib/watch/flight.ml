module A = Amber

type t = {
  rt : A.Runtime.t;
  window : float;
  dir : string;
  max_dumps : int;
  mutable dumps : string list; (* paths, oldest first *)
  mutable suppressed : int;
  seen : (string * int, unit) Hashtbl.t; (* (kind, node) already dumped *)
  mutable seq : int;
}

let default_window = 0.05
let default_max_dumps = 4

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* One postmortem: a typed-failure header, every structured trace record
   in the trailing window, and the victim node's spans that were open or
   recently closed at failure time — "the last N virtual-milliseconds
   before any failure are always inspectable".  Cluster-scoped failures
   (node -1, e.g. a sanitizer race) keep every node's spans. *)
let dump_string t ~kind ~node ~detail =
  let now = A.Runtime.now t.rt in
  let cutoff = now -. t.window in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"postmortem\":{\"kind\":%s,\"node\":%d,\"time\":%.9f,\"detail\":%s,\"seq\":%d,\"window_s\":%.6f},\n"
       (Scope.Export.jstr kind) node now (Scope.Export.jstr detail) t.seq
       t.window);
  let records =
    List.filter
      (fun (r : Sim.Trace.record) -> r.time >= cutoff)
      (Sim.Trace.records (A.Runtime.trace t.rt))
  in
  Buffer.add_string b "\"trace\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Scope.Export.trace_record_json r))
    records;
  Buffer.add_string b "],\n\"spans\":[";
  let spans =
    List.filter
      (fun (s : Sim.Span.span) ->
        (node < 0 || s.node = node || s.node < 0)
        && (s.t1 < 0.0 || s.t1 >= cutoff))
      (Sim.Span.spans (A.Runtime.spans t.rt))
  in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Scope.Export.span_json ~clip:now s))
    spans;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let record t ~kind ~node ~detail =
  if Hashtbl.mem t.seen (kind, node) || List.length t.dumps >= t.max_dumps then
    t.suppressed <- t.suppressed + 1
  else begin
    Hashtbl.replace t.seen (kind, node) ();
    let body = dump_string t ~kind ~node ~detail in
    let path =
      Filename.concat t.dir
        (Printf.sprintf "postmortem-%d-%s-%s.json" t.seq kind
           (if node < 0 then "all" else Printf.sprintf "n%d" node))
    in
    t.seq <- t.seq + 1;
    mkdir_p t.dir;
    let oc = open_out path in
    output_string oc body;
    close_out oc;
    t.dumps <- t.dumps @ [ path ]
  end

let attach rt ?(window = default_window) ?(max_dumps = default_max_dumps) ~dir
    () =
  Sim.Trace.set_enabled (A.Runtime.trace rt) true;
  Sim.Span.set_enabled (A.Runtime.spans rt) true;
  let t =
    {
      rt;
      window;
      dir;
      max_dumps;
      dumps = [];
      suppressed = 0;
      seen = Hashtbl.create 8;
      seq = 0;
    }
  in
  A.Runtime.on_failure rt (fun ~kind ~node ~detail ->
      record t ~kind ~node ~detail);
  t

let dumps t = t.dumps
let dump_count t = List.length t.dumps
let suppressed t = t.suppressed

let report_lines t =
  Printf.sprintf "flight recorder: %d postmortem(s), %d suppressed"
    (dump_count t) t.suppressed
  :: List.map (fun p -> "  " ^ Filename.basename p) t.dumps
