(** Amber-Watch: continuous virtual-time telemetry.

    {!attach} enables the runtime's {!Sim.Series} registry, registers
    the standard instrument set — per-node ready-queue depth, running
    CPUs and RPC backlog; cluster-wide RPC in-flight/retransmit,
    invocation, replication, balance and crash counters — and arms a
    recurring seeded virtual-time tick (the {!Balance.Driver} pattern)
    that samples every instrument into bounded windowed time series.
    Layers that publish their own series (serve's per-class latency
    windows and admitted-depth gauges, the balance driver's EWMA load
    view) find the registry enabled and join in; {!stop} cancels the
    tick (call it before the workload returns, or the run never
    quiesces) and takes one closing sample.

    A gated ["watch"] report section summarizes every series and the
    {!Slo} verdicts; exporters live in {!Scope.Export} ([series_jsonl],
    [series_csv], and [chrome_json ~counters] for Perfetto counter
    tracks).

    Determinism: sampling draws no RNG and reads only the virtual
    clock, so series are byte-reproducible per seed; an unwatched run
    (no [attach]) schedules nothing, registers nothing, and stays
    byte-identical. *)

module Slo = Slo
module Flight = Flight

type cfg = {
  interval : float;  (** virtual seconds between samples *)
  capacity : int;  (** ring capacity per series *)
}

val default_cfg : cfg
(** 5ms tick, 4096 points per series. *)

type t

val attach :
  Amber.Runtime.t ->
  ?cfg:cfg ->
  ?slo:Slo.rule list ->
  ?flight:Flight.t ->
  unit ->
  t
(** Must run before the workload so layer-owned instruments register.
    [slo] rules are evaluated on demand ({!outcomes}, the report
    section); [flight] merely adds the recorder's summary to the watch
    report — attach it separately. *)

val stop : t -> unit

val registry : t -> Sim.Series.t
val series : t -> Sim.Series.series list

val outcomes : t -> Slo.outcome list
(** Evaluate the attached SLO rules against the sampled series. *)

val slo_fired : t -> bool
val report_lines : t -> string list
