type op = Le | Ge

type rule = {
  text : string;
  series : string;
  op : op;
  threshold : float;
  budget : float;
  short_win : int;
  long_win : int;
}

let default_budget = 0.1
let default_short_win = 12
let default_long_win = 48

let op_name = function Le -> "<=" | Ge -> ">="

let parse s =
  let fail msg = Error (Printf.sprintf "bad SLO rule %S: %s" s msg) in
  let split_on sub =
    let n = String.length sub and len = String.length s in
    let rec scan i =
      if i + n > len then None
      else if String.sub s i n = sub then
        Some (String.sub s 0 i, String.sub s (i + n) (len - i - n))
      else scan (i + 1)
    in
    scan 0
  in
  let parsed =
    match split_on "<=" with
    | Some (l, r) -> Some (l, Le, r)
    | None -> (
        match split_on ">=" with
        | Some (l, r) -> Some (l, Ge, r)
        | None -> None)
  in
  match parsed with
  | None -> fail "expected SERIES<=THRESHOLD or SERIES>=THRESHOLD"
  | Some (l, op, r) -> (
      let series = String.trim l in
      if series = "" then fail "empty series name"
      else
        let rhs, budget_s =
          match String.index_opt r '@' with
          | Some i ->
              ( String.sub r 0 i,
                Some (String.sub r (i + 1) (String.length r - i - 1)) )
          | None -> (r, None)
        in
        match float_of_string_opt (String.trim rhs) with
        | None -> fail "threshold is not a number"
        | Some threshold -> (
            match budget_s with
            | None ->
                Ok
                  {
                    text = s;
                    series;
                    op;
                    threshold;
                    budget = default_budget;
                    short_win = default_short_win;
                    long_win = default_long_win;
                  }
            | Some b -> (
                match float_of_string_opt (String.trim b) with
                | Some budget when budget > 0.0 && budget <= 1.0 ->
                    Ok
                      {
                        text = s;
                        series;
                        op;
                        threshold;
                        budget;
                        short_win = default_short_win;
                        long_win = default_long_win;
                      }
                | _ -> fail "budget must be a fraction in (0, 1]")))

type outcome = {
  rule : rule;
  points : int;
  bad : int;
  fired : bool;
  fire_at : float option;
  peak_fast : float;
  peak_slow : float;
}

let violates rule v =
  match rule.op with Le -> v > rule.threshold | Ge -> v < rule.threshold

(* Multi-window burn rate over the sampled points: at each tick, the
   burn is (bad fraction over the trailing window) / budget; the rule
   fires at the first tick where both the short and the long window burn
   at >= 1 — i.e. the error budget is being consumed faster than
   allotted on both timescales, the classic fast+slow gate that ignores
   a lone bad tick but catches a sustained breach quickly.  Windows
   clamp to the available history; nothing fires before [short_win]
   points exist. *)
let evaluate reg rule =
  match Sim.Series.find reg rule.series with
  | None ->
      {
        rule;
        points = 0;
        bad = 0;
        fired = false;
        fire_at = None;
        peak_fast = 0.0;
        peak_slow = 0.0;
      }
  | Some s ->
      let pts = Array.of_list (Sim.Series.points s) in
      let n = Array.length pts in
      let bad = Array.map (fun (p : Sim.Series.point) -> violates rule p.v) pts in
      (* prefix.(i) = number of bad points among pts.(0..i-1) *)
      let prefix = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        prefix.(i + 1) <- (prefix.(i) + if bad.(i) then 1 else 0)
      done;
      let burn ~window i =
        let w = Stdlib.min window (i + 1) in
        let b = prefix.(i + 1) - prefix.(i + 1 - w) in
        float_of_int b /. float_of_int w /. rule.budget
      in
      let fired = ref false in
      let fire_at = ref None in
      let peak_fast = ref 0.0 and peak_slow = ref 0.0 in
      for i = 0 to n - 1 do
        if i + 1 >= rule.short_win then begin
          let f = burn ~window:rule.short_win i in
          let sl = burn ~window:rule.long_win i in
          if f > !peak_fast then peak_fast := f;
          if sl > !peak_slow then peak_slow := sl;
          if (not !fired) && f >= 1.0 && sl >= 1.0 then begin
            fired := true;
            fire_at := Some pts.(i).at
          end
        end
      done;
      {
        rule;
        points = n;
        bad = prefix.(n);
        fired = !fired;
        fire_at = !fire_at;
        peak_fast = !peak_fast;
        peak_slow = !peak_slow;
      }

let any_fired outcomes = List.exists (fun o -> o.fired) outcomes

let outcome_line o =
  let head =
    Printf.sprintf "slo %s %s %g @%g: " o.rule.series (op_name o.rule.op)
      o.rule.threshold o.rule.budget
  in
  if o.points = 0 then head ^ "no data"
  else
    let tail =
      Printf.sprintf "(bad %d/%d, peak burn fast=%.2f slow=%.2f)" o.bad
        o.points o.peak_fast o.peak_slow
    in
    match o.fire_at with
    | Some at -> head ^ Printf.sprintf "FIRED at %.6fs " at ^ tail
    | None -> head ^ "ok " ^ tail

let report_lines outcomes = List.map outcome_line outcomes
