(* One scheduled node crash.  [restart = Some t'] is a transient outage:
   the machine freezes and its packets are dropped until [t'], but no
   state is lost.  [restart = None] is fail-stop: the node's threads die,
   its un-acked RPC state is discarded, and the object space recovers by
   replica promotion / home reconstruction. *)
type crash = { cnode : int; at : float; restart : float option }

type t = {
  nodes : int;
  cpus_per_node : int;
  quantum : float;
  ctx_switch : float;
  ether_bandwidth_bps : float;
  ether_propagation : float;
  ether_wire_overhead : float;
  ether_mac : Hw.Ethernet.mac;
  rpc_costs : Topaz.Rpc.costs;
  rpc_servers_per_node : int;
  cost : Cost_model.t;
  initial_regions_per_node : int;
  vm_page_size : int;
  faults : Hw.Ethernet.faults;
  rpc_rto : float;
  rpc_coalesce : Topaz.Rpc.coalesce option;
  rpc_reliable : bool;
      (* force the reliable (sequence-numbered, retransmitting,
         deduplicating) transport even with fault injection off.  The
         runtime always turns it on when faults are enabled; the model
         checker turns it on explicitly because its fault decisions come
         from the schedule explorer, not the fault dice. *)
  rpc_retire_window : int;
  rpc_unsafe_dedup : bool;
      (* the pre-fix count-window-only dedup eviction, behind a flag so
         the checker's mutation smoke can demonstrate it finds the bug *)
  max_forward_hops : int;
  crashes : crash list;
  crash_rate : float;
      (* per-node probability of drawing one scheduled transient crash
         (crash at a uniform time in (0, 1s], restart one RTO bundle
         later); 0.0 (the default) draws nothing and splits no RNG *)
  rpc_max_retransmits : int;
  crash_skip_repair : bool;
      (* mutation: skip the home-node forwarding-entry reconstruction
         step of fail-stop recovery, so a chain routed through the corpse
         dangles.  Exists only so the model checker can demonstrate the
         repair step is load-bearing *)
  seed : int64;
  trace_capacity : int;
}

let default =
  {
    nodes = 2;
    cpus_per_node = 4;
    quantum = 5e-3;
    ctx_switch = 30e-6;
    ether_bandwidth_bps = 10e6;
    ether_propagation = 20e-6;
    ether_wire_overhead = 50e-6;
    ether_mac = Hw.Ethernet.Fifo;
    rpc_costs = Topaz.Rpc.default_costs;
    rpc_servers_per_node = 8;
    cost = Cost_model.default;
    initial_regions_per_node = 4;
    vm_page_size = 1024;
    faults = Hw.Ethernet.no_faults;
    rpc_rto = 25e-3;
    rpc_coalesce = None;
    rpc_reliable = false;
    rpc_retire_window = 1024;
    rpc_unsafe_dedup = false;
    max_forward_hops = 64;
    crashes = [];
    crash_rate = 0.0;
    rpc_max_retransmits = 30;
    crash_skip_repair = false;
    seed = 0xA3BE5L;
    trace_capacity = 8192;
  }

let make ~nodes ~cpus ?(cost = Cost_model.default) ?(seed = default.seed)
    ?(faults = Hw.Ethernet.no_faults) ?coalesce ?(crashes = [])
    ?(crash_rate = 0.0) () =
  {
    default with
    nodes;
    cpus_per_node = cpus;
    cost;
    seed;
    faults;
    rpc_coalesce = coalesce;
    crashes;
    crash_rate;
  }

let crashes_enabled t = t.crashes <> [] || t.crash_rate > 0.0

let validate t =
  if t.nodes <= 0 then invalid_arg "Config: nodes must be positive";
  if t.cpus_per_node <= 0 then invalid_arg "Config: cpus_per_node";
  if t.quantum <= 0.0 then invalid_arg "Config: quantum";
  if t.ether_bandwidth_bps <= 0.0 then invalid_arg "Config: bandwidth";
  if t.rpc_servers_per_node <= 0 then invalid_arg "Config: rpc servers";
  if t.initial_regions_per_node <= 0 then invalid_arg "Config: regions";
  if t.vm_page_size <= 0 || t.vm_page_size land 7 <> 0 then
    invalid_arg "Config: vm_page_size";
  Hw.Ethernet.validate_faults t.faults;
  if t.rpc_rto <= 0.0 then invalid_arg "Config: rpc_rto must be positive";
  if t.rpc_retire_window < 0 then
    invalid_arg "Config: rpc_retire_window must be non-negative";
  if t.max_forward_hops <= 0 then
    invalid_arg "Config: max_forward_hops must be positive";
  List.iter
    (fun c ->
      if c.cnode <= 0 || c.cnode >= t.nodes then
        invalid_arg
          "Config: crash node must be in [1, nodes) (node 0 hosts the root \
           environment and cannot crash)";
      if c.at < 0.0 || Float.is_nan c.at then
        invalid_arg "Config: crash time must be non-negative";
      match c.restart with
      | Some r when not (r > c.at) ->
        invalid_arg "Config: crash restart must come after the crash"
      | _ -> ())
    t.crashes;
  (match
     List.sort_uniq compare (List.map (fun c -> c.cnode) t.crashes)
   with
  | uniq when List.length uniq <> List.length t.crashes ->
    invalid_arg "Config: at most one scheduled crash per node"
  | _ -> ());
  if t.crash_rate < 0.0 || t.crash_rate >= 1.0 || Float.is_nan t.crash_rate
  then invalid_arg "Config: crash_rate must be in [0, 1)";
  if t.rpc_max_retransmits <= 0 then
    invalid_arg "Config: rpc_max_retransmits must be positive"
