(* The id of the calling thread; all sync operations run in fiber
   context (they go through [Invoke.invoke]). *)
let self_id () = Hw.Machine.tcb_id (Hw.Machine.self_exn ())

let register_sync rt addr kind =
  Runtime.with_san rt (fun h -> h.San_hooks.on_sync_created ~addr ~kind)

module Lock = struct
  type state = {
    mutable owner : int option;  (* tcb id of the holding thread *)
    waiters : (int * (unit -> unit)) Queue.t;
  }

  type t = { obj : state Aobject.t }

  let create rt ?(name = "lock") () =
    let obj =
      Runtime.create_object rt ~size:32 ~name
        { owner = None; waiters = Queue.create () }
    in
    register_sync rt obj.Aobject.addr "lock";
    { obj }

  let acquire rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        let me = self_id () in
        match s.owner with
        | None -> s.owner <- Some me
        | Some _ ->
          (* Ownership is handed over directly by [release], so when the
             waker fires the lock is already ours. *)
          Sim.Span.with_span (Runtime.spans rt) Sim.Span.Lock_wait
            ~label:t.obj.Aobject.name ~obj:t.obj.Aobject.addr (fun () ->
              Sim.Fiber.block (fun wake -> Queue.add (me, wake) s.waiters)));
    Runtime.with_san rt (fun h ->
        h.San_hooks.on_lock_acquired ~addr:t.obj.Aobject.addr
          ~name:t.obj.Aobject.name)

  let release rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        (match s.owner with
        | None -> invalid_arg "Lock.release: lock is not held"
        | Some owner ->
          if owner <> self_id () then
            invalid_arg "Lock.release: lock is held by another thread");
        Runtime.with_san rt (fun h ->
            h.San_hooks.on_lock_released ~addr:t.obj.Aobject.addr);
        match Queue.take_opt s.waiters with
        | None -> s.owner <- None
        | Some (next, wake) ->
          s.owner <- Some next;
          wake ())

  let try_acquire rt t =
    let c = Runtime.cost rt in
    let got =
      Invoke.invoke rt t.obj (fun s ->
          Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
          match s.owner with
          | Some _ -> false
          | None ->
            s.owner <- Some (self_id ());
            true)
    in
    if got then
      Runtime.with_san rt (fun h ->
          h.San_hooks.on_lock_acquired ~addr:t.obj.Aobject.addr
            ~name:t.obj.Aobject.name);
    got

  let with_lock rt t f =
    acquire rt t;
    match f () with
    | r ->
      release rt t;
      r
    | exception e ->
      release rt t;
      raise e

  let is_held t = t.obj.Aobject.state.owner <> None
  let holder t = t.obj.Aobject.state.owner
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
  let locate rt t = Mobility.locate rt t.obj
end

module Spinlock = struct
  type state = {
    mutable owner : int option;
    mutable failed_probes : int;
  }

  type t = { obj : state Aobject.t }

  let create rt ?(name = "spinlock") () =
    let obj =
      Runtime.create_object rt ~size:16 ~name
        { owner = None; failed_probes = 0 }
    in
    register_sync rt obj.Aobject.addr "spinlock";
    { obj }

  let max_backoff = 100e-6

  let acquire rt t =
    let c = Runtime.cost rt in
    let probe () =
      Invoke.invoke rt t.obj (fun s ->
          Sim.Fiber.consume c.Cost_model.spin_probe_cpu;
          match s.owner with
          | Some _ ->
            s.failed_probes <- s.failed_probes + 1;
            false
          | None ->
            s.owner <- Some (self_id ());
            true)
    in
    let rec spin backoff =
      if not (probe ()) then begin
        (* Busy-wait: the processor is not relinquished (§2.2). *)
        Sim.Fiber.consume backoff;
        spin (Float.min max_backoff (backoff *. 2.0))
      end
    in
    spin c.Cost_model.spin_probe_cpu;
    Runtime.with_san rt (fun h ->
        h.San_hooks.on_lock_acquired ~addr:t.obj.Aobject.addr
          ~name:t.obj.Aobject.name)

  let release rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.spin_probe_cpu;
        (match s.owner with
        | None -> invalid_arg "Spinlock.release: lock is not held"
        | Some owner ->
          if owner <> self_id () then
            invalid_arg "Spinlock.release: lock is held by another thread");
        Runtime.with_san rt (fun h ->
            h.San_hooks.on_lock_released ~addr:t.obj.Aobject.addr);
        s.owner <- None)

  let with_lock rt t f =
    acquire rt t;
    match f () with
    | r ->
      release rt t;
      r
    | exception e ->
      release rt t;
      raise e

  let is_held t = t.obj.Aobject.state.owner <> None
  let holder t = t.obj.Aobject.state.owner
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
  let contended_probes t = t.obj.Aobject.state.failed_probes
end

module Barrier = struct
  type state = {
    parties : int;
    mutable arrived : int;
    mutable wakers : (unit -> unit) list;
    mutable generation : int;
  }

  type t = { obj : state Aobject.t }

  let create rt ?(name = "barrier") ~parties () =
    if parties <= 0 then invalid_arg "Barrier.create: parties";
    let obj =
      Runtime.create_object rt ~size:32 ~name
        { parties; arrived = 0; wakers = []; generation = 0 }
    in
    register_sync rt obj.Aobject.addr "barrier";
    { obj }

  let pass rt t =
    let c = Runtime.cost rt in
    let addr = t.obj.Aobject.addr in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        let gen = s.generation in
        Runtime.with_san rt (fun h -> h.San_hooks.on_barrier_arrive ~addr ~gen);
        if s.arrived + 1 >= s.parties then begin
          (* Last arrival releases everyone and opens a new generation. *)
          s.arrived <- 0;
          s.generation <- s.generation + 1;
          let sleepers = List.rev s.wakers in
          s.wakers <- [];
          Runtime.with_san rt (fun h ->
              h.San_hooks.on_barrier_release ~addr ~gen);
          List.iter (fun wake -> wake ()) sleepers
        end
        else begin
          s.arrived <- s.arrived + 1;
          Sim.Span.with_span (Runtime.spans rt) Sim.Span.Barrier_wait
            ~label:t.obj.Aobject.name ~obj:addr ~arg:gen (fun () ->
              Sim.Fiber.block (fun wake -> s.wakers <- wake :: s.wakers));
          Runtime.with_san rt (fun h ->
              h.San_hooks.on_barrier_resume ~addr ~gen)
        end)

  let generation t = t.obj.Aobject.state.generation
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
end

module Condition = struct
  type cell = {
    token : int;  (* process-unique id linking signal to wakeup *)
    mutable wake : (unit -> unit) option;
    mutable signaled : bool;
  }

  type state = { mutable queue : cell list (* FIFO: oldest first *) }
  type t = { obj : state Aobject.t }

  let next_token = ref 0

  let create rt ?(name = "condition") () =
    let obj = Runtime.create_object rt ~size:24 ~name { queue = [] } in
    register_sync rt obj.Aobject.addr "condition";
    { obj }

  let fire rt cell =
    Runtime.with_san rt (fun h -> h.San_hooks.on_cond_signal ~token:cell.token);
    cell.signaled <- true;
    match cell.wake with
    | Some wake -> wake ()
    | None -> (* waiter has not blocked yet; it will see [signaled] *) ()

  let wait rt t lock =
    (match Lock.holder lock with
    | None -> invalid_arg "Condition.wait: lock is not held"
    | Some owner ->
      if owner <> self_id () then
        invalid_arg "Condition.wait: lock is held by another thread");
    let c = Runtime.cost rt in
    incr next_token;
    let cell = { token = !next_token; wake = None; signaled = false } in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        s.queue <- s.queue @ [ cell ]);
    Lock.release rt lock;
    Sim.Span.with_span (Runtime.spans rt) Sim.Span.Cond_wait
      ~label:t.obj.Aobject.name ~obj:t.obj.Aobject.addr (fun () ->
        Sim.Fiber.block (fun wake ->
            if cell.signaled then wake () else cell.wake <- Some wake));
    Runtime.with_san rt (fun h -> h.San_hooks.on_cond_wake ~token:cell.token);
    Lock.acquire rt lock

  let signal rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        match s.queue with
        | [] -> ()
        | cell :: rest ->
          s.queue <- rest;
          fire rt cell)

  let broadcast rt t =
    let c = Runtime.cost rt in
    Invoke.invoke rt t.obj (fun s ->
        Sim.Fiber.consume c.Cost_model.lock_fast_cpu;
        let cells = s.queue in
        s.queue <- [];
        List.iter (fire rt) cells)

  let waiters t = List.length t.obj.Aobject.state.queue
  let move rt t ~dest = Mobility.move_to rt t.obj ~dest
  let locate rt t = Mobility.locate rt t.obj
end

module Monitor = struct
  type t = { lock : Lock.t }

  let create rt ?(name = "monitor") () =
    { lock = Lock.create rt ~name:(name ^ ".lock") () }

  let enter rt t = Lock.acquire rt t.lock
  let exit rt t = Lock.release rt t.lock

  let with_monitor rt t f =
    enter rt t;
    match f () with
    | r ->
      exit rt t;
      r
    | exception e ->
      exit rt t;
      raise e

  let new_condition rt _t = Condition.create rt ~name:"monitor.cond" ()
  let wait rt t cond = Condition.wait rt cond t.lock
  let signal rt cond = Condition.signal rt cond
  let broadcast rt cond = Condition.broadcast rt cond
  let move rt t ~dest = Lock.move rt t.lock ~dest
  let locate rt t = Lock.locate rt t.lock
end
