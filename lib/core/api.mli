(** Programmer-facing surface of Amber, re-exported flat.

    Typical use:
    {[
      open Amber

      let () =
        let cfg = Api.config ~nodes:4 ~cpus:4 () in
        let (), _report =
          Api.run cfg (fun rt ->
              let counter = Api.create rt ~name:"counter" (ref 0) in
              Api.move_to rt counter ~dest:2;
              let t =
                Api.start rt (fun () ->
                    Api.invoke rt counter (fun c -> incr c))
              in
              Api.join rt t)
        in
        ()
    ]} *)

type runtime = Runtime.t
type 'a obj = 'a Aobject.t
type 'r thread = 'r Athread.t
type 'r future = 'r Future.t

(** {1 Cluster} *)

val config :
  nodes:int -> cpus:int -> ?cost:Cost_model.t -> ?seed:int64 -> unit ->
  Config.t

val run : Config.t -> (runtime -> 'r) -> 'r * Cluster.report
val run_value : Config.t -> (runtime -> 'r) -> 'r

(** {1 Objects} *)

val create : runtime -> ?size:int -> name:string -> 'a -> 'a obj
val destroy : runtime -> 'a obj -> unit

val invoke :
  runtime -> ?payload:int -> ?return_payload:int -> ?mode:San_hooks.mode ->
  'a obj -> ('a -> 'b) -> 'b

(** §3.6 inline member invocation; see {!Invoke.invoke_member}. *)
val invoke_member :
  runtime -> ?mode:San_hooks.mode -> 'a obj -> ('a -> 'b) -> 'b

(** Asynchronous invocation returning a first-class future; see
    {!Future.invoke_async}. *)
val invoke_async :
  runtime -> ?payload:int -> ?return_payload:int -> ?mode:San_hooks.mode ->
  'a obj -> ('a -> 'b) -> 'b future

val await : runtime -> 'r future -> 'r
val await_all : runtime -> 'r future list -> 'r list

(** {1 Mobility} *)

val move_to : runtime -> 'a obj -> dest:int -> unit
val locate : runtime -> 'a obj -> int
val attach : runtime -> parent:'a obj -> child:'b obj -> unit
val unattach : runtime -> child:'b obj -> unit
val set_immutable : runtime -> 'a obj -> unit

(** Install a read-only copy of [obj] on [dest].

    Immutable objects get a permanent copy (exactly [move_to] on an
    immutable).  Mutable objects get a {e read replica} under the
    write-invalidate protocol ({!Coherence}): [~copy] must be supplied to
    snapshot the representation (raises [Invalid_argument] otherwise);
    subsequent [~mode:Read] invocations on [dest] run against the local
    snapshot, and any [Write]/[Atomic] invocation recalls every replica
    before executing at the master. *)
val replicate :
  runtime -> ?copy:('a -> 'a) -> 'a obj -> dest:int -> unit

(** {1 Threads} *)

val start : runtime -> ?name:string -> (unit -> 'r) -> 'r thread

val start_invoke :
  runtime -> ?name:string -> ?payload:int -> 'a obj -> ('a -> 'r) ->
  'r thread

val join : runtime -> 'r thread -> 'r

(** Join every thread, failure or not; see {!Athread.join_all}. *)
val join_all : runtime -> 'r thread list -> 'r list

val parallel : runtime -> ?name:string -> (unit -> 'r) list -> 'r list

(** {1 Misc} *)

(** Node of the calling thread. *)
val my_node : runtime -> int

val node_count : runtime -> int

(** Virtual time now (seconds). *)
val now : runtime -> float
