(* Typed overload rejection for the serving layer (Amber-Serve).

   Admission control at a node's server pool sheds a request instead of
   queueing it; the shed surfaces to the issuer as this exception (or as
   an accounted rejection in open-loop drivers) rather than as a hang.
   Lives in the core so both the Topaz admission hook installers and the
   traffic generators can speak the same failure type. *)

exception Overloaded of { node : int; cls : string }

let () =
  Printexc.register_printer (function
    | Overloaded { node; cls } ->
      Some
        (Printf.sprintf
           "Amber.Overload.Overloaded { node = %d; cls = %S } (request shed \
            by admission control)"
           node cls)
    | _ -> None)
