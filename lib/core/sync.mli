(** Synchronization objects (paper §2.2).

    Amber supplies relinquishing and non-relinquishing locks, barriers,
    monitors and condition variables.  Every one of them {e is an Amber
    object}: it lives on some node, can be moved with the mobility
    primitives, and is remotely invocable — "lock objects … are mobile and
    can be remotely invoked to enforce concurrency constraints involving
    multiple objects on different nodes".

    A thread that blocks on a sync object blocks {e at the object's node}
    (it migrated there by invoking it); when it resumes it returns to its
    caller's node through the normal return-time residency check. *)

(** Relinquishing lock: a blocked acquirer gives up its processor. *)
module Lock : sig
  type t

  val create : Runtime.t -> ?name:string -> unit -> t
  val acquire : Runtime.t -> t -> unit

  (** Raises [Invalid_argument] if the lock is not held, or is held by a
      thread other than the caller. *)
  val release : Runtime.t -> t -> unit

  val try_acquire : Runtime.t -> t -> bool
  val with_lock : Runtime.t -> t -> (unit -> 'a) -> 'a
  val is_held : t -> bool

  (** Tcb id of the holding thread, if any. *)
  val holder : t -> int option

  val move : Runtime.t -> t -> dest:int -> unit
  val locate : Runtime.t -> t -> int
end

(** Non-relinquishing (spin) lock: acquirers burn CPU probing, with
    exponential backoff.  Intended for co-resident, short critical
    sections (§2.2, §3.6). *)
module Spinlock : sig
  type t

  val create : Runtime.t -> ?name:string -> unit -> t
  val acquire : Runtime.t -> t -> unit

  (** Raises [Invalid_argument] if the lock is not held, or is held by a
      thread other than the caller. *)
  val release : Runtime.t -> t -> unit

  val with_lock : Runtime.t -> t -> (unit -> 'a) -> 'a
  val is_held : t -> bool

  (** Tcb id of the holding thread, if any. *)
  val holder : t -> int option

  val move : Runtime.t -> t -> dest:int -> unit

  (** Number of failed probes over the lock's lifetime (contention
      indicator). *)
  val contended_probes : t -> int
end

(** Barrier synchronization for a fixed party count. *)
module Barrier : sig
  type t

  val create : Runtime.t -> ?name:string -> parties:int -> unit -> t

  (** Block until [parties] threads have called [pass] in the current
      generation. *)
  val pass : Runtime.t -> t -> unit

  (** Completed generations. *)
  val generation : t -> int

  val move : Runtime.t -> t -> dest:int -> unit
end

(** Condition variables, used with a {!Lock.t}. *)
module Condition : sig
  type t

  val create : Runtime.t -> ?name:string -> unit -> t

  (** [wait rt c lock] atomically releases [lock] and suspends; on wakeup
      the lock is re-acquired before returning.  The caller must hold
      [lock]. *)
  val wait : Runtime.t -> t -> Lock.t -> unit

  (** Wake one waiter (no-op when none). *)
  val signal : Runtime.t -> t -> unit

  val broadcast : Runtime.t -> t -> unit
  val waiters : t -> int
  val move : Runtime.t -> t -> dest:int -> unit
  val locate : Runtime.t -> t -> int
end

(** Monitors: an entry lock plus condition variables (§2.2). *)
module Monitor : sig
  type t

  val create : Runtime.t -> ?name:string -> unit -> t
  val enter : Runtime.t -> t -> unit
  val exit : Runtime.t -> t -> unit
  val with_monitor : Runtime.t -> t -> (unit -> 'a) -> 'a
  val new_condition : Runtime.t -> t -> Condition.t

  (** Wait on a condition created from this monitor; the monitor must be
      entered. *)
  val wait : Runtime.t -> t -> Condition.t -> unit

  val signal : Runtime.t -> Condition.t -> unit
  val broadcast : Runtime.t -> Condition.t -> unit

  (** Move the monitor's entry lock (conditions are separate objects and
      move independently). *)
  val move : Runtime.t -> t -> dest:int -> unit

  val locate : Runtime.t -> t -> int
end
