(** Write-invalidate read replicas for mutable objects.

    Amber itself replicates only immutable objects (§2.3/§3.4); this layer
    extends object-granularity coherence with program-controlled read-only
    copies of {e mutable} objects.  [install] ships a snapshot of the
    object to a chosen node and marks it with a [Descriptor.Replica]
    descriptor; {!Invoke} serves [Read]-mode invocations from the local
    snapshot, while [Write]/[Atomic] invocations reach the master and run
    {!invalidate} first, recalling every replica before the write executes.

    All replica traffic rides {!Topaz.Rpc}, so under fault injection a
    lost invalidation is retransmitted until acknowledged — it is retried,
    never silently dropped.  A program that never calls [install] sees
    zero extra packets, CPU or report lines. *)

(** Install a read-only copy of mutable [obj] on [dest].

    Resolves the master, captures a snapshot there with [copy] (same
    epoch as the registration, no suspension in between), ships it to
    [dest] and installs a [Replica] descriptor.  The grant is advisory:
    it gives up if a Write/Atomic invocation is executing at the master
    (a mid-write snapshot would be torn).  Each copy carries its grant
    generation, so a copy that arrives after an intervening write or
    invalidation — including a retransmitted copy from a grant that was
    since recalled and re-issued — is discarded at delivery rather than
    installed stale, and can never deregister a newer live grant.  No-op
    if [dest] already holds a replica or the master copy.

    Raises [Invalid_argument] for immutable objects (use
    {!Mobility.replicate}), attached objects, or a bad node.  Fiber
    context. *)
val install : Runtime.t -> copy:('a -> 'a) -> 'a Aobject.t -> dest:int -> unit

(** Recall every read replica of [obj]: one acknowledged [inval] RPC per
    replica node (dropping its snapshot and re-pointing its descriptor at
    the master), looping until the replica set is observed empty — a
    replica installed concurrently with the round is recalled by the next
    pass.  Does nothing (and simulates nothing) when there are no
    replicas.  Must run on the master's node.  Fiber context. *)
val invalidate : Runtime.t -> 'a Aobject.t -> unit
