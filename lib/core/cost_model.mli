(** The calibrated cost model for Amber operations.

    Every virtual-time charge made by the runtime comes from this record,
    so the whole evaluation is driven by one set of constants.  The
    defaults are calibrated so that the five Table-1 microbenchmarks of the
    paper land on the published numbers (§5) {e under the paper's measuring
    conditions} (light load, moving entities fit in one packet, one-hop
    forwarding); Figures 2 and 3 then follow from the same constants
    without further fitting.

    All times are in seconds, sizes in bytes. *)

type t = {
  (* --- invocation path (§3.2, §3.5) --- *)
  invoke_entry_cpu : float;
      (** frame push + branch-on-bit residency check + virtual call *)
  invoke_return_cpu : float;  (** frame pop + return-time residency check *)
  trap_cpu : float;  (** kernel trap on a non-resident descriptor *)
  (* --- thread migration (remote invocation, §3.4) --- *)
  thread_state_bytes : int;
      (** processor state + control info + active stack pieces *)
  thread_send_cpu : float;  (** marshal + kernel send path, source node *)
  thread_recv_cpu : float;  (** unmarshal + rescheduling, destination *)
  (* --- object creation (§3.2) --- *)
  create_fixed_cpu : float;  (** heap alloc + descriptor init + constructor *)
  create_per_byte_cpu : float;
  (* --- object mobility (§3.4, §3.5) --- *)
  move_fixed_cpu : float;  (** initiation, descriptor updates both ends *)
  move_per_byte_cpu : float;  (** copying contents out of / into the heap *)
  move_ack_bytes : int;  (** completion acknowledgement *)
  preempt_victim_cpu : float;
      (** charged to each thread forcibly descheduled by a move (§3.5) *)
  (* --- forwarding and location (§3.3) --- *)
  forward_lookup_cpu : float;  (** descriptor/forwarding-address probe *)
  locate_req_bytes : int;
  (* --- threads (§2.1) --- *)
  thread_create_cpu : float;
      (** thread object + stack allocation + initial scheduling *)
  thread_join_cpu : float;  (** join rendezvous and result transfer *)
  (* --- synchronization (§2.2) --- *)
  lock_fast_cpu : float;  (** inline acquire/release of an uncontended lock *)
  spin_probe_cpu : float;  (** one spin iteration on a spinlock *)
  (* --- asynchronous invocation (Amber-Async) --- *)
  future_notify_bytes : int;
      (** resolution notice shipped from the node where an async
          invocation completed back to the future's home node: outcome
          tag plus a marshalled scalar result or exception id *)
}

val default : t

(** Scale every CPU cost by [factor] (e.g. to model faster processors, the
    §5 discussion of CPU speed vs. network latency). *)
val scale_cpu : t -> float -> t
