(** Object placement policies.

    The paper argues that "the best policy for managing location is
    application-specific and is best left to the program or higher-level
    object placement software" (§2.3).  This module is that higher level:
    reusable strategies for assigning a family of objects to nodes, plus a
    driver that performs the moves.

    A policy maps an item index to a node.  All strategies are
    deterministic given the runtime (the random one draws from the
    engine's seeded stream). *)

type t

val name : t -> string

(** Node for item [i] of [count]. *)
val assign : t -> i:int -> count:int -> int

(** {1 Strategies} *)

(** Item [i] → node [i mod nodes]. *)
val round_robin : Runtime.t -> t

(** Contiguous blocks: item [i] → node [i*nodes/count] (what the SOR
    program wants: neighbors co-located). *)
val blocked : Runtime.t -> t

(** Every item on one fixed node. *)
val pinned : node:int -> t

(** Uniformly random (deterministic from the simulation seed). *)
val random : Runtime.t -> t

(** Picks, at assignment time, the node with the least total CPU busy
    time — a simple dynamic load-balancer. *)
val least_loaded : Runtime.t -> t

(** Custom policy. *)
val custom : name:string -> (i:int -> count:int -> int) -> t

(** {1 Driver} *)

(** Move each object to its assigned node (skips objects already in
    place).  Fiber context. *)
val distribute : Runtime.t -> t -> 'a Aobject.t array -> unit

(** Install a read replica of each mutable object on its policy-assigned
    node ({!Coherence.install} with [copy]; nodes already holding the
    master are skipped).  Fiber context. *)
val replicate : Runtime.t -> t -> copy:('a -> 'a) -> 'a Aobject.t array -> unit

(** Install a read replica of [obj] on every node except its master's —
    the read-mostly configuration the paper's §4 Ivy comparison favors.
    Fiber context. *)
val replicate_everywhere : Runtime.t -> copy:('a -> 'a) -> 'a Aobject.t -> unit

(** Count of items each node receives under a policy (for reporting and
    tests; uses a fresh draw for random/least-loaded policies). *)
val histogram : Runtime.t -> t -> count:int -> int array
