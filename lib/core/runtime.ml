let log_src = Logs.Src.create "amber.runtime" ~doc:"Amber runtime kernel"

module Log = (val Logs.src_log log_src : Logs.LOG)

type frame = { fobj : Aobject.any; fmode : San_hooks.mode }

type tstate = {
  tcb : Hw.Machine.tcb;
  taddr : int;
  mutable frames : frame list;
  mutable carry_bytes : int;
  mutable migrations : int;
  mutable chase_path : int list;
      (* nodes visited while chasing the current frame's object *)
  mutable result_box : exn option;
}

type counters = {
  mutable local_invocations : int;
  mutable remote_invocations : int;
  mutable thread_migrations : int;
  mutable migration_bytes : int;
  mutable object_moves : int;
  mutable object_copies : int;
  mutable move_bytes : int;
  mutable locates : int;
  mutable forward_hops : int;
  mutable home_fallbacks : int;
  mutable broadcast_locates : int;
  mutable objects_created : int;
  mutable threads_started : int;
  mutable replica_installs : int;
  mutable replica_reads : int;
  mutable replica_invalidations : int;
  mutable gossip_rounds : int;
  mutable steal_requests : int;
  mutable threads_stolen : int;
  mutable balance_moves : int;
  mutable balance_replicas : int;
  mutable async_invocations : int;
  mutable future_notifies : int;
  mutable node_crashes : int;
  mutable node_restarts : int;
  mutable recovery_promotions : int;
  mutable objects_lost : int;
  mutable crash_chain_repairs : int;
}

type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  net : Hw.Ethernet.t;
  machines : Hw.Machine.t array;
  tasks : Topaz.Task.t array;
  rpc_fabric : Topaz.Rpc.t;
  tables : Descriptor.table array;
  heaps : Vaspace.Heap.t array;
  server : Vaspace.Space_server.t;
  threads : (int, tstate) Hashtbl.t;  (* keyed by tcb id *)
  objs : (int, Aobject.any) Hashtbl.t;  (* live objects, keyed by addr *)
  lost_addrs : (int, string) Hashtbl.t;
      (* addr -> name of addresses whose only copy died with a fail-stop
         node (objects and thread objects alike); a chase that dangles on
         one of these raises [Aobject.Object_lost] instead of the generic
         dangling failure.  Empty unless a crash happened. *)
  trc : Sim.Trace.t;
  spans : Sim.Span.t;
  ctrs : counters;
  remote_invoke_latency : Sim.Stats.Summary.t;
  move_latency : Sim.Stats.Summary.t;
  metrics : Sim.Series.t;
      (* Telemetry registry shared by every layer that wants to publish
         time series (serve pushes latency/shed windows, watch registers
         gauges and the sampling tick).  Created disabled; stays inert —
         no points, no clock reads — unless a watcher enables it. *)
  mutable failure_hooks : (kind:string -> node:int -> detail:string -> unit) list;
  mutable san : San_hooks.t option;
  mutable report_sections : (string * (unit -> string list)) list;
}

let fresh_counters () =
  {
    local_invocations = 0;
    remote_invocations = 0;
    thread_migrations = 0;
    migration_bytes = 0;
    object_moves = 0;
    object_copies = 0;
    move_bytes = 0;
    locates = 0;
    forward_hops = 0;
    home_fallbacks = 0;
    broadcast_locates = 0;
    objects_created = 0;
    threads_started = 0;
    replica_installs = 0;
    replica_reads = 0;
    replica_invalidations = 0;
    gossip_rounds = 0;
    steal_requests = 0;
    threads_stolen = 0;
    balance_moves = 0;
    balance_replicas = 0;
    async_invocations = 0;
    future_notifies = 0;
    node_crashes = 0;
    node_restarts = 0;
    recovery_promotions = 0;
    objects_lost = 0;
    crash_chain_repairs = 0;
  }

(* Everything except arming the crash injector, which needs the crash and
   recovery machinery defined at the bottom of this file.  [create] (the
   public constructor) is [create_raw] plus [schedule_crashes]. *)
let create_raw cfg =
  Config.validate cfg;
  Hw.Machine.reset_tids ();
  let eng = Sim.Engine.create ~seed:cfg.Config.seed () in
  let trc = Sim.Trace.create ~capacity:cfg.Config.trace_capacity () in
  let spans =
    Sim.Span.create
      ~clock:(fun () -> Sim.Engine.now eng)
      ~current_tid:(fun () ->
        match Hw.Machine.self () with
        | Some tcb -> Hw.Machine.tcb_id tcb
        | None -> -1)
      ~current_node:(fun () ->
        match Hw.Machine.self () with
        | Some tcb -> Hw.Machine.id (Hw.Machine.home tcb)
        | None -> -1)
      ()
  in
  let machines =
    Array.init cfg.Config.nodes (fun id ->
        Hw.Machine.create ~engine:eng ~id ~cpus:cfg.Config.cpus_per_node
          ~ctx_switch:cfg.Config.ctx_switch ~quantum:cfg.Config.quantum
          ~preempt_cost:cfg.Config.cost.Cost_model.preempt_victim_cpu
          ~trace:trc ())
  in
  let tasks =
    Array.map
      (fun m ->
        Topaz.Task.create ~machine:m
          ~vm:(Topaz.Vm.create ~page_size:cfg.Config.vm_page_size ())
          ())
      machines
  in
  let net =
    Hw.Ethernet.create ~engine:eng
      ~bandwidth_bps:cfg.Config.ether_bandwidth_bps
      ~propagation:cfg.Config.ether_propagation
      ~wire_overhead:cfg.Config.ether_wire_overhead
      ~mac:cfg.Config.ether_mac ~faults:cfg.Config.faults ~trace:trc ()
  in
  let rpc_fabric =
    (* A lossy wire needs an end-to-end transport: retransmission kicks in
       exactly when fault injection is on, so fault-free runs keep the
       original at-most-once packet pattern bit for bit.  Crash injection
       implies reliability too — peer-death detection lives in the
       retransmit protocol. *)
    Topaz.Rpc.create ~ether:net ~tasks ~costs:cfg.Config.rpc_costs
      ~servers_per_node:cfg.Config.rpc_servers_per_node
      ~reliable:
        (cfg.Config.rpc_reliable
        || Hw.Ethernet.faults_enabled cfg.Config.faults
        || Config.crashes_enabled cfg)
      ~max_retransmits:cfg.Config.rpc_max_retransmits
      ~rto:cfg.Config.rpc_rto ~retire_window:cfg.Config.rpc_retire_window
      ~unsafe_count_window_dedup:cfg.Config.rpc_unsafe_dedup
      ?coalesce:cfg.Config.rpc_coalesce ~spans ()
  in
  let server =
    Vaspace.Space_server.create ~nodes:cfg.Config.nodes
      ~initial_per_node:cfg.Config.initial_regions_per_node ()
  in
  let tables =
    Array.init cfg.Config.nodes (fun node -> Descriptor.create_table ~node)
  in
  let rt =
    {
      cfg;
      eng;
      net;
      machines;
      tasks;
      rpc_fabric;
      tables;
      heaps = [||];
      server;
      threads = Hashtbl.create 64;
      objs = Hashtbl.create 64;
      lost_addrs = Hashtbl.create 8;
      trc;
      spans;
      ctrs = fresh_counters ();
      remote_invoke_latency = Sim.Stats.Summary.create ();
      move_latency = Sim.Stats.Summary.create ();
      metrics = Sim.Series.create ~clock:(fun () -> Sim.Engine.now eng) ();
      failure_hooks = [];
      san = None;
      report_sections = [];
    }
  in
  (* Heaps grow by asking the address-space server (an RPC when the
     requester is not the server's node). *)
  let heaps =
    Array.init cfg.Config.nodes (fun node ->
        let initial = ref (Vaspace.Space_server.initial_regions server node) in
        let grow () =
          match !initial with
          | r :: rest ->
            initial := rest;
            r
          | [] ->
            let dst = Vaspace.Space_server.server_node server in
            Topaz.Rpc.call rpc_fabric ~dst ~kind:"as-grant" ~req_size:32
              ~work:(fun () ->
                (48, Vaspace.Space_server.grant server ~node))
        in
        Vaspace.Heap.create ~node ~grow ())
  in
  { rt with heaps }

let config t = t.cfg
let cost t = t.cfg.Config.cost
let engine t = t.eng
let ether t = t.net
let rpc t = t.rpc_fabric
let trace t = t.trc
let spans t = t.spans
let nodes t = Array.length t.machines

let machine t i =
  if i < 0 || i >= Array.length t.machines then
    invalid_arg "Runtime.machine: bad node";
  t.machines.(i)

let task t i =
  if i < 0 || i >= Array.length t.tasks then
    invalid_arg "Runtime.task: bad node";
  t.tasks.(i)

let descriptors t i =
  if i < 0 || i >= Array.length t.tables then
    invalid_arg "Runtime.descriptors: bad node";
  t.tables.(i)

let heap t i =
  if i < 0 || i >= Array.length t.heaps then
    invalid_arg "Runtime.heap: bad node";
  t.heaps.(i)

let space_server t = t.server
let now t = Sim.Engine.now t.eng
let counters t = t.ctrs
let remote_invoke_latency t = t.remote_invoke_latency
let move_latency t = t.move_latency
let metrics t = t.metrics

(* Typed-failure notification seam: the flight recorder (lib/watch)
   subscribes here so postmortem dumps need no dependency from the crash
   machinery on the observability layer.  With no hooks registered the
   notify sites cost one list match. *)
let on_failure t f = t.failure_hooks <- t.failure_hooks @ [ f ]

let notify_failure t ~kind ~node ~detail =
  match t.failure_hooks with
  | [] -> ()
  | hooks -> List.iter (fun f -> f ~kind ~node ~detail) hooks

(* Runtime-level trace records carry the structured context (who emitted,
   from where, under which span); raw Hw-layer emitters leave the fields
   at -1.  All field computation is behind the enabled check. *)
let emit t category detail =
  if Sim.Trace.enabled t.trc then begin
    let node, cpu, tid =
      match Hw.Machine.self () with
      | Some tcb ->
        let cpu =
          match Hw.Machine.state tcb with
          | Hw.Machine.Running c -> c
          | _ -> -1
        in
        (Hw.Machine.id (Hw.Machine.home tcb), cpu, Hw.Machine.tcb_id tcb)
      | None -> (-1, -1, -1)
    in
    let span, parent =
      let sp = Sim.Span.current t.spans in
      if sp = 0 then (-1, -1) else (sp, Sim.Span.parent_of t.spans sp)
    in
    Sim.Trace.emit t.trc ~time:(now t) ~node ~cpu ~tid ~span ~parent ~category
      ~detail ()
  end

(* --- sanitizer hooks ----------------------------------------------------- *)

let set_sanitizer t h = t.san <- Some h
let clear_sanitizer t = t.san <- None
let sanitizer t = t.san

(* Disabled sanitizer = one branch, like a disabled trace. *)
let with_san t f = match t.san with None -> () | Some h -> f h

let add_report_section t ~name f =
  t.report_sections <- t.report_sections @ [ (name, f) ]

let report_sections t = t.report_sections

(* --- thread bookkeeping ------------------------------------------------- *)

let register_thread t ts =
  Hashtbl.replace t.threads (Hw.Machine.tcb_id ts.tcb) ts

let unregister_thread t ts =
  Hashtbl.remove t.threads (Hw.Machine.tcb_id ts.tcb)

let current_opt t =
  match Hw.Machine.self () with
  | None -> None
  | Some tcb -> Hashtbl.find_opt t.threads (Hw.Machine.tcb_id tcb)

let current t =
  match current_opt t with
  | Some ts -> ts
  | None -> failwith "Runtime.current: caller is not an Amber thread"

let current_node _t = Hw.Machine.id (Hw.Machine.self_machine ())

let tstate_of_tcb t tcb = Hashtbl.find_opt t.threads (Hw.Machine.tcb_id tcb)

let iter_threads t f = Hashtbl.iter (fun _ ts -> f ts) t.threads

(* --- address space ------------------------------------------------------ *)

let home_node t ~addr =
  match Vaspace.Space_server.owner_of_addr t.server addr with
  | Some node -> node
  | None ->
    invalid_arg (Printf.sprintf "Runtime.home_node: 0x%x is not a heap address" addr)

let alloc_addr t ~node ~size = Vaspace.Heap.alloc (heap t node) size

(* --- location protocol -------------------------------------------------- *)

let probe t ~node ~addr =
  match Descriptor.get (descriptors t node) addr with
  | Some Descriptor.Resident -> `Resident
  | Some (Descriptor.Forwarded n) -> `Hop n
  | Some (Descriptor.Replica m) -> `Replica m
  | None -> `Hop (home_node t ~addr)

(* Fail-stop death of one Amber thread: close its open spans, drop its
   invocation frames (the work died with the node), and turn its thread
   object into a permanently lost address so a later Join's chase fails
   crisply with [Object_lost] instead of wandering the descriptor web —
   the outcome itself is read off the tcb, which survives.  Idempotent;
   used both by the crash handler's sweep and by a thread-state flight
   whose endpoint died mid-air. *)
let crash_kill_thread t ts e =
  if not (Hw.Machine.was_killed ts.tcb) then begin
    let tid = Hw.Machine.tcb_id ts.tcb in
    Sim.Span.finish_all_for t.spans ~tid;
    ts.frames <- [];
    ts.chase_path <- [];
    Hashtbl.replace t.lost_addrs ts.taddr (Hw.Machine.tcb_name ts.tcb);
    Array.iter (fun tbl -> Descriptor.clear tbl ts.taddr) t.tables;
    Hw.Machine.kill ts.tcb e
  end

(* One-way thread-state flight used both by explicit migration and by the
   context-switch-in residency check.  Safe outside fiber context: CPU
   costs are charged to the thread's own pending-work account. *)
let send_thread_packet t ts ~dest =
  let c = cost t in
  let src = Hw.Machine.id (Hw.Machine.home ts.tcb) in
  let size = c.Cost_model.thread_state_bytes + ts.carry_bytes in
  t.ctrs.thread_migrations <- t.ctrs.thread_migrations + 1;
  t.ctrs.migration_bytes <- t.ctrs.migration_bytes + size;
  ts.migrations <- ts.migrations + 1;
  Hw.Machine.add_pending_work ts.tcb
    (c.Cost_model.thread_send_cpu +. c.Cost_model.thread_recv_cpu);
  (* The thread object itself moves through the object space (§3.4): it
     leaves a forwarding address like any other object, which is what a
     later Join has to chase. *)
  Descriptor.set_forwarded (descriptors t src) ts.taddr dest;
  emit t "migrate"
    (lazy
      (Printf.sprintf "%s: node%d -> node%d (%dB)"
         (Hw.Machine.tcb_name ts.tcb) src dest size));
  with_san t (fun h -> h.San_hooks.on_migrate ~tcb:ts.tcb ~src ~dst:dest);
  let sp =
    Sim.Span.start_flow t.spans Sim.Span.Thread_flight
      ~label:(Hw.Machine.tcb_name ts.tcb)
      ~tid:(Hw.Machine.tcb_id ts.tcb) ~arg:dest ()
  in
  (* Thread state must survive packet loss — a dropped flight would
     strand the thread forever — so it rides the reliable datagram
     service (a plain send when faults are off).  A flight whose endpoint
     fail-stops mid-air kills the thread: its state died with the wire. *)
  Topaz.Rpc.send_reliable t.rpc_fabric
    ~on_dead:(fun e ->
      Sim.Span.finish t.spans sp;
      crash_kill_thread t ts e)
    ~src ~dst:dest ~size ~kind:"thread"
    (fun () ->
      if not (Hw.Machine.was_killed ts.tcb) then begin
        Sim.Span.finish t.spans sp;
        Descriptor.set_resident (descriptors t dest) ts.taddr;
        Hw.Machine.transfer ts.tcb ~dest:(machine t dest);
        Hw.Machine.wake ts.tcb
      end)

(* Public face of the flight above: the balancer's thread stealer ships a
   parked victim thread exactly the way the residency check does. *)
let migrate_thread = send_thread_packet

(* §3.3: when a chase ends, every node the thread passed through learns
   the object's location (piggybacked on the protocol, no extra packets),
   so later references take a single hop. *)
let flush_chase_compression t ts ~addr ~found =
  List.iter
    (fun v ->
      (* Never overwrite a replica descriptor (the node still holds a
         usable read-only copy; only an invalidation may retire it) or a
         resident one (a concurrent move may have landed the object on a
         node this chase visited while it was still stale — clobbering
         residency would orphan the object; only the move protocol
         retires Resident). *)
      if
        v <> found
        && (not (Descriptor.is_replica (descriptors t v) addr))
        && not (Descriptor.is_resident (descriptors t v) addr)
      then Descriptor.set_forwarded (descriptors t v) addr found)
    ts.chase_path;
  ts.chase_path <- []

let install_resume_check t ts =
  Hw.Machine.set_on_resume ts.tcb
    (Some
       (fun tcb ->
         match ts.frames with
         | [] -> true
         | top :: _ ->
           let here = Hw.Machine.id (Hw.Machine.home tcb) in
           let addr = Aobject.addr_of_any top.fobj in
           let follow next =
             if List.length ts.chase_path >= t.cfg.Config.max_forward_hops
             then
               (* The switch-in chase has followed as many hops as the
                  forwarding budget allows without finding the object —
                  stale descriptors may form a loop here.  Let the thread
                  run: the in-fiber chase applies the home-node fallback
                  and dangling detection, which this callback cannot. *)
               true
             else begin
               (* The object moved while we were descheduled: chase it
                  (§3.5's context-switch-in check). *)
               ts.chase_path <- here :: ts.chase_path;
               Hw.Machine.park tcb;
               send_thread_packet t ts ~dest:next;
               false
             end
           in
           (match probe t ~node:here ~addr with
           | `Resident ->
             if ts.chase_path <> [] then
               flush_chase_compression t ts ~addr ~found:here;
             true
           | `Replica master when top.fmode = San_hooks.Read ->
             (* A read frame is as happy on a replica as on the master;
                visited nodes learn the master hint, not the replica. *)
             if ts.chase_path <> [] then
               flush_chase_compression t ts ~addr ~found:master;
             true
           | `Replica master -> follow master
           | `Hop next when next = here ->
             (* Dangling reference (destroyed object): let the thread run
                so the protocol path inside the fiber raises properly. *)
             true
           | `Hop next -> follow next)))

let migrate_self t ?(payload = 0) ~dest () =
  let ts = current t in
  let c = cost t in
  let src = current_node t in
  if src <> dest then begin
    Sim.Fiber.consume c.Cost_model.thread_send_cpu;
    let size = c.Cost_model.thread_state_bytes + payload in
    t.ctrs.thread_migrations <- t.ctrs.thread_migrations + 1;
    t.ctrs.migration_bytes <- t.ctrs.migration_bytes + size;
    ts.migrations <- ts.migrations + 1;
    Descriptor.set_forwarded (descriptors t src) ts.taddr dest;
    emit t "migrate"
      (lazy
        (Printf.sprintf "%s: node%d -> node%d (%dB, explicit)"
           (Hw.Machine.tcb_name ts.tcb) src dest size));
    with_san t (fun h -> h.San_hooks.on_migrate ~tcb:ts.tcb ~src ~dst:dest);
    let sp =
      Sim.Span.start_flow t.spans Sim.Span.Thread_flight
        ~label:(Hw.Machine.tcb_name ts.tcb)
        ~arg:dest ()
    in
    Sim.Fiber.block (fun wake ->
        Topaz.Rpc.send_reliable t.rpc_fabric
          ~on_dead:(fun e ->
            Sim.Span.finish t.spans sp;
            crash_kill_thread t ts e)
          ~src ~dst:dest ~size ~kind:"thread" (fun () ->
            if not (Hw.Machine.was_killed ts.tcb) then begin
              Sim.Span.finish t.spans sp;
              Descriptor.set_resident (descriptors t dest) ts.taddr;
              Hw.Machine.transfer ts.tcb ~dest:(machine t dest);
              wake ()
            end));
    Sim.Fiber.consume c.Cost_model.thread_recv_cpu
  end

(* --- the shared chain chase ---------------------------------------------- *)

type 'a chase_step = Found of 'a | Follow of int | Miss

(* [chase] is the one forwarding-chain walker in the system; Locate,
   MoveTo, invocation settling and the invocation return path all express
   their per-node probe as a [step] function and share the policy here:

   - [Follow next] with [next = node] is a self-loop left by sabotaged
     descriptors: the reference is dangling.
   - [Miss] (uninitialized descriptor) away from the object's {e home
     node} means that node never heard of the object, or a move is in
     flight (the source already forwarded, the destination not yet
     installed): bounce to the home node, whose region owner learns of
     the object at creation and is the one place a live object can
     always be traced from (§3.3).  A [Miss] {e at} the home node means
     the object was destroyed there — the only node where a heap block
     can be freed — so the reference is dangling.
   - A chain longer than [max_forward_hops] (stale descriptors can form
     long, even looping, chains under message loss) is {e repaired} by
     restarting from the home node with a fresh hop budget instead of
     failing; each restart is counted in [home_fallbacks].
   - Two home-restart walks that observe the {e identical} trail of
     descriptors mean the chain is static and cannot reach the object —
     concurrent moves can strand the home node inside a mutual stale
     pair (e.g. [0 -> 1 -> 0] with the object at 2) that no flush ever
     visits.  Emerald, Amber's ancestor, resolves exactly this with a
     last-resort exhaustive search; we do the same: probe every node in
     turn for the resident copy ([broadcast_locates] counts these) and
     resume the walk there, which lets the caller's §3.3 compression
     rewrite the stale cycle.  A trail that keeps changing instead means
     moves are in flight repairing it: back off and re-walk.  Only when
     repeated searches find no resident copy — the descriptors and the
     object both mutating faster than we chase — does the chase give
     up. *)
let chase t ~what ~addr ~start ~step =
  let budget = t.cfg.Config.max_forward_hops in
  let c = cost t in
  let home = home_node t ~addr in
  let dangling () =
    (* A dangling reference to an address the crash injector registered as
       lost is not a protocol bug: the only copy died with its node. *)
    (match Hashtbl.find_opt t.lost_addrs addr with
    | Some name -> raise (Aobject.Object_lost { addr; name })
    | None -> ());
    failwith (Printf.sprintf "%s: dangling reference to 0x%x" what addr)
  in
  (* Trail of the previous budget-exhausted walk that started at the home
     node, as (node, decision) pairs. *)
  let prev_trail = ref [] in
  let give_up fallbacks =
    failwith
      (Printf.sprintf
         "%s: reference to 0x%x did not resolve after %d home-node restarts"
         what addr (fallbacks - 1))
  in
  let probe_for_scan node =
    if node = current_node t then begin
      Sim.Fiber.consume c.Cost_model.forward_lookup_cpu;
      Descriptor.get (descriptors t node) addr
    end
    else
      Topaz.Rpc.call t.rpc_fabric ~dst:node ~kind:"bcast-locate"
        ~req_size:c.Cost_model.locate_req_bytes ~work:(fun () ->
          Sim.Fiber.consume c.Cost_model.forward_lookup_cpu;
          (16, Descriptor.get (descriptors t node) addr))
  in
  let rec restart ~trail fallbacks =
    if fallbacks > 10 then give_up fallbacks
    else if fallbacks >= 3 && trail = !prev_trail then
      (* The walk that just exhausted its budget started at home; so did
         the one recorded in [prev_trail].  The identical trail twice
         means nothing is repairing the chain: search exhaustively. *)
      broadcast fallbacks
    else begin
      if fallbacks >= 3 then
        (* Still mutating: give the in-flight installation time to land
           before walking again. *)
        Sim.Fiber.consume
          (Float.min 50e-3 (1e-3 *. Float.of_int (1 lsl (fallbacks - 3))));
      if fallbacks >= 2 then prev_trail := trail;
      t.ctrs.home_fallbacks <- t.ctrs.home_fallbacks + 1;
      emit t "chase"
        (lazy
          (Printf.sprintf
             "%s: hop budget (%d) exhausted for 0x%x, restarting at home node%d"
             what budget addr home));
      walk home ~hops:0 ~fallbacks ~trail:[]
    end
  and broadcast fallbacks =
    if fallbacks > 10 then give_up fallbacks
    else begin
      t.ctrs.broadcast_locates <- t.ctrs.broadcast_locates + 1;
      emit t "chase"
        (lazy
          (Printf.sprintf
             "%s: forwarding web for 0x%x is wedged, serial-searching all \
              nodes"
             what addr));
      let rec scan node =
        if node >= t.cfg.Config.nodes then None
        else
          match probe_for_scan node with
          | Some Descriptor.Resident -> Some node
          | Some (Descriptor.Forwarded _ | Descriptor.Replica _) | None ->
            scan (node + 1)
      in
      match scan 0 with
      | Some r -> walk r ~hops:0 ~fallbacks ~trail:[]
      | None ->
        (* No node holds the object right now: it is in flight.  Let the
           move land, then search again. *)
        Sim.Fiber.consume 2e-3;
        broadcast (fallbacks + 1)
    end
  and walk node ~hops ~fallbacks ~trail =
    if hops > budget then restart ~trail:(List.rev trail) (fallbacks + 1)
    else
      (* The first probe at the starting node is the local fast path; every
         later probe is one causally-nested hop of the chase. *)
      let sp =
        if hops > 0 || node <> start then
          Sim.Span.start t.spans Sim.Span.Chase_hop ~label:what ~obj:addr
            ~arg:node ()
        else 0
      in
      match
        match step ~node ~hops with
        | v ->
          Sim.Span.finish t.spans sp;
          v
        | exception e ->
          Sim.Span.finish t.spans sp;
          raise e
      with
      | Found v -> v
      | Follow next ->
        if next = node then dangling ();
        t.ctrs.forward_hops <- t.ctrs.forward_hops + 1;
        walk next ~hops:(hops + 1) ~fallbacks ~trail:((node, next) :: trail)
      | Miss ->
        if node <> home then begin
          t.ctrs.forward_hops <- t.ctrs.forward_hops + 1;
          walk home ~hops:(hops + 1) ~fallbacks ~trail:((node, -1) :: trail)
        end
        else dangling ()
  in
  walk start ~hops:0 ~fallbacks:0 ~trail:[]

let resolve_location t ~addr =
  let c = cost t in
  let here = current_node t in
  let visited = ref [] in
  let lookup node =
    Sim.Fiber.consume c.Cost_model.forward_lookup_cpu;
    Descriptor.get (descriptors t node) addr
  in
  let found =
    chase t ~what:"Runtime.resolve_location" ~addr ~start:here
      ~step:(fun ~node ~hops:_ ->
        let d =
          if node = here then lookup node
          else
            Topaz.Rpc.call t.rpc_fabric ~dst:node ~kind:"locate"
              ~req_size:c.Cost_model.locate_req_bytes ~work:(fun () ->
                (16, lookup node))
        in
        match d with
        | Some Descriptor.Resident ->
          visited := node :: !visited;
          Found node
        | Some (Descriptor.Forwarded next) ->
          visited := node :: !visited;
          Follow next
        | Some (Descriptor.Replica master) ->
          (* A replica node knows where the master was; locate wants the
             master copy, so keep chasing. *)
          visited := node :: !visited;
          Follow master
        | None ->
          (* The start node's uninitialized descriptor also gets the
             answer cached (the chase bounces via the home node). *)
          visited := node :: !visited;
          Miss)
  in
  (* §3.3: the answer is cached on the nodes along the chain — except on
     replica nodes, whose read-only copy stays usable until invalidated,
     and nodes that became the object's residence while the chase ran (a
     concurrent move may land the object on a node already recorded as
     stale; flushing Forwarded over it would orphan the object). *)
  List.iter
    (fun v ->
      if
        v <> found
        && (not (Descriptor.is_replica (descriptors t v) addr))
        && not (Descriptor.is_resident (descriptors t v) addr)
      then Descriptor.set_forwarded (descriptors t v) addr found)
    !visited;
  found

(* --- object lifecycle ---------------------------------------------------- *)

let create_object t ?(size = 64) ~name state =
  let _ts = current t in
  let node = current_node t in
  let c = cost t in
  Sim.Fiber.consume
    (c.Cost_model.create_fixed_cpu
    +. (c.Cost_model.create_per_byte_cpu *. float_of_int size));
  let addr = alloc_addr t ~node ~size in
  Descriptor.set_resident (descriptors t node) addr;
  t.ctrs.objects_created <- t.ctrs.objects_created + 1;
  emit t "create"
    (lazy (Printf.sprintf "%s@0x%x (%dB) on node%d" name addr size node));
  let obj = Aobject.make ~addr ~name ~size ~node state in
  Hashtbl.replace t.objs addr (Aobject.Any obj);
  with_san t (fun h -> h.San_hooks.on_object_created (Aobject.Any obj));
  obj

let destroy_object t obj =
  let node = current_node t in
  if obj.Aobject.location <> node then
    invalid_arg "Runtime.destroy_object: object is not resident here";
  if obj.Aobject.attached <> [] || obj.Aobject.parent <> None then
    invalid_arg "Runtime.destroy_object: object has attachments";
  if (not obj.Aobject.immutable_) && obj.Aobject.replicas <> [] then
    invalid_arg "Runtime.destroy_object: object has live read replicas";
  Sim.Fiber.consume (cost t).Cost_model.forward_lookup_cpu;
  (* The block belongs to the heap that allocated it — the address's home
     node — which is not the current node once the object has migrated.
     Freeing locally here crashed (and leaked the home block) for any
     travelled object. *)
  let home = home_node t ~addr:obj.Aobject.addr in
  Vaspace.Heap.free (heap t home) obj.Aobject.addr;
  Descriptor.clear (descriptors t node) obj.Aobject.addr;
  (* The home node is every chase's fallback authority: clearing its
     entry too turns a later touch of the dead address into a crisp
     dangling failure.  Leaving the stale forwarding entry made the
     chase loop home → ghost until its restart budget ran out. *)
  if home <> node then Descriptor.clear (descriptors t home) obj.Aobject.addr;
  Hashtbl.remove t.objs obj.Aobject.addr;
  with_san t (fun h -> h.San_hooks.on_object_destroyed ~addr:obj.Aobject.addr)

(* Sorted by address so policy layers scanning the population see a
   deterministic order regardless of hash-table internals. *)
let objects t =
  Hashtbl.fold (fun _ o acc -> o :: acc) t.objs []
  |> List.sort (fun a b ->
         compare (Aobject.addr_of_any a) (Aobject.addr_of_any b))

let check_failures t =
  Array.iter
    (fun m ->
      match Hw.Machine.failures m with
      | [] -> ()
      | (tcb, e) :: _ ->
        Log.err (fun f -> f "thread %s failed" (Hw.Machine.tcb_name tcb));
        raise e)
    t.machines

(* --- crash injection and recovery (Amber-Phoenix) ------------------------- *)

(* Transient outage: the machine freezes (threads keep their state) and
   the wire drops packets addressed to it.  Nothing is recovered because
   nothing is lost — the restart resumes exactly where the crash cut. *)
let node_down t ~node =
  t.ctrs.node_crashes <- t.ctrs.node_crashes + 1;
  emit t "crash" (lazy (Printf.sprintf "node%d down (transient)" node));
  if t.failure_hooks <> [] then
    notify_failure t ~kind:"node_down" ~node
      ~detail:(Printf.sprintf "node%d down (transient)" node);
  Sim.Engine.note_access t.eng (Printf.sprintf "net:n%d" node);
  Hw.Ethernet.set_node_down t.net node;
  Hw.Machine.set_down t.machines.(node)

let node_restart t ~node =
  t.ctrs.node_restarts <- t.ctrs.node_restarts + 1;
  emit t "crash" (lazy (Printf.sprintf "node%d restarting" node));
  Sim.Engine.note_access t.eng (Printf.sprintf "net:n%d" node);
  Hw.Ethernet.set_node_up t.net node;
  Hw.Machine.set_up t.machines.(node)

(* Fail-stop recovery of one object whose state touched the dead node.

   - Master alive: drop the dead node from the replica set (its copy is
     gone; no recall needed — there is nobody to recall from).
   - Master dead, live copy exists: promote.  For a mutable object the
     best copy is the highest-epoch snapshot on a live node (ties to the
     lowest node id for determinism); writes after that snapshot are
     lost, so the epoch rolls back with the state.  Surviving replicas at
     the same epoch stay replicas of the new master; stale ones are
     recalled in place (their copy is dropped and their descriptor
     forwards to the new master).  For an immutable object every replica
     is a full copy: the lowest live replica node becomes the new master.
   - Master dead, no live copy: the object is lost.  Every further access
     raises [Object_lost]. *)
let recover_object t ~dead (Aobject.Any o) =
  if not o.Aobject.lost then begin
    let addr = o.Aobject.addr in
    let touched = o.Aobject.location = dead || List.mem dead o.Aobject.replicas in
    if touched then Sim.Engine.note_access t.eng (Printf.sprintf "obj:%d" addr);
    if o.Aobject.location <> dead then begin
      (* Master survived: forget the dead replica, if any. *)
      if List.mem dead o.Aobject.replicas then begin
        o.Aobject.replicas <- List.filter (fun n -> n <> dead) o.Aobject.replicas;
        o.Aobject.grants <- List.filter (fun (n, _) -> n <> dead) o.Aobject.grants;
        Aobject.drop_snapshot o ~node:dead
      end
    end
    else if o.Aobject.immutable_ then begin
      match List.sort compare (List.filter (fun n -> n <> dead) o.Aobject.replicas) with
      | n :: rest ->
        t.ctrs.recovery_promotions <- t.ctrs.recovery_promotions + 1;
        emit t "crash"
          (lazy (Printf.sprintf "%s@0x%x: immutable master node%d -> node%d"
                   o.Aobject.name addr dead n));
        o.Aobject.location <- n;
        o.Aobject.replicas <- rest
      | [] ->
        t.ctrs.objects_lost <- t.ctrs.objects_lost + 1;
        emit t "crash"
          (lazy (Printf.sprintf "%s@0x%x lost with node%d" o.Aobject.name addr dead));
        o.Aobject.lost <- true;
        Hashtbl.replace t.lost_addrs addr o.Aobject.name;
        Array.iter (fun tbl -> Descriptor.clear tbl addr) t.tables;
        if t.failure_hooks <> [] then
          notify_failure t ~kind:"object_lost" ~node:dead
            ~detail:(Printf.sprintf "%s@0x%x" o.Aobject.name addr)
    end
    else begin
      let survivors =
        List.filter (fun (n, _, _) -> n <> dead) o.Aobject.rcopies
      in
      let best =
        List.fold_left
          (fun acc (n, ep, v) ->
            match acc with
            | Some (bn, bep, _) when bep > ep || (bep = ep && bn < n) -> acc
            | _ -> Some (n, ep, v))
          None survivors
      in
      match best with
      | Some (n, ep, v) ->
        t.ctrs.recovery_promotions <- t.ctrs.recovery_promotions + 1;
        emit t "crash"
          (lazy (Printf.sprintf "%s@0x%x: promoting replica on node%d (epoch %d)"
                   o.Aobject.name addr n ep));
        o.Aobject.state <- v;
        o.Aobject.location <- n;
        o.Aobject.epoch <- ep;
        o.Aobject.writers <- 0;
        Aobject.drop_snapshot o ~node:n;
        Descriptor.set_resident t.tables.(n) addr;
        (* Surviving snapshots at the promoted epoch stay consistent read
           replicas; anything else rolls back with the master and is
           recalled in place. *)
        let keep, stale =
          List.partition (fun (_, sep, _) -> sep = ep)
            (List.filter (fun (sn, _, _) -> sn <> n) survivors)
        in
        o.Aobject.rcopies <- keep;
        o.Aobject.replicas <- List.map (fun (sn, _, _) -> sn) keep;
        o.Aobject.grants <-
          List.filter
            (fun (gn, _) -> List.exists (fun (sn, _, _) -> sn = gn) keep)
            o.Aobject.grants;
        List.iter
          (fun (sn, _, _) -> Descriptor.set_replica t.tables.(sn) addr n)
          keep;
        List.iter
          (fun (sn, _, _) -> Descriptor.set_forwarded t.tables.(sn) addr n)
          stale
      | None ->
        t.ctrs.objects_lost <- t.ctrs.objects_lost + 1;
        emit t "crash"
          (lazy (Printf.sprintf "%s@0x%x lost with node%d" o.Aobject.name addr dead));
        o.Aobject.lost <- true;
        o.Aobject.writers <- 0;
        o.Aobject.replicas <- [];
        o.Aobject.grants <- [];
        o.Aobject.rcopies <- [];
        Hashtbl.replace t.lost_addrs addr o.Aobject.name;
        Array.iter (fun tbl -> Descriptor.clear tbl addr) t.tables;
        if t.failure_hooks <> [] then
          notify_failure t ~kind:"object_lost" ~node:dead
            ~detail:(Printf.sprintf "%s@0x%x" o.Aobject.name addr)
    end
  end

(* §3.3 after a funeral: every live descriptor still routing through the
   corpse — the home node's fallback entry above all — is rewritten to
   point at the post-recovery location, so chains that passed through the
   dead node resolve again without touching it.  Thread objects of
   surviving threads get the same treatment.  Skippable by the model
   checker's [crash_skip_repair] mutation, which demonstrates the step is
   load-bearing: an unrepaired chain walks into the corpse and dies of
   [Node_dead]. *)
let repair_chains t ~dead =
  let repair addr loc =
    Array.iteri
      (fun n tbl ->
        if n <> dead then
          match Descriptor.get tbl addr with
          | Some (Descriptor.Forwarded d) when d = dead ->
            t.ctrs.crash_chain_repairs <- t.ctrs.crash_chain_repairs + 1;
            Descriptor.set_forwarded tbl addr loc
          | _ -> ())
      t.tables
  in
  List.iter
    (fun (Aobject.Any o) ->
      if not o.Aobject.lost then repair o.Aobject.addr o.Aobject.location)
    (objects t);
  Hashtbl.fold (fun _ ts acc -> ts :: acc) t.threads []
  |> List.sort (fun a b ->
         compare (Hw.Machine.tcb_id a.tcb) (Hw.Machine.tcb_id b.tcb))
  |> List.iter (fun ts ->
         if not (Hw.Machine.was_killed ts.tcb) then
           repair ts.taddr (Hw.Machine.id (Hw.Machine.home ts.tcb)))

let fail_stop t ~node:dead =
  t.ctrs.node_crashes <- t.ctrs.node_crashes + 1;
  emit t "crash" (lazy (Printf.sprintf "node%d fail-stop" dead));
  (* Notify before recovery runs: a flight dump taken here captures the
     pre-crash window, not the repair traffic. *)
  if t.failure_hooks <> [] then
    notify_failure t ~kind:"node_dead" ~node:dead
      ~detail:(Printf.sprintf "node%d fail-stop" dead);
  Sim.Engine.note_access t.eng (Printf.sprintf "net:n%d" dead);
  (* The wire stops delivering to the corpse, and the transport aborts
     every outstanding transaction touching it.  Victims are collected
     first: the transport's [on_dead] callbacks (e.g. a thread flight)
     may kill — and thereby unregister — some of them. *)
  Hw.Ethernet.set_node_down t.net dead;
  let victims =
    Hashtbl.fold
      (fun _ ts acc ->
        if Hw.Machine.id (Hw.Machine.home ts.tcb) = dead then ts :: acc
        else acc)
      t.threads []
    |> List.sort (fun a b ->
           compare (Hw.Machine.tcb_id a.tcb) (Hw.Machine.tcb_id b.tcb))
  in
  Topaz.Rpc.mark_node_dead t.rpc_fabric ~node:dead;
  (* The machine freezes and every Amber thread that lived there dies. *)
  Hw.Machine.set_down t.machines.(dead);
  List.iter
    (fun ts ->
      Sim.Engine.note_access t.eng
        (Printf.sprintf "tcb:%d" (Hw.Machine.tcb_id ts.tcb));
      crash_kill_thread t ts (Topaz.Rpc.Node_dead { node = dead }))
    victims;
  (* The corpse's server fibers are frozen mid-handler and will never
     unwind: retire whatever spans they hold open so traces stay
     balanced (Amber threads get the same treatment via
     [crash_kill_thread] above). *)
  List.iter
    (fun tid -> Sim.Span.finish_all_for t.spans ~tid)
    (Topaz.Rpc.server_tids t.rpc_fabric ~node:dead);
  (* The corpse's memory is gone, descriptor table included. *)
  t.tables.(dead) <- Descriptor.create_table ~node:dead;
  List.iter (fun any -> recover_object t ~dead any) (objects t);
  if not t.cfg.Config.crash_skip_repair then repair_chains t ~dead

(* Arm the crash injector.  With no crash configured this does nothing at
   all — no RNG split, no events — so crash-free runs stay byte-identical
   to a build without the injector. *)
let schedule_crashes t =
  let cfg = t.cfg in
  if Config.crashes_enabled cfg then begin
    let drawn =
      if cfg.Config.crash_rate > 0.0 then begin
        (* A dedicated stream, split once; each node consumes a fixed
           number of draws so one node's outcome never shifts another's. *)
        let rng = Sim.Rng.split (Sim.Engine.rng t.eng) in
        let acc = ref [] in
        for node = 1 to cfg.Config.nodes - 1 do
          let p = Sim.Rng.float rng in
          let at = Sim.Rng.uniform rng ~lo:0.05 ~hi:1.0 in
          if
            p < cfg.Config.crash_rate
            && not
                 (List.exists
                    (fun c -> c.Config.cnode = node)
                    cfg.Config.crashes)
          then
            acc :=
              {
                Config.cnode = node;
                at;
                restart = Some (at +. (16.0 *. cfg.Config.rpc_rto));
              }
              :: !acc
        done;
        List.rev !acc
      end
      else []
    in
    List.iter
      (fun c ->
        let key = Printf.sprintf "node:%d" c.Config.cnode in
        ignore
          (Sim.Engine.schedule_at t.eng ~key
             ~label:(Printf.sprintf "crash node%d" c.Config.cnode)
             ~time:c.Config.at
             (fun () ->
               match c.Config.restart with
               | Some _ -> node_down t ~node:c.Config.cnode
               | None -> fail_stop t ~node:c.Config.cnode)
            : Sim.Engine.event_id);
        match c.Config.restart with
        | None -> ()
        | Some r ->
          ignore
            (Sim.Engine.schedule_at t.eng ~key
               ~label:(Printf.sprintf "restart node%d" c.Config.cnode)
               ~time:r
               (fun () -> node_restart t ~node:c.Config.cnode)
              : Sim.Engine.event_id))
      (cfg.Config.crashes @ drawn)
  end

let create cfg =
  let t = create_raw cfg in
  schedule_crashes t;
  t

let node_is_up t i = Hw.Machine.is_up (machine t i)
let lost_object_count t = Hashtbl.length t.lost_addrs
