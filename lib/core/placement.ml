type t = { pname : string; pick : i:int -> count:int -> int }

let name t = t.pname
let assign t ~i ~count = t.pick ~i ~count

let round_robin rt =
  let nodes = Runtime.nodes rt in
  { pname = "round-robin"; pick = (fun ~i ~count:_ -> i mod nodes) }

let blocked rt =
  let nodes = Runtime.nodes rt in
  {
    pname = "blocked";
    pick = (fun ~i ~count -> if count = 0 then 0 else i * nodes / count);
  }

let pinned ~node = { pname = "pinned"; pick = (fun ~i:_ ~count:_ -> node) }

let random rt =
  let nodes = Runtime.nodes rt in
  let rng = Sim.Rng.split (Sim.Engine.rng (Runtime.engine rt)) in
  { pname = "random"; pick = (fun ~i:_ ~count:_ -> Sim.Rng.int rng nodes) }

let least_loaded rt =
  {
    pname = "least-loaded";
    pick =
      (fun ~i:_ ~count:_ ->
        (* Instantaneous load (queued + running threads), not cumulative
           busy time: a node that worked hard early but is idle now must
           be eligible again. *)
        let best = ref 0 and best_load = ref max_int in
        for n = 0 to Runtime.nodes rt - 1 do
          let load = Hw.Machine.current_load (Runtime.machine rt n) in
          if load < !best_load then begin
            best := n;
            best_load := load
          end
        done;
        !best);
  }

let custom ~name pick = { pname = name; pick }

let distribute rt t objs =
  let count = Array.length objs in
  Array.iteri
    (fun i obj ->
      let dest = t.pick ~i ~count in
      if dest < 0 || dest >= Runtime.nodes rt then
        invalid_arg "Placement.distribute: assignment outside the cluster";
      if obj.Aobject.location <> dest then Mobility.move_to rt obj ~dest)
    objs

let replicate rt t ~copy objs =
  let count = Array.length objs in
  Array.iteri
    (fun i obj ->
      let dest = t.pick ~i ~count in
      if dest < 0 || dest >= Runtime.nodes rt then
        invalid_arg "Placement.replicate: assignment outside the cluster";
      if obj.Aobject.location <> dest then
        Coherence.install rt ~copy obj ~dest)
    objs

let replicate_everywhere rt ~copy obj =
  for dest = 0 to Runtime.nodes rt - 1 do
    if obj.Aobject.location <> dest then Coherence.install rt ~copy obj ~dest
  done

let histogram rt t ~count =
  let h = Array.make (Runtime.nodes rt) 0 in
  for i = 0 to count - 1 do
    let n = t.pick ~i ~count in
    h.(n) <- h.(n) + 1
  done;
  h
