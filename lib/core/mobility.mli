(** Object mobility: MoveTo, Locate, Attach/Unattach and immutable
    replication (paper §2.3, §3.4, §3.5).

    All operations may be issued from any node; the runtime locates the
    object with control RPCs (chasing forwarding addresses) and performs
    the work at the object's node.  All functions require fiber context
    (an Amber thread). *)

(** [move_to rt obj ~dest] relocates a mutable object (together with its
    transitive attachments) to node [dest]:

    + the object's descriptor at the source is marked forwarded {e before}
      the contents leave (§3.5);
    + every thread running on the source node is preempted and forced
      through a residency check, so threads bound to the object chase it
      to [dest] when next scheduled;
    + the contents travel as one bulk transfer and an acknowledgement
      completes the move.

    For an {e immutable} object this is a copy: [dest] gains a replica and
    existing copies remain valid (§2.3).

    The caller yields after the move, so if it was itself bound to the
    moving object it immediately takes the §3.5 check and follows the
    object. *)
val move_to : Runtime.t -> 'a Aobject.t -> dest:int -> unit

(** Ship a copy of an {e immutable} object's closure to [dest]; existing
    copies stay valid (§2.3).  [move_to] on an immutable object calls
    this.  (Read replicas of mutable objects live in {!Coherence}.) *)
val replicate : Runtime.t -> 'a Aobject.t -> dest:int -> unit

(** Current node of the object, found by the forwarding-chain protocol
    (descriptors along the way are updated to shortcut future lookups). *)
val locate : Runtime.t -> 'a Aobject.t -> int

(** [attach rt ~parent ~child] co-locates [child] with [parent] (moving it
    if necessary) and links them so that subsequent moves of [parent] take
    [child] along.  Attachment edges form a forest; raises
    [Invalid_argument] if [child] is already attached or the link would
    create a cycle. *)
val attach : Runtime.t -> parent:'a Aobject.t -> child:'b Aobject.t -> unit

(** Break the attachment of [child].  Raises [Invalid_argument] if not
    attached. *)
val unattach : Runtime.t -> child:'b Aobject.t -> unit

(** Mark an object immutable (it must never be mutated afterwards).
    Subsequent [move_to] calls replicate instead of moving.  Objects with
    attachments must have an all-immutable closure before freezing
    (raises [Invalid_argument] otherwise). *)
val set_immutable : Runtime.t -> 'a Aobject.t -> unit
