(** Cluster configuration for an Amber run. *)

(** One scheduled node crash.  With [restart = Some t'] the outage is
    transient: the machine freezes (fibers keep their state) and packets
    addressed to it are dropped until [t'], when it resumes exactly where
    it stopped.  With [restart = None] the crash is fail-stop: every
    thread on the node dies with [Node_dead], its un-acked RPC state is
    discarded, and the object space recovers — masters that lived there
    are re-mastered by promoting the highest-epoch live replica, and
    unreplicated objects become permanently [Object_lost]. *)
type crash = { cnode : int; at : float; restart : float option }

type t = {
  nodes : int;  (** number of machines (Fireflies) *)
  cpus_per_node : int;  (** processors available for user threads *)
  quantum : float;  (** timeslice length, seconds *)
  ctx_switch : float;  (** context-switch cost, seconds *)
  ether_bandwidth_bps : float;
  ether_propagation : float;
  ether_wire_overhead : float;
  ether_mac : Hw.Ethernet.mac;  (** FIFO (idealized) or CSMA/CD *)
  rpc_costs : Topaz.Rpc.costs;
  rpc_servers_per_node : int;
  cost : Cost_model.t;
  initial_regions_per_node : int;
  vm_page_size : int;  (** task VM page size (Ivy's coherence unit) *)
  faults : Hw.Ethernet.faults;
      (** network fault-injection model; when any fault is enabled the
          runtime switches its RPC fabric into reliable (retransmitting)
          mode *)
  rpc_rto : float;  (** initial RPC retransmission timeout, seconds *)
  rpc_coalesce : Topaz.Rpc.coalesce option;
      (** wire-level batching of small same-destination datagrams; [None]
          (the default) keeps the transport byte-identical to the
          uncoalesced one *)
  rpc_reliable : bool;
      (** force the reliable (retransmitting, deduplicating) transport
          even with fault injection off.  Default [false]; the runtime
          also enables reliability whenever faults are on.  The model
          checker sets this because its fault decisions come from the
          schedule explorer rather than the fault dice *)
  rpc_retire_window : int;
      (** dedup-entry retirement count window (see {!Topaz.Rpc.create});
          default 1024 *)
  rpc_unsafe_dedup : bool;
      (** re-introduce the pre-fix count-window-only dedup eviction (the
          PR-6 bug) for the checker's mutation smoke; default [false] *)
  max_forward_hops : int;
      (** forwarding-chain hop budget before falling back to the object's
          home node *)
  crashes : crash list;
      (** scheduled node crashes (at most one per node; node 0 is never
          crashable).  Non-empty implies the reliable RPC transport. *)
  crash_rate : float;
      (** probabilistic crash mode: each node [> 0] independently suffers
          one transient crash with this probability, at a uniform random
          time drawn from a dedicated RNG stream.  [0.0] (the default)
          draws nothing — runs are byte-identical to a build without
          crash injection *)
  rpc_max_retransmits : int;
      (** retransmission attempts after which a reliable transaction
          declares its peer dead ({!Topaz.Rpc.Node_dead}) instead of
          backing off forever; default 30 *)
  crash_skip_repair : bool;
      (** mutation flag: skip the home-node forwarding-entry repair step
          of fail-stop recovery.  Exists only so the model checker can
          demonstrate the step is load-bearing; default [false] *)
  seed : int64;
  trace_capacity : int;
}

(** The paper's testbed defaults: CVAX Fireflies with 4 usable CPUs on a
    10 Mbit/s Ethernet. *)
val default : t

(** [make ~nodes ~cpus ()] is {!default} with the cluster size replaced. *)
val make :
  nodes:int ->
  cpus:int ->
  ?cost:Cost_model.t ->
  ?seed:int64 ->
  ?faults:Hw.Ethernet.faults ->
  ?coalesce:Topaz.Rpc.coalesce ->
  ?crashes:crash list ->
  ?crash_rate:float ->
  unit ->
  t

(** True when any crash injection is configured (scheduled or
    probabilistic) — the condition under which the runtime splits a crash
    RNG and arms the recovery machinery. *)
val crashes_enabled : t -> bool

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical configurations. *)
