type mode = Read | Write | Atomic

type t = {
  on_thread_start : parent:Hw.Machine.tcb option -> child:Hw.Machine.tcb -> unit;
  on_thread_join : child:Hw.Machine.tcb -> unit;
  on_migrate : tcb:Hw.Machine.tcb -> src:int -> dst:int -> unit;
  on_object_created : Aobject.any -> unit;
  on_object_destroyed : addr:int -> unit;
  on_sync_created : addr:int -> kind:string -> unit;
  on_access : Aobject.any -> mode -> unit;
  on_access_end : Aobject.any -> unit;
  on_lock_acquired : addr:int -> name:string -> unit;
  on_lock_released : addr:int -> unit;
  on_barrier_arrive : addr:int -> gen:int -> unit;
  on_barrier_release : addr:int -> gen:int -> unit;
  on_barrier_resume : addr:int -> gen:int -> unit;
  on_cond_signal : token:int -> unit;
  on_cond_wake : token:int -> unit;
  on_move_begin : addr:int -> unit;
  on_move_end : Aobject.any -> unit;
  on_replica_read : Aobject.any -> node:int -> epoch:int -> unit;
  on_steal : tcb:Hw.Machine.tcb -> victim:int -> thief:int -> unit;
  on_future_resolve : id:int -> unit;
  on_future_await : id:int -> unit;
}

let mode_to_string = function Read -> "r" | Write -> "w" | Atomic -> "a"

let mode_of_string = function
  | "r" -> Some Read
  | "w" -> Some Write
  | "a" -> Some Atomic
  | _ -> None

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with Read -> "read" | Write -> "write" | Atomic -> "atomic")
