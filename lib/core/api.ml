type runtime = Runtime.t
type 'a obj = 'a Aobject.t
type 'r thread = 'r Athread.t
type 'r future = 'r Future.t

let config ~nodes ~cpus ?cost ?seed () = Config.make ~nodes ~cpus ?cost ?seed ()
let run = Cluster.run
let run_value = Cluster.run_value
let create rt ?size ~name state = Runtime.create_object rt ?size ~name state
let destroy = Runtime.destroy_object
let invoke = Invoke.invoke
let invoke_member = Invoke.invoke_member

let invoke_async rt ?payload ?return_payload ?mode obj op =
  Future.invoke_async rt ?payload ?return_payload ?mode obj op

let await = Future.await
let await_all = Future.await_all
let move_to = Mobility.move_to
let locate = Mobility.locate
let attach = Mobility.attach
let unattach = Mobility.unattach
let set_immutable = Mobility.set_immutable

let replicate rt ?copy obj ~dest =
  if obj.Aobject.immutable_ then Mobility.replicate rt obj ~dest
  else
    match copy with
    | Some copy -> Coherence.install rt ~copy obj ~dest
    | None ->
      invalid_arg
        "Api.replicate: a mutable object needs ~copy (the snapshot function)"
let start rt ?name body = Athread.start rt ?name body
let start_invoke rt ?name ?payload obj op =
  Athread.start_invoke rt ?name ?payload obj op
let join = Athread.join
let join_all = Athread.join_all
let parallel rt ?name bodies = Athread.parallel rt ?name bodies
let my_node = Runtime.current_node
let node_count = Runtime.nodes
let now = Runtime.now
