type t = {
  invoke_entry_cpu : float;
  invoke_return_cpu : float;
  trap_cpu : float;
  thread_state_bytes : int;
  thread_send_cpu : float;
  thread_recv_cpu : float;
  create_fixed_cpu : float;
  create_per_byte_cpu : float;
  move_fixed_cpu : float;
  move_per_byte_cpu : float;
  move_ack_bytes : int;
  preempt_victim_cpu : float;
  forward_lookup_cpu : float;
  locate_req_bytes : int;
  thread_create_cpu : float;
  thread_join_cpu : float;
  lock_fast_cpu : float;
  spin_probe_cpu : float;
  future_notify_bytes : int;
}

(* Calibration notes.  Targets are Table 1 of the paper, measured on CVAX
   Fireflies over 10 Mbit/s Ethernet:
     object create        0.18 ms
     local invoke/return  0.012 ms
     remote invoke/return 8.32 ms
     object move          12.43 ms
     thread start/join    1.33 ms
   The remote-invoke budget decomposes as two thread flights (out and
   back), each: entry/trap + marshal + wire (~0.51 ms for a thread-state
   packet) + unmarshal + dispatch.  Move adds a control RPC, the §3.5
   preempt-everybody step, the bulk contents transfer, and an ack. *)
let default =
  {
    invoke_entry_cpu = 6.0e-6;
    invoke_return_cpu = 6.0e-6;
    trap_cpu = 120.0e-6;
    thread_state_bytes = 512;
    thread_send_cpu = 2.325e-3;
    thread_recv_cpu = 1.15e-3;
    create_fixed_cpu = 160.0e-6;
    create_per_byte_cpu = 0.3e-6;
    move_fixed_cpu = 3.20e-3;
    move_per_byte_cpu = 0.9e-6;
    move_ack_bytes = 32;
    preempt_victim_cpu = 60.0e-6;
    forward_lookup_cpu = 15.0e-6;
    locate_req_bytes = 48;
    thread_create_cpu = 1.07e-3;
    thread_join_cpu = 0.26e-3;
    lock_fast_cpu = 4.0e-6;
    spin_probe_cpu = 2.0e-6;
    future_notify_bytes = 64;
  }

let scale_cpu c factor =
  if factor <= 0.0 then invalid_arg "Cost_model.scale_cpu: factor";
  {
    c with
    invoke_entry_cpu = c.invoke_entry_cpu *. factor;
    invoke_return_cpu = c.invoke_return_cpu *. factor;
    trap_cpu = c.trap_cpu *. factor;
    thread_send_cpu = c.thread_send_cpu *. factor;
    thread_recv_cpu = c.thread_recv_cpu *. factor;
    create_fixed_cpu = c.create_fixed_cpu *. factor;
    create_per_byte_cpu = c.create_per_byte_cpu *. factor;
    move_fixed_cpu = c.move_fixed_cpu *. factor;
    move_per_byte_cpu = c.move_per_byte_cpu *. factor;
    preempt_victim_cpu = c.preempt_victim_cpu *. factor;
    forward_lookup_cpu = c.forward_lookup_cpu *. factor;
    thread_create_cpu = c.thread_create_cpu *. factor;
    thread_join_cpu = c.thread_join_cpu *. factor;
    lock_fast_cpu = c.lock_fast_cpu *. factor;
    spin_probe_cpu = c.spin_probe_cpu *. factor;
  }
