(** Futures over the invocation fabric (Amber-Async).

    Amber's [invoke] is synchronous: the calling thread migrates to the
    object, runs the operation and migrates back, booking both wire
    flights on its own timeline.  [invoke_async] issues the same
    invocation on a helper thread and returns a first-class future, so
    the issuer overlaps the remote operation against its own compute and
    pays only the un-overlapped remainder at {!await}.

    {2 Lifecycle}

    - {b issue}: [invoke_async rt obj op] spawns a helper thread on the
      issuer's node (paying the normal thread-creation CPU) and returns
      a pending future.  The helper runs a full [Invoke.invoke] —
      chase, coherence, sanitizer hooks, frame discipline all apply.
    - {b resolve}: when the invocation finishes, its outcome (value or
      exception) is recorded.  If the helper ended on the future's home
      node, the future resolves in place; otherwise a small
      "future-notify" datagram ([Cost_model.future_notify_bytes], sent
      reliably under fault injection) carries the outcome home, and the
      future resolves only when it lands — results do not teleport.
    - {b await}: parks the calling fiber until the future is resolved,
      then returns the value or re-raises the captured exception.
      Awaiting an already-resolved future just pays the probe cost.
      Futures are multi-shot: awaiting twice returns (or re-raises) the
      memoized outcome again.

    {2 Causality}

    The helper's execution is an [Async_invoke] span, [async]-marked and
    parented to the span the issuer had open at issue time; [await]
    opens a [Future_wait] span pointing at it.  The critical-path
    analyzer descends through that link, so a fully-overlapped async
    invocation contributes nothing to the awaiting path.  AmberSan gets
    a happens-before edge resolve → await (like a condition signal), so
    protocols that hand state through a future are race-free by
    construction. *)

type 'a outcome = ('a, exn) result

type 'a t

(** Issue [op] on [obj] asynchronously and return the pending future.
    Arguments mirror {!Invoke.invoke}.  Fiber context. *)
val invoke_async :
  Runtime.t ->
  ?payload:int ->
  ?return_payload:int ->
  ?mode:San_hooks.mode ->
  'a Aobject.t ->
  ('a -> 'r) ->
  'r t

(** Block until the future resolves; return its value or re-raise the
    invocation's exception.  Multi-shot.  Fiber context. *)
val await : Runtime.t -> 'r t -> 'r

(** Await every future in the list (a failure does not abort the sweep,
    so every async invocation is observed), then return the results in
    order — or re-raise the first failure by list position. *)
val await_all : Runtime.t -> 'r t list -> 'r list

(** Cluster-unique future id (also the [arg] of the helper's
    [Async_invoke] span and the token in AmberSan's resolve/await
    events). *)
val id : 'r t -> int

(** Has the outcome landed on the home node?  Non-blocking. *)
val is_resolved : 'r t -> bool

val peek : 'r t -> 'r outcome option
