type violation = {
  addr : int;
  name : string;
  node : int;
  problem : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s@0x%x node%d: %s" v.name v.addr v.node v.problem

(* Follow forwarding addresses from [start] without charging any cost;
   returns the number of hops to reach [target], or None on a cycle /
   overlong chain.  Cycles are caught by a visited set the moment a node
   repeats — a mutual 1↔3 forwarding loop (the PR-1 livelock shape) is
   detected on its second hop, not after exhausting a hop budget. *)
let chain_length rt ~addr ~start ~target =
  let rec walk node hops visited =
    if hops > 64 || List.mem node visited then None
    else if node = target then Some hops
    else
      match Runtime.probe rt ~node ~addr with
      | `Resident ->
        (* Resident on a node that is not the target: the caller decides
           whether that is legal (immutable replica) or a violation. *)
        Some hops
      | `Hop next | `Replica next ->
        (* A replica node is a legal stop only for reads; for chain
           termination it forwards toward its master hint like any other
           non-resident descriptor. *)
        if next = node then None else walk next (hops + 1) (node :: visited)
  in
  walk start 0 []

let check_one_live rt (Aobject.Any o) =
  let violations = ref [] in
  let add node problem =
    violations :=
      { addr = o.Aobject.addr; name = o.Aobject.name; node; problem }
      :: !violations
  in
  let loc = o.Aobject.location in
  let nodes = Runtime.nodes rt in
  let legal_resident n =
    n = loc || (o.Aobject.immutable_ && List.mem n o.Aobject.replicas)
  in
  (* 1. Residency where copies should be. *)
  if not (Descriptor.is_resident (Runtime.descriptors rt loc) o.Aobject.addr)
  then add loc "not marked resident at its current node";
  if o.Aobject.immutable_ then
    List.iter
      (fun n ->
        if
          not (Descriptor.is_resident (Runtime.descriptors rt n) o.Aobject.addr)
        then add n "replica node not marked resident")
      o.Aobject.replicas
  else
    (* Mutable read replicas: every granted node must carry a [Replica]
       descriptor and a snapshot at the object's current epoch. *)
    List.iter
      (fun n ->
        if not (Descriptor.is_replica (Runtime.descriptors rt n) o.Aobject.addr)
        then add n "replica node not marked as replica"
        else
          match Aobject.snapshot o ~node:n with
          | None -> add n "replica descriptor without a snapshot"
          | Some (ep, _) ->
            if ep <> o.Aobject.epoch then
              add n
                (Printf.sprintf
                   "replica snapshot is stale (epoch %d, object at %d)" ep
                   o.Aobject.epoch))
      o.Aobject.replicas;
  (* 2. No spurious residency, and no spurious replicas. *)
  for n = 0 to nodes - 1 do
    if
      Descriptor.is_resident (Runtime.descriptors rt n) o.Aobject.addr
      && not (legal_resident n)
    then add n "claims residency of an object that lives elsewhere";
    if
      Descriptor.is_replica (Runtime.descriptors rt n) o.Aobject.addr
      && not ((not o.Aobject.immutable_) && List.mem n o.Aobject.replicas)
    then add n "claims a replica that was never granted (or was recalled)"
  done;
  (* 2b. Forwarding chains must not point at replica nodes: a writer
     following such a pointer would try to execute at a read-only copy. *)
  for n = 0 to nodes - 1 do
    match Descriptor.get (Runtime.descriptors rt n) o.Aobject.addr with
    | Some (Descriptor.Forwarded f)
      when (not o.Aobject.immutable_) && List.mem f o.Aobject.replicas ->
      add n (Printf.sprintf "forwarded descriptor names replica node %d" f)
    | _ -> ()
  done;
  (* 3. Every node's chain reaches a legal copy. *)
  for n = 0 to nodes - 1 do
    match chain_length rt ~addr:o.Aobject.addr ~start:n ~target:loc with
    | None -> add n "forwarding chain does not terminate"
    | Some _ ->
      (* walk ended at [loc] or at some Resident node: verify legality *)
      let rec final node hops =
        if hops > 64 then node
        else
          match Runtime.probe rt ~node ~addr:o.Aobject.addr with
          | `Resident -> node
          | `Hop next | `Replica next ->
            if next = node then node else final next (hops + 1)
      in
      let landed = final n 0 in
      if not (legal_resident landed) then
        add n
          (Printf.sprintf "forwarding chain lands on node %d, not a copy"
             landed)
  done;
  !violations

let check_one rt (Aobject.Any o) =
  if o.Aobject.lost then
    (* The only copy died with a fail-stop node; there is no legal
       residency to verify and every descriptor entry was cleared.  Any
       access raises [Object_lost], which is the invariant for lost
       objects — nothing further to audit. *)
    []
  else check_one_live rt (Aobject.Any o)

let check_objects rt objs = List.concat_map (check_one rt) objs

(* After deletion nothing may claim a usable copy: a surviving [Resident]
   would resurrect the object, a surviving [Replica] would keep serving
   reads of freed state.  Leftover [Forwarded] entries are tolerated —
   their chains end in a Miss at the home node, which the chase reports
   as a dangling reference. *)
let check_deleted rt ~addr ~name =
  let violations = ref [] in
  for n = 0 to Runtime.nodes rt - 1 do
    let add problem =
      violations := { addr; name; node = n; problem } :: !violations
    in
    if Descriptor.is_resident (Runtime.descriptors rt n) addr then
      add "resident descriptor survives deletion"
    else if Descriptor.is_replica (Runtime.descriptors rt n) addr then
      add "replica survives master deletion"
  done;
  !violations

let check_exn rt objs =
  match check_objects rt objs with
  | [] -> ()
  | vs ->
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "Audit failed (%d violations):@." (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "  %a@." pp_violation v) vs;
    Format.pp_print_flush ppf ();
    failwith (Buffer.contents buf)

let max_chain_length rt obj =
  let worst = ref 0 in
  for n = 0 to Runtime.nodes rt - 1 do
    match
      chain_length rt ~addr:obj.Aobject.addr ~start:n
        ~target:obj.Aobject.location
    with
    | Some h -> if h > !worst then worst := h
    | None -> ()
  done;
  !worst
