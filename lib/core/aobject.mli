(** Amber objects: passive entities with private state and public
    operations, named by a global virtual address (paper §2, §3.2).

    The ['a] parameter is the type of the object's representation (the
    "private data").  Location fields on this record are the simulator's
    {e ground truth}; the runtime protocol must reach its decisions through
    {!Descriptor} tables alone, and tests compare the two. *)

type 'a t = {
  addr : int;  (** global virtual address: identity *)
  name : string;
  size : int;  (** representation size in bytes; drives move/copy cost *)
  home : int;  (** creating node (derivable from [addr]'s region) *)
  mutable location : int;  (** current node (for immutables: master copy) *)
  mutable immutable_ : bool;
  mutable replicas : int list;
      (** nodes holding copies (excludes [location]).  For immutables these
          are permanent; for mutables they are read replicas that the
          write-invalidate protocol recalls before any write. *)
  mutable epoch : int;
      (** version counter, bumped at the master when a Write/Atomic
          invocation of a mutable object completes; replica snapshots
          record the epoch they were taken at *)
  mutable repl_gen : int;
      (** monotonic counter stamping read-replica grants of a mutable
          object; each {!Coherence.install} capture takes a fresh value *)
  mutable grants : (int * int) list;
      (** [(node, generation)] of the live replica grant per node, kept in
          sync with [replicas] for mutable objects.  Reliable-mode
          datagrams are retransmitted independently, so a stale copy from
          a recalled grant can arrive after a re-grant to the same node;
          the generation lets delivery tell the two apart. *)
  mutable writers : int;
      (** Write/Atomic invocations currently executing at the master.
          {!Coherence.install} refuses to capture a snapshot while
          non-zero: a mid-write capture would ship a torn state. *)
  mutable rcopies : (int * int * 'a) list;
      (** mutable-object replica snapshots: (node, install epoch, value) *)
  mutable attached : any list;  (** objects attached to this one (§2.3) *)
  mutable parent : any option;  (** object this one is attached to *)
  mutable win_local : int;
      (** invocations executed at the master by threads already resident
          there, within the current balance observation window *)
  mutable win_remote : (int * int) list;
      (** [(origin_node, count)] of invocations that had to travel, within
          the current window.  The rebalancer reads these to find an
          object's dominant caller; {!reset_window} clears them each
          observation cycle.  Zero-cost bookkeeping: no packets, no CPU. *)
  mutable win_reads : int;
      (** [Read]-mode invocations within the current window (feeds the
          rebalancer's replicate-vs-move decision) *)
  mutable lost : bool;
      (** the only copy lived on a node that crashed without restarting;
          every further access fails crisply with {!Object_lost} *)
  mutable state : 'a;
}

and any = Any : 'a t -> any

(** Raised on any access to an object whose sole copy died with a crashed
    node (no live replica existed to promote). *)
exception Object_lost of { addr : int; name : string }

(** Raise {!Object_lost} if the object has been marked lost. *)
val check_lost : 'a t -> unit

val make :
  addr:int -> name:string -> size:int -> node:int -> 'a -> 'a t

(** {2 Balance observation window}

    Per-object invocation counters consumed by the load balancer's
    rebalancer daemon.  Pure in-memory bookkeeping — recording and
    resetting charge no simulated cost. *)

(** Count one invocation: [local = true] when the invoking thread was
    already at the master, else attributed to [origin] (the node the
    thread called from). *)
val record_call : 'a t -> origin:int -> local:bool -> unit

(** Count one [Read]-mode invocation. *)
val record_read : 'a t -> unit

(** Clear the window counters (each rebalancer observation cycle). *)
val reset_window : 'a t -> unit

val reset_window_any : any -> unit

val addr_of_any : any -> int
val name_of_any : any -> string
val size_of_any : any -> int
val location_of_any : any -> int

(** The object and, transitively, everything attached to it. *)
val attachment_closure : any -> any list

(** Total representation bytes of the attachment closure. *)
val closure_size : any -> int

(** Is a copy of the object usable on [node]?  True for the master copy's
    node and, for immutables, any replica node. *)
val usable_on : 'a t -> int -> bool

(** The replica snapshot held on [node], as [(install_epoch, value)]. *)
val snapshot : 'a t -> node:int -> (int * 'a) option

val set_snapshot : 'a t -> node:int -> epoch:int -> 'a -> unit
val drop_snapshot : 'a t -> node:int -> unit

val pp : Format.formatter -> 'a t -> unit
