(** The Amber runtime: cluster state plus the per-node kernel machinery
    (descriptor tables, heaps, thread bookkeeping, migration transport).

    One [Runtime.t] models one program execution over a network of
    multiprocessors: [nodes] Topaz tasks (one per machine) on a shared
    Ethernet, exactly the structure of paper §3.  Higher layers ({!Invoke},
    {!Mobility}, {!Athread}, {!Sync}) implement the programming model on
    top of the primitives here.

    Functions documented as requiring {e fiber context} must be called from
    inside a simulated thread. *)

type t

(** One invocation-stack frame: the object being invoked plus the declared
    access mode.  The mode decides whether a read replica satisfies the
    residency check (a [Read] frame may run on a replica node; [Write] and
    [Atomic] frames must reach the master). *)
type frame = { fobj : Aobject.any; fmode : San_hooks.mode }

(** Amber-level kernel state of one thread. *)
type tstate = {
  tcb : Hw.Machine.tcb;
  taddr : int;  (** address of the thread object + stack segment *)
  mutable frames : frame list;
      (** invocation stack, innermost first (§3.5) *)
  mutable carry_bytes : int;
      (** invocation payload riding along with in-flight migrations *)
  mutable migrations : int;
  mutable chase_path : int list;
      (** nodes visited while chasing the current frame's object; flushed
          into their descriptors when the chase ends (§3.3 caching) *)
  mutable result_box : exn option;
      (** internal: thread body outcome for Join *)
}

val create : Config.t -> t

(** {1 Accessors} *)

val config : t -> Config.t
val cost : t -> Cost_model.t
val engine : t -> Sim.Engine.t
val ether : t -> Hw.Ethernet.t
val rpc : t -> Topaz.Rpc.t
val trace : t -> Sim.Trace.t

(** The causal span collector (see {!Sim.Span}); disabled by default.
    Created before the RPC fabric so wire flights span-attribute too. *)
val spans : t -> Sim.Span.t

val nodes : t -> int
val machine : t -> int -> Hw.Machine.t
val task : t -> int -> Topaz.Task.t
val descriptors : t -> int -> Descriptor.table
val heap : t -> int -> Vaspace.Heap.t
val space_server : t -> Vaspace.Space_server.t

(** Virtual time now. *)
val now : t -> float

(** {1 Thread bookkeeping} *)

val register_thread : t -> tstate -> unit
val unregister_thread : t -> tstate -> unit

(** Kernel state of the calling thread.  Raises [Failure] when the caller
    is not a registered Amber thread.  Fiber context. *)
val current : t -> tstate

val current_opt : t -> tstate option

(** Kernel state of an arbitrary thread by its TCB, or [None] when the
    thread is not (or no longer) a registered Amber thread. *)
val tstate_of_tcb : t -> Hw.Machine.tcb -> tstate option

(** Apply [f] to every live registered thread, in unspecified order (use
    only for order-insensitive aggregation, e.g. counting bound
    threads). *)
val iter_threads : t -> (tstate -> unit) -> unit

(** Node the calling thread is on.  Fiber context. *)
val current_node : t -> int

(** Flush §3.3 chain caching: every node in the thread's chase path
    learns that the object now lives at [found]. *)
val flush_chase_compression : t -> tstate -> addr:int -> found:int -> unit

(** Install the context-switch-in residency check (§3.5) for a thread:
    every time the thread is about to run, its innermost frame's object is
    checked and the thread is forwarded toward the object's new location
    if it moved. *)
val install_resume_check : t -> tstate -> unit

(** {1 Address space} *)

(** Allocate a heap block on [node]; grows the heap from the address-space
    server (an RPC from [node] to the server's node) when the local pool
    is exhausted.  Fiber context. *)
val alloc_addr : t -> node:int -> size:int -> int

(** Home node of a heap address — the owner of its region (§3.3). *)
val home_node : t -> addr:int -> int

(** {1 Location protocol} *)

(** One descriptor probe on [node] (no cost charged):
    - [`Resident] — object usable on [node];
    - [`Replica m] — [node] holds a read-only copy of a mutable object
      whose master was last known at [m];
    - [`Hop n] — forwarding address, or home-node fallback for an
      uninitialized descriptor. *)
val probe :
  t -> node:int -> addr:int -> [ `Resident | `Hop of int | `Replica of int ]

(** Move the calling thread to [dest], simulating the thread-state packet
    flight (§3.4).  Charges marshal CPU at the source, wire time, and
    unmarshal CPU at the destination.  [payload] bytes ride along.  Fiber
    context. *)
val migrate_self : t -> ?payload:int -> dest:int -> unit -> unit

(** Ship a thread that the caller has taken over (dequeued and
    {!Hw.Machine.park}ed, or otherwise [Blocked]) to [dest] as a
    thread-state packet: charges marshal/unmarshal CPU to the thread's
    own pending-work account, leaves a forwarding address for its thread
    object, and wakes it at [dest] on delivery.  This is the same flight
    the §3.5 residency check uses; the balancer's stealer rides it too.
    Safe outside fiber context. *)
val migrate_thread : t -> tstate -> dest:int -> unit

(** Verdict of one chase step at a node: the chase is over ([Found]), the
    node holds a forwarding address ([Follow next]), or the node's
    descriptor is uninitialized ([Miss]). *)
type 'a chase_step = Found of 'a | Follow of int | Miss

(** [chase t ~what ~addr ~start ~step] is the single forwarding-chain
    walker shared by Locate, MoveTo, invocation settling and the
    invocation return path.  [step ~node ~hops] probes (or acts at) one
    node; [chase] supplies the policy:

    - each [Follow] hop is counted and bounded by
      [Config.max_forward_hops]; exhausting the budget {e repairs} the
      chase by restarting at the object's home node with a fresh budget
      (counted in the [home_fallbacks] counter) rather than failing;
    - two consecutive home restarts that walk the {e identical} trail
      mean the forwarding web is wedged (concurrent moves can strand the
      home node inside a mutual stale pair no flush ever visits): the
      chase falls back to an Emerald-style exhaustive search for the
      resident copy (counted in [broadcast_locates]) and resumes there,
      so the caller's success-path compression rewrites the stale cycle.
      Only repeated searches that find no resident copy fail the chase;
    - a [Miss] away from the home node bounces the chase to the home
      node (that node never heard of the object, or a move is in
      flight); a [Miss] {e at} the home node — the only node where the
      object's heap block can be freed — or a self-loop [Follow] raises
      [Failure "<what>: dangling reference to 0x<addr>"].

    [what] prefixes error messages.  Fiber context if [step] is. *)
val chase :
  t ->
  what:string ->
  addr:int ->
  start:int ->
  step:(node:int -> hops:int -> 'a chase_step) ->
  'a

(** Chase descriptors with control RPCs (no thread motion) until the node
    where [addr] is resident is found; used by Locate and MoveTo.  Updates
    the descriptors of visited nodes to point at the answer (§3.3 chain
    caching).  Fiber context. *)
val resolve_location : t -> addr:int -> int

(** {1 Object lifecycle} *)

(** Create an object on the calling thread's node (§3.2).  Charges
    creation CPU; allocates its address; initializes the local descriptor.
    Fiber context. *)
val create_object : t -> ?size:int -> name:string -> 'a -> 'a Aobject.t

(** Delete an object resident on the calling thread's node: frees its heap
    block (never to be re-split, §3.2) and clears the local descriptor.
    Raises [Invalid_argument] if the object is not resident here or has
    attachments.  Fiber context. *)
val destroy_object : t -> 'a Aobject.t -> unit

(** Every live object, sorted by address (deterministic).  Used by policy
    layers — the adaptive rebalancer scans this to find hot objects. *)
val objects : t -> Aobject.any list

(** {1 Counters} *)

type counters = {
  mutable local_invocations : int;
  mutable remote_invocations : int;
  mutable thread_migrations : int;
  mutable migration_bytes : int;
  mutable object_moves : int;
  mutable object_copies : int;
  mutable move_bytes : int;
  mutable locates : int;
  mutable forward_hops : int;
  mutable home_fallbacks : int;
      (** chases restarted at the object's home node after exhausting the
          forwarding-hop budget *)
  mutable broadcast_locates : int;
      (** Emerald-style exhaustive node searches after the forwarding web
          wedged (a static stale cycle through the home node) *)
  mutable objects_created : int;
  mutable threads_started : int;
  mutable replica_installs : int;
      (** read-only copies of mutable objects installed *)
  mutable replica_reads : int;
      (** Read invocations served from a local replica snapshot *)
  mutable replica_invalidations : int;
      (** replica descriptors recalled by write-invalidate rounds *)
  mutable gossip_rounds : int;
      (** load-board gossip ticks executed by the balancer's telemetry *)
  mutable steal_requests : int;
      (** steal probes sent by idle nodes to loaded victims *)
  mutable threads_stolen : int;
      (** runnable threads actually migrated by the stealer *)
  mutable balance_moves : int;
      (** object migrations initiated by the rebalancer daemon *)
  mutable balance_replicas : int;
      (** read replicas installed by the rebalancer daemon *)
  mutable async_invocations : int;
      (** futures created by [Future.invoke_async] *)
  mutable future_notifies : int;
      (** cross-node resolution notices shipped back to futures' home
          nodes (an async invocation that completes on its home node
          resolves in place and sends nothing) *)
  mutable node_crashes : int;
      (** injected node crashes, transient and fail-stop alike *)
  mutable node_restarts : int;  (** transient crashes that restarted *)
  mutable recovery_promotions : int;
      (** replicas promoted to master during fail-stop recovery *)
  mutable objects_lost : int;
      (** objects whose only copy died with a fail-stop node *)
  mutable crash_chain_repairs : int;
      (** live descriptor entries rewritten because they routed through a
          fail-stop corpse *)
}

val counters : t -> counters

(** Latency samples recorded by {!Invoke} for remote invocations and by
    {!Mobility} for completed moves (virtual seconds). *)
val remote_invoke_latency : t -> Sim.Stats.Summary.t

val move_latency : t -> Sim.Stats.Summary.t

(** The runtime's telemetry registry ({!Sim.Series}).  Created disabled;
    instrumented layers (serve, balance) publish into it only once a
    watcher — [Watch.attach] — enables it and arms the sampling tick, so
    an unwatched run records nothing and stays byte-identical. *)
val metrics : t -> Sim.Series.t

(** {2 Typed-failure notifications}

    [on_failure] registers a hook invoked whenever a typed failure fires
    inside the runtime: [kind] is ["node_dead"] (fail-stop),
    ["node_down"] (transient crash) or ["object_lost"] (sole copy died);
    the flight recorder subscribes here to dump postmortems.  External
    layers (serve overload, the sanitizer) report their own kinds
    through {!notify_failure}.  With no hooks registered the notify
    sites are inert. *)
val on_failure : t -> (kind:string -> node:int -> detail:string -> unit) -> unit

val notify_failure : t -> kind:string -> node:int -> detail:string -> unit

(** Raise the first recorded thread failure, if any. *)
val check_failures : t -> unit

(** {1 Crash injection}

    Armed by {!create} from {!Config.crashes} / {!Config.crash_rate}; with
    neither configured the injector contributes nothing to a run — no RNG
    split, no events, byte-identical reports. *)

(** False while a node is down (transiently or for good). *)
val node_is_up : t -> int -> bool

(** Fail-stop [node] right now: drop its wire, abort transactions and
    fire peer-death watchers, kill its threads, discard its descriptor
    table, then re-master or lose every object it held (and repair
    forwarding chains unless {!Config.crash_skip_repair}).  This is the
    injector's own fail-stop entry, exported so tests and model-checking
    fixtures can order a crash {e causally} after the protocol state
    they mean to kill — under the checker's chooser a time-scheduled
    crash may fire at any point, which makes "crash after the move
    completed" unreachable by timestamp alone.  Must not be called from
    a thread living on [node]. *)
val fail_stop : t -> node:int -> unit

(** Addresses registered as permanently lost by fail-stop recovery
    (objects without a live replica, plus thread objects of killed
    threads). *)
val lost_object_count : t -> int

(** {1 Sanitizer} *)

(** Install dynamic-analysis hooks (see {!San_hooks}); at most one
    sanitizer is attached at a time, the last install wins. *)
val set_sanitizer : t -> San_hooks.t -> unit

val clear_sanitizer : t -> unit
val sanitizer : t -> San_hooks.t option

(** [with_san t f] applies [f] to the installed hooks, or does nothing —
    the single-branch fast path the instrumentation sites use. *)
val with_san : t -> (San_hooks.t -> unit) -> unit

(** {1 Report plug-ins} *)

(** Register a named section that {!Stats_report.capture} evaluates and
    {!Stats_report.pp} prints after the built-in counters; used by
    optional layers (the sanitizer) to surface findings in the standard
    report without a reverse dependency. *)
val add_report_section : t -> name:string -> (unit -> string list) -> unit

val report_sections : t -> (string * (unit -> string list)) list
