type 'r t = {
  ts : Runtime.tstate;
  result : 'r option ref;
  rt : Runtime.t;
}

exception Join_error of { thread : string; tid : int; reason : string }

exception
  Join_failed of { thread : string; tid : int; index : int; error : exn }

let () =
  Printexc.register_printer (function
    | Join_error { thread; tid; reason } ->
      Some
        (Printf.sprintf "Athread.Join_error(thread %s#%d: %s)" thread tid
           reason)
    | Join_failed { thread; tid; index; error } ->
      Some
        (Printf.sprintf "Athread.Join_failed(thread %s#%d at index %d: %s)"
           thread tid index (Printexc.to_string error))
    | _ -> None)

(* Size of a thread object plus its runtime stack in the global address
   space (the paper reserves a distinct segment per thread, §3.1). *)
let thread_segment_bytes = 8192

let start_on rt ~node ?(name = "thread") ?priority body =
  let result = ref None in
  let body_wrapped () =
    let r = body () in
    result := Some r
  in
  let tcb =
    Topaz.Task.spawn (Runtime.task rt node) ~name ?priority body_wrapped
  in
  let taddr = Vaspace.Heap.alloc (Runtime.heap rt node) thread_segment_bytes in
  Descriptor.set_resident (Runtime.descriptors rt node) taddr;
  let ts =
    {
      Runtime.tcb;
      taddr;
      frames = [];
      carry_bytes = 0;
      migrations = 0;
      chase_path = [];
      result_box = None;
    }
  in
  Runtime.register_thread rt ts;
  Runtime.with_san rt (fun h ->
      h.San_hooks.on_thread_start ~parent:(Hw.Machine.self ()) ~child:tcb);
  Runtime.install_resume_check rt ts;
  Hw.Machine.on_finish tcb (fun _ -> Runtime.unregister_thread rt ts);
  let ctrs = Runtime.counters rt in
  ctrs.Runtime.threads_started <- ctrs.Runtime.threads_started + 1;
  { ts; result; rt }

let start rt ?(name = "thread") ?priority body =
  let c = Runtime.cost rt in
  (* Creating + scheduling the thread object is work done by the parent. *)
  Sim.Fiber.consume c.Cost_model.thread_create_cpu;
  start_on rt ~node:(Runtime.current_node rt) ~name ?priority body

let start_invoke rt ?(name = "thread") ?(payload = 0) obj op =
  start rt ~name (fun () -> Invoke.invoke rt ~payload obj op)

let join rt t =
  let c = Runtime.cost rt in
  (* The span's [arg] names the joined thread, which lets the critical-path
     analyzer descend into the joined timeline instead of booking the whole
     wait as queueing. *)
  Sim.Span.with_span (Runtime.spans rt) Sim.Span.Join_wait
    ~label:(Hw.Machine.tcb_name t.ts.Runtime.tcb)
    ~arg:(Hw.Machine.tcb_id t.ts.Runtime.tcb)
  @@ fun () ->
  Sim.Fiber.consume c.Cost_model.thread_join_cpu;
  (* Join is an operation on the thread object (§3.4): locate it first —
     a thread that migrated leaves a forwarding chain, making Join on a
     travelled thread more expensive (the trade-off the paper states).  A
     thread killed by a fail-stop crash has no thread object left to
     locate (its address is registered lost); the outcome lives on the
     surviving tcb, so the locate is skipped — and one that dies while
     the locate is already chasing surfaces the same way. *)
  (try
     if not (Hw.Machine.was_killed t.ts.Runtime.tcb) then
       ignore (Runtime.resolve_location rt ~addr:t.ts.Runtime.taddr : int)
   with Aobject.Object_lost _ when Hw.Machine.was_killed t.ts.Runtime.tcb ->
     ());
  let outcome = Topaz.Kthread.join t.ts.Runtime.tcb in
  (* If the thread finished on another node, the completion notification
     crosses the network — unless it was killed there: a corpse sends
     nothing, and the joiner already holds the outcome via the crash
     detector. *)
  let finished_on = Hw.Machine.id (Hw.Machine.home t.ts.Runtime.tcb) in
  let here = Runtime.current_node rt in
  if finished_on <> here && not (Hw.Machine.was_killed t.ts.Runtime.tcb) then
    Sim.Fiber.block (fun wake ->
        (* Reliable: a lost completion notification must not hang Join. *)
        Topaz.Rpc.send_reliable (Runtime.rpc rt) ~src:finished_on ~dst:here
          ~size:64 ~kind:"join-notify" wake);
  Runtime.with_san rt (fun h ->
      h.San_hooks.on_thread_join ~child:t.ts.Runtime.tcb);
  match outcome with
  | Sim.Fiber.Completed -> (
    match !(t.result) with
    | Some r -> r
    | None ->
      (* A completed fiber whose result slot is empty means the body was
         unwound without either producing a value or recording a failure
         (e.g. an exception swallowed by lower-level machinery).  Surface
         a typed error naming the thread instead of a bare [Failure]. *)
      raise
        (Join_error
           {
             thread = Hw.Machine.tcb_name t.ts.Runtime.tcb;
             tid = Hw.Machine.tcb_id t.ts.Runtime.tcb;
             reason = "thread finished without a result";
           }))
  | Sim.Fiber.Failed e ->
    (* The failure is handled here; it must not re-surface when the
       cluster checks for unhandled thread failures. *)
    Hw.Machine.forget_failures t.ts.Runtime.tcb;
    raise e

let parallel rt ?(name = "par") bodies =
  let threads =
    List.mapi
      (fun i body -> start rt ~name:(Printf.sprintf "%s-%d" name i) body)
      bodies
  in
  List.map (fun t -> join rt t) threads

(* Unlike a naive [List.map (join rt)], a failed thread must not abort
   the sweep mid-list: every sibling is still joined (so none is left
   running and unobserved), and the error that surfaces names exactly
   which thread failed and where it sat in the list. *)
let join_all rt threads =
  let outcomes =
    List.mapi
      (fun index t ->
        match join rt t with
        | r -> Ok r
        | exception e ->
          Error
            (Join_failed
               {
                 thread = Hw.Machine.tcb_name t.ts.Runtime.tcb;
                 tid = Hw.Machine.tcb_id t.ts.Runtime.tcb;
                 index;
                 error = e;
               }))
      threads
  in
  List.map
    (fun o -> match o with Ok r -> r | Error e -> raise e)
    outcomes

let result_exn t =
  match !(t.result) with
  | Some r -> r
  | None ->
    raise
      (Join_error
         {
           thread = Hw.Machine.tcb_name t.ts.Runtime.tcb;
           tid = Hw.Machine.tcb_id t.ts.Runtime.tcb;
           reason = "thread has no result";
         })

let tcb t = t.ts.Runtime.tcb
let tstate t = t.ts
let node t = Hw.Machine.id (Hw.Machine.home t.ts.Runtime.tcb)

let is_finished t =
  match Hw.Machine.state t.ts.Runtime.tcb with
  | Hw.Machine.Finished _ -> true
  | Hw.Machine.Ready | Hw.Machine.Running _ | Hw.Machine.Blocked -> false

let migrations t = t.ts.Runtime.migrations
let set_priority t p = Hw.Machine.set_priority t.ts.Runtime.tcb p
