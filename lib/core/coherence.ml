(* Write-invalidate read replicas for mutable objects.

   Protocol invariants, relied on by Invoke, Audit and AmberSan:

   - [obj.replicas] lists every node that holds (or has been granted and
     is about to hold) a read replica; the master's node is never listed.
     [obj.grants] mirrors it with the generation of each node's live
     grant (fresh from [obj.repl_gen] at capture time).
   - A node in [obj.replicas] with an installed copy holds a
     [Descriptor.Replica master] descriptor and a snapshot in
     [obj.rcopies] tagged with the epoch it was taken at.
   - [obj.epoch] is bumped at the master when a Write/Atomic invocation
     {e completes} (after the invalidation round and the user operation),
     so a snapshot is fresh iff its epoch equals the object's.  While the
     operation itself runs, [obj.writers] is non-zero and capture refuses
     to snapshot — a mid-write capture would ship a torn state that the
     epoch check alone cannot reject until the write finishes.
   - Snapshot capture and replica registration happen on the master's
     node with no suspension in between; the in-flight copy carries its
     grant generation and is re-validated at delivery: it is installed
     only if it still matches the node's live grant and no write
     intervened, and a {e stale} delivery deregisters the grant only when
     the generations match (reliable-mode datagrams are retransmitted
     independently, so a lost copy from a recalled grant can arrive after
     a successful re-grant to the same node — it must not tear down the
     newer grant's registration). *)

let install rt ~copy (obj : 'a Aobject.t) ~dest =
  Aobject.check_lost obj;
  if dest < 0 || dest >= Runtime.nodes rt then
    invalid_arg "Coherence.install: bad destination node";
  if obj.Aobject.immutable_ then
    invalid_arg "Coherence.install: object is immutable (use move_to)";
  if obj.Aobject.parent <> None || obj.Aobject.attached <> [] then
    invalid_arg "Coherence.install: attached objects cannot take read replicas";
  let c = Runtime.cost rt in
  let ctrs = Runtime.counters rt in
  let addr = obj.Aobject.addr in
  let bytes = obj.Aobject.size in
  if
    dest = obj.Aobject.location
    || List.mem dest obj.Aobject.replicas
    (* Installing onto a down node would park the copy on a wire that
       drops it; give up (advisory, like the torn-write refusal below). *)
    || not (Runtime.node_is_up rt dest)
  then ()
  else
    Sim.Span.with_span (Runtime.spans rt) Sim.Span.Replica_install
      ~label:obj.Aobject.name ~obj:addr ~arg:dest
    @@ fun () ->
    begin
    let here = Runtime.current_node rt in
    let master = Runtime.resolve_location rt ~addr in
    if dest = master then ()
    else begin
      (* Runs on the master's node.  Capture and registration are one
         atomic (suspension-free) step so the snapshot matches [ep]. *)
      let capture () =
        if
          dest = obj.Aobject.location
          || List.mem dest obj.Aobject.replicas
          (* A Write/Atomic is executing the user operation right now:
             the state may be torn, and the post-write epoch bump would
             not reject a snapshot taken here.  Give up (advisory). *)
          || obj.Aobject.writers > 0
        then None
        else begin
          let ep = obj.Aobject.epoch in
          let snap = copy obj.Aobject.state in
          obj.Aobject.repl_gen <- obj.Aobject.repl_gen + 1;
          let gen = obj.Aobject.repl_gen in
          obj.Aobject.replicas <- dest :: obj.Aobject.replicas;
          obj.Aobject.grants <-
            (dest, gen) :: List.remove_assoc dest obj.Aobject.grants;
          Some (gen, ep, snap)
        end
      in
      let ship_cpu =
        c.Cost_model.move_fixed_cpu
        +. (c.Cost_model.move_per_byte_cpu *. float_of_int bytes)
      in
      (* [ship] runs in event context (inside [Sim.Fiber.block]'s register
         callback), so the packaging CPU is charged by the caller, in
         fiber context, before blocking. *)
      let ship ~src ~parent (gen, ep, snap) wake =
        let rpc = Runtime.rpc rt in
        let woken = ref false in
        let watch = ref 0 in
        let finish () =
          Topaz.Rpc.unwatch rpc ~node:dest !watch;
          if not !woken then begin
            woken := true;
            wake ()
          end
        in
        let dead _ =
          Topaz.Rpc.unwatch rpc ~node:dest !watch;
          if not !woken then begin
            woken := true;
            (* The transport gave up on the copy: deregister the grant
               registered at capture time — unless fail-stop recovery (or
               a racing recall/re-grant) already did, or the copy in fact
               installed and only the ack is outstanding.  The budget is a
               failure {e detector}: it can trip on a live destination
               whose acks are merely starved, and tearing down the
               registration then would leave an installed copy served to
               readers but registered nowhere. *)
            if
              List.assoc_opt dest obj.Aobject.grants = Some gen
              && Aobject.snapshot obj ~node:dest = None
            then begin
              obj.Aobject.replicas <-
                List.filter (fun n -> n <> dest) obj.Aobject.replicas;
              obj.Aobject.grants <- List.remove_assoc dest obj.Aobject.grants
            end;
            wake ()
          end
        in
        (* The per-leg [on_dead] hooks only see in-flight datagrams; a
           [dest] that dies after transport-acking the copy but with the
           install handler still queued leaves nothing outstanding to
           abort.  The watcher covers that window with the same
           snapshot-guarded deregistration. *)
        watch := Topaz.Rpc.watch_peer rpc ~node:dest dead;
        Topaz.Rpc.post ~parent ~on_dead:dead rpc ~src ~dst:dest
          ~kind:"repl-copy" ~size:bytes (fun () ->
            (* Delivery-time guard: a write (or a recall) may have raced
               the copy onto the wire; installing it now would hand out
               stale state, so drop it instead.  The generation check also
               rejects a retransmitted copy from a grant that was since
               recalled and re-issued — only the copy carrying the node's
               live grant may install. *)
            if
              obj.Aobject.epoch = ep
              && List.assoc_opt dest obj.Aobject.grants = Some gen
            then begin
              ctrs.Runtime.replica_installs <-
                ctrs.Runtime.replica_installs + 1;
              ctrs.Runtime.object_copies <- ctrs.Runtime.object_copies + 1;
              ctrs.Runtime.move_bytes <- ctrs.Runtime.move_bytes + bytes;
              Aobject.set_snapshot obj ~node:dest ~epoch:ep snap;
              Descriptor.set_replica
                (Runtime.descriptors rt dest)
                addr obj.Aobject.location;
              (* A stale §3.3 hint laid down while the master lived at
                 [dest] still names it; forwarding chains must never
                 point at a replica, so the grant rewrites such hints
                 to name the master (piggybacked like the flushes, no
                 extra packets).  No later write re-creates one: hints
                 always name a node observed Resident, and a moving
                 master recalls its replicas first. *)
              for n = 0 to Runtime.nodes rt - 1 do
                if n <> dest then
                  match Descriptor.get (Runtime.descriptors rt n) addr with
                  | Some (Descriptor.Forwarded f) when f = dest ->
                    Descriptor.set_forwarded (Runtime.descriptors rt n) addr
                      obj.Aobject.location
                  | _ -> ()
              done;
              (* Touching every node's table from one server fiber is a
                 simulator shortcut (a real kernel would piggyback the
                 rewrites); charge one descriptor lookup per scanned node
                 so the scrub is not free.  Charged after the
                 guard+install+scrub step so that step stays
                 suspension-free. *)
              Sim.Fiber.consume
                (c.Cost_model.forward_lookup_cpu
                *. float_of_int (Runtime.nodes rt - 1))
            end
            else if List.assoc_opt dest obj.Aobject.grants = Some gen then begin
              (* Stale delivery of the node's live grant: the grant failed,
                 deregister it.  A stale copy from an {e older} grant (the
                 node was since recalled and re-granted) must leave the
                 newer grant's registration alone. *)
              obj.Aobject.replicas <-
                List.filter (fun n -> n <> dest) obj.Aobject.replicas;
              obj.Aobject.grants <- List.remove_assoc dest obj.Aobject.grants
            end;
            Topaz.Rpc.post ~on_dead:dead rpc ~src:dest ~dst:src
              ~kind:"repl-ack" ~size:c.Cost_model.move_ack_bytes (fun () ->
                finish ()))
      in
      if master = here && obj.Aobject.location = here then begin
        match capture () with
        | None -> ()
        | Some payload ->
          Sim.Fiber.consume ship_cpu;
          (* [ship] posts from event context where no span is current:
             capture the install span while still on the fiber. *)
          let psp = Sim.Span.current (Runtime.spans rt) in
          Sim.Fiber.block (fun wake -> ship ~src:here ~parent:psp payload wake)
      end
      else
        Topaz.Rpc.call (Runtime.rpc rt) ~dst:master ~kind:"repl-req"
          ~req_size:64 ~work:(fun () ->
            ( c.Cost_model.move_ack_bytes,
              if obj.Aobject.location <> master then
                (* The master moved between resolve and arrival; treat the
                   install as advisory and give up rather than chase. *)
                ()
              else
                match capture () with
                | None -> ()
                | Some payload ->
                  Sim.Fiber.consume ship_cpu;
                  let psp = Sim.Span.current (Runtime.spans rt) in
                  Sim.Fiber.block (fun wake ->
                      ship ~src:master ~parent:psp payload wake)
            ))
    end
  end

let invalidate rt (obj : 'a Aobject.t) =
  let ctrs = Runtime.counters rt in
  let addr = obj.Aobject.addr in
  let span_if_live f =
    if obj.Aobject.replicas = [] then f ()
    else
      Sim.Span.with_span (Runtime.spans rt) Sim.Span.Invalidate
        ~label:obj.Aobject.name ~obj:addr f
  in
  let rec drain () =
    match obj.Aobject.replicas with
    | [] -> ()
    | targets ->
      (* Capture each target's grant generation before the round: the
         round may only deregister the grants it actually recalled. *)
      let recalled =
        List.map
          (fun node -> (node, List.assoc_opt node obj.Aobject.grants))
          targets
      in
      List.iter
        (fun (node, _) ->
          (* One acknowledged control RPC per replica: under fault
             injection the reliable transport retransmits until the
             recall is acknowledged — a lost invalidation is retried,
             never silently dropped. *)
          try
            Topaz.Rpc.call (Runtime.rpc rt) ~dst:node ~kind:"inval"
              ~req_size:32 ~work:(fun () ->
                Aobject.drop_snapshot obj ~node;
                if Descriptor.is_replica (Runtime.descriptors rt node) addr
                then
                  Descriptor.set_forwarded
                    (Runtime.descriptors rt node)
                    addr obj.Aobject.location;
                ctrs.Runtime.replica_invalidations <-
                  ctrs.Runtime.replica_invalidations + 1;
                (16, ()))
          with Topaz.Rpc.Node_dead _ ->
            (* A replica node that fail-stopped mid-recall holds no
               usable copy (its snapshot dies with it); treat the recall
               as achieved and let the bookkeeping below deregister the
               grant this round captured. *)
            Aobject.drop_snapshot obj ~node)
        recalled;
      (* Deregister only grants still at the generation this round
         recalled.  A racing install can re-grant a target under a fresh
         generation — and land its new snapshot — between our inval
         reaching that node and this bookkeeping; removing the node by
         name would then tear down the {e new} grant's registration
         while its snapshot stays installed, leaving a copy that is
         registered nowhere yet still served to readers (found by the
         model checker: grant/recall vs. re-grant on the replica
         fixture).  Leave the newer grant alone; the next pass recalls
         it at its own generation. *)
      let still_recalled node =
        match List.assoc_opt node recalled with
        | Some gen0 -> List.assoc_opt node obj.Aobject.grants = gen0
        | None -> false
      in
      obj.Aobject.replicas <-
        List.filter (fun n -> not (still_recalled n)) obj.Aobject.replicas;
      obj.Aobject.grants <-
        List.filter (fun (n, _) -> not (still_recalled n)) obj.Aobject.grants;
      (* A replica granted while the round was in flight is recalled by
         the next pass; the round is only over when a full pass finds the
         set empty. *)
      drain ()
  in
  span_if_live drain
