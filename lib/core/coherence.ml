(* Write-invalidate read replicas for mutable objects.

   Protocol invariants, relied on by Invoke, Audit and AmberSan:

   - [obj.replicas] lists every node that holds (or has been granted and
     is about to hold) a read replica; the master's node is never listed.
   - A node in [obj.replicas] with an installed copy holds a
     [Descriptor.Replica master] descriptor and a snapshot in
     [obj.rcopies] tagged with the epoch it was taken at.
   - [obj.epoch] is bumped at the master by every Write/Atomic invocation
     {e after} the invalidation round, so a snapshot is fresh iff its
     epoch equals the object's.
   - Snapshot capture and replica registration happen on the master's
     node with no suspension in between; the in-flight copy is
     re-validated at delivery and discarded if a write intervened. *)

let install rt ~copy (obj : 'a Aobject.t) ~dest =
  if dest < 0 || dest >= Runtime.nodes rt then
    invalid_arg "Coherence.install: bad destination node";
  if obj.Aobject.immutable_ then
    invalid_arg "Coherence.install: object is immutable (use move_to)";
  if obj.Aobject.parent <> None || obj.Aobject.attached <> [] then
    invalid_arg "Coherence.install: attached objects cannot take read replicas";
  let c = Runtime.cost rt in
  let ctrs = Runtime.counters rt in
  let addr = obj.Aobject.addr in
  let bytes = obj.Aobject.size in
  if dest = obj.Aobject.location || List.mem dest obj.Aobject.replicas then ()
  else begin
    let here = Runtime.current_node rt in
    let master = Runtime.resolve_location rt ~addr in
    if dest = master then ()
    else begin
      (* Runs on the master's node.  Capture and registration are one
         atomic (suspension-free) step so the snapshot matches [ep]. *)
      let capture () =
        if dest = obj.Aobject.location || List.mem dest obj.Aobject.replicas
        then None
        else begin
          let ep = obj.Aobject.epoch in
          let snap = copy obj.Aobject.state in
          obj.Aobject.replicas <- dest :: obj.Aobject.replicas;
          Some (ep, snap)
        end
      in
      let ship_cpu =
        c.Cost_model.move_fixed_cpu
        +. (c.Cost_model.move_per_byte_cpu *. float_of_int bytes)
      in
      (* [ship] runs in event context (inside [Sim.Fiber.block]'s register
         callback), so the packaging CPU is charged by the caller, in
         fiber context, before blocking. *)
      let ship ~src (ep, snap) wake =
        Topaz.Rpc.post (Runtime.rpc rt) ~src ~dst:dest ~kind:"repl-copy"
          ~size:bytes (fun () ->
            (* Delivery-time guard: a write (or a recall) may have raced
               the copy onto the wire; installing it now would hand out
               stale state, so drop it instead. *)
            if obj.Aobject.epoch = ep && List.mem dest obj.Aobject.replicas
            then begin
              ctrs.Runtime.replica_installs <-
                ctrs.Runtime.replica_installs + 1;
              ctrs.Runtime.object_copies <- ctrs.Runtime.object_copies + 1;
              ctrs.Runtime.move_bytes <- ctrs.Runtime.move_bytes + bytes;
              Aobject.set_snapshot obj ~node:dest ~epoch:ep snap;
              Descriptor.set_replica
                (Runtime.descriptors rt dest)
                addr obj.Aobject.location;
              (* A stale §3.3 hint laid down while the master lived at
                 [dest] still names it; forwarding chains must never
                 point at a replica, so the grant rewrites such hints
                 to name the master (piggybacked like the flushes, no
                 extra packets).  No later write re-creates one: hints
                 always name a node observed Resident, and a moving
                 master recalls its replicas first. *)
              for n = 0 to Runtime.nodes rt - 1 do
                if n <> dest then
                  match Descriptor.get (Runtime.descriptors rt n) addr with
                  | Some (Descriptor.Forwarded f) when f = dest ->
                    Descriptor.set_forwarded (Runtime.descriptors rt n) addr
                      obj.Aobject.location
                  | _ -> ()
              done
            end
            else
              obj.Aobject.replicas <-
                List.filter (fun n -> n <> dest) obj.Aobject.replicas;
            Topaz.Rpc.post (Runtime.rpc rt) ~src:dest ~dst:src
              ~kind:"repl-ack" ~size:c.Cost_model.move_ack_bytes (fun () ->
                wake ()))
      in
      if master = here && obj.Aobject.location = here then begin
        match capture () with
        | None -> ()
        | Some payload ->
          Sim.Fiber.consume ship_cpu;
          Sim.Fiber.block (fun wake -> ship ~src:here payload wake)
      end
      else
        Topaz.Rpc.call (Runtime.rpc rt) ~dst:master ~kind:"repl-req"
          ~req_size:64 ~work:(fun () ->
            ( c.Cost_model.move_ack_bytes,
              if obj.Aobject.location <> master then
                (* The master moved between resolve and arrival; treat the
                   install as advisory and give up rather than chase. *)
                ()
              else
                match capture () with
                | None -> ()
                | Some payload ->
                  Sim.Fiber.consume ship_cpu;
                  Sim.Fiber.block (fun wake -> ship ~src:master payload wake)
            ))
    end
  end

let invalidate rt (obj : 'a Aobject.t) =
  let ctrs = Runtime.counters rt in
  let addr = obj.Aobject.addr in
  let rec drain () =
    match obj.Aobject.replicas with
    | [] -> ()
    | targets ->
      List.iter
        (fun node ->
          (* One acknowledged control RPC per replica: under fault
             injection the reliable transport retransmits until the
             recall is acknowledged — a lost invalidation is retried,
             never silently dropped. *)
          Topaz.Rpc.call (Runtime.rpc rt) ~dst:node ~kind:"inval"
            ~req_size:32 ~work:(fun () ->
              Aobject.drop_snapshot obj ~node;
              if Descriptor.is_replica (Runtime.descriptors rt node) addr
              then
                Descriptor.set_forwarded
                  (Runtime.descriptors rt node)
                  addr obj.Aobject.location;
              ctrs.Runtime.replica_invalidations <-
                ctrs.Runtime.replica_invalidations + 1;
              (16, ())))
        targets;
      obj.Aobject.replicas <-
        List.filter (fun n -> not (List.mem n targets)) obj.Aobject.replicas;
      (* A replica granted while the round was in flight is recalled by
         the next pass; the round is only over when a full pass finds the
         set empty. *)
      drain ()
  in
  drain ()
