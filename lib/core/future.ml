(* Futures over the invocation fabric (Amber-Async).

   [invoke_async] runs an ordinary [Invoke.invoke] — full semantics:
   frame, chase, coherence, sanitizer hooks — on a helper thread, and
   returns immediately with a first-class future.  The issuer keeps
   computing; [await] parks its fiber until the invocation's outcome has
   landed back on the future's home node.

   Resolution visibility is physical, not teleported: a helper that
   finishes on another node ships a small "future-notify" datagram (the
   outcome tag plus a marshalled scalar, [Cost_model.future_notify_bytes])
   back to the home node, and the future only becomes observable there
   when that datagram lands.  A helper that finishes at home resolves in
   place with no wire traffic.

   Causality: the helper's whole execution sits under an [Async_invoke]
   span parented to the issuer's open span and marked [async] — causally
   linked but overlapping the issuer's continued compute.  [await] opens
   a [Future_wait] span whose [arg] names that span, so the critical-path
   analyzer charges the awaiting path only with the un-overlapped
   remainder of the async work. *)

type 'a outcome = ('a, exn) result

type 'a t = {
  id : int;
  home : int;  (* node where the future was created and is awaited *)
  mutable state : 'a outcome option;
  mutable waiters : (unit -> unit) list;  (* parked awaiters, LIFO *)
  mutable span : int;  (* the helper's Async_invoke span, 0 until it runs *)
}

let id f = f.id
let is_resolved f = f.state <> None
let peek f = f.state

let invoke_async rt ?(payload = 0) ?(return_payload = 0)
    ?(mode = San_hooks.Atomic) obj op =
  let ctrs = Runtime.counters rt in
  ctrs.Runtime.async_invocations <- ctrs.Runtime.async_invocations + 1;
  let id = ctrs.Runtime.async_invocations in
  let fut =
    {
      id;
      home = Runtime.current_node rt;
      state = None;
      waiters = [];
      span = 0;
    }
  in
  let spans = Runtime.spans rt in
  let issuer_span = Sim.Span.current spans in
  (* Publishing the outcome and waking awaiters always happens at the
     future's home node — either directly (helper finished there) or
     from the notify datagram's delivery callback. *)
  let publish outcome () =
    fut.state <- Some outcome;
    let ws = List.rev fut.waiters in
    fut.waiters <- [];
    List.iter (fun wake -> wake ()) ws
  in
  let helper () =
    let sp =
      Sim.Span.start spans Sim.Span.Async_invoke ~label:obj.Aobject.name
        ~obj:obj.Aobject.addr ~arg:id ~async:true ~parent:issuer_span ()
    in
    fut.span <- sp;
    let outcome =
      match Invoke.invoke rt ~payload ~return_payload ~mode obj op with
      | v -> Ok v
      | exception e -> Error e
    in
    (* The invocation's effects are in place; publish the resolution.
       The happens-before edge recorded here (helper clock at resolve)
       joins into every awaiter that observes it. *)
    Runtime.with_san rt (fun h -> h.San_hooks.on_future_resolve ~id);
    let here = Runtime.current_node rt in
    if here = fut.home then publish outcome ()
    else begin
      ctrs.Runtime.future_notifies <- ctrs.Runtime.future_notifies + 1;
      (* If the notify's sender node fail-stops with the datagram un-acked
         (or the home dies — in which case nobody is left to observe), the
         awaiter still learns the helper's fate: crash detection resolves
         the future with the death instead of leaving it parked forever. *)
      Topaz.Rpc.send_reliable (Runtime.rpc rt)
        ~on_dead:(fun e -> if fut.state = None then publish (Error e) ())
        ~src:here ~dst:fut.home
        ~size:(Runtime.cost rt).Cost_model.future_notify_bytes
        ~kind:"future-notify" (publish outcome)
    end;
    Sim.Span.finish spans sp
  in
  let th = Athread.start rt ~name:(Printf.sprintf "async-%d" id) helper in
  (* A helper killed by a fail-stop crash never reaches its publish;
     resolve the future with the failure so [await] raises [Node_dead]
     rather than hanging.  Organic failures are caught inside [helper]
     and publish normally, so this hook only ever fires for kills. *)
  Hw.Machine.on_finish (Athread.tcb th) (fun outcome ->
      match outcome with
      | Sim.Fiber.Failed e
        when fut.state = None && Hw.Machine.was_killed (Athread.tcb th) ->
        publish (Error e) ()
      | _ -> ());
  fut

let await rt fut =
  let spans = Runtime.spans rt in
  (* Probing the future cell is a lock-fast-path-sized operation. *)
  Sim.Fiber.consume (Runtime.cost rt).Cost_model.lock_fast_cpu;
  (match fut.state with
  | Some _ -> ()
  | None ->
    let wsp =
      Sim.Span.start spans Sim.Span.Future_wait
        ~label:(Printf.sprintf "future-%d" fut.id) ()
    in
    Sim.Fiber.block (fun wake -> fut.waiters <- wake :: fut.waiters);
    (* Now that the helper has run, its span id is known: point the wait
       at it so the critical-path analyzer can descend. *)
    Sim.Span.set_arg spans wsp fut.span;
    Sim.Span.finish spans wsp);
  Runtime.with_san rt (fun h -> h.San_hooks.on_future_await ~id:fut.id);
  match fut.state with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

(* Await every future — a failed one does not abort the sweep, so every
   async invocation is observed — then surface the first failure (by
   list position), or all results in order. *)
let await_all rt futs =
  let outcomes =
    List.map
      (fun f -> match await rt f with v -> Ok v | exception e -> Error e)
      futs
  in
  List.map (function Ok v -> v | Error e -> raise e) outcomes
