type state = Resident | Forwarded of int | Replica of int

type table = {
  node_id : int;
  entries : (int, state) Hashtbl.t;
  mutable uninit_reads : int;
}

let create_table ~node =
  { node_id = node; entries = Hashtbl.create 256; uninit_reads = 0 }

let node t = t.node_id

let get t addr =
  match Hashtbl.find_opt t.entries addr with
  | Some s -> Some s
  | None ->
    t.uninit_reads <- t.uninit_reads + 1;
    None

let set_resident t addr = Hashtbl.replace t.entries addr Resident
let set_forwarded t addr n = Hashtbl.replace t.entries addr (Forwarded n)
let set_replica t addr master = Hashtbl.replace t.entries addr (Replica master)
let clear t addr = Hashtbl.remove t.entries addr

let is_resident t addr =
  match Hashtbl.find_opt t.entries addr with
  | Some Resident -> true
  | Some (Forwarded _ | Replica _) | None -> false

let is_replica t addr =
  match Hashtbl.find_opt t.entries addr with
  | Some (Replica _) -> true
  | Some (Resident | Forwarded _) | None -> false

let entries t = Hashtbl.length t.entries
let uninitialized_reads t = t.uninit_reads
