(** Location-independent object invocation (paper §2, §3.2–§3.5).

    [invoke rt obj op] runs [op] on [obj]'s representation {e at the node
    where the object resides}.  The calling thread's invocation frame is
    pushed {e before} the residency check (the §3.5 race-avoidance
    protocol); if the object is not resident, the invocation traps and the
    thread migrates to the object's node, chasing forwarding addresses as
    needed.  On return, the enclosing frame's object is re-checked and the
    thread migrates back if that object moved meanwhile.

    A local invocation costs only the entry/exit checks (the paper's
    12 µs); a remote invocation costs two thread-state flights (the
    paper's 8.32 ms under Table-1 conditions). *)

(** [invoke rt ?payload ?return_payload obj op] applies [op] to the
    object's state wherever it lives.

    [payload] models argument bytes that must travel with the thread on a
    remote invocation (e.g. an edge row passed by value in SOR);
    [return_payload] models result bytes carried back.  Both default to 0
    — reference parameters are addresses and effectively free.

    [mode] is the access declaration the sanitizer checks (see
    {!San_hooks.mode}).  The default [Atomic] declares a self-contained
    action serialized at the object; [`Read]/[`Write] declare one step of
    a multi-invocation protocol that must be ordered by explicit
    synchronization.  When the object has read replicas ({!Coherence}),
    the mode also selects the coherence path: a [Read] invocation settles
    on — and runs against the snapshot of — a local replica if one
    exists, while [Write]/[Atomic] invocations reach the master and recall
    every replica (an acknowledged invalidation round) before running.
    For objects with no replicas, execution is unchanged.

    Must be called from an Amber thread.  Exceptions raised by [op]
    propagate after the return-path accounting. *)
val invoke :
  Runtime.t ->
  ?payload:int ->
  ?return_payload:int ->
  ?mode:San_hooks.mode ->
  'a Aobject.t ->
  ('a -> 'b) ->
  'b

(** True while the calling thread holds an invocation frame on [obj] —
    i.e. co-residency with [obj] is currently guaranteed (§3.6). *)
val executing_within : Runtime.t -> 'a Aobject.t -> bool

(** The §3.6 optimization: invoke a {e member} object with an inline call,
    skipping the residency checks and the invocation frame entirely
    ("if the lock is a member object of the protected object then it can
    be safely acquired and released using fast inline function calls").

    Legal only when co-residency is guaranteed: [obj] must belong to the
    attachment closure of the object the calling thread is currently
    executing within.  The closure moves as one and the thread is bound to
    its root, so [obj] can never escape mid-call.  Raises
    [Invalid_argument] when the guarantee does not hold — the safe
    surfacing of what in C++ would be "incorrect program behavior". *)
val invoke_member :
  Runtime.t -> ?mode:San_hooks.mode -> 'a Aobject.t -> ('a -> 'b) -> 'b
