(* Perform the §3.4/§3.5 move protocol for a mutable object whose master
   copy is resident on the calling fiber's node.  Returns after the
   contents are installed at [dest] and acknowledged. *)
let do_move_here rt (root : Aobject.any) ~dest =
  let c = Runtime.cost rt in
  let here = Runtime.current_node rt in
  if here = dest then ()
  else begin
  let closure = Aobject.attachment_closure root in
  let bytes = Aobject.closure_size root in
  let ctrs = Runtime.counters rt in
  (* A moving master drops its replica set first (an acknowledged recall
     per copy): replicas must never be left pointing at a master that is
     about to forward, and forwarding chains must never point at them. *)
  List.iter
    (fun (Aobject.Any o) ->
      if (not o.Aobject.immutable_) && o.Aobject.replicas <> [] then
        Coherence.invalidate rt o)
    closure;
  (* Mark every moving object forwarded before anything is copied, then
     force all running threads through a residency check (§3.5). *)
  List.iter
    (fun (Aobject.Any o) ->
      Descriptor.set_forwarded (Runtime.descriptors rt here) o.Aobject.addr
        dest)
    closure;
  let except = Hw.Machine.self () in
  ignore (Hw.Machine.preempt_all ?except (Runtime.machine rt here) : int);
  Sim.Fiber.consume
    (c.Cost_model.move_fixed_cpu
    +. (c.Cost_model.move_per_byte_cpu *. float_of_int bytes));
  ctrs.Runtime.object_moves <- ctrs.Runtime.object_moves + 1;
  ctrs.Runtime.move_bytes <- ctrs.Runtime.move_bytes + bytes;
  (* The post below runs in event context (inside [block]'s register
     callback), where no fiber — and so no span — is current: capture the
     move span here so the wire leg stays causally attached to it. *)
  let psp = Sim.Span.current (Runtime.spans rt) in
  (* A destination that fail-stops while the contents (or the ack) are in
     flight must not park the mover forever: surface [Node_dead] here.
     The object state itself is covered either way — contents never
     installed leave the master where it was; contents installed on the
     corpse are re-mastered by fail-stop recovery. *)
  let failed = ref None in
  Sim.Fiber.block (fun wake ->
      let rpc = Runtime.rpc rt in
      let woken = ref false in
      let watch = ref 0 in
      let finish () =
        Topaz.Rpc.unwatch rpc ~node:dest !watch;
        if not !woken then begin
          woken := true;
          wake ()
        end
      in
      let aborted = ref false in
      let dead e =
        Topaz.Rpc.unwatch rpc ~node:dest !watch;
        if not !woken then begin
          woken := true;
          failed := Some e;
          (* If the contents never installed, the master stays where it
             was: un-forward the descriptors flipped before the ship —
             leaving them would strand the survivors' chains pointing at
             a corpse that never held the object.  (If they did install,
             [location] is [dest] and fail-stop recovery owns the
             cleanup.)  [aborted] also revokes a delivered-but-unrun
             install: the failure detector can trip spuriously with the
             contents sitting in a {e live} destination's server queue —
             the budget exhausts on a starved ack — and installing after
             this rollback would leave two nodes claiming residency. *)
          aborted := true;
          List.iter
            (fun (Aobject.Any o) ->
              if o.Aobject.location = here then
                Descriptor.set_resident
                  (Runtime.descriptors rt here)
                  o.Aobject.addr)
            closure;
          wake ()
        end
      in
      (* The per-leg [on_dead] hooks only cover an in-flight datagram;
         a reliable datagram transport-acks at delivery, so a [dest]
         that dies with the install handler still queued leaves no
         outstanding transaction to abort — the watcher covers that
         window. *)
      watch := Topaz.Rpc.watch_peer rpc ~node:dest dead;
      Topaz.Rpc.post ~parent:psp ~on_dead:dead rpc ~src:here ~dst:dest
        ~kind:"obj-contents" ~size:bytes (fun () ->
          (* Server fiber on [dest]: install the contents — unless the
             mover already gave up and rolled the master back, in which
             case the shipped copy is dead on arrival. *)
          if not !aborted then begin
            List.iter
              (fun (Aobject.Any o) ->
                o.Aobject.location <- dest;
                Descriptor.set_resident (Runtime.descriptors rt dest)
                  o.Aobject.addr)
              closure;
            Topaz.Rpc.post ~on_dead:dead rpc ~src:dest ~dst:here
              ~kind:"move-ack" ~size:c.Cost_model.move_ack_bytes (fun () ->
                finish ())
          end));
  match !failed with Some e -> raise e | None -> ()
  end

(* Chase the forwarding chain with the move request itself: each hop is
   one control RPC, and the node that actually holds the object executes
   the move before replying (so a one-hop-accurate hint costs a single
   round trip, the paper's Table-1 scenario).  {!Runtime.chase} supplies
   the hop budget, home-node fallback and dangling detection. *)
let move_mutable rt (obj_addr : int) (root : Aobject.any) ~dest =
  let c = Runtime.cost rt in
  let visited = ref [] in
  let probe_and_move node =
    Sim.Fiber.consume c.Cost_model.forward_lookup_cpu;
    match Descriptor.get (Runtime.descriptors rt node) obj_addr with
    | Some Descriptor.Resident ->
      do_move_here rt root ~dest;
      `Moved
    | Some (Descriptor.Forwarded next) -> `Try next
    | Some (Descriptor.Replica master) ->
      (* A replica node cannot execute the move; its hint says where the
         master was last known to live. *)
      `Try master
    | None -> `Missing
  in
  Runtime.chase rt ~what:"Mobility" ~addr:obj_addr
    ~start:(Runtime.current_node rt)
    ~step:(fun ~node ~hops:_ ->
      let verdict =
        if node = Runtime.current_node rt then probe_and_move node
        else
          Topaz.Rpc.call (Runtime.rpc rt) ~dst:node ~kind:"move-req"
            ~req_size:64 ~work:(fun () -> (32, probe_and_move node))
      in
      match verdict with
      | `Moved -> Runtime.Found ()
      | `Try next ->
        visited := node :: !visited;
        Runtime.Follow next
      | `Missing -> Runtime.Miss);
  (* §3.3 on the move path: every node whose stale pointer the request
     chased learns the object's new location, not just the caller's.
     Skip replica nodes (their copy stays usable until invalidated) and
     nodes where the object has meanwhile become resident again (another
     move can land it on a node this request chased while it was stale;
     flushing Forwarded over residency would orphan the object). *)
  let flushable v =
    (not (Descriptor.is_replica (Runtime.descriptors rt v) obj_addr))
    && not (Descriptor.is_resident (Runtime.descriptors rt v) obj_addr)
  in
  List.iter
    (fun v ->
      if v <> dest && flushable v then
        Descriptor.set_forwarded (Runtime.descriptors rt v) obj_addr dest)
    !visited;
  let here = Runtime.current_node rt in
  if here <> dest && (not (List.mem here !visited)) && flushable here then
    Descriptor.set_forwarded (Runtime.descriptors rt here) obj_addr dest

(* Immutable replication: ship a copy of the closure to [dest] from some
   node that holds one; existing copies stay valid. *)
let replicate rt (obj : 'a Aobject.t) ~dest =
  let c = Runtime.cost rt in
  let ctrs = Runtime.counters rt in
  if Aobject.usable_on obj dest then ()
  else begin
    let root = Aobject.Any obj in
    let bytes = Aobject.closure_size root in
    let source = Runtime.resolve_location rt ~addr:obj.Aobject.addr in
    (* A copy whose endpoint fail-stops mid-flight surfaces [Node_dead]
       at the caller instead of parking a fiber forever. *)
    let failed = ref None in
    let install_and_ack ~ack_to ~parent wake =
      let rpc = Runtime.rpc rt in
      let woken = ref false in
      let watch = ref 0 in
      let finish () =
        Topaz.Rpc.unwatch rpc ~node:dest !watch;
        if not !woken then begin
          woken := true;
          wake ()
        end
      in
      let dead e =
        Topaz.Rpc.unwatch rpc ~node:dest !watch;
        if not !woken then begin
          woken := true;
          failed := Some e;
          wake ()
        end
      in
      (* Watch [dest] for the handshake window the per-leg [on_dead]
         hooks miss: copy transport-acked, install handler queued on the
         corpse, ack never posted. *)
      watch := Topaz.Rpc.watch_peer rpc ~node:dest dead;
      Topaz.Rpc.post ~parent ~on_dead:dead rpc ~src:source
        ~dst:dest ~kind:"obj-copy" ~size:bytes (fun () ->
          (* Count the copy only once it is installed at the destination:
             a copy request that dies on the wire is not a copy. *)
          ctrs.Runtime.object_copies <- ctrs.Runtime.object_copies + 1;
          ctrs.Runtime.move_bytes <- ctrs.Runtime.move_bytes + bytes;
          List.iter
            (fun (Aobject.Any o) ->
              if not (List.mem dest o.Aobject.replicas) then
                o.Aobject.replicas <- dest :: o.Aobject.replicas;
              Descriptor.set_resident (Runtime.descriptors rt dest)
                o.Aobject.addr)
            (Aobject.attachment_closure root);
          Topaz.Rpc.post ~on_dead:dead rpc ~src:dest ~dst:ack_to
            ~kind:"copy-ack" ~size:c.Cost_model.move_ack_bytes (fun () ->
              finish ()))
    in
    let here = Runtime.current_node rt in
    let copy_out () =
      Sim.Fiber.consume
        (c.Cost_model.move_fixed_cpu
        +. (c.Cost_model.move_per_byte_cpu *. float_of_int bytes))
    in
    (if source = here then begin
       copy_out ();
       let psp = Sim.Span.current (Runtime.spans rt) in
       Sim.Fiber.block (fun wake ->
           install_and_ack ~ack_to:here ~parent:psp wake)
     end
     else
       Topaz.Rpc.call (Runtime.rpc rt) ~dst:source ~kind:"copy-req"
         ~req_size:64 ~work:(fun () ->
           copy_out ();
           let psp = Sim.Span.current (Runtime.spans rt) in
           Sim.Fiber.block (fun wake ->
               install_and_ack ~ack_to:source ~parent:psp wake);
           (c.Cost_model.move_ack_bytes, ())));
    match !failed with Some e -> raise e | None -> ()
  end

let move_to rt obj ~dest =
  Aobject.check_lost obj;
  if dest < 0 || dest >= Runtime.nodes rt then
    invalid_arg "Mobility.move_to: bad destination node";
  if obj.Aobject.parent <> None then
    invalid_arg "Mobility.move_to: object is attached; move its root";
  let t0 = Runtime.now rt in
  Runtime.with_san rt (fun h -> h.San_hooks.on_move_begin ~addr:obj.Aobject.addr);
  Sim.Span.with_span (Runtime.spans rt) Sim.Span.Object_move
    ~label:obj.Aobject.name ~obj:obj.Aobject.addr ~arg:dest (fun () ->
      if obj.Aobject.immutable_ then replicate rt obj ~dest
      else move_mutable rt obj.Aobject.addr (Aobject.Any obj) ~dest);
  Runtime.with_san rt (fun h -> h.San_hooks.on_move_end (Aobject.Any obj));
  Sim.Stats.Summary.add (Runtime.move_latency rt) (Runtime.now rt -. t0);
  (* If the caller was bound to the moved object, force it through the
     context-switch-in check so it follows the object (§3.5). *)
  Sim.Fiber.yield ()

let locate rt obj =
  let ctrs = Runtime.counters rt in
  ctrs.Runtime.locates <- ctrs.Runtime.locates + 1;
  Runtime.resolve_location rt ~addr:obj.Aobject.addr

let rec is_ancestor (candidate : Aobject.any) (node : Aobject.any) =
  Aobject.addr_of_any candidate = Aobject.addr_of_any node
  ||
  match node with
  | Aobject.Any o -> (
    match o.Aobject.parent with
    | None -> false
    | Some p -> is_ancestor candidate p)

let attach rt ~parent ~child =
  if child.Aobject.parent <> None then
    invalid_arg "Mobility.attach: child is already attached";
  if child.Aobject.addr = parent.Aobject.addr then
    invalid_arg "Mobility.attach: cannot attach an object to itself";
  if is_ancestor (Aobject.Any child) (Aobject.Any parent) then
    invalid_arg "Mobility.attach: attachment would create a cycle";
  let c = Runtime.cost rt in
  Sim.Fiber.consume c.Cost_model.forward_lookup_cpu;
  (* Attachment guarantees co-residency from now on, so co-locate first. *)
  let parent_loc = locate rt parent in
  if child.Aobject.location <> parent_loc then begin
    Runtime.with_san rt (fun h ->
        h.San_hooks.on_move_begin ~addr:child.Aobject.addr);
    if child.Aobject.immutable_ then replicate rt child ~dest:parent_loc
    else move_mutable rt child.Aobject.addr (Aobject.Any child) ~dest:parent_loc;
    Runtime.with_san rt (fun h ->
        h.San_hooks.on_move_end (Aobject.Any child))
  end;
  child.Aobject.parent <- Some (Aobject.Any parent);
  parent.Aobject.attached <- Aobject.Any child :: parent.Aobject.attached

let unattach rt ~child =
  match child.Aobject.parent with
  | None -> invalid_arg "Mobility.unattach: child is not attached"
  | Some (Aobject.Any p) ->
    let c = Runtime.cost rt in
    Sim.Fiber.consume c.Cost_model.forward_lookup_cpu;
    p.Aobject.attached <-
      List.filter
        (fun a -> Aobject.addr_of_any a <> child.Aobject.addr)
        p.Aobject.attached;
    child.Aobject.parent <- None

let set_immutable rt obj =
  let closure = Aobject.attachment_closure (Aobject.Any obj) in
  List.iter
    (fun (Aobject.Any o) ->
      if (not o.Aobject.immutable_) && o.Aobject.addr <> obj.Aobject.addr then
        invalid_arg
          "Mobility.set_immutable: attachment closure contains mutable \
           objects")
    closure;
  (* Recall any read replicas first: after the flip, [replicas] means
     permanent immutable copies with Resident descriptors, which a
     write-invalidate replica is not. *)
  if obj.Aobject.replicas <> [] then Coherence.invalidate rt obj;
  Sim.Fiber.consume (Runtime.cost rt).Cost_model.forward_lookup_cpu;
  obj.Aobject.immutable_ <- true
