(** Sanitizer instrumentation points.

    The runtime layers ({!Invoke}, {!Sync}, {!Athread}, {!Mobility},
    {!Runtime}) call these hooks at every event a dynamic analysis needs
    to observe: thread lifecycle, synchronization edges, object accesses
    and protocol-level moves.  When no sanitizer is attached the cost is
    a single [None] branch per site, exactly like a disabled {!Sim.Trace};
    hooks never charge virtual time, so an instrumented run is
    bit-identical to an uninstrumented one.

    The implementation lives outside this library (in [lib/analysis]) and
    installs itself with {!Runtime.set_sanitizer}. *)

(** How an invocation accesses the object's state.

    [Atomic] (the default everywhere) declares a self-contained action:
    the read-modify-write happens entirely inside one invocation, which
    the runtime serializes at the object.  [Read]/[Write] declare one
    step of a multi-invocation protocol whose steps must be ordered by
    explicit synchronization — this is what the race detector checks. *)
type mode = Read | Write | Atomic

type t = {
  on_thread_start : parent:Hw.Machine.tcb option -> child:Hw.Machine.tcb -> unit;
  on_thread_join : child:Hw.Machine.tcb -> unit;
  on_migrate : tcb:Hw.Machine.tcb -> src:int -> dst:int -> unit;
  on_object_created : Aobject.any -> unit;
  on_object_destroyed : addr:int -> unit;
  on_sync_created : addr:int -> kind:string -> unit;
      (** marks an object as a synchronization object: its own state is
          protocol-internal and excluded from race checking *)
  on_access : Aobject.any -> mode -> unit;  (** before the operation runs *)
  on_access_end : Aobject.any -> unit;  (** after the operation returns *)
  on_lock_acquired : addr:int -> name:string -> unit;
  on_lock_released : addr:int -> unit;
  on_barrier_arrive : addr:int -> gen:int -> unit;
  on_barrier_release : addr:int -> gen:int -> unit;
  on_barrier_resume : addr:int -> gen:int -> unit;
  on_cond_signal : token:int -> unit;
  on_cond_wake : token:int -> unit;
  on_move_begin : addr:int -> unit;
  on_move_end : Aobject.any -> unit;
  on_replica_read : Aobject.any -> node:int -> epoch:int -> unit;
      (** a Read invocation was served from the replica snapshot on
          [node], taken at [epoch]; the sanitizer compares against the
          object's current epoch and replica set to catch stale serves *)
  on_steal : tcb:Hw.Machine.tcb -> victim:int -> thief:int -> unit;
      (** the balancer's stealer dequeued runnable [tcb] from [victim]'s
          ready queue and is shipping it to [thief].  The dequeue happens
          before the thread runs at the thief, so this is a happens-before
          edge (victim-side state → stolen thread), which the race
          detector must honor to avoid false positives under [--steal].
          Fires in event context — there is no current fiber. *)
  on_future_resolve : id:int -> unit;
      (** the helper thread carrying async invocation [id] finished and
          resolved the future (fires in the helper's fiber, after the
          invocation's effects are visible at the future's home node) *)
  on_future_await : id:int -> unit;
      (** a thread observed future [id] resolved in [Future.await]; the
          resolver's clock joins into the awaiter's — the happens-before
          edge resolve → await *)
}

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
val pp_mode : Format.formatter -> mode -> unit
