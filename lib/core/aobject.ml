type 'a t = {
  addr : int;
  name : string;
  size : int;
  home : int;
  mutable location : int;
  mutable immutable_ : bool;
  mutable replicas : int list;
  mutable epoch : int;
  mutable repl_gen : int;
  mutable grants : (int * int) list;
  mutable writers : int;
  mutable rcopies : (int * int * 'a) list;
  mutable attached : any list;
  mutable parent : any option;
  mutable win_local : int;
  mutable win_remote : (int * int) list;
  mutable win_reads : int;
  mutable lost : bool;
      (* the only copy lived on a node that crashed without restarting:
         every further access fails crisply with {!Object_lost} *)
  mutable state : 'a;
}

and any = Any : 'a t -> any

exception Object_lost of { addr : int; name : string }

let () =
  Printexc.register_printer (function
    | Object_lost { addr; name } ->
      Some
        (Printf.sprintf
           "Aobject.Object_lost { addr = 0x%x; name = %S } (the object's \
            only copy was on a crashed node)"
           addr name)
    | _ -> None)

let check_lost o =
  if o.lost then raise (Object_lost { addr = o.addr; name = o.name })

let make ~addr ~name ~size ~node state =
  {
    addr;
    name;
    size;
    home = node;
    location = node;
    immutable_ = false;
    replicas = [];
    epoch = 0;
    repl_gen = 0;
    grants = [];
    writers = 0;
    rcopies = [];
    attached = [];
    parent = None;
    win_local = 0;
    win_remote = [];
    win_reads = 0;
    lost = false;
    state;
  }

let record_call o ~origin ~local =
  if local then o.win_local <- o.win_local + 1
  else
    o.win_remote <-
      (match List.assoc_opt origin o.win_remote with
      | Some n -> (origin, n + 1) :: List.remove_assoc origin o.win_remote
      | None -> (origin, 1) :: o.win_remote)

let record_read o = o.win_reads <- o.win_reads + 1

let reset_window o =
  o.win_local <- 0;
  o.win_remote <- [];
  o.win_reads <- 0

let reset_window_any (Any o) = reset_window o

let addr_of_any (Any o) = o.addr
let name_of_any (Any o) = o.name
let size_of_any (Any o) = o.size
let location_of_any (Any o) = o.location

let attachment_closure root =
  (* Attachment edges cannot form cycles (attach enforces tree shape), but
     guard against repeats anyway. *)
  let seen = Hashtbl.create 8 in
  let rec walk acc (Any o as node) =
    if Hashtbl.mem seen o.addr then acc
    else begin
      Hashtbl.replace seen o.addr ();
      List.fold_left walk (node :: acc) o.attached
    end
  in
  List.rev (walk [] root)

let closure_size root =
  List.fold_left (fun acc a -> acc + size_of_any a) 0 (attachment_closure root)

let usable_on o node =
  o.location = node || (o.immutable_ && List.mem node o.replicas)

let snapshot o ~node =
  List.find_map
    (fun (n, ep, v) -> if n = node then Some (ep, v) else None)
    o.rcopies

let set_snapshot o ~node ~epoch v =
  o.rcopies <- (node, epoch, v) :: List.filter (fun (n, _, _) -> n <> node) o.rcopies

let drop_snapshot o ~node =
  o.rcopies <- List.filter (fun (n, _, _) -> n <> node) o.rcopies

let pp ppf o =
  Format.fprintf ppf "%s@0x%x[%dB %s@@node%d]" o.name o.addr o.size
    (if o.immutable_ then "imm" else "mut")
    o.location
