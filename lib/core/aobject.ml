type 'a t = {
  addr : int;
  name : string;
  size : int;
  home : int;
  mutable location : int;
  mutable immutable_ : bool;
  mutable replicas : int list;
  mutable epoch : int;
  mutable repl_gen : int;
  mutable grants : (int * int) list;
  mutable writers : int;
  mutable rcopies : (int * int * 'a) list;
  mutable attached : any list;
  mutable parent : any option;
  mutable state : 'a;
}

and any = Any : 'a t -> any

let make ~addr ~name ~size ~node state =
  {
    addr;
    name;
    size;
    home = node;
    location = node;
    immutable_ = false;
    replicas = [];
    epoch = 0;
    repl_gen = 0;
    grants = [];
    writers = 0;
    rcopies = [];
    attached = [];
    parent = None;
    state;
  }

let addr_of_any (Any o) = o.addr
let name_of_any (Any o) = o.name
let size_of_any (Any o) = o.size
let location_of_any (Any o) = o.location

let attachment_closure root =
  (* Attachment edges cannot form cycles (attach enforces tree shape), but
     guard against repeats anyway. *)
  let seen = Hashtbl.create 8 in
  let rec walk acc (Any o as node) =
    if Hashtbl.mem seen o.addr then acc
    else begin
      Hashtbl.replace seen o.addr ();
      List.fold_left walk (node :: acc) o.attached
    end
  in
  List.rev (walk [] root)

let closure_size root =
  List.fold_left (fun acc a -> acc + size_of_any a) 0 (attachment_closure root)

let usable_on o node =
  o.location = node || (o.immutable_ && List.mem node o.replicas)

let snapshot o ~node =
  List.find_map
    (fun (n, ep, v) -> if n = node then Some (ep, v) else None)
    o.rcopies

let set_snapshot o ~node ~epoch v =
  o.rcopies <- (node, epoch, v) :: List.filter (fun (n, _, _) -> n <> node) o.rcopies

let drop_snapshot o ~node =
  o.rcopies <- List.filter (fun (n, _, _) -> n <> node) o.rcopies

let pp ppf o =
  Format.fprintf ppf "%s@0x%x[%dB %s@@node%d]" o.name o.addr o.size
    (if o.immutable_ then "imm" else "mut")
    o.location
