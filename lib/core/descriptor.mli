(** Per-node object descriptor tables (paper §3.2–3.3).

    Every object has (conceptually) a descriptor at the same virtual
    address on every node.  A node's table holds only the descriptors that
    have been {e written} on that node; an absent entry models the
    "uninitialized descriptor on a zero-filled page": it reads as
    non-resident with a null forwarding address, which sends the request to
    the object's home node.

    A descriptor is one of:
    - [Resident] — the object (or an immutable replica) is on this node and
      may be invoked locally;
    - [Forwarded n] — the object left this node (or was learned to live
      elsewhere); [n] is the last known location, possibly stale;
    - [Replica m] — this node holds a read-only copy of a {e mutable}
      object whose master was last known at [m].  Read invocations may run
      against the copy; anything else chases toward [m].  (Immutable
      replicas use [Resident]: they are never invalidated.) *)

type state = Resident | Forwarded of int | Replica of int

type table

val create_table : node:int -> table
val node : table -> int

(** The descriptor for [addr] on this node; [None] is the uninitialized
    case. *)
val get : table -> int -> state option

val set_resident : table -> int -> unit
val set_forwarded : table -> int -> int -> unit

(** Mark this node as holding a read-only copy of a mutable object whose
    master is (last known) at the given node. *)
val set_replica : table -> int -> int -> unit

(** Remove the descriptor entirely (object deletion). *)
val clear : table -> int -> unit

val is_resident : table -> int -> bool
val is_replica : table -> int -> bool

(** Number of initialized descriptors on this node. *)
val entries : table -> int

(** Number of descriptor reads that found an uninitialized entry (the
    home-node fallback path). *)
val uninitialized_reads : table -> int
