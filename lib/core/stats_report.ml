type node_stats = {
  node : int;
  cpu_busy : float;
  utilization : float;
  dispatches : int;
  preemptions : int;
  descriptor_entries : int;
  heap_live_blocks : int;
  heap_regions : int;
}

type fault_stats = {
  faults_enabled : bool;
  packets_dropped : int;
  packets_duplicated : int;
  packets_delayed : int;
  packets_stalled : int;
  rpc_timeouts : int;
  rpc_retransmits : int;
  dup_requests : int;
  dup_replies : int;
  dup_datagrams : int;
  reply_resends : int;
  acks_sent : int;
  home_fallbacks : int;
}

type crash_stats = {
  packets_dropped_dead : int;
  rpc_peer_deaths : int;
}

type t = {
  elapsed : float;
  nodes : node_stats array;
  counters : Runtime.counters;
  packets : int;
  net_bytes : int;
  net_busy : float;
  net_utilization : float;
  net_queueing : float;
  traffic_by_kind : (string * int * int) list;
  faults : fault_stats;
  crash : crash_stats;
  remote_invoke_latency : Sim.Stats.Summary.t;
  move_latency : Sim.Stats.Summary.t;
  coalescing : Topaz.Rpc.coalescing_counters;
  trace_dropped : int;
  series_dropped : int;
  extra : (string * string list) list;
}

let capture rt =
  let elapsed = Runtime.now rt in
  let cpus = (Runtime.config rt).Config.cpus_per_node in
  let nodes =
    Array.init (Runtime.nodes rt) (fun node ->
        let m = Runtime.machine rt node in
        let busy = Hw.Machine.total_busy_time m in
        {
          node;
          cpu_busy = busy;
          utilization =
            (if elapsed > 0.0 then busy /. (float_of_int cpus *. elapsed)
             else 0.0);
          dispatches = Hw.Machine.dispatch_count m;
          preemptions = Hw.Machine.preemption_count m;
          descriptor_entries = Descriptor.entries (Runtime.descriptors rt node);
          heap_live_blocks = Vaspace.Heap.live_blocks (Runtime.heap rt node);
          heap_regions = List.length (Vaspace.Heap.regions (Runtime.heap rt node));
        })
  in
  let ether = Runtime.ether rt in
  let net_busy = Hw.Ethernet.busy_seconds ether in
  {
    elapsed;
    nodes;
    counters = Runtime.counters rt;
    packets = Hw.Ethernet.packets_sent ether;
    net_bytes = Hw.Ethernet.bytes_sent ether;
    net_busy;
    net_utilization = (if elapsed > 0.0 then net_busy /. elapsed else 0.0);
    net_queueing = Hw.Ethernet.total_queueing ether;
    traffic_by_kind = Hw.Ethernet.traffic_by_kind ether;
    faults =
      (let rel = Topaz.Rpc.reliability (Runtime.rpc rt) in
       let v = Sim.Stats.Counter.value in
       {
         faults_enabled =
           Hw.Ethernet.faults_enabled (Hw.Ethernet.faults_in_effect ether);
         packets_dropped = Hw.Ethernet.packets_dropped ether;
         packets_duplicated = Hw.Ethernet.packets_duplicated ether;
         packets_delayed = Hw.Ethernet.packets_delayed ether;
         packets_stalled = Hw.Ethernet.packets_stalled ether;
         rpc_timeouts = v rel.Topaz.Rpc.timeouts;
         rpc_retransmits = v rel.Topaz.Rpc.retransmits;
         dup_requests = v rel.Topaz.Rpc.dup_requests;
         dup_replies = v rel.Topaz.Rpc.dup_replies;
         dup_datagrams = v rel.Topaz.Rpc.dup_datagrams;
         reply_resends = v rel.Topaz.Rpc.reply_resends;
         acks_sent = v rel.Topaz.Rpc.acks_sent;
         home_fallbacks = (Runtime.counters rt).Runtime.home_fallbacks;
       });
    crash =
      {
        packets_dropped_dead = Hw.Ethernet.packets_dropped_dead ether;
        rpc_peer_deaths = Topaz.Rpc.peer_deaths (Runtime.rpc rt);
      };
    remote_invoke_latency = Runtime.remote_invoke_latency rt;
    move_latency = Runtime.move_latency rt;
    coalescing = Topaz.Rpc.coalescing (Runtime.rpc rt);
    trace_dropped = Sim.Trace.dropped (Runtime.trace rt);
    series_dropped = Sim.Series.total_dropped (Runtime.metrics rt);
    extra =
      List.map
        (fun (name, f) -> (name, f ()))
        (Runtime.report_sections rt);
  }

let pp_nodes ppf t =
  Array.iter
    (fun n ->
      Format.fprintf ppf
        "node %d: %5.1f%% busy (%.3fs), %d dispatches, %d preemptions, %d \
         descriptors, %d live objects in %d regions@."
        n.node (n.utilization *. 100.0) n.cpu_busy n.dispatches n.preemptions
        n.descriptor_entries n.heap_live_blocks n.heap_regions)
    t.nodes

let pp ppf t =
  let c = t.counters in
  Format.fprintf ppf "virtual elapsed: %.6f s@." t.elapsed;
  pp_nodes ppf t;
  Format.fprintf ppf
    "invocations: %d local, %d remote; %d thread flights (%d B)@."
    c.Runtime.local_invocations c.Runtime.remote_invocations
    c.Runtime.thread_migrations c.Runtime.migration_bytes;
  Format.fprintf ppf
    "objects: %d created, %d moves, %d copies (%d B); %d locates, %d \
     forwarding hops@."
    c.Runtime.objects_created c.Runtime.object_moves c.Runtime.object_copies
    c.Runtime.move_bytes c.Runtime.locates c.Runtime.forward_hops;
  (* Only printed when the replica protocol was actually used, keeping
     replication-off reports byte-identical to builds predating it. *)
  if
    c.Runtime.replica_installs + c.Runtime.replica_reads
    + c.Runtime.replica_invalidations
    > 0
  then
    Format.fprintf ppf
      "replicas: %d installed, %d reads served, %d invalidations@."
      c.Runtime.replica_installs c.Runtime.replica_reads
      c.Runtime.replica_invalidations;
  (* Same gating for the balancer: with --balance off these counters stay
     zero and the line never prints. *)
  if
    c.Runtime.gossip_rounds + c.Runtime.steal_requests
    + c.Runtime.threads_stolen + c.Runtime.balance_moves
    + c.Runtime.balance_replicas
    > 0
  then
    Format.fprintf ppf
      "balance: %d gossip rounds, %d steal requests, %d threads stolen, %d \
       object moves, %d replicas@."
      c.Runtime.gossip_rounds c.Runtime.steal_requests c.Runtime.threads_stolen
      c.Runtime.balance_moves c.Runtime.balance_replicas;
  (* Gated like replicas/balance: an async-free run prints nothing new. *)
  if c.Runtime.async_invocations > 0 then
    Format.fprintf ppf "async: %d invocations issued, %d result notifies@."
      c.Runtime.async_invocations c.Runtime.future_notifies;
  Format.fprintf ppf
    "network: %d packets, %d bytes, %4.1f%% utilized, %.3f s queueing@."
    t.packets t.net_bytes
    (t.net_utilization *. 100.0)
    t.net_queueing;
  (* Coalescing is opt-in; the line appears only when a frame was
     actually batched, so coalesce-off reports stay byte-identical. *)
  (let z = t.coalescing in
   if z.Topaz.Rpc.coal_frames > 0 then
     Format.fprintf ppf
       "coalescing: %d small datagrams batched into %d frames (%d eligible)@."
       z.Topaz.Rpc.coal_batched z.Topaz.Rpc.coal_frames
       z.Topaz.Rpc.coal_eligible);
  List.iter
    (fun (kind, n, b) ->
      Format.fprintf ppf "  %-14s %6d packets %10d bytes@." kind n b)
    t.traffic_by_kind;
  (let f = t.faults in
   if f.faults_enabled then begin
     Format.fprintf ppf
       "faults: %d dropped, %d duplicated, %d delayed, %d stalled@."
       f.packets_dropped f.packets_duplicated f.packets_delayed
       f.packets_stalled;
     Format.fprintf ppf
       "recovery: %d timeouts, %d retransmits; suppressed %d dup requests, \
        %d dup replies, %d dup datagrams; %d reply resends, %d acks@."
       f.rpc_timeouts f.rpc_retransmits f.dup_requests f.dup_replies
       f.dup_datagrams f.reply_resends f.acks_sent
   end;
   if f.home_fallbacks > 0 then
     Format.fprintf ppf "chain repair: %d home-node fallbacks@."
       f.home_fallbacks;
   if c.Runtime.broadcast_locates > 0 then
     Format.fprintf ppf "chain repair: %d broadcast locates@."
       c.Runtime.broadcast_locates);
  (* Crash injection: gated on a crash having actually happened, so
     crash-free runs keep byte-identical reports. *)
  if c.Runtime.node_crashes > 0 then begin
    Format.fprintf ppf
      "crashes: %d injected (%d restarted); %d packets dead-dropped, %d \
       transactions gave up on a peer@."
      c.Runtime.node_crashes c.Runtime.node_restarts
      t.crash.packets_dropped_dead t.crash.rpc_peer_deaths;
    Format.fprintf ppf
      "recovery: %d replicas promoted to master, %d objects lost, %d chain \
       entries repaired@."
      c.Runtime.recovery_promotions c.Runtime.objects_lost
      c.Runtime.crash_chain_repairs
  end;
  if Sim.Stats.Summary.count t.remote_invoke_latency > 0 then
    Format.fprintf ppf "remote invoke latency: %a@." Sim.Stats.Summary.pp
      t.remote_invoke_latency;
  if Sim.Stats.Summary.count t.move_latency > 0 then
    Format.fprintf ppf "object move latency:   %a@." Sim.Stats.Summary.pp
      t.move_latency;
  (* Ring-buffer truncation is silent at the point of loss; say so here.
     Gated on an actual drop, so bounded runs stay byte-identical. *)
  if t.trace_dropped > 0 then
    Format.fprintf ppf "trace: %d records dropped (ring overflow)@."
      t.trace_dropped;
  if t.series_dropped > 0 then
    Format.fprintf ppf "watch: %d series points dropped (ring overflow)@."
      t.series_dropped;
  List.iter
    (fun (name, lines) ->
      Format.fprintf ppf "%s:@." name;
      List.iter (fun l -> Format.fprintf ppf "  %s@." l) lines)
    t.extra
