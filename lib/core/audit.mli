(** Protocol self-checking: verify that the descriptor space is coherent
    with respect to a set of objects.

    The invocation protocol never consults ground truth, so bugs in
    descriptor maintenance would show up as threads chasing forever or
    landing on the wrong node.  This module audits the invariants the
    §3.2–3.3 machinery must maintain; tests run it after stress workloads,
    and applications can call it from a debugger or at phase boundaries.

    Checked per object:
    - the descriptor at the object's current node is [Resident]
      (for immutables: at the master and at every replica);
    - no other node claims residency of a mutable object;
    - a mutable object's read replicas ({!Coherence}) are marked
      [Replica] exactly on the granted nodes, each with a snapshot at the
      object's current epoch; no [Forwarded] descriptor names a replica
      node;
    - from {e every} node, following forwarding addresses (with the
      home-node fallback for uninitialized descriptors) reaches the
      object's node in a bounded number of hops. *)

type violation = {
  addr : int;
  name : string;
  node : int;  (** node whose descriptor state is wrong *)
  problem : string;
}

(** Audit the given objects; returns all violations ([] = coherent). *)
val check_objects : Runtime.t -> Aobject.any list -> violation list

(** [check_exn rt objs] raises [Failure] with a readable report if any
    invariant is violated. *)
val check_exn : Runtime.t -> Aobject.any list -> unit

(** Audit the descriptor space after an object was destroyed: any node
    still claiming a usable copy — [Resident], or a [Replica] that
    survived the master's deletion — is a violation.  ([Forwarded]
    leftovers are legal: their chains end in a dangling-reference error
    at the home node, not in wrong execution.) *)
val check_deleted : Runtime.t -> addr:int -> name:string -> violation list

val pp_violation : Format.formatter -> violation -> unit

(** Longest forwarding chain any node currently needs to reach the
    object (diagnostic for placement tuning). *)
val max_chain_length : Runtime.t -> 'a Aobject.t -> int
