(** Typed overload failure.

    Raised (or recorded) when per-class admission control at a node's RPC
    server pool sheds a request instead of queueing it: [node] is the
    overloaded node, [cls] the request class ("read", "write",
    "compute", ...).  A registered printer renders it legibly in reports
    and test failures.  The serving layer ({!module:Serve} in
    [lib/serve]) propagates it back to the traffic generator as shed
    load, never as a hang. *)

exception Overloaded of { node : int; cls : string }
