(** Amber threads: the active entities of the model (paper §2.1).

    Threads are created dynamically, started on an operation, and joined
    for their result — the Presto-derived [Start]/[Join] interface.  A
    thread's processor state and stack occupy a segment of the global
    address space, so migrating it is an ordinary object move (§3.4).

    Each thread costs real simulated CPU to create and join: Table 1's
    "thread start/join, 1.33 ms". *)

type 'r t

(** A thread terminated in a state [join] cannot produce a value from:
    its fiber completed but the result slot was never filled. *)
exception Join_error of { thread : string; tid : int; reason : string }

(** Raised by {!join_all}: wraps the failing thread's own exception
    ([error]) with its name, tcb id and position in the joined list. *)
exception
  Join_failed of { thread : string; tid : int; index : int; error : exn }

(** [start rt body] creates and starts a thread on the calling thread's
    node.  The paper's [Start(thread, obj, op)] form is {!start_invoke}.
    [priority] takes effect from the very first dispatch (relevant under a
    priority scheduler).  Fiber context. *)
val start : Runtime.t -> ?name:string -> ?priority:int -> (unit -> 'r) -> 'r t

(** Paper-style start: the new thread immediately invokes [op] on [obj],
    migrating to the object's node if it is remote.  [payload] models
    by-value argument bytes for that invocation.  Fiber context. *)
val start_invoke :
  Runtime.t ->
  ?name:string ->
  ?payload:int ->
  'a Aobject.t ->
  ('a -> 'r) ->
  'r t

(** Bootstrap entry: start a thread on an explicit node from {e outside}
    fiber context (used by [Cluster] to launch the program's main thread,
    and by tests).  Charges no creation CPU. *)
val start_on :
  Runtime.t -> node:int -> ?name:string -> ?priority:int -> (unit -> 'r) ->
  'r t

(** Block until the thread terminates and return its result (§2.1: [Join]
    "blocks the caller until the specified thread terminates, returning
    the result").  Re-raises the thread's exception if it failed.  Fiber
    context. *)
val join : Runtime.t -> 'r t -> 'r

(** Convenience: [start] then [join] each of [bodies] (all running
    concurrently); results in order. *)
val parallel : Runtime.t -> ?name:string -> (unit -> 'r) list -> 'r list

(** Join every thread in the list — a failure does not abort the sweep
    mid-list, so no sibling is left running and unobserved — then return
    the results in order.  If any thread failed, raises {!Join_failed}
    for the first failure (by list position), naming the thread. *)
val join_all : Runtime.t -> 'r t list -> 'r list

(** Result of a finished thread, without blocking (raises [Failure] if the
    thread has not completed).  Used by [Cluster] after the simulation
    drains. *)
val result_exn : 'r t -> 'r

val tcb : 'r t -> Hw.Machine.tcb
val tstate : 'r t -> Runtime.tstate

(** Node on which the thread is currently located. *)
val node : 'r t -> int

val is_finished : 'r t -> bool

(** Number of inter-node migrations this thread has made. *)
val migrations : 'r t -> int

(** Set the scheduling priority used by priority-based scheduler
    replacements (§2.1). *)
val set_priority : 'r t -> int -> unit
