(* Settle the calling thread at a node where the object at [addr] is
   usable, migrating along the forwarding chain ({!Runtime.chase} supplies
   hop budgeting, home-node bootstrap/fallback and dangling detection).
   Every node left behind goes on the thread's chase path, so §3.3
   compression repairs its descriptor once the object is found.  Returns
   the number of migrations taken. *)
let chase_to_object rt ts ~what ~addr ~payload =
  let c = Runtime.cost rt in
  let moved = ref 0 in
  Runtime.chase rt ~what ~addr ~start:(Runtime.current_node rt)
    ~step:(fun ~node ~hops:_ ->
      let here = Runtime.current_node rt in
      if node <> here then begin
        Sim.Fiber.consume c.Cost_model.trap_cpu;
        ts.Runtime.chase_path <- here :: ts.Runtime.chase_path;
        ts.Runtime.carry_bytes <- payload;
        Runtime.migrate_self rt ~payload ~dest:node ();
        ts.Runtime.carry_bytes <- 0;
        incr moved
      end;
      match Descriptor.get (Runtime.descriptors rt node) addr with
      | Some Descriptor.Resident ->
        if ts.Runtime.chase_path <> [] then
          Runtime.flush_chase_compression rt ts ~addr ~found:node;
        Runtime.Found ()
      | Some (Descriptor.Forwarded next) -> Runtime.Follow next
      | None -> Runtime.Miss);
  !moved

let settle rt ts (obj : 'a Aobject.t) ~payload =
  chase_to_object rt ts ~what:"Invoke" ~addr:obj.Aobject.addr ~payload

let invoke rt ?(payload = 0) ?(return_payload = 0) ?(mode = San_hooks.Atomic)
    obj op =
  let ts = Runtime.current rt in
  let c = Runtime.cost rt in
  let ctrs = Runtime.counters rt in
  (* §3.5: the frame is pushed before the check so that a concurrent move
     sees this thread as bound to the object. *)
  ts.Runtime.frames <- Aobject.Any obj :: ts.Runtime.frames;
  let entered_at = Runtime.now rt in
  Sim.Fiber.consume c.Cost_model.invoke_entry_cpu;
  let hops =
    try settle rt ts obj ~payload
    with e ->
      (* The invocation never started (e.g. dangling reference): unwind
         the frame we pushed before re-raising. *)
      (match ts.Runtime.frames with
      | _ :: rest -> ts.Runtime.frames <- rest
      | [] -> ());
      raise e
  in
  if hops = 0 then
    ctrs.Runtime.local_invocations <- ctrs.Runtime.local_invocations + 1
  else begin
    ctrs.Runtime.remote_invocations <- ctrs.Runtime.remote_invocations + 1;
    Sim.Stats.Summary.add
      (Runtime.remote_invoke_latency rt)
      (Runtime.now rt -. entered_at)
  end;
  let return_path () =
    Sim.Fiber.consume c.Cost_model.invoke_return_cpu;
    (match ts.Runtime.frames with
    | _ :: rest -> ts.Runtime.frames <- rest
    | [] -> assert false);
    (* Return-time check (§3.5): the object we are returning into may have
       moved while we executed here. *)
    match ts.Runtime.frames with
    | [] -> ()
    | enclosing :: _ ->
      let encl_addr =
        match enclosing with Aobject.Any o -> o.Aobject.addr
      in
      (* Same chase as settling, so the return trip also records its path
         and compresses the chain it walked. *)
      ignore
        (chase_to_object rt ts ~what:"Invoke.return" ~addr:encl_addr
           ~payload:return_payload
          : int)
  in
  Runtime.with_san rt (fun h -> h.San_hooks.on_access (Aobject.Any obj) mode);
  match op obj.Aobject.state with
  | result ->
    Runtime.with_san rt (fun h -> h.San_hooks.on_access_end (Aobject.Any obj));
    return_path ();
    result
  | exception e ->
    Runtime.with_san rt (fun h -> h.San_hooks.on_access_end (Aobject.Any obj));
    return_path ();
    raise e

let executing_within rt obj =
  match Runtime.current_opt rt with
  | None -> false
  | Some ts ->
    List.exists
      (fun (Aobject.Any o) -> o.Aobject.addr = obj.Aobject.addr)
      ts.Runtime.frames

let invoke_member rt ?(mode = San_hooks.Atomic) obj op =
  let ts = Runtime.current rt in
  let guaranteed =
    match ts.Runtime.frames with
    | [] -> false
    | top :: _ ->
      (* Walk to the attachment root of the executing frame, then check
         membership of the whole closure. *)
      let rec root (Aobject.Any o as node) =
        match o.Aobject.parent with None -> node | Some p -> root p
      in
      List.exists
        (fun (Aobject.Any o) -> o.Aobject.addr = obj.Aobject.addr)
        (Aobject.attachment_closure (root top))
  in
  if not guaranteed then
    invalid_arg
      "Invoke.invoke_member: co-residency is not guaranteed (the object is \
       not attached to the executing frame's closure)";
  Sim.Fiber.consume (Runtime.cost rt).Cost_model.lock_fast_cpu;
  Runtime.with_san rt (fun h -> h.San_hooks.on_access (Aobject.Any obj) mode);
  match op obj.Aobject.state with
  | result ->
    Runtime.with_san rt (fun h -> h.San_hooks.on_access_end (Aobject.Any obj));
    result
  | exception e ->
    Runtime.with_san rt (fun h -> h.San_hooks.on_access_end (Aobject.Any obj));
    raise e
