(* Settle the calling thread at a node where the object at [addr] is
   usable, migrating along the forwarding chain ({!Runtime.chase} supplies
   hop budgeting, home-node bootstrap/fallback and dangling detection).
   Every node left behind goes on the thread's chase path, so §3.3
   compression repairs its descriptor once the object is found.  A
   [Read]-mode chase also settles on a node holding a read replica of a
   mutable object; any other mode chases a replica's master hint.
   Returns the number of migrations taken and whether the thread settled
   on a replica rather than the master. *)
let chase_to_object rt ts ~what ~mode ~addr ~payload =
  let c = Runtime.cost rt in
  let moved = ref 0 in
  let via_replica = ref false in
  Runtime.chase rt ~what ~addr ~start:(Runtime.current_node rt)
    ~step:(fun ~node ~hops:_ ->
      let here = Runtime.current_node rt in
      if node <> here then begin
        Sim.Fiber.consume c.Cost_model.trap_cpu;
        ts.Runtime.chase_path <- here :: ts.Runtime.chase_path;
        ts.Runtime.carry_bytes <- payload;
        Runtime.migrate_self rt ~payload ~dest:node ();
        ts.Runtime.carry_bytes <- 0;
        incr moved
      end;
      match Descriptor.get (Runtime.descriptors rt node) addr with
      | Some Descriptor.Resident ->
        if ts.Runtime.chase_path <> [] then
          Runtime.flush_chase_compression rt ts ~addr ~found:node;
        Runtime.Found ()
      | Some (Descriptor.Replica master) ->
        if mode = San_hooks.Read then begin
          via_replica := true;
          (* Visited nodes learn the master hint, never the replica:
             forwarding chains must not point at read-only copies. *)
          if ts.Runtime.chase_path <> [] then
            Runtime.flush_chase_compression rt ts ~addr ~found:master;
          Runtime.Found ()
        end
        else Runtime.Follow master
      | Some (Descriptor.Forwarded next) -> Runtime.Follow next
      | None -> Runtime.Miss);
  (!moved, !via_replica)

let settle rt ts (obj : 'a Aobject.t) ~mode ~payload =
  chase_to_object rt ts ~what:"Invoke" ~mode ~addr:obj.Aobject.addr ~payload

let invoke rt ?(payload = 0) ?(return_payload = 0) ?(mode = San_hooks.Atomic)
    obj op =
  (* An object whose only copy died with a fail-stop node fails crisply
     before any frame is pushed or packet sent. *)
  Aobject.check_lost obj;
  let ts = Runtime.current rt in
  let c = Runtime.cost rt in
  let ctrs = Runtime.counters rt in
  (* §3.5: the frame is pushed before the check so that a concurrent move
     sees this thread as bound to the object. *)
  ts.Runtime.frames <-
    { Runtime.fobj = Aobject.Any obj; fmode = mode } :: ts.Runtime.frames;
  (* Span opens optimistically as local; once settling resolves where the
     call actually ran it is reclassified (remote / replica-served). *)
  let spans = Runtime.spans rt in
  let sp =
    Sim.Span.start spans Sim.Span.Invoke_local ~label:obj.Aobject.name
      ~obj:obj.Aobject.addr ()
  in
  let entered_at = Runtime.now rt in
  (* Where the call was issued from — captured before settling migrates
     the thread, so the balancer's window counters attribute the
     invocation to the caller's node, not the object's. *)
  let origin = Runtime.current_node rt in
  Sim.Fiber.consume c.Cost_model.invoke_entry_cpu;
  (* Write/Atomic on a replicated mutable object: reach the master, then
     run the invalidation round; the round blocks (one acked RPC per
     replica), so the master may move meanwhile — re-settle and re-check
     until the thread sits at the master with an empty replica set. *)
  let writes = mode <> San_hooks.Read && not obj.Aobject.immutable_ in
  let rec settle_quiesced acc =
    let hops, via_replica = settle rt ts obj ~mode ~payload in
    if (not via_replica) && writes && obj.Aobject.replicas <> [] then begin
      Coherence.invalidate rt obj;
      settle_quiesced (acc + hops)
    end
    else (acc + hops, via_replica)
  in
  let hops, via_replica =
    try settle_quiesced 0
    with e ->
      (* The invocation never started (e.g. dangling reference): unwind
         the frame we pushed before re-raising. *)
      (match ts.Runtime.frames with
      | _ :: rest -> ts.Runtime.frames <- rest
      | [] -> ());
      Sim.Span.finish spans sp;
      raise e
  in
  if via_replica then Sim.Span.set_kind spans sp Sim.Span.Replica_read
  else if hops > 0 then Sim.Span.set_kind spans sp Sim.Span.Invoke_remote;
  Sim.Span.set_arg spans sp hops;
  (* The thread now sits at the master with an empty replica set.  Mark
     the write as in progress: [Coherence.install] refuses to capture a
     snapshot while [writers] is non-zero, because a capture taken while
     [op] runs (it may suspend mid-mutation) would ship a torn state.
     The epoch is bumped only once [op] completes, below, so a capture
     that slips in around the operation still carries the pre-write epoch
     and is rejected at delivery. *)
  if writes then obj.Aobject.writers <- obj.Aobject.writers + 1;
  if hops = 0 then
    ctrs.Runtime.local_invocations <- ctrs.Runtime.local_invocations + 1
  else begin
    ctrs.Runtime.remote_invocations <- ctrs.Runtime.remote_invocations + 1;
    Sim.Stats.Summary.add
      (Runtime.remote_invoke_latency rt)
      (Runtime.now rt -. entered_at)
  end;
  Aobject.record_call obj ~origin ~local:(hops = 0);
  if mode = San_hooks.Read then Aobject.record_read obj;
  let return_path () =
    Sim.Fiber.consume c.Cost_model.invoke_return_cpu;
    (match ts.Runtime.frames with
    | _ :: rest -> ts.Runtime.frames <- rest
    | [] -> assert false);
    (* Return-time check (§3.5): the object we are returning into may have
       moved while we executed here. *)
    match ts.Runtime.frames with
    | [] -> ()
    | enclosing :: _ ->
      let encl_addr =
        match enclosing.Runtime.fobj with Aobject.Any o -> o.Aobject.addr
      in
      (* Same chase as settling, so the return trip also records its path
         and compresses the chain it walked.  The enclosing frame's own
         access mode applies: a Read frame may return to a replica. *)
      ignore
        (chase_to_object rt ts ~what:"Invoke.return"
           ~mode:enclosing.Runtime.fmode ~addr:encl_addr
           ~payload:return_payload
          : int * bool)
  in
  (* A Read settled on a replica runs against the local snapshot — served
     as installed, without consulting the master, which is exactly what
     makes a protocol bug (an unacknowledged invalidation) observable as
     a stale read.  The sanitizer cross-checks via [on_replica_read]. *)
  let view =
    if via_replica then begin
      let node = Runtime.current_node rt in
      match Aobject.snapshot obj ~node with
      | Some (ep, v) ->
        ctrs.Runtime.replica_reads <- ctrs.Runtime.replica_reads + 1;
        Runtime.with_san rt (fun h ->
            h.San_hooks.on_replica_read (Aobject.Any obj) ~node ~epoch:ep);
        v
      | None ->
        (* Descriptor said replica but the snapshot is gone (sabotaged
           state): degrade to the master's representation. *)
        obj.Aobject.state
    end
    else obj.Aobject.state
  in
  Runtime.with_san rt (fun h -> h.San_hooks.on_access (Aobject.Any obj) mode);
  (* The write is complete (or abandoned with whatever mutation it made):
     bump the epoch {e now}, so any replica snapshot captured before or
     during [op] is stale by the epoch check — delivery discards in-flight
     ones, and Audit/AmberSan flag any that already landed. *)
  let complete_write () =
    if writes then begin
      obj.Aobject.writers <- obj.Aobject.writers - 1;
      obj.Aobject.epoch <- obj.Aobject.epoch + 1
    end
  in
  (* The span is finished in a [finally]: if the return trip itself
     raises (the enclosing frame's object became dangling while [op]
     ran), the exception must not leave an open span on the profiler's
     stack.  [complete_write]/[on_access_end] run before the return
     chase in both outcomes, exactly as before, so the write guard is
     balanced even when the thread cannot make it home. *)
  Fun.protect
    ~finally:(fun () -> Sim.Span.finish spans sp)
    (fun () ->
      match op view with
      | result ->
        complete_write ();
        Runtime.with_san rt (fun h ->
            h.San_hooks.on_access_end (Aobject.Any obj));
        return_path ();
        result
      | exception e ->
        complete_write ();
        Runtime.with_san rt (fun h ->
            h.San_hooks.on_access_end (Aobject.Any obj));
        return_path ();
        raise e)

let executing_within rt obj =
  match Runtime.current_opt rt with
  | None -> false
  | Some ts ->
    List.exists
      (fun f ->
        match f.Runtime.fobj with
        | Aobject.Any o -> o.Aobject.addr = obj.Aobject.addr)
      ts.Runtime.frames

let invoke_member rt ?(mode = San_hooks.Atomic) obj op =
  Aobject.check_lost obj;
  let ts = Runtime.current rt in
  let guaranteed =
    match ts.Runtime.frames with
    | [] -> false
    | top :: _ ->
      (* Walk to the attachment root of the executing frame, then check
         membership of the whole closure. *)
      let rec root (Aobject.Any o as node) =
        match o.Aobject.parent with None -> node | Some p -> root p
      in
      List.exists
        (fun (Aobject.Any o) -> o.Aobject.addr = obj.Aobject.addr)
        (Aobject.attachment_closure (root top.Runtime.fobj))
  in
  if not guaranteed then
    invalid_arg
      "Invoke.invoke_member: co-residency is not guaranteed (the object is \
       not attached to the executing frame's closure)";
  Sim.Fiber.consume (Runtime.cost rt).Cost_model.lock_fast_cpu;
  Runtime.with_san rt (fun h -> h.San_hooks.on_access (Aobject.Any obj) mode);
  Fun.protect
    ~finally:(fun () ->
      Runtime.with_san rt (fun h ->
          h.San_hooks.on_access_end (Aobject.Any obj)))
    (fun () -> op obj.Aobject.state)
