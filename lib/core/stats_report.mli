(** Post-run cluster statistics: per-node utilization, protocol counters,
    network summary — the observability layer for the CLI and benches. *)

type node_stats = {
  node : int;
  cpu_busy : float;  (** total CPU-seconds consumed on this node *)
  utilization : float;  (** busy / (cpus × elapsed) *)
  dispatches : int;
  preemptions : int;
  descriptor_entries : int;
  heap_live_blocks : int;
  heap_regions : int;
}

(** Fault-injection and recovery summary.  All zero on a fault-free run
    ([faults_enabled = false]); [home_fallbacks] can be nonzero even
    without faults (sabotaged descriptor chains). *)
type fault_stats = {
  faults_enabled : bool;
  packets_dropped : int;
  packets_duplicated : int;
  packets_delayed : int;
  packets_stalled : int;
  rpc_timeouts : int;
  rpc_retransmits : int;
  dup_requests : int;
  dup_replies : int;
  dup_datagrams : int;
  reply_resends : int;
  acks_sent : int;
  home_fallbacks : int;
}

(** Crash-injection summary.  All zero on a crash-free run; the crash
    report lines print only when a node actually crashed. *)
type crash_stats = {
  packets_dropped_dead : int;
      (** packets the wire dropped because their destination was down *)
  rpc_peer_deaths : int;
      (** reliable transactions that gave up on a dead peer *)
}

type t = {
  elapsed : float;
  nodes : node_stats array;
  counters : Runtime.counters;
  packets : int;
  net_bytes : int;
  net_busy : float;  (** seconds the medium carried traffic *)
  net_utilization : float;
  net_queueing : float;
  traffic_by_kind : (string * int * int) list;
      (** [(packet kind, packets, bytes)] *)
  faults : fault_stats;
  crash : crash_stats;
  remote_invoke_latency : Sim.Stats.Summary.t;
  move_latency : Sim.Stats.Summary.t;
  coalescing : Topaz.Rpc.coalescing_counters;
      (** wire-level datagram batching activity (all zero with
          coalescing off; the report line prints only when a frame was
          actually batched) *)
  trace_dropped : int;
      (** structured trace records lost to ring overflow (line gated on
          an actual drop) *)
  series_dropped : int;
      (** watch series points lost to ring overflow, summed over all
          series (gated likewise) *)
  extra : (string * string list) list;
      (** plug-in sections (see {!Runtime.add_report_section}), evaluated
          at capture time *)
}

(** Snapshot the runtime now (typically after the program finished). *)
val capture : Runtime.t -> t

val pp : Format.formatter -> t -> unit

(** One line per node: "node 3: 42.0% busy, ...". *)
val pp_nodes : Format.formatter -> t -> unit
